package repro

import (
	"math"
	"strings"
	"testing"
)

func TestMakePlanBruteForceExponential(t *testing.T) {
	d, err := Exponential(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := MakePlan(ReservationOnly, d, StrategyBruteForce, Options{GridM: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Reservations[0]-0.742) > 0.05 {
		t.Errorf("t1 = %g, want ≈0.742", p.Reservations[0])
	}
	if p.NormalizedCost < 2.2 || p.NormalizedCost > 2.5 {
		t.Errorf("normalized cost = %g, want ≈2.36", p.NormalizedCost)
	}
	// Cost for a specific job: duration 0.5 fits the first reservation.
	c, k, err := p.CostFor(0.5)
	if err != nil || k != 1 {
		t.Fatalf("CostFor: %g, %d, %v", c, k, err)
	}
	if math.Abs(c-p.Reservations[0]) > 1e-12 {
		t.Errorf("cost = %g, want t1", c)
	}
}

func TestMakePlanAllStrategies(t *testing.T) {
	d, err := LogNormal(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Strategies() {
		p, err := MakePlan(ReservationOnly, d, name, Options{GridM: 300, DiscN: 200})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.NormalizedCost < 1 || math.IsNaN(p.NormalizedCost) {
			t.Errorf("%s: normalized cost %g", name, p.NormalizedCost)
		}
		if len(p.Reservations) == 0 {
			t.Errorf("%s: empty preview", name)
		}
	}
}

func TestMakePlanUnknownStrategy(t *testing.T) {
	d, _ := Exponential(1)
	if _, err := MakePlan(ReservationOnly, d, "nope", Options{}); err == nil ||
		!strings.Contains(err.Error(), "unknown strategy") {
		t.Errorf("err = %v", err)
	}
	if _, err := MakePlan(CostModel{}, d, StrategyMeanByMean, Options{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestMakePlanDefaultStrategy(t *testing.T) {
	d, _ := Uniform(10, 20)
	p, err := MakePlan(ReservationOnly, d, "", Options{GridM: 500})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != "" && p.Strategy != StrategyBruteForce {
		t.Errorf("strategy = %q", p.Strategy)
	}
	if math.Abs(p.NormalizedCost-4.0/3.0) > 0.02 {
		t.Errorf("Uniform plan cost %g, want 4/3", p.NormalizedCost)
	}
}

func TestPlanSimulateAgreesWithAnalytic(t *testing.T) {
	d, _ := Gamma(2, 2)
	p, err := MakePlan(ReservationOnly, d, StrategyMeanDoubling, Options{})
	if err != nil {
		t.Fatal(err)
	}
	norm, se, err := p.Simulate(50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-p.NormalizedCost) > 5*se+0.01 {
		t.Errorf("simulated %g ± %g vs analytic %g", norm, se, p.NormalizedCost)
	}
}

func TestReservedVsOnDemand(t *testing.T) {
	d, _ := Exponential(1)
	p, err := MakePlan(ReservationOnly, d, StrategyBruteForce, Options{GridM: 500})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.ReservedVsOnDemand(4)
	if err != nil || !ok {
		t.Errorf("factor 4 should favour reservations (cost %g)", p.NormalizedCost)
	}
	ok, err = p.ReservedVsOnDemand(1.5)
	if err != nil || ok {
		t.Errorf("factor 1.5 should not favour reservations (cost %g)", p.NormalizedCost)
	}
}

func TestFitAndPlanFromTrace(t *testing.T) {
	// End-to-end: empirical trace → fitted LogNormal → plan.
	base, _ := LogNormal(7.1128, 0.2039)
	var samples []float64
	for i := 0; i < 4000; i++ {
		samples = append(samples, base.Quantile((float64(i)+0.5)/4000))
	}
	fitted, err := FitLogNormal(samples)
	if err != nil {
		t.Fatal(err)
	}
	p, err := MakePlan(NeuroHPC(), fitted, StrategyEqualProb, Options{DiscN: 300})
	if err != nil {
		t.Fatal(err)
	}
	if p.NormalizedCost < 1 {
		t.Errorf("normalized cost %g", p.NormalizedCost)
	}

	emp, err := Empirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(emp.Mean()-base.Mean()) > 0.02*base.Mean() {
		t.Errorf("empirical mean %g vs %g", emp.Mean(), base.Mean())
	}
}

func TestLogNormalFromMomentsFacade(t *testing.T) {
	d, err := LogNormalFromMoments(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-10) > 1e-9 {
		t.Errorf("mean = %g", d.Mean())
	}
}

func TestStrategiesSortedUnique(t *testing.T) {
	s := Strategies()
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Errorf("strategies not sorted/unique at %d: %v", i, s)
		}
	}
	if len(s) != 8 {
		t.Errorf("expected 8 strategies, got %d", len(s))
	}
}

func TestPlanStatsAndQuantiles(t *testing.T) {
	d, _ := LogNormal(3, 0.5)
	p, err := MakePlan(ReservationOnly, d, StrategyBruteForce, Options{GridM: 500})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpectedAttempts < 1 || st.Utilization <= 0 || st.Utilization > 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.ExpectedCost-p.ExpectedCost) > 1e-9*p.ExpectedCost {
		t.Errorf("stats cost %g vs plan cost %g", st.ExpectedCost, p.ExpectedCost)
	}
	p50, err := p.CostQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p99, err := p.CostQuantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !(p50 < p99) {
		t.Errorf("p50 %g not below p99 %g", p50, p99)
	}
	if !(p50 <= p.ExpectedCost && p.ExpectedCost <= p99) {
		t.Errorf("expected cost %g outside [p50 %g, p99 %g]", p.ExpectedCost, p50, p99)
	}
}

func TestMakePlanMaxAttempts(t *testing.T) {
	d, _ := LogNormal(1, 0.5)
	capped, err := MakePlan(ReservationOnly, d, StrategyEqualProb, Options{DiscN: 300, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	free, err := MakePlan(ReservationOnly, d, StrategyEqualProb, Options{DiscN: 300})
	if err != nil {
		t.Fatal(err)
	}
	// The truncation-covering part of the capped plan uses at most 2
	// reservations (the doubling tail beyond carries ~1e-7 mass).
	st, err := capped.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpectedAttempts > 2 {
		t.Errorf("capped plan expects %g attempts", st.ExpectedAttempts)
	}
	if capped.ExpectedCost < free.ExpectedCost-1e-9 {
		t.Errorf("capped plan (%g) beats unconstrained (%g)", capped.ExpectedCost, free.ExpectedCost)
	}
}
