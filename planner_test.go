package repro

import (
	"math"
	"sync"
	"testing"
)

// TestPlannerMatchesMakePlan: every strategy produces the identical
// plan through the Planner and through MakePlan, including the cached
// second call.
func TestPlannerMatchesMakePlan(t *testing.T) {
	d, _ := LogNormal(3, 0.5)
	opts := Options{GridM: 300, DiscN: 200}
	pl, err := NewPlanner(ReservationOnly, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Strategies() {
		want, err := MakePlan(ReservationOnly, d, name, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for pass := 0; pass < 2; pass++ { // second pass hits the caches
			got, err := pl.Plan(d, name)
			if err != nil {
				t.Fatalf("%s pass %d: %v", name, pass, err)
			}
			if got.ExpectedCost != want.ExpectedCost || got.NormalizedCost != want.NormalizedCost {
				t.Errorf("%s pass %d: cost %g/%g, want %g/%g",
					name, pass, got.ExpectedCost, got.NormalizedCost, want.ExpectedCost, want.NormalizedCost)
			}
			if len(got.Reservations) != len(want.Reservations) {
				t.Fatalf("%s pass %d: %d reservations, want %d",
					name, pass, len(got.Reservations), len(want.Reservations))
			}
			for i := range got.Reservations {
				if got.Reservations[i] != want.Reservations[i] {
					t.Errorf("%s pass %d: reservation %d = %g, want %g",
						name, pass, i, got.Reservations[i], want.Reservations[i])
				}
			}
		}
	}
}

// TestPlannerMonteCarloReusesWorkload: Monte-Carlo scans share one
// cached workload per distribution spec and still agree with MakePlan.
func TestPlannerMonteCarloReusesWorkload(t *testing.T) {
	d, _ := Gamma(2, 2)
	opts := Options{GridM: 200, SamplesN: 500, Seed: 7, MonteCarlo: true}
	pl, err := NewPlanner(ReservationOnly, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MakePlan(ReservationOnly, d, StrategyBruteForce, opts)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := pl.Plan(d, StrategyBruteForce)
		if err != nil {
			t.Fatal(err)
		}
		if got.ExpectedCost != want.ExpectedCost {
			t.Errorf("pass %d: cost %g, want %g", pass, got.ExpectedCost, want.ExpectedCost)
		}
	}
	if n := pl.workloads.Len(); n != 1 {
		t.Errorf("workload cache holds %d entries, want 1", n)
	}
}

// TestPlannerDiscretizationCache: the two DP schemes cache separate
// discretizations under one spec.
func TestPlannerDiscretizationCache(t *testing.T) {
	d, _ := Weibull(1, 0.5)
	pl, err := NewPlanner(ReservationOnly, Options{DiscN: 150})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(d, StrategyEqualProb); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(d, StrategyEqualTime); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(d, StrategyEqualProb); err != nil {
		t.Fatal(err)
	}
	if n := pl.discs.Len(); n != 2 {
		t.Errorf("discretization cache holds %d entries, want 2", n)
	}
}

// TestPlannerUnspeccableDistribution: laws without a canonical spec
// plan correctly and simply bypass the state caches.
func TestPlannerUnspeccableDistribution(t *testing.T) {
	base, _ := LogNormal(1, 0.4)
	var samples []float64
	for i := 0; i < 500; i++ {
		samples = append(samples, base.Quantile((float64(i)+0.5)/500))
	}
	emp, err := Empirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlanner(ReservationOnly, Options{GridM: 200})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(emp, StrategyMeanDoubling)
	if err != nil {
		t.Fatal(err)
	}
	if p.NormalizedCost < 1 || math.IsNaN(p.NormalizedCost) {
		t.Errorf("normalized cost %g", p.NormalizedCost)
	}
	if pl.workloads.Len() != 0 || pl.discs.Len() != 0 {
		t.Errorf("unspeccable law polluted the caches: %d/%d", pl.workloads.Len(), pl.discs.Len())
	}
}

// TestPlannerValidation: invalid cost models are rejected at
// construction, unknown strategies and bad specs at planning.
func TestPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(CostModel{}, Options{}); err == nil {
		t.Error("invalid model accepted")
	}
	pl, err := NewPlanner(ReservationOnly, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := Exponential(1)
	if _, err := pl.Plan(d, "nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := pl.PlanSpec("weird(1)", StrategyMeanDoubling); err == nil {
		t.Error("bad spec accepted")
	}
	if p, err := pl.PlanSpec("uniform(10,20)", StrategyEqualProb); err != nil || p == nil {
		t.Errorf("PlanSpec failed: %v", err)
	}
}

// TestPlannerConcurrentUse: one Planner serving many goroutines mixing
// strategies and distributions produces exactly the sequential results.
func TestPlannerConcurrentUse(t *testing.T) {
	pl, err := NewPlanner(ReservationOnly, Options{GridM: 120, DiscN: 100})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"exponential(1)", "uniform(10,20)", "lognormal(3,0.5)"}
	strategies := []string{StrategyBruteForce, StrategyEqualProb, StrategyMeanDoubling}
	type key struct{ spec, strat string }
	want := make(map[key]float64)
	for _, s := range specs {
		for _, st := range strategies {
			p, err := pl.PlanSpec(s, st)
			if err != nil {
				t.Fatalf("%s/%s: %v", s, st, err)
			}
			want[key{s, st}] = p.ExpectedCost
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := specs[g%len(specs)]
			st := strategies[(g/len(specs))%len(strategies)]
			p, err := pl.PlanSpec(s, st)
			if err != nil {
				errs <- err
				return
			}
			if p.ExpectedCost != want[key{s, st}] {
				errs <- errDrift{s, st, p.ExpectedCost, want[key{s, st}]}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// errDrift reports a concurrent result differing from the sequential one.
type errDrift struct {
	spec, strat string
	got, want   float64
}

func (e errDrift) Error() string {
	return e.spec + "/" + e.strat + ": concurrent cost differs from sequential"
}
