package repro

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/platform"
	"repro/internal/simulate"
	"repro/internal/strategy"
)

// Distribution is a probability law for job execution times. Use the
// constructors below (Exponential, LogNormal, ...), Empirical, or
// FitLogNormal to obtain one.
type Distribution = dist.Distribution

// CostModel is the affine reservation cost α·t1 + β·min(t1, t) + γ.
type CostModel = core.CostModel

// Sequence is a (lazily generated) strictly increasing reservation
// sequence.
type Sequence = core.Sequence

// ReservationOnly is the AWS Reserved-Instance cost model (α=1, β=γ=0).
var ReservationOnly = core.ReservationOnly

// NeuroHPC returns the HPC queue-wait cost model of the paper's §5.3
// (α=0.95, β=1, γ=1.05 hours). Costs are in hours.
func NeuroHPC() CostModel { return platform.NeuroHPC() }

// Distribution constructors (the nine laws of the paper's Table 1).
var (
	Exponential     = dist.NewExponential
	Weibull         = dist.NewWeibull
	Gamma           = dist.NewGamma
	LogNormal       = dist.NewLogNormal
	TruncatedNormal = dist.NewTruncatedNormal
	Pareto          = dist.NewPareto
	Uniform         = dist.NewUniform
	Beta            = dist.NewBeta
	BoundedPareto   = dist.NewBoundedPareto
)

// LogNormalFromMoments builds the LogNormal law with the given mean and
// standard deviation in natural units.
func LogNormalFromMoments(mean, sd float64) (Distribution, error) {
	return dist.LogNormalFromMoments(mean, sd)
}

// Empirical builds the empirical distribution of an execution-time
// trace.
func Empirical(samples []float64) (Distribution, error) {
	return dist.NewEmpirical(samples)
}

// FitLogNormal fits a LogNormal law to an execution-time trace (the
// paper's Fig.-1 pipeline).
func FitLogNormal(samples []float64) (Distribution, error) {
	return dist.FitLogNormal(samples)
}

// Strategy names accepted by Plan.
const (
	StrategyBruteForce     = "brute-force"
	StrategyRefined        = "refined-brute-force"
	StrategyMeanByMean     = "mean-by-mean"
	StrategyMeanStdev      = "mean-stdev"
	StrategyMeanDoubling   = "mean-doubling"
	StrategyMedianByMedian = "median-by-median"
	StrategyEqualTime      = "equal-time"
	StrategyEqualProb      = "equal-probability"
)

// Strategies lists the accepted strategy names.
func Strategies() []string {
	s := []string{
		StrategyBruteForce, StrategyRefined, StrategyMeanByMean,
		StrategyMeanStdev, StrategyMeanDoubling, StrategyMedianByMedian,
		StrategyEqualTime, StrategyEqualProb,
	}
	sort.Strings(s)
	return s
}

// Options tune how Plan computes a strategy. The zero value uses the
// paper's evaluation parameters with deterministic (analytic) scoring.
// All entry points (MakePlan, MakeCheckpointPlan, OptimizeProcs,
// NewPlanner) resolve missing fields through the same withDefaults, so
// the documented defaults below hold everywhere.
type Options struct {
	// GridM is the brute-force grid size (default 5000).
	GridM int
	// SamplesN is the Monte-Carlo sample count (default 1000); only
	// used when MonteCarlo is set.
	SamplesN int
	// DiscN is the discretization sample count (default 1000).
	DiscN int
	// Epsilon is the truncation quantile (default 1e-7).
	Epsilon float64
	// Seed drives Monte-Carlo scoring.
	Seed uint64
	// MonteCarlo scores brute-force candidates with the paper's
	// Eq.-(13) protocol instead of the exact Eq.-(4) value.
	MonteCarlo bool
	// PreviewLen is how many reservations Plan materializes into
	// Plan.Reservations (default 16).
	PreviewLen int
	// MaxAttempts, when positive, caps the number of reservations for
	// the DP-based strategies (equal-time / equal-probability) — the
	// resubmission limits real schedulers impose. Other strategies
	// ignore it.
	MaxAttempts int
	// Workers bounds the brute-force scan's fan-out onto the
	// internal/parallel pool. Zero means "up to GOMAXPROCS"; 1 forces
	// inline (goroutine-free) evaluation, which is what a server doing
	// request-level fan-out wants.
	Workers int
}

// withDefaults returns o with every unset field replaced by its
// documented default. This is the single place defaults live; every
// facade entry point goes through it.
func (o Options) withDefaults() Options {
	if o.GridM <= 0 {
		o.GridM = 5000
	}
	if o.SamplesN <= 0 {
		o.SamplesN = simulate.DefaultSamples
	}
	if o.DiscN <= 0 {
		o.DiscN = discretize.DefaultSamples
	}
	if o.Epsilon <= 0 {
		o.Epsilon = discretize.DefaultEpsilon
	}
	if o.PreviewLen <= 0 {
		o.PreviewLen = 16
	}
	if o.MaxAttempts < 0 {
		o.MaxAttempts = 0
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	return o
}

// Plan is a computed reservation strategy for one distribution and cost
// model. A Plan retains the distribution it was built from, so the
// evaluation methods (Simulate, Stats, CostQuantile) need no
// re-threaded state.
type Plan struct {
	// Strategy is the name it was built with.
	Strategy string
	// Reservations is a materialized prefix of the sequence (the whole
	// sequence if it is finite and short).
	Reservations []float64
	// ExpectedCost is the exact Eq.-(4) expected cost.
	ExpectedCost float64
	// NormalizedCost is ExpectedCost over the omniscient scheduler's
	// cost; 1 means as good as knowing the duration in advance.
	NormalizedCost float64

	model CostModel
	dist  Distribution
	seq   *core.Sequence
}

// MakePlan computes a reservation plan using the named strategy.
func MakePlan(m CostModel, d Distribution, strategyName string, opts Options) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	st, err := opts.resolve(strategyName)
	if err != nil {
		return nil, err
	}
	seq, err := st.Sequence(m, d)
	if err != nil {
		return nil, fmt.Errorf("repro: strategy %s failed: %w", strategyName, err)
	}
	return newPlan(m, d, strategyName, opts, seq)
}

// newPlan finishes plan construction from a computed sequence: exact
// cost, normalization, and the trimmed preview. Shared by MakePlan and
// Planner.Plan.
func newPlan(m CostModel, d Distribution, strategyName string, opts Options, seq *core.Sequence) (*Plan, error) {
	e, err := core.ExpectedCost(m, d, seq.Clone())
	if err != nil {
		return nil, fmt.Errorf("repro: cost evaluation failed: %w", err)
	}
	preview, err := seq.Clone().Prefix(opts.PreviewLen)
	if err != nil {
		return nil, err
	}
	// Trim the preview once the remaining probability mass is
	// negligible: reservations out there exist only to keep the
	// sequence formally unbounded and would read as absurd numbers.
	for len(preview) > 1 && d.Survival(preview[len(preview)-2]) < 1e-10 {
		preview = preview[:len(preview)-1]
	}
	return &Plan{
		Strategy:       strategyName,
		Reservations:   preview,
		ExpectedCost:   e,
		NormalizedCost: e / m.OmniscientCost(d),
		model:          m,
		dist:           d,
		seq:            seq,
	}, nil
}

// resolve maps a strategy name to its implementation. The receiver
// must already be defaulted via withDefaults.
func (o Options) resolve(name string) (strategy.Strategy, error) {
	mode := strategy.EvalAnalytic
	if o.MonteCarlo {
		mode = strategy.EvalMonteCarlo
	}
	bf := strategy.BruteForce{M: o.GridM, N: o.SamplesN, Mode: mode, Seed: o.Seed, Workers: o.Workers}
	switch name {
	case StrategyBruteForce, "":
		return bf, nil
	case StrategyRefined:
		return strategy.RefinedBruteForce{Coarse: bf}, nil
	case StrategyMeanByMean:
		return strategy.MeanByMean{}, nil
	case StrategyMeanStdev:
		return strategy.MeanStdev{}, nil
	case StrategyMeanDoubling:
		return strategy.MeanDoubling{}, nil
	case StrategyMedianByMedian:
		return strategy.MedianByMedian{}, nil
	case StrategyEqualTime:
		return strategy.Discretized{Scheme: 1, N: o.DiscN, Epsilon: o.Epsilon, MaxAttempts: o.MaxAttempts}, nil
	case StrategyEqualProb:
		return strategy.Discretized{Scheme: 0, N: o.DiscN, Epsilon: o.Epsilon, MaxAttempts: o.MaxAttempts}, nil
	default:
		return nil, fmt.Errorf("repro: unknown strategy %q (have %v)", name, Strategies())
	}
}

// Sequence returns the underlying (lazy) reservation sequence.
func (p *Plan) Sequence() *Sequence { return p.seq }

// Distribution returns the execution-time law the plan was built from.
func (p *Plan) Distribution() Distribution { return p.dist }

// CostModel returns the cost model the plan was built with.
func (p *Plan) CostModel() CostModel { return p.model }

// CostFor returns the total cost and the number of reservations paid
// for a job of actual duration t under this plan.
func (p *Plan) CostFor(t float64) (cost float64, attempts int, err error) {
	return p.model.RunCost(p.seq.Clone(), t)
}

// Simulate estimates the plan's expected cost over n sampled jobs (the
// paper's Monte-Carlo protocol) and returns the normalized estimate and
// its standard error.
func (p *Plan) Simulate(n int, seed uint64) (normalized, stderr float64, err error) {
	est, err := simulate.NormalizedCostOnSamples(p.model, p.dist, p.seq.Clone(), simulate.Samples(p.dist, n, seed), 0)
	if err != nil {
		return math.NaN(), math.NaN(), err
	}
	return est.Mean, est.StdErr, nil
}

// ReservedVsOnDemand reports whether this plan beats running on demand
// when reservations are priceRatio times cheaper per hour (e.g. 4 for
// the paper's AWS example).
func (p *Plan) ReservedVsOnDemand(priceRatio float64) (bool, error) {
	pr := platform.PriceRatio{Reserved: 1, OnDemand: priceRatio}
	return pr.ReservationWorthwhile(p.NormalizedCost)
}

// PlanStats are the closed-form operating statistics of a plan.
type PlanStats = core.SequenceStats

// Stats returns the plan's exact operating statistics (expected
// attempts, reserved and used time, utilization, attempt-count
// distribution).
func (p *Plan) Stats() (PlanStats, error) {
	return core.Stats(p.model, p.dist, p.seq.Clone())
}

// CostQuantile returns the p-quantile of the plan's total cost — e.g.
// CostQuantile(0.99) is the paid cost a job exceeds with probability 1%.
func (p *Plan) CostQuantile(prob float64) (float64, error) {
	return core.CostQuantile(p.model, p.dist, p.seq.Clone(), prob)
}
