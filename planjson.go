package repro

import "encoding/json"

// PlanSummary is the machine-readable form of a Plan, as emitted by
// Plan.JSON and `reserve -json`.
type PlanSummary struct {
	// Strategy is the strategy name the plan was built with.
	Strategy string `json:"strategy"`
	// CostModel holds the α, β, γ parameters.
	CostModel struct {
		Alpha float64 `json:"alpha"`
		Beta  float64 `json:"beta"`
		Gamma float64 `json:"gamma"`
	} `json:"cost_model"`
	// Reservations is the materialized prefix of the sequence.
	Reservations []float64 `json:"reservations"`
	// ExpectedCost is the exact Eq.-(4) expected cost.
	ExpectedCost float64 `json:"expected_cost"`
	// NormalizedCost is ExpectedCost over the omniscient cost.
	NormalizedCost float64 `json:"normalized_cost"`
}

// Summary returns the machine-readable form of the plan.
func (p *Plan) Summary() PlanSummary {
	var s PlanSummary
	s.Strategy = p.Strategy
	s.CostModel.Alpha = p.model.Alpha
	s.CostModel.Beta = p.model.Beta
	s.CostModel.Gamma = p.model.Gamma
	s.Reservations = append([]float64(nil), p.Reservations...)
	s.ExpectedCost = p.ExpectedCost
	s.NormalizedCost = p.NormalizedCost
	return s
}

// JSON renders the plan summary as indented JSON.
func (p *Plan) JSON() ([]byte, error) {
	return json.MarshalIndent(p.Summary(), "", "  ")
}
