package repro

import (
	"encoding/json"
	"fmt"
)

// PlanSummary is the machine-readable form of a Plan, as emitted by
// Plan.JSON, `reserve -json`, and the plan service's /v1/plan endpoint.
type PlanSummary struct {
	// Strategy is the strategy name the plan was built with.
	Strategy string `json:"strategy"`
	// Distribution is the canonical spec of the execution-time law
	// (see ParseDistribution); empty when the law has no spec
	// (empirical, mixtures, wrappers).
	Distribution string `json:"distribution,omitempty"`
	// CostModel holds the α, β, γ parameters.
	CostModel struct {
		Alpha float64 `json:"alpha"`
		Beta  float64 `json:"beta"`
		Gamma float64 `json:"gamma"`
	} `json:"cost_model"`
	// Reservations is the materialized prefix of the sequence.
	Reservations []float64 `json:"reservations"`
	// ExpectedCost is the exact Eq.-(4) expected cost.
	ExpectedCost float64 `json:"expected_cost"`
	// NormalizedCost is ExpectedCost over the omniscient cost.
	NormalizedCost float64 `json:"normalized_cost"`
}

// Summary returns the machine-readable form of the plan.
func (p *Plan) Summary() PlanSummary {
	var s PlanSummary
	s.Strategy = p.Strategy
	if spec, err := DistributionSpec(p.dist); err == nil {
		s.Distribution = spec
	}
	s.CostModel.Alpha = p.model.Alpha
	s.CostModel.Beta = p.model.Beta
	s.CostModel.Gamma = p.model.Gamma
	s.Reservations = append([]float64(nil), p.Reservations...)
	s.ExpectedCost = p.ExpectedCost
	s.NormalizedCost = p.NormalizedCost
	return s
}

// JSON renders the plan summary as indented JSON.
func (p *Plan) JSON() ([]byte, error) {
	return json.MarshalIndent(p.Summary(), "", "  ")
}

// ParsePlanSummary decodes a PlanSummary produced by Plan.JSON (or the
// plan service) and validates it: the strategy name must be known (or
// empty, meaning the default), the distribution spec — when present —
// must parse, and the cost model must satisfy the paper's constraints.
func ParsePlanSummary(data []byte) (PlanSummary, error) {
	var s PlanSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return PlanSummary{}, fmt.Errorf("repro: plan summary: %w", err)
	}
	if s.Strategy != "" {
		if _, err := (Options{}).withDefaults().resolve(s.Strategy); err != nil {
			return PlanSummary{}, err
		}
	}
	if s.Distribution != "" {
		if _, err := ParseDistribution(s.Distribution); err != nil {
			return PlanSummary{}, err
		}
	}
	m := CostModel{Alpha: s.CostModel.Alpha, Beta: s.CostModel.Beta, Gamma: s.CostModel.Gamma}
	if err := m.Validate(); err != nil {
		return PlanSummary{}, fmt.Errorf("repro: plan summary: %w", err)
	}
	return s, nil
}
