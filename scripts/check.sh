#!/usr/bin/env bash
# check.sh — the canonical tier-1+ verification gate for this repo.
#
# Every PR must pass this end-to-end. It layers, in order:
#   1. go build   — everything compiles
#   2. go vet     — the toolchain's own static checks
#   3. cmd/lint   — the repo-specific determinism/concurrency/allocation
#                   analyzers (floatcmp, rngdiscipline, maporder,
#                   errcheck-lite, synccheck, hotalloc, ifaceescape,
#                   mutexcopy, valuerecv; see DESIGN.md "Static analysis
#                   & determinism invariants")
#   4. cmd/lint -escapes — the compiler escape-analysis gate: heap
#      escapes inside //repro:hotpath functions must match the committed
#      ESCAPES.json baseline exactly (regenerate deliberate cold-path
#      additions with `go run ./cmd/lint -escapes -write`)
#   5. go test    — the full unit/integration suite
#   6. go test -race over the concurrency substrate: the parallel
#      worker pool, the simulators that fan out onto it (including the
#      cluster simulator's parallel workload generation), the core
#      package whose shared-cursor scoring runs on worker blocks, the
#      DP package whose verify/fallback switches are process-wide
#      atomics exercised from concurrent solves, and the serving tier
#      (service backend/frontend, shard ring, tenant limiter, client).
#   7. loadgen smoke — a one-to-two-second in-process fleet run
#      (cmd/loadgen -smoke) asserting the sharded serving invariants:
#      cold misses == unique specs (deterministic routing) and a
#      warmed Table-1 fleet serves at a 100% hit ratio.
#   8. clustersim smoke — the simulator's built-in gate (cmd/clustersim
#      -smoke): a small (strategy × shape × replicate) sweep matrix must
#      be bit-identical for 1, 4, and 16 workers, and the streaming
#      quantile sketch must agree with exact sorted-sample quantiles
#      within its documented error bound.
#   9. fuzz smoke — a few seconds of the cluster ledger/backfill/event-
#      core fuzz targets on top of their committed corpora
#      (testdata/fuzz), so a freshly broken invariant is found here, not
#      in a nightly.
#
# Usage: scripts/check.sh [--bench] [--compare]
#
# --bench additionally runs scripts/bench.sh after the gates pass,
# refreshing BENCH.json with the scoring-benchmark numbers. --compare
# instead re-runs the benchmarks and fails if any ns/op regressed by
# more than 25% against the committed BENCH.json. Both are opt-in so
# the default gate stays fast.
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=0
run_compare=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    --compare) run_compare=1 ;;
    *) echo "check.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "== go run ./cmd/lint -escapes ./..."
go run ./cmd/lint -escapes ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency substrate)"
go test -race ./internal/parallel/... ./internal/simulate/... ./internal/queuesim/... ./internal/cluster/... ./internal/lru/... ./internal/service/... ./internal/core/... ./internal/dp/... ./internal/shard/... ./internal/tenant/... ./client/...

echo "== loadgen smoke (sharded serving invariants)"
go run ./cmd/loadgen -smoke

echo "== clustersim smoke (sweep determinism + sketch accuracy)"
go run ./cmd/clustersim -smoke

echo "== fuzz smoke (cluster ledger + backfill + event core)"
go test -run '^$' -fuzz '^FuzzLedger$' -fuzztime 3s ./internal/cluster/
go test -run '^$' -fuzz '^FuzzBackfill$' -fuzztime 3s ./internal/cluster/
go test -run '^$' -fuzz '^FuzzEventCore$' -fuzztime 3s ./internal/cluster/

echo "check.sh: all gates passed"

if [ "$run_bench" = 1 ]; then
  echo "== scripts/bench.sh"
  scripts/bench.sh
fi

if [ "$run_compare" = 1 ]; then
  echo "== scripts/bench.sh --compare"
  scripts/bench.sh --compare
fi
