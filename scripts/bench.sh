#!/usr/bin/env bash
# bench.sh — run the scoring benchmarks and refresh BENCH.json.
#
# Wraps cmd/bench: `go test -bench` over the candidate-scoring subset
# (Workload fast path vs CostOnSamples, brute-force search, Eq.-(4) and
# Eq.-(13) evaluation), parsed into a deterministic JSON report.
#
# Usage:
#   scripts/bench.sh                     # default subset -> BENCH.json
#   scripts/bench.sh -bench . -out all.json -benchtime 2s -count 3
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/bench "$@"
