#!/usr/bin/env bash
# bench.sh — run the scoring benchmarks and refresh BENCH.json.
#
# Wraps cmd/bench: `go test -bench` over the candidate-scoring subset
# (Workload fast path vs CostOnSamples, brute-force search, the fused
# analytic CostCursor vs per-candidate ExpectedCost, Eq.-(4) and
# Eq.-(13) evaluation), the DP solver set (sub-quadratic fast path vs
# the retained O(n²) reference scan at n = 256/4096/16384, plus the
# K-budgeted variant) and the batched grid-scoring pair
# (survival-lookup table vs per-candidate evaluation), parsed into a
# deterministic JSON report.
#
# Usage:
#   scripts/bench.sh                     # default subset -> BENCH.json
#   scripts/bench.sh -bench . -out all.json -benchtime 2s -count 3
#   scripts/bench.sh -cpuprofile cpu.out -memprofile mem.out
#   scripts/bench.sh --compare           # diff vs committed BENCH.json;
#                                        # exit nonzero on >25% ns/op
#                                        # regression, nothing written
#
# The allocs/op column of BENCH.json is the dynamic twin of the static
# allocation gate: the hotalloc/ifaceescape analyzers and the committed
# ESCAPES.json baseline (cmd/lint -escapes) keep the scoring kernels
# allocation-free at the source level, and --compare catches any
# regression those proofs miss at run time. An allocs/op increase on a
# scoring benchmark means a hot-path function gained an allocation —
# check `go run ./cmd/lint -escapes ./...` before touching the baseline.
#
# All other flags are passed through to cmd/bench (and from there to
# `go test`); profile files and the compiled test binary land in the
# repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

args=()
for arg in "$@"; do
  case "$arg" in
    --compare) args+=(-compare BENCH.json) ;;
    *) args+=("$arg") ;;
  esac
done

go run ./cmd/bench "${args[@]+"${args[@]}"}"
