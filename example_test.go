package repro_test

import (
	"fmt"

	"repro"
)

// ExampleMakePlan plans reservations for a uniformly distributed job
// under Reserved-Instance pricing; by Theorem 4 of the paper the
// optimal strategy is a single reservation at the upper support bound.
func ExampleMakePlan() {
	job, err := repro.Uniform(10, 20)
	if err != nil {
		panic(err)
	}
	plan, err := repro.MakePlan(repro.ReservationOnly, job, repro.StrategyEqualProb, repro.Options{DiscN: 500})
	if err != nil {
		panic(err)
	}
	fmt.Printf("reservations: %.0f\n", plan.Reservations)
	fmt.Printf("normalized cost: %.3f\n", plan.NormalizedCost)
	// Output:
	// reservations: [20]
	// normalized cost: 1.333
}

// ExamplePlan_CostFor prices individual runs under a plan.
func ExamplePlan_CostFor() {
	job, _ := repro.Uniform(10, 20)
	plan, _ := repro.MakePlan(repro.ReservationOnly, job, repro.StrategyEqualProb, repro.Options{DiscN: 100})
	cost, attempts, _ := plan.CostFor(17)
	fmt.Printf("cost %.0f over %d attempt(s)\n", cost, attempts)
	// Output:
	// cost 20 over 1 attempt(s)
}

// ExamplePlan_ReservedVsOnDemand reproduces the paper's §5.2 economics:
// under AWS's factor-4 price gap, reserving beats on-demand whenever
// the normalized cost stays below 4.
func ExamplePlan_ReservedVsOnDemand() {
	job, _ := repro.Exponential(1)
	plan, _ := repro.MakePlan(repro.ReservationOnly, job, repro.StrategyBruteForce, repro.Options{GridM: 1000})
	worthIt, _ := plan.ReservedVsOnDemand(4)
	fmt.Println(worthIt)
	// Output:
	// true
}

// ExampleFitLogNormal runs the paper's Fig.-1 pipeline on a small
// trace: fit a LogNormal law to observed execution times, then plan.
func ExampleFitLogNormal() {
	trace := []float64{95, 102, 110, 98, 120, 105, 99, 131, 93, 104}
	fitted, err := repro.FitLogNormal(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted mean: %.0f\n", fitted.Mean())
	// Output:
	// fitted mean: 106
}
