package client

import (
	"net/http"
	"net/http/httptest"
)

// HandlerTransport returns an http.RoundTripper that serves every
// request by invoking h directly, with no network or listener in
// between. It is how cmd/serve wires N in-process backend shards
// behind one frontend, and how tests and cmd/loadgen drive a whole
// fleet inside one process:
//
//	c, _ := client.New(client.Config{
//		BaseURL:    "http://shard0",
//		HTTPClient: &http.Client{Transport: client.HandlerTransport(backend)},
//	})
//
// The host in BaseURL is arbitrary — the transport ignores it.
func HandlerTransport(h http.Handler) http.RoundTripper {
	return handlerTransport{h: h}
}

type handlerTransport struct {
	h http.Handler
}

// RoundTrip implements http.RoundTripper by recording the handler's
// response in memory.
func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
