// Package client is the typed Go client of the plan service wire API
// (service/api). It is the single consumer-side implementation of the
// schema: the sharding frontend proxies through it to backend shards,
// the load generator drives fleets with it, and external programs use
// it as the supported SDK.
//
// Plan and simulate computations are pure functions of the request, so
// every request is idempotent; the client therefore retries transport
// errors and transient server statuses (502/503/504) with jittered
// exponential backoff. Deterministic failures (4xx, plan_failed 500)
// are never retried.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/service/api"
)

// Default retry parameters, used when the corresponding Config field
// is zero.
const (
	DefaultMaxRetries = 2
	DefaultRetryBase  = 50 * time.Millisecond
	DefaultRetryMax   = time.Second
)

// maxResponseBytes bounds how much of a response body the client reads.
const maxResponseBytes = 4 << 20

// Config tunes a Client.
type Config struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient issues the requests; nil selects a fresh http.Client.
	// Use HandlerTransport to talk to an in-process handler.
	HTTPClient *http.Client
	// Tenant, when set, is sent as the X-Tenant header on every
	// request, subjecting them to that tenant's fair-share quota.
	Tenant string
	// MaxRetries is how many times an idempotent request is retried
	// after the first attempt (default 2). Negative disables retries —
	// a frontend doing its own shard failover wants that.
	MaxRetries int
	// RetryBase and RetryMax bound the exponential backoff between
	// retries (defaults 50ms and 1s); the delay for attempt k is
	// min(RetryBase·2^k, RetryMax) scaled by a jitter factor in
	// [0.5, 1.5).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives the jitter stream, so a test or replayed load run
	// backs off deterministically.
	Seed uint64

	// sleep replaces the inter-retry wait in tests.
	sleep func(context.Context, time.Duration) error
}

// Client is a plan-service client. Construct with New; safe for
// concurrent use.
type Client struct {
	cfg Config

	mu     sync.Mutex
	jitter *rng.Source
}

// Raw is a verbatim service response: the exact bytes the service
// wrote plus the serving metadata headers. The frontend proxies Raw
// bodies through unchanged so cached responses stay byte-identical
// end to end.
type Raw struct {
	// Status is the HTTP status code.
	Status int
	// Body is the response body (JSON).
	Body []byte
	// Cache is the X-Cache header: "hit", "miss", or "coalesced".
	Cache string
	// Shard is the X-Shard header a frontend set, if any.
	Shard string
}

// APIError is a structured non-2xx service response.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable error code (see api.Codes).
	Code string
	// Message is the human-readable detail.
	Message string
	// RetryAfter is how long an over_quota response asked us to wait.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("plan service: %s (%d): %s", e.Code, e.Status, e.Message)
}

// New builds a Client for the service at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if strings.TrimSpace(cfg.BaseURL) == "" {
		return nil, fmt.Errorf("client: BaseURL must be set")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.sleep == nil {
		cfg.sleep = sleepCtx
	}
	return &Client{cfg: cfg, jitter: rng.New(cfg.Seed)}, nil
}

// Plan computes a reservation plan. Non-2xx responses come back as
// *APIError.
func (c *Client) Plan(ctx context.Context, req api.PlanRequest) (api.PlanResponse, error) {
	var resp api.PlanResponse
	raw, err := c.PlanRaw(ctx, req)
	if err != nil {
		return resp, err
	}
	if err := decodeBody(raw, &resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// Simulate computes a plan and Monte-Carlo-evaluates it. Non-2xx
// responses come back as *APIError.
func (c *Client) Simulate(ctx context.Context, req api.SimulateRequest) (api.SimulateResponse, error) {
	var resp api.SimulateResponse
	raw, err := c.SimulateRaw(ctx, req)
	if err != nil {
		return resp, err
	}
	if err := decodeBody(raw, &resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// PlanRaw posts a plan request and returns the verbatim response,
// whatever its status. The error is non-nil only for transport-level
// failures that survived the retry budget.
func (c *Client) PlanRaw(ctx context.Context, req api.PlanRequest) (*Raw, error) {
	return c.post(ctx, api.PathPlan, req)
}

// SimulateRaw posts a simulate request and returns the verbatim
// response, whatever its status.
func (c *Client) SimulateRaw(ctx context.Context, req api.SimulateRequest) (*Raw, error) {
	return c.post(ctx, api.PathSimulate, req)
}

// Healthz probes the service's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+api.PathHealthz, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz returned status %d", resp.StatusCode)
	}
	return nil
}

// post issues one POST with the retry policy: transport errors and
// transient statuses (502/503/504) are retried with jittered
// exponential backoff; everything else returns immediately.
func (c *Client) post(ctx context.Context, path string, payload any) (*Raw, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	return c.PostRaw(ctx, path, body, c.cfg.Tenant)
}

// PostRaw posts a pre-encoded JSON body to path under the usual retry
// policy, with tenant (when non-empty) overriding the configured
// X-Tenant. The sharding frontend uses it to forward request bodies
// verbatim on behalf of the original tenant.
func (c *Client) PostRaw(ctx context.Context, path string, body []byte, tenant string) (*Raw, error) {
	if tenant == "" {
		tenant = c.cfg.Tenant
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		raw, err := c.once(ctx, path, body, tenant)
		switch {
		case err == nil && !transientStatus(raw.Status):
			return raw, nil
		case err == nil:
			lastErr = fmt.Errorf("client: %s returned transient status %d", path, raw.Status)
			// A transient status is still a complete response; keep it
			// in case the retry budget runs out.
			if attempt >= c.cfg.MaxRetries {
				return raw, nil
			}
		default:
			lastErr = err
			if attempt >= c.cfg.MaxRetries {
				return nil, lastErr
			}
		}
		if err := c.cfg.sleep(ctx, c.backoff(attempt)); err != nil {
			return nil, err
		}
	}
}

// once issues a single POST attempt.
func (c *Client) once(ctx context.Context, path string, body []byte, tenant string) (*Raw, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set(api.HeaderTenant, tenant)
	}
	resp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	return &Raw{
		Status: resp.StatusCode,
		Body:   b,
		Cache:  resp.Header.Get(api.HeaderCache),
		Shard:  resp.Header.Get(api.HeaderShard),
	}, nil
}

// backoff returns the jittered delay before retry number attempt.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	c.mu.Lock()
	u := c.jitter.Float64()
	c.mu.Unlock()
	return time.Duration((0.5 + u) * float64(d))
}

// transientStatus reports whether a status is worth retrying: the
// gateway-ish failures a different moment (or a recovered backend)
// can fix. Deterministic failures — 4xx, plan_failed 500 — are not.
func transientStatus(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// decodeBody turns a Raw into a typed response or *APIError.
func decodeBody(raw *Raw, out any) error {
	if raw.Status != http.StatusOK {
		var er api.ErrorResponse
		if err := json.Unmarshal(raw.Body, &er); err != nil || er.Error.Code == "" {
			return &APIError{Status: raw.Status, Code: "unknown", Message: string(raw.Body)}
		}
		return &APIError{
			Status:     raw.Status,
			Code:       er.Error.Code,
			Message:    er.Error.Message,
			RetryAfter: time.Duration(er.Error.RetryAfterSeconds * float64(time.Second)),
		}
	}
	if err := json.Unmarshal(raw.Body, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// sleepCtx waits for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
