package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/service/api"
)

// scriptedHandler serves canned responses in order, recording requests.
type scriptedHandler struct {
	t        *testing.T
	calls    atomic.Int32
	statuses []int // status per call; last repeats
	tenants  chan string
}

func (h *scriptedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(h.calls.Add(1)) - 1
	if h.tenants != nil {
		h.tenants <- r.Header.Get(api.HeaderTenant)
	}
	status := h.statuses[min(n, len(h.statuses)-1)]
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.HeaderCache, "miss")
	w.Header().Set(api.HeaderShard, "shard-1")
	if status != http.StatusOK {
		w.WriteHeader(status)
		var er api.ErrorResponse
		er.Error.Code = api.CodeUnavailable
		er.Error.Message = "scripted failure"
		_ = json.NewEncoder(w).Encode(er)
		return
	}
	var resp api.PlanResponse
	resp.CanonicalSpec = "exponential(1)"
	resp.Plan.Strategy = "brute-force"
	_ = json.NewEncoder(w).Encode(resp)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// newTestClient builds a client over h with an instant, recording
// sleep function.
func newTestClient(t *testing.T, h http.Handler, cfg Config) (*Client, *[]time.Duration) {
	t.Helper()
	var delays []time.Duration
	cfg.BaseURL = "http://fleet"
	cfg.HTTPClient = &http.Client{Transport: HandlerTransport(h)}
	cfg.sleep = func(_ context.Context, d time.Duration) error {
		delays = append(delays, d)
		return nil
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, &delays
}

func TestPlanTypedHappyPath(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{200}}
	c, _ := newTestClient(t, h, Config{})
	resp, err := c.Plan(context.Background(), api.PlanRequest{
		Distribution: "exp(1)", CostModel: api.CostModel{Alpha: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CanonicalSpec != "exponential(1)" || resp.Plan.Strategy != "brute-force" {
		t.Errorf("resp = %+v", resp)
	}
	if got := h.calls.Load(); got != 1 {
		t.Errorf("%d calls, want 1", got)
	}
}

func TestRawCarriesServingMetadata(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{200}}
	c, _ := newTestClient(t, h, Config{})
	raw, err := c.PlanRaw(context.Background(), api.PlanRequest{Distribution: "exp(1)"})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Status != 200 || raw.Cache != "miss" || raw.Shard != "shard-1" {
		t.Errorf("raw = %+v", raw)
	}
	if len(raw.Body) == 0 {
		t.Error("raw body empty")
	}
}

func TestTenantHeaderSent(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{200}, tenants: make(chan string, 1)}
	c, _ := newTestClient(t, h, Config{Tenant: "team-a"})
	if _, err := c.PlanRaw(context.Background(), api.PlanRequest{Distribution: "exp(1)"}); err != nil {
		t.Fatal(err)
	}
	if tenant := <-h.tenants; tenant != "team-a" {
		t.Errorf("X-Tenant = %q", tenant)
	}
}

// TestRetriesTransientThenSucceeds: 503s are retried with backoff; the
// eventual 200 is returned and the delays grow exponentially within
// the jitter envelope.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{503, 503, 200}}
	c, delays := newTestClient(t, h, Config{MaxRetries: 3, RetryBase: 100 * time.Millisecond, RetryMax: 10 * time.Second})
	resp, err := c.Plan(context.Background(), api.PlanRequest{Distribution: "exp(1)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CanonicalSpec != "exponential(1)" {
		t.Errorf("resp = %+v", resp)
	}
	if got := h.calls.Load(); got != 3 {
		t.Errorf("%d calls, want 3", got)
	}
	if len(*delays) != 2 {
		t.Fatalf("delays = %v, want 2", *delays)
	}
	for i, d := range *delays {
		base := 100 * time.Millisecond << uint(i)
		lo, hi := time.Duration(0.5*float64(base)), time.Duration(1.5*float64(base))
		if d < lo || d >= hi {
			t.Errorf("delay[%d] = %v outside jitter envelope [%v, %v)", i, d, lo, hi)
		}
	}
}

// TestTransientExhaustsBudget: when every attempt returns 503, the
// final transient response is handed back (typed decoding turns it
// into *APIError) rather than losing the body.
func TestTransientExhaustsBudget(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{503}}
	c, _ := newTestClient(t, h, Config{MaxRetries: 2})
	_, err := c.Plan(context.Background(), api.PlanRequest{Distribution: "exp(1)"})
	var aerr *APIError
	if !errors.As(err, &aerr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if aerr.Status != 503 || aerr.Code != api.CodeUnavailable {
		t.Errorf("aerr = %+v", aerr)
	}
	if got := h.calls.Load(); got != 3 {
		t.Errorf("%d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestNoRetryOnDeterministicFailure: 4xx and 500 are not retried.
func TestNoRetryOnDeterministicFailure(t *testing.T) {
	for _, status := range []int{400, 404, 429, 500} {
		h := &scriptedHandler{t: t, statuses: []int{status}}
		c, delays := newTestClient(t, h, Config{})
		_, err := c.Plan(context.Background(), api.PlanRequest{Distribution: "exp(1)"})
		var aerr *APIError
		if !errors.As(err, &aerr) || aerr.Status != status {
			t.Fatalf("status %d: err = %v", status, err)
		}
		if got := h.calls.Load(); got != 1 {
			t.Errorf("status %d: %d calls, want 1", status, got)
		}
		if len(*delays) != 0 {
			t.Errorf("status %d: slept %v", status, *delays)
		}
	}
}

// TestRetryDisabled: MaxRetries < 0 issues exactly one attempt.
func TestRetryDisabled(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{503}}
	c, delays := newTestClient(t, h, Config{MaxRetries: -1})
	raw, err := c.PlanRaw(context.Background(), api.PlanRequest{Distribution: "exp(1)"})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Status != 503 || h.calls.Load() != 1 || len(*delays) != 0 {
		t.Errorf("status %d, calls %d, delays %v", raw.Status, h.calls.Load(), *delays)
	}
}

// failingTransport errors n times, then delegates.
type failingTransport struct {
	n     atomic.Int32
	limit int32
	next  http.RoundTripper
}

func (f *failingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.n.Add(1) <= f.limit {
		return nil, errors.New("connection refused (scripted)")
	}
	return f.next.RoundTrip(req)
}

func TestRetriesTransportErrors(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{200}}
	ft := &failingTransport{limit: 2, next: HandlerTransport(h)}
	var c *Client
	var err error
	c, err = New(Config{
		BaseURL:    "http://fleet",
		HTTPClient: &http.Client{Transport: ft},
		MaxRetries: 2,
		sleep:      func(context.Context, time.Duration) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(context.Background(), api.PlanRequest{Distribution: "exp(1)"}); err != nil {
		t.Fatal(err)
	}
	if got := h.calls.Load(); got != 1 {
		t.Errorf("handler saw %d calls, want 1 (after 2 transport failures)", got)
	}

	// With the budget exhausted, the transport error surfaces.
	ft2 := &failingTransport{limit: 100, next: HandlerTransport(h)}
	c2, err := New(Config{
		BaseURL:    "http://fleet",
		HTTPClient: &http.Client{Transport: ft2},
		MaxRetries: 1,
		sleep:      func(context.Context, time.Duration) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Plan(context.Background(), api.PlanRequest{Distribution: "exp(1)"}); err == nil {
		t.Error("want transport error after retries exhausted")
	}
}

func TestHealthz(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.PathHealthz || r.Method != http.MethodGet {
			w.WriteHeader(404)
			return
		}
		w.WriteHeader(200)
	})
	c, _ := newTestClient(t, ok, Config{})
	if err := c.Healthz(context.Background()); err != nil {
		t.Errorf("healthz on healthy service: %v", err)
	}
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(500) })
	c2, _ := newTestClient(t, down, Config{})
	if err := c2.Healthz(context.Background()); err == nil {
		t.Error("healthz on broken service: want error")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty BaseURL accepted")
	}
	c, err := New(Config{BaseURL: "http://x/"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.BaseURL != "http://x" {
		t.Errorf("trailing slash kept: %q", c.cfg.BaseURL)
	}
	if c.cfg.MaxRetries != DefaultMaxRetries || c.cfg.RetryBase != DefaultRetryBase || c.cfg.RetryMax != DefaultRetryMax {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
}

// TestBackoffDeterministicPerSeed: two clients with one seed produce
// identical jittered delays; the cap holds for large attempts.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	mk := func() *Client {
		c, err := New(Config{BaseURL: "http://x", Seed: 11, RetryBase: 10 * time.Millisecond, RetryMax: 80 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for i := 0; i < 8; i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Fatalf("attempt %d: %v != %v with equal seeds", i, da, db)
		}
		if da >= time.Duration(1.5*float64(80*time.Millisecond)) {
			t.Errorf("attempt %d: delay %v above jittered cap", i, da)
		}
	}
}

// TestSleepHonorsContext: a canceled context aborts the retry loop.
func TestSleepHonorsContext(t *testing.T) {
	h := &scriptedHandler{t: t, statuses: []int{503}}
	c, err := New(Config{
		BaseURL:    "http://fleet",
		HTTPClient: &http.Client{Transport: HandlerTransport(h)},
		MaxRetries: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.PlanRaw(ctx, api.PlanRequest{Distribution: "exp(1)"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
