package repro

import (
	"math"
	"strings"
	"testing"
)

func TestParseDistributionValid(t *testing.T) {
	cases := []struct {
		in       string
		wantName string
		wantMean float64
	}{
		{"exponential(1)", "Exponential", 1},
		{"exp(2)", "Exponential", 0.5},
		{"weibull(1,0.5)", "Weibull", 2},
		{"gamma(2,2)", "Gamma", 1},
		{"lognormal(3,0.5)", "LogNormal", math.Exp(3.125)},
		{"truncnormal(8,1.4142135623730951,0)", "TruncatedNormal", 0}, // mean checked loosely below
		{"pareto(1.5,3)", "Pareto", 2.25},
		{"uniform(10,20)", "Uniform", 15},
		{"beta(2,2)", "Beta", 0.5},
		{"boundedpareto(1,20,2.1)", "BoundedPareto", 0},
		{"  Uniform( 10 , 20 ) ", "Uniform", 15}, // whitespace and case
	}
	for _, c := range cases {
		d, err := ParseDistribution(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if !strings.Contains(d.Name(), c.wantName) {
			t.Errorf("%q parsed to %s", c.in, d.Name())
		}
		if c.wantMean > 0 && math.Abs(d.Mean()-c.wantMean) > 1e-9*c.wantMean {
			t.Errorf("%q: mean %g, want %g", c.in, d.Mean(), c.wantMean)
		}
	}
}

func TestParseDistributionInvalid(t *testing.T) {
	bad := []string{
		"",
		"exponential",         // no parens
		"exponential(",        // unbalanced
		"exponential()",       // missing param
		"exponential(1,2)",    // too many params
		"exponential(zero)",   // non-numeric
		"exponential(-1)",     // constructor rejects
		"uniform(20,10)",      // constructor rejects
		"nosuchlaw(1)",        // unknown
		"weibull(1)",          // arity
		"boundedpareto(1,20)", // arity
	}
	for _, in := range bad {
		if _, err := ParseDistribution(in); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}

// TestDistributionSpecRoundTrip: Spec∘Parse is the identity on
// canonical specs, and Parse∘Spec reproduces the distribution exactly
// (Name carries the full parameter vector).
func TestDistributionSpecRoundTrip(t *testing.T) {
	specs := []string{
		"exponential(1)",
		"exponential(0.3333333333333333)",
		"weibull(1,0.5)",
		"gamma(2,2)",
		"lognormal(7.1128,0.2039)",
		"truncnormal(8,1.4142135623730951,0)",
		"pareto(1.5,3)",
		"uniform(10,20)",
		"beta(2,2)",
		"boundedpareto(1,20,2.1)",
	}
	for _, s := range specs {
		d, err := ParseDistribution(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		got, err := DistributionSpec(d)
		if err != nil {
			t.Fatalf("%q: spec: %v", s, err)
		}
		if got != s {
			t.Errorf("spec round-trip %q -> %q", s, got)
		}
		back, err := ParseDistribution(got)
		if err != nil {
			t.Fatalf("%q: reparse: %v", got, err)
		}
		if back.Name() != d.Name() {
			t.Errorf("%q: reparse changed law: %s vs %s", s, back.Name(), d.Name())
		}
	}
}

// TestDistributionSpecCanonicalizes: aliases and formatting variants
// map onto one canonical spec.
func TestDistributionSpecCanonicalizes(t *testing.T) {
	variants := []string{"exp(1)", "Exponential(1.0)", " exponential( 1 ) ", "exponential(1e0)"}
	for _, v := range variants {
		d, err := ParseDistribution(v)
		if err != nil {
			t.Fatalf("%q: %v", v, err)
		}
		got, err := DistributionSpec(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != "exponential(1)" {
			t.Errorf("%q canonicalized to %q", v, got)
		}
	}
}

// TestDistributionSpecUnsupported: laws outside the grammar report a
// clean error.
func TestDistributionSpecUnsupported(t *testing.T) {
	emp, err := Empirical([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistributionSpec(emp); err == nil {
		t.Error("empirical law unexpectedly has a spec")
	}
	a, _ := Exponential(1)
	b, _ := Exponential(2)
	mix, err := Mixture([]Distribution{a, b}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistributionSpec(mix); err == nil {
		t.Error("mixture unexpectedly has a spec")
	}
}

// FuzzParseDistribution hardens the shared distribution parser:
// arbitrary input must either produce a usable distribution or a clean
// error — never a panic, NaN mean, or invalid support. Successful
// parses of Speccer laws must also spec-round-trip.
func FuzzParseDistribution(f *testing.F) {
	seeds := []string{
		"exponential(1)", "exp(0.5)", "weibull(1,0.5)", "gamma(2,2)",
		"lognormal(3,0.5)", "truncnormal(8,1.41,0)", "pareto(1.5,3)",
		"uniform(10,20)", "beta(2,2)", "boundedpareto(1,20,2.1)",
		"", "()", "exp", "exp()", "exp(,)", "exp(1,2,3)", "exp(1e309)",
		"exp(-1)", "exp(nan)", "exp(inf)", "uniform(20,10)",
		"EXPONENTIAL(1)", " beta ( 2 , 2 ) ", "beta(2,2))", "((",
		"lognormal(0,0)", "pareto(0,3)", "weird(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ParseDistribution(in)
		if err != nil {
			if d != nil {
				t.Errorf("%q: non-nil distribution with error %v", in, err)
			}
			return
		}
		if d == nil {
			t.Fatalf("%q: nil distribution without error", in)
		}
		m := d.Mean()
		if math.IsNaN(m) || m < 0 {
			t.Errorf("%q: invalid mean %g", in, m)
		}
		lo, hi := d.Support()
		if math.IsNaN(lo) || lo < 0 || !(hi > lo) {
			t.Errorf("%q: invalid support [%g, %g]", in, lo, hi)
		}
		// The quantile at the median must be inside the support.
		med := d.Quantile(0.5)
		if med < lo-1e-9 || (!math.IsInf(hi, 1) && med > hi+1e-9) {
			t.Errorf("%q: median %g outside [%g, %g]", in, med, lo, hi)
		}
		spec, err := DistributionSpec(d)
		if err != nil {
			t.Fatalf("%q: parsed law has no spec: %v", in, err)
		}
		back, err := ParseDistribution(spec)
		if err != nil {
			t.Errorf("%q: canonical spec %q does not reparse: %v", in, spec, err)
		} else if back.Name() != d.Name() {
			t.Errorf("%q: spec %q reparses to %s, want %s", in, spec, back.Name(), d.Name())
		}
	})
}
