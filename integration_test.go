package repro

// Integration tests: the full pipelines across modules, end to end —
// trace generation → fitting → planning → platform replay → economics,
// and the internal consistency of every strategy against both cost
// evaluators and the replay simulator.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/platform"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// TestEndToEndNeuroHPCPipeline walks the complete §5.3 scenario:
// synthetic trace → LogNormal fit → unit conversion → wait-time fit →
// cost model → plan per strategy → replay, asserting cross-module
// consistency at each joint.
func TestEndToEndNeuroHPCPipeline(t *testing.T) {
	// 1. Execution trace and fit.
	runs, err := trace.GenerateRunTrace(trace.VBMQA, 4000, 0.01, 21)
	if err != nil {
		t.Fatal(err)
	}
	fitSec, err := dist.FitLogNormal(runs)
	if err != nil {
		t.Fatal(err)
	}
	if ks := dist.KSStatistic(runs, fitSec); ks > 0.03 {
		t.Fatalf("trace fit KS = %g", ks)
	}
	// 2. Unit conversion through the generic scaler.
	d, err := dist.NewScaled(fitSec, 1/platform.SecondsPerHour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-fitSec.Mean()/3600) > 1e-9 {
		t.Fatal("unit conversion broke the mean")
	}
	// 3. Queue model fit.
	wlog, err := trace.GenerateWaitTimeLog(trace.Intrepid409, 20, 600, 72000, 0.03, 22)
	if err != nil {
		t.Fatal(err)
	}
	wfit, err := trace.FitWaitTimeModel(wlog)
	if err != nil {
		t.Fatal(err)
	}
	m := platform.NeuroHPCFromWaitModel(wfit)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	// 4. Plans for every strategy; 5. replay the best.
	bestCost := math.Inf(1)
	var bestPlan *Plan
	for _, name := range Strategies() {
		p, err := MakePlan(m, d, name, Options{GridM: 600, DiscN: 400})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Analytic and Monte-Carlo evaluations agree for every plan.
		norm, se, err := p.Simulate(20000, 23)
		if err != nil {
			t.Fatalf("%s simulate: %v", name, err)
		}
		if math.Abs(norm-p.NormalizedCost) > 5*se+0.02 {
			t.Errorf("%s: MC %g ± %g vs analytic %g", name, norm, se, p.NormalizedCost)
		}
		if p.ExpectedCost < bestCost {
			bestCost, bestPlan = p.ExpectedCost, p
		}
	}

	rep, err := platform.Replay(m, d, bestPlan.Sequence().Clone(), 30000, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanCost-bestCost) > 0.03*bestCost {
		t.Errorf("replay %g vs analytic %g", rep.MeanCost, bestCost)
	}
	if rep.Utilization <= 0.2 || rep.Utilization > 1 {
		t.Errorf("utilization %g", rep.Utilization)
	}
}

// TestStrategyCoherenceAcrossEvaluators: for every Table-1 distribution
// and every strategy, the three cost evaluators (Eq. 4 summation,
// Eq. 3 integral, Eq. 13 Monte Carlo) agree.
func TestStrategyCoherenceAcrossEvaluators(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := Options{GridM: 400, DiscN: 300}
	for _, d := range dist.Table1() {
		for _, name := range []string{StrategyBruteForce, StrategyMeanDoubling, StrategyEqualProb} {
			p, err := MakePlan(ReservationOnly, d, name, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", d.Name(), name, err)
			}
			integral, err := core.ExpectedCostIntegral(ReservationOnly, d, p.Sequence().Clone())
			if err != nil {
				t.Fatalf("%s/%s integral: %v", d.Name(), name, err)
			}
			if math.Abs(integral-p.ExpectedCost) > 2e-4*math.Max(1, p.ExpectedCost) {
				t.Errorf("%s/%s: integral %g vs summation %g", d.Name(), name, integral, p.ExpectedCost)
			}
			est, err := simulate.EstimateCost(ReservationOnly, d, p.Sequence().Clone(), 40000, 77, 0)
			if err != nil {
				t.Fatalf("%s/%s MC: %v", d.Name(), name, err)
			}
			if math.Abs(est.Mean-p.ExpectedCost) > 5*est.StdErr+0.01*p.ExpectedCost {
				t.Errorf("%s/%s: MC %g ± %g vs %g", d.Name(), name, est.Mean, est.StdErr, p.ExpectedCost)
			}
		}
	}
}

// TestEconomicsPipeline: fleet economics across distributions — the
// reservation decision flips as the price ratio shrinks below each
// plan's normalized cost.
func TestEconomicsPipeline(t *testing.T) {
	for _, d := range dist.Table1() {
		p, err := MakePlan(ReservationOnly, d, StrategyEqualProb, Options{DiscN: 400})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		above, err := p.ReservedVsOnDemand(p.NormalizedCost * 1.01)
		if err != nil || !above {
			t.Errorf("%s: ratio just above cost should favour reserving", d.Name())
		}
		below, err := p.ReservedVsOnDemand(p.NormalizedCost * 0.99)
		if err != nil || below {
			t.Errorf("%s: ratio just below cost should favour on-demand", d.Name())
		}
	}
}

// TestCheckpointVsPlainAcrossTails: the checkpoint advantage grows with
// tail weight — heavy-tailed Weibull gains more than light-tailed
// TruncatedNormal-like laws.
func TestCheckpointVsPlainAcrossTails(t *testing.T) {
	gain := func(d Distribution) float64 {
		pol, err := MakeCheckpointPlan(ReservationOnly, d, CheckpointParams{C: 0.02 * d.Mean(), R: 0.02 * d.Mean()}, Options{DiscN: 80})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := MakePlan(ReservationOnly, d, StrategyEqualProb, Options{DiscN: 80})
		if err != nil {
			t.Fatal(err)
		}
		return 1 - pol.ExpectedCost/plain.ExpectedCost
	}
	heavy, _ := Weibull(1, 0.5)
	light, _ := TruncatedNormal(8, 1.414, 0)
	gh, gl := gain(heavy), gain(light)
	if gh <= gl {
		t.Errorf("heavy-tail gain %g not above light-tail gain %g", gh, gl)
	}
	if gh < 0.15 {
		t.Errorf("heavy-tail gain %g suspiciously small", gh)
	}
}
