// Package resources implements the other extension proposed in the
// paper's conclusion (§7): "allowing requests with variable amount of
// resources, hence offering a combination of a reservation time and a
// number of processors".
//
// The model: a job has a random total work W (node-time units at unit
// speed) following a known law; on p processors it runs for
// T_p = σ(p)·W wall-clock units, where σ(p) is the per-unit-work time
// of a speedup model (e.g. Amdahl). A reservation is a pair (p, t1)
// costing
//
//	NodeAlpha·p·t1 + NodeBeta·p·min(t1, T_p) + Overhead + TimeWeight·t1
//
// — node-hours requested and used, a per-attempt overhead, and a
// valuation of the wall-clock time reserved (turnaround). For a fixed
// p this is exactly the paper's affine model over the scaled law
// σ(p)·W, so the per-p subproblem reuses the whole reservation
// machinery; Optimize solves it for every admissible p and returns the
// best combination.
package resources

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/strategy"
)

// SpeedupModel maps a processor count to the wall-clock time needed per
// unit of work.
type SpeedupModel interface {
	// TimePerWork returns σ(p) > 0, the time to complete one unit of
	// work on p processors.
	TimePerWork(p int) float64
	// Name identifies the model.
	Name() string
}

// Amdahl is the Amdahl speedup law with a serial fraction s:
// σ(p) = s + (1-s)/p.
type Amdahl struct {
	// SerialFraction is the fraction of the work that cannot be
	// parallelized, in [0, 1].
	SerialFraction float64
}

// NewAmdahl validates and returns an Amdahl model.
func NewAmdahl(serialFraction float64) (Amdahl, error) {
	if serialFraction < 0 || serialFraction > 1 || math.IsNaN(serialFraction) {
		return Amdahl{}, fmt.Errorf("resources: serial fraction must be in [0, 1], got %g", serialFraction)
	}
	return Amdahl{SerialFraction: serialFraction}, nil
}

// TimePerWork implements SpeedupModel.
func (a Amdahl) TimePerWork(p int) float64 {
	if p < 1 {
		return math.NaN()
	}
	return a.SerialFraction + (1-a.SerialFraction)/float64(p)
}

// Name implements SpeedupModel.
func (a Amdahl) Name() string {
	return fmt.Sprintf("Amdahl(s=%g)", a.SerialFraction)
}

// PowerLaw is the sublinear speedup σ(p) = p^{-e} for an efficiency
// exponent e in (0, 1]; e = 1 is perfect scaling.
type PowerLaw struct {
	// Exponent e in (0, 1].
	Exponent float64
}

// NewPowerLaw validates and returns a power-law model.
func NewPowerLaw(exponent float64) (PowerLaw, error) {
	if !(exponent > 0) || exponent > 1 {
		return PowerLaw{}, fmt.Errorf("resources: exponent must be in (0, 1], got %g", exponent)
	}
	return PowerLaw{Exponent: exponent}, nil
}

// TimePerWork implements SpeedupModel.
func (pl PowerLaw) TimePerWork(p int) float64 {
	if p < 1 {
		return math.NaN()
	}
	return math.Pow(float64(p), -pl.Exponent)
}

// Name implements SpeedupModel.
func (pl PowerLaw) Name() string {
	return fmt.Sprintf("PowerLaw(e=%g)", pl.Exponent)
}

// JobCost parameterizes the two-dimensional reservation cost.
type JobCost struct {
	// NodeAlpha prices each requested node-time unit.
	NodeAlpha float64
	// NodeBeta prices each used node-time unit.
	NodeBeta float64
	// Overhead is the fixed per-attempt cost (submission, queueing).
	Overhead float64
	// TimeWeight values each wall-clock unit of reserved time
	// (turnaround pressure); 0 means only node-hours matter.
	TimeWeight float64
}

// Validate checks the parameters.
func (c JobCost) Validate() error {
	for name, v := range map[string]float64{
		"NodeAlpha": c.NodeAlpha, "NodeBeta": c.NodeBeta,
		"Overhead": c.Overhead, "TimeWeight": c.TimeWeight,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("resources: %s must be nonnegative and finite, got %g", name, v)
		}
	}
	if c.NodeAlpha == 0 && c.TimeWeight == 0 {
		return errors.New("resources: need NodeAlpha > 0 or TimeWeight > 0 (cost must grow with the request)")
	}
	return nil
}

// ModelFor returns the paper-style affine cost model governing the
// fixed-p subproblem, in wall-clock time units.
func (c JobCost) ModelFor(p int) core.CostModel {
	return core.CostModel{
		Alpha: c.NodeAlpha*float64(p) + c.TimeWeight,
		Beta:  c.NodeBeta * float64(p),
		Gamma: c.Overhead,
	}
}

// Choice is the solution of one fixed-p subproblem.
type Choice struct {
	// Procs is the processor count.
	Procs int
	// ExpectedCost is the optimal expected cost at this p.
	ExpectedCost float64
	// Sequence is the wall-clock reservation sequence at this p.
	Sequence *core.Sequence
	// TimeDist is the execution-time law σ(p)·W.
	TimeDist dist.Distribution
	// Model is the affine cost model of the subproblem.
	Model core.CostModel
}

// Optimize solves the fixed-p subproblem for every processor count in
// procs with the given strategy and returns the best choice plus all
// per-p solutions (sorted as given). Processor counts must be >= 1.
func Optimize(work dist.Distribution, cost JobCost, su SpeedupModel, procs []int, st strategy.Strategy) (Choice, []Choice, error) {
	if err := cost.Validate(); err != nil {
		return Choice{}, nil, err
	}
	if work == nil || su == nil || st == nil {
		return Choice{}, nil, errors.New("resources: work law, speedup model and strategy are required")
	}
	if len(procs) == 0 {
		return Choice{}, nil, errors.New("resources: no processor counts to consider")
	}
	all := make([]Choice, 0, len(procs))
	best := Choice{ExpectedCost: math.Inf(1)}
	for _, p := range procs {
		if p < 1 {
			return Choice{}, nil, fmt.Errorf("resources: processor count must be >= 1, got %d", p)
		}
		sigma := su.TimePerWork(p)
		if !(sigma > 0) || math.IsNaN(sigma) {
			return Choice{}, nil, fmt.Errorf("resources: speedup model %s gives invalid σ(%d) = %g", su.Name(), p, sigma)
		}
		td, err := dist.NewScaled(work, sigma)
		if err != nil {
			return Choice{}, nil, err
		}
		m := cost.ModelFor(p)
		seq, err := st.Sequence(m, td)
		if err != nil {
			return Choice{}, nil, fmt.Errorf("resources: p=%d: %w", p, err)
		}
		e, err := core.ExpectedCost(m, td, seq.Clone())
		if err != nil {
			return Choice{}, nil, fmt.Errorf("resources: p=%d cost: %w", p, err)
		}
		ch := Choice{Procs: p, ExpectedCost: e, Sequence: seq, TimeDist: td, Model: m}
		all = append(all, ch)
		if e < best.ExpectedCost {
			best = ch
		}
	}
	return best, all, nil
}
