package resources_test

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/resources"
	"repro/internal/strategy"
)

// ExampleOptimize picks the processor count for an elastic request:
// with a serial fraction and only node-hours billed, one processor is
// cheapest; deadline pressure pushes the optimum up.
func ExampleOptimize() {
	work := dist.MustGamma(2, 2)
	su, _ := resources.NewAmdahl(0.2)
	bf := strategy.BruteForce{M: 400, Mode: strategy.EvalAnalytic}

	flat := resources.JobCost{NodeAlpha: 1}
	best, _, _ := resources.Optimize(work, flat, su, []int{1, 4, 16}, bf)
	fmt.Printf("node-hours only: p = %d\n", best.Procs)

	hurried := resources.JobCost{NodeAlpha: 1, TimeWeight: 30}
	best, _, _ = resources.Optimize(work, hurried, su, []int{1, 4, 16}, bf)
	fmt.Printf("with deadline pressure: p = %d\n", best.Procs)
	// Output:
	// node-hours only: p = 1
	// with deadline pressure: p = 16
}
