package resources

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/strategy"
)

func bf() strategy.Strategy {
	return strategy.BruteForce{M: 500, Mode: strategy.EvalAnalytic}
}

func TestSpeedupModels(t *testing.T) {
	a, err := NewAmdahl(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TimePerWork(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Amdahl σ(1) = %g, want 1", got)
	}
	// σ(p) → serial fraction as p → ∞.
	if got := a.TimePerWork(1 << 20); math.Abs(got-0.1) > 1e-5 {
		t.Errorf("Amdahl σ(big) = %g, want ≈0.1", got)
	}
	if !math.IsNaN(a.TimePerWork(0)) {
		t.Error("σ(0) should be NaN")
	}
	if _, err := NewAmdahl(1.5); err == nil {
		t.Error("serial fraction > 1 accepted")
	}

	pl, err := NewPowerLaw(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.TimePerWork(16); math.Abs(got-math.Pow(16, -0.8)) > 1e-12 {
		t.Errorf("PowerLaw σ(16) = %g", got)
	}
	if _, err := NewPowerLaw(0); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, err := NewPowerLaw(1.2); err == nil {
		t.Error("superlinear exponent accepted")
	}
	if a.Name() == "" || pl.Name() == "" {
		t.Error("empty model names")
	}
}

func TestJobCostValidate(t *testing.T) {
	if err := (JobCost{NodeAlpha: 1}).Validate(); err != nil {
		t.Errorf("valid cost rejected: %v", err)
	}
	if err := (JobCost{}).Validate(); err == nil {
		t.Error("all-zero cost accepted")
	}
	if err := (JobCost{NodeAlpha: -1}).Validate(); err == nil {
		t.Error("negative price accepted")
	}
}

func TestModelFor(t *testing.T) {
	c := JobCost{NodeAlpha: 2, NodeBeta: 1, Overhead: 3, TimeWeight: 5}
	m := c.ModelFor(4)
	if m.Alpha != 2*4+5 || m.Beta != 4 || m.Gamma != 3 {
		t.Errorf("model = %+v", m)
	}
}

// TestPerfectSpeedupIsProcsInvariant: with perfect scaling, no
// turnaround valuation and no overhead, node-hours are conserved, so
// every p costs the same.
func TestPerfectSpeedupIsProcsInvariant(t *testing.T) {
	work := dist.MustLogNormal(1, 0.5)
	cost := JobCost{NodeAlpha: 1}
	su, _ := NewPowerLaw(1) // σ(p) = 1/p
	best, all, err := Optimize(work, cost, su, []int{1, 2, 8, 64}, bf())
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range all {
		if math.Abs(ch.ExpectedCost-all[0].ExpectedCost) > 0.01*all[0].ExpectedCost {
			t.Errorf("p=%d: cost %g differs from p=1 cost %g", ch.Procs, ch.ExpectedCost, all[0].ExpectedCost)
		}
	}
	if best.ExpectedCost > all[0].ExpectedCost+1e-9 {
		t.Errorf("best %g worse than p=1 %g", best.ExpectedCost, all[0].ExpectedCost)
	}
}

// TestSerialFractionFavoursFewProcs: with a serial fraction and only
// node-hours priced, parallelism burns node-time on the serial part, so
// p = 1 wins.
func TestSerialFractionFavoursFewProcs(t *testing.T) {
	work := dist.MustGamma(2, 2)
	cost := JobCost{NodeAlpha: 1}
	su, _ := NewAmdahl(0.2)
	best, all, err := Optimize(work, cost, su, []int{1, 2, 4, 16}, bf())
	if err != nil {
		t.Fatal(err)
	}
	if best.Procs != 1 {
		t.Errorf("best p = %d, want 1 (costs: %v)", best.Procs, costsOf(all))
	}
	// Costs increase with p.
	for i := 1; i < len(all); i++ {
		if all[i].ExpectedCost < all[i-1].ExpectedCost-1e-9 {
			t.Errorf("cost not increasing in p: %v", costsOf(all))
		}
	}
}

// TestTurnaroundPressureCreatesInteriorOptimum: valuing wall-clock time
// pushes toward more processors; with a serial fraction the optimum is
// interior.
func TestTurnaroundPressureCreatesInteriorOptimum(t *testing.T) {
	work := dist.MustLogNormal(1, 0.4)
	cost := JobCost{NodeAlpha: 1, TimeWeight: 20}
	su, _ := NewAmdahl(0.05)
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128}
	best, all, err := Optimize(work, cost, su, procs, bf())
	if err != nil {
		t.Fatal(err)
	}
	if best.Procs == 1 || best.Procs == 128 {
		t.Errorf("expected interior optimum, got p = %d (costs %v)", best.Procs, costsOf(all))
	}
	// The best really is the minimum of the per-p costs.
	for _, ch := range all {
		if ch.ExpectedCost < best.ExpectedCost-1e-9 {
			t.Errorf("p=%d beats reported best: %g < %g", ch.Procs, ch.ExpectedCost, best.ExpectedCost)
		}
	}
}

// TestScaledSubproblemConsistency: at p=1 with σ(1)=1 the subproblem is
// exactly the base problem.
func TestScaledSubproblemConsistency(t *testing.T) {
	work := dist.MustExponential(1)
	cost := JobCost{NodeAlpha: 1}
	su, _ := NewAmdahl(0.3)
	_, all, err := Optimize(work, cost, su, []int{1}, bf())
	if err != nil {
		t.Fatal(err)
	}
	ch := all[0]
	if math.Abs(ch.TimeDist.Mean()-1) > 1e-9 {
		t.Errorf("p=1 time law mean %g, want 1", ch.TimeDist.Mean())
	}
	if ch.Model.Alpha != 1 || ch.Model.Beta != 0 || ch.Model.Gamma != 0 {
		t.Errorf("p=1 model %+v", ch.Model)
	}
	if ch.ExpectedCost < 2.2 || ch.ExpectedCost > 2.5 {
		t.Errorf("p=1 cost %g, want ≈2.36 (the Exp(1) optimum)", ch.ExpectedCost)
	}
}

func TestOptimizeValidation(t *testing.T) {
	work := dist.MustExponential(1)
	su, _ := NewAmdahl(0)
	if _, _, err := Optimize(nil, JobCost{NodeAlpha: 1}, su, []int{1}, bf()); err == nil {
		t.Error("nil work accepted")
	}
	if _, _, err := Optimize(work, JobCost{}, su, []int{1}, bf()); err == nil {
		t.Error("invalid cost accepted")
	}
	if _, _, err := Optimize(work, JobCost{NodeAlpha: 1}, su, nil, bf()); err == nil {
		t.Error("empty proc list accepted")
	}
	if _, _, err := Optimize(work, JobCost{NodeAlpha: 1}, su, []int{0}, bf()); err == nil {
		t.Error("p=0 accepted")
	}
}

func costsOf(all []Choice) []float64 {
	out := make([]float64, len(all))
	for i, c := range all {
		out[i] = c.ExpectedCost
	}
	return out
}
