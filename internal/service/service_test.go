package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/parallel"
	"repro/service/api"
)

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fakeClock is a deterministic Config.Now: every reading advances by
// one millisecond.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func newTestServer(t *testing.T, cfg Config) (*Backend, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post issues a POST and returns status, X-Cache header, and body.
func post(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

func errorCode(t *testing.T, body []byte) string {
	t.Helper()
	var e api.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not structured JSON: %v\n%s", err, body)
	}
	return e.Error.Code
}

const basePlanBody = `{
  "distribution": "lognormal(3,0.5)",
  "cost_model": {"alpha": 1},
  "strategy": "equal-probability",
  "options": {"disc_n": 200}
}`

// TestPlanEndpoint: the served plan matches the library's MakePlan and
// carries the closed-form stats.
func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, cache, body := post(t, ts.URL+"/v1/plan", basePlanBody)
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d, X-Cache %q\n%s", status, cache, body)
	}
	var resp api.PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	d, _ := repro.LogNormal(3, 0.5)
	want, err := repro.MakePlan(repro.ReservationOnly, d, repro.StrategyEqualProb,
		repro.Options{DiscN: 200, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Plan.ExpectedCost != want.ExpectedCost || resp.Plan.NormalizedCost != want.NormalizedCost {
		t.Errorf("cost %g/%g, want %g/%g",
			resp.Plan.ExpectedCost, resp.Plan.NormalizedCost, want.ExpectedCost, want.NormalizedCost)
	}
	if resp.Plan.Distribution != "lognormal(3,0.5)" {
		t.Errorf("distribution spec %q", resp.Plan.Distribution)
	}
	if resp.Stats == nil {
		t.Fatal("stats missing")
	}
	if resp.Stats.Utilization <= 0 || resp.Stats.Utilization > 1 {
		t.Errorf("utilization %g", resp.Stats.Utilization)
	}
	if resp.Stats.ExpectedAttempts < 1 {
		t.Errorf("expected attempts %g", resp.Stats.ExpectedAttempts)
	}
}

// TestCacheHitByteIdentical: a repeat request is served from the cache
// with the exact bytes of the original response, and requests that
// spell the same plan differently share the canonical key.
func TestCacheHitByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, cache, first := post(t, ts.URL+"/v1/plan", basePlanBody)
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("first: status %d, X-Cache %q", status, cache)
	}
	status, cache, second := post(t, ts.URL+"/v1/plan", basePlanBody)
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("second: status %d, X-Cache %q", status, cache)
	}
	if !bytes.Equal(first, second) {
		t.Error("cache hit bytes differ from the original miss")
	}
	// Alternate spelling of the same request: shorthand law name,
	// trailing zeros, explicit defaults, reordered fields.
	alternate := `{
	  "options": {"disc_n": 200, "epsilon": 1e-7},
	  "strategy": "equal-probability",
	  "cost_model": {"alpha": 1.0, "beta": 0, "gamma": 0},
	  "distribution": "lognormal(3.0,0.50)"
	}`
	status, cache, third := post(t, ts.URL+"/v1/plan", alternate)
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("alternate spelling: status %d, X-Cache %q", status, cache)
	}
	if !bytes.Equal(first, third) {
		t.Error("alternate spelling produced different bytes")
	}
	// An omitted strategy is canonicalized to brute-force, sharing the
	// key with the explicit name.
	bf := `{"distribution": "exponential(1)", "cost_model": {"alpha": 1}, "options": {"grid_m": 150}}`
	bfExplicit := `{"distribution": "exp(1)", "cost_model": {"alpha": 1}, "strategy": "brute-force", "options": {"grid_m": 150}}`
	if status, cache, _ = post(t, ts.URL+"/v1/plan", bf); status != http.StatusOK || cache != "miss" {
		t.Fatalf("bf: status %d, X-Cache %q", status, cache)
	}
	if status, cache, _ = post(t, ts.URL+"/v1/plan", bfExplicit); status != http.StatusOK || cache != "hit" {
		t.Fatalf("bf explicit: status %d, X-Cache %q", status, cache)
	}
	if hits := s.metrics.cacheHits.Value(); hits != 3 {
		t.Errorf("cache_hits = %d, want 3", hits)
	}
}

// TestSimulateEndpoint: /v1/simulate returns the plan plus a
// deterministic Monte-Carlo evaluation, and caches by (samples, seed).
func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
	  "distribution": "gamma(2,2)",
	  "cost_model": {"alpha": 1},
	  "strategy": "mean-doubling",
	  "samples": 400,
	  "sim_seed": 9
	}`
	status, cache, first := post(t, ts.URL+"/v1/simulate", body)
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d, X-Cache %q\n%s", status, cache, first)
	}
	var resp api.SimulateResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Samples != 400 || resp.SimSeed != 9 {
		t.Errorf("echo %d/%d", resp.Samples, resp.SimSeed)
	}
	if resp.NormalizedCost < 1 || resp.StdErr <= 0 {
		t.Errorf("normalized %g ± %g", resp.NormalizedCost, resp.StdErr)
	}
	d, _ := repro.Gamma(2, 2)
	p, err := repro.MakePlan(repro.ReservationOnly, d, repro.StrategyMeanDoubling, repro.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantNorm, wantErr, err := p.Simulate(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if resp.NormalizedCost != wantNorm || resp.StdErr != wantErr {
		t.Errorf("simulate %g±%g, want %g±%g", resp.NormalizedCost, resp.StdErr, wantNorm, wantErr)
	}
	if status, cache, second := post(t, ts.URL+"/v1/simulate", body); status != http.StatusOK ||
		cache != "hit" || !bytes.Equal(first, second) {
		t.Errorf("repeat: status %d, X-Cache %q, identical=%v", status, cache, bytes.Equal(first, second))
	}
	// A different evaluation seed is a different key.
	other := strings.Replace(body, `"sim_seed": 9`, `"sim_seed": 10`, 1)
	if status, cache, _ := post(t, ts.URL+"/v1/simulate", other); status != http.StatusOK || cache != "miss" {
		t.Errorf("new seed: status %d, X-Cache %q", status, cache)
	}
}

// TestSingleflightCollapsesConcurrentRequests: N identical concurrent
// requests trigger exactly one underlying computation; one is the miss
// and the other N-1 are coalesced, all byte-identical.
func TestSingleflightCollapsesConcurrentRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 16
	var computations, joins atomic.Int32
	release := make(chan struct{})
	s.computeGate = func(string) {
		if computations.Add(1) == 1 {
			<-release
		}
	}
	s.flight.onJoin = func(string) { joins.Add(1) }

	body := `{"distribution": "uniform(10,20)", "cost_model": {"alpha": 1}, "options": {"grid_m": 150}}`
	type reply struct {
		status int
		cache  string
		body   string
		err    error
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
			if err != nil {
				replies <- reply{err: err}
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			replies <- reply{resp.StatusCode, resp.Header.Get("X-Cache"), string(b), err}
		}()
	}
	// Every follower must have coalesced onto the gated leader before
	// we let it run; only then is "exactly one computation" meaningful.
	waitFor(t, "followers to coalesce", func() bool { return joins.Load() == n-1 })
	close(release)

	states := map[string]int{}
	bodies := map[string]bool{}
	for i := 0; i < n; i++ {
		r := <-replies
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		states[r.cache]++
		bodies[r.body] = true
	}
	if got := computations.Load(); got != 1 {
		t.Errorf("%d computations, want exactly 1", got)
	}
	if len(bodies) != 1 {
		t.Errorf("%d distinct response bodies, want 1", len(bodies))
	}
	if states["miss"] != 1 || states["coalesced"] != n-1 {
		t.Errorf("cache states %v, want miss:1 coalesced:%d", states, n-1)
	}
}

// TestRequestTimeout: a computation that outlives the request timeout
// yields a structured 504; the detached computation still populates
// the cache for later requests.
func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Limits: LimitsConfig{RequestTimeout: 20 * time.Millisecond}})
	release := make(chan struct{})
	s.computeGate = func(string) { <-release }
	body := `{"distribution": "exponential(2)", "cost_model": {"alpha": 1}, "options": {"grid_m": 150}}`
	status, _, respBody := post(t, ts.URL+"/v1/plan", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d\n%s", status, respBody)
	}
	if code := errorCode(t, respBody); code != "timeout" {
		t.Errorf("error code %q", code)
	}
	close(release) // the detached computation finishes and fills the cache
	waitFor(t, "detached computation to fill the cache", func() bool {
		return s.cache.Len() > 0
	})
	status, cache, _ := post(t, ts.URL+"/v1/plan", body)
	if status != http.StatusOK || cache != "hit" {
		t.Errorf("after release: status %d, X-Cache %q", status, cache)
	}
}

// TestErrorResponses: every failure mode yields the structured JSON
// error body with the right status and code.
func TestErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"malformed JSON", "POST", "/v1/plan", `{"distribution": `, 400, "bad_request"},
		{"unknown field", "POST", "/v1/plan", `{"distribution": "exp(1)", "cost_model": {"alpha": 1}, "bogus": 1}`, 400, "bad_request"},
		{"trailing data", "POST", "/v1/plan", `{"distribution": "exp(1)", "cost_model": {"alpha": 1}} {}`, 400, "bad_request"},
		{"missing distribution", "POST", "/v1/plan", `{"cost_model": {"alpha": 1}}`, 400, "bad_request"},
		{"bad spec", "POST", "/v1/plan", `{"distribution": "weird(1)", "cost_model": {"alpha": 1}}`, 400, "bad_request"},
		{"unknown strategy", "POST", "/v1/plan", `{"distribution": "exp(1)", "cost_model": {"alpha": 1}, "strategy": "nope"}`, 400, "bad_request"},
		{"invalid cost model", "POST", "/v1/plan", `{"distribution": "exp(1)", "cost_model": {"alpha": -1}}`, 400, "bad_request"},
		{"negative samples", "POST", "/v1/simulate", `{"distribution": "exp(1)", "cost_model": {"alpha": 1}, "samples": -5}`, 400, "bad_request"},
		{"GET plan", "GET", "/v1/plan", "", 405, "method_not_allowed"},
		{"PUT simulate", "PUT", "/v1/simulate", "", 405, "method_not_allowed"},
		{"POST healthz", "POST", "/healthz", "", 405, "method_not_allowed"},
		{"unknown path", "GET", "/nope", "", 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d\n%s", resp.StatusCode, tc.status, b)
			}
			if code := errorCode(t, b); code != tc.code {
				t.Errorf("code %q, want %q", code, tc.code)
			}
		})
	}
}

// TestHealthz: liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(b)) != `{"status":"ok"}` {
		t.Errorf("status %d, body %q", resp.StatusCode, b)
	}
}

// TestMetricsEndpoint: /debug/vars exposes the counters, using the
// injected clock for latency, without touching the global expvar
// registry.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Now: (&fakeClock{}).Now})
	post(t, ts.URL+"/v1/plan", basePlanBody)                   // miss
	post(t, ts.URL+"/v1/plan", basePlanBody)                   // hit
	post(t, ts.URL+"/v1/plan", `{"cost_model": {"alpha": 1}}`) // bad request
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, b)
	}
	var vars struct {
		Requests     map[string]int64 `json:"requests"`
		Errors       map[string]int64 `json:"errors"`
		LatencyNS    map[string]int64 `json:"latency_ns"`
		CacheHits    int64            `json:"cache_hits"`
		CacheMisses  int64            `json:"cache_misses"`
		Coalesced    int64            `json:"coalesced"`
		InFlight     int64            `json:"in_flight"`
		CacheEntries int64            `json:"cache_entries"`
		WorkersAct   int64            `json:"workers_active"`
	}
	if err := json.Unmarshal(b, &vars); err != nil {
		t.Fatalf("vars are not JSON: %v\n%s", err, b)
	}
	if vars.Requests["plan"] != 3 {
		t.Errorf("requests.plan = %d", vars.Requests["plan"])
	}
	if vars.CacheHits != 1 || vars.CacheMisses != 1 {
		t.Errorf("hits/misses = %d/%d", vars.CacheHits, vars.CacheMisses)
	}
	if vars.Errors["bad_request"] != 1 {
		t.Errorf("errors.bad_request = %d", vars.Errors["bad_request"])
	}
	// The fake clock advances 1ms per reading, so each completed
	// request contributes a positive latency.
	if vars.LatencyNS["plan"] <= 0 {
		t.Errorf("latency_ns.plan = %d", vars.LatencyNS["plan"])
	}
	if vars.InFlight != 0 || vars.WorkersAct != 0 {
		t.Errorf("in_flight %d, workers_active %d", vars.InFlight, vars.WorkersAct)
	}
	if vars.CacheEntries != 1 {
		t.Errorf("cache_entries = %d", vars.CacheEntries)
	}
}

// TestCacheEviction: with a one-entry cache, a second distinct request
// evicts the first, which then recomputes as a miss.
func TestCacheEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: CacheConfig{Responses: 1}})
	a := `{"distribution": "exp(1)", "cost_model": {"alpha": 1}, "strategy": "mean-doubling"}`
	b := `{"distribution": "exp(2)", "cost_model": {"alpha": 1}, "strategy": "mean-doubling"}`
	if _, cache, _ := post(t, ts.URL+"/v1/plan", a); cache != "miss" {
		t.Fatalf("a: X-Cache %q", cache)
	}
	if _, cache, _ := post(t, ts.URL+"/v1/plan", a); cache != "hit" {
		t.Fatalf("a repeat: X-Cache %q", cache)
	}
	if _, cache, _ := post(t, ts.URL+"/v1/plan", b); cache != "miss" {
		t.Fatalf("b: X-Cache %q", cache)
	}
	if _, cache, _ := post(t, ts.URL+"/v1/plan", a); cache != "miss" {
		t.Errorf("a after eviction: X-Cache %q, want miss", cache)
	}
}

// TestStressConcurrentMixed: 64 goroutines hammer the server with a
// mix of plan and simulate requests over a handful of keys. Every
// response must succeed, responses for one key must be byte-identical
// whether they were misses, hits, or coalesced, and — because each
// computation runs inline under the request-level semaphore — the
// internal/parallel worker gauge must never move.
func TestStressConcurrentMixed(t *testing.T) {
	parallel.ResetPeakWorkers()
	basePeak := parallel.PeakWorkers()
	s, ts := newTestServer(t, Config{Limits: LimitsConfig{WorkerBudget: 4}})

	specs := []string{"exponential(1)", "uniform(10,20)", "lognormal(3,0.5)", "gamma(2,2)"}
	strategies := []string{repro.StrategyMeanDoubling, repro.StrategyEqualProb, repro.StrategyBruteForce}
	planBody := func(spec, strat string) string {
		return fmt.Sprintf(`{"distribution": %q, "cost_model": {"alpha": 1}, "strategy": %q, "options": {"grid_m": 150, "disc_n": 100}}`,
			spec, strat)
	}
	simBody := func(spec, strat string) string {
		return fmt.Sprintf(`{"distribution": %q, "cost_model": {"alpha": 1}, "strategy": %q, "options": {"grid_m": 150, "disc_n": 100}, "samples": 200, "sim_seed": 3}`,
			spec, strat)
	}

	const goroutines = 64
	const perG = 4
	var bodiesByKey sync.Map // request body -> first response body
	var conflicts, failures atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				spec := specs[(g+i)%len(specs)]
				strat := strategies[(g/len(specs)+i)%len(strategies)]
				endpoint, body := "/v1/plan", planBody(spec, strat)
				if (g+i)%3 == 0 {
					endpoint, body = "/v1/simulate", simBody(spec, strat)
				}
				resp, err := http.Post(ts.URL+endpoint, "application/json", strings.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				key := endpoint + body
				if prev, loaded := bodiesByKey.LoadOrStore(key, string(b)); loaded && prev.(string) != string(b) {
					conflicts.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Errorf("%d of %d requests failed", n, goroutines*perG)
	}
	if n := conflicts.Load(); n != 0 {
		t.Errorf("%d responses differed from the first response for their key", n)
	}
	if peak := parallel.PeakWorkers(); peak != basePeak {
		t.Errorf("worker-pool peak moved from %d to %d; computations must run inline", basePeak, peak)
	}
	if active := parallel.ActiveWorkers(); active != 0 {
		t.Errorf("%d workers still active", active)
	}
	if inFlight := s.metrics.inFlight.Value(); inFlight != 0 {
		t.Errorf("in_flight = %d after drain", inFlight)
	}
	// Every request either computed, coalesced, or hit: the counters
	// must account for all of them.
	total := s.metrics.cacheHits.Value() + s.metrics.cacheMisses.Value() + s.metrics.coalesced.Value()
	if want := int64(goroutines * perG); total != want {
		t.Errorf("hit+miss+coalesced = %d, want %d", total, want)
	}
}
