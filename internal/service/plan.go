package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro"
)

// costModelJSON mirrors repro.CostModel on the wire.
type costModelJSON struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
}

// optionsJSON mirrors repro.Options on the wire. Workers is absent on
// purpose: the server always computes inline (Workers = 1) and scales
// across requests instead.
type optionsJSON struct {
	GridM       int     `json:"grid_m,omitempty"`
	SamplesN    int     `json:"samples_n,omitempty"`
	DiscN       int     `json:"disc_n,omitempty"`
	Epsilon     float64 `json:"epsilon,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	MonteCarlo  bool    `json:"monte_carlo,omitempty"`
	PreviewLen  int     `json:"preview_len,omitempty"`
	MaxAttempts int     `json:"max_attempts,omitempty"`
}

// planRequest is the body of POST /v1/plan.
type planRequest struct {
	// Distribution is a canonical spec, e.g. "lognormal(3,0.5)".
	Distribution string        `json:"distribution"`
	CostModel    costModelJSON `json:"cost_model"`
	// Strategy is a repro.Strategies() name; empty means brute-force.
	Strategy string      `json:"strategy,omitempty"`
	Options  optionsJSON `json:"options,omitempty"`
}

// simulateRequest is the body of POST /v1/simulate: a plan request
// plus the Monte-Carlo evaluation parameters.
type simulateRequest struct {
	planRequest
	// Samples is the number of sampled jobs (default 1000).
	Samples int `json:"samples,omitempty"`
	// SimSeed drives the evaluation sampler (independent of
	// options.seed, which drives Monte-Carlo *scoring*).
	SimSeed uint64 `json:"sim_seed,omitempty"`
}

// planStatsJSON is the closed-form operating statistics included in a
// plan response.
type planStatsJSON struct {
	ExpectedAttempts float64 `json:"expected_attempts"`
	ExpectedReserved float64 `json:"expected_reserved"`
	ExpectedUsed     float64 `json:"expected_used"`
	Utilization      float64 `json:"utilization"`
}

// planResponse is the body of a successful POST /v1/plan.
type planResponse struct {
	Plan  repro.PlanSummary `json:"plan"`
	Stats *planStatsJSON    `json:"stats,omitempty"`
}

// simulateResponse is the body of a successful POST /v1/simulate.
type simulateResponse struct {
	Plan           repro.PlanSummary `json:"plan"`
	Samples        int               `json:"samples"`
	SimSeed        uint64            `json:"sim_seed"`
	NormalizedCost float64           `json:"normalized_cost"`
	StdErr         float64           `json:"std_err"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// planInputs is a validated, canonicalized plan request.
type planInputs struct {
	planner  *repro.Planner
	dist     repro.Distribution
	strategy string // canonical: never empty
	key      string // canonical cache key, without endpoint prefix
}

// apiError pairs an HTTP status with a structured error code.
type apiError struct {
	status  int
	code    string
	message string
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{http.StatusBadRequest, "bad_request", fmt.Sprintf(format, args...)}
}

// decodeJSON strictly decodes one JSON value from the request body.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON request: %v", err)
	}
	if dec.More() {
		return badRequest("invalid JSON request: trailing data after the JSON body")
	}
	return nil
}

// formatFloat renders v in the shortest form that round-trips, so
// canonical keys are stable across spellings of the same number.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// plannerKey canonically serializes a validated cost model and fully
// defaulted option set.
func plannerKey(m repro.CostModel, o repro.Options) string {
	return strings.Join([]string{
		"alpha=" + formatFloat(m.Alpha),
		"beta=" + formatFloat(m.Beta),
		"gamma=" + formatFloat(m.Gamma),
		"grid=" + strconv.Itoa(o.GridM),
		"samples=" + strconv.Itoa(o.SamplesN),
		"disc=" + strconv.Itoa(o.DiscN),
		"eps=" + formatFloat(o.Epsilon),
		"seed=" + strconv.FormatUint(o.Seed, 10),
		"mc=" + strconv.FormatBool(o.MonteCarlo),
		"preview=" + strconv.Itoa(o.PreviewLen),
		"attempts=" + strconv.Itoa(o.MaxAttempts),
	}, "|")
}

// resolveInputs validates a plan request and canonicalizes it into a
// Planner (shared across requests with the same model and options), a
// parsed distribution, and a cache key. Two requests that spell the
// same plan differently — "exp(1)" vs "exponential(1.0)", an omitted
// option vs its default, an empty strategy vs "brute-force" — resolve
// to the same key.
func (s *Server) resolveInputs(req planRequest) (*planInputs, *apiError) {
	if strings.TrimSpace(req.Distribution) == "" {
		return nil, badRequest("missing distribution spec (e.g. \"lognormal(3,0.5)\")")
	}
	d, err := repro.ParseDistribution(req.Distribution)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	strat := req.Strategy
	if strat == "" {
		strat = repro.StrategyBruteForce
	}
	if !s.strategies[strat] {
		return nil, badRequest("unknown strategy %q (have %v)", req.Strategy, repro.Strategies())
	}
	model := repro.CostModel{Alpha: req.CostModel.Alpha, Beta: req.CostModel.Beta, Gamma: req.CostModel.Gamma}
	opts := repro.Options{
		GridM:       req.Options.GridM,
		SamplesN:    req.Options.SamplesN,
		DiscN:       req.Options.DiscN,
		Epsilon:     req.Options.Epsilon,
		Seed:        req.Options.Seed,
		MonteCarlo:  req.Options.MonteCarlo,
		PreviewLen:  req.Options.PreviewLen,
		MaxAttempts: req.Options.MaxAttempts,
		Workers:     1, // inline: the server parallelizes across requests
	}
	pl, plKey, err := s.planner(model, opts)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	spec := req.Distribution
	if canonical, err := repro.DistributionSpec(d); err == nil {
		spec = canonical
	}
	return &planInputs{
		planner:  pl,
		dist:     d,
		strategy: strat,
		key:      plKey + "|dist=" + spec + "|strategy=" + strat,
	}, nil
}

// planner returns the cached Planner for (model, opts), constructing
// and caching one on a miss. Construction validates the model and
// resolves the option defaults, so the returned key is canonical. A
// concurrent miss may build two equivalent Planners; either works and
// the cache converges on one.
func (s *Server) planner(model repro.CostModel, opts repro.Options) (*repro.Planner, string, error) {
	pl, err := repro.NewPlanner(model, opts)
	if err != nil {
		return nil, "", err
	}
	key := plannerKey(pl.CostModel(), pl.Options())
	if cached, ok := s.planners.Get(key); ok {
		return cached, key, nil
	}
	s.planners.Put(key, pl)
	return pl, key, nil
}

// handlePlan implements POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.instrumented(w, r, "plan", func(w http.ResponseWriter, r *http.Request) {
		var req planRequest
		if aerr := decodeJSON(w, r, &req); aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		in, aerr := s.resolveInputs(req)
		if aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		s.respond(w, r, "plan|"+in.key, func() ([]byte, error) {
			p, err := in.planner.Plan(in.dist, in.strategy)
			if err != nil {
				return nil, err
			}
			resp := planResponse{Plan: p.Summary()}
			if st, err := p.Stats(); err == nil {
				resp.Stats = &planStatsJSON{
					ExpectedAttempts: st.ExpectedAttempts,
					ExpectedReserved: st.ExpectedReserved,
					ExpectedUsed:     st.ExpectedUsed,
					Utilization:      st.Utilization,
				}
			}
			return marshalBody(resp)
		})
	})
}

// handleSimulate implements POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.instrumented(w, r, "simulate", func(w http.ResponseWriter, r *http.Request) {
		var req simulateRequest
		if aerr := decodeJSON(w, r, &req); aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		if req.Samples < 0 {
			s.writeAPIError(w, badRequest("samples must be positive, got %d", req.Samples))
			return
		}
		if req.Samples == 0 {
			req.Samples = 1000
		}
		in, aerr := s.resolveInputs(req.planRequest)
		if aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		key := "sim|" + in.key +
			"|n=" + strconv.Itoa(req.Samples) +
			"|simseed=" + strconv.FormatUint(req.SimSeed, 10)
		s.respond(w, r, key, func() ([]byte, error) {
			p, err := in.planner.Plan(in.dist, in.strategy)
			if err != nil {
				return nil, err
			}
			normalized, stderr, err := p.Simulate(req.Samples, req.SimSeed)
			if err != nil {
				return nil, err
			}
			return marshalBody(simulateResponse{
				Plan:           p.Summary(),
				Samples:        req.Samples,
				SimSeed:        req.SimSeed,
				NormalizedCost: normalized,
				StdErr:         stderr,
			})
		})
	})
}

// instrumented wraps a POST handler with the shared method check and
// the request / in-flight / latency metrics.
func (s *Server) instrumented(w http.ResponseWriter, r *http.Request, endpoint string, h http.HandlerFunc) {
	start := s.now()
	s.metrics.requests.Add(endpoint, 1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	defer func() {
		s.metrics.latencyNS.Add(endpoint, s.now().Sub(start).Nanoseconds())
	}()
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	h(w, r)
}

// respond serves a computed response for key: from the byte cache on a
// hit, otherwise through the singleflight group, bounded by the worker
// semaphore, honoring the per-request timeout. Cache hits return the
// exact bytes the original miss stored, so identical requests are
// byte-identical regardless of path; only the X-Cache header (hit,
// miss, coalesced) distinguishes them.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, key string, compute func() ([]byte, error)) {
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		writeBody(w, "hit", body)
		return
	}
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	type result struct {
		body   []byte
		err    error
		shared bool
	}
	ch := make(chan result, 1)
	go func() {
		body, err, shared := s.flight.Do(key, func() ([]byte, error) {
			if s.computeGate != nil {
				s.computeGate(key)
			}
			s.acquire()
			defer s.release()
			b, err := compute()
			if err == nil {
				s.cache.Put(key, b)
			}
			return b, err
		})
		ch <- result{body, err, shared}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			s.writeError(w, http.StatusInternalServerError, "plan_failed", res.err.Error())
			return
		}
		if res.shared {
			s.metrics.coalesced.Add(1)
			writeBody(w, "coalesced", res.body)
			return
		}
		s.metrics.cacheMisses.Add(1)
		writeBody(w, "miss", res.body)
	case <-ctx.Done():
		// The computation keeps running detached and will populate the
		// cache for later requests; this request reports the timeout.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.writeError(w, http.StatusGatewayTimeout, "timeout",
				"computation exceeded the request timeout of "+s.cfg.RequestTimeout.String())
			return
		}
		s.writeError(w, http.StatusServiceUnavailable, "canceled", "request canceled")
	}
}

// marshalBody renders a response payload. One serialization point
// keeps cached bytes and freshly computed bytes identical.
func marshalBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeBody writes a successful JSON response with its cache verdict.
func writeBody(w http.ResponseWriter, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	_, _ = w.Write(body)
}

// writeError writes the structured JSON error body and counts it.
func (s *Server) writeError(w http.ResponseWriter, status int, code, message string) {
	s.metrics.errors.Add(code, 1)
	var resp errorResponse
	resp.Error.Code = code
	resp.Error.Message = message
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		// Unreachable: errorResponse always marshals.
		http.Error(w, message, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

func (s *Server) writeAPIError(w http.ResponseWriter, aerr *apiError) {
	s.writeError(w, aerr.status, aerr.code, aerr.message)
}
