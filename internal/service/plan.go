package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro"
	"repro/service/api"
)

// planInputs is a validated, canonicalized plan request.
type planInputs struct {
	planner  *repro.Planner
	dist     repro.Distribution
	strategy string // canonical: never empty
	spec     string // canonical distribution spec (routing/cache key)
	group    string // planner key: the batching group
	key      string // canonical cache key, without endpoint prefix
}

// apiError pairs a stable error code with its message; the HTTP
// status comes from the api code table.
type apiError struct {
	code    string
	message string
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{api.CodeBadRequest, fmt.Sprintf(format, args...)}
}

// decodeJSON strictly decodes one JSON value from the request body.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON request: %v", err)
	}
	if dec.More() {
		return badRequest("invalid JSON request: trailing data after the JSON body")
	}
	return nil
}

// formatFloat renders v in the shortest form that round-trips, so
// canonical keys are stable across spellings of the same number.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// plannerKey canonically serializes a validated cost model and fully
// defaulted option set.
func plannerKey(m repro.CostModel, o repro.Options) string {
	return strings.Join([]string{
		"alpha=" + formatFloat(m.Alpha),
		"beta=" + formatFloat(m.Beta),
		"gamma=" + formatFloat(m.Gamma),
		"grid=" + strconv.Itoa(o.GridM),
		"samples=" + strconv.Itoa(o.SamplesN),
		"disc=" + strconv.Itoa(o.DiscN),
		"eps=" + formatFloat(o.Epsilon),
		"seed=" + strconv.FormatUint(o.Seed, 10),
		"mc=" + strconv.FormatBool(o.MonteCarlo),
		"preview=" + strconv.Itoa(o.PreviewLen),
		"attempts=" + strconv.Itoa(o.MaxAttempts),
	}, "|")
}

// CanonicalSpec canonicalizes a distribution spec exactly as the
// service's cache keys and the frontend's shard routing do. The
// Frontend uses it so that every spelling of one distribution routes
// to the same home shard.
func CanonicalSpec(spec string) (string, error) {
	d, err := repro.ParseDistribution(spec)
	if err != nil {
		return "", err
	}
	if canonical, err := repro.DistributionSpec(d); err == nil {
		return canonical, nil
	}
	// Distributions without a canonical serialization (e.g. empirical)
	// keep the caller's spelling.
	return spec, nil
}

// resolveInputs validates a plan request and canonicalizes it into a
// Planner (shared across requests with the same model and options), a
// parsed distribution, and a cache key. Two requests that spell the
// same plan differently — "exp(1)" vs "exponential(1.0)", an omitted
// option vs its default, an empty strategy vs "brute-force" — resolve
// to the same key.
func (s *Backend) resolveInputs(req api.PlanRequest) (*planInputs, *apiError) {
	if strings.TrimSpace(req.Distribution) == "" {
		return nil, badRequest("missing distribution spec (e.g. \"lognormal(3,0.5)\")")
	}
	d, err := repro.ParseDistribution(req.Distribution)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	strat := req.Strategy
	if strat == "" {
		strat = repro.StrategyBruteForce
	}
	if !s.strategies[strat] {
		return nil, badRequest("unknown strategy %q (have %v)", req.Strategy, repro.Strategies())
	}
	model := repro.CostModel{Alpha: req.CostModel.Alpha, Beta: req.CostModel.Beta, Gamma: req.CostModel.Gamma}
	opts := repro.Options{
		GridM:       req.Options.GridM,
		SamplesN:    req.Options.SamplesN,
		DiscN:       req.Options.DiscN,
		Epsilon:     req.Options.Epsilon,
		Seed:        req.Options.Seed,
		MonteCarlo:  req.Options.MonteCarlo,
		PreviewLen:  req.Options.PreviewLen,
		MaxAttempts: req.Options.MaxAttempts,
		Workers:     1, // inline: the server parallelizes across requests
	}
	pl, plKey, err := s.planner(model, opts)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	spec := req.Distribution
	if canonical, err := repro.DistributionSpec(d); err == nil {
		spec = canonical
	}
	return &planInputs{
		planner:  pl,
		dist:     d,
		strategy: strat,
		spec:     spec,
		group:    plKey,
		key:      plKey + "|dist=" + spec + "|strategy=" + strat,
	}, nil
}

// planner returns the cached Planner for (model, opts), constructing
// and caching one on a miss. Construction validates the model and
// resolves the option defaults, so the returned key is canonical. A
// concurrent miss may build two equivalent Planners; either works and
// the cache converges on one.
func (s *Backend) planner(model repro.CostModel, opts repro.Options) (*repro.Planner, string, error) {
	pl, err := repro.NewPlanner(model, opts)
	if err != nil {
		return nil, "", err
	}
	key := plannerKey(pl.CostModel(), pl.Options())
	if cached, ok := s.planners.Get(key); ok {
		return cached, key, nil
	}
	s.planners.Put(key, pl)
	return pl, key, nil
}

// handlePlan implements POST /v1/plan.
func (s *Backend) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.instrumented(w, r, "plan", func(w http.ResponseWriter, r *http.Request) {
		var req api.PlanRequest
		if aerr := decodeJSON(w, r, &req); aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		in, aerr := s.resolveInputs(req)
		if aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		s.respond(w, r, "plan|"+in.key, in.group, func() ([]byte, error) {
			p, err := in.planner.Plan(in.dist, in.strategy)
			if err != nil {
				return nil, err
			}
			resp := api.PlanResponse{Plan: p.Summary(), CanonicalSpec: in.spec}
			if st, err := p.Stats(); err == nil {
				resp.Stats = &api.PlanStats{
					ExpectedAttempts: st.ExpectedAttempts,
					ExpectedReserved: st.ExpectedReserved,
					ExpectedUsed:     st.ExpectedUsed,
					Utilization:      st.Utilization,
				}
			}
			return marshalBody(resp)
		})
	})
}

// handleSimulate implements POST /v1/simulate.
func (s *Backend) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.instrumented(w, r, "simulate", func(w http.ResponseWriter, r *http.Request) {
		var req api.SimulateRequest
		if aerr := decodeJSON(w, r, &req); aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		if req.Samples < 0 {
			s.writeAPIError(w, badRequest("samples must be positive, got %d", req.Samples))
			return
		}
		if req.Samples == 0 {
			req.Samples = 1000
		}
		in, aerr := s.resolveInputs(req.PlanRequest)
		if aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		key := "sim|" + in.key +
			"|n=" + strconv.Itoa(req.Samples) +
			"|simseed=" + strconv.FormatUint(req.SimSeed, 10)
		s.respond(w, r, key, in.group, func() ([]byte, error) {
			p, err := in.planner.Plan(in.dist, in.strategy)
			if err != nil {
				return nil, err
			}
			normalized, stderr, err := p.Simulate(req.Samples, req.SimSeed)
			if err != nil {
				return nil, err
			}
			return marshalBody(api.SimulateResponse{
				Plan:           p.Summary(),
				CanonicalSpec:  in.spec,
				Samples:        req.Samples,
				SimSeed:        req.SimSeed,
				NormalizedCost: normalized,
				StdErr:         stderr,
			})
		})
	})
}

// instrumented wraps a POST handler with the shared method check and
// the request / in-flight / latency metrics.
func (s *Backend) instrumented(w http.ResponseWriter, r *http.Request, endpoint string, h http.HandlerFunc) {
	start := s.now()
	s.metrics.requests.Add(endpoint, 1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	defer func() {
		s.metrics.latencyNS.Add(endpoint, s.now().Sub(start).Nanoseconds())
	}()
	if r.Method != http.MethodPost {
		s.writeError(w, api.CodeMethodNotAllowed, "use POST")
		return
	}
	h(w, r)
}

// respond serves a computed response for key: from the byte cache on a
// hit, otherwise through the singleflight group, bounded by the worker
// semaphore, honoring the per-request timeout. Cache hits return the
// exact bytes the original miss stored, so identical requests are
// byte-identical regardless of path; only the X-Cache header (hit,
// miss, coalesced) distinguishes them. With batching enabled, group
// names the planner-sharing batch the miss joins.
func (s *Backend) respond(w http.ResponseWriter, r *http.Request, key, group string, compute func() ([]byte, error)) {
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		writeBody(w, "hit", body)
		return
	}
	ctx := r.Context()
	if s.cfg.Limits.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Limits.RequestTimeout)
		defer cancel()
	}
	type result struct {
		body    []byte
		err     error
		shared  bool
		lateHit bool
	}
	ch := make(chan result, 1)
	go func() {
		var lateHit bool
		body, err, shared := s.flight.Do(key, func() ([]byte, error) {
			// An earlier flight may have completed between our cache check
			// and this one starting; it stores its bytes before the flight
			// key is released, so a re-check here is authoritative. This
			// keeps the miss count exactly one per unique key no matter how
			// requests interleave.
			if b, ok := s.cache.Get(key); ok {
				lateHit = true
				return b, nil
			}
			if s.computeGate != nil {
				s.computeGate(key)
			}
			cached := func() ([]byte, error) {
				b, err := compute()
				if err == nil {
					s.cache.Put(key, b)
				}
				return b, err
			}
			if s.batch != nil {
				return s.batch.do(group, key, cached)
			}
			s.acquire()
			defer s.release()
			return cached()
		})
		// lateHit is only meaningful for the flight leader: a follower's
		// closure never ran, so its lateHit stays false.
		ch <- result{body, err, shared, lateHit && !shared}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			s.writeError(w, api.CodePlanFailed, res.err.Error())
			return
		}
		switch {
		case res.lateHit:
			s.metrics.cacheHits.Add(1)
			writeBody(w, "hit", res.body)
		case res.shared:
			s.metrics.coalesced.Add(1)
			writeBody(w, "coalesced", res.body)
		default:
			s.metrics.cacheMisses.Add(1)
			writeBody(w, "miss", res.body)
		}
	case <-ctx.Done():
		// The computation keeps running detached and will populate the
		// cache for later requests; this request reports the timeout.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.writeError(w, api.CodeTimeout,
				"computation exceeded the request timeout of "+s.cfg.Limits.RequestTimeout.String())
			return
		}
		s.writeError(w, api.CodeCanceled, "request canceled")
	}
}

// marshalBody renders a response payload. One serialization point
// keeps cached bytes and freshly computed bytes identical.
func marshalBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeBody writes a successful JSON response with its cache verdict.
func writeBody(w http.ResponseWriter, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.HeaderCache, cacheState)
	_, _ = w.Write(body)
}

// writeError writes the structured JSON error body for a stable api
// code and counts it; the HTTP status comes from the code table.
func (s *Backend) writeError(w http.ResponseWriter, code, message string) {
	s.metrics.errors.Add(code, 1)
	writeErrorBody(w, api.Status(code), api.ErrorBody{Code: code, Message: message})
}

// writeErrorBody renders one structured error envelope. Shared by the
// Backend and the Frontend so error bytes have one shape everywhere.
func writeErrorBody(w http.ResponseWriter, status int, body api.ErrorBody) {
	b, err := json.MarshalIndent(api.ErrorResponse{Error: body}, "", "  ")
	if err != nil {
		// Unreachable: ErrorResponse always marshals.
		http.Error(w, body.Message, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

func (s *Backend) writeAPIError(w http.ResponseWriter, aerr *apiError) {
	s.writeError(w, aerr.code, aerr.message)
}
