// Package service implements the plan service: backend shards that
// compute and cache reservation plans behind a JSON API over the
// repro.Planner facade, and a sharding Frontend that routes requests
// to backends over a consistent-hash ring (see frontend.go).
//
// Backend endpoints:
//
//	POST /v1/plan      — compute a reservation plan
//	POST /v1/simulate  — compute a plan and Monte-Carlo-evaluate it
//	GET  /healthz      — liveness probe
//	GET  /debug/vars   — expvar-style JSON metrics
//
// The wire DTOs live in repro/service/api; this package implements
// them. Responses are cached in a bounded LRU keyed by a canonical
// serialization of (distribution spec, cost model, strategy, options),
// so a cache hit returns bytes identical to the miss that populated
// it. Concurrent identical requests are coalesced through a
// singleflight group: one computation runs, every duplicate waits for
// its result. The X-Cache response header reports which path served
// the request (hit, miss, or coalesced); the body never varies.
//
// By default plan computations run with Options.Workers = 1, i.e.
// inline, with zero goroutines spawned on the internal/parallel pool;
// parallelism comes from serving requests concurrently instead,
// bounded by a semaphore of WorkerBudget slots. The pool's worker
// gauge (workers_active / workers_peak in /debug/vars) therefore
// stays at zero no matter the request load — the budget is visible as
// the in_flight counter instead. Setting Limits.BatchWindow enables
// request batching: misses that share a planner (same cost model and
// options, different specs) arriving within the window are flushed
// together through one parallel.ForEach call (see batch.go).
package service

import (
	"expvar"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro"
	"repro/internal/lru"
	"repro/internal/parallel"
	"repro/service/api"
)

// Default configuration values, used when the corresponding config
// field is unset.
const (
	DefaultCacheSize        = 256
	DefaultPlannerCacheSize = 32
	DefaultBatchLimit       = 16
)

// maxRequestBytes bounds how much of a request body the decoder reads.
const maxRequestBytes = 1 << 20

// CacheConfig bounds a Backend's two caches.
type CacheConfig struct {
	// Responses bounds the response byte cache, in entries
	// (default 256).
	Responses int
	// Planners bounds how many Planners — one per distinct
	// (cost model, options) pair — the backend retains (default 32).
	Planners int
}

// withDefaults returns c with unset fields replaced by defaults.
func (c CacheConfig) withDefaults() CacheConfig {
	if c.Responses <= 0 {
		c.Responses = DefaultCacheSize
	}
	if c.Planners <= 0 {
		c.Planners = DefaultPlannerCacheSize
	}
	return c
}

// LimitsConfig bounds a Backend's computation resources.
type LimitsConfig struct {
	// RequestTimeout bounds each request's computation; zero means no
	// timeout. A timed-out computation keeps running in the background
	// and still populates the cache.
	RequestTimeout time.Duration
	// WorkerBudget caps the number of plan computations running at
	// once (default GOMAXPROCS). Each computation is single-threaded
	// (Options.Workers is forced to 1), so the budget is also a bound
	// on the CPUs the backend consumes.
	WorkerBudget int
	// BatchWindow, when positive, enables request batching: a cache
	// miss waits up to BatchWindow for other misses sharing its
	// planner (identical cost model and options, any spec), and the
	// group is computed in one parallel.ForEach flush. Zero (the
	// default) computes every miss inline, immediately.
	BatchWindow time.Duration
	// BatchLimit caps the tasks per batch group; a full group flushes
	// without waiting out the window (default 16).
	BatchLimit int
}

// withDefaults returns c with unset fields replaced by defaults.
func (c LimitsConfig) withDefaults() LimitsConfig {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = DefaultBatchLimit
	}
	return c
}

// Config tunes a Backend. The zero value is usable: unset fields take
// the documented defaults.
type Config struct {
	// Cache bounds the response and planner caches.
	Cache CacheConfig
	// Limits bounds computation concurrency, per-request time, and
	// batching.
	Limits LimitsConfig
	// Now supplies timestamps for the latency metrics; nil selects
	// time.Now. Tests inject a fake clock here.
	Now func() time.Time
}

// withDefaults returns cfg with every unset field defaulted.
func (c Config) withDefaults() Config {
	c.Cache = c.Cache.withDefaults()
	c.Limits = c.Limits.withDefaults()
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Backend is one plan-computing shard of the service: the HTTP handler
// that owns the planner and response caches. Construct with New; safe
// for concurrent use. A deployment is one or more Backends behind a
// Frontend, or a single Backend serving directly.
type Backend struct {
	cfg        Config
	mux        *http.ServeMux
	planners   *lru.Cache[string, *repro.Planner]
	cache      *lru.Cache[string, []byte]
	flight     flightGroup
	batch      *batcher
	sem        chan struct{}
	metrics    *metrics
	strategies map[string]bool

	// computeGate, when non-nil (tests only), is invoked with the
	// cache key at the start of every underlying computation, before
	// any work. Tests use it to count and to stall computations.
	computeGate func(key string)
}

// New builds a Backend from cfg, applying defaults for unset fields.
func New(cfg Config) *Backend {
	cfg = cfg.withDefaults()
	s := &Backend{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		planners:   lru.New[string, *repro.Planner](cfg.Cache.Planners),
		cache:      lru.New[string, []byte](cfg.Cache.Responses),
		sem:        make(chan struct{}, cfg.Limits.WorkerBudget),
		strategies: make(map[string]bool),
	}
	for _, name := range repro.Strategies() {
		s.strategies[name] = true
	}
	s.metrics = newMetrics(s.cache.Len)
	if cfg.Limits.BatchWindow > 0 {
		s.batch = newBatcher(cfg.Limits.BatchWindow, cfg.Limits.BatchLimit, s.runBatch)
	}
	s.mux.HandleFunc(api.PathPlan, s.handlePlan)
	s.mux.HandleFunc(api.PathSimulate, s.handleSimulate)
	s.mux.HandleFunc(api.PathHealthz, s.handleHealthz)
	s.mux.HandleFunc(api.PathVars, s.handleVars)
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Backend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Backend) now() time.Time { return s.cfg.Now() }

// acquire takes one of the WorkerBudget computation slots.
func (s *Backend) acquire() { s.sem <- struct{}{} }

// release returns a computation slot.
func (s *Backend) release() { <-s.sem }

// runBatch executes one batch flush: the group's tasks computed
// concurrently on the parallel pool, each still charged one worker
// slot. Called by the batcher on its own goroutine.
func (s *Backend) runBatch(tasks []*batchTask) {
	s.metrics.batchFlushes.Add(1)
	s.metrics.batchedTasks.Add(int64(len(tasks)))
	workers := s.cfg.Limits.WorkerBudget
	if workers > len(tasks) {
		workers = len(tasks)
	}
	parallel.ForEach(len(tasks), workers, func(i int) {
		s.acquire()
		defer s.release()
		body, err := tasks[i].compute()
		tasks[i].done <- batchResult{body: body, err: err}
	})
}

// handleHealthz implements GET /healthz.
func (s *Backend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add("healthz", 1)
	if r.Method != http.MethodGet {
		s.writeError(w, api.CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// handleVars implements GET /debug/vars. The metrics live in an
// unregistered expvar.Map so that many Backends — e.g. in tests or an
// in-process fleet — can coexist in one process without colliding in
// the global expvar registry; expvar's own handler is therefore not
// used.
func (s *Backend) handleVars(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add("vars", 1)
	if r.Method != http.MethodGet {
		s.writeError(w, api.CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, s.metrics.vars.String())
	_, _ = io.WriteString(w, "\n")
}

// handleNotFound is the catch-all route.
func (s *Backend) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add("other", 1)
	s.writeError(w, api.CodeNotFound,
		"unknown path "+r.URL.Path+"; endpoints are /v1/plan, /v1/simulate, /healthz, /debug/vars")
}

// metrics is the per-backend expvar state. The map is deliberately NOT
// published to the global expvar registry (Publish panics on duplicate
// names, and each Backend owns its own counters).
type metrics struct {
	vars         *expvar.Map
	requests     *expvar.Map // request count per endpoint
	errors       *expvar.Map // error count per code
	latencyNS    *expvar.Map // cumulative handler nanoseconds per endpoint
	cacheHits    *expvar.Int
	cacheMisses  *expvar.Int
	coalesced    *expvar.Int // requests served by joining another's computation
	inFlight     *expvar.Int
	batchedTasks *expvar.Int // computations that went through a batch flush
	batchFlushes *expvar.Int
}

func newMetrics(cacheLen func() int) *metrics {
	m := &metrics{
		vars:         new(expvar.Map).Init(),
		requests:     new(expvar.Map).Init(),
		errors:       new(expvar.Map).Init(),
		latencyNS:    new(expvar.Map).Init(),
		cacheHits:    new(expvar.Int),
		cacheMisses:  new(expvar.Int),
		coalesced:    new(expvar.Int),
		inFlight:     new(expvar.Int),
		batchedTasks: new(expvar.Int),
		batchFlushes: new(expvar.Int),
	}
	m.vars.Set("requests", m.requests)
	m.vars.Set("errors", m.errors)
	m.vars.Set("latency_ns", m.latencyNS)
	m.vars.Set("cache_hits", m.cacheHits)
	m.vars.Set("cache_misses", m.cacheMisses)
	m.vars.Set("coalesced", m.coalesced)
	m.vars.Set("in_flight", m.inFlight)
	m.vars.Set("batched_tasks", m.batchedTasks)
	m.vars.Set("batch_flushes", m.batchFlushes)
	m.vars.Set("cache_entries", expvar.Func(func() any { return cacheLen() }))
	m.vars.Set("workers_active", expvar.Func(func() any { return parallel.ActiveWorkers() }))
	m.vars.Set("workers_peak", expvar.Func(func() any { return parallel.PeakWorkers() }))
	return m
}
