// Package service implements the HTTP plan server: a JSON API over the
// repro.Planner facade.
//
// Endpoints:
//
//	POST /v1/plan      — compute a reservation plan
//	POST /v1/simulate  — compute a plan and Monte-Carlo-evaluate it
//	GET  /healthz      — liveness probe
//	GET  /debug/vars   — expvar-style JSON metrics
//
// Responses are cached in a bounded LRU keyed by a canonical
// serialization of (distribution spec, cost model, strategy, options),
// so a cache hit returns bytes identical to the miss that populated
// it. Concurrent identical requests are coalesced through a
// singleflight group: one computation runs, every duplicate waits for
// its result. The X-Cache response header reports which path served
// the request (hit, miss, or coalesced); the body never varies.
//
// Plan computations run with Options.Workers = 1, i.e. inline, with
// zero goroutines spawned on the internal/parallel pool; parallelism
// comes from serving requests concurrently instead, bounded by a
// semaphore of WorkerBudget slots. The pool's worker gauge
// (workers_active / workers_peak in /debug/vars) therefore stays at
// zero no matter the request load — the budget is visible as the
// in_flight counter instead.
package service

import (
	"expvar"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro"
	"repro/internal/lru"
	"repro/internal/parallel"
)

// Default configuration values, used when the corresponding Config
// field is unset.
const (
	DefaultCacheSize        = 256
	DefaultPlannerCacheSize = 32
)

// maxRequestBytes bounds how much of a request body the decoder reads.
const maxRequestBytes = 1 << 20

// Config tunes a Server. The zero value is usable: unset fields take
// the documented defaults.
type Config struct {
	// CacheSize bounds the response cache, in entries (default 256).
	CacheSize int
	// PlannerCacheSize bounds how many Planners — one per distinct
	// (cost model, options) pair — the server retains (default 32).
	PlannerCacheSize int
	// RequestTimeout bounds each request's computation; zero means no
	// timeout. A timed-out computation keeps running in the background
	// and still populates the cache.
	RequestTimeout time.Duration
	// WorkerBudget caps the number of plan computations running at
	// once (default GOMAXPROCS). Each computation is single-threaded
	// (Options.Workers is forced to 1), so the budget is also a bound
	// on the CPUs the server consumes.
	WorkerBudget int
	// Now supplies timestamps for the latency metrics; nil selects
	// time.Now. Tests inject a fake clock here.
	Now func() time.Time
}

// Server is the HTTP plan service. Construct with New; safe for
// concurrent use.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	planners   *lru.Cache[string, *repro.Planner]
	cache      *lru.Cache[string, []byte]
	flight     flightGroup
	sem        chan struct{}
	metrics    *metrics
	strategies map[string]bool

	// computeGate, when non-nil (tests only), is invoked with the
	// cache key at the start of every underlying computation, before
	// any work. Tests use it to count and to stall computations.
	computeGate func(key string)
}

// New builds a Server from cfg, applying defaults for unset fields.
func New(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.PlannerCacheSize <= 0 {
		cfg.PlannerCacheSize = DefaultPlannerCacheSize
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		planners:   lru.New[string, *repro.Planner](cfg.PlannerCacheSize),
		cache:      lru.New[string, []byte](cfg.CacheSize),
		sem:        make(chan struct{}, cfg.WorkerBudget),
		strategies: make(map[string]bool),
	}
	for _, name := range repro.Strategies() {
		s.strategies[name] = true
	}
	s.metrics = newMetrics(s.cache.Len)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) now() time.Time { return s.cfg.Now() }

// acquire takes one of the WorkerBudget computation slots.
func (s *Server) acquire() { s.sem <- struct{}{} }

// release returns a computation slot.
func (s *Server) release() { <-s.sem }

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add("healthz", 1)
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// handleVars implements GET /debug/vars. The metrics live in an
// unregistered expvar.Map so that many Servers — e.g. in tests — can
// coexist in one process without colliding in the global expvar
// registry; expvar's own handler is therefore not used.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add("vars", 1)
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, s.metrics.vars.String())
	_, _ = io.WriteString(w, "\n")
}

// handleNotFound is the catch-all route.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add("other", 1)
	s.writeError(w, http.StatusNotFound, "not_found",
		"unknown path "+r.URL.Path+"; endpoints are /v1/plan, /v1/simulate, /healthz, /debug/vars")
}

// metrics is the per-server expvar state. The map is deliberately NOT
// published to the global expvar registry (Publish panics on duplicate
// names, and each Server owns its own counters).
type metrics struct {
	vars        *expvar.Map
	requests    *expvar.Map // request count per endpoint
	errors      *expvar.Map // error count per code
	latencyNS   *expvar.Map // cumulative handler nanoseconds per endpoint
	cacheHits   *expvar.Int
	cacheMisses *expvar.Int
	coalesced   *expvar.Int // requests served by joining another's computation
	inFlight    *expvar.Int
}

func newMetrics(cacheLen func() int) *metrics {
	m := &metrics{
		vars:        new(expvar.Map).Init(),
		requests:    new(expvar.Map).Init(),
		errors:      new(expvar.Map).Init(),
		latencyNS:   new(expvar.Map).Init(),
		cacheHits:   new(expvar.Int),
		cacheMisses: new(expvar.Int),
		coalesced:   new(expvar.Int),
		inFlight:    new(expvar.Int),
	}
	m.vars.Set("requests", m.requests)
	m.vars.Set("errors", m.errors)
	m.vars.Set("latency_ns", m.latencyNS)
	m.vars.Set("cache_hits", m.cacheHits)
	m.vars.Set("cache_misses", m.cacheMisses)
	m.vars.Set("coalesced", m.coalesced)
	m.vars.Set("in_flight", m.inFlight)
	m.vars.Set("cache_entries", expvar.Func(func() any { return cacheLen() }))
	m.vars.Set("workers_active", expvar.Func(func() any { return parallel.ActiveWorkers() }))
	m.vars.Set("workers_peak", expvar.Func(func() any { return parallel.PeakWorkers() }))
	return m
}
