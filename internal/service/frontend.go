package service

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/client"
	"repro/internal/shard"
	"repro/internal/tenant"
	"repro/service/api"
)

// DefaultHealthInterval is the background health-probe period when
// ShardConfig.HealthInterval is unset.
const DefaultHealthInterval = time.Second

// BackendRef names one backend shard and says how to reach it: an
// in-process http.Handler (the -shards N deployment) or a base URL
// (the -peers deployment). Exactly one of Handler and URL must be set.
type BackendRef struct {
	// Name is the shard's identity on the consistent-hash ring. It
	// must be stable across the fleet: every frontend that knows the
	// same names computes the same routing.
	Name string
	// Handler serves the shard in-process, with no network hop.
	Handler http.Handler
	// URL is the shard's base URL, e.g. "http://10.0.0.7:8081".
	URL string
}

// ShardConfig tunes a Frontend's ring and health checking.
type ShardConfig struct {
	// Replicas is the virtual-node count per backend on the ring
	// (default shard.DefaultReplicas).
	Replicas int
	// HealthInterval is the background probe period for ProbeLoop
	// (default 1s). A backend marked down by a failed request or probe
	// receives no traffic until a probe sees it healthy again.
	HealthInterval time.Duration
}

// withDefaults returns c with unset fields replaced by defaults.
func (c ShardConfig) withDefaults() ShardConfig {
	if c.Replicas <= 0 {
		c.Replicas = shard.DefaultReplicas
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	return c
}

// FrontendConfig tunes a Frontend.
type FrontendConfig struct {
	// Backends is the fleet, in any order (the ring sorts by hash).
	Backends []BackendRef
	// Shard tunes ring placement and health probing.
	Shard ShardConfig
	// Admission configures per-tenant fair-share admission control;
	// the zero value (Rate 0) disables it.
	Admission tenant.Config
	// Now supplies timestamps for metrics; nil selects time.Now.
	Now func() time.Time
}

// Frontend is the routing tier of the sharded plan service: a
// stateless http.Handler that admits requests under per-tenant
// fair-share quotas, routes each one to its distribution spec's home
// backend on a consistent-hash ring, and fails over to the next ring
// position when a backend errors. Responses pass through verbatim,
// with X-Shard naming the backend that served them. Construct with
// NewFrontend; safe for concurrent use.
type Frontend struct {
	cfg     FrontendConfig
	ring    *shard.Ring
	clients map[string]*client.Client
	limiter *tenant.Limiter
	mux     *http.ServeMux
	metrics *frontendMetrics

	mu   sync.Mutex
	down map[string]bool
}

// NewFrontend builds a Frontend over the given backends.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("service: frontend needs at least one backend")
	}
	cfg.Shard = cfg.Shard.withDefaults()
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Admission.Now == nil {
		cfg.Admission.Now = cfg.Now
	}
	names := make([]string, 0, len(cfg.Backends))
	clients := make(map[string]*client.Client, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if b.Name == "" {
			return nil, fmt.Errorf("service: backend with empty name")
		}
		if (b.Handler == nil) == (b.URL == "") {
			return nil, fmt.Errorf("service: backend %q must set exactly one of Handler and URL", b.Name)
		}
		ccfg := client.Config{
			// The frontend does its own ring failover; per-backend
			// retries would only delay it.
			MaxRetries: -1,
		}
		if b.Handler != nil {
			ccfg.BaseURL = "http://" + b.Name
			ccfg.HTTPClient = &http.Client{Transport: client.HandlerTransport(b.Handler)}
		} else {
			ccfg.BaseURL = b.URL
		}
		c, err := client.New(ccfg)
		if err != nil {
			return nil, fmt.Errorf("service: backend %q: %w", b.Name, err)
		}
		names = append(names, b.Name)
		clients[b.Name] = c
	}
	ring, err := shard.New(names, cfg.Shard.Replicas)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	limiter, err := tenant.New(cfg.Admission)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	f := &Frontend{
		cfg:     cfg,
		ring:    ring,
		clients: clients,
		limiter: limiter,
		mux:     http.NewServeMux(),
		metrics: newFrontendMetrics(),
		down:    make(map[string]bool),
	}
	f.mux.HandleFunc(api.PathPlan, func(w http.ResponseWriter, r *http.Request) {
		f.proxy(w, r, "plan", func(ctx context.Context, c *client.Client, body []byte) (*client.Raw, error) {
			return c.PostRaw(ctx, api.PathPlan, body, r.Header.Get(api.HeaderTenant))
		})
	})
	f.mux.HandleFunc(api.PathSimulate, func(w http.ResponseWriter, r *http.Request) {
		f.proxy(w, r, "simulate", func(ctx context.Context, c *client.Client, body []byte) (*client.Raw, error) {
			return c.PostRaw(ctx, api.PathSimulate, body, r.Header.Get(api.HeaderTenant))
		})
	})
	f.mux.HandleFunc(api.PathHealthz, f.handleHealthz)
	f.mux.HandleFunc(api.PathVars, f.handleVars)
	f.mux.HandleFunc("/", f.handleNotFound)
	return f, nil
}

// ServeHTTP implements http.Handler.
func (f *Frontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mux.ServeHTTP(w, r)
}

// Ring exposes the routing ring, e.g. for diagnostics and tests.
func (f *Frontend) Ring() *shard.Ring { return f.ring }

// routeSpec is the one field the frontend needs from a request body
// to route it; everything else passes through opaquely.
type routeSpec struct {
	Distribution string `json:"distribution"`
}

// proxy admits, routes, and forwards one request, failing over along
// the ring on backend errors.
func (f *Frontend) proxy(w http.ResponseWriter, r *http.Request, endpoint string,
	post func(ctx context.Context, c *client.Client, body []byte) (*client.Raw, error)) {
	f.metrics.requests.Add(endpoint, 1)
	if r.Method != http.MethodPost {
		f.fail(w, api.CodeMethodNotAllowed, "use POST")
		return
	}
	if d := f.limiter.Admit(r.Header.Get(api.HeaderTenant)); !d.OK {
		f.metrics.rejected.Add(1)
		secs := d.RetryAfter.Seconds()
		w.Header().Set("Retry-After", strconv.Itoa(int(secs)+1))
		f.metrics.errors.Add(api.CodeOverQuota, 1)
		writeErrorBody(w, api.Status(api.CodeOverQuota), api.ErrorBody{
			Code:              api.CodeOverQuota,
			Message:           "tenant over fair-share quota; retry after the indicated delay",
			RetryAfterSeconds: secs,
		})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		f.fail(w, api.CodeBadRequest, "reading request body: "+err.Error())
		return
	}
	// Loose decode on purpose: the backend enforces the strict schema;
	// the frontend only needs the routing key.
	var route routeSpec
	if err := json.Unmarshal(body, &route); err != nil {
		f.fail(w, api.CodeBadRequest, "invalid JSON request: "+err.Error())
		return
	}
	spec, err := CanonicalSpec(route.Distribution)
	if err != nil {
		f.fail(w, api.CodeBadRequest, err.Error())
		return
	}
	// Walk the failover sequence: home shard first, then the next
	// distinct shards clockwise. Down backends are skipped up front;
	// a backend that fails mid-request is marked down and the walk
	// continues, so a dead shard costs one failed hop, not a 5xx.
	var lastErr error
	tried := 0
	for _, name := range f.ring.Sequence(spec) {
		if f.isDown(name) {
			continue
		}
		tried++
		raw, err := post(r.Context(), f.clients[name], body)
		if err != nil {
			if r.Context().Err() != nil {
				f.fail(w, api.CodeCanceled, "request canceled")
				return
			}
			f.markDown(name)
			f.metrics.failovers.Add(1)
			lastErr = fmt.Errorf("shard %s: %w", name, err)
			continue
		}
		if raw.Status == http.StatusBadGateway || raw.Status == http.StatusServiceUnavailable {
			// The backend is up but refusing; try the next shard, but
			// leave health to the prober.
			f.metrics.failovers.Add(1)
			lastErr = fmt.Errorf("shard %s: status %d", name, raw.Status)
			continue
		}
		f.metrics.routed.Add(name, 1)
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set(api.HeaderShard, name)
		if raw.Cache != "" {
			h.Set(api.HeaderCache, raw.Cache)
		}
		w.WriteHeader(raw.Status)
		_, _ = w.Write(raw.Body)
		return
	}
	msg := "no healthy backend shard"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	} else if tried == 0 {
		msg += ": all " + strconv.Itoa(len(f.clients)) + " shards marked down"
	}
	f.fail(w, api.CodeUnavailable, msg)
}

// fail writes one structured error and counts it.
func (f *Frontend) fail(w http.ResponseWriter, code, message string) {
	f.metrics.errors.Add(code, 1)
	writeErrorBody(w, api.Status(code), api.ErrorBody{Code: code, Message: message})
}

// isDown reports whether a backend is currently marked unhealthy.
func (f *Frontend) isDown(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[name]
}

// markDown takes a backend out of rotation until a probe revives it.
func (f *Frontend) markDown(name string) {
	f.mu.Lock()
	f.down[name] = true
	f.mu.Unlock()
}

// CheckHealth probes every backend's /healthz once and updates the
// rotation: healthy backends rejoin, failing ones leave. It returns
// the names currently down, sorted by ring membership order.
func (f *Frontend) CheckHealth(ctx context.Context) []string {
	var down []string
	for _, name := range f.ring.Nodes() {
		err := f.clients[name].Healthz(ctx)
		f.mu.Lock()
		f.down[name] = err != nil
		f.mu.Unlock()
		if err != nil {
			down = append(down, name)
		}
	}
	f.metrics.probes.Add(1)
	return down
}

// ProbeLoop runs CheckHealth every HealthInterval until ctx is done.
// Run it on its own goroutine.
func (f *Frontend) ProbeLoop(ctx context.Context) {
	t := time.NewTicker(f.cfg.Shard.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.CheckHealth(ctx)
		}
	}
}

// handleHealthz implements GET /healthz: the frontend is alive iff it
// can still route somewhere, i.e. at least one backend is in rotation.
func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f.metrics.requests.Add("healthz", 1)
	if r.Method != http.MethodGet {
		f.fail(w, api.CodeMethodNotAllowed, "use GET")
		return
	}
	f.mu.Lock()
	up := 0
	for _, name := range f.ring.Nodes() {
		if !f.down[name] {
			up++
		}
	}
	f.mu.Unlock()
	if up == 0 {
		f.fail(w, api.CodeUnavailable, "all backend shards marked down")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// handleVars implements GET /debug/vars for the frontend's own
// metrics (the backends each serve their own).
func (f *Frontend) handleVars(w http.ResponseWriter, r *http.Request) {
	f.metrics.requests.Add("vars", 1)
	if r.Method != http.MethodGet {
		f.fail(w, api.CodeMethodNotAllowed, "use GET")
		return
	}
	counts := f.limiter.Snapshot()
	admission := new(expvar.Map).Init()
	for _, c := range counts {
		name := c.Tenant
		if name == "" {
			name = "(default)"
		}
		pair := new(expvar.Map).Init()
		admitted, rejected := new(expvar.Int), new(expvar.Int)
		admitted.Set(int64(c.Admitted))
		rejected.Set(int64(c.Rejected))
		pair.Set("admitted", admitted)
		pair.Set("rejected", rejected)
		admission.Set(name, pair)
	}
	f.metrics.vars.Set("admission", admission)
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, f.metrics.vars.String())
	_, _ = io.WriteString(w, "\n")
}

// handleNotFound is the catch-all route.
func (f *Frontend) handleNotFound(w http.ResponseWriter, r *http.Request) {
	f.metrics.requests.Add("other", 1)
	f.fail(w, api.CodeNotFound,
		"unknown path "+r.URL.Path+"; endpoints are /v1/plan, /v1/simulate, /healthz, /debug/vars")
}

// frontendMetrics is the frontend's unregistered expvar state.
type frontendMetrics struct {
	vars      *expvar.Map
	requests  *expvar.Map // request count per endpoint
	errors    *expvar.Map // error count per code
	routed    *expvar.Map // proxied request count per backend shard
	failovers *expvar.Int // hops past a failed backend
	rejected  *expvar.Int // admission rejections
	probes    *expvar.Int // CheckHealth sweeps
}

func newFrontendMetrics() *frontendMetrics {
	m := &frontendMetrics{
		vars:      new(expvar.Map).Init(),
		requests:  new(expvar.Map).Init(),
		errors:    new(expvar.Map).Init(),
		routed:    new(expvar.Map).Init(),
		failovers: new(expvar.Int),
		rejected:  new(expvar.Int),
		probes:    new(expvar.Int),
	}
	m.vars.Set("requests", m.requests)
	m.vars.Set("errors", m.errors)
	m.vars.Set("routed", m.routed)
	m.vars.Set("failovers", m.failovers)
	m.vars.Set("rejected", m.rejected)
	m.vars.Set("probes", m.probes)
	return m
}
