package service

import (
	"sync"
	"time"
)

// batchResult is one task's computed outcome.
type batchResult struct {
	body []byte
	err  error
}

// batchTask is one pending computation inside a batch group.
type batchTask struct {
	key     string
	compute func() ([]byte, error)
	done    chan batchResult
}

// batcher accumulates cache-miss computations into groups — all tasks
// in a group share a planner (identical cost model and options) but
// typically differ in distribution spec — and flushes each group as
// one unit: either when the group reaches limit tasks or when window
// has elapsed since the group opened, whichever comes first. Flushing
// hands the whole group to run, which the Backend implements as a
// single parallel.ForEach sweep, so a burst of related misses costs
// one fan-out instead of N independent goroutine wakeups.
//
// The batcher never drops a task: every submitted task's done channel
// receives exactly one result.
type batcher struct {
	window time.Duration
	limit  int
	run    func(tasks []*batchTask)

	mu     sync.Mutex
	groups map[string][]*batchTask
	gen    map[string]int // flush generation per group, detects stale timers
}

// newBatcher builds a batcher flushing through run.
func newBatcher(window time.Duration, limit int, run func(tasks []*batchTask)) *batcher {
	return &batcher{
		window: window,
		limit:  limit,
		run:    run,
		groups: make(map[string][]*batchTask),
		gen:    make(map[string]int),
	}
}

// do submits one computation to the named group and blocks until its
// batch flushes and the computation completes.
func (b *batcher) do(group, key string, compute func() ([]byte, error)) ([]byte, error) {
	t := &batchTask{key: key, compute: compute, done: make(chan batchResult, 1)}
	b.submit(group, t)
	res := <-t.done
	return res.body, res.err
}

// submit adds a task to its group, opening the group's flush timer on
// the first task and flushing immediately on the limit-th.
func (b *batcher) submit(group string, t *batchTask) {
	b.mu.Lock()
	b.groups[group] = append(b.groups[group], t)
	n := len(b.groups[group])
	if n >= b.limit {
		tasks := b.takeLocked(group)
		b.mu.Unlock()
		go b.run(tasks)
		return
	}
	if n == 1 {
		gen := b.gen[group]
		time.AfterFunc(b.window, func() { b.flush(group, gen) })
	}
	b.mu.Unlock()
}

// flush empties the group if it is still the generation the timer was
// armed for; a group already flushed by the size limit bumped its
// generation, making this timer a no-op.
func (b *batcher) flush(group string, gen int) {
	b.mu.Lock()
	if b.gen[group] != gen || len(b.groups[group]) == 0 {
		b.mu.Unlock()
		return
	}
	tasks := b.takeLocked(group)
	b.mu.Unlock()
	b.run(tasks)
}

// takeLocked removes and returns the group's tasks; callers hold mu.
func (b *batcher) takeLocked(group string) []*batchTask {
	tasks := b.groups[group]
	delete(b.groups, group)
	b.gen[group]++
	return tasks
}
