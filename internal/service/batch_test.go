package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherFlushesOnLimit: the limit-th task flushes the group
// immediately — the window (set absurdly long) is never waited out.
func TestBatcherFlushesOnLimit(t *testing.T) {
	var mu sync.Mutex
	var flushes [][]string
	b := newBatcher(time.Hour, 3, func(tasks []*batchTask) {
		keys := make([]string, len(tasks))
		for i, task := range tasks {
			keys[i] = task.key
			task.done <- batchResult{body: []byte(task.key)}
		}
		mu.Lock()
		flushes = append(flushes, keys)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := b.do("g", fmt.Sprintf("k%d", i), nil)
			if err != nil || len(body) == 0 {
				t.Errorf("task %d: body %q err %v", i, body, err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("limit-full batch did not flush without the window elapsing")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushes) != 1 || len(flushes[0]) != 3 {
		t.Errorf("flushes = %v, want one flush of 3", flushes)
	}
}

// TestBatcherFlushesOnWindow: a partial group flushes when the window
// elapses.
func TestBatcherFlushesOnWindow(t *testing.T) {
	var flushed atomic.Int32
	b := newBatcher(5*time.Millisecond, 100, func(tasks []*batchTask) {
		flushed.Add(int32(len(tasks)))
		for _, task := range tasks {
			task.done <- batchResult{body: []byte("ok")}
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.do("g", fmt.Sprintf("k%d", i), nil); err != nil {
				t.Errorf("task %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := flushed.Load(); got != 2 {
		t.Errorf("flushed %d tasks, want 2", got)
	}
}

// TestBatcherGroupsAreIndependent: tasks in different groups never
// share a flush.
func TestBatcherGroupsAreIndependent(t *testing.T) {
	var mu sync.Mutex
	groupsSeen := make(map[string]bool)
	b := newBatcher(5*time.Millisecond, 10, func(tasks []*batchTask) {
		mu.Lock()
		prefix := tasks[0].key[:1]
		for _, task := range tasks {
			if task.key[:1] != prefix {
				t.Errorf("mixed-group flush: %q with %q", task.key, tasks[0].key)
			}
		}
		groupsSeen[prefix] = true
		mu.Unlock()
		for _, task := range tasks {
			task.done <- batchResult{body: []byte("ok")}
		}
	})
	var wg sync.WaitGroup
	for _, g := range []string{"a", "b"} {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(g string, i int) {
				defer wg.Done()
				_, _ = b.do(g, fmt.Sprintf("%s%d", g, i), nil)
			}(g, i)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if !groupsSeen["a"] || !groupsSeen["b"] {
		t.Errorf("groups seen: %v", groupsSeen)
	}
}

// TestBackendBatchingEndToEnd: with batching enabled, concurrent
// misses sharing a cost model but differing in spec all succeed, are
// correct, and are accounted by the batch metrics; afterwards each is
// an ordinary cache hit.
func TestBackendBatchingEndToEnd(t *testing.T) {
	s := New(Config{Limits: LimitsConfig{BatchWindow: 2 * time.Millisecond, BatchLimit: 8}})
	ts := httptest.NewServer(s)
	defer ts.Close()

	specs := []string{"exponential(1)", "exponential(2)", "uniform(10,20)", "gamma(2,2)", "weibull(1,0.5)", "lognormal(3,0.5)"}
	bodyFor := func(spec string) string {
		return fmt.Sprintf(`{"distribution": %q, "cost_model": {"alpha": 1}, "strategy": "mean-doubling", "options": {"grid_m": 150}}`, spec)
	}
	responses := make([][]byte, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(bodyFor(spec)))
			if err != nil {
				t.Errorf("%s: %v", spec, err)
				return
			}
			defer resp.Body.Close()
			buf := new(bytes.Buffer)
			_, _ = buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d\n%s", spec, resp.StatusCode, buf.Bytes())
				return
			}
			responses[i] = buf.Bytes()
		}(i, spec)
	}
	wg.Wait()
	if got := s.metrics.batchedTasks.Value(); got != int64(len(specs)) {
		t.Errorf("batched_tasks = %d, want %d", got, len(specs))
	}
	if s.metrics.batchFlushes.Value() < 1 {
		t.Error("no batch flush recorded")
	}
	// Batched responses must be the same bytes a later cache hit serves.
	for i, spec := range specs {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(bodyFor(spec)))
		if err != nil {
			t.Fatal(err)
		}
		buf := new(bytes.Buffer)
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Cache") != "hit" {
			t.Errorf("%s: repeat X-Cache %q", spec, resp.Header.Get("X-Cache"))
		}
		if !bytes.Equal(responses[i], buf.Bytes()) {
			t.Errorf("%s: batched bytes differ from cached bytes", spec)
		}
	}
}

// TestBatchingDisabledByDefault: the zero config runs no batcher, so
// the inline-computation contract (worker gauge never moves) holds.
func TestBatchingDisabledByDefault(t *testing.T) {
	if s := New(Config{}); s.batch != nil {
		t.Error("batcher constructed without BatchWindow")
	}
}
