package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tenant"
	"repro/service/api"
)

// killableBackend wraps a Backend so tests can take it "down": while
// down it answers everything, including /healthz, with 503.
type killableBackend struct {
	*Backend
	down atomic.Bool
}

func (k *killableBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.down.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, `{"error":{"code":"unavailable","message":"shard killed by test"}}`)
		return
	}
	k.Backend.ServeHTTP(w, r)
}

// newFleet builds n killable in-process backends behind a frontend.
func newFleet(t *testing.T, n int, mutate func(*FrontendConfig)) (*Frontend, []*killableBackend) {
	t.Helper()
	backends := make([]*killableBackend, n)
	refs := make([]BackendRef, n)
	for i := range backends {
		backends[i] = &killableBackend{Backend: New(Config{})}
		refs[i] = BackendRef{Name: fmt.Sprintf("shard-%d", i), Handler: backends[i]}
	}
	cfg := FrontendConfig{Backends: refs}
	if mutate != nil {
		mutate(&cfg)
	}
	fe, err := NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fe, backends
}

// postFE posts body to a frontend handler in-process and returns
// status, X-Cache, X-Shard, and body.
func postFE(t *testing.T, h http.Handler, path, body, tenantName string) (int, string, string, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if tenantName != "" {
		req.Header.Set(api.HeaderTenant, tenantName)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header.Get(api.HeaderCache), res.Header.Get(api.HeaderShard), b
}

func planBodyFor(spec string) string {
	return fmt.Sprintf(`{"distribution": %q, "cost_model": {"alpha": 1}, "strategy": "mean-doubling"}`, spec)
}

// TestFrontendRoutesByCanonicalSpec: every request lands on its spec's
// ring home, and alternate spellings of one distribution share both
// the shard and the cache entry.
func TestFrontendRoutesByCanonicalSpec(t *testing.T) {
	fe, _ := newFleet(t, 4, nil)
	specs := []string{"exponential(1)", "uniform(10,20)", "lognormal(3,0.5)", "gamma(2,2)", "weibull(1,0.5)"}
	for _, spec := range specs {
		status, cache, shardName, body := postFE(t, fe, api.PathPlan, planBodyFor(spec), "")
		if status != http.StatusOK {
			t.Fatalf("%s: status %d\n%s", spec, status, body)
		}
		if cache != "miss" {
			t.Errorf("%s: X-Cache %q, want miss", spec, cache)
		}
		canonical, err := CanonicalSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if want := fe.Ring().Lookup(canonical); shardName != want {
			t.Errorf("%s: served by %q, ring home is %q", spec, shardName, want)
		}
		var resp api.PlanResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.CanonicalSpec != canonical {
			t.Errorf("%s: canonical_spec %q, want %q", spec, resp.CanonicalSpec, canonical)
		}
	}
	// "exp(1)" is a different spelling of "exponential(1)": same home
	// shard, and its canonical cache entry is already populated.
	status, cache, shardName, body := postFE(t, fe, api.PathPlan, planBodyFor("exp(1)"), "")
	if status != http.StatusOK || cache != "hit" {
		t.Errorf("alternate spelling: status %d, X-Cache %q, want 200 hit\n%s", status, cache, body)
	}
	if want := fe.Ring().Lookup("exponential(1)"); shardName != want {
		t.Errorf("alternate spelling routed to %q, want %q", shardName, want)
	}
}

// TestFrontendFailoverInProcess: a killed home shard answers 503; the
// frontend hops to the next ring position and the client sees 200 —
// zero 5xx through the outage, and traffic returns home after a
// health sweep revives the shard.
func TestFrontendFailoverInProcess(t *testing.T) {
	fe, backends := newFleet(t, 4, nil)
	spec := "lognormal(3,0.5)"
	home := fe.Ring().Lookup(spec)
	seq := fe.Ring().Sequence(spec)
	var homeIdx int
	fmt.Sscanf(home, "shard-%d", &homeIdx)

	// Healthy: served by home.
	if status, _, shardName, body := postFE(t, fe, api.PathPlan, planBodyFor(spec), ""); status != 200 || shardName != home {
		t.Fatalf("healthy: status %d shard %q\n%s", status, shardName, body)
	}
	// Kill the home shard: the same request must fail over to the next
	// ring position, never surfacing a 5xx.
	backends[homeIdx].down.Store(true)
	for i := 0; i < 10; i++ {
		status, _, shardName, body := postFE(t, fe, api.PathPlan, planBodyFor(spec), "")
		if status != http.StatusOK {
			t.Fatalf("during outage: status %d\n%s", status, body)
		}
		if shardName != seq[1] {
			t.Errorf("during outage: served by %q, want first failover %q", shardName, seq[1])
		}
	}
	// Revive and sweep: traffic returns to the home shard.
	backends[homeIdx].down.Store(false)
	if down := fe.CheckHealth(context.Background()); len(down) != 0 {
		t.Fatalf("after revival CheckHealth still reports down: %v", down)
	}
	if status, _, shardName, _ := postFE(t, fe, api.PathPlan, planBodyFor(spec), ""); status != 200 || shardName != home {
		t.Errorf("after revival: status %d shard %q, want 200 %q", status, shardName, home)
	}
}

// TestFrontendFailoverDeadTransport: a backend whose transport errors
// outright (process killed mid-load) is marked down on first contact;
// subsequent requests skip it without retrying it, and CheckHealth
// reports it down until it returns.
func TestFrontendFailoverDeadTransport(t *testing.T) {
	// Three live in-process shards plus one URL backend whose server is
	// already closed: a dead peer.
	deadServer := httptest.NewServer(New(Config{}))
	deadURL := deadServer.URL
	deadServer.Close()

	live := make([]BackendRef, 0, 4)
	for i := 0; i < 3; i++ {
		live = append(live, BackendRef{Name: fmt.Sprintf("shard-%d", i), Handler: New(Config{})})
	}
	live = append(live, BackendRef{Name: "shard-dead", URL: deadURL})
	fe, err := NewFrontend(FrontendConfig{Backends: live})
	if err != nil {
		t.Fatal(err)
	}
	// Find a spec homed on the dead shard so the first hop fails.
	spec := ""
	for _, cand := range []string{
		"exponential(1)", "exponential(2)", "exponential(3)", "uniform(10,20)",
		"gamma(2,2)", "weibull(1,0.5)", "lognormal(3,0.5)", "pareto(1.5,3)",
		"beta(2,2)", "uniform(1,2)", "exponential(5)", "gamma(3,1)",
	} {
		if fe.Ring().Lookup(cand) == "shard-dead" {
			spec = cand
			break
		}
	}
	if spec == "" {
		t.Skip("no probe spec homed on the dead shard; ring placement changed")
	}
	for i := 0; i < 5; i++ {
		status, _, shardName, body := postFE(t, fe, api.PathPlan, planBodyFor(spec), "")
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d\n%s", i, status, body)
		}
		if shardName == "shard-dead" {
			t.Fatalf("request %d: served by the dead shard", i)
		}
	}
	if !fe.isDown("shard-dead") {
		t.Error("dead shard not marked down after transport failure")
	}
	down := fe.CheckHealth(context.Background())
	if len(down) != 1 || down[0] != "shard-dead" {
		t.Errorf("CheckHealth = %v, want [shard-dead]", down)
	}
}

// TestFrontendAllShardsDown: when nothing is routable the client gets
// a structured 502 unavailable, not a hang or a panic.
func TestFrontendAllShardsDown(t *testing.T) {
	fe, backends := newFleet(t, 2, nil)
	for _, b := range backends {
		b.down.Store(true)
	}
	status, _, _, body := postFE(t, fe, api.PathPlan, planBodyFor("exponential(1)"), "")
	if status != http.StatusBadGateway {
		t.Fatalf("status %d\n%s", status, body)
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != api.CodeUnavailable {
		t.Errorf("error body %s", body)
	}
}

// frontendClock is a manual clock shared by the frontend and limiter.
type frontendClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *frontendClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *frontendClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestFrontendFairShareAdmission: with admission control on, a heavy
// tenant's flood is clipped to its share with structured 429s carrying
// Retry-After, while a light tenant under its share is never rejected.
func TestFrontendFairShareAdmission(t *testing.T) {
	clock := &frontendClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
	fe, _ := newFleet(t, 2, func(cfg *FrontendConfig) {
		cfg.Now = clock.Now
		cfg.Admission = tenant.Config{
			Rate:         20,
			Weights:      map[string]float64{"heavy": 1, "light": 1},
			BurstSeconds: 1,
			Now:          clock.Now,
		}
	})
	// Warm one spec so admitted requests are cheap cache hits.
	body := planBodyFor("exponential(1)")
	if status, _, _, b := postFE(t, fe, api.PathPlan, body, "light"); status != 200 {
		t.Fatalf("warm: %d\n%s", status, b)
	}

	var heavyOK, heavy429, lightOK, lightRejected int
	var sawRetryAfter bool
	for step := 0; step < 200; step++ {
		// Heavy floods 10 per tick; light sends 1 every 5 ticks.
		for i := 0; i < 10; i++ {
			status, _, _, b := postFE(t, fe, api.PathPlan, body, "heavy")
			switch status {
			case http.StatusOK:
				heavyOK++
			case http.StatusTooManyRequests:
				heavy429++
				var er api.ErrorResponse
				if err := json.Unmarshal(b, &er); err != nil || er.Error.Code != api.CodeOverQuota {
					t.Fatalf("429 body not structured: %s", b)
				}
				if er.Error.RetryAfterSeconds > 0 {
					sawRetryAfter = true
				}
			default:
				t.Fatalf("heavy: status %d\n%s", status, b)
			}
		}
		if step%5 == 0 {
			if status, _, _, _ := postFE(t, fe, api.PathPlan, body, "light"); status == http.StatusOK {
				lightOK++
			} else {
				lightRejected++
			}
		}
		clock.Advance(100 * time.Millisecond)
	}
	// Σw = 3, rate 20/s → heavy's share ≈ 6.67/s over 20 s ≈ 133; the
	// flood of 2000 must be mostly rejected.
	if heavy429 < 1500 {
		t.Errorf("heavy flood: %d admitted / %d rejected; expected most of 2000 rejected", heavyOK, heavy429)
	}
	if heavyOK < 100 || heavyOK > 200 {
		t.Errorf("heavy admitted %d, want ≈133 (its fair share)", heavyOK)
	}
	// Light demands 0.5/s against a ≈6.67/s share: never rejected.
	if lightRejected != 0 {
		t.Errorf("light tenant rejected %d times despite being under its share", lightRejected)
	}
	if lightOK != 40 {
		t.Errorf("light admitted %d, want all 40", lightOK)
	}
	if !sawRetryAfter {
		t.Error("no 429 carried retry_after_seconds")
	}
}

// TestWarmupGridFullHitRatio: after Warm, every Table-1 grid request —
// in any spelling — is a cache hit on its home shard.
func TestWarmupGridFullHitRatio(t *testing.T) {
	fe, _ := newFleet(t, 4, nil)
	reqs := WarmupRequests()
	if len(reqs) != 27 {
		t.Fatalf("warmup grid has %d entries, want 9 laws x 3 models = 27", len(reqs))
	}
	warmed, err := Warm(context.Background(), fe, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != len(reqs) {
		t.Fatalf("warmed %d/%d", warmed, len(reqs))
	}
	for _, req := range reqs {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		status, cache, _, body := postFE(t, fe, api.PathPlan, string(b), "")
		if status != http.StatusOK || cache != "hit" {
			t.Errorf("%s: status %d, X-Cache %q, want warmed hit\n%s", req.Distribution, status, cache, body)
		}
	}
}

// TestWarmupResponsesByteIdenticalAcrossPaths: a response served after
// warmup equals the bytes the warmup run cached.
func TestWarmupResponsesByteIdenticalAcrossPaths(t *testing.T) {
	fe, _ := newFleet(t, 3, nil)
	req := WarmupRequests()[0]
	b, _ := json.Marshal(req)
	_, _, _, first := postFE(t, fe, api.PathPlan, string(b), "")
	if _, err := Warm(context.Background(), fe, WarmupRequests()); err != nil {
		t.Fatal(err)
	}
	_, cache, _, second := postFE(t, fe, api.PathPlan, string(b), "")
	if cache != "hit" || !bytes.Equal(first, second) {
		t.Errorf("X-Cache %q, identical=%v", cache, bytes.Equal(first, second))
	}
}

// TestNewFrontendValidates: bad fleets are rejected at construction.
func TestNewFrontendValidates(t *testing.T) {
	if _, err := NewFrontend(FrontendConfig{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewFrontend(FrontendConfig{Backends: []BackendRef{{Name: "", Handler: New(Config{})}}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewFrontend(FrontendConfig{Backends: []BackendRef{{Name: "x"}}}); err == nil {
		t.Error("backend with neither Handler nor URL accepted")
	}
	if _, err := NewFrontend(FrontendConfig{Backends: []BackendRef{
		{Name: "x", Handler: New(Config{}), URL: "http://x"},
	}}); err == nil {
		t.Error("backend with both Handler and URL accepted")
	}
	if _, err := NewFrontend(FrontendConfig{
		Backends:  []BackendRef{{Name: "x", Handler: New(Config{})}},
		Admission: tenant.Config{Rate: 5, Weights: map[string]float64{"a": -1}},
	}); err == nil {
		t.Error("invalid admission weights accepted")
	}
}

// TestFrontendBadRequests: the frontend rejects unroutable requests
// itself with structured errors, without consuming backend capacity.
func TestFrontendBadRequests(t *testing.T) {
	fe, _ := newFleet(t, 2, nil)
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"distribution": `},
		{"missing distribution", `{"cost_model": {"alpha": 1}}`},
		{"unknown law", `{"distribution": "weird(1)", "cost_model": {"alpha": 1}}`},
	}
	for _, tc := range cases {
		status, _, _, body := postFE(t, fe, api.PathPlan, tc.body, "")
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d\n%s", tc.name, status, body)
		}
		var er api.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != api.CodeBadRequest {
			t.Errorf("%s: body %s", tc.name, body)
		}
	}
	// Wrong method and unknown path too.
	req := httptest.NewRequest(http.MethodGet, api.PathPlan, nil)
	rec := httptest.NewRecorder()
	fe.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET plan: %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/nope", nil)
	rec = httptest.NewRecorder()
	fe.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

// TestFrontendSimulateRoutes: /v1/simulate proxies like /v1/plan.
func TestFrontendSimulateRoutes(t *testing.T) {
	fe, _ := newFleet(t, 3, nil)
	body := `{"distribution": "gamma(2,2)", "cost_model": {"alpha": 1}, "strategy": "mean-doubling", "samples": 200, "sim_seed": 7}`
	status, cache, shardName, respBody := postFE(t, fe, api.PathSimulate, body, "")
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d, X-Cache %q\n%s", status, cache, respBody)
	}
	if want := fe.Ring().Lookup("gamma(2,2)"); shardName != want {
		t.Errorf("simulate served by %q, want %q", shardName, want)
	}
	if status, cache, _, _ := postFE(t, fe, api.PathSimulate, body, ""); status != 200 || cache != "hit" {
		t.Errorf("repeat: status %d, X-Cache %q", status, cache)
	}
}
