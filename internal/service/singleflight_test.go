package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightGroupSingleLeader: N concurrent callers of one key run fn
// exactly once and all observe the same bytes.
func TestFlightGroupSingleLeader(t *testing.T) {
	var g flightGroup
	const n = 32
	var executions atomic.Int32
	var joins atomic.Int32
	g.onJoin = func(string) { joins.Add(1) }
	release := make(chan struct{})
	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err, shared := g.Do("k", func() ([]byte, error) {
				executions.Add(1)
				<-release
				return []byte("payload"), nil
			})
			if err != nil || string(body) != "payload" {
				t.Errorf("Do = %q, %v", body, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait for every follower to have coalesced, then let the leader run.
	waitFor(t, "followers to coalesce", func() bool { return joins.Load() == n-1 })
	close(release)
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("%d shared results, want %d", got, n-1)
	}
}

// TestFlightGroupDistinctKeys: different keys do not coalesce.
func TestFlightGroupDistinctKeys(t *testing.T) {
	var g flightGroup
	a, _, _ := g.Do("a", func() ([]byte, error) { return []byte("A"), nil })
	b, _, _ := g.Do("b", func() ([]byte, error) { return []byte("B"), nil })
	if string(a) != "A" || string(b) != "B" {
		t.Errorf("results %q/%q", a, b)
	}
}

// TestFlightGroupErrorPropagates: a failed computation reaches every
// coalesced caller, and the key is forgotten afterwards.
func TestFlightGroupErrorPropagates(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	if _, err, _ := g.Do("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	// The failure was not cached: a later call runs fn again.
	body, err, shared := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(body) != "ok" || shared {
		t.Errorf("retry = %q, %v, shared=%v", body, err, shared)
	}
}
