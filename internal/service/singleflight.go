package service

import "sync"

// call is one in-flight computation in a flightGroup.
type call struct {
	done chan struct{}
	body []byte
	err  error
}

// flightGroup coalesces concurrent computations that share a key: the
// first caller runs fn, every duplicate arriving before it finishes
// blocks and receives the same result. Keys are forgotten as soon as
// the leader returns, so later requests recompute (or, in the server,
// hit the response cache instead).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call

	// onJoin, when non-nil (tests only), is invoked with the key each
	// time a caller joins an in-flight computation instead of starting
	// its own. It lets tests detect that every expected duplicate has
	// coalesced before they unblock the leader.
	onJoin func(key string)
}

// Do returns the result of fn for key, running fn at most once across
// all concurrent callers. shared reports whether this caller joined a
// computation started by another request.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (body []byte, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin(key)
		}
		<-c.done
		return c.body, c.err, true
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, c.err, false
}
