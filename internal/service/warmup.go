package service

import (
	"context"
	"fmt"
	"net/http"

	"repro"
	"repro/client"
	"repro/internal/dist"
	"repro/service/api"
)

// warmupModels are the cost models of the warmup grid: the paper's
// two platform models plus the hybrid pay-reserved-plus-usage model.
func warmupModels() []api.CostModel {
	reserved := repro.ReservationOnly
	hpc := repro.NeuroHPC()
	return []api.CostModel{
		{Alpha: reserved.Alpha, Beta: reserved.Beta, Gamma: reserved.Gamma},
		{Alpha: hpc.Alpha, Beta: hpc.Beta, Gamma: hpc.Gamma},
		{Alpha: 1, Beta: 1, Gamma: 0},
	}
}

// WarmupRequests returns the Table-1 warmup grid: the paper's nine
// distributions crossed with three cost models, all with default
// options and strategy. A fleet that warms this grid serves the whole
// Table-1 workload from cache — the canonical specs here are exactly
// the cache/routing keys the backends derive, so a warmed entry is a
// guaranteed hit for any spelling of the same request.
func WarmupRequests() []api.PlanRequest {
	laws := dist.Table1()
	models := warmupModels()
	out := make([]api.PlanRequest, 0, len(laws)*len(models))
	for _, d := range laws {
		spec, err := repro.DistributionSpec(d)
		if err != nil {
			// Unreachable: every Table-1 law serializes.
			continue
		}
		for _, m := range models {
			out = append(out, api.PlanRequest{Distribution: spec, CostModel: m})
		}
	}
	return out
}

// Warm drives the warmup grid through h — a Backend, or a Frontend
// that routes each request to its home shard — so the fleet's caches
// hold the Table-1 grid before real traffic arrives. It returns the
// number of requests warmed and the first error, if any; requests
// after an error are still attempted.
func Warm(ctx context.Context, h http.Handler, reqs []api.PlanRequest) (int, error) {
	c, err := client.New(client.Config{
		BaseURL:    "http://warmup",
		HTTPClient: &http.Client{Transport: client.HandlerTransport(h)},
		MaxRetries: -1, // in-process: a failure will not heal by retrying
	})
	if err != nil {
		return 0, err
	}
	warmed := 0
	var firstErr error
	for _, req := range reqs {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		if _, err := c.Plan(ctx, req); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("warming %q: %w", req.Distribution, err)
			}
			continue
		}
		warmed++
	}
	return warmed, firstErr
}
