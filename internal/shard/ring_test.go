package shard

import (
	"fmt"
	"reflect"
	"testing"
)

// testKeys builds n distinct spec-shaped keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("lognormal(3,%g)", 0.3+0.001*float64(i))
	}
	return keys
}

func mustRing(t *testing.T, nodes []string, replicas int) *Ring {
	t.Helper()
	r, err := New(nodes, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidates(t *testing.T) {
	for _, nodes := range [][]string{nil, {}, {""}, {"a", "a"}} {
		if _, err := New(nodes, 8); err == nil {
			t.Errorf("New(%q) accepted", nodes)
		}
	}
	r := mustRing(t, []string{"a"}, 0)
	if r.Replicas() != DefaultReplicas {
		t.Errorf("default replicas = %d", r.Replicas())
	}
}

// TestLookupDeterministicAcrossConstructions: the same member list
// yields identical placement in independently built rings, regardless
// of the process; Lookup never depends on query order.
func TestLookupDeterministicAcrossConstructions(t *testing.T) {
	nodes := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	a := mustRing(t, nodes, 64)
	b := mustRing(t, nodes, 64)
	for _, k := range testKeys(500) {
		if got, want := b.Lookup(k), a.Lookup(k); got != want {
			t.Fatalf("Lookup(%q) differs across constructions: %q vs %q", k, got, want)
		}
	}
	// Exactly one home shard per key: repeated lookups agree.
	for _, k := range testKeys(100) {
		first := a.Lookup(k)
		for i := 0; i < 3; i++ {
			if got := a.Lookup(k); got != first {
				t.Fatalf("Lookup(%q) unstable: %q then %q", k, first, got)
			}
		}
	}
}

// TestBalanceBounds: with the default replica count, the per-member
// key share stays within a modest factor of perfect balance. The
// bounds are deterministic (fixed hash, fixed keys), so this is a
// regression pin, not a flaky statistical test.
func TestBalanceBounds(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{2, 3, 4, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("shard-%d", i)
		}
		r := mustRing(t, nodes, DefaultReplicas)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Lookup(k)]++
		}
		mean := float64(len(keys)) / float64(n)
		for _, node := range nodes {
			c := counts[node]
			if c == 0 {
				t.Errorf("n=%d: %s owns no keys", n, node)
			}
			if ratio := float64(c) / mean; ratio > 1.35 || ratio < 0.65 {
				t.Errorf("n=%d: %s owns %d keys (%.2fx mean); balance bound violated", n, node, c, ratio)
			}
		}
	}
}

// TestConsistencyUnderMembershipChange: removing one member moves only
// the keys that were homed on it; every other key keeps its shard.
func TestConsistencyUnderMembershipChange(t *testing.T) {
	nodes := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	full := mustRing(t, nodes, DefaultReplicas)
	reduced := mustRing(t, nodes[:3], DefaultReplicas) // shard-3 removed
	keys := testKeys(5000)
	moved, onRemoved := 0, 0
	for _, k := range keys {
		before, after := full.Lookup(k), reduced.Lookup(k)
		if before == "shard-3" {
			onRemoved++
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved that were not homed on the removed shard", moved)
	}
	if onRemoved == 0 {
		t.Error("test vacuous: no keys were homed on the removed shard")
	}
}

// TestSequenceCoversAllNodesOnce: the failover order starts at the
// home shard and visits every member exactly once.
func TestSequenceCoversAllNodesOnce(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r := mustRing(t, nodes, 32)
	for _, k := range testKeys(200) {
		seq := r.Sequence(k)
		if len(seq) != len(nodes) {
			t.Fatalf("Sequence(%q) = %v, want all %d nodes", k, seq, len(nodes))
		}
		if seq[0] != r.Lookup(k) {
			t.Fatalf("Sequence(%q)[0] = %q, want home %q", k, seq[0], r.Lookup(k))
		}
		seen := make(map[string]bool)
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("Sequence(%q) repeats %q: %v", k, n, seq)
			}
			seen[n] = true
		}
	}
}

// TestSequenceFailoverSpreads: second choices are not all the same
// node — failover load from one shard spreads across the others.
func TestSequenceFailoverSpreads(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := mustRing(t, nodes, DefaultReplicas)
	second := make(map[string]int)
	for _, k := range testKeys(2000) {
		if r.Lookup(k) == "a" {
			second[r.Sequence(k)[1]]++
		}
	}
	if len(second) < 2 {
		t.Errorf("failover targets from shard a = %v; virtual nodes should spread them", second)
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := mustRing(t, []string{"only"}, 4)
	if r.Lookup("anything") != "only" {
		t.Error("single-node lookup")
	}
	if got := r.Sequence("anything"); !reflect.DeepEqual(got, []string{"only"}) {
		t.Errorf("Sequence = %v", got)
	}
}

func TestHashVectors(t *testing.T) {
	// Pinned vectors: FNV-1a 64 followed by the murmur3 fmix64
	// finalizer. Any change to the hash silently remaps every key to a
	// different shard, so the exact values are part of the contract.
	cases := map[string]uint64{
		"":    0xefd01f60ba992926,
		"a":   0x82a2a958a9bece5b,
		"foo": 0xaf85ea5569581d4c,
	}
	for in, want := range cases {
		if got := Hash(in); got != want {
			t.Errorf("Hash(%q) = %#x, want %#x", in, got, want)
		}
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	r := mustRing(t, []string{"a", "b"}, 4)
	n := r.Nodes()
	n[0] = "mutated"
	if r.Nodes()[0] != "a" {
		t.Error("Nodes() exposed internal state")
	}
}
