// Package shard implements the consistent-hash ring that assigns every
// canonical DistributionSpec a home backend shard. Placement is
// deterministic — an avalanche-finished FNV-1a 64-bit hash over
// "node\x00replica" for the virtual nodes and over the key for
// lookups — so any process that knows the
// member list computes the same routing with no coordination, and a
// spec's derived state (workloads, discretizations, cached responses)
// concentrates on exactly one shard.
//
// Each member is placed at Replicas virtual positions; lookups walk
// clockwise from the key's hash. Removing a member only reassigns the
// keys that were homed on it (consistency), and with enough virtual
// nodes the key mass is balanced across members within a small factor
// (both properties are pinned by tests).
package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member when a Ring is
// built with replicas <= 0. 128 keeps the max/mean key imbalance under
// ~1.3 for realistic member counts while keeping the ring small.
const DefaultReplicas = 128

// fnv1a64 constants (FNV-1a, 64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash is the ring's hash function: FNV-1a 64-bit finished with the
// murmur3 64-bit avalanche mix. Plain FNV-1a disperses similar short
// strings (spec grammar, "shard-N" names) poorly enough to skew the
// ring by >1.5x; the finalizer restores full avalanche while keeping
// the function dependency-free and deterministic. Exported so tests
// and diagnostics can reproduce placements.
func Hash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// mix64 is the murmur3 fmix64 finalizer: a bijective avalanche mix.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash uint64
	node int // index into nodes
}

// Ring is an immutable consistent-hash ring over a set of member
// names. Construct with New; safe for concurrent use (all methods are
// reads).
type Ring struct {
	nodes    []string
	points   []point // sorted by hash
	replicas int
}

// New builds a ring over the given distinct member names with the
// given virtual-node count per member (replicas <= 0 selects
// DefaultReplicas).
func New(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("shard: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("shard: duplicate node name %q", n)
		}
		seen[n] = true
	}
	r := &Ring{
		nodes:    append([]string(nil), nodes...),
		points:   make([]point, 0, len(nodes)*replicas),
		replicas: replicas,
	}
	for i, n := range r.nodes {
		for v := 0; v < replicas; v++ {
			// The \x00 separator keeps ("node1", 0) and ("node", 10)
			// from colliding in the concatenation.
			h := Hash(n + "\x00" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break by node index so placement stays deterministic even
		// on (astronomically unlikely) 64-bit hash collisions.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the member names, in construction order.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// start returns the index of the first virtual node at or clockwise
// after key's hash.
func (r *Ring) start(key string) int {
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Lookup returns the home member for key: the owner of the first
// virtual node clockwise from the key's hash.
func (r *Ring) Lookup(key string) string {
	return r.nodes[r.points[r.start(key)].node]
}

// Sequence returns all members in failover order for key: the home
// member first, then each subsequent distinct member in clockwise ring
// order. Every member appears exactly once, so walking the sequence
// tries the whole fleet.
func (r *Ring) Sequence(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i, n := r.start(key), 0; n < len(r.points) && len(out) < len(r.nodes); i, n = (i+1)%len(r.points), n+1 {
		p := r.points[i]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
