package platform

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func TestNeuroHPCModel(t *testing.T) {
	m := NeuroHPC()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Alpha != 0.95 || m.Beta != 1 {
		t.Errorf("NeuroHPC α=%g β=%g, want 0.95, 1", m.Alpha, m.Beta)
	}
	if math.Abs(m.Gamma-1.0477333333333334) > 1e-9 {
		t.Errorf("NeuroHPC γ = %g h, want 3771.84/3600", m.Gamma)
	}
}

func TestNeuroHPCFromFittedModel(t *testing.T) {
	// End-to-end: synthesize the Intrepid log, fit it, build the model.
	log, err := trace.GenerateWaitTimeLog(trace.Intrepid409, 20, 600, 72000, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := trace.FitWaitTimeModel(log)
	if err != nil {
		t.Fatal(err)
	}
	m := NeuroHPCFromWaitModel(fit)
	if math.Abs(m.Alpha-0.95) > 1e-9 || math.Abs(m.Gamma-3771.84/3600) > 1e-9 {
		t.Errorf("fitted NeuroHPC model = %v", m)
	}
}

func TestPriceRatio(t *testing.T) {
	th, err := AWSFactor4.Threshold()
	if err != nil || th != 4 {
		t.Fatalf("threshold = %g, %v", th, err)
	}
	ok, err := AWSFactor4.ReservationWorthwhile(2.13)
	if err != nil || !ok {
		t.Errorf("normalized 2.13 should be worthwhile under factor 4")
	}
	ok, err = AWSFactor4.ReservationWorthwhile(5)
	if err != nil || ok {
		t.Errorf("normalized 5 should not be worthwhile under factor 4")
	}
	if _, err := (PriceRatio{}).Threshold(); err == nil {
		t.Error("zero prices accepted")
	}
}

func TestReplayMatchesExpectedCost(t *testing.T) {
	// The event-level simulator converges to the Eq.-(4) closed form.
	d := dist.MustLogNormal(3, 0.5)
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.3}
	s, err := strategy.MeanDoubling{}.Sequence(m, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ExpectedCost(m, d, s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(m, d, s, 100000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanCost-want) > 0.02*want {
		t.Errorf("replay mean %g vs analytic %g", rep.MeanCost, want)
	}
	if rep.NormalizedCost < 1 {
		t.Errorf("normalized %g < 1", rep.NormalizedCost)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization = %g", rep.Utilization)
	}
	if rep.MeanAttempts < 1 {
		t.Errorf("mean attempts = %g", rep.MeanAttempts)
	}
	if len(rep.Jobs) != 100000 {
		t.Errorf("job log has %d entries", len(rep.Jobs))
	}
}

func TestReplayPerJobAccounting(t *testing.T) {
	// Single deterministic-ish check: Uniform(10, 20) under (15, 20).
	d := dist.MustUniform(10, 20)
	s, err := core.NewExplicitSequence(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	m := core.ReservationOnly
	rep, err := Replay(m, d, s, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rep.Jobs {
		switch {
		case j.ExecutionTime <= 15:
			if j.Attempts != 1 || j.Cost != 15 || j.Reserved != 15 {
				t.Fatalf("short job accounted wrong: %+v", j)
			}
			if j.Used != j.ExecutionTime {
				t.Fatalf("short job used %g, want t", j.Used)
			}
		default:
			if j.Attempts != 2 || j.Cost != 35 || j.Reserved != 35 {
				t.Fatalf("long job accounted wrong: %+v", j)
			}
			if math.Abs(j.Used-(15+j.ExecutionTime)) > 1e-12 {
				t.Fatalf("long job used %g, want 15+t", j.Used)
			}
		}
	}
	// Expected cost: 15 + P(X>15)·20 = 25.
	if math.Abs(rep.MeanCost-25) > 0.5 {
		t.Errorf("mean cost = %g, want ≈25", rep.MeanCost)
	}
}

func TestReplayValidation(t *testing.T) {
	d := dist.MustUniform(10, 20)
	s, _ := core.NewExplicitSequence(20)
	if _, err := Replay(core.CostModel{}, d, s, 10, 1); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Replay(core.ReservationOnly, d, s, 0, 1); err == nil {
		t.Error("zero jobs accepted")
	}
	// Uncovered sequence surfaces as an error.
	short, _ := core.NewExplicitSequence(12)
	if _, err := Replay(core.ReservationOnly, d, short, 1000, 1); err == nil {
		t.Error("uncovered sequence replayed without error")
	}
}

func TestNeuroHPCScenarioEndToEnd(t *testing.T) {
	// §5.3 in miniature: fit the trace, build the model in hours, plan
	// with MEAN-DOUBLING, replay; the normalized cost must be sane and
	// the brute-force plan must do at least as well.
	samples, err := trace.GenerateRunTrace(trace.VBMQA, 3000, 0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := dist.FitLogNormal(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Convert seconds → hours.
	d, err := dist.NewLogNormal(fitted.Mu()-math.Log(SecondsPerHour), fitted.Sigma())
	if err != nil {
		t.Fatal(err)
	}
	m := NeuroHPC()

	md, err := strategy.MeanDoubling{}.Sequence(m, d)
	if err != nil {
		t.Fatal(err)
	}
	eMD, err := core.NormalizedExpectedCost(m, d, md)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := strategy.BruteForce{M: 800, Mode: strategy.EvalAnalytic}.Search(m, d)
	if err != nil {
		t.Fatal(err)
	}
	eBF := bf.Best.Cost / m.OmniscientCost(d)
	if eBF > eMD+1e-9 {
		t.Errorf("brute force (%g) worse than mean-doubling (%g)", eBF, eMD)
	}
	if eBF < 1 || eBF > 3 {
		t.Errorf("NeuroHPC brute-force normalized cost = %g, expected O(1–3)", eBF)
	}
}

// TestReplayMatchesAnalyticStats: the event-level simulator's attempt
// count and utilization converge to core.Stats' closed forms.
func TestReplayMatchesAnalyticStats(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.3}
	s, err := strategy.MeanDoubling{}.Sequence(m, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Stats(m, d, s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(m, d, s, 100000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanAttempts-want.ExpectedAttempts) > 0.02*want.ExpectedAttempts {
		t.Errorf("attempts: replay %g vs analytic %g", rep.MeanAttempts, want.ExpectedAttempts)
	}
	if math.Abs(rep.Utilization-want.Utilization) > 0.02 {
		t.Errorf("utilization: replay %g vs analytic %g", rep.Utilization, want.Utilization)
	}
}
