// Package platform instantiates the paper's two evaluation platforms
// (§5.1) and provides a replay simulator that executes a reservation
// strategy job-by-job on a simulated reservation-based platform,
// cross-validating the closed-form expected costs:
//
//   - ReservationOnly: the AWS Reserved-Instance pricing scheme — the
//     user pays exactly the reserved duration (α=1, β=γ=0), and the
//     Reserved-vs-On-Demand price ratio decides whether reserving is
//     worthwhile at all;
//   - NeuroHPC: large jobs on an HPC platform where the cost is the
//     turnaround time — the queue wait (an affine function of the
//     requested duration, fitted from the Intrepid log) plus the actual
//     execution time (α=0.95, β=1, γ=1.05 h).
package platform

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/trace"
)

// SecondsPerHour converts the trace substrate's seconds to the
// NeuroHPC scenario's hours.
const SecondsPerHour = 3600.0

// ReservationOnly returns the AWS Reserved-Instance cost model
// (α=1, β=γ=0).
func ReservationOnly() core.CostModel { return core.ReservationOnly }

// NeuroHPC returns the §5.3 cost model in hours: the turnaround time
// α·request + β·execution + γ with the published Intrepid fit
// (α=0.95, γ=1.05 h) and β=1.
func NeuroHPC() core.CostModel {
	return NeuroHPCFromWaitModel(trace.Intrepid409)
}

// NeuroHPCFromWaitModel builds the NeuroHPC cost model (in hours) from
// an arbitrary affine wait-time fit in seconds, e.g. one recovered by
// trace.FitWaitTimeModel.
func NeuroHPCFromWaitModel(w trace.WaitTimeModel) core.CostModel {
	return core.CostModel{Alpha: w.Alpha, Beta: 1, Gamma: w.Gamma / SecondsPerHour}
}

// PriceRatio captures the Reserved-Instance vs On-Demand per-hour
// prices of a cloud provider (§5.2): using reservations pays off when
// the normalized expected cost of the strategy stays below
// OnDemand/Reserved.
type PriceRatio struct {
	// Reserved is the per-hour Reserved-Instance price.
	Reserved float64
	// OnDemand is the per-hour On-Demand price.
	OnDemand float64
}

// AWSFactor4 is the paper's Amazon AWS example, where the two services
// differ by a factor of 4.
var AWSFactor4 = PriceRatio{Reserved: 1, OnDemand: 4}

// Threshold returns c_OD / c_RI, the normalized-cost level below which
// reserving beats running on demand.
func (p PriceRatio) Threshold() (float64, error) {
	if !(p.Reserved > 0) || !(p.OnDemand > 0) {
		return 0, fmt.Errorf("platform: prices must be positive, got %+v", p)
	}
	return p.OnDemand / p.Reserved, nil
}

// ReservationWorthwhile reports whether a strategy with the given
// normalized expected cost (relative to the omniscient scheduler) is
// cheaper under reservations than on demand: c_RI·E(S) <= c_OD·E^o.
func (p PriceRatio) ReservationWorthwhile(normalizedCost float64) (bool, error) {
	th, err := p.Threshold()
	if err != nil {
		return false, err
	}
	return normalizedCost <= th, nil
}

// JobRecord is the outcome of one job replayed on the simulated
// platform.
type JobRecord struct {
	// ExecutionTime is the job's sampled duration.
	ExecutionTime float64
	// Attempts is the number of reservations paid.
	Attempts int
	// Reserved is the total reserved duration across attempts.
	Reserved float64
	// Used is the total machine time actually consumed.
	Used float64
	// Cost is the total Eq.-(2) cost.
	Cost float64
}

// ReplayReport aggregates a replay run.
type ReplayReport struct {
	// Jobs is the per-job log.
	Jobs []JobRecord
	// MeanCost is the average per-job cost (the Eq.-13 estimate).
	MeanCost float64
	// MeanAttempts is the average number of reservations per job.
	MeanAttempts float64
	// Utilization is total used time divided by total reserved time —
	// the fraction of paid reservation time doing useful work.
	Utilization float64
	// NormalizedCost is MeanCost over the omniscient expected cost.
	NormalizedCost float64
}

// Replay runs n jobs sampled from d through the reservation strategy s
// on a simulated reservation-based platform under cost model m. It is
// an event-level cross-check of the closed-form expected cost: the
// returned MeanCost converges to core.ExpectedCost as n grows.
func Replay(m core.CostModel, d dist.Distribution, s *core.Sequence, n int, seed uint64) (ReplayReport, error) {
	if err := m.Validate(); err != nil {
		return ReplayReport{}, err
	}
	if n <= 0 {
		return ReplayReport{}, errors.New("platform: need at least one job")
	}
	r := rng.New(seed)
	rep := ReplayReport{Jobs: make([]JobRecord, 0, n)}
	var totalCost, totalAttempts, totalReserved, totalUsed float64
	for i := 0; i < n; i++ {
		t := dist.Sample(d, r)
		rec := JobRecord{ExecutionTime: t}
		for k := 0; ; k++ {
			res, err := s.At(k)
			if err != nil {
				return ReplayReport{}, fmt.Errorf("platform: job %d (t=%g): %w", i, t, err)
			}
			rec.Attempts++
			rec.Reserved += res
			used := math.Min(res, t)
			rec.Used += used
			rec.Cost += m.AttemptCost(res, t)
			if t <= res {
				break
			}
		}
		totalCost += rec.Cost
		totalAttempts += float64(rec.Attempts)
		totalReserved += rec.Reserved
		totalUsed += rec.Used
		rep.Jobs = append(rep.Jobs, rec)
	}
	rep.MeanCost = totalCost / float64(n)
	rep.MeanAttempts = totalAttempts / float64(n)
	if totalReserved > 0 {
		rep.Utilization = totalUsed / totalReserved
	}
	rep.NormalizedCost = rep.MeanCost / m.OmniscientCost(d)
	return rep, nil
}
