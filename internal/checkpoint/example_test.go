package checkpoint_test

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dist"
)

// ExampleSolve computes an optimal checkpoint policy for a discrete law
// where checkpoints are cheap: after the first milestone fails, the
// saved progress makes the retry far shorter.
func ExampleSolve() {
	d, _ := dist.NewDiscrete([]float64{2, 10}, []float64{0.7, 0.3})
	pol, _ := checkpoint.Solve(d, core.ReservationOnly, checkpoint.Params{C: 0.1, R: 0.1})
	for i, st := range pol.Steps {
		fmt.Printf("step %d: reach %g, checkpoint=%v, reserve %.1f\n",
			i+1, st.Milestone, st.Checkpoint, st.Length)
	}
	fmt.Printf("expected cost %.2f\n", pol.ExpectedCost)
	// Output:
	// step 1: reach 2, checkpoint=true, reserve 2.1
	// step 2: reach 10, checkpoint=false, reserve 8.1
	// expected cost 4.53
}
