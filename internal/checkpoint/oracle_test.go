package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
)

// oracleCost evaluates the exact expected cost of a fully specified
// policy (milestone indices + checkpoint bits) over a discrete law by
// direct enumeration of outcomes — an independent implementation used
// only as a test oracle.
// milestoneVals is the support table the milestone indices refer to;
// jobs/jobProbs describe the job population being priced.
func oracleCost(milestoneVals, jobs, jobProbs []float64, m core.CostModel, p Params, miles []int, ckpts []bool) float64 {
	vals := milestoneVals
	var e float64
	for vi, v := range jobs {
		// Walk the policy for a job of work v.
		progress := 0.0
		have := false
		var cost float64
		done := false
		for si, j := range miles {
			restore := 0.0
			if have {
				restore = p.R
			}
			length := restore + (vals[j] - progress)
			if ckpts[si] {
				length += p.C
			}
			if v <= vals[j] {
				cost += m.Alpha*length + m.Beta*(restore+v-progress) + m.Gamma
				done = true
				break
			}
			cost += m.Alpha*length + m.Beta*length + m.Gamma
			if ckpts[si] {
				progress = vals[j]
				have = true
			}
		}
		if !done {
			return math.Inf(1)
		}
		e += jobProbs[vi] * cost
	}
	return e
}

// oracleBest enumerates every increasing milestone subset ending at the
// top value and every checkpoint-bit assignment, returning the optimal
// cost. Exponential (≈ 3^{n-1}); n must stay tiny.
func oracleBest(vals, probs []float64, m core.CostModel, p Params) float64 {
	n := len(vals)
	best := math.Inf(1)
	// Subsets of {0..n-2} (bitmask), always including n-1.
	for mask := 0; mask < 1<<(n-1); mask++ {
		var miles []int
		for b := 0; b < n-1; b++ {
			if mask&(1<<b) != 0 {
				miles = append(miles, b)
			}
		}
		miles = append(miles, n-1)
		k := len(miles)
		// All checkpoint-bit assignments for the k steps (the final
		// step's bit only wastes C; include it anyway so the oracle
		// covers policies the DP prunes).
		for bits := 0; bits < 1<<k; bits++ {
			ckpts := make([]bool, k)
			for s := 0; s < k; s++ {
				ckpts[s] = bits&(1<<s) != 0
			}
			if c := oracleCost(vals, vals, probs, m, p, miles, ckpts); c < best {
				best = c
			}
		}
	}
	return best
}

// TestSolveMatchesExhaustiveOracle cross-checks the O(n³) mixed DP
// against full enumeration on random small instances.
func TestSolveMatchesExhaustiveOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint8, cRaw, rRaw uint8, withBeta bool) bool {
		n := int(nRaw%5) + 2 // 2..6 support points
		r := rng.New(seed)
		vals := make([]float64, n)
		probs := make([]float64, n)
		cur := 0.0
		tot := 0.0
		for i := range vals {
			cur += 0.2 + 2*r.Float64()
			vals[i] = cur
			probs[i] = 0.05 + r.Float64()
			tot += probs[i]
		}
		for i := range probs {
			probs[i] /= tot
		}
		d, err := dist.NewDiscrete(vals, probs)
		if err != nil {
			return false
		}
		m := core.ReservationOnly
		if withBeta {
			m = core.CostModel{Alpha: 0.5 + r.Float64(), Beta: r.Float64(), Gamma: r.Float64()}
		}
		p := Params{C: float64(cRaw%40) / 20, R: float64(rRaw%40) / 20}
		got, err := Solve(d, m, p)
		if err != nil {
			return false
		}
		want := oracleBest(vals, probs, m, p)
		if math.Abs(got.ExpectedCost-want) > 1e-9*(1+want) {
			t.Logf("n=%d m=%v p=%v: DP %.12g oracle %.12g", n, m, p, got.ExpectedCost, want)
			return false
		}
		// The DP's own policy must achieve its claimed cost under the
		// independent per-job evaluator.
		miles := make([]int, len(got.Steps))
		ckpts := make([]bool, len(got.Steps))
		for i, st := range got.Steps {
			for j, v := range vals {
				if v == st.Milestone {
					miles[i] = j
				}
			}
			ckpts[i] = st.Checkpoint
		}
		achieved := oracleCost(vals, vals, probs, m, p, miles, ckpts)
		return math.Abs(achieved-got.ExpectedCost) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPolicyCostAgreesWithOracleEvaluator: Policy.Cost and the oracle's
// per-job walk are two implementations of the same semantics.
func TestPolicyCostAgreesWithOracleEvaluator(t *testing.T) {
	vals := []float64{1, 2.5, 4, 7}
	probs := []float64{0.4, 0.3, 0.2, 0.1}
	d, err := dist.NewDiscrete(vals, probs)
	if err != nil {
		t.Fatal(err)
	}
	m := core.CostModel{Alpha: 1, Beta: 0.6, Gamma: 0.3}
	p := Params{C: 0.2, R: 0.15}
	pol, err := Solve(d, m, p)
	if err != nil {
		t.Fatal(err)
	}
	miles := make([]int, len(pol.Steps))
	ckpts := make([]bool, len(pol.Steps))
	for i, st := range pol.Steps {
		for j, v := range vals {
			if v == st.Milestone {
				miles[i] = j
			}
		}
		ckpts[i] = st.Checkpoint
	}
	for _, v := range vals {
		got, err := pol.Cost(m, p, v)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleCost(vals, []float64{v}, []float64{1}, m, p, miles, ckpts)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("job %g: Policy.Cost %g vs oracle %g", v, got, want)
		}
	}
}
