// Package checkpoint implements the checkpoint/restart extension that
// the paper's conclusion (§7) proposes as future work: "include
// checkpoint snapshots at the end of some, if not all, reservations",
// trading reservation time spent writing snapshots against not losing
// the work done when a reservation turns out too short.
//
// The model extends the paper's discrete formulation (Theorem 5). Work
// milestones are the support points v_1 < ... < v_n of a discrete
// execution-time law. A step of a policy reserves enough time to bring
// the job from its last checkpointed progress p to a milestone v_j —
// restoring from the checkpoint first (R time units, if p > 0) and
// optionally writing a new checkpoint at the end (C time units):
//
//	L = R·1{p>0} + (v_j - p) + C·1{checkpoint}
//
// If the job's total work t is at most v_j it finishes inside this
// reservation (using R + t - p time); otherwise the whole reservation
// is consumed, the new knowledge is t > v_j, and the progress becomes
// v_j if the step checkpointed or stays at p if it did not. Costs
// follow the paper's Eq. (1): α·L + β·used + γ per reservation.
//
// Solve computes the optimal policy — milestones AND per-step
// checkpoint decisions — by an O(n³) dynamic program over states
// (knowledge index, progress index); SolveAllCheckpoint and
// SolveNoCheckpoint are the O(n²) pure strategies (the latter is
// exactly the paper's Theorem-5 problem, which anchors the DP against
// package dp). Simulate replays a policy on sampled jobs, verifying the
// closed-form expectation.
package checkpoint

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
)

// Params are the checkpoint system parameters, in the same time unit as
// the job distribution.
type Params struct {
	// C is the time to write a checkpoint at the end of a reservation.
	C float64
	// R is the time to restore the job from its last checkpoint at the
	// start of a reservation.
	R float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.C < 0 || math.IsNaN(p.C) || math.IsInf(p.C, 0) {
		return fmt.Errorf("checkpoint: C must be nonnegative and finite, got %g", p.C)
	}
	if p.R < 0 || math.IsNaN(p.R) || math.IsInf(p.R, 0) {
		return fmt.Errorf("checkpoint: R must be nonnegative and finite, got %g", p.R)
	}
	return nil
}

// Step is one reservation of a checkpoint policy.
type Step struct {
	// Milestone is the work level v_j the reservation can reach.
	Milestone float64
	// Checkpoint reports whether a snapshot is written at the end.
	Checkpoint bool
	// Length is the requested reservation length (restore + work window
	// + checkpoint).
	Length float64
}

// Policy is a sequence of checkpointed reservations, applied in order
// until the job completes.
type Policy struct {
	Steps []Step
	// ExpectedCost is the policy's expected total cost under the law it
	// was computed for.
	ExpectedCost float64
}

// mode selects which checkpoint decisions a solver may use.
type mode int

const (
	mixed mode = iota
	always
	never
)

// Solve computes the optimal checkpoint policy (milestones and per-step
// checkpoint decisions) for a discrete law under the given cost model
// and checkpoint parameters. Complexity O(n³) in the support size.
func Solve(d *dist.Discrete, m core.CostModel, p Params) (Policy, error) {
	return solve(d, m, p, mixed)
}

// SolveAllCheckpoint restricts every step to checkpoint.
func SolveAllCheckpoint(d *dist.Discrete, m core.CostModel, p Params) (Policy, error) {
	return solve(d, m, p, always)
}

// SolveNoCheckpoint forbids checkpoints; with R = C = 0 this is exactly
// the paper's Theorem-5 problem.
func SolveNoCheckpoint(d *dist.Discrete, m core.CostModel, p Params) (Policy, error) {
	return solve(d, m, p, never)
}

func solve(d *dist.Discrete, m core.CostModel, p Params, md mode) (Policy, error) {
	if err := m.Validate(); err != nil {
		return Policy{}, err
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	if d == nil || d.Len() == 0 {
		return Policy{}, errors.New("checkpoint: empty distribution")
	}
	n := d.Len()
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}

	// Suffix sums (0-based, S[i] = Σ_{k>=i} f_k, W likewise weighted).
	S := make([]float64, n+1)
	W := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		S[i] = S[i+1] + probs[i]
		W[i] = W[i+1] + probs[i]*vals[i]
	}

	// milestone value for progress index: 0 means no progress.
	pv := func(chk int) float64 {
		if chk == 0 {
			return 0
		}
		return vals[chk-1]
	}

	// E[cov][chk]: expected remaining cost given X > v_cov (cov is a
	// 0-based count: X >= v_{cov} is index cov-1 covered... here cov is
	// the number of covered support points, so knowledge is X > vals[cov-1],
	// i.e. the conditional law starts at index cov) and checkpointed
	// progress pv(chk), chk <= cov. cov ranges 0..n-1; cov = n is
	// terminal (impossible).
	E := make([][]float64, n+1)
	choiceJ := make([][]int, n+1)
	choiceB := make([][]bool, n+1)
	for cov := 0; cov <= n; cov++ {
		E[cov] = make([]float64, cov+1)
		choiceJ[cov] = make([]int, cov+1)
		choiceB[cov] = make([]bool, cov+1)
	}

	for cov := n - 1; cov >= 0; cov-- {
		// Conditional law: X >= vals[cov] (0-based index cov..n-1).
		scov := S[cov]
		for chk := 0; chk <= cov; chk++ {
			if scov <= 0 {
				E[cov][chk] = 0
				choiceJ[cov][chk] = -1
				continue
			}
			prog := pv(chk)
			restore := 0.0
			if chk > 0 {
				restore = p.R
			}
			best := math.Inf(1)
			bestJ, bestB := -1, false
			for j := cov; j < n; j++ {
				// Target milestone vals[j]; success iff X <= vals[j].
				// β·E[used | success-part] aggregated over k in [cov, j]:
				// Σ f_k (restore + v_k - prog) = restore+(-prog) mass + ΣfkVk.
				succMass := S[cov] - S[j+1]
				succWork := W[cov] - W[j+1]
				failMass := S[j+1]
				for _, b := range checkpointChoices(md, j == n-1) {
					length := restore + (vals[j] - prog)
					if b {
						length += p.C
					}
					cost := m.Alpha*length + m.Gamma +
						(m.Beta*(succMass*(restore-prog)+succWork)+
							failMass*m.Beta*length)/scov
					if failMass > 0 {
						chkNext := chk
						if b {
							chkNext = j + 1
						}
						cost += failMass / scov * E[j+1][chkNext]
					}
					if cost < best {
						best, bestJ, bestB = cost, j, b
					}
				}
			}
			E[cov][chk] = best
			choiceJ[cov][chk] = bestJ
			choiceB[cov][chk] = bestB
		}
	}

	// Backtrack from (cov=0, chk=0).
	var steps []Step
	cov, chk := 0, 0
	for cov < n {
		j := choiceJ[cov][chk]
		if j < 0 {
			break
		}
		b := choiceB[cov][chk]
		prog := pv(chk)
		restore := 0.0
		if chk > 0 {
			restore = p.R
		}
		length := restore + (vals[j] - prog)
		if b {
			length += p.C
		}
		steps = append(steps, Step{Milestone: vals[j], Checkpoint: b, Length: length})
		if b {
			chk = j + 1
		}
		cov = j + 1
	}
	return Policy{Steps: steps, ExpectedCost: E[0][0]}, nil
}

// checkpointChoices returns the admissible checkpoint bits for a step.
// Checkpointing the final milestone is never useful (the job always
// finishes inside it), so it is pruned.
func checkpointChoices(md mode, final bool) []bool {
	switch {
	case final:
		return []bool{false}
	case md == always:
		return []bool{true}
	case md == never:
		return []bool{false}
	default:
		return []bool{false, true}
	}
}

// Cost evaluates the exact cost of running a job of total work t under
// the policy (the checkpoint analogue of Eq. 2).
func (pol Policy) Cost(m core.CostModel, p Params, t float64) (float64, error) {
	progress := 0.0
	haveCkpt := false
	var cost float64
	for _, st := range pol.Steps {
		restore := 0.0
		if haveCkpt {
			restore = p.R
		}
		if t <= st.Milestone {
			used := restore + (t - progress)
			return cost + m.Alpha*st.Length + m.Beta*used + m.Gamma, nil
		}
		cost += m.Alpha*st.Length + m.Beta*st.Length + m.Gamma
		if st.Checkpoint {
			progress = st.Milestone
			haveCkpt = true
		}
	}
	return math.Inf(1), core.ErrUncovered
}

// Simulate estimates the policy's expected cost over n jobs sampled
// from d; it converges to Policy.ExpectedCost when d is the law the
// policy was solved for.
func (pol Policy) Simulate(m core.CostModel, p Params, d dist.Distribution, n int, seed uint64) (float64, error) {
	if n <= 0 {
		return math.NaN(), errors.New("checkpoint: need at least one sample")
	}
	r := rng.New(seed)
	var sum float64
	for i := 0; i < n; i++ {
		c, err := pol.Cost(m, p, dist.Sample(d, r))
		if err != nil {
			return math.NaN(), err
		}
		sum += c
	}
	return sum / float64(n), nil
}

// TotalReserved returns the total reserved time if every step is paid
// (the worst case), a capacity-planning helper.
func (pol Policy) TotalReserved() float64 {
	var s float64
	for _, st := range pol.Steps {
		s += st.Length
	}
	return s
}

// PolicyStats are the closed-form operating statistics of a checkpoint
// policy over a discrete law.
type PolicyStats struct {
	// ExpectedCost re-derives the expectation via the per-job cost (it
	// must match the solver's claimed optimum).
	ExpectedCost float64
	// ExpectedAttempts is the mean number of reservations paid.
	ExpectedAttempts float64
	// ExpectedReserved is the mean total reserved time.
	ExpectedReserved float64
	// SnapshotProb is the probability at least one snapshot is actually
	// written — a checkpointing step writes one only when it runs to
	// its end, i.e. when the job outlives its milestone.
	SnapshotProb float64
}

// Stats evaluates the policy's exact operating statistics over a
// discrete law.
func (pol Policy) Stats(m core.CostModel, p Params, d *dist.Discrete) (PolicyStats, error) {
	if err := m.Validate(); err != nil {
		return PolicyStats{}, err
	}
	if err := p.Validate(); err != nil {
		return PolicyStats{}, err
	}
	if d == nil || d.Len() == 0 {
		return PolicyStats{}, errors.New("checkpoint: empty distribution")
	}
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	survivalPast := func(milestone float64) float64 {
		var f float64
		for i, v := range vals {
			if v > milestone {
				f += raw[i] / total
			}
		}
		return f
	}

	var st PolicyStats
	reachProb := 1.0 // P(the job is still unfinished when this step starts)
	for _, step := range pol.Steps {
		st.ExpectedAttempts += reachProb
		st.ExpectedReserved += reachProb * step.Length
		failProb := survivalPast(step.Milestone)
		if step.Checkpoint && st.SnapshotProb == 0 {
			st.SnapshotProb = failProb
		}
		reachProb = failProb
	}
	if reachProb > 1e-12 {
		return PolicyStats{}, core.ErrUncovered
	}
	for i, v := range vals {
		c, err := pol.Cost(m, p, v)
		if err != nil {
			return PolicyStats{}, err
		}
		st.ExpectedCost += raw[i] / total * c
	}
	return st, nil
}
