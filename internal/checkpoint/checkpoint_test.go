package checkpoint

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/rng"
)

func disc(t *testing.T, vals, probs []float64) *dist.Discrete {
	t.Helper()
	d, err := dist.NewDiscrete(vals, probs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestNoCheckpointMatchesTheorem5: with checkpoints forbidden the DP
// must coincide with the paper's Theorem-5 dynamic program.
func TestNoCheckpointMatchesTheorem5(t *testing.T) {
	d := disc(t, []float64{1, 2, 4, 8, 16}, []float64{0.4, 0.3, 0.15, 0.1, 0.05})
	for _, m := range []core.CostModel{core.ReservationOnly, {Alpha: 1, Beta: 0.5, Gamma: 1}} {
		pol, err := SolveNoCheckpoint(d, m, Params{C: 3, R: 2})
		if err != nil {
			t.Fatal(err)
		}
		want, err := dp.Solve(d, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pol.ExpectedCost-want.ExpectedCost) > 1e-9 {
			t.Errorf("%v: no-checkpoint cost %g, Theorem-5 cost %g", m, pol.ExpectedCost, want.ExpectedCost)
		}
		if len(pol.Steps) != len(want.Sequence) {
			t.Fatalf("step count %d vs %d", len(pol.Steps), len(want.Sequence))
		}
		for i, st := range pol.Steps {
			if st.Checkpoint {
				t.Errorf("step %d checkpoints in never mode", i)
			}
			if math.Abs(st.Milestone-want.Sequence[i]) > 1e-12 {
				t.Errorf("step %d milestone %g vs %g", i, st.Milestone, want.Sequence[i])
			}
		}
	}
}

// TestFreeCheckpointsAlwaysHelp: with C = R = 0, checkpointing is free
// and the mixed optimum must not exceed the no-checkpoint optimum; for
// multi-step plans it is strictly better (failed work is never redone).
func TestFreeCheckpointsAlwaysHelp(t *testing.T) {
	d := disc(t, []float64{1, 2, 4, 8}, []float64{0.4, 0.3, 0.2, 0.1})
	m := core.ReservationOnly
	free := Params{}
	mixedPol, err := Solve(d, m, free)
	if err != nil {
		t.Fatal(err)
	}
	noPol, err := SolveNoCheckpoint(d, m, free)
	if err != nil {
		t.Fatal(err)
	}
	if mixedPol.ExpectedCost > noPol.ExpectedCost+1e-12 {
		t.Errorf("free checkpoints hurt: %g > %g", mixedPol.ExpectedCost, noPol.ExpectedCost)
	}
	if len(noPol.Steps) > 1 && mixedPol.ExpectedCost >= noPol.ExpectedCost {
		t.Errorf("free checkpoints not strictly better: %g vs %g", mixedPol.ExpectedCost, noPol.ExpectedCost)
	}
}

// TestExpensiveCheckpointsDegrade: as C grows the mixed optimum rises
// monotonically toward the no-checkpoint optimum and never exceeds it.
func TestExpensiveCheckpointsDegrade(t *testing.T) {
	d := disc(t, []float64{1, 3, 6, 10, 15}, []float64{0.35, 0.25, 0.2, 0.12, 0.08})
	m := core.CostModel{Alpha: 1, Beta: 0.3, Gamma: 0.5}
	noPol, err := SolveNoCheckpoint(d, m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, c := range []float64{0, 0.5, 2, 10, 1000} {
		pol, err := Solve(d, m, Params{C: c, R: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if pol.ExpectedCost < prev-1e-9 {
			t.Errorf("cost decreased with larger C: %g after %g", pol.ExpectedCost, prev)
		}
		if pol.ExpectedCost > noPol.ExpectedCost+1e-9 {
			t.Errorf("C=%g: mixed %g exceeds no-checkpoint %g", c, pol.ExpectedCost, noPol.ExpectedCost)
		}
		prev = pol.ExpectedCost
	}
	// At absurd C the mixed policy stops checkpointing entirely.
	pol, _ := Solve(d, m, Params{C: 1000, R: 0.5})
	for _, st := range pol.Steps {
		if st.Checkpoint {
			t.Errorf("policy checkpoints at C=1000: %+v", pol.Steps)
		}
	}
}

// TestAllCheckpointBracketsMixed: the mixed optimum is at most both
// pure strategies.
func TestAllCheckpointBracketsMixed(t *testing.T) {
	d := disc(t, []float64{2, 4, 7, 11, 16, 22}, []float64{0.3, 0.25, 0.18, 0.12, 0.09, 0.06})
	m := core.CostModel{Alpha: 1, Beta: 1, Gamma: 0.2}
	p := Params{C: 0.4, R: 0.3}
	mix, err := Solve(d, m, p)
	if err != nil {
		t.Fatal(err)
	}
	all, err := SolveAllCheckpoint(d, m, p)
	if err != nil {
		t.Fatal(err)
	}
	no, err := SolveNoCheckpoint(d, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if mix.ExpectedCost > all.ExpectedCost+1e-9 || mix.ExpectedCost > no.ExpectedCost+1e-9 {
		t.Errorf("mixed %g not <= all %g and no %g", mix.ExpectedCost, all.ExpectedCost, no.ExpectedCost)
	}
	for i, st := range all.Steps {
		if i < len(all.Steps)-1 && !st.Checkpoint {
			t.Errorf("all-checkpoint step %d does not checkpoint", i)
		}
	}
}

// TestPolicyCostHandComputed verifies Policy.Cost against a hand
// computation.
func TestPolicyCostHandComputed(t *testing.T) {
	m := core.CostModel{Alpha: 1, Beta: 1, Gamma: 0}
	p := Params{C: 1, R: 0.5}
	pol := Policy{Steps: []Step{
		{Milestone: 4, Checkpoint: true, Length: 5},     // 4 work + 1 ckpt
		{Milestone: 10, Checkpoint: false, Length: 6.5}, // 0.5 restore + 6 work
	}}
	// Job of work 3: finishes in step 1. used = 3, L = 5.
	c, err := pol.Cost(m, p, 3)
	if err != nil || math.Abs(c-(5+3)) > 1e-12 {
		t.Errorf("cost(3) = %g, %v; want 8", c, err)
	}
	// Job of work 9: fails step 1 (pay 5+5), finishes step 2:
	// used = 0.5 + (9-4) = 5.5, L = 6.5 → 10 + 12 = 22.
	c, err = pol.Cost(m, p, 9)
	if err != nil || math.Abs(c-22) > 1e-12 {
		t.Errorf("cost(9) = %g, %v; want 22", c, err)
	}
	// Beyond coverage: infinite.
	if c, err := pol.Cost(m, p, 11); err == nil || !math.IsInf(c, 1) {
		t.Errorf("cost(11) = %g, %v", c, err)
	}
}

// TestSimulateMatchesExpectedCost: Monte-Carlo replay of the DP policy
// converges to its claimed expectation.
func TestSimulateMatchesExpectedCost(t *testing.T) {
	base := dist.MustLogNormal(1, 0.6)
	dd, err := discretize.Discretize(base, 60, 1e-6, discretize.EqualProbability)
	if err != nil {
		t.Fatal(err)
	}
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.2}
	p := Params{C: 0.3, R: 0.2}
	pol, err := Solve(dd, m, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pol.Simulate(m, p, dd, 200000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-pol.ExpectedCost) > 0.02*pol.ExpectedCost {
		t.Errorf("simulated %g vs DP %g", got, pol.ExpectedCost)
	}
}

// TestCheckpointingBeatsTheorem5WhenRestartsAreCostly: the headline of
// the extension — for a long-tailed law with cheap checkpoints, the
// optimal checkpoint policy beats the best reservation-only sequence.
func TestCheckpointingBeatsTheorem5WhenRestartsAreCostly(t *testing.T) {
	base := dist.MustWeibull(1, 0.5) // heavy tail: failed work is expensive
	dd, err := discretize.Discretize(base, 80, 1e-6, discretize.EqualProbability)
	if err != nil {
		t.Fatal(err)
	}
	m := core.ReservationOnly
	p := Params{C: 0.05, R: 0.05}
	mix, err := Solve(dd, m, p)
	if err != nil {
		t.Fatal(err)
	}
	no, err := dp.Solve(dd, m)
	if err != nil {
		t.Fatal(err)
	}
	if !(mix.ExpectedCost < 0.95*no.ExpectedCost) {
		t.Errorf("checkpointing gains too small: %g vs %g", mix.ExpectedCost, no.ExpectedCost)
	}
	// And at least one step actually checkpoints.
	any := false
	for _, st := range mix.Steps {
		any = any || st.Checkpoint
	}
	if !any {
		t.Error("optimal policy never checkpoints despite cheap snapshots")
	}
}

func TestValidation(t *testing.T) {
	d := disc(t, []float64{1}, []float64{1})
	if _, err := Solve(nil, core.ReservationOnly, Params{}); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := Solve(d, core.CostModel{}, Params{}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Solve(d, core.ReservationOnly, Params{C: -1}); err == nil {
		t.Error("negative C accepted")
	}
	if _, err := Solve(d, core.ReservationOnly, Params{R: math.Inf(1)}); err == nil {
		t.Error("infinite R accepted")
	}
	pol := Policy{Steps: []Step{{Milestone: 1, Length: 1}}}
	if _, err := pol.Simulate(core.ReservationOnly, Params{}, dist.MustUniform(0.1, 0.9), 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestSinglePointPolicy(t *testing.T) {
	d := disc(t, []float64{5}, []float64{1})
	m := core.CostModel{Alpha: 2, Beta: 1, Gamma: 3}
	pol, err := Solve(d, m, Params{C: 1, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Steps) != 1 || pol.Steps[0].Checkpoint {
		t.Fatalf("steps = %+v", pol.Steps)
	}
	// Single reservation of length 5: 2·5 + 1·5 + 3 = 18.
	if math.Abs(pol.ExpectedCost-18) > 1e-12 {
		t.Errorf("cost = %g, want 18", pol.ExpectedCost)
	}
	if pol.TotalReserved() != 5 {
		t.Errorf("total reserved = %g", pol.TotalReserved())
	}
}

func TestPolicyStats(t *testing.T) {
	d := disc(t, []float64{1, 2.5, 4, 7}, []float64{0.4, 0.3, 0.2, 0.1})
	m := core.CostModel{Alpha: 1, Beta: 0.6, Gamma: 0.3}
	p := Params{C: 0.2, R: 0.15}
	pol, err := Solve(d, m, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pol.Stats(m, p, d)
	if err != nil {
		t.Fatal(err)
	}
	// The re-derived expectation matches the DP's optimum.
	if math.Abs(st.ExpectedCost-pol.ExpectedCost) > 1e-9 {
		t.Errorf("stats cost %g vs DP %g", st.ExpectedCost, pol.ExpectedCost)
	}
	if st.ExpectedAttempts < 1 || st.ExpectedReserved <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.SnapshotProb < 0 || st.SnapshotProb > 1 {
		t.Errorf("snapshot prob %g", st.SnapshotProb)
	}
	// Monte-Carlo cross-check of the attempt count.
	// E[attempts] equals the sum of reach probabilities; verify against
	// the replay at large n.
	var attempts float64
	const n = 200000
	r := rng.New(9)
	for i := 0; i < n; i++ {
		v := dist.Sample(d, r)
		k := 0
		progress, have := 0.0, false
		_ = progress
		_ = have
		for _, stp := range pol.Steps {
			k++
			if v <= stp.Milestone {
				break
			}
		}
		attempts += float64(k)
	}
	if got := attempts / n; math.Abs(got-st.ExpectedAttempts) > 0.01*st.ExpectedAttempts {
		t.Errorf("MC attempts %g vs stats %g", got, st.ExpectedAttempts)
	}
	// Uncovered policy is rejected.
	bad := Policy{Steps: []Step{{Milestone: 2.5, Length: 2.5}}}
	if _, err := bad.Stats(m, p, d); err == nil {
		t.Error("uncovered policy accepted")
	}
}
