package dist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustDiscrete(t *testing.T, vals, probs []float64) *Discrete {
	t.Helper()
	d, err := NewDiscrete(vals, probs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiscreteBasics(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 4}, []float64{0.5, 0.25, 0.25})
	if got := d.Mean(); got != 1*0.5+2*0.25+4*0.25 {
		t.Errorf("mean = %g", got)
	}
	wantVar := (1*1*0.5 + 4*0.25 + 16*0.25) - d.Mean()*d.Mean()
	if got := d.Variance(); math.Abs(got-wantVar) > 1e-12 {
		t.Errorf("variance = %g, want %g", got, wantVar)
	}
	if lo, hi := d.Support(); lo != 1 || hi != 4 {
		t.Errorf("support = [%g, %g]", lo, hi)
	}
	if d.Len() != 3 || d.Total() != 1 {
		t.Errorf("len=%d total=%g", d.Len(), d.Total())
	}
}

func TestDiscreteCDFSurvival(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 4}, []float64{0.5, 0.25, 0.25})
	cases := []struct{ x, cdf, surv float64 }{
		{0.5, 0, 1},
		{1, 0.5, 1}, // CDF includes x=1; Survival is P(X >= 1) = 1
		{1.5, 0.5, 0.5},
		{2, 0.75, 0.5}, // P(X >= 2) = 0.5
		{3, 0.75, 0.25},
		{4, 1, 0.25}, // P(X >= 4) = 0.25
		{5, 1, 0},
	}
	for _, c := range cases {
		if got := d.CDF(c.x); math.Abs(got-c.cdf) > 1e-12 {
			t.Errorf("CDF(%g) = %g, want %g", c.x, got, c.cdf)
		}
		if got := d.Survival(c.x); math.Abs(got-c.surv) > 1e-12 {
			t.Errorf("Survival(%g) = %g, want %g", c.x, got, c.surv)
		}
	}
}

func TestDiscreteQuantile(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 4}, []float64{0.5, 0.25, 0.25})
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.3, 1}, {0.5, 1}, {0.6, 2}, {0.75, 2}, {0.8, 4}, {1, 4},
	}
	for _, c := range cases {
		if got := d.Quantile(c.p); got != c.want {
			t.Errorf("Q(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestDiscretePDFPointMass(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2}, []float64{0.3, 0.7})
	if got := d.PDF(2); got != 0.7 {
		t.Errorf("PDF(2) = %g, want 0.7", got)
	}
	if got := d.PDF(1.5); got != 0 {
		t.Errorf("PDF(1.5) = %g, want 0", got)
	}
}

func TestDiscreteCondMean(t *testing.T) {
	d := mustDiscrete(t, []float64{1, 2, 4}, []float64{0.5, 0.25, 0.25})
	// E[X | X > 1] = (2·0.25 + 4·0.25)/0.5 = 3.
	if got := d.CondMean(1); math.Abs(got-3) > 1e-12 {
		t.Errorf("CondMean(1) = %g, want 3", got)
	}
	if got := d.CondMean(4); !math.IsNaN(got) {
		t.Errorf("CondMean(4) = %g, want NaN", got)
	}
}

func TestDiscreteSubUnitMass(t *testing.T) {
	// Truncated discretization: total mass 0.9.
	d := mustDiscrete(t, []float64{1, 3}, []float64{0.45, 0.45})
	if got := d.Total(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("total = %g", got)
	}
	// Renormalized mean: (1+3)/2 = 2.
	if got := d.Mean(); math.Abs(got-2) > 1e-12 {
		t.Errorf("renormalized mean = %g, want 2", got)
	}
	if got := d.Survival(0); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Survival(0) = %g, want 0.9", got)
	}
	// Quantile above total mass maps to the largest value.
	if got := d.Quantile(0.99); got != 3 {
		t.Errorf("Q(0.99) = %g, want 3", got)
	}
}

func TestDiscreteValidation(t *testing.T) {
	cases := []struct {
		vals, probs []float64
	}{
		{nil, nil},
		{[]float64{1}, []float64{0.5, 0.5}},
		{[]float64{2, 1}, []float64{0.5, 0.5}},          // not increasing
		{[]float64{1, 1}, []float64{0.5, 0.5}},          // duplicate
		{[]float64{-1, 1}, []float64{0.5, 0.5}},         // negative value
		{[]float64{1, 2}, []float64{0.5, -0.1}},         // negative prob
		{[]float64{1, 2}, []float64{0.9, 0.9}},          // mass > 1
		{[]float64{1, 2}, []float64{0, 0}},              // no mass
		{[]float64{math.NaN(), 2}, []float64{0.5, 0.5}}, // NaN value
	}
	for i, c := range cases {
		if _, err := NewDiscrete(c.vals, c.probs); err == nil {
			t.Errorf("case %d: invalid discrete accepted", i)
		}
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	d, err := NewEmpirical([]float64{3, 1, 2, 1, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}
	wantProbs := []float64{2.0 / 6, 1.0 / 6, 3.0 / 6}
	for i, p := range d.Probs() {
		if math.Abs(p-wantProbs[i]) > 1e-12 {
			t.Errorf("prob[%d] = %g, want %g", i, p, wantProbs[i])
		}
	}
	if got := d.Mean(); math.Abs(got-(3+1+2+1+3+3)/6.0) > 1e-12 {
		t.Errorf("empirical mean = %g", got)
	}
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty empirical accepted")
	}
}

func TestEmpiricalOfSamplesApproximatesSource(t *testing.T) {
	src := MustExponential(1)
	r := rng.New(8)
	d, err := NewEmpirical(SampleN(src, r, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-1) > 0.05 {
		t.Errorf("empirical mean = %g, want ≈1", d.Mean())
	}
	if ks := KSStatistic(d.Values(), src); ks > 0.03 {
		t.Errorf("KS statistic vs source = %g, want small", ks)
	}
}

func TestDiscreteQuantileCDFGalois(t *testing.T) {
	// Galois property: Q(p) <= x  <=>  p <= F(x), over random discrete laws.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		r := rng.New(seed)
		vals := make([]float64, n)
		probs := make([]float64, n)
		cur := 0.0
		var tot float64
		for i := range vals {
			cur += 0.1 + r.Float64()
			vals[i] = cur
			probs[i] = 0.05 + r.Float64()
			tot += probs[i]
		}
		for i := range probs {
			probs[i] /= tot
		}
		d, err := NewDiscrete(vals, probs)
		if err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			p := r.Float64()
			q := d.Quantile(p)
			if d.CDF(q) < p-1e-9 {
				return false
			}
			// Any value strictly below q has CDF < p.
			if q > vals[0] && d.CDF(q-1e-9) >= p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitLogNormalRecoversParameters(t *testing.T) {
	want := MustLogNormal(7.1128, 0.2039) // the paper's VBMQA fit
	r := rng.New(123)
	samples := SampleN(want, r, 50000)
	got, err := FitLogNormal(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu()-want.Mu()) > 0.01 {
		t.Errorf("fitted μ = %g, want %g", got.Mu(), want.Mu())
	}
	if math.Abs(got.Sigma()-want.Sigma()) > 0.01 {
		t.Errorf("fitted σ = %g, want %g", got.Sigma(), want.Sigma())
	}
}

func TestFitLogNormalRejects(t *testing.T) {
	if _, err := FitLogNormal([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitLogNormal([]float64{1, -2}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := FitLogNormal([]float64{2, 2, 2}); err == nil {
		t.Error("degenerate samples accepted")
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	// Round trip: build from target moments, read back Mean/StdDev.
	d, err := LogNormalFromMoments(1253.37, 258.261) // paper §5.3 values
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-1253.37) > 1e-6 {
		t.Errorf("mean = %g, want 1253.37", d.Mean())
	}
	if math.Abs(StdDev(d)-258.261) > 1e-6 {
		t.Errorf("sd = %g, want 258.261", StdDev(d))
	}
	if _, err := LogNormalFromMoments(-1, 1); err == nil {
		t.Error("negative mean accepted")
	}
}

func TestSampleMoments(t *testing.T) {
	mean, sd := SampleMoments([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %g, want 5", mean)
	}
	if math.Abs(sd-2) > 1e-12 {
		t.Errorf("sd = %g, want 2", sd)
	}
	if m, s := SampleMoments(nil); !math.IsNaN(m) || !math.IsNaN(s) {
		t.Errorf("empty moments = %g, %g, want NaN", m, s)
	}
}

func TestKSStatisticPerfectFit(t *testing.T) {
	// KS of a distribution against its own large quantile grid is tiny.
	d := MustUniform(0, 1)
	n := 10000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = (float64(i) + 0.5) / float64(n)
	}
	if ks := KSStatistic(samples, d); ks > 0.001 {
		t.Errorf("KS on quantile grid = %g, want ≈0", ks)
	}
	// And a deliberately wrong law scores badly.
	if ks := KSStatistic(samples, MustUniform(0, 2)); ks < 0.4 {
		t.Errorf("KS against wrong law = %g, want large", ks)
	}
}
