package dist

import (
	"fmt"
	"math"
)

// Scaled is the distribution of c·X for a base law X and a positive
// constant c. It is used for unit conversions (seconds → hours) and by
// the variable-resources extension, where the execution-time law on p
// processors is the work law scaled by the inverse speedup.
type Scaled struct {
	base   Distribution
	factor float64
}

// NewScaled returns the law of factor·X, for factor > 0.
func NewScaled(base Distribution, factor float64) (Scaled, error) {
	if base == nil {
		return Scaled{}, fmt.Errorf("dist: Scaled needs a base distribution")
	}
	if !(factor > 0) || math.IsInf(factor, 0) {
		return Scaled{}, fmt.Errorf("dist: scale factor must be positive and finite, got %g", factor)
	}
	// Collapse nested scalings so deep chains stay O(1).
	if s, ok := base.(Scaled); ok {
		return Scaled{base: s.base, factor: s.factor * factor}, nil
	}
	return Scaled{base: base, factor: factor}, nil
}

// MustScaled is NewScaled that panics on invalid parameters.
func MustScaled(base Distribution, factor float64) Scaled {
	s, err := NewScaled(base, factor)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements Distribution.
func (s Scaled) Name() string {
	return fmt.Sprintf("%g·%s", s.factor, s.base.Name())
}

// PDF implements Distribution: f_{cX}(t) = f_X(t/c)/c.
func (s Scaled) PDF(t float64) float64 {
	return s.base.PDF(t/s.factor) / s.factor
}

// CDF implements Distribution.
func (s Scaled) CDF(t float64) float64 {
	return s.base.CDF(t / s.factor)
}

// Survival implements Distribution.
func (s Scaled) Survival(t float64) float64 {
	return s.base.Survival(t / s.factor)
}

// Quantile implements Distribution.
func (s Scaled) Quantile(p float64) float64 {
	return s.factor * s.base.Quantile(p)
}

// Mean implements Distribution.
func (s Scaled) Mean() float64 { return s.factor * s.base.Mean() }

// Variance implements Distribution.
func (s Scaled) Variance() float64 { return s.factor * s.factor * s.base.Variance() }

// Support implements Distribution.
func (s Scaled) Support() (float64, float64) {
	lo, hi := s.base.Support()
	return s.factor * lo, s.factor * hi
}

// CondMean implements CondMeaner by delegating to the base law's closed
// form when it has one.
func (s Scaled) CondMean(tau float64) float64 {
	if cm, ok := s.base.(CondMeaner); ok {
		return s.factor * cm.CondMean(tau/s.factor)
	}
	return math.NaN() // falls back to quadrature through dist.CondMean
}
