package dist_test

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/rng"
)

// ExampleFitLogNormal runs the paper's Fig.-1 fitting pipeline: sample
// a trace from the published VBMQA law and recover its parameters.
func ExampleFitLogNormal() {
	truth := dist.MustLogNormal(7.1128, 0.2039)
	samples := dist.SampleN(truth, rng.New(1), 50000)
	fit, _ := dist.FitLogNormal(samples)
	fmt.Printf("μ ≈ %.2f, σ ≈ %.2f\n", fit.Mu(), fit.Sigma())
	// Output:
	// μ ≈ 7.11, σ ≈ 0.20
}

// ExampleBestFit selects a family automatically by KS distance.
func ExampleBestFit() {
	truth := dist.MustGamma(2, 2)
	samples := dist.SampleN(truth, rng.New(2), 30000)
	fits, _ := dist.BestFit(samples)
	fmt.Println(fits[0].Family)
	// Output:
	// gamma
}

// ExampleCondMean evaluates the Appendix-B conditional expectation that
// drives the MEAN-BY-MEAN heuristic.
func ExampleCondMean() {
	d := dist.MustExponential(0.5) // mean 2; memoryless
	fmt.Printf("%.0f\n", dist.CondMean(d, 3))
	// Output:
	// 5
}

// ExampleNewMixture builds a bimodal job population.
func ExampleNewMixture() {
	small := dist.MustLogNormal(0, 0.3)
	large := dist.MustLogNormal(2, 0.3)
	mix, _ := dist.NewMixture([]dist.Distribution{small, large}, []float64{0.6, 0.4})
	fmt.Printf("mean %.2f, median %.2f\n", mix.Mean(), dist.Median(mix))
	// Output:
	// mean 3.72, median 1.34
}
