package dist

import (
	"fmt"
	"math"

	"repro/internal/optimize"
)

// FitExponential fits an Exponential law by maximum likelihood:
// λ̂ = 1/mean.
func FitExponential(samples []float64) (Exponential, error) {
	mean, _, err := positiveMoments(samples)
	if err != nil {
		return Exponential{}, fmt.Errorf("dist: FitExponential: %w", err)
	}
	return NewExponential(1 / mean)
}

// FitGamma fits a Gamma law by the method of moments:
// α̂ = mean²/var, β̂ = mean/var.
func FitGamma(samples []float64) (Gamma, error) {
	mean, sd, err := positiveMoments(samples)
	if err != nil {
		return Gamma{}, fmt.Errorf("dist: FitGamma: %w", err)
	}
	if !(sd > 0) {
		return Gamma{}, fmt.Errorf("dist: FitGamma: degenerate samples (zero variance)")
	}
	v := sd * sd
	return NewGamma(mean*mean/v, mean/v)
}

// FitWeibull fits a Weibull law by the method of moments: the shape κ̂
// solves Γ(1+2/κ)/Γ(1+1/κ)² = 1 + cv² (cv the coefficient of
// variation), found with Brent's method; then λ̂ = mean/Γ(1+1/κ̂).
func FitWeibull(samples []float64) (Weibull, error) {
	mean, sd, err := positiveMoments(samples)
	if err != nil {
		return Weibull{}, fmt.Errorf("dist: FitWeibull: %w", err)
	}
	if !(sd > 0) {
		return Weibull{}, fmt.Errorf("dist: FitWeibull: degenerate samples (zero variance)")
	}
	cv2 := (sd / mean) * (sd / mean)
	// g(κ) = Γ(1+2/κ)/Γ(1+1/κ)² − (1+cv²): strictly decreasing in κ,
	// +∞ at 0⁺ and → 0⁻ as κ → ∞ (the ratio tends to 1 < 1+cv²).
	g := func(kappa float64) float64 {
		l2, _ := math.Lgamma(1 + 2/kappa)
		l1, _ := math.Lgamma(1 + 1/kappa)
		return math.Exp(l2-2*l1) - (1 + cv2)
	}
	// Bracket: expand upward from a small shape until g < 0.
	lo, hi := 0.05, 1.0
	for g(hi) > 0 && hi < 1e6 {
		lo = hi
		hi *= 2
	}
	if g(hi) > 0 {
		return Weibull{}, fmt.Errorf("dist: FitWeibull: cannot bracket shape for cv² = %g", cv2)
	}
	if g(lo) < 0 {
		// Extremely heavy tail: shrink the lower bracket.
		for g(lo) < 0 && lo > 1e-6 {
			lo /= 2
		}
	}
	kappa, err := optimize.Brent(g, lo, hi, 1e-12)
	if err != nil {
		return Weibull{}, fmt.Errorf("dist: FitWeibull: %w", err)
	}
	scale := mean / math.Gamma(1+1/kappa)
	return NewWeibull(scale, kappa)
}

// positiveMoments validates a positive sample set and returns its mean
// and (population) standard deviation.
func positiveMoments(samples []float64) (mean, sd float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("need at least 2 samples, got %d", len(samples))
	}
	for i, s := range samples {
		if !(s > 0) || math.IsInf(s, 0) {
			return 0, 0, fmt.Errorf("sample %d must be positive and finite, got %g", i, s)
		}
	}
	mean, sd = SampleMoments(samples)
	return mean, sd, nil
}
