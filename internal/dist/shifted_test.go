package dist

import (
	"math"
	"testing"
)

func TestShiftedBasics(t *testing.T) {
	s := MustShifted(MustExponential(2), 3)
	if s.Mean() != 3+0.5 {
		t.Errorf("mean = %g", s.Mean())
	}
	if s.Variance() != 0.25 {
		t.Errorf("variance = %g", s.Variance())
	}
	lo, hi := s.Support()
	if lo != 3 || !math.IsInf(hi, 1) {
		t.Errorf("support [%g, %g]", lo, hi)
	}
	// CDF/Survival/Quantile shift consistently.
	if got := s.CDF(3); got != 0 {
		t.Errorf("CDF(3) = %g", got)
	}
	if got, want := s.CDF(4), MustExponential(2).CDF(1); math.Abs(got-want) > 1e-15 {
		t.Errorf("CDF(4) = %g, want %g", got, want)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if got := s.CDF(s.Quantile(p)); math.Abs(got-p) > 1e-12 {
			t.Errorf("round trip at %g: %g", p, got)
		}
	}
}

func TestShiftedMomentsMatchQuadrature(t *testing.T) {
	s := MustShifted(MustGamma(2, 2), 1.5)
	if got, want := s.Mean(), MeanNumeric(s); math.Abs(got-want) > 1e-5 {
		t.Errorf("mean %g vs quadrature %g", got, want)
	}
	if got, want := s.Variance(), VarianceNumeric(s); math.Abs(got-want) > 1e-4 {
		t.Errorf("variance %g vs quadrature %g", got, want)
	}
}

func TestShiftedCondMean(t *testing.T) {
	s := MustShifted(MustExponential(1), 2)
	// E[X+2 | X+2 > 5] = 2 + E[X | X > 3] = 2 + 4 = 6.
	if got := CondMean(s, 5); math.Abs(got-6) > 1e-12 {
		t.Errorf("CondMean(5) = %g, want 6", got)
	}
	// Below the support the conditional mean is the mean.
	if got := CondMean(s, 0); math.Abs(got-3) > 1e-12 {
		t.Errorf("CondMean(0) = %g, want 3", got)
	}
	// Closed form agrees with quadrature.
	if got, want := s.CondMean(5), CondMeanNumeric(s, 5); math.Abs(got-want) > 1e-5 {
		t.Errorf("closed %g vs numeric %g", got, want)
	}
}

func TestShiftedCollapsesAndValidates(t *testing.T) {
	inner := MustShifted(MustUniform(1, 2), 1)
	outer := MustShifted(inner, 2)
	if outer.offset != 3 {
		t.Errorf("nesting not collapsed: %+v", outer)
	}
	if _, err := NewShifted(nil, 1); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewShifted(MustExponential(1), -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewShifted(MustExponential(1), math.Inf(1)); err == nil {
		t.Error("infinite offset accepted")
	}
}

func TestShiftedWorksWithReservationMachinery(t *testing.T) {
	// A shifted law sails through discretization-style consumers: the
	// quantile grid respects the offset.
	s := MustShifted(MustWeibull(1, 1.5), 0.5)
	for _, p := range []float64{0.01, 0.25, 0.75, 0.99} {
		q := s.Quantile(p)
		if q < 0.5 {
			t.Errorf("quantile %g below offset", q)
		}
	}
	if ks := KSStatistic([]float64{0.6, 0.9, 1.5, 2.2}, s); math.IsNaN(ks) {
		t.Error("KS NaN")
	}
}
