package dist

import (
	"fmt"
	"math"
)

// TruncatedNormal is the Normal(μ, σ²) law truncated to [a, ∞) (lower
// one-sided truncation, as in Table 1 of the paper).
type TruncatedNormal struct {
	mu, sigma, a float64
	z            float64 // normalization Z = P(N(μ,σ²) >= a)
}

// NewTruncatedNormal returns a Normal(mu, sigma²) law truncated below
// at a.
func NewTruncatedNormal(mu, sigma, a float64) (TruncatedNormal, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(a) || math.IsInf(a, 0) {
		return TruncatedNormal{}, fmt.Errorf("dist: TruncatedNormal needs finite μ, a and positive σ, got μ=%g σ=%g a=%g", mu, sigma, a)
	}
	z := 0.5 * math.Erfc((a-mu)/(sigma*math.Sqrt2))
	if z <= 0 {
		return TruncatedNormal{}, fmt.Errorf("dist: TruncatedNormal truncation point a=%g leaves no mass (μ=%g σ=%g)", a, mu, sigma)
	}
	return TruncatedNormal{mu: mu, sigma: sigma, a: a, z: z}, nil
}

// MustTruncatedNormal is NewTruncatedNormal that panics on invalid
// parameters.
func MustTruncatedNormal(mu, sigma, a float64) TruncatedNormal {
	d, err := NewTruncatedNormal(mu, sigma, a)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Distribution.
func (d TruncatedNormal) Name() string {
	return fmt.Sprintf("TruncatedNormal(μ=%g,σ=%g,a=%g)", d.mu, d.sigma, d.a)
}

// phi is the standard normal density.
func phi(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// PDF implements Distribution.
func (d TruncatedNormal) PDF(t float64) float64 {
	if t < d.a {
		return 0
	}
	return phi((t-d.mu)/d.sigma) / (d.sigma * d.z)
}

// CDF implements Distribution.
func (d TruncatedNormal) CDF(t float64) float64 {
	if t <= d.a {
		return 0
	}
	// (Φ((t-μ)/σ) - Φ((a-μ)/σ)) / Z, written with erfc for stability.
	upper := 0.5 * math.Erfc((d.a-d.mu)/(d.sigma*math.Sqrt2)) // = Z
	rem := 0.5 * math.Erfc((t-d.mu)/(d.sigma*math.Sqrt2))     // P(N >= t)
	v := (upper - rem) / d.z
	return clampP(v)
}

// Survival implements Distribution: P(N >= t)/Z for t >= a.
func (d TruncatedNormal) Survival(t float64) float64 {
	if t <= d.a {
		return 1
	}
	return clampP(0.5 * math.Erfc((t-d.mu)/(d.sigma*math.Sqrt2)) / d.z)
}

// Quantile implements Distribution (Table 5):
// Q(x) = μ + σ√2 erf^{-1}(z), z = x + (1-x)·erf((a-μ)/(σ√2)).
func (d TruncatedNormal) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 0 {
		return d.a
	}
	if p == 1 {
		return math.Inf(1)
	}
	z := p + (1-p)*math.Erf((d.a-d.mu)/(d.sigma*math.Sqrt2))
	return d.mu + d.sigma*math.Sqrt2*math.Erfinv(z)
}

// hazardAt returns the inverse Mills ratio λ(α₀) = φ(α₀)/P(N≥α₀·σ+μ)
// for the standardized truncation point of tau.
func (d TruncatedNormal) hazardAt(tau float64) float64 {
	alpha := (tau - d.mu) / d.sigma
	z := 0.5 * math.Erfc(alpha/math.Sqrt2)
	if z <= 0 {
		return math.NaN()
	}
	return phi(alpha) / z
}

// Mean implements Distribution: μ + σ λ(α₀) with α₀ = (a-μ)/σ and λ the
// inverse Mills ratio.
func (d TruncatedNormal) Mean() float64 {
	return d.mu + d.sigma*d.hazardAt(d.a)
}

// Variance implements Distribution: σ²(1 + α₀λ(α₀) - λ(α₀)²).
//
// Note: Table 5 of the paper prints the variance with its η(a) factor
// missing the √(2/π) normalization; we implement the standard truncated
// normal variance, which the test suite verifies against quadrature.
func (d TruncatedNormal) Variance() float64 {
	alpha := (d.a - d.mu) / d.sigma
	l := d.hazardAt(d.a)
	return d.sigma * d.sigma * (1 + alpha*l - l*l)
}

// Support implements Distribution.
func (d TruncatedNormal) Support() (float64, float64) { return d.a, math.Inf(1) }

// CondMean implements CondMeaner: for a truncated normal, conditioning
// on X > τ is simply truncation at τ, so
// E[X | X > τ] = μ + σ λ((τ-μ)/σ).
func (d TruncatedNormal) CondMean(tau float64) float64 {
	if tau < d.a {
		tau = d.a
	}
	l := d.hazardAt(tau)
	if math.IsNaN(l) {
		return math.NaN()
	}
	return d.mu + d.sigma*l
}
