package dist

import (
	"fmt"
	"math"
)

// FitResult is one candidate family's fit of a trace.
type FitResult struct {
	// Family is the family name ("lognormal", "gamma", ...).
	Family string
	// Dist is the fitted law.
	Dist Distribution
	// KS is the Kolmogorov–Smirnov statistic of the fit against the
	// empirical CDF (smaller is better).
	KS float64
}

// BestFit fits every parametric family the library can estimate
// (LogNormal, Gamma, Weibull, Exponential) to a positive trace and
// returns the candidates ordered best-first by KS statistic. Families
// whose fit fails (degenerate moments) are skipped; at least one
// candidate is guaranteed on success.
//
// This automates the paper's Fig.-1 workflow — the authors eyeballed
// LogNormal; a tool has to choose.
func BestFit(samples []float64) ([]FitResult, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("dist: BestFit needs at least 2 samples, got %d", len(samples))
	}
	var out []FitResult
	add := func(family string, d Distribution, err error) {
		if err != nil || d == nil {
			return
		}
		ks := KSStatistic(samples, d)
		if math.IsNaN(ks) {
			return
		}
		out = append(out, FitResult{Family: family, Dist: d, KS: ks})
	}
	if d, err := FitLogNormal(samples); err == nil {
		add("lognormal", d, nil)
	}
	if d, err := FitGamma(samples); err == nil {
		add("gamma", d, nil)
	}
	if d, err := FitWeibull(samples); err == nil {
		add("weibull", d, nil)
	}
	if d, err := FitExponential(samples); err == nil {
		add("exponential", d, nil)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dist: BestFit could not fit any family (degenerate trace?)")
	}
	// Insertion sort by KS (tiny slice).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].KS < out[j-1].KS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
