package dist

import (
	"fmt"
	"math"
)

// BoundedPareto is the BoundedPareto(L, H, α) law on [L, H]:
// f(t) = α L^α t^{-α-1} / (1 - (L/H)^α).
type BoundedPareto struct {
	l, h, alpha float64
}

// NewBoundedPareto returns a bounded Pareto distribution on [L, H] with
// tail index alpha. alpha = 1 and alpha = 2 are rejected because the
// Table-5 closed forms for the mean and variance are singular there.
func NewBoundedPareto(l, h, alpha float64) (BoundedPareto, error) {
	if !(l > 0) || !(h > l) || math.IsInf(h, 0) {
		return BoundedPareto{}, fmt.Errorf("dist: BoundedPareto needs 0 < L < H < ∞, got L=%g H=%g", l, h)
	}
	//lint:ignore floatcmp the moment closed forms are singular only at exactly alpha=1,2
	if !(alpha > 0) || math.IsInf(alpha, 0) || alpha == 1 || alpha == 2 {
		return BoundedPareto{}, fmt.Errorf("dist: BoundedPareto tail index must be positive and ≠ 1, 2, got %g", alpha)
	}
	return BoundedPareto{l: l, h: h, alpha: alpha}, nil
}

// MustBoundedPareto is NewBoundedPareto that panics on invalid
// parameters.
func MustBoundedPareto(l, h, alpha float64) BoundedPareto {
	d, err := NewBoundedPareto(l, h, alpha)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Distribution.
func (d BoundedPareto) Name() string {
	return fmt.Sprintf("BoundedPareto(L=%g,H=%g,α=%g)", d.l, d.h, d.alpha)
}

// norm returns 1 - (L/H)^α, the truncation normalizer.
func (d BoundedPareto) norm() float64 {
	return 1 - math.Pow(d.l/d.h, d.alpha)
}

// PDF implements Distribution.
func (d BoundedPareto) PDF(t float64) float64 {
	if t < d.l || t > d.h {
		return 0
	}
	return d.alpha * math.Pow(d.l, d.alpha) * math.Pow(t, -d.alpha-1) / d.norm()
}

// CDF implements Distribution.
func (d BoundedPareto) CDF(t float64) float64 {
	switch {
	case t <= d.l:
		return 0
	case t >= d.h:
		return 1
	default:
		return (1 - math.Pow(d.l/t, d.alpha)) / d.norm()
	}
}

// Survival implements Distribution.
func (d BoundedPareto) Survival(t float64) float64 {
	return clampP(1 - d.CDF(t))
}

// Quantile implements Distribution (Table 5):
// Q(x) = L / (1 - (1 - (L/H)^α) x)^{1/α}.
func (d BoundedPareto) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 1 {
		return d.h
	}
	return d.l / math.Pow(1-d.norm()*p, 1/d.alpha)
}

// Mean implements Distribution (Table 5, α ≠ 1):
// α/(α-1) · (H^α L - H L^α) / (H^α - L^α).
func (d BoundedPareto) Mean() float64 {
	ha := math.Pow(d.h, d.alpha)
	la := math.Pow(d.l, d.alpha)
	return d.alpha / (d.alpha - 1) * (ha*d.l - d.h*la) / (ha - la)
}

// Variance implements Distribution (Table 5, α ≠ 1, 2).
func (d BoundedPareto) Variance() float64 {
	ha := math.Pow(d.h, d.alpha)
	la := math.Pow(d.l, d.alpha)
	m := d.Mean()
	m2 := d.alpha / (d.alpha - 2) * (ha*d.l*d.l - d.h*d.h*la) / (ha - la)
	return m2 - m*m
}

// Support implements Distribution.
func (d BoundedPareto) Support() (float64, float64) { return d.l, d.h }

// CondMean implements CondMeaner using the Appendix-B closed form:
// E[X | X > τ] = α/(α-1) · (H^{1-α} - τ^{1-α}) / (H^{-α} - τ^{-α}).
func (d BoundedPareto) CondMean(tau float64) float64 {
	if tau < d.l {
		tau = d.l
	}
	if tau >= d.h {
		return math.NaN()
	}
	num := math.Pow(d.h, 1-d.alpha) - math.Pow(tau, 1-d.alpha)
	den := math.Pow(d.h, -d.alpha) - math.Pow(tau, -d.alpha)
	return d.alpha / (d.alpha - 1) * num / den
}
