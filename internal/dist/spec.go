package dist

import (
	"strconv"
	"strings"
)

// Speccer is implemented by distributions with a canonical textual
// specification in the grammar "name(p1,p2,...)" accepted by the
// facade's ParseDistribution. The spec round-trips: parsing it yields
// a distribution with identical parameters, and re-speccing that
// yields the identical string. The nine Table-1 laws implement it;
// derived laws (empirical, mixtures, scaled/shifted wrappers) do not —
// they have no finite parameter vector in the grammar.
type Speccer interface {
	// Spec returns the canonical "name(p1,p2,...)" form.
	Spec() string
}

// spec renders one canonical "name(p1,p2,...)" string. Parameters use
// the shortest decimal representation that parses back to the exact
// same float64, so Spec∘Parse and Parse∘Spec are both identities.
func spec(name string, params ...float64) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, p := range params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Spec implements Speccer.
func (d Exponential) Spec() string { return spec("exponential", d.lambda) }

// Spec implements Speccer.
func (d Weibull) Spec() string { return spec("weibull", d.scale, d.shape) }

// Spec implements Speccer.
func (d Gamma) Spec() string { return spec("gamma", d.shape, d.rate) }

// Spec implements Speccer.
func (d LogNormal) Spec() string { return spec("lognormal", d.mu, d.sigma) }

// Spec implements Speccer.
func (d TruncatedNormal) Spec() string { return spec("truncnormal", d.mu, d.sigma, d.a) }

// Spec implements Speccer.
func (d Pareto) Spec() string { return spec("pareto", d.scale, d.alpha) }

// Spec implements Speccer.
func (d Uniform) Spec() string { return spec("uniform", d.a, d.b) }

// Spec implements Speccer.
func (d BetaDist) Spec() string { return spec("beta", d.alpha, d.beta) }

// Spec implements Speccer.
func (d BoundedPareto) Spec() string { return spec("boundedpareto", d.l, d.h, d.alpha) }

// SpecOf returns the canonical spec of d and whether it has one.
func SpecOf(d Distribution) (string, bool) {
	if s, ok := d.(Speccer); ok {
		return s.Spec(), true
	}
	return "", false
}
