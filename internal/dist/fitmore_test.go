package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFitExponentialRecovers(t *testing.T) {
	want := MustExponential(2.5)
	samples := SampleN(want, rng.New(3), 40000)
	got, err := FitExponential(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Rate()-2.5) > 0.05 {
		t.Errorf("fitted λ = %g, want 2.5", got.Rate())
	}
	if _, err := FitExponential([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitExponential([]float64{1, -1}); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestFitGammaRecovers(t *testing.T) {
	want := MustGamma(2, 2)
	samples := SampleN(want, rng.New(4), 60000)
	got, err := FitGamma(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mean()-1) > 0.02 {
		t.Errorf("fitted mean = %g, want 1", got.Mean())
	}
	if math.Abs(got.Variance()-0.5) > 0.03 {
		t.Errorf("fitted variance = %g, want 0.5", got.Variance())
	}
	if _, err := FitGamma([]float64{2, 2, 2}); err == nil {
		t.Error("degenerate samples accepted")
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	for _, shape := range []float64{0.5, 1.0, 1.5, 3.0} {
		want := MustWeibull(2, shape)
		samples := SampleN(want, rng.New(5), 80000)
		got, err := FitWeibull(samples)
		if err != nil {
			t.Fatalf("shape %g: %v", shape, err)
		}
		// Moment matching: the fitted mean and sd match the sample's.
		m, sd := SampleMoments(samples)
		if math.Abs(got.Mean()-m) > 0.01*m {
			t.Errorf("shape %g: fitted mean %g vs sample %g", shape, got.Mean(), m)
		}
		if math.Abs(StdDev(got)-sd) > 0.02*sd {
			t.Errorf("shape %g: fitted sd %g vs sample %g", shape, StdDev(got), sd)
		}
		// And the recovered shape is close for well-behaved cases.
		if shape >= 1 {
			gotShape := weibullShape(got)
			if math.Abs(gotShape-shape) > 0.1*shape {
				t.Errorf("fitted shape %g, want %g", gotShape, shape)
			}
		}
	}
	if _, err := FitWeibull([]float64{3, 3, 3}); err == nil {
		t.Error("degenerate samples accepted")
	}
}

// weibullShape recovers the shape from the fitted law's moments (the
// fields are unexported; the moment relation is invertible).
func weibullShape(w Weibull) float64 {
	// cv² determines the shape uniquely.
	cv2 := w.Variance() / (w.Mean() * w.Mean())
	lo, hi := 0.05, 64.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		l2, _ := math.Lgamma(1 + 2/mid)
		l1, _ := math.Lgamma(1 + 1/mid)
		if math.Exp(l2-2*l1)-1 > cv2 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

func TestFitWeibullExponentialSpecialCase(t *testing.T) {
	// Exponential data (cv = 1) fits to shape ≈ 1.
	samples := SampleN(MustExponential(1), rng.New(8), 80000)
	got, err := FitWeibull(samples)
	if err != nil {
		t.Fatal(err)
	}
	if s := weibullShape(got); math.Abs(s-1) > 0.05 {
		t.Errorf("shape on exponential data = %g, want ≈1", s)
	}
}
