package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBestFitIdentifiesTrueFamily(t *testing.T) {
	cases := []struct {
		truth  Distribution
		family string
	}{
		{MustLogNormal(7.1128, 0.2039), "lognormal"},
		{MustGamma(2, 2), "gamma"},
		{MustWeibull(1, 0.5), "weibull"},
	}
	for _, c := range cases {
		samples := SampleN(c.truth, rng.New(13), 30000)
		fits, err := BestFit(samples)
		if err != nil {
			t.Fatalf("%s: %v", c.truth.Name(), err)
		}
		if len(fits) < 3 {
			t.Fatalf("%s: only %d candidates", c.truth.Name(), len(fits))
		}
		if fits[0].Family != c.family {
			t.Errorf("%s: best fit is %s (KS %.4f), want %s", c.truth.Name(), fits[0].Family, fits[0].KS, c.family)
		}
		// Sorted by KS.
		for i := 1; i < len(fits); i++ {
			if fits[i].KS < fits[i-1].KS {
				t.Errorf("%s: candidates not sorted", c.truth.Name())
			}
		}
		// The winning fit is a good fit in absolute terms.
		if fits[0].KS > 0.02 {
			t.Errorf("%s: best KS %.4f too large", c.truth.Name(), fits[0].KS)
		}
	}
}

func TestBestFitExponentialAmbiguity(t *testing.T) {
	// Exponential data is also Weibull(κ=1) and Gamma(α=1): whichever
	// family wins, its KS must be excellent.
	samples := SampleN(MustExponential(1), rng.New(21), 30000)
	fits, err := BestFit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fits[0].KS > 0.01 {
		t.Errorf("best KS %.4f on exponential data", fits[0].KS)
	}
}

func TestBestFitValidation(t *testing.T) {
	if _, err := BestFit([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	// A constant trace defeats every variance-based fit; only the
	// exponential (mean-only) family survives, with a poor KS.
	fits, err := BestFit([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatalf("constant trace: %v", err)
	}
	if len(fits) != 1 || fits[0].Family != "exponential" {
		t.Errorf("constant trace fits = %+v, want exponential only", fits)
	}
	if fits[0].KS < 0.3 {
		t.Errorf("constant trace KS %.3f suspiciously good", fits[0].KS)
	}
}

func TestKSCriticalValue(t *testing.T) {
	// ε(1000, 0.05) = sqrt(ln 40 / 2000) ≈ 0.0430.
	if got := KSCriticalValue(1000, 0.05); math.Abs(got-0.042947) > 1e-4 {
		t.Errorf("ε(1000, 0.05) = %g", got)
	}
	// Monotone: more samples → tighter bound.
	if !(KSCriticalValue(10000, 0.05) < KSCriticalValue(100, 0.05)) {
		t.Error("bound not shrinking with n")
	}
	for _, bad := range [][2]float64{{0, 0.05}, {100, 0}, {100, 1}} {
		if !math.IsNaN(KSCriticalValue(int(bad[0]), bad[1])) {
			t.Errorf("KSCriticalValue(%v) accepted", bad)
		}
	}
	// The true law passes its own test at n=5000.
	d := MustLogNormal(7.1128, 0.2039)
	samples := SampleN(d, rng.New(77), 5000)
	if ks := KSStatistic(samples, d); ks > KSCriticalValue(5000, 0.05) {
		t.Errorf("true law rejected: KS %g > ε %g", ks, KSCriticalValue(5000, 0.05))
	}
}
