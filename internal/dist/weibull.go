package dist

import (
	"fmt"
	"math"

	"repro/internal/specfun"
)

// Weibull is the Weibull(λ, κ) law on [0, ∞) with scale λ and shape κ:
// f(t) = (κ/λ)(t/λ)^{κ-1} e^{-(t/λ)^κ}.
type Weibull struct {
	scale, shape float64
}

// NewWeibull returns a Weibull distribution with the given scale and
// shape.
func NewWeibull(scale, shape float64) (Weibull, error) {
	if !(scale > 0) || !(shape > 0) || math.IsInf(scale, 0) || math.IsInf(shape, 0) {
		return Weibull{}, fmt.Errorf("dist: Weibull scale and shape must be positive and finite, got λ=%g κ=%g", scale, shape)
	}
	return Weibull{scale: scale, shape: shape}, nil
}

// MustWeibull is NewWeibull that panics on invalid parameters.
func MustWeibull(scale, shape float64) Weibull {
	d, err := NewWeibull(scale, shape)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Distribution.
func (d Weibull) Name() string {
	return fmt.Sprintf("Weibull(λ=%g,κ=%g)", d.scale, d.shape)
}

// PDF implements Distribution.
func (d Weibull) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 {
		switch {
		case d.shape < 1:
			return math.Inf(1)
		case d.shape == 1:
			return 1 / d.scale
		default:
			return 0
		}
	}
	z := t / d.scale
	return d.shape / d.scale * math.Pow(z, d.shape-1) * math.Exp(-math.Pow(z, d.shape))
}

// CDF implements Distribution.
func (d Weibull) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/d.scale, d.shape))
}

// Survival implements Distribution.
func (d Weibull) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(t/d.scale, d.shape))
}

// Quantile implements Distribution.
func (d Weibull) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 1 {
		return math.Inf(1)
	}
	return d.scale * math.Pow(-math.Log1p(-p), 1/d.shape)
}

// Mean implements Distribution: λ Γ(1 + 1/κ).
func (d Weibull) Mean() float64 {
	return d.scale * math.Gamma(1+1/d.shape)
}

// Variance implements Distribution: λ²(Γ(1+2/κ) - Γ(1+1/κ)²).
func (d Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/d.shape)
	g2 := math.Gamma(1 + 2/d.shape)
	return d.scale * d.scale * (g2 - g1*g1)
}

// Support implements Distribution.
func (d Weibull) Support() (float64, float64) { return 0, math.Inf(1) }

// CondMean implements CondMeaner using the Appendix-B closed form:
// E[X | X > τ] = λ e^{(τ/λ)^κ} Γ(1 + 1/κ, (τ/λ)^κ).
func (d Weibull) CondMean(tau float64) float64 {
	if tau <= 0 {
		return d.Mean()
	}
	x := math.Pow(tau/d.scale, d.shape)
	return d.scale * specfun.UpperIncGammaScaled(1+1/d.shape, x)
}
