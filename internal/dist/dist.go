// Package dist implements the probability distributions used by the
// reservation library: the nine laws of Table 1 of the paper
// (Exponential, Weibull, Gamma, LogNormal, TruncatedNormal, Pareto,
// Uniform, Beta, BoundedPareto), plus discrete and empirical
// distributions used by the discretization-based dynamic programming,
// and LogNormal fitting for execution traces.
//
// Every distribution exposes the closed forms of Table 5 of the paper
// (CDF, mean, variance, quantile) and, where Appendix B provides one,
// the closed-form conditional expectation E[X | X > τ] that drives the
// MEAN-BY-MEAN heuristic. A numerical fallback via quadrature is
// available for all distributions and is used in the test suites to
// cross-check every closed form.
package dist

import (
	"math"

	"repro/internal/quad"
	"repro/internal/rng"
)

// Distribution is a continuous, nonnegative probability law for job
// execution times. Supports are [a, b] with 0 <= a < b, where b may be
// +Inf.
type Distribution interface {
	// Name returns a short human-readable identifier including
	// parameter values, e.g. "Exponential(λ=1)".
	Name() string
	// PDF returns the density f(t). It is 0 outside the support.
	PDF(t float64) float64
	// CDF returns F(t) = P(X <= t).
	CDF(t float64) float64
	// Survival returns P(X >= t) = 1 - F(t), computed in a numerically
	// stable way where the law permits.
	Survival(t float64) float64
	// Quantile returns Q(p) = inf{t : F(t) >= p} for p in [0, 1].
	Quantile(p float64) float64
	// Mean returns E[X].
	Mean() float64
	// Variance returns Var[X].
	Variance() float64
	// Support returns the bounds [lo, hi] of the support; hi may be
	// math.Inf(1).
	Support() (lo, hi float64)
}

// CondMeaner is implemented by distributions that know E[X | X > τ] in
// closed form (Appendix B / Table 6 of the paper).
type CondMeaner interface {
	// CondMean returns E[X | X > tau]. Behaviour is unspecified when
	// the survival at tau is 0.
	CondMean(tau float64) float64
}

// SecondMoment returns E[X²] = Var[X] + E[X]².
func SecondMoment(d Distribution) float64 {
	m := d.Mean()
	return d.Variance() + m*m
}

// StdDev returns the standard deviation of d.
func StdDev(d Distribution) float64 {
	return math.Sqrt(d.Variance())
}

// Median returns Q(1/2).
func Median(d Distribution) float64 {
	return d.Quantile(0.5)
}

// Sample draws one execution time from d by inverse-transform sampling.
func Sample(d Distribution, r *rng.Source) float64 {
	return d.Quantile(r.Float64Open())
}

// SampleN draws n execution times from d into a new slice.
func SampleN(d Distribution, r *rng.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = Sample(d, r)
	}
	return out
}

// CondMean returns E[X | X > tau], using the distribution's closed form
// when available and numerical quadrature otherwise.
func CondMean(d Distribution, tau float64) float64 {
	lo, _ := d.Support()
	if tau < lo {
		tau = lo
	}
	if cm, ok := d.(CondMeaner); ok {
		v := cm.CondMean(tau)
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			return v
		}
	}
	return CondMeanNumeric(d, tau)
}

// CondMeanNumeric computes E[X | X > tau] = ∫_tau^hi t f(t) dt / P(X>tau)
// by quadrature. It is exported so tests can cross-check the closed
// forms against it.
func CondMeanNumeric(d Distribution, tau float64) float64 {
	lo, hi := d.Support()
	if tau < lo {
		tau = lo
	}
	sf := d.Survival(tau)
	if sf <= 0 {
		return math.NaN()
	}
	var num float64
	var err error
	if math.IsInf(hi, 1) {
		num, err = quad.IntegrateToInf(func(t float64) float64 { return t * d.PDF(t) }, tau, 1e-12)
	} else {
		num, err = quad.Integrate(func(t float64) float64 { return t * d.PDF(t) }, tau, hi, 1e-12)
	}
	if err != nil && num == 0 {
		return math.NaN()
	}
	return num / sf
}

// MeanNumeric computes E[X] by quadrature (test cross-check helper).
func MeanNumeric(d Distribution) float64 {
	lo, hi := d.Support()
	var v float64
	if math.IsInf(hi, 1) {
		v, _ = quad.Moment(d.PDF, 1, lo, math.Inf(1), 1e-12)
	} else {
		v, _ = quad.Moment(d.PDF, 1, lo, hi, 1e-12)
	}
	return v
}

// VarianceNumeric computes Var[X] by quadrature (test cross-check
// helper).
func VarianceNumeric(d Distribution) float64 {
	lo, hi := d.Support()
	var m2 float64
	if math.IsInf(hi, 1) {
		m2, _ = quad.Moment(d.PDF, 2, lo, math.Inf(1), 1e-12)
	} else {
		m2, _ = quad.Moment(d.PDF, 2, lo, hi, 1e-12)
	}
	m := MeanNumeric(d)
	return m2 - m*m
}

// clampP limits a probability argument to [0, 1]; NaN is propagated.
func clampP(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
