package dist

import (
	"fmt"
	"math"

	"repro/internal/specfun"
)

// Gamma is the Gamma(α, β) law on [0, ∞) with shape α and rate β:
// f(t) = β^α / Γ(α) · t^{α-1} e^{-βt}.
type Gamma struct {
	shape, rate float64
}

// NewGamma returns a Gamma distribution with the given shape and rate.
func NewGamma(shape, rate float64) (Gamma, error) {
	if !(shape > 0) || !(rate > 0) || math.IsInf(shape, 0) || math.IsInf(rate, 0) {
		return Gamma{}, fmt.Errorf("dist: Gamma shape and rate must be positive and finite, got α=%g β=%g", shape, rate)
	}
	return Gamma{shape: shape, rate: rate}, nil
}

// MustGamma is NewGamma that panics on invalid parameters.
func MustGamma(shape, rate float64) Gamma {
	d, err := NewGamma(shape, rate)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Distribution.
func (d Gamma) Name() string {
	return fmt.Sprintf("Gamma(α=%g,β=%g)", d.shape, d.rate)
}

// PDF implements Distribution.
func (d Gamma) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 {
		switch {
		case d.shape < 1:
			return math.Inf(1)
		case d.shape == 1:
			return d.rate
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(d.shape)
	return math.Exp(d.shape*math.Log(d.rate) + (d.shape-1)*math.Log(t) - d.rate*t - lg)
}

// CDF implements Distribution: P(α, βt).
func (d Gamma) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return specfun.GammaP(d.shape, d.rate*t)
}

// Survival implements Distribution: Q(α, βt).
func (d Gamma) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return specfun.GammaQ(d.shape, d.rate*t)
}

// Quantile implements Distribution (Table 5):
// Q(x) = Γ^{-1}(α, (1-x)Γ(α)) / β.
func (d Gamma) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 1 {
		return math.Inf(1)
	}
	return specfun.InvGammaP(d.shape, p) / d.rate
}

// Mean implements Distribution: α/β.
func (d Gamma) Mean() float64 { return d.shape / d.rate }

// Variance implements Distribution: α/β².
func (d Gamma) Variance() float64 { return d.shape / (d.rate * d.rate) }

// Support implements Distribution.
func (d Gamma) Support() (float64, float64) { return 0, math.Inf(1) }

// CondMean implements CondMeaner using the Appendix-B closed form:
// E[X | X > τ] = α/β + (βτ)^α e^{-βτ} / (Γ(α, βτ) β).
// The ratio is evaluated in log space so it stays finite deep in the
// tail where both factors underflow.
func (d Gamma) CondMean(tau float64) float64 {
	if tau <= 0 {
		return d.Mean()
	}
	x := d.rate * tau
	q := specfun.GammaQ(d.shape, x)
	if q <= 0 {
		return math.NaN()
	}
	lg, _ := math.Lgamma(d.shape)
	// (x^α e^{-x}) / Γ(α, x) = exp(α ln x - x - lgΓ(α) - ln Q(α,x)).
	ratio := math.Exp(d.shape*math.Log(x) - x - lg - math.Log(q))
	return d.shape/d.rate + ratio/d.rate
}
