package dist

import (
	"fmt"
	"math"
)

// Uniform is the Uniform(a, b) law on [a, b]: f(t) = 1/(b-a).
type Uniform struct {
	a, b float64
}

// NewUniform returns a Uniform distribution on [a, b] with 0 <= a < b.
func NewUniform(a, b float64) (Uniform, error) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return Uniform{}, fmt.Errorf("dist: Uniform bounds must be finite, got [%g, %g]", a, b)
	}
	if a < 0 || a >= b {
		return Uniform{}, fmt.Errorf("dist: Uniform needs 0 <= a < b, got [%g, %g]", a, b)
	}
	return Uniform{a: a, b: b}, nil
}

// MustUniform is NewUniform that panics on invalid parameters.
func MustUniform(a, b float64) Uniform {
	d, err := NewUniform(a, b)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Distribution.
func (d Uniform) Name() string {
	return fmt.Sprintf("Uniform(a=%g,b=%g)", d.a, d.b)
}

// PDF implements Distribution.
func (d Uniform) PDF(t float64) float64 {
	if !(t >= d.a && t <= d.b) { // also rejects NaN
		return 0
	}
	return 1 / (d.b - d.a)
}

// CDF implements Distribution.
func (d Uniform) CDF(t float64) float64 {
	switch {
	case t <= d.a:
		return 0
	case t >= d.b:
		return 1
	default:
		return (t - d.a) / (d.b - d.a)
	}
}

// Survival implements Distribution.
func (d Uniform) Survival(t float64) float64 {
	switch {
	case t <= d.a:
		return 1
	case t >= d.b:
		return 0
	default:
		return (d.b - t) / (d.b - d.a)
	}
}

// Quantile implements Distribution: Q(x) = (1-x)a + xb.
func (d Uniform) Quantile(p float64) float64 {
	p = clampP(p)
	return (1-p)*d.a + p*d.b
}

// Mean implements Distribution.
func (d Uniform) Mean() float64 { return 0.5 * (d.a + d.b) }

// Variance implements Distribution.
func (d Uniform) Variance() float64 {
	w := d.b - d.a
	return w * w / 12
}

// Support implements Distribution.
func (d Uniform) Support() (float64, float64) { return d.a, d.b }

// CondMean implements CondMeaner: E[X | X > τ] = (τ + b)/2.
func (d Uniform) CondMean(tau float64) float64 {
	if tau < d.a {
		tau = d.a
	}
	if tau >= d.b {
		return math.NaN()
	}
	return 0.5 * (tau + d.b)
}
