package dist

import (
	"fmt"
	"math"
	"sort"
)

// FitLogNormal fits a LogNormal law to positive samples by maximum
// likelihood in log space: μ̂ is the mean and σ̂ the (population)
// standard deviation of the log samples. This is the fitting procedure
// the paper applies to the neuroscience execution traces (Fig. 1).
func FitLogNormal(samples []float64) (LogNormal, error) {
	if len(samples) < 2 {
		return LogNormal{}, fmt.Errorf("dist: FitLogNormal needs at least 2 samples, got %d", len(samples))
	}
	var sum float64
	for i, s := range samples {
		if !(s > 0) {
			return LogNormal{}, fmt.Errorf("dist: FitLogNormal sample %d must be positive, got %g", i, s)
		}
		sum += math.Log(s)
	}
	mu := sum / float64(len(samples))
	var ss float64
	for _, s := range samples {
		d := math.Log(s) - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(samples)))
	if !(sigma > 0) {
		return LogNormal{}, fmt.Errorf("dist: FitLogNormal samples are degenerate (zero log variance)")
	}
	return NewLogNormal(mu, sigma)
}

// SampleMoments returns the sample mean and (population) standard
// deviation of a trace.
func SampleMoments(samples []float64) (mean, sd float64) {
	n := float64(len(samples))
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	for _, s := range samples {
		mean += s
	}
	mean /= n
	for _, s := range samples {
		d := s - mean
		sd += d * d
	}
	return mean, math.Sqrt(sd / n)
}

// KSStatistic returns the Kolmogorov–Smirnov statistic
// sup_t |F_emp(t) - F(t)| between the empirical CDF of the samples and
// the distribution's CDF. It is used to assess the quality of trace
// fits (Fig. 1 substitution).
func KSStatistic(samples []float64, d Distribution) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := float64(len(s))
	maxD := 0.0
	for i, x := range s {
		f := d.CDF(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if v := math.Abs(f - lo); v > maxD {
			maxD = v
		}
		if v := math.Abs(f - hi); v > maxD {
			maxD = v
		}
	}
	return maxD
}

// KSCriticalValue returns the Dvoretzky–Kiefer–Wolfowitz bound
// ε(n, α) = sqrt(ln(2/α) / (2n)): with probability at least 1-α the KS
// statistic of n samples against their true law stays below it, so a
// fit whose KS exceeds this value is rejected at level α.
func KSCriticalValue(n int, alpha float64) float64 {
	if n < 1 || !(alpha > 0) || alpha >= 1 {
		return math.NaN()
	}
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(n)))
}
