package dist

import (
	"fmt"
	"math"
)

// LogNormal is the LogNormal(μ, σ²) law on (0, ∞): ln X ~ N(μ, σ²).
type LogNormal struct {
	mu, sigma float64
}

// NewLogNormal returns a LogNormal distribution with log-mean mu and
// log-standard-deviation sigma.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return LogNormal{}, fmt.Errorf("dist: LogNormal needs finite μ and positive finite σ, got μ=%g σ=%g", mu, sigma)
	}
	return LogNormal{mu: mu, sigma: sigma}, nil
}

// MustLogNormal is NewLogNormal that panics on invalid parameters.
func MustLogNormal(mu, sigma float64) LogNormal {
	d, err := NewLogNormal(mu, sigma)
	if err != nil {
		panic(err)
	}
	return d
}

// LogNormalFromMoments builds the LogNormal law whose mean and standard
// deviation (in natural units) equal the given values; this is the
// re-parameterization used by the paper (footnote 4) to scale the
// NeuroHPC distribution: σ = sqrt(ln((sd/mean)²+1)), μ = ln(mean) - σ²/2.
func LogNormalFromMoments(mean, sd float64) (LogNormal, error) {
	if !(mean > 0) || !(sd > 0) {
		return LogNormal{}, fmt.Errorf("dist: LogNormalFromMoments needs positive mean and sd, got %g, %g", mean, sd)
	}
	sigma2 := math.Log(sd*sd/(mean*mean) + 1)
	sigma := math.Sqrt(sigma2)
	mu := math.Log(mean) - sigma2/2
	return NewLogNormal(mu, sigma)
}

// Mu returns the log-mean parameter μ.
func (d LogNormal) Mu() float64 { return d.mu }

// Sigma returns the log-standard-deviation parameter σ.
func (d LogNormal) Sigma() float64 { return d.sigma }

// Name implements Distribution.
func (d LogNormal) Name() string {
	return fmt.Sprintf("LogNormal(μ=%g,σ=%g)", d.mu, d.sigma)
}

// PDF implements Distribution.
func (d LogNormal) PDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	z := (math.Log(t) - d.mu) / d.sigma
	return math.Exp(-0.5*z*z) / (t * d.sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Distribution.
func (d LogNormal) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(t)-d.mu)/(d.sigma*math.Sqrt2))
}

// Survival implements Distribution.
func (d LogNormal) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return 0.5 * math.Erfc((math.Log(t)-d.mu)/(d.sigma*math.Sqrt2))
}

// Quantile implements Distribution (Table 5):
// Q(x) = exp(√2 σ erf^{-1}(2x-1) + μ).
func (d LogNormal) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	return math.Exp(math.Sqrt2*d.sigma*math.Erfinv(2*p-1) + d.mu)
}

// Mean implements Distribution: e^{μ+σ²/2}.
func (d LogNormal) Mean() float64 {
	return math.Exp(d.mu + d.sigma*d.sigma/2)
}

// Variance implements Distribution: (e^{σ²}-1) e^{2μ+σ²}.
func (d LogNormal) Variance() float64 {
	s2 := d.sigma * d.sigma
	return math.Expm1(s2) * math.Exp(2*d.mu+s2)
}

// Support implements Distribution.
func (d LogNormal) Support() (float64, float64) { return 0, math.Inf(1) }

// CondMean implements CondMeaner using the Appendix-B closed form:
// E[X | X > τ] = e^{μ+σ²/2} · erfc((ln τ - μ - σ²)/(√2σ)) / erfc((ln τ - μ)/(√2σ)).
func (d LogNormal) CondMean(tau float64) float64 {
	if tau <= 0 {
		return d.Mean()
	}
	lt := math.Log(tau)
	num := math.Erfc((lt - d.mu - d.sigma*d.sigma) / (math.Sqrt2 * d.sigma))
	den := math.Erfc((lt - d.mu) / (math.Sqrt2 * d.sigma))
	if den <= 0 {
		// Both complementary error functions have underflowed; deep in
		// the tail the conditional mean approaches τ itself.
		return math.NaN()
	}
	return d.Mean() * num / den
}
