package dist

import (
	"fmt"
	"math"

	"repro/internal/specfun"
)

// BetaDist is the Beta(α, β) law on [0, 1]:
// f(t) = t^{α-1}(1-t)^{β-1} / B(α, β).
type BetaDist struct {
	alpha, beta float64
}

// NewBeta returns a Beta distribution with the given shape parameters.
func NewBeta(alpha, beta float64) (BetaDist, error) {
	if !(alpha > 0) || !(beta > 0) || math.IsInf(alpha, 0) || math.IsInf(beta, 0) {
		return BetaDist{}, fmt.Errorf("dist: Beta shapes must be positive and finite, got α=%g β=%g", alpha, beta)
	}
	return BetaDist{alpha: alpha, beta: beta}, nil
}

// MustBeta is NewBeta that panics on invalid parameters.
func MustBeta(alpha, beta float64) BetaDist {
	d, err := NewBeta(alpha, beta)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Distribution.
func (d BetaDist) Name() string {
	return fmt.Sprintf("Beta(α=%g,β=%g)", d.alpha, d.beta)
}

// PDF implements Distribution.
func (d BetaDist) PDF(t float64) float64 {
	if t < 0 || t > 1 {
		return 0
	}
	if t == 0 {
		switch {
		case d.alpha < 1:
			return math.Inf(1)
		case d.alpha == 1:
			return d.beta
		default:
			return 0
		}
	}
	if t == 1 {
		switch {
		case d.beta < 1:
			return math.Inf(1)
		case d.beta == 1:
			return d.alpha
		default:
			return 0
		}
	}
	return math.Exp((d.alpha-1)*math.Log(t) + (d.beta-1)*math.Log(1-t) - specfun.LogBeta(d.alpha, d.beta))
}

// CDF implements Distribution: I_t(α, β).
func (d BetaDist) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return specfun.RegIncBeta(d.alpha, d.beta, t)
}

// Survival implements Distribution, using the symmetry
// 1 - I_t(α, β) = I_{1-t}(β, α) for tail stability.
func (d BetaDist) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t >= 1 {
		return 0
	}
	return specfun.RegIncBeta(d.beta, d.alpha, 1-t)
}

// Quantile implements Distribution: Q(x) = I^{-1}_x(α, β).
func (d BetaDist) Quantile(p float64) float64 {
	p = clampP(p)
	return specfun.InvRegIncBeta(d.alpha, d.beta, p)
}

// Mean implements Distribution: α/(α+β).
func (d BetaDist) Mean() float64 { return d.alpha / (d.alpha + d.beta) }

// Variance implements Distribution: αβ / ((α+β)²(α+β+1)).
func (d BetaDist) Variance() float64 {
	s := d.alpha + d.beta
	return d.alpha * d.beta / (s * s * (s + 1))
}

// Support implements Distribution.
func (d BetaDist) Support() (float64, float64) { return 0, 1 }

// CondMean implements CondMeaner using the Appendix-B closed form:
// E[X | X > τ] = (B(α+1,β) - B(τ; α+1,β)) / (B(α,β) - B(τ; α,β)).
func (d BetaDist) CondMean(tau float64) float64 {
	if tau <= 0 {
		return d.Mean()
	}
	if tau >= 1 {
		return math.NaN()
	}
	num := specfun.IncBeta(d.alpha+1, d.beta, 1) - specfun.IncBeta(d.alpha+1, d.beta, tau)
	den := specfun.IncBeta(d.alpha, d.beta, 1) - specfun.IncBeta(d.alpha, d.beta, tau)
	if den <= 0 {
		return math.NaN()
	}
	return num / den
}
