package dist

import (
	"fmt"
	"math"
)

// Exponential is the Exponential(λ) law on [0, ∞) with density
// f(t) = λ e^{-λt}.
type Exponential struct {
	lambda float64
}

// NewExponential returns an Exponential distribution with rate lambda.
func NewExponential(lambda float64) (Exponential, error) {
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return Exponential{}, fmt.Errorf("dist: Exponential rate must be positive and finite, got %g", lambda)
	}
	return Exponential{lambda: lambda}, nil
}

// MustExponential is NewExponential that panics on invalid parameters;
// intended for package-level tables and tests.
func MustExponential(lambda float64) Exponential {
	d, err := NewExponential(lambda)
	if err != nil {
		panic(err)
	}
	return d
}

// Rate returns λ.
func (d Exponential) Rate() float64 { return d.lambda }

// Name implements Distribution.
func (d Exponential) Name() string {
	return fmt.Sprintf("Exponential(λ=%g)", d.lambda)
}

// PDF implements Distribution.
func (d Exponential) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return d.lambda * math.Exp(-d.lambda*t)
}

// CDF implements Distribution.
func (d Exponential) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-d.lambda * t)
}

// Survival implements Distribution.
func (d Exponential) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-d.lambda * t)
}

// Quantile implements Distribution.
func (d Exponential) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / d.lambda
}

// Mean implements Distribution.
func (d Exponential) Mean() float64 { return 1 / d.lambda }

// Variance implements Distribution.
func (d Exponential) Variance() float64 { return 1 / (d.lambda * d.lambda) }

// Support implements Distribution.
func (d Exponential) Support() (float64, float64) { return 0, math.Inf(1) }

// CondMean implements CondMeaner using the memoryless property:
// E[X | X > τ] = τ + 1/λ.
func (d Exponential) CondMean(tau float64) float64 {
	if tau < 0 {
		tau = 0
	}
	return tau + 1/d.lambda
}
