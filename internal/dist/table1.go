package dist

// Table1 returns the nine distributions instantiated exactly as in
// Table 1 of the paper, in the paper's order: six laws with infinite
// support followed by three with finite support. These are the
// workloads of every ReservationOnly experiment (Tables 2–4, Fig. 3).
func Table1() []Distribution {
	return []Distribution{
		MustExponential(1.0),
		MustWeibull(1.0, 0.5),
		MustGamma(2.0, 2.0),
		MustLogNormal(3.0, 0.5),
		MustTruncatedNormal(8.0, sqrt2, 0.0), // σ² = 2.0 in Table 1
		MustPareto(1.5, 3.0),
		MustUniform(10.0, 20.0),
		MustBeta(2.0, 2.0),
		MustBoundedPareto(1.0, 20.0, 2.1),
	}
}

// sqrt2 is √2; Table 1 parameterizes the truncated normal by σ² = 2.
const sqrt2 = 1.4142135623730951

// Table1Names returns the paper's row labels in Table-1 order.
func Table1Names() []string {
	return []string{
		"Exponential", "Weibull", "Gamma", "Lognormal", "TruncatedNormal",
		"Pareto", "Uniform", "Beta", "BoundedPareto",
	}
}
