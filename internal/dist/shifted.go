package dist

import (
	"fmt"
	"math"
)

// Shifted is the distribution of X + c for a base law X and a
// nonnegative offset c. It models jobs with a deterministic minimum
// service time (startup, data staging) on top of a stochastic
// computation, keeping the support nonnegative as the framework
// requires.
type Shifted struct {
	base   Distribution
	offset float64
}

// NewShifted returns the law of X + offset, for offset >= 0 (negative
// offsets could push the support below 0, which execution times forbid).
func NewShifted(base Distribution, offset float64) (Shifted, error) {
	if base == nil {
		return Shifted{}, fmt.Errorf("dist: Shifted needs a base distribution")
	}
	if !(offset >= 0) || math.IsInf(offset, 0) {
		return Shifted{}, fmt.Errorf("dist: shift offset must be nonnegative and finite, got %g", offset)
	}
	if s, ok := base.(Shifted); ok {
		return Shifted{base: s.base, offset: s.offset + offset}, nil
	}
	return Shifted{base: base, offset: offset}, nil
}

// MustShifted is NewShifted that panics on invalid parameters.
func MustShifted(base Distribution, offset float64) Shifted {
	s, err := NewShifted(base, offset)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements Distribution.
func (s Shifted) Name() string {
	return fmt.Sprintf("%s+%g", s.base.Name(), s.offset)
}

// PDF implements Distribution.
func (s Shifted) PDF(t float64) float64 { return s.base.PDF(t - s.offset) }

// CDF implements Distribution.
func (s Shifted) CDF(t float64) float64 { return s.base.CDF(t - s.offset) }

// Survival implements Distribution.
func (s Shifted) Survival(t float64) float64 { return s.base.Survival(t - s.offset) }

// Quantile implements Distribution.
func (s Shifted) Quantile(p float64) float64 { return s.base.Quantile(p) + s.offset }

// Mean implements Distribution.
func (s Shifted) Mean() float64 { return s.base.Mean() + s.offset }

// Variance implements Distribution.
func (s Shifted) Variance() float64 { return s.base.Variance() }

// Support implements Distribution.
func (s Shifted) Support() (float64, float64) {
	lo, hi := s.base.Support()
	return lo + s.offset, hi + s.offset
}

// CondMean implements CondMeaner: E[X+c | X+c > τ] = c + E[X | X > τ-c].
func (s Shifted) CondMean(tau float64) float64 {
	if cm, ok := s.base.(CondMeaner); ok {
		return s.offset + cm.CondMean(tau-s.offset)
	}
	return math.NaN() // generic quadrature fallback applies
}
