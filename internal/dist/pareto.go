package dist

import (
	"fmt"
	"math"
)

// Pareto is the Pareto(ν, α) law on [ν, ∞): f(t) = α ν^α / t^{α+1}.
type Pareto struct {
	scale, alpha float64
}

// NewPareto returns a Pareto distribution with scale nu (minimum value)
// and tail index alpha. The mean is finite only for alpha > 1 and the
// variance only for alpha > 2; the reservation problem requires a
// finite second moment (Theorem 2), so alpha <= 2 is rejected.
func NewPareto(scale, alpha float64) (Pareto, error) {
	if !(scale > 0) || math.IsInf(scale, 0) {
		return Pareto{}, fmt.Errorf("dist: Pareto scale must be positive and finite, got %g", scale)
	}
	if !(alpha > 2) || math.IsInf(alpha, 0) {
		return Pareto{}, fmt.Errorf("dist: Pareto tail index must exceed 2 for a finite second moment, got %g", alpha)
	}
	return Pareto{scale: scale, alpha: alpha}, nil
}

// MustPareto is NewPareto that panics on invalid parameters.
func MustPareto(scale, alpha float64) Pareto {
	d, err := NewPareto(scale, alpha)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Distribution.
func (d Pareto) Name() string {
	return fmt.Sprintf("Pareto(ν=%g,α=%g)", d.scale, d.alpha)
}

// PDF implements Distribution.
func (d Pareto) PDF(t float64) float64 {
	if t < d.scale {
		return 0
	}
	return d.alpha * math.Pow(d.scale, d.alpha) / math.Pow(t, d.alpha+1)
}

// CDF implements Distribution.
func (d Pareto) CDF(t float64) float64 {
	if t <= d.scale {
		return 0
	}
	return 1 - math.Pow(d.scale/t, d.alpha)
}

// Survival implements Distribution.
func (d Pareto) Survival(t float64) float64 {
	if t <= d.scale {
		return 1
	}
	return math.Pow(d.scale/t, d.alpha)
}

// Quantile implements Distribution: Q(x) = ν / (1-x)^{1/α}.
func (d Pareto) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 1 {
		return math.Inf(1)
	}
	return d.scale / math.Pow(1-p, 1/d.alpha)
}

// Mean implements Distribution: αν/(α-1).
func (d Pareto) Mean() float64 {
	return d.alpha * d.scale / (d.alpha - 1)
}

// Variance implements Distribution: αν² / ((α-1)²(α-2)).
func (d Pareto) Variance() float64 {
	am1 := d.alpha - 1
	return d.alpha * d.scale * d.scale / (am1 * am1 * (d.alpha - 2))
}

// Support implements Distribution.
func (d Pareto) Support() (float64, float64) { return d.scale, math.Inf(1) }

// CondMean implements CondMeaner using the Appendix-B closed form:
// E[X | X > τ] = ατ/(α-1).
func (d Pareto) CondMean(tau float64) float64 {
	if tau < d.scale {
		tau = d.scale
	}
	return d.alpha * tau / (d.alpha - 1)
}
