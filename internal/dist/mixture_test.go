package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func bimodal(t *testing.T) *Mixture {
	t.Helper()
	m, err := NewMixture(
		[]Distribution{MustLogNormal(0, 0.3), MustLogNormal(2, 0.3)},
		[]float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixtureMoments(t *testing.T) {
	m := bimodal(t)
	// Mean is the weighted component mean.
	want := 0.6*math.Exp(0.045) + 0.4*math.Exp(2.045)
	if math.Abs(m.Mean()-want) > 1e-12 {
		t.Errorf("mean = %g, want %g", m.Mean(), want)
	}
	// Cross-check both moments against quadrature.
	if got, want := m.Mean(), MeanNumeric(m); math.Abs(got-want) > 1e-6*want {
		t.Errorf("mean %g vs quadrature %g", got, want)
	}
	if got, want := m.Variance(), VarianceNumeric(m); math.Abs(got-want) > 1e-4*want {
		t.Errorf("variance %g vs quadrature %g", got, want)
	}
}

func TestMixturePDFCDFConsistency(t *testing.T) {
	m := bimodal(t)
	// CDF is nondecreasing; survival complements; PDF >= 0.
	prev := -1.0
	for x := 0.0; x < 20; x += 0.25 {
		f := m.CDF(x)
		if f < prev-1e-12 {
			t.Fatalf("CDF decreasing at %g", x)
		}
		prev = f
		if s := m.Survival(x); math.Abs(s+f-1) > 1e-12 {
			t.Errorf("S+F != 1 at %g", x)
		}
		if m.PDF(x) < 0 {
			t.Errorf("negative PDF at %g", x)
		}
	}
}

func TestMixtureQuantileInvertsCDF(t *testing.T) {
	m := bimodal(t)
	for _, p := range []float64{1e-5, 0.01, 0.3, 0.5, 0.6, 0.61, 0.9, 0.999} {
		x := m.Quantile(p)
		if got := m.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Q(%g)=%g) = %g", p, x, got)
		}
	}
	if m.Quantile(0) != 0 {
		t.Errorf("Q(0) = %g", m.Quantile(0))
	}
	if !math.IsInf(m.Quantile(1), 1) {
		t.Errorf("Q(1) = %g", m.Quantile(1))
	}
}

func TestMixtureCondMeanMatchesQuadrature(t *testing.T) {
	m := bimodal(t)
	for _, tau := range []float64{0, 0.5, 1, 3, 8} {
		got := m.CondMean(tau)
		want := CondMeanNumeric(m, tau)
		if math.Abs(got-want) > 1e-5*math.Max(1, want) {
			t.Errorf("CondMean(%g) = %.8g, quadrature %.8g", tau, got, want)
		}
	}
}

func TestMixtureSamplingBimodality(t *testing.T) {
	m := bimodal(t)
	r := rng.New(9)
	nearLow, nearHigh := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		x := Sample(m, r)
		if x < 2 {
			nearLow++
		} else if x > 4 {
			nearHigh++
		}
	}
	// ~60% of mass near e^0=1, ~40% near e^2≈7.4.
	if f := float64(nearLow) / n; math.Abs(f-0.6) > 0.03 {
		t.Errorf("low-mode fraction %g, want ≈0.6", f)
	}
	if f := float64(nearHigh) / n; math.Abs(f-0.36) > 0.04 {
		t.Errorf("high-mode fraction %g, want ≈0.36", f)
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	m, err := NewMixture([]Distribution{MustExponential(1), MustExponential(2)}, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	_, w := m.Components()
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 {
		t.Errorf("weights = %v", w)
	}
}

func TestMixtureBoundedSupport(t *testing.T) {
	m, err := NewMixture([]Distribution{MustUniform(1, 3), MustUniform(5, 9)}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Support()
	if lo != 1 || hi != 9 {
		t.Errorf("support [%g, %g], want [1, 9]", lo, hi)
	}
	// Median sits at the boundary region between the modes.
	med := Median(m)
	if math.Abs(m.CDF(med)-0.5) > 1e-9 {
		t.Errorf("CDF(median) = %g", m.CDF(med))
	}
}

func TestMixtureValidation(t *testing.T) {
	e := MustExponential(1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewMixture([]Distribution{nil}, []float64{1}); err == nil {
		t.Error("nil component accepted")
	}
}

func TestSplitByQuantileOrders(t *testing.T) {
	ds, ws := SplitByQuantile(
		[]Distribution{MustLogNormal(2, 0.3), MustLogNormal(0, 0.3)},
		[]float64{0.4, 0.6})
	if Median(ds[0]) > Median(ds[1]) {
		t.Error("components not ordered by median")
	}
	if ws[0] != 0.6 || ws[1] != 0.4 {
		t.Errorf("weights not carried: %v", ws)
	}
}
