package dist

import (
	"fmt"
	"math"
	"sort"
)

// Mixture is a finite mixture Σ w_i · D_i of execution-time laws. Job
// populations are frequently multi-modal (e.g. a pipeline whose inputs
// split into small and large cases); a mixture models them without
// leaving the framework — every reservation algorithm in this library
// works on it unchanged.
type Mixture struct {
	components []Distribution
	weights    []float64
	lo, hi     float64
	mean, m2   float64
}

// NewMixture builds the mixture of the given components with the given
// positive weights (normalized to sum 1).
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, fmt.Errorf("dist: Mixture needs equal-length non-empty components/weights, got %d/%d", len(components), len(weights))
	}
	total := 0.0
	for i, w := range weights {
		if components[i] == nil {
			return nil, fmt.Errorf("dist: Mixture component %d is nil", i)
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: Mixture weight %d must be positive and finite, got %g", i, w)
		}
		total += w
	}
	m := &Mixture{
		components: append([]Distribution(nil), components...),
		weights:    make([]float64, len(weights)),
		lo:         math.Inf(1),
		hi:         math.Inf(-1),
	}
	for i, w := range weights {
		m.weights[i] = w / total
		lo, hi := components[i].Support()
		m.lo = math.Min(m.lo, lo)
		m.hi = math.Max(m.hi, hi)
		m.mean += m.weights[i] * components[i].Mean()
		m.m2 += m.weights[i] * SecondMoment(components[i])
	}
	return m, nil
}

// MustMixture is NewMixture that panics on invalid parameters.
func MustMixture(components []Distribution, weights []float64) *Mixture {
	m, err := NewMixture(components, weights)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Distribution.
func (m *Mixture) Name() string {
	s := "Mixture("
	for i, c := range m.components {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%.3g·%s", m.weights[i], c.Name())
	}
	return s + ")"
}

// PDF implements Distribution.
func (m *Mixture) PDF(t float64) float64 {
	var v float64
	for i, c := range m.components {
		v += m.weights[i] * c.PDF(t)
	}
	return v
}

// CDF implements Distribution.
func (m *Mixture) CDF(t float64) float64 {
	var v float64
	for i, c := range m.components {
		v += m.weights[i] * c.CDF(t)
	}
	return v
}

// Survival implements Distribution.
func (m *Mixture) Survival(t float64) float64 {
	var v float64
	for i, c := range m.components {
		v += m.weights[i] * c.Survival(t)
	}
	return v
}

// Quantile implements Distribution by monotone bisection on the mixture
// CDF (there is no closed form for general mixtures).
func (m *Mixture) Quantile(p float64) float64 {
	p = clampP(p)
	if p == 0 {
		return m.lo
	}
	if p == 1 {
		return m.hi
	}
	// Bracket using the component quantiles: the mixture quantile lies
	// between the min and max of the component quantiles at p.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.components {
		q := c.Quantile(p)
		lo = math.Min(lo, q)
		hi = math.Max(hi, q)
	}
	if hi <= lo {
		return lo // all components agree: bracket is a single point
	}
	if math.IsInf(hi, 1) {
		// Expand an upper bracket geometrically.
		hi = math.Max(1, 2*lo)
		for m.CDF(hi) < p && !math.IsInf(hi, 1) {
			hi *= 2
		}
	}
	// Bisection (CDF is continuous and nondecreasing).
	for i := 0; i < 200 && hi-lo > 1e-13*(1+math.Abs(hi)); i++ {
		mid := 0.5 * (lo + hi)
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// Mean implements Distribution.
func (m *Mixture) Mean() float64 { return m.mean }

// Variance implements Distribution.
func (m *Mixture) Variance() float64 { return m.m2 - m.mean*m.mean }

// Support implements Distribution.
func (m *Mixture) Support() (float64, float64) { return m.lo, m.hi }

// CondMean implements CondMeaner by mixing the component conditional
// means with the posterior weights w_i·S_i(τ)/S(τ).
func (m *Mixture) CondMean(tau float64) float64 {
	den := m.Survival(tau)
	if den <= 0 {
		return math.NaN()
	}
	var num float64
	for i, c := range m.components {
		si := c.Survival(tau)
		if si <= 0 {
			continue
		}
		cm := CondMean(c, tau)
		if math.IsNaN(cm) {
			return math.NaN()
		}
		num += m.weights[i] * si * cm
	}
	return num / den
}

// Components returns the component laws and normalized weights (copies
// of the slices' headers; callers must not mutate).
func (m *Mixture) Components() ([]Distribution, []float64) {
	return m.components, m.weights
}

// SplitByQuantile is a convenience for building a bimodal job
// population: it returns the weights and a sorted copy of components
// ordered by their medians (cosmetic; mixtures are order-independent).
func SplitByQuantile(components []Distribution, weights []float64) ([]Distribution, []float64) {
	type pair struct {
		d Distribution
		w float64
	}
	ps := make([]pair, len(components))
	for i := range components {
		ps[i] = pair{components[i], weights[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return Median(ps[i].d) < Median(ps[j].d) })
	outD := make([]Distribution, len(ps))
	outW := make([]float64, len(ps))
	for i, p := range ps {
		outD[i], outW[i] = p.d, p.w
	}
	return outD, outW
}
