package dist

import (
	"fmt"
	"math"
	"sort"
)

// Discrete is a finite discrete distribution X ~ (v_i, f_i)_{i=1..n}
// with v_1 < v_2 < ... < v_n. It is the input of the dynamic
// programming algorithm of Theorem 5, and is also produced by the
// discretization schemes of §4.2.1 (in which case the probabilities may
// sum to F(b) = 1-ε rather than 1; Total reports the actual mass).
type Discrete struct {
	vals  []float64
	probs []float64
	cum   []float64 // cum[i] = Σ_{j<=i} probs[j]
	total float64
	mean  float64
	m2    float64
}

// NewDiscrete builds a discrete distribution from execution-time values
// and their probabilities. Values must be strictly increasing,
// nonnegative and finite; probabilities must be nonnegative with a
// positive total not exceeding 1 (+ small slack for rounding).
func NewDiscrete(vals, probs []float64) (*Discrete, error) {
	if len(vals) == 0 || len(vals) != len(probs) {
		return nil, fmt.Errorf("dist: Discrete needs equal-length non-empty values/probs, got %d/%d", len(vals), len(probs))
	}
	total := 0.0
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("dist: Discrete value %d is invalid: %g", i, v)
		}
		if i > 0 && v <= vals[i-1] {
			return nil, fmt.Errorf("dist: Discrete values must be strictly increasing, v[%d]=%g <= v[%d]=%g", i, v, i-1, vals[i-1])
		}
		p := probs[i]
		if math.IsNaN(p) || p < 0 {
			return nil, fmt.Errorf("dist: Discrete probability %d is invalid: %g", i, p)
		}
		total += p
	}
	if total <= 0 || total > 1+1e-9 {
		return nil, fmt.Errorf("dist: Discrete total probability %g out of (0, 1]", total)
	}
	d := &Discrete{
		vals:  append([]float64(nil), vals...),
		probs: append([]float64(nil), probs...),
		cum:   make([]float64, len(vals)),
		total: total,
	}
	c := 0.0
	for i, p := range d.probs {
		c += p
		d.cum[i] = c
		d.mean += p * d.vals[i]
		d.m2 += p * d.vals[i] * d.vals[i]
	}
	// Moments are with respect to the (possibly sub-unit) mass,
	// renormalized so Mean/Variance describe the conditional law.
	d.mean /= total
	d.m2 /= total
	return d, nil
}

// NewEmpirical builds the empirical distribution of a trace: each
// distinct sample value gets probability (multiplicity)/len(samples).
func NewEmpirical(samples []float64) (*Discrete, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dist: empirical distribution needs at least one sample")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var vals, probs []float64
	w := 1 / float64(len(s))
	for i := 0; i < len(s); {
		j := i
		//lint:ignore floatcmp grouping repeated atoms of a sorted sample is an exact-identity test
		for j < len(s) && s[j] == s[i] {
			j++
		}
		vals = append(vals, s[i])
		probs = append(probs, float64(j-i)*w)
		i = j
	}
	return NewDiscrete(vals, probs)
}

// Len returns the number of support points.
func (d *Discrete) Len() int { return len(d.vals) }

// Values returns the support points (caller must not mutate).
func (d *Discrete) Values() []float64 { return d.vals }

// Probs returns the probabilities (caller must not mutate).
func (d *Discrete) Probs() []float64 { return d.probs }

// Total returns the total probability mass (1 for a proper law, F(b)
// for a truncated discretization).
func (d *Discrete) Total() float64 { return d.total }

// Name implements Distribution.
func (d *Discrete) Name() string {
	return fmt.Sprintf("Discrete(n=%d)", len(d.vals))
}

// PDF implements Distribution. For a discrete law the density is a sum
// of point masses; PDF reports the mass at exactly t (0 elsewhere),
// which is what the DP and the plotting helpers need.
func (d *Discrete) PDF(t float64) float64 {
	i := sort.SearchFloat64s(d.vals, t)
	//lint:ignore floatcmp a point mass carries weight at exactly its atom; nearby t has density 0
	if i < len(d.vals) && d.vals[i] == t {
		return d.probs[i]
	}
	return 0
}

// CDF implements Distribution: Σ_{v_i <= t} f_i.
func (d *Discrete) CDF(t float64) float64 {
	// Index of the first value strictly greater than t.
	i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i] > t })
	if i == 0 {
		return 0
	}
	return d.cum[i-1]
}

// Survival implements Distribution: P(X >= t). Note >= (not >): the
// reservation cost model (Eq. 4) uses P(X >= t_i), and for discrete
// laws the difference matters at the support points.
func (d *Discrete) Survival(t float64) float64 {
	// Index of the first value >= t.
	i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= t })
	if i == 0 {
		return d.total
	}
	return d.total - d.cum[i-1]
}

// Quantile implements Distribution: inf{v : F(v) >= p}. For truncated
// discretizations with total mass < 1, p above the total maps to the
// largest value.
func (d *Discrete) Quantile(p float64) float64 {
	p = clampP(p)
	i := sort.Search(len(d.cum), func(i int) bool { return d.cum[i] >= p-1e-15 })
	if i == len(d.vals) {
		return d.vals[len(d.vals)-1]
	}
	return d.vals[i]
}

// Mean implements Distribution (renormalized by the total mass).
func (d *Discrete) Mean() float64 { return d.mean }

// Variance implements Distribution (renormalized by the total mass).
func (d *Discrete) Variance() float64 { return d.m2 - d.mean*d.mean }

// Support implements Distribution.
func (d *Discrete) Support() (float64, float64) {
	return d.vals[0], d.vals[len(d.vals)-1]
}

// CondMean implements CondMeaner: Σ_{v_i > τ} f_i v_i / P(X > τ).
func (d *Discrete) CondMean(tau float64) float64 {
	var num, den float64
	for i, v := range d.vals {
		if v > tau {
			num += d.probs[i] * v
			den += d.probs[i]
		}
	}
	if den <= 0 {
		return math.NaN()
	}
	return num / den
}
