package dist

import (
	"math"
	"testing"
)

func TestScaledMatchesTransformedLaw(t *testing.T) {
	// 2·Exponential(1) has the same law as Exponential(0.5).
	s := MustScaled(MustExponential(1), 2)
	want := MustExponential(0.5)
	for _, x := range []float64{0, 0.3, 1, 2.5, 7} {
		if got, w := s.CDF(x), want.CDF(x); math.Abs(got-w) > 1e-12 {
			t.Errorf("CDF(%g) = %g, want %g", x, got, w)
		}
		if got, w := s.PDF(x), want.PDF(x); math.Abs(got-w) > 1e-12 {
			t.Errorf("PDF(%g) = %g, want %g", x, got, w)
		}
		if got, w := s.Survival(x), want.Survival(x); math.Abs(got-w) > 1e-12 {
			t.Errorf("Survival(%g) = %g, want %g", x, got, w)
		}
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if got, w := s.Quantile(p), want.Quantile(p); math.Abs(got-w) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", p, got, w)
		}
	}
	if s.Mean() != 2 || s.Variance() != 4 {
		t.Errorf("moments: mean %g var %g", s.Mean(), s.Variance())
	}
}

func TestScaledSupportAndCondMean(t *testing.T) {
	s := MustScaled(MustUniform(10, 20), 0.5)
	lo, hi := s.Support()
	if lo != 5 || hi != 10 {
		t.Errorf("support [%g, %g], want [5, 10]", lo, hi)
	}
	// E[0.5·X | 0.5·X > 6] = 0.5·E[X | X > 12] = 0.5·16 = 8.
	if got := CondMean(s, 6); math.Abs(got-8) > 1e-12 {
		t.Errorf("CondMean(6) = %g, want 8", got)
	}
	// Closed form agrees with quadrature.
	if got, want := s.CondMean(6), CondMeanNumeric(s, 6); math.Abs(got-want) > 1e-6 {
		t.Errorf("closed %g vs numeric %g", got, want)
	}
}

func TestScaledCollapsesNesting(t *testing.T) {
	inner := MustScaled(MustExponential(1), 2)
	outer := MustScaled(inner, 3)
	if outer.base != inner.base || outer.factor != 6 {
		t.Errorf("nesting not collapsed: %+v", outer)
	}
	if outer.Mean() != 6 {
		t.Errorf("mean = %g, want 6", outer.Mean())
	}
}

func TestScaledValidation(t *testing.T) {
	if _, err := NewScaled(nil, 2); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewScaled(MustExponential(1), 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := NewScaled(MustExponential(1), math.Inf(1)); err == nil {
		t.Error("infinite factor accepted")
	}
}

func TestScaledSecondsToHours(t *testing.T) {
	// The NeuroHPC unit conversion: VBMQA in seconds scaled by 1/3600.
	sec := MustLogNormal(7.1128, 0.2039)
	h := MustScaled(sec, 1.0/3600)
	if math.Abs(h.Mean()-sec.Mean()/3600) > 1e-9 {
		t.Errorf("hour mean %g vs %g", h.Mean(), sec.Mean()/3600)
	}
	// Scaling a LogNormal is again LogNormal with shifted μ.
	want := MustLogNormal(7.1128-math.Log(3600), 0.2039)
	for _, p := range []float64{0.05, 0.5, 0.95} {
		if math.Abs(h.Quantile(p)-want.Quantile(p)) > 1e-9 {
			t.Errorf("quantile mismatch at %g", p)
		}
	}
}
