package dist

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/quad"
	"repro/internal/rng"
)

// all returns the Table-1 distributions used across the generic tests.
func all() []Distribution { return Table1() }

func relClose(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

func TestPDFIntegratesToOne(t *testing.T) {
	for _, d := range all() {
		lo, hi := d.Support()
		var total float64
		var err error
		if math.IsInf(hi, 1) {
			total, err = quad.IntegrateToInf(d.PDF, lo, 1e-11)
		} else {
			total, err = quad.Integrate(d.PDF, lo, hi, 1e-11)
		}
		if err != nil && !relClose(total, 1, 1e-6) {
			t.Errorf("%s: pdf integration error: %v (total=%g)", d.Name(), err, total)
			continue
		}
		if !relClose(total, 1, 1e-6) {
			t.Errorf("%s: ∫pdf = %.10g, want 1", d.Name(), total)
		}
	}
}

func TestCDFMatchesIntegratedPDF(t *testing.T) {
	// Compare CDF increments over interior intervals so that densities
	// with an integrable singularity at the support edge (Weibull κ<1,
	// Gamma α<1) do not break the quadrature.
	for _, d := range all() {
		x0 := d.Quantile(0.05)
		for _, p := range []float64{0.2, 0.5, 0.8, 0.97} {
			x := d.Quantile(p)
			want, err := quad.Integrate(d.PDF, x0, x, 1e-11)
			if err != nil {
				t.Errorf("%s: quad error at x=%g: %v", d.Name(), x, err)
				continue
			}
			if got := d.CDF(x) - d.CDF(x0); !relClose(got, want, 1e-6) {
				t.Errorf("%s: F(%g)-F(%g) = %.10g, ∫pdf = %.10g", d.Name(), x, x0, got, want)
			}
		}
	}
}

func TestSurvivalComplementsCDF(t *testing.T) {
	for _, d := range all() {
		lo, hi := d.Support()
		if math.IsInf(hi, 1) {
			hi = d.Quantile(0.999)
		}
		for _, frac := range []float64{0, 0.2, 0.5, 0.8, 1} {
			x := lo + frac*(hi-lo)
			s, f := d.Survival(x), d.CDF(x)
			if math.Abs(s+f-1) > 1e-9 {
				t.Errorf("%s: S(%g)+F(%g) = %g, want 1", d.Name(), x, x, s+f)
			}
		}
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	ps := []float64{1e-6, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1 - 1e-6}
	for _, d := range all() {
		for _, p := range ps {
			x := d.Quantile(p)
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-7 {
				t.Errorf("%s: CDF(Q(%g)=%g) = %.10g", d.Name(), p, x, got)
			}
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	for _, d := range all() {
		lo, hi := d.Support()
		q0 := d.Quantile(0)
		if math.Abs(q0-lo) > 1e-12 {
			t.Errorf("%s: Q(0) = %g, want support low %g", d.Name(), q0, lo)
		}
		q1 := d.Quantile(1)
		if math.IsInf(hi, 1) {
			if !math.IsInf(q1, 1) {
				t.Errorf("%s: Q(1) = %g, want +Inf", d.Name(), q1)
			}
		} else if math.Abs(q1-hi) > 1e-9 {
			t.Errorf("%s: Q(1) = %g, want support high %g", d.Name(), q1, hi)
		}
		// Out-of-range probabilities clamp.
		if got := d.Quantile(-0.5); math.Abs(got-q0) > 1e-12 {
			t.Errorf("%s: Q(-0.5) = %g, want Q(0)=%g", d.Name(), got, q0)
		}
	}
}

func TestMeanMatchesQuadrature(t *testing.T) {
	for _, d := range all() {
		want := MeanNumeric(d)
		if got := d.Mean(); !relClose(got, want, 1e-5) {
			t.Errorf("%s: Mean = %.10g, quadrature = %.10g", d.Name(), got, want)
		}
	}
}

func TestVarianceMatchesQuadrature(t *testing.T) {
	for _, d := range all() {
		want := VarianceNumeric(d)
		if got := d.Variance(); math.Abs(got-want) > 1e-4*math.Max(1, want) {
			t.Errorf("%s: Variance = %.10g, quadrature = %.10g", d.Name(), got, want)
		}
	}
}

func TestCondMeanMatchesQuadrature(t *testing.T) {
	for _, d := range all() {
		cm, ok := d.(CondMeaner)
		if !ok {
			t.Errorf("%s: no closed-form CondMean", d.Name())
			continue
		}
		lo, hi := d.Support()
		if math.IsInf(hi, 1) {
			hi = d.Quantile(0.99)
		}
		for _, frac := range []float64{0, 0.2, 0.5, 0.8} {
			tau := lo + frac*(hi-lo)
			want := CondMeanNumeric(d, tau)
			got := cm.CondMean(tau)
			if !relClose(got, want, 1e-5) {
				t.Errorf("%s: CondMean(%g) = %.10g, quadrature = %.10g", d.Name(), tau, got, want)
			}
			if got < tau {
				t.Errorf("%s: CondMean(%g) = %g < τ", d.Name(), tau, got)
			}
		}
	}
}

func TestCondMeanAtSupportLowEqualsMean(t *testing.T) {
	for _, d := range all() {
		lo, _ := d.Support()
		got := CondMean(d, lo)
		if !relClose(got, d.Mean(), 1e-9) {
			t.Errorf("%s: CondMean(lo) = %.10g, want Mean = %.10g", d.Name(), got, d.Mean())
		}
	}
}

func TestTable1KnownMoments(t *testing.T) {
	// Closed-form expectations for the paper's instantiations.
	cases := []struct {
		idx        int
		mean, varc float64
	}{
		{0, 1, 1},               // Exponential(1)
		{1, 2, 20},              // Weibull(1, 0.5): λΓ(3)=2, λ²(Γ(5)-Γ(3)²)=24-4
		{2, 1, 0.5},             // Gamma(2,2)
		{3, math.Exp(3.125), 0}, // LogNormal(3, 0.5): e^{3+0.125}
		{5, 2.25, 1.6875},       // Pareto(1.5,3): 3·1.5/2, 3·2.25/(4·1)
		{6, 15, 100.0 / 12.0},   // Uniform(10,20)
		{7, 0.5, 0.05},          // Beta(2,2)
	}
	ds := all()
	for _, c := range cases {
		d := ds[c.idx]
		if !relClose(d.Mean(), c.mean, 1e-10) {
			t.Errorf("%s: Mean = %.12g, want %.12g", d.Name(), d.Mean(), c.mean)
		}
		if c.varc > 0 && !relClose(d.Variance(), c.varc, 1e-10) {
			t.Errorf("%s: Variance = %.12g, want %.12g", d.Name(), d.Variance(), c.varc)
		}
	}
}

func TestExponentialMemoryless(t *testing.T) {
	d := MustExponential(2.5)
	// P(X > s+t | X > s) = P(X > t).
	for _, s := range []float64{0.1, 1, 3} {
		for _, x := range []float64{0.2, 0.7, 2} {
			lhs := d.Survival(s+x) / d.Survival(s)
			rhs := d.Survival(x)
			if !relClose(lhs, rhs, 1e-12) {
				t.Errorf("memoryless violated: s=%g x=%g: %g vs %g", s, x, lhs, rhs)
			}
		}
	}
	if got := d.CondMean(3); !relClose(got, 3+1/2.5, 1e-12) {
		t.Errorf("Exponential CondMean(3) = %g, want %g", got, 3+1/2.5)
	}
}

func TestParetoCondMeanProportional(t *testing.T) {
	d := MustPareto(1.5, 3)
	// E[X|X>τ] = ατ/(α-1) = 1.5τ.
	for _, tau := range []float64{1.5, 2, 5, 100} {
		if got := d.CondMean(tau); !relClose(got, 1.5*tau, 1e-12) {
			t.Errorf("Pareto CondMean(%g) = %g, want %g", tau, got, 1.5*tau)
		}
	}
}

func TestUniformCondMean(t *testing.T) {
	d := MustUniform(10, 20)
	if got := d.CondMean(12); got != 16 {
		t.Errorf("Uniform CondMean(12) = %g, want 16", got)
	}
	if got := d.CondMean(0); got != 15 {
		t.Errorf("Uniform CondMean(0) = %g, want mean 15", got)
	}
	if got := d.CondMean(20); !math.IsNaN(got) {
		t.Errorf("Uniform CondMean(b) = %g, want NaN", got)
	}
}

func TestSamplingMatchesMoments(t *testing.T) {
	r := rng.New(31415)
	for _, d := range all() {
		const n = 60000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := Sample(d, r)
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		sd := math.Sqrt(sum2/n - mean*mean)
		wantSD := StdDev(d)
		if math.Abs(mean-d.Mean()) > 5*wantSD/math.Sqrt(n)+0.01*d.Mean() {
			t.Errorf("%s: sample mean %g vs %g", d.Name(), mean, d.Mean())
		}
		// Standard deviation is noisier (esp. heavy tails); loose check.
		if math.Abs(sd-wantSD) > 0.25*wantSD {
			t.Errorf("%s: sample sd %g vs %g", d.Name(), sd, wantSD)
		}
	}
}

func TestSampleNLength(t *testing.T) {
	r := rng.New(1)
	xs := SampleN(MustExponential(1), r, 17)
	if len(xs) != 17 {
		t.Fatalf("SampleN returned %d values, want 17", len(xs))
	}
	lo, _ := MustExponential(1).Support()
	for _, x := range xs {
		if x < lo {
			t.Errorf("sample %g below support", x)
		}
	}
}

func TestConstructorsReject(t *testing.T) {
	bad := []func() error{
		func() error { _, err := NewExponential(0); return err },
		func() error { _, err := NewExponential(-2); return err },
		func() error { _, err := NewWeibull(1, 0); return err },
		func() error { _, err := NewWeibull(-1, 1); return err },
		func() error { _, err := NewGamma(0, 1); return err },
		func() error { _, err := NewLogNormal(1, 0); return err },
		func() error { _, err := NewLogNormal(math.NaN(), 1); return err },
		func() error { _, err := NewTruncatedNormal(0, -1, 0); return err },
		func() error { _, err := NewPareto(1, 2); return err }, // needs α>2
		func() error { _, err := NewUniform(5, 5); return err },
		func() error { _, err := NewUniform(-1, 5); return err },
		func() error { _, err := NewBeta(0, 1); return err },
		func() error { _, err := NewBoundedPareto(2, 1, 3); return err },
		func() error { _, err := NewBoundedPareto(1, 20, 1); return err },
		func() error { _, err := NewBoundedPareto(1, 20, 2); return err },
	}
	for i, f := range bad {
		if err := f(); err == nil {
			t.Errorf("constructor case %d accepted invalid parameters", i)
		}
	}
}

func TestNamesIncludeParameters(t *testing.T) {
	for _, d := range all() {
		name := d.Name()
		if !strings.Contains(name, "(") || !strings.Contains(name, ")") {
			t.Errorf("name %q lacks parameter list", name)
		}
	}
	if got := len(Table1Names()); got != len(Table1()) {
		t.Errorf("Table1Names has %d entries, Table1 has %d", got, len(Table1()))
	}
}

func TestMedianIsHalfQuantile(t *testing.T) {
	for _, d := range all() {
		m := Median(d)
		if math.Abs(d.CDF(m)-0.5) > 1e-7 {
			t.Errorf("%s: CDF(median) = %g", d.Name(), d.CDF(m))
		}
	}
}

func TestSecondMomentConsistency(t *testing.T) {
	for _, d := range all() {
		want := d.Variance() + d.Mean()*d.Mean()
		if got := SecondMoment(d); !relClose(got, want, 1e-12) {
			t.Errorf("%s: SecondMoment = %g, want %g", d.Name(), got, want)
		}
	}
}

// TestNaNPropagation: feeding NaN into any distribution method must
// yield NaN (or a harmless constant), never a wrong finite answer or a
// panic.
func TestNaNPropagation(t *testing.T) {
	for _, d := range all() {
		for name, v := range map[string]float64{
			"PDF": d.PDF(math.NaN()), "CDF": d.CDF(math.NaN()),
			"Survival": d.Survival(math.NaN()), "Quantile": d.Quantile(math.NaN()),
		} {
			if !math.IsNaN(v) && !(v == 0 || v == 1) {
				t.Errorf("%s: %s(NaN) = %g, want NaN or a boundary constant", d.Name(), name, v)
			}
		}
	}
}

// TestSurvivalMonotoneNonincreasing across random probe points.
func TestSurvivalMonotoneNonincreasing(t *testing.T) {
	r := rng.New(99)
	for _, d := range all() {
		lo, hi := d.Support()
		if math.IsInf(hi, 1) {
			hi = d.Quantile(0.9999)
		}
		prevX, prevS := lo-1, 1.0
		// Sorted random probes.
		probes := make([]float64, 200)
		for i := range probes {
			probes[i] = lo + (hi-lo)*r.Float64()
		}
		sort.Float64s(probes)
		for _, x := range probes {
			s := d.Survival(x)
			if s > prevS+1e-12 {
				t.Fatalf("%s: survival rose from %g@%g to %g@%g", d.Name(), prevS, prevX, s, x)
			}
			if s < 0 || s > 1 {
				t.Fatalf("%s: survival %g out of [0,1]", d.Name(), s)
			}
			prevX, prevS = x, s
		}
	}
}

// TestNegativeInputsAreOutsideSupport: execution times are nonnegative;
// all mass lies at or above the support's low end.
func TestNegativeInputsAreOutsideSupport(t *testing.T) {
	for _, d := range all() {
		if got := d.CDF(-1); got != 0 {
			t.Errorf("%s: CDF(-1) = %g", d.Name(), got)
		}
		if got := d.PDF(-1); got != 0 {
			t.Errorf("%s: PDF(-1) = %g", d.Name(), got)
		}
		if got := d.Survival(-1); got != 1 {
			t.Errorf("%s: Survival(-1) = %g", d.Name(), got)
		}
	}
}
