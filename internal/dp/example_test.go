package dp_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dp"
)

// ExampleSolve computes the optimal reservation sequence for a discrete
// law (Theorem 5): with 90% of jobs lasting 1 and 10% lasting 10, it is
// cheaper to try a short slot first.
func ExampleSolve() {
	d, _ := dist.NewDiscrete([]float64{1, 10}, []float64{0.9, 0.1})
	res, _ := dp.Solve(d, core.ReservationOnly)
	fmt.Printf("sequence %v, expected cost %.1f\n", res.Sequence, res.ExpectedCost)
	// Output:
	// sequence [1 10], expected cost 2.0
}
