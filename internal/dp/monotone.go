// monotone.go implements the sub-quadratic inner argmin of the §4.2 DP.
//
// The choice matrix of Solve is, for a conditional start i and a
// candidate stopping index j >= i,
//
//	M[i][j] = α·v_j + γ + (β·(W[i]-W[j+1]) + S[j+1]·(β·v_j + E[j+1]))/S[i]
//	        = c_i + a_j + b_j·x_i,
//
// with x_i = 1/S[i], c_i = γ + β·W[i]/S[i], a_j = α·v_j and
// b_j = β·(S[j+1]·v_j - W[j+1]) + S[j+1]·E[j+1]: every column is an
// affine function of x_i. Because S is a nonincreasing suffix sum, x_i
// is nondecreasing in i, so the difference M[i][j'] - M[i][j] of two
// columns j < j' is monotone in i. In exact arithmetic the slopes b_j
// are nonincreasing in j (larger j shifts mass from the β·v_j tail term
// into the summation), which yields the strict-beat persistence
// property
//
//	j < j', i < i':  M[i][j'] < M[i][j]  ⇒  M[i'][j'] < M[i'][j],
//
// i.e. total monotonicity of the lower-triangular choice matrix. Its
// standard consequence: the smallest-j argmin of row i is nondecreasing
// in i, which is exactly what the divide-and-conquer and SMAWK row
// optimizers below exploit. The same structure holds for the budgeted
// recursion of SolveMaxAttempts (E replaced by the previous budget row,
// which is finite wherever it is read — the k=0 infeasibility row is
// consumed only by the closed-form k=1 sweep).
//
// Floating point can violate the exact-arithmetic argument (the slopes
// are computed, not assigned), so the fast path never trusts it
// blindly: after a fast solve, an O(n) spot-check gate re-derives a
// sample of cross-row optimality and quadrangle inequalities with the
// exact entry expression and falls back to the O(n²) reference scan on
// the first violation. A debug mode (Config.Verify or the -dpverify
// flag via SetVerifyRows) re-scans every row instead.
//
// Tie-break contract: all engines reproduce bestChoice/bestChoiceBudget
// bit for bit — the smallest j among minimizers, with every evaluated
// entry computed by the identical IEEE-754 expression (entryCost /
// entryCostBudget, shared with the scan). Within one batch of columns
// the engines scan with a strict <, keeping the leftmost winner; across
// batches the divide-and-conquer driver visits column ranges in
// decreasing order, so combining with <= (a later, smaller-j batch wins
// ties) restores the global smallest-j winner.
package dp

import (
	"math"
	"sync/atomic"
)

// Algorithm selects the inner argmin engine of Solve and
// SolveMaxAttempts.
type Algorithm int

const (
	// AlgoAuto uses the SMAWK fast path (with the monotonicity gate)
	// above autoThreshold support points and the plain scan below it,
	// where the quadratic constant is already negligible.
	AlgoAuto Algorithm = iota
	// AlgoScan is the reference O(n²) row scan of the seed
	// implementation (bestChoice / bestChoiceBudget). It is retained
	// verbatim as the fallback target and the benchmark baseline.
	AlgoScan
	// AlgoDC is the divide-and-conquer row optimizer: O(n log² n) per
	// solve via the offline driver, with no per-column state beyond the
	// recursion.
	AlgoDC
	// AlgoSMAWK is the SMAWK totally-monotone matrix searcher applied to
	// the driver's rectangular merges: O(n log n) per solve.
	AlgoSMAWK
)

// String implements fmt.Stringer (test and benchmark labels).
func (a Algorithm) String() string {
	switch a {
	case AlgoScan:
		return "scan"
	case AlgoDC:
		return "dc"
	case AlgoSMAWK:
		return "smawk"
	default:
		return "auto"
	}
}

// Config tunes SolveWith and SolveMaxAttemptsWith. The zero value —
// AlgoAuto without per-row verification — is what Solve and
// SolveMaxAttempts use and is always safe: fast-path answers are gated
// and fall back to the exact scan on any monotonicity violation.
type Config struct {
	// Algo selects the argmin engine.
	Algo Algorithm
	// Verify additionally cross-checks every fast-path row against a
	// full reference scan (O(n²), debug only). Any mismatch — value or
	// winning index — discards the fast result and falls back. The
	// package-level SetVerifyRows switch (the -dpverify flag) forces
	// this for every solve in the process.
	Verify bool
}

// autoThreshold is the support size below which AlgoAuto keeps the
// plain scan: the fast path's recursion and gate overhead only pay for
// themselves once the O(n²) scan dominates.
const autoThreshold = 128

// engine resolves the configured algorithm for a support of size n.
func (c Config) engine(n int) Algorithm {
	if c.Algo == AlgoAuto {
		if n < autoThreshold {
			return AlgoScan
		}
		return AlgoSMAWK
	}
	return c.Algo
}

// verify reports whether per-row verification is in force.
func (c Config) verify() bool { return c.Verify || debugVerify.Load() }

var (
	debugVerify   atomic.Bool
	fallbackCount atomic.Uint64
)

// SetVerifyRows toggles the process-wide debug mode behind the
// -dpverify flag of cmd/serve and cmd/experiments: every fast-path
// solve cross-checks every row against the reference scan and falls
// back on any mismatch. Results are unchanged either way (the fallback
// is the exact scan); the switch exists to flush out monotonicity
// violations the O(n) gate's sampling might miss.
func SetVerifyRows(v bool) { debugVerify.Store(v) }

// Fallbacks returns the cumulative number of fast-path solves (or
// budgeted row sweeps) that the gate or verifier abandoned to the
// reference scan. Diagnostic: steadily increasing counts mean the
// instance family violates total monotonicity and AlgoScan would be
// cheaper.
func Fallbacks() uint64 { return fallbackCount.Load() }

// monotoneSolver carries one argmin problem over a lower-triangular
// choice matrix: entries at(i, j) for rows i with positive conditional
// mass and columns j in [i, n). The at and commit functions are plain
// struct fields (not an interface) so tests can inject synthetic
// matrices — real instances empirically never violate total
// monotonicity, so the gate's fallback is only reachable through a
// synthetic seam — while the engines stay monomorphic and
// allocation-free.
//
// All scratch is preallocated by newMonotoneSolver; run, the engines
// and the gate allocate nothing.
//
//repro:hotpath
type monotoneSolver struct {
	// at evaluates one matrix entry with the exact scan expression.
	at func(i, j int) float64
	// commit finalizes row i once every column batch has been folded:
	// for Solve it publishes E[i] (read back through at by merges of
	// earlier rows) and choice[i].
	commit func(i int)

	n    int
	rows []int  // rows with positive conditional mass, ascending
	act  []bool // act[i] reports whether i is in rows

	// Running per-row combine across column batches (+Inf / -1 until
	// the first batch lands). After run returns, best/bestJ hold the
	// final row minima — the gate reads them directly.
	best  []float64
	bestJ []int

	// SMAWK scratch: batchVal/batchCol hold each row's current-batch
	// minimum (indexed by position in rows); arena backs the materialized
	// column list and the per-level reduced column stacks.
	batchVal []float64
	batchCol []int
	arena    []int
}

// newMonotoneSolver allocates a solver for an n-point support. The
// caller fills rows/act and sets at/commit (per budget sweep, for the
// budgeted DP) and calls reset before each run.
func newMonotoneSolver(n int) *monotoneSolver {
	return &monotoneSolver{
		n:        n,
		rows:     make([]int, 0, n),
		act:      make([]bool, n),
		best:     make([]float64, n),
		bestJ:    make([]int, n),
		batchVal: make([]float64, n),
		batchCol: make([]int, n),
		// One column materialization (≤ n) plus the geometric stack of
		// reduced column lists (≤ 2n) for the deepest SMAWK call.
		arena: make([]int, 3*n+8),
	}
}

// reset clears the per-run combine state.
func (s *monotoneSolver) reset() {
	for i := 0; i < s.n; i++ {
		s.best[i] = math.Inf(1)
		s.bestJ[i] = -1
	}
}

// run executes the fast path with the chosen engine, gates the result,
// and reports whether it stands. On false the caller must recompute
// with the reference scan; best/bestJ (and anything commit published)
// hold unusable partial state.
func (s *monotoneSolver) run(algo Algorithm, verify bool) bool {
	s.cdq(0, s.n, algo)
	if !s.gate() || (verify && !s.verifyAll()) {
		fallbackCount.Add(1)
		return false
	}
	return true
}

// cdq is the offline divide-and-conquer driver. Invariant: every row
// >= hi is already committed, so at(i, j) is evaluable for any j in
// [mid, hi) once cdq(mid, hi) returns. The recursion first finishes the
// right half, then folds the rectangular batch rows [lo, mid) × cols
// [mid, hi) with the selected engine, then descends into the left half;
// a leaf folds its own diagonal column and commits. Each row therefore
// receives its column batches in decreasing column order, ending with
// j = i — the order the <= combine in foldRow relies on for the
// smallest-j tie-break.
func (s *monotoneSolver) cdq(lo, hi int, algo Algorithm) {
	if hi-lo == 1 {
		if s.act[lo] {
			s.foldRow(lo, s.at(lo, lo), lo)
			s.commit(lo)
		}
		return
	}
	mid := (lo + hi) / 2
	s.cdq(mid, hi, algo)
	rlo := lowerBound(s.rows, lo)
	rhi := lowerBound(s.rows, mid)
	if rlo < rhi {
		if algo == AlgoSMAWK {
			s.smawkBatch(rlo, rhi, mid, hi)
		} else {
			s.dcBatch(rlo, rhi, mid, hi)
		}
	}
	s.cdq(lo, mid, algo)
}

// foldRow merges one batch minimum (v at column j) into row i's running
// winner. Batches arrive in decreasing column ranges, so <= lets the
// later — smaller-j — batch take ties, reproducing the scan's leftmost
// winner; the value itself is bit-identical either way (both sides of a
// tie are the same float).
func (s *monotoneSolver) foldRow(i int, v float64, j int) {
	if v <= s.best[i] {
		s.best[i] = v
		s.bestJ[i] = j
	}
}

// dcBatch computes the batch row minima of active rows [rlo, rhi)
// (positions in s.rows) over columns [clo, chi) by divide and conquer:
// scan the middle row in full, then recurse left of its argmin and
// right of it. Correct under monotone smallest-j argmins (the
// consequence of total monotonicity the gate checks); O((R + C)·log R)
// per batch.
func (s *monotoneSolver) dcBatch(rlo, rhi, clo, chi int) {
	if rlo >= rhi || clo >= chi {
		return
	}
	rmid := (rlo + rhi) / 2
	i := s.rows[rmid]
	bv := math.Inf(1)
	bj := -1
	for j := clo; j < chi; j++ {
		if c := s.at(i, j); c < bv {
			bv, bj = c, j
		}
	}
	s.foldRow(i, bv, bj)
	s.dcBatch(rlo, rmid, clo, bj+1)
	s.dcBatch(rmid+1, rhi, bj, chi)
}

// smawkBatch computes the same batch row minima with the SMAWK
// algorithm: O(R + C) entry evaluations per batch. The column range is
// materialized into the arena; smawkRec then owns the rest of the
// arena for its per-level reduced column lists.
func (s *monotoneSolver) smawkBatch(rlo, rhi, clo, chi int) {
	w := 0
	for c := clo; c < chi; c++ {
		s.arena[w] = c
		w++
	}
	s.smawkRec(rlo, 1, rhi-rlo, s.arena[:w], s.arena[w:])
	for p := rlo; p < rhi; p++ {
		s.foldRow(s.rows[p], s.batchVal[p], s.batchCol[p])
	}
}

// smawkRec solves the row-minima problem for the rcount rows at
// positions rbase, rbase+rstride, ... of s.rows against the given
// column list, writing each row's leftmost batch minimum into
// batchVal/batchCol. arena provides scratch for the reduced column
// list; deeper levels use what remains beyond it.
//
// REDUCE keeps at most rcount columns: a new column pops the stack top
// only when it strictly beats it on the top's diagonal row (ties keep
// the earlier, smaller column), and is dropped when the stack is full
// and it cannot beat the bottom row's entry — by strict-beat
// persistence it then loses (or ties, which the leftmost rule resolves
// to the incumbent) on every stacked row. INTERPOLATE solves the odd
// positions recursively and scans each even row between its neighbours'
// argmin columns with a strict <, which yields the leftmost winner
// because leftmost argmin columns are nondecreasing across rows.
func (s *monotoneSolver) smawkRec(rbase, rstride, rcount int, cols, arena []int) {
	if rcount <= 0 {
		return
	}
	// REDUCE.
	rlen := 0
	for ci := 0; ci < len(cols); ci++ {
		c := cols[ci]
		for rlen > 0 {
			p := rlen - 1
			i := s.rows[rbase+p*rstride]
			if s.at(i, arena[p]) > s.at(i, c) {
				rlen--
			} else {
				break
			}
		}
		if rlen < rcount {
			arena[rlen] = c
			rlen++
		}
	}
	red := arena[:rlen]
	if rcount == 1 {
		i := s.rows[rbase]
		bv := math.Inf(1)
		bc := -1
		for ci := 0; ci < rlen; ci++ {
			if v := s.at(i, red[ci]); v < bv {
				bv, bc = v, red[ci]
			}
		}
		s.batchVal[rbase] = bv
		s.batchCol[rbase] = bc
		return
	}
	s.smawkRec(rbase+rstride, 2*rstride, rcount/2, red, arena[rlen:])
	// INTERPOLATE even positions. ci walks the reduced columns once:
	// row p scans from its predecessor's argmin column (where ci was
	// left) through its successor's, inclusive.
	ci := 0
	for p := 0; p < rcount; p += 2 {
		pos := rbase + p*rstride
		i := s.rows[pos]
		hiCol := red[rlen-1]
		if p+1 < rcount {
			hiCol = s.batchCol[rbase+(p+1)*rstride]
		}
		bv := math.Inf(1)
		bc := -1
		for {
			c := red[ci]
			if v := s.at(i, c); v < bv {
				bv, bc = v, c
			}
			if c >= hiCol || ci+1 >= rlen {
				break
			}
			ci++
		}
		s.batchVal[pos] = bv
		s.batchCol[pos] = bc
	}
}

// gate spot-checks the fast-path answer with O(n) extra entry
// evaluations and reports whether it is consistent with the reference
// scan's contract. Every check is sound: a failure proves the fast
// result differs from the scan (wrong value, wrong index, or a
// tie broken away from the smallest j), so a fallback is forced; a
// pass is strong evidence, not proof — Config.Verify upgrades it to a
// full per-row comparison.
//
// Checked, for geometrically strided pairs of active rows i < i2 with
// winners (j, j2):
//   - argmin monotonicity: j <= j2 (total monotonicity's consequence);
//   - cross-row optimality, the 2×2 quadrangle of the claimed winners:
//     column j2 must not beat (or, left of it, tie) row i's winner, and
//     column j — when feasible for row i2 — must not beat or tie row
//     i2's winner (a tie there means the scan's smallest-j rule would
//     have picked j over j2).
func (s *monotoneSolver) gate() bool {
	nr := len(s.rows)
	for st := 1; st < nr; st *= 2 {
		for p := 0; p+st < nr; p += st {
			if !s.checkPair(p, p+st) {
				return false
			}
		}
	}
	return true
}

// checkPair validates the winners of the active rows at positions p1 <
// p2 against each other. See gate.
func (s *monotoneSolver) checkPair(p1, p2 int) bool {
	i1, i2 := s.rows[p1], s.rows[p2]
	j1, j2 := s.bestJ[i1], s.bestJ[i2]
	if j1 < i1 || j2 < i2 || j1 > j2 {
		return false
	}
	if j2 > j1 {
		if s.at(i1, j2) < s.best[i1] {
			return false // row i1 prefers the later winner: wrong argmin
		}
		if j1 >= i2 && s.at(i2, j1) <= s.best[i2] {
			return false // row i2 prefers (or ties) the earlier column
		}
	}
	return true
}

// verifyAll is the -dpverify mode: every active row is re-scanned in
// full with the exact entry expression, and the fast answer must match
// bit for bit — value and winning index.
func (s *monotoneSolver) verifyAll() bool {
	for _, i := range s.rows {
		bv := math.Inf(1)
		bj := -1
		for j := i; j < s.n; j++ {
			if c := s.at(i, j); c < bv {
				bv, bj = c, j
			}
		}
		//lint:ignore floatcmp the fast path must agree with the scan bitwise
		if bv != s.best[i] || bj != s.bestJ[i] {
			return false
		}
	}
	return true
}

// lowerBound returns the first index k with a[k] >= x, or len(a).
func lowerBound(a []int, x int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
