package dp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/rng"
)

// engineAlgos are the fast engines under test; AlgoScan is the
// reference they must match bit for bit.
var engineAlgos = []Algorithm{AlgoDC, AlgoSMAWK}

// testModels spans the three cost-model families the experiments use.
var testModels = []core.CostModel{
	core.ReservationOnly,
	{Alpha: 1, Beta: 0.3, Gamma: 0.5},
	{Alpha: 0.95, Beta: 1, Gamma: 1.05},
}

// randomLaw draws a discrete law with n support points: strictly
// increasing values, and — depending on the seed — zero-mass interior
// points, zero-mass trailing points, and a truncated (1-ε) total mass,
// the shapes truncated discretizations produce.
func randomLaw(t *testing.T, r *rng.Source, n int) *dist.Discrete {
	t.Helper()
	vals := make([]float64, n)
	probs := make([]float64, n)
	cur := 0.0
	for i := range vals {
		cur += 0.1 + 3*r.Float64()
		vals[i] = cur
		probs[i] = 0.05 + r.Float64()
	}
	// Zero-mass interior points (law conditioned past them is still
	// well defined) and, sometimes, a zero-mass tail.
	if n >= 3 && r.Float64() < 0.5 {
		probs[1+int(r.Float64()*float64(n-2))] = 0
	}
	if n >= 2 && r.Float64() < 0.3 {
		probs[n-1] = 0
		if n >= 4 && r.Float64() < 0.5 {
			probs[n-2] = 0
		}
	}
	tot := 0.0
	for _, p := range probs {
		tot += p
	}
	if tot <= 0 {
		probs[0] = 1
		tot = 1
	}
	mass := 1.0
	if r.Float64() < 0.33 {
		mass = 0.95 // truncated discretization: total mass 1-ε
	}
	for i := range probs {
		probs[i] = probs[i] / tot * mass
	}
	d, err := dist.NewDiscrete(vals, probs)
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	return d
}

// mustSolveWith is SolveWith with fatal error handling.
func mustSolveWith(t *testing.T, d *dist.Discrete, m core.CostModel, cfg Config) Result {
	t.Helper()
	r, err := SolveWith(d, m, cfg)
	if err != nil {
		t.Fatalf("SolveWith(%+v): %v", cfg, err)
	}
	return r
}

// assertBitIdentical fails unless two results agree bitwise: expected
// cost, sequence values and per-state choices.
func assertBitIdentical(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.ExpectedCost != want.ExpectedCost { //lint:ignore floatcmp identical DP arithmetic must agree bitwise
		t.Errorf("%s: cost %.17g != %.17g", label, got.ExpectedCost, want.ExpectedCost)
	}
	if len(got.Sequence) != len(want.Sequence) {
		t.Fatalf("%s: sequence %v != %v", label, got.Sequence, want.Sequence)
	}
	for i := range got.Sequence {
		if got.Sequence[i] != want.Sequence[i] { //lint:ignore floatcmp values are copied support points
			t.Errorf("%s: sequence[%d] = %g != %g", label, i, got.Sequence[i], want.Sequence[i])
		}
	}
	if len(got.Choices) != len(want.Choices) {
		t.Fatalf("%s: choices %v != %v", label, got.Choices, want.Choices)
	}
	for i := range got.Choices {
		if got.Choices[i] != want.Choices[i] {
			t.Errorf("%s: choices[%d] = %d != %d", label, i, got.Choices[i], want.Choices[i])
		}
	}
}

// TestEnginesMatchOracleSmallLaws is the seeded property sweep of the
// fast engines against the exponential oracle: random laws with n <= 14
// support points — including zero-mass interior/trailing points and
// truncated total mass — across the three cost-model families. Every
// engine (with per-row verification forced on) must agree with the
// default Solve bit for bit, and both must match the oracle's optimum.
func TestEnginesMatchOracleSmallLaws(t *testing.T) {
	for seed := uint64(0); seed < 120; seed++ {
		r := rng.New(seed)
		n := 1 + int(r.Float64()*14)
		d := randomLaw(t, r, n)
		for mi, m := range testModels {
			want := mustSolveWith(t, d, m, Config{Algo: AlgoScan})
			oracle, err := SolveBruteForce(d, m)
			if err != nil {
				t.Fatalf("seed %d: oracle: %v", seed, err)
			}
			if math.Abs(want.ExpectedCost-oracle.ExpectedCost) > 1e-9*(1+oracle.ExpectedCost) {
				t.Errorf("seed %d model %d: scan cost %g != oracle %g", seed, mi, want.ExpectedCost, oracle.ExpectedCost)
			}
			for _, algo := range engineAlgos {
				got := mustSolveWith(t, d, m, Config{Algo: algo, Verify: true})
				assertBitIdentical(t, fmt.Sprintf("seed %d model %d %v", seed, mi, algo), got, want)
			}
		}
	}
}

// TestEnginesMatchScanLargeLaws pins the engines to the reference scan
// on laws big enough to exercise deep recursion, including discretized
// lognormals (the experiment workload) and laws with zero-mass points.
func TestEnginesMatchScanLargeLaws(t *testing.T) {
	laws := []*dist.Discrete{}
	for _, n := range []int{130, 257, 512, 1000} {
		laws = append(laws, randomLaw(t, rng.New(uint64(n)), n))
	}
	ln := dist.MustLogNormal(3, 0.5)
	for _, n := range []int{256, 1000} {
		dd, err := discretize.Discretize(ln, n, 1e-7, discretize.EqualProbability)
		if err != nil {
			t.Fatal(err)
		}
		laws = append(laws, dd)
	}
	for li, d := range laws {
		for mi, m := range testModels {
			want := mustSolveWith(t, d, m, Config{Algo: AlgoScan})
			auto := mustSolveWith(t, d, m, Config{})
			assertBitIdentical(t, fmt.Sprintf("law %d model %d auto", li, mi), auto, want)
			for _, algo := range engineAlgos {
				got := mustSolveWith(t, d, m, Config{Algo: algo})
				assertBitIdentical(t, fmt.Sprintf("law %d model %d %v", li, mi, algo), got, want)
			}
		}
	}
}

// TestBudgetedEnginesMatchScan pins SolveMaxAttemptsWith across engines
// and budgets to the reference scan, bit for bit.
func TestBudgetedEnginesMatchScan(t *testing.T) {
	laws := []*dist.Discrete{
		randomLaw(t, rng.New(7), 300),
		randomLaw(t, rng.New(11), 150),
	}
	for li, d := range laws {
		n := d.Len()
		for mi, m := range testModels {
			for _, k := range []int{2, 3, 8, n} {
				want, err := SolveMaxAttemptsWith(d, m, k, Config{Algo: AlgoScan})
				if err != nil {
					t.Fatalf("law %d K=%d: %v", li, k, err)
				}
				for _, algo := range engineAlgos {
					got, err := SolveMaxAttemptsWith(d, m, k, Config{Algo: algo, Verify: true})
					if err != nil {
						t.Fatalf("law %d K=%d %v: %v", li, k, algo, err)
					}
					assertBitIdentical(t, fmt.Sprintf("law %d model %d K=%d %v", li, mi, k, algo), got, want)
				}
			}
		}
	}
}

// TestSetVerifyRowsMode drives the -dpverify debug switch end to end:
// with the process-wide mode on, the default Solve must still agree
// with the scan bitwise (every row cross-checked).
func TestSetVerifyRowsMode(t *testing.T) {
	SetVerifyRows(true)
	defer SetVerifyRows(false)
	d := randomLaw(t, rng.New(99), 400)
	for _, m := range testModels {
		want := mustSolveWith(t, d, m, Config{Algo: AlgoScan})
		got := mustSolveWith(t, d, m, Config{})
		assertBitIdentical(t, "dpverify", got, want)
	}
}

// syntheticSolver builds a monotoneSolver over an explicit entry
// function with all n rows active, committing into the returned E/J
// arrays — the injection seam for matrices real instances cannot
// produce.
func syntheticSolver(n int, at func(i, j int) float64) (*monotoneSolver, []float64, []int) {
	mx := newMonotoneSolver(n)
	for i := 0; i < n; i++ {
		mx.rows = append(mx.rows, i)
		mx.act[i] = true
	}
	E := make([]float64, n)
	J := make([]int, n)
	mx.at = at
	mx.commit = func(i int) { E[i], J[i] = mx.best[i], mx.bestJ[i] }
	mx.reset()
	return mx, E, J
}

// scanRows is the reference row scan over an explicit entry function:
// strict <, ascending j, so the smallest-j winner.
func scanRows(n int, at func(i, j int) float64) ([]float64, []int) {
	E := make([]float64, n)
	J := make([]int, n)
	for i := 0; i < n; i++ {
		bv, bj := math.Inf(1), -1
		for j := i; j < n; j++ {
			if c := at(i, j); c < bv {
				bv, bj = c, j
			}
		}
		E[i], J[i] = bv, bj
	}
	return E, J
}

// TestEnginesOnSyntheticTotallyMonotone exercises the engines on
// synthetic lines-family matrices M[i][j] = a_j + b_j·x_i with integer
// coefficients (exact arithmetic, so total monotonicity holds exactly)
// and nonincreasing slopes, including duplicated columns that force
// ties — the smallest-j tie-break must match the scan exactly.
func TestEnginesOnSyntheticTotallyMonotone(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 17, 40, 200}
	for seed := uint64(0); seed < 30; seed++ {
		r := rng.New(1000 + seed)
		for _, n := range sizes {
			a := make([]float64, n)
			b := make([]float64, n)
			slope := float64(1024 + int(r.Float64()*64))
			for j := 0; j < n; j++ {
				a[j] = float64(int(r.Float64() * 4096))
				slope -= float64(int(r.Float64() * 40))
				b[j] = slope
				if j > 0 && r.Float64() < 0.2 {
					a[j], b[j] = a[j-1], b[j-1] // duplicate column: forced tie
				}
			}
			x := make([]float64, n)
			cur := 0.0
			for i := 0; i < n; i++ {
				cur += float64(int(r.Float64() * 40))
				x[i] = cur
			}
			at := func(i, j int) float64 { return a[j] + b[j]*x[i] }
			wantE, wantJ := scanRows(n, at)
			for _, algo := range engineAlgos {
				mx, E, J := syntheticSolver(n, at)
				if !mx.run(algo, true) {
					t.Fatalf("seed %d n=%d %v: gate tripped on an exactly monotone matrix", seed, n, algo)
				}
				for i := 0; i < n; i++ {
					//lint:ignore floatcmp exact integer arithmetic must agree bitwise
					if E[i] != wantE[i] || J[i] != wantJ[i] {
						t.Fatalf("seed %d n=%d %v row %d: got (%g,%d) want (%g,%d)",
							seed, n, algo, i, E[i], J[i], wantE[i], wantJ[i])
					}
				}
			}
		}
	}
}

// TestGateTripsAndFallbackIsExact is the non-monotone regression test:
// a matrix whose row argmins deliberately decrease (argmin near n-i)
// violates total monotonicity, so the gate must refuse the fast result
// and the production fallback — rerunning the reference scan — must
// return the exact row optima.
func TestGateTripsAndFallbackIsExact(t *testing.T) {
	const n = 64
	at := func(i, j int) float64 { return math.Abs(float64(j - (n - 1 - i))) }
	wantE, wantJ := scanRows(n, at)
	for _, algo := range engineAlgos {
		before := Fallbacks()
		mx, E, J := syntheticSolver(n, at)
		if mx.run(algo, false) {
			t.Fatalf("%v: gate accepted a non-monotone matrix", algo)
		}
		if Fallbacks() != before+1 {
			t.Errorf("%v: fallback counter not incremented", algo)
		}
		// The production fallback path: discard the fast state and rerun
		// the reference scan (what SolveWith/SolveMaxAttemptsWith do).
		for i := 0; i < n; i++ {
			bv, bj := math.Inf(1), -1
			for j := i; j < n; j++ {
				if c := at(i, j); c < bv {
					bv, bj = c, j
				}
			}
			E[i], J[i] = bv, bj
		}
		for i := 0; i < n; i++ {
			//lint:ignore floatcmp the fallback is the scan, so exact equality is the contract
			if E[i] != wantE[i] || J[i] != wantJ[i] {
				t.Fatalf("%v row %d: fallback (%g,%d) != scan (%g,%d)", algo, i, E[i], J[i], wantE[i], wantJ[i])
			}
		}
	}
}

// TestVerifyAllCatchesCorruptedRow: the -dpverify cross-check must
// reject a fast result whose stored winner was tampered with, even when
// the cheap gate cannot see the difference.
func TestVerifyAllCatchesCorruptedRow(t *testing.T) {
	d := randomLaw(t, rng.New(5), 200)
	m := testModels[1]
	// Rebuild the solver state by hand (white box) to tamper with it.
	n := d.Len()
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}
	S := make([]float64, n+1)
	W := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		S[i] = S[i+1] + probs[i]
		W[i] = W[i+1] + probs[i]*vals[i]
	}
	E := make([]float64, n+1)
	choice := make([]int, n+1)
	mx := newMonotoneSolver(n)
	for i := 0; i < n; i++ {
		if S[i] > 0 {
			mx.rows = append(mx.rows, i)
			mx.act[i] = true
		}
	}
	mx.at = func(i, j int) float64 { return entryCost(m, vals, S, W, E, i, j) }
	mx.commit = func(i int) { E[i], choice[i] = mx.best[i], mx.bestJ[i] }
	mx.reset()
	if !mx.run(AlgoSMAWK, true) {
		t.Fatal("fast path rejected a real instance")
	}
	// Corrupt one row's stored value by an ulp-scale nudge.
	mid := mx.rows[len(mx.rows)/2]
	mx.best[mid] = math.Nextafter(mx.best[mid], math.Inf(1))
	if mx.verifyAll() {
		t.Error("verifyAll accepted a corrupted row value")
	}
}

// TestDPRowKernelAllocsZero pins the fast-path row kernels to zero
// allocations per solve pass: scratch is preallocated by
// newMonotoneSolver, and the engines, gate and verifier reuse it.
func TestDPRowKernelAllocsZero(t *testing.T) {
	d := randomLaw(t, rng.New(21), 512)
	m := testModels[1]
	n := d.Len()
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}
	S := make([]float64, n+1)
	W := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		S[i] = S[i+1] + probs[i]
		W[i] = W[i+1] + probs[i]*vals[i]
	}
	E := make([]float64, n+1)
	choice := make([]int, n+1)
	mx := newMonotoneSolver(n)
	for i := 0; i < n; i++ {
		if S[i] > 0 {
			mx.rows = append(mx.rows, i)
			mx.act[i] = true
		}
	}
	mx.at = func(i, j int) float64 { return entryCost(m, vals, S, W, E, i, j) }
	mx.commit = func(i int) { E[i], choice[i] = mx.best[i], mx.bestJ[i] }
	for _, algo := range engineAlgos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			run := func() {
				mx.reset()
				mx.cdq(0, n, algo)
				if !mx.gate() {
					t.Fatal("gate tripped on a real instance")
				}
			}
			run() // warm-up outside the measurement
			if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
				t.Errorf("%v row kernel: %v allocs/run, want 0", algo, allocs)
			}
		})
	}
	t.Run("verify", func(t *testing.T) {
		mx.reset()
		mx.cdq(0, n, AlgoSMAWK)
		if allocs := testing.AllocsPerRun(10, func() {
			if !mx.verifyAll() {
				t.Fatal("verifyAll rejected a consistent solve")
			}
		}); allocs != 0 {
			t.Errorf("verifyAll: %v allocs/run, want 0", allocs)
		}
	})
}
