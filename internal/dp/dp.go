// Package dp implements the optimal dynamic programming algorithm for
// discrete execution-time distributions (Theorem 5 of the paper). For
// X ~ (v_i, f_i)_{i=1..n} it computes, in O(n²), the reservation
// sequence minimizing the expected cost
//
//	E*_i = min_{i<=j<=n} ( α·v_j + γ + Σ_{k=i..j} f'_k·β·v_k
//	                       + (Σ_{k>j} f'_k)·(β·v_j + E*_{j+1}) )
//
// where f' is the law conditioned on X >= v_i. The optimal sequence is
// recovered by backtracking the minimizing j at each step; it always
// ends at v_n.
package dp

import (
	"errors"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
)

// Result is the output of Solve.
type Result struct {
	// Sequence is the optimal reservation sequence (a strictly
	// increasing subset of the support ending at v_n).
	Sequence []float64
	// ExpectedCost is the optimal expected cost E*_1 under the
	// (normalized) discrete law.
	ExpectedCost float64
	// Choices[i] is the index j chosen when the conditional law starts
	// at index i (diagnostic; -1 where unreachable).
	Choices []int
}

// Solve computes the optimal reservation sequence for a discrete
// distribution under the given cost model. Probabilities are
// renormalized to total mass 1 first (relevant for truncated
// discretizations whose mass is 1-ε).
func Solve(d *dist.Discrete, m core.CostModel) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if d == nil || d.Len() == 0 {
		return Result{}, errors.New("dp: empty distribution")
	}
	n := d.Len()
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()

	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}

	// Suffix sums: S[i] = Σ_{k>=i} f_k, W[i] = Σ_{k>=i} f_k v_k
	// (0-based; S[n] = W[n] = 0).
	S := make([]float64, n+1)
	W := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		S[i] = S[i+1] + probs[i]
		W[i] = W[i+1] + probs[i]*vals[i]
	}

	E := make([]float64, n+1) // E[i] = E*_i; E[n] = 0
	choice := make([]int, n+1)
	for i := range choice {
		choice[i] = -1
	}

	for i := n - 1; i >= 0; i-- {
		if S[i] <= 0 {
			// No mass at or above v_i: never reached; cost 0.
			E[i] = 0
			continue
		}
		E[i], choice[i] = bestChoice(m, vals, S, W, E, i, n)
	}

	// Backtrack the sequence of chosen reservations.
	var seq []float64
	for i := 0; i < n; {
		j := choice[i]
		if j < 0 {
			break
		}
		seq = append(seq, vals[j])
		i = j + 1
	}
	return Result{Sequence: seq, ExpectedCost: E[0], Choices: choice}, nil
}

// SolveBruteForce computes the optimal expected cost by enumerating
// every increasing reservation subset that ends at v_n. It is
// exponential (O(2^{n-1})) and exists as the test oracle for Solve;
// n is capped at 20.
func SolveBruteForce(d *dist.Discrete, m core.CostModel) (Result, error) {
	n := d.Len()
	if n > 20 {
		return Result{}, errors.New("dp: brute-force oracle capped at n=20")
	}
	if n == 0 {
		return Result{}, errors.New("dp: empty distribution")
	}
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}

	best := Result{ExpectedCost: math.Inf(1)}
	// Every subset of {0..n-2} union {n-1}.
	for mask := 0; mask < 1<<(n-1); mask++ {
		var seq []float64
		for b := 0; b < n-1; b++ {
			if mask&(1<<b) != 0 {
				seq = append(seq, vals[b])
			}
		}
		seq = append(seq, vals[n-1])
		cost := expectedCostDiscrete(m, vals, probs, seq)
		if cost < best.ExpectedCost {
			best = Result{Sequence: append([]float64(nil), seq...), ExpectedCost: cost}
		}
	}
	return best, nil
}

// expectedCostDiscrete evaluates Eq. (2)/(3) exactly for a discrete law
// and an explicit covering sequence.
func expectedCostDiscrete(m core.CostModel, vals, probs, seq []float64) float64 {
	var e float64
	for i, v := range vals {
		// Cost of running a job of duration v under seq.
		var c float64
		for _, t := range seq {
			if v <= t {
				c += m.AttemptCost(t, v)
				break
			}
			c += m.AttemptCost(t, t)
		}
		e += probs[i] * c
	}
	return e
}

// SolveMaxAttempts computes the optimal reservation sequence when the
// platform allows at most maxAttempts resubmissions per job — a
// constraint real schedulers impose. The DP gains a remaining-budget
// dimension: E*_{i,k} is the optimal cost given X >= v_i with k
// attempts left, and any state with fewer attempts than needed to reach
// v_n is infeasible. Complexity O(maxAttempts · n²).
//
// With maxAttempts >= n the result coincides with Solve; with
// maxAttempts = 1 the only feasible plan is the single reservation v_n.
func SolveMaxAttempts(d *dist.Discrete, m core.CostModel, maxAttempts int) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if d == nil || d.Len() == 0 {
		return Result{}, errors.New("dp: empty distribution")
	}
	if maxAttempts < 1 {
		return Result{}, errors.New("dp: need at least one attempt")
	}
	n := d.Len()
	if maxAttempts > n {
		maxAttempts = n // more budget than support points is never used
	}
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}
	S := make([]float64, n+1)
	W := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		S[i] = S[i+1] + probs[i]
		W[i] = W[i+1] + probs[i]*vals[i]
	}
	// jLast is the last positive-mass index: reserving vals[jLast]
	// covers the whole law (S[jLast+1] == 0), so it is the unique
	// stopping point a single remaining attempt can pick. Trailing
	// zero-mass points (possible after truncated discretizations) only
	// add α·v_j for a larger v_j, so they never win.
	jLast := n - 1
	for jLast > 0 && S[jLast] <= 0 {
		jLast--
	}

	// E[k][i], choice[k][i]: k attempts remaining, conditional start i.
	// k=0 row: infeasible unless no mass remains.
	inf := math.Inf(1)
	E := make([][]float64, maxAttempts+1)
	choice := make([][]int, maxAttempts+1)
	for k := range E {
		E[k] = make([]float64, n+1)
		choice[k] = make([]int, n+1)
		for i := range E[k] {
			choice[k][i] = -1
			if k == 0 && i < n && S[i] > 0 {
				E[k][i] = inf
			}
		}
	}
	for k := 1; k <= maxAttempts; k++ {
		for i := n - 1; i >= 0; i-- {
			if S[i] <= 0 {
				continue
			}
			if k == 1 {
				// One attempt left: every j with mass beyond it has an
				// infeasible (+Inf) continuation, and among the feasible
				// j >= jLast the cost is nondecreasing in j (W[j+1] and
				// S[j+1] are zero there, leaving α·v_j + γ + β·W[i]/S[i]),
				// so the scan always lands on jLast. Same arithmetic as
				// the general branch with cont = 0.
				j := jLast
				E[k][i] = m.Alpha*vals[j] + m.Gamma +
					(m.Beta*(W[i]-W[j+1])+S[j+1]*(m.Beta*vals[j]+0.0))/S[i]
				choice[k][i] = j
				continue
			}
			// Attempt budgets shorter than the remaining support need no
			// explicit feasibility bound on j: a continuation that cannot
			// cover the tail carries E[k-1][j+1] = +Inf (propagated up
			// from the k=0 row) and is skipped inside bestChoiceBudget.
			E[k][i], choice[k][i] = bestChoiceBudget(m, vals, S, W, E[k-1], i, n)
		}
	}
	if math.IsInf(E[maxAttempts][0], 1) {
		return Result{}, errors.New("dp: attempt budget cannot cover the support")
	}
	var seq []float64
	k := maxAttempts
	for i := 0; i < n && k > 0; {
		j := choice[k][i]
		if j < 0 {
			break
		}
		seq = append(seq, vals[j])
		i = j + 1
		k--
	}
	return Result{Sequence: seq, ExpectedCost: E[maxAttempts][0]}, nil
}

// bestChoice is the inner argmin of Solve: the cheapest next
// reservation index j for conditional start i, given the suffix sums S
// and W and the already-filled continuation row E. It is the O(n) scan
// executed O(n) times per solve, extracted so the hotalloc analyzers
// and the cmd/lint -escapes gate cover it; the arithmetic is the exact
// IEEE-754 operation sequence of the original inline loop.
//
//repro:hotpath
func bestChoice(m core.CostModel, vals, S, W, E []float64, i, n int) (float64, int) {
	best := math.Inf(1)
	bestJ := -1
	for j := i; j < n; j++ {
		// Conditional expectation of β·min(X, v_j) given X >= v_i:
		// Σ_{k=i..j} f_k v_k = W[i]-W[j+1]; tail uses v_j.
		cost := m.Alpha*vals[j] + m.Gamma +
			(m.Beta*(W[i]-W[j+1])+S[j+1]*(m.Beta*vals[j]+E[j+1]))/S[i]
		if cost < best {
			best = cost
			bestJ = j
		}
	}
	return best, bestJ
}

// bestChoiceBudget is bestChoice for the attempt-budgeted recursion of
// SolveMaxAttempts: prev is the E[k-1] row, and a +Inf continuation
// (infeasible with the remaining budget) is skipped rather than
// propagated.
//
//repro:hotpath
func bestChoiceBudget(m core.CostModel, vals, S, W, prev []float64, i, n int) (float64, int) {
	best := math.Inf(1)
	bestJ := -1
	for j := i; j < n; j++ {
		cont := 0.0
		if j+1 <= n && S[j+1] > 0 {
			cont = prev[j+1]
			if math.IsInf(cont, 1) {
				continue // infeasible continuation
			}
		}
		cost := m.Alpha*vals[j] + m.Gamma +
			(m.Beta*(W[i]-W[j+1])+S[j+1]*(m.Beta*vals[j]+cont))/S[i]
		if cost < best {
			best = cost
			bestJ = j
		}
	}
	return best, bestJ
}
