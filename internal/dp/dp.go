// Package dp implements the optimal dynamic programming algorithm for
// discrete execution-time distributions (Theorem 5 of the paper). For
// X ~ (v_i, f_i)_{i=1..n} it computes — in O(n log n) on the default
// gated fast path (see monotone.go), O(n²) under the reference scan —
// the reservation sequence minimizing the expected cost
//
//	E*_i = min_{i<=j<=n} ( α·v_j + γ + Σ_{k=i..j} f'_k·β·v_k
//	                       + (Σ_{k>j} f'_k)·(β·v_j + E*_{j+1}) )
//
// where f' is the law conditioned on X >= v_i. The optimal sequence is
// recovered by backtracking the minimizing j at each step; it always
// ends at v_n.
package dp

import (
	"errors"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
)

// Result is the output of Solve.
type Result struct {
	// Sequence is the optimal reservation sequence (a strictly
	// increasing subset of the support ending at v_n).
	Sequence []float64
	// ExpectedCost is the optimal expected cost E*_1 under the
	// (normalized) discrete law.
	ExpectedCost float64
	// Choices[i] is the index j chosen when the conditional law starts
	// at index i (diagnostic; -1 where unreachable).
	Choices []int
}

// Solve computes the optimal reservation sequence for a discrete
// distribution under the given cost model. Probabilities are
// renormalized to total mass 1 first (relevant for truncated
// discretizations whose mass is 1-ε). It is SolveWith under the
// default Config: the gated sub-quadratic argmin above the size
// threshold, the plain scan below it.
func Solve(d *dist.Discrete, m core.CostModel) (Result, error) {
	return SolveWith(d, m, Config{})
}

// SolveWith is Solve with an explicit argmin engine selection (see
// Config). Every Algorithm returns bit-identical results — the fast
// engines reproduce the scan's smallest-j tie-break and entry
// arithmetic exactly, and fall back to the scan whenever the
// monotonicity gate trips.
func SolveWith(d *dist.Discrete, m core.CostModel, cfg Config) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if d == nil || d.Len() == 0 {
		return Result{}, errors.New("dp: empty distribution")
	}
	n := d.Len()
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()

	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}

	// Suffix sums: S[i] = Σ_{k>=i} f_k, W[i] = Σ_{k>=i} f_k v_k
	// (0-based; S[n] = W[n] = 0).
	S := make([]float64, n+1)
	W := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		S[i] = S[i+1] + probs[i]
		W[i] = W[i+1] + probs[i]*vals[i]
	}

	E := make([]float64, n+1) // E[i] = E*_i; E[n] = 0
	choice := make([]int, n+1)
	for i := range choice {
		choice[i] = -1
	}

	scan := func() {
		for i := n - 1; i >= 0; i-- {
			if S[i] <= 0 {
				// No mass at or above v_i: never reached; cost 0.
				E[i] = 0
				continue
			}
			E[i], choice[i] = bestChoice(m, vals, S, W, E, i, n)
		}
	}
	if algo := cfg.engine(n); algo == AlgoScan {
		scan()
	} else {
		mx := newMonotoneSolver(n)
		for i := 0; i < n; i++ {
			if S[i] > 0 {
				mx.rows = append(mx.rows, i)
				mx.act[i] = true
			}
		}
		mx.at = func(i, j int) float64 { return entryCost(m, vals, S, W, E, i, j) }
		mx.commit = func(i int) { E[i], choice[i] = mx.best[i], mx.bestJ[i] }
		mx.reset()
		if !mx.run(algo, cfg.verify()) {
			// Gate violation: discard the fast state and rerun the
			// reference scan from scratch.
			for i := range E {
				E[i] = 0
			}
			for i := range choice {
				choice[i] = -1
			}
			scan()
		}
	}

	// Backtrack the sequence of chosen reservations.
	var seq []float64
	for i := 0; i < n; {
		j := choice[i]
		if j < 0 {
			break
		}
		seq = append(seq, vals[j])
		i = j + 1
	}
	return Result{Sequence: seq, ExpectedCost: E[0], Choices: choice}, nil
}

// SolveBruteForce computes the optimal expected cost by enumerating
// every increasing reservation subset that ends at v_n. It is
// exponential (O(2^{n-1})) and exists as the test oracle for Solve;
// n is capped at 20.
func SolveBruteForce(d *dist.Discrete, m core.CostModel) (Result, error) {
	n := d.Len()
	if n > 20 {
		return Result{}, errors.New("dp: brute-force oracle capped at n=20")
	}
	if n == 0 {
		return Result{}, errors.New("dp: empty distribution")
	}
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}

	best := Result{ExpectedCost: math.Inf(1)}
	// Every subset of {0..n-2} union {n-1}.
	for mask := 0; mask < 1<<(n-1); mask++ {
		var seq []float64
		for b := 0; b < n-1; b++ {
			if mask&(1<<b) != 0 {
				seq = append(seq, vals[b])
			}
		}
		seq = append(seq, vals[n-1])
		cost := expectedCostDiscrete(m, vals, probs, seq)
		if cost < best.ExpectedCost {
			best = Result{Sequence: append([]float64(nil), seq...), ExpectedCost: cost}
		}
	}
	return best, nil
}

// expectedCostDiscrete evaluates Eq. (2)/(3) exactly for a discrete law
// and an explicit covering sequence.
func expectedCostDiscrete(m core.CostModel, vals, probs, seq []float64) float64 {
	var e float64
	for i, v := range vals {
		// Cost of running a job of duration v under seq.
		var c float64
		for _, t := range seq {
			if v <= t {
				c += m.AttemptCost(t, v)
				break
			}
			c += m.AttemptCost(t, t)
		}
		e += probs[i] * c
	}
	return e
}

// SolveMaxAttempts computes the optimal reservation sequence when the
// platform allows at most maxAttempts resubmissions per job — a
// constraint real schedulers impose. The DP gains a remaining-budget
// dimension: E*_{i,k} is the optimal cost given X >= v_i with k
// attempts left, and any state with fewer attempts than needed to reach
// v_n is infeasible. Complexity O(maxAttempts · n log n) on the default
// fast path, O(maxAttempts · n²) under AlgoScan or after a gate
// fallback.
//
// With maxAttempts >= n the result coincides with Solve; with
// maxAttempts = 1 the only feasible plan is the single reservation v_n.
func SolveMaxAttempts(d *dist.Discrete, m core.CostModel, maxAttempts int) (Result, error) {
	return SolveMaxAttemptsWith(d, m, maxAttempts, Config{})
}

// SolveMaxAttemptsWith is SolveMaxAttempts with an explicit argmin
// engine selection; as with SolveWith, every Algorithm returns
// bit-identical results. The budgeted recursion is a sequence of
// offline row sweeps (row k reads only row k-1), so each sweep above
// the size threshold runs the same gated engine and falls back to the
// scan independently.
func SolveMaxAttemptsWith(d *dist.Discrete, m core.CostModel, maxAttempts int, cfg Config) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if d == nil || d.Len() == 0 {
		return Result{}, errors.New("dp: empty distribution")
	}
	if maxAttempts < 1 {
		return Result{}, errors.New("dp: need at least one attempt")
	}
	n := d.Len()
	if maxAttempts > n {
		maxAttempts = n // more budget than support points is never used
	}
	vals := d.Values()
	raw := d.Probs()
	total := d.Total()
	probs := make([]float64, n)
	for i := range raw {
		probs[i] = raw[i] / total
	}
	S := make([]float64, n+1)
	W := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		S[i] = S[i+1] + probs[i]
		W[i] = W[i+1] + probs[i]*vals[i]
	}
	// jLast is the last positive-mass index: reserving vals[jLast]
	// covers the whole law (S[jLast+1] == 0), so it is the unique
	// stopping point a single remaining attempt can pick. Trailing
	// zero-mass points (possible after truncated discretizations) only
	// add α·v_j for a larger v_j, so they never win.
	jLast := n - 1
	for jLast > 0 && S[jLast] <= 0 {
		jLast--
	}

	// E[k][i], choice[k][i]: k attempts remaining, conditional start i.
	// k=0 row: infeasible unless no mass remains.
	inf := math.Inf(1)
	E := make([][]float64, maxAttempts+1)
	choice := make([][]int, maxAttempts+1)
	for k := range E {
		E[k] = make([]float64, n+1)
		choice[k] = make([]int, n+1)
		for i := range E[k] {
			choice[k][i] = -1
			if k == 0 && i < n && S[i] > 0 {
				E[k][i] = inf
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		if S[i] <= 0 {
			continue
		}
		// One attempt left: every j with mass beyond it has an
		// infeasible (+Inf) continuation, and among the feasible
		// j >= jLast the cost is nondecreasing in j (W[j+1] and
		// S[j+1] are zero there, leaving α·v_j + γ + β·W[i]/S[i]),
		// so the scan always lands on jLast. Same arithmetic as
		// the general branch with cont = 0.
		j := jLast
		E[1][i] = m.Alpha*vals[j] + m.Gamma +
			(m.Beta*(W[i]-W[j+1])+S[j+1]*(m.Beta*vals[j]+0.0))/S[i]
		choice[1][i] = j
	}
	// Rows k >= 2 are offline argmin sweeps over E[k-1]. A continuation
	// that cannot cover the tail would carry E[k-1][j+1] = +Inf
	// (propagated up from the k=0 row) and is never selected inside
	// entryCostBudget — though with the k=1 row closed-form above, every
	// continuation a k >= 2 sweep reads is in fact finite.
	algo := cfg.engine(n)
	var mx *monotoneSolver
	if algo != AlgoScan && maxAttempts >= 2 {
		mx = newMonotoneSolver(n)
		for i := 0; i < n; i++ {
			if S[i] > 0 {
				mx.rows = append(mx.rows, i)
				mx.act[i] = true
			}
		}
	}
	for k := 2; k <= maxAttempts; k++ {
		prev, cur, curChoice := E[k-1], E[k], choice[k]
		scan := func() {
			for i := n - 1; i >= 0; i-- {
				if S[i] <= 0 {
					continue
				}
				cur[i], curChoice[i] = bestChoiceBudget(m, vals, S, W, prev, i, n)
			}
		}
		if mx == nil {
			scan()
			continue
		}
		mx.at = func(i, j int) float64 { return entryCostBudget(m, vals, S, W, prev, i, j) }
		mx.commit = func(i int) { cur[i], curChoice[i] = mx.best[i], mx.bestJ[i] }
		mx.reset()
		if !mx.run(algo, cfg.verify()) {
			// Gate violation on this sweep: recompute it with the
			// reference scan (the sweep only reads prev, so the partial
			// fast state is fully overwritten row by row).
			scan()
		}
	}
	if math.IsInf(E[maxAttempts][0], 1) {
		return Result{}, errors.New("dp: attempt budget cannot cover the support")
	}
	var seq []float64
	k := maxAttempts
	for i := 0; i < n && k > 0; {
		j := choice[k][i]
		if j < 0 {
			break
		}
		seq = append(seq, vals[j])
		i = j + 1
		k--
	}
	return Result{Sequence: seq, ExpectedCost: E[maxAttempts][0]}, nil
}

// entryCost evaluates one entry of Solve's choice matrix: the cost of
// stopping at index j from conditional start i, given the suffix sums S
// and W and the already-filled continuation row E. It is the single
// source of the DP's IEEE-754 cost expression — the reference scan and
// every fast engine (and the gate) evaluate entries through it, which
// is what makes their answers bit-identical.
//
//repro:hotpath
func entryCost(m core.CostModel, vals, S, W, E []float64, i, j int) float64 {
	// Conditional expectation of β·min(X, v_j) given X >= v_i:
	// Σ_{k=i..j} f_k v_k = W[i]-W[j+1]; tail uses v_j.
	return m.Alpha*vals[j] + m.Gamma +
		(m.Beta*(W[i]-W[j+1])+S[j+1]*(m.Beta*vals[j]+E[j+1]))/S[i]
}

// entryCostBudget is entryCost for the attempt-budgeted recursion of
// SolveMaxAttempts: prev is the E[k-1] row. An infeasible (+Inf)
// continuation propagates as a +Inf entry, which no argmin ever
// selects — the exact effect of the seed scan's skip. (j < n implies
// j+1 <= n, so S[j+1] is always in bounds.)
//
//repro:hotpath
func entryCostBudget(m core.CostModel, vals, S, W, prev []float64, i, j int) float64 {
	cont := 0.0
	if S[j+1] > 0 {
		cont = prev[j+1]
		if math.IsInf(cont, 1) {
			return cont // infeasible continuation: never a winner
		}
	}
	return m.Alpha*vals[j] + m.Gamma +
		(m.Beta*(W[i]-W[j+1])+S[j+1]*(m.Beta*vals[j]+cont))/S[i]
}

// bestChoice is the inner argmin of Solve's reference scan: the
// cheapest next reservation index j for conditional start i. It is the
// O(n) scan executed O(n) times per solve — the seed implementation,
// retained as the small-n path, the gate's fallback target and the
// benchmark baseline — extracted so the hotalloc analyzers and the
// cmd/lint -escapes gate cover it.
//
//repro:hotpath
func bestChoice(m core.CostModel, vals, S, W, E []float64, i, n int) (float64, int) {
	best := math.Inf(1)
	bestJ := -1
	for j := i; j < n; j++ {
		cost := entryCost(m, vals, S, W, E, i, j)
		if cost < best {
			best = cost
			bestJ = j
		}
	}
	return best, bestJ
}

// bestChoiceBudget is bestChoice over entryCostBudget (the E[k-1] row
// prev supplies continuations). A +Inf entry — infeasible continuation
// — never passes the strict <, reproducing the seed's explicit skip.
//
//repro:hotpath
func bestChoiceBudget(m core.CostModel, vals, S, W, prev []float64, i, n int) (float64, int) {
	best := math.Inf(1)
	bestJ := -1
	for j := i; j < n; j++ {
		cost := entryCostBudget(m, vals, S, W, prev, i, j)
		if cost < best {
			best = cost
			bestJ = j
		}
	}
	return best, bestJ
}
