package dp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/rng"
)

func disc(t *testing.T, vals, probs []float64) *dist.Discrete {
	t.Helper()
	d, err := dist.NewDiscrete(vals, probs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSolveSinglePoint(t *testing.T) {
	d := disc(t, []float64{5}, []float64{1})
	m := core.CostModel{Alpha: 2, Beta: 1, Gamma: 3}
	r, err := Solve(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sequence) != 1 || r.Sequence[0] != 5 {
		t.Fatalf("sequence = %v, want [5]", r.Sequence)
	}
	// Initialization of Theorem 5: E*_n = α v_n + β v_n + γ.
	if want := 2*5 + 1*5 + 3.0; math.Abs(r.ExpectedCost-want) > 1e-12 {
		t.Errorf("cost = %g, want %g", r.ExpectedCost, want)
	}
}

func TestSolveTwoPointHandComputed(t *testing.T) {
	// X = 1 w.p. 0.9, X = 10 w.p. 0.1, RESERVATIONONLY.
	// Option (10): cost 10. Option (1, 10): 1 + 0.1·10 = 2. DP picks (1, 10).
	d := disc(t, []float64{1, 10}, []float64{0.9, 0.1})
	r, err := Solve(d, core.ReservationOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sequence) != 2 || r.Sequence[0] != 1 || r.Sequence[1] != 10 {
		t.Fatalf("sequence = %v, want [1 10]", r.Sequence)
	}
	if math.Abs(r.ExpectedCost-2) > 1e-12 {
		t.Errorf("cost = %g, want 2", r.ExpectedCost)
	}

	// With mass flipped, one big reservation wins:
	// (10): 10; (1, 10): 1 + 0.9·10 = 10 → tie broken to (10)? Compare:
	// X = 1 w.p. 0.1: (1,10) = 1 + 0.9·10 = 10; equal — use a sharper
	// split: X=9 w.p. 0.1 first: (9,10): 9+0.9·10 = 18 > 10.
	d = disc(t, []float64{9, 10}, []float64{0.1, 0.9})
	r, err = Solve(d, core.ReservationOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sequence) != 1 || r.Sequence[0] != 10 {
		t.Fatalf("sequence = %v, want [10]", r.Sequence)
	}
	if math.Abs(r.ExpectedCost-10) > 1e-12 {
		t.Errorf("cost = %g, want 10", r.ExpectedCost)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	// Randomized cross-check against the exponential oracle.
	f := func(seed uint64, nRaw uint8, withBeta bool) bool {
		n := int(nRaw%9) + 2
		r := rng.New(seed)
		vals := make([]float64, n)
		probs := make([]float64, n)
		cur := 0.0
		tot := 0.0
		for i := range vals {
			cur += 0.2 + 3*r.Float64()
			vals[i] = cur
			probs[i] = 0.05 + r.Float64()
			tot += probs[i]
		}
		for i := range probs {
			probs[i] /= tot
		}
		d, err := dist.NewDiscrete(vals, probs)
		if err != nil {
			return false
		}
		m := core.ReservationOnly
		if withBeta {
			m = core.CostModel{Alpha: 0.5 + r.Float64(), Beta: r.Float64(), Gamma: r.Float64()}
		}
		got, err1 := Solve(d, m)
		want, err2 := SolveBruteForce(d, m)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(got.ExpectedCost-want.ExpectedCost) > 1e-9*(1+want.ExpectedCost) {
			return false
		}
		// The DP's own sequence must achieve its claimed cost.
		probsN := d.Probs()
		achieved := expectedCostDiscrete(m, d.Values(), probsN, got.Sequence)
		return math.Abs(achieved-got.ExpectedCost) < 1e-9*(1+got.ExpectedCost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSolveSequenceIncreasingEndsAtMax(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := rng.New(seed)
		vals := make([]float64, n)
		probs := make([]float64, n)
		cur := 0.0
		tot := 0.0
		for i := range vals {
			cur += 0.1 + r.Float64()
			vals[i] = cur
			probs[i] = 0.01 + r.Float64()
			tot += probs[i]
		}
		for i := range probs {
			probs[i] /= tot
		}
		d, err := dist.NewDiscrete(vals, probs)
		if err != nil {
			return false
		}
		res, err := Solve(d, core.CostModel{Alpha: 1, Beta: 0.3, Gamma: 0.2})
		if err != nil {
			return false
		}
		if len(res.Sequence) == 0 || res.Sequence[len(res.Sequence)-1] != vals[n-1] {
			return false
		}
		for i := 1; i < len(res.Sequence); i++ {
			if res.Sequence[i] <= res.Sequence[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSolveAgainstExpectedCostEq4: the DP's claimed optimum must equal
// core.ExpectedCost of the DP's sequence over the same discrete law.
func TestSolveAgainstExpectedCostEq4(t *testing.T) {
	d := disc(t, []float64{1, 2, 3, 5, 8}, []float64{0.3, 0.25, 0.2, 0.15, 0.1})
	for _, m := range []core.CostModel{core.ReservationOnly, {Alpha: 1, Beta: 0.7, Gamma: 0.4}, {Alpha: 2, Gamma: 1}} {
		r, err := Solve(d, m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewExplicitSequence(r.Sequence...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.ExpectedCost(m, d, s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.ExpectedCost-want) > 1e-9*(1+want) {
			t.Errorf("%v: DP cost %g, Eq.(4) cost %g", m, r.ExpectedCost, want)
		}
	}
}

// TestTheorem4ViaDP: discretizing Uniform(a,b) with EQUAL-TIME and
// solving optimally must return the single reservation (b) whatever the
// cost model (Theorem 4).
func TestTheorem4ViaDP(t *testing.T) {
	u := dist.MustUniform(10, 20)
	for _, m := range []core.CostModel{core.ReservationOnly, {Alpha: 1, Beta: 1}, {Alpha: 0.95, Beta: 1, Gamma: 1.05}} {
		dd, err := discretize.Discretize(u, 100, 0, discretize.EqualTime)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Solve(dd, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Sequence) != 1 || r.Sequence[0] != 20 {
			t.Errorf("%v: DP sequence %v, want [20]", m, r.Sequence)
		}
	}
}

// TestDPOptimalBeatsHeuristicSequences: no explicit sequence over the
// same support can beat the DP optimum.
func TestDPOptimalBeatsHeuristicSequences(t *testing.T) {
	d := disc(t, []float64{1, 2, 4, 8, 16}, []float64{0.4, 0.3, 0.15, 0.1, 0.05})
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 1}
	opt, err := Solve(d, m)
	if err != nil {
		t.Fatal(err)
	}
	candidates := [][]float64{
		{16}, {1, 16}, {2, 16}, {4, 16}, {1, 2, 16}, {2, 4, 8, 16}, {1, 2, 4, 8, 16},
	}
	for _, c := range candidates {
		cost := expectedCostDiscrete(m, d.Values(), d.Probs(), c)
		if cost < opt.ExpectedCost-1e-9 {
			t.Errorf("candidate %v cost %g beats DP optimum %g", c, cost, opt.ExpectedCost)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, core.ReservationOnly); err == nil {
		t.Error("nil distribution accepted")
	}
	d := disc(t, []float64{1}, []float64{1})
	if _, err := Solve(d, core.CostModel{}); err == nil {
		t.Error("invalid cost model accepted")
	}
	big := make([]float64, 25)
	probs := make([]float64, 25)
	for i := range big {
		big[i] = float64(i + 1)
		probs[i] = 1.0 / 25
	}
	bd := disc(t, big, probs)
	if _, err := SolveBruteForce(bd, core.ReservationOnly); err == nil {
		t.Error("oracle accepted n > 20")
	}
}

// TestSubUnitMassNormalization: a truncated discretization (mass 1-ε)
// must give the same DP solution as its renormalized version.
func TestSubUnitMassNormalization(t *testing.T) {
	vals := []float64{1, 3, 7}
	full := disc(t, vals, []float64{0.5, 0.3, 0.2})
	truncated := disc(t, vals, []float64{0.45, 0.27, 0.18}) // mass 0.9
	m := core.CostModel{Alpha: 1, Beta: 0.4, Gamma: 0.1}
	a, err1 := Solve(full, m)
	b, err2 := Solve(truncated, m)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(a.ExpectedCost-b.ExpectedCost) > 1e-12 {
		t.Errorf("costs differ: %g vs %g", a.ExpectedCost, b.ExpectedCost)
	}
	if len(a.Sequence) != len(b.Sequence) {
		t.Fatalf("sequences differ: %v vs %v", a.Sequence, b.Sequence)
	}
}

func TestSolveMaxAttempts(t *testing.T) {
	d := disc(t, []float64{1, 2, 4, 8, 16}, []float64{0.4, 0.3, 0.15, 0.1, 0.05})
	m := core.CostModel{Alpha: 1, Beta: 0.3, Gamma: 0.5}
	unlimited, err := Solve(d, m)
	if err != nil {
		t.Fatal(err)
	}
	// Budget >= n matches the unconstrained optimum.
	full, err := SolveMaxAttempts(d, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.ExpectedCost-unlimited.ExpectedCost) > 1e-12 {
		t.Errorf("K=10 cost %g vs unconstrained %g", full.ExpectedCost, unlimited.ExpectedCost)
	}
	// K=1 forces the single all-covering reservation.
	one, err := SolveMaxAttempts(d, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Sequence) != 1 || one.Sequence[0] != 16 {
		t.Errorf("K=1 sequence %v", one.Sequence)
	}
	// Cost is monotone nonincreasing in the budget, and every plan
	// respects its budget and covers the support.
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		r, err := SolveMaxAttempts(d, m, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if r.ExpectedCost > prev+1e-12 {
			t.Errorf("cost rose with budget at K=%d: %g after %g", k, r.ExpectedCost, prev)
		}
		prev = r.ExpectedCost
		if len(r.Sequence) > k {
			t.Errorf("K=%d plan uses %d attempts", k, len(r.Sequence))
		}
		if r.Sequence[len(r.Sequence)-1] != 16 {
			t.Errorf("K=%d plan does not cover the support: %v", k, r.Sequence)
		}
	}
	// The constrained optimum at each K beats any exhaustive plan of
	// the same length (spot check K=2 against all 2-step plans).
	two, err := SolveMaxAttempts(d, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	vals := d.Values()
	for _, first := range vals[:4] {
		cost := expectedCostDiscrete(m, vals, d.Probs(), []float64{first, 16})
		if cost < two.ExpectedCost-1e-9 {
			t.Errorf("2-step plan (%g, 16) cost %g beats K=2 optimum %g", first, cost, two.ExpectedCost)
		}
	}
}

// TestSolveMaxAttemptsEqualsSolveAtFullBudget pins the budgeted DP to
// the unconstrained one when the budget cannot bind (maxAttempts = n):
// identical sequence and identical cost, including on laws with a
// zero-mass tail (where the k=1 row must land on the last
// positive-mass index, not n-1).
func TestSolveMaxAttemptsEqualsSolveAtFullBudget(t *testing.T) {
	cases := []struct {
		name  string
		vals  []float64
		probs []float64
	}{
		{"plain", []float64{1, 2, 4, 8, 16}, []float64{0.4, 0.3, 0.15, 0.1, 0.05}},
		{"skewed", []float64{1, 3, 7, 20}, []float64{0.7, 0.2, 0.09, 0.01}},
		{"zero-mass-tail", []float64{1, 2, 4, 8, 16}, []float64{0.5, 0.3, 0.2, 0, 0}},
	}
	models := []core.CostModel{
		core.ReservationOnly,
		{Alpha: 1, Beta: 0.3, Gamma: 0.5},
		{Alpha: 0.95, Beta: 1, Gamma: 1.05},
	}
	for _, tc := range cases {
		d := disc(t, tc.vals, tc.probs)
		n := d.Len()
		for _, m := range models {
			want, err := Solve(d, m)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got, err := SolveMaxAttempts(d, m, n)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if got.ExpectedCost != want.ExpectedCost { //lint:ignore floatcmp same DP arithmetic must agree bitwise
				t.Errorf("%s %v: budgeted cost %.17g != unconstrained %.17g",
					tc.name, m, got.ExpectedCost, want.ExpectedCost)
			}
			if len(got.Sequence) != len(want.Sequence) {
				t.Fatalf("%s %v: sequences %v vs %v", tc.name, m, got.Sequence, want.Sequence)
			}
			for i := range got.Sequence {
				if got.Sequence[i] != want.Sequence[i] { //lint:ignore floatcmp values are copied support points
					t.Errorf("%s %v: sequence[%d] = %g != %g", tc.name, m, i, got.Sequence[i], want.Sequence[i])
				}
			}
		}
	}
}

// TestSolveMaxAttemptsZeroMassTail: with a single attempt the plan must
// stop at the last positive-mass point, skipping padded zero-mass
// support values.
func TestSolveMaxAttemptsZeroMassTail(t *testing.T) {
	d := disc(t, []float64{1, 2, 4, 8}, []float64{0.6, 0.4, 0, 0})
	m := core.CostModel{Alpha: 1, Beta: 0.3, Gamma: 0.5}
	one, err := SolveMaxAttempts(d, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Sequence) != 1 || one.Sequence[0] != 2 {
		t.Errorf("K=1 sequence %v, want [2]", one.Sequence)
	}
	// α·2 + γ + β·E[X] = 2 + 0.5 + 0.3·(0.6·1+0.4·2)
	if want := 2 + 0.5 + 0.3*1.4; math.Abs(one.ExpectedCost-want) > 1e-12 {
		t.Errorf("K=1 cost %g, want %g", one.ExpectedCost, want)
	}
}

func TestSolveMaxAttemptsValidation(t *testing.T) {
	d := disc(t, []float64{1, 2}, []float64{0.5, 0.5})
	if _, err := SolveMaxAttempts(nil, core.ReservationOnly, 2); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := SolveMaxAttempts(d, core.CostModel{}, 2); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := SolveMaxAttempts(d, core.ReservationOnly, 0); err == nil {
		t.Error("zero budget accepted")
	}
}
