package specfun

import (
	"math"
	"testing"
	"testing/quick"
)

// approx reports whether got is within tol (relative for large values,
// absolute near zero) of want.
func approx(got, want, tol float64) bool {
	if math.IsNaN(got) != math.IsNaN(want) {
		return false
	}
	if math.IsNaN(got) {
		return true
	}
	diff := math.Abs(got - want)
	scale := math.Max(1, math.Abs(want))
	return diff <= tol*scale
}

func TestGammaPKnownValues(t *testing.T) {
	// Reference values from the identity P(1, x) = 1 - e^{-x} and
	// P(1/2, x) = erf(sqrt(x)), plus a few textbook values.
	cases := []struct {
		a, x, want float64
	}{
		{1, 0, 0},
		{1, 1, 1 - math.Exp(-1)},
		{1, 5, 1 - math.Exp(-5)},
		{0.5, 0.25, math.Erf(0.5)},
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		{2, 1, 1 - 2*math.Exp(-1)},       // P(2,x)=1-(1+x)e^{-x}
		{2, 3, 1 - 4*math.Exp(-3)},       // (1+3)e^{-3}
		{3, 2, 1 - (1+2+2)*math.Exp(-2)}, // P(3,x)=1-(1+x+x²/2)e^{-x}
		{3, 10, 1 - (1+10+50)*math.Exp(-10)},
	}
	for _, c := range cases {
		if got := GammaP(c.a, c.x); !approx(got, c.want, 1e-12) {
			t.Errorf("GammaP(%g,%g) = %.15g, want %.15g", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.1, 0.5, 1, 2, 3.7, 10, 42} {
		for _, x := range []float64{0.01, 0.3, 1, 2.5, 8, 40, 120} {
			p := GammaP(a, x)
			q := GammaQ(a, x)
			if !approx(p+q, 1, 1e-12) {
				t.Errorf("P+Q != 1 for a=%g x=%g: %g + %g", a, x, p, q)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("out of range: P(%g,%g)=%g Q=%g", a, x, p, q)
			}
		}
	}
}

func TestGammaPEdgeCases(t *testing.T) {
	if got := GammaP(2, math.Inf(1)); got != 1 {
		t.Errorf("GammaP(2, +Inf) = %g, want 1", got)
	}
	if got := GammaQ(2, math.Inf(1)); got != 0 {
		t.Errorf("GammaQ(2, +Inf) = %g, want 0", got)
	}
	if got := GammaP(-1, 2); !math.IsNaN(got) {
		t.Errorf("GammaP(-1, 2) = %g, want NaN", got)
	}
	if got := GammaP(2, -1); !math.IsNaN(got) {
		t.Errorf("GammaP(2, -1) = %g, want NaN", got)
	}
	if got := GammaQ(3, 0); got != 1 {
		t.Errorf("GammaQ(3, 0) = %g, want 1", got)
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	f := func(a, x1, x2 float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 20))
		x1 = math.Abs(math.Mod(x1, 50))
		x2 = math.Abs(math.Mod(x2, 50))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return GammaP(a, x1) <= GammaP(a, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInvGammaPRoundTrip(t *testing.T) {
	for _, a := range []float64{0.3, 0.5, 1, 2, 2.0, 5.5, 20} {
		for _, p := range []float64{1e-8, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9999, 1 - 1e-7} {
			x := InvGammaP(a, p)
			got := GammaP(a, x)
			if !approx(got, p, 1e-9) {
				t.Errorf("GammaP(%g, InvGammaP(%g,%g)=%g) = %g, want %g", a, a, p, x, got, p)
			}
		}
	}
}

func TestInvGammaPEdges(t *testing.T) {
	if got := InvGammaP(2, 0); got != 0 {
		t.Errorf("InvGammaP(2, 0) = %g, want 0", got)
	}
	if got := InvGammaP(2, 1); !math.IsInf(got, 1) {
		t.Errorf("InvGammaP(2, 1) = %g, want +Inf", got)
	}
	if got := InvGammaP(2, -0.5); !math.IsNaN(got) {
		t.Errorf("InvGammaP(2, -0.5) = %g, want NaN", got)
	}
	if got := InvGammaP(0, 0.5); !math.IsNaN(got) {
		t.Errorf("InvGammaP(0, 0.5) = %g, want NaN", got)
	}
}

func TestInvGammaQMatchesQuantileIdentity(t *testing.T) {
	// Gamma(α, β) quantile: Q(x) = InvGammaQ(α, 1-x)/β with table-5
	// parameters α=2, β=2; the median of Gamma(2,2) is ≈ 0.8391735.
	x := InvGammaQ(2, 0.5) / 2
	if !approx(x, 0.8391734950083303, 1e-9) {
		t.Errorf("Gamma(2,2) median = %.10g, want 0.8391734950", x)
	}
}

func TestUpperIncGamma(t *testing.T) {
	// Γ(1, x) = e^{-x}; Γ(2, x) = (x+1)e^{-x}.
	for _, x := range []float64{0.1, 1, 3, 10} {
		if got := UpperIncGamma(1, x); !approx(got, math.Exp(-x), 1e-12) {
			t.Errorf("UpperIncGamma(1,%g) = %g, want %g", x, got, math.Exp(-x))
		}
		if got := UpperIncGamma(2, x); !approx(got, (x+1)*math.Exp(-x), 1e-12) {
			t.Errorf("UpperIncGamma(2,%g) = %g, want %g", x, got, (x+1)*math.Exp(-x))
		}
	}
	// Γ(a, 0) = Γ(a).
	if got := UpperIncGamma(3.5, 0); !approx(got, math.Gamma(3.5), 1e-12) {
		t.Errorf("UpperIncGamma(3.5, 0) = %g, want Γ(3.5)=%g", got, math.Gamma(3.5))
	}
}

func TestUpperIncGammaScaled(t *testing.T) {
	// e^x Γ(1, x) = 1; e^x Γ(2, x) = x+1.
	for _, x := range []float64{0.5, 2, 20, 200, 700} {
		if got := UpperIncGammaScaled(1, x); !approx(got, 1, 1e-10) {
			t.Errorf("UpperIncGammaScaled(1,%g) = %g, want 1", x, got)
		}
		if got := UpperIncGammaScaled(2, x); !approx(got, x+1, 1e-10) {
			t.Errorf("UpperIncGammaScaled(2,%g) = %g, want %g", x, got, x+1)
		}
	}
	// Large x must not overflow even though e^x alone would.
	if got := UpperIncGammaScaled(1.5, 800); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("UpperIncGammaScaled(1.5, 800) = %g, want finite", got)
	}
}

func TestLogBetaAndBeta(t *testing.T) {
	// B(1,1)=1, B(2,2)=1/6, B(2.5,1)=0.4, B(0.5,0.5)=π.
	cases := []struct{ a, b, want float64 }{
		{1, 1, 1},
		{2, 2, 1.0 / 6.0},
		{2.5, 1, 0.4},
		{0.5, 0.5, math.Pi},
		{3, 4, 1.0 / 60.0},
	}
	for _, c := range cases {
		if got := Beta(c.a, c.b); !approx(got, c.want, 1e-12) {
			t.Errorf("Beta(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
	// Symmetry.
	if got, want := LogBeta(3.3, 7.7), LogBeta(7.7, 3.3); !approx(got, want, 1e-14) {
		t.Errorf("LogBeta not symmetric: %g vs %g", got, want)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x; I_x(2, 1) = x²; I_x(1, b) = 1-(1-x)^b;
	// I_x(0.5, 0.5) = (2/π) asin(sqrt(x)).
	for _, x := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		if got := RegIncBeta(1, 1, x); !approx(got, x, 1e-12) {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
		if got := RegIncBeta(2, 1, x); !approx(got, x*x, 1e-12) {
			t.Errorf("I_%g(2,1) = %g, want %g", x, got, x*x)
		}
		want := 1 - math.Pow(1-x, 3)
		if got := RegIncBeta(1, 3, x); !approx(got, want, 1e-12) {
			t.Errorf("I_%g(1,3) = %g, want %g", x, got, want)
		}
		want = 2 / math.Pi * math.Asin(math.Sqrt(x))
		if got := RegIncBeta(0.5, 0.5, x); !approx(got, want, 1e-12) {
			t.Errorf("I_%g(0.5,0.5) = %g, want %g", x, got, want)
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a, b) = 1 - I_{1-x}(b, a).
	f := func(a, b, x float64) bool {
		a = 0.2 + math.Abs(math.Mod(a, 10))
		b = 0.2 + math.Abs(math.Mod(b, 10))
		x = math.Abs(math.Mod(x, 1))
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return approx(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInvRegIncBetaRoundTrip(t *testing.T) {
	for _, ab := range [][2]float64{{1, 1}, {2, 2}, {2, 5}, {0.5, 0.5}, {0.3, 4}, {8, 1.5}} {
		a, b := ab[0], ab[1]
		for _, p := range []float64{1e-6, 0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999, 1 - 1e-6} {
			x := InvRegIncBeta(a, b, p)
			got := RegIncBeta(a, b, x)
			if !approx(got, p, 1e-8) {
				t.Errorf("RegIncBeta(%g,%g, Inv=%g) = %g, want %g", a, b, x, got, p)
			}
		}
	}
}

func TestInvRegIncBetaEdges(t *testing.T) {
	if got := InvRegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("InvRegIncBeta(2,3,0) = %g, want 0", got)
	}
	if got := InvRegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("InvRegIncBeta(2,3,1) = %g, want 1", got)
	}
	if got := InvRegIncBeta(2, 3, 1.5); !math.IsNaN(got) {
		t.Errorf("InvRegIncBeta(2,3,1.5) = %g, want NaN", got)
	}
}

func TestIncBetaMatchesBetaAtOne(t *testing.T) {
	for _, ab := range [][2]float64{{1, 1}, {2, 2}, {2.5, 1.3}} {
		if got, want := IncBeta(ab[0], ab[1], 1), Beta(ab[0], ab[1]); !approx(got, want, 1e-12) {
			t.Errorf("IncBeta(%g,%g,1) = %g, want %g", ab[0], ab[1], got, want)
		}
	}
}
