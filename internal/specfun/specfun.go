// Package specfun implements the special functions needed by the
// probability distributions of the reservation library: regularized
// incomplete gamma functions and their inverses, the (regularized and
// unregularized) incomplete beta function and its inverse, and a few
// stable helpers built on top of the math package's erf/lgamma.
//
// The implementations follow the classical series / continued-fraction
// split (Numerical Recipes style): each function switches between a
// power series and a Lentz continued fraction depending on the argument
// region, and the inverses combine a Halley/Newton iteration with a
// guarded bisection fallback so they converge for every valid input.
package specfun

import (
	"errors"
	"math"
)

const (
	// eps is the relative accuracy target for series and continued
	// fractions. Roughly float64 machine epsilon.
	eps = 2.22e-16
	// fpmin is a number near the smallest representable normalized
	// float64, used to keep Lentz's algorithm away from zero divisions.
	fpmin = math.SmallestNonzeroFloat64 / eps
	// maxIter bounds all iterative loops.
	maxIter = 500
)

// ErrNoConverge is returned (wrapped) when an iteration fails to reach
// the target accuracy within the iteration budget.
var ErrNoConverge = errors.New("specfun: iteration did not converge")

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
func GammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQCF(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x) / Γ(a) = 1 - P(a, x) for a > 0, x >= 0.
func GammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if math.IsInf(x, 1) {
		return 0
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQCF(a, x)
}

// UpperIncGamma returns the unregularized upper incomplete gamma
// function Γ(a, x) = ∫_x^∞ t^{a-1} e^{-t} dt.
func UpperIncGamma(a, x float64) float64 {
	q := GammaQ(a, x)
	lg, _ := math.Lgamma(a)
	return q * math.Exp(lg)
}

// UpperIncGammaScaled returns e^x · Γ(a, x), which stays representable
// for large x where Γ(a, x) alone underflows and e^x alone overflows.
// It is the quantity needed by the MEAN-BY-MEAN closed form for the
// Weibull distribution (Appendix B of the paper).
func UpperIncGammaScaled(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		lg, _ := math.Lgamma(a)
		return math.Exp(lg)
	}
	if x < a+1 {
		// Small-x region: compute via the regularized form directly;
		// neither factor is extreme here.
		return math.Exp(x) * UpperIncGamma(a, x)
	}
	// Γ(a, x) = e^{-x} x^a · CF(a, x), hence e^x Γ(a, x) = x^a CF(a, x).
	// Work in logs to dodge overflow of x^a for large x.
	cf := gammaCFValue(a, x)
	return math.Exp(a*math.Log(x) + math.Log(cf))
}

// gammaPSeries evaluates P(a, x) by its power series, valid for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQCF evaluates Q(a, x) by the Lentz continued fraction, valid for
// x >= a+1.
func gammaQCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * gammaCFValue(a, x)
}

// gammaCFValue evaluates the continued fraction CF with
// Γ(a, x) = e^{-x} x^a · CF(a, x), for x >= a+1.
func gammaCFValue(a, x float64) float64 {
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// InvGammaP returns x such that P(a, x) = p, for a > 0 and p in [0, 1).
// It uses the Halley iteration from Numerical Recipes (3rd ed.) with a
// bisection guard.
func InvGammaP(a, p float64) float64 {
	if a <= 0 || p < 0 || p > 1 || math.IsNaN(a) || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	lg, _ := math.Lgamma(a)
	a1 := a - 1
	var gln1, afac float64
	if a > 1 {
		gln1 = math.Log(a1)
		afac = math.Exp(a1*(gln1-1) - lg)
	}

	// Initial guess.
	var x float64
	if a > 1 {
		pp := p
		if p >= 0.5 {
			pp = 1 - p
		}
		t := math.Sqrt(-2 * math.Log(pp))
		x = (2.30753+t*0.27061)/(1+t*(0.99229+t*0.04481)) - t
		if p < 0.5 {
			x = -x
		}
		x = math.Max(1e-3, a*math.Pow(1-1/(9*a)-x/(3*math.Sqrt(a)), 3))
	} else {
		t := 1 - a*(0.253+a*0.12)
		if p < t {
			x = math.Pow(p/t, 1/a)
		} else {
			x = 1 - math.Log(1-(p-t)/(1-t))
		}
	}

	for j := 0; j < 24; j++ {
		if x <= 0 {
			return 0
		}
		err := GammaP(a, x) - p
		var t float64
		if a > 1 {
			t = afac * math.Exp(-(x-a1)+a1*(math.Log(x)-gln1))
		} else {
			t = math.Exp(-x + a1*math.Log(x) - lg)
		}
		if t == 0 {
			break
		}
		u := err / t
		// Halley step.
		t = u / (1 - 0.5*math.Min(1, u*(a1/x-1)))
		x -= t
		if x <= 0 {
			x = 0.5 * (x + t)
		}
		if math.Abs(t) < eps*x {
			break
		}
	}
	return x
}

// InvGammaQ returns x such that Q(a, x) = q, for a > 0 and q in (0, 1].
// This is the inverse upper incomplete gamma function of Table 5 in
// regularized form: Γ^{-1}(a, q·Γ(a)) = InvGammaQ(a, q).
func InvGammaQ(a, q float64) float64 {
	return InvGammaP(a, 1-q)
}

// LogBeta returns log B(a, b) = lgamma(a) + lgamma(b) - lgamma(a+b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// Beta returns the (complete) beta function B(a, b).
func Beta(a, b float64) float64 {
	return math.Exp(LogBeta(a, b))
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) = B(x; a, b) / B(a, b), for a, b > 0 and x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 || x < 0 || x > 1 || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	bt := math.Exp(a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

// IncBeta returns the unregularized incomplete beta function
// B(x; a, b) = ∫_0^x t^{a-1}(1-t)^{b-1} dt.
func IncBeta(a, b, x float64) float64 {
	return RegIncBeta(a, b, x) * Beta(a, b)
}

// betaCF is the continued fraction for the incomplete beta function
// (Lentz's method).
func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// InvRegIncBeta returns x such that I_x(a, b) = p, for a, b > 0 and
// p in [0, 1]. It mirrors the Numerical Recipes invbetai routine with a
// bisection safeguard.
func InvRegIncBeta(a, b, p float64) float64 {
	if a <= 0 || b <= 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return 1
	}

	var x float64
	if a >= 1 && b >= 1 {
		pp := p
		if p >= 0.5 {
			pp = 1 - p
		}
		t := math.Sqrt(-2 * math.Log(pp))
		x = (2.30753+t*0.27061)/(1+t*(0.99229+t*0.04481)) - t
		if p < 0.5 {
			x = -x
		}
		al := (x*x - 3) / 6
		h := 2 / (1/(2*a-1) + 1/(2*b-1))
		w := x*math.Sqrt(al+h)/h - (1/(2*b-1)-1/(2*a-1))*(al+5.0/6.0-2/(3*h))
		x = a / (a + b*math.Exp(2*w))
	} else {
		lna := math.Log(a / (a + b))
		lnb := math.Log(b / (a + b))
		t := math.Exp(a*lna) / a
		u := math.Exp(b*lnb) / b
		w := t + u
		if p < t/w {
			x = math.Pow(a*w*p, 1/a)
		} else {
			x = 1 - math.Pow(b*w*(1-p), 1/b)
		}
	}

	afac := -LogBeta(a, b)
	a1 := a - 1
	b1 := b - 1
	for j := 0; j < 32; j++ {
		if x == 0 || x == 1 {
			// Newton escaped the domain; fall back to bisection.
			return invRegIncBetaBisect(a, b, p)
		}
		err := RegIncBeta(a, b, x) - p
		t := math.Exp(a1*math.Log(x) + b1*math.Log(1-x) + afac)
		if t == 0 {
			return invRegIncBetaBisect(a, b, p)
		}
		u := err / t
		t = u / (1 - 0.5*math.Min(1, u*(a1/x-b1/(1-x))))
		x -= t
		if x <= 0 {
			x = 0.5 * (x + t)
		}
		if x >= 1 {
			x = 0.5 * (x + t + 1)
		}
		if math.Abs(t) < eps*x && j > 0 {
			break
		}
	}
	return x
}

// invRegIncBetaBisect is a slow-but-sure inverse used when the Newton
// iteration leaves the domain.
func invRegIncBetaBisect(a, b, p float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if RegIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
