package tenant

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic manual clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func mustLimiter(t *testing.T, cfg Config) *Limiter {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewRejectsBadWeights(t *testing.T) {
	for _, w := range []float64{0, -1} {
		if _, err := New(Config{Rate: 10, Weights: map[string]float64{"a": w}}); err == nil {
			t.Errorf("weight %g accepted", w)
		}
	}
}

func TestDisabledAdmitsEverything(t *testing.T) {
	l := mustLimiter(t, Config{Rate: 0})
	for i := 0; i < 1000; i++ {
		if d := l.Admit("anyone"); !d.OK {
			t.Fatal("disabled limiter rejected a request")
		}
	}
	if l.Enabled() {
		t.Error("Enabled() with Rate=0")
	}
}

// TestProportionalShares: over a long window, each tenant's admitted
// count approaches Rate·w_i/Σw regardless of demand.
func TestProportionalShares(t *testing.T) {
	clock := newFakeClock()
	l := mustLimiter(t, Config{
		Rate:    10, // req/s total
		Weights: map[string]float64{"heavy": 3, "light": 1},
		Now:     clock.Now,
	})
	admitted := map[string]int{}
	// Both tenants over-demand: 100 requests each per simulated second,
	// for 50 seconds.
	for step := 0; step < 5000; step++ {
		for _, tn := range []string{"heavy", "light"} {
			if l.Admit(tn).OK {
				admitted[tn]++
			}
		}
		clock.Advance(10 * time.Millisecond)
	}
	// Σw = 3 + 1 + 1 (default) = 5; heavy gets 10·3/5 = 6/s, light 2/s.
	// 50 s window → ~300 and ~100 (plus the initial burst allowance).
	if got := admitted["heavy"]; got < 280 || got > 330 {
		t.Errorf("heavy admitted %d, want ~300", got)
	}
	if got := admitted["light"]; got < 90 || got > 115 {
		t.Errorf("light admitted %d, want ~100", got)
	}
}

// TestHeavyTenantCannotStarveLight: a tenant hammering the service
// does not reduce another tenant's admitted throughput below its
// share.
func TestHeavyTenantCannotStarveLight(t *testing.T) {
	clock := newFakeClock()
	l := mustLimiter(t, Config{
		Rate:    8,
		Weights: map[string]float64{"bully": 1, "victim": 1},
		Now:     clock.Now,
	})
	victimAdmitted := 0
	for step := 0; step < 3000; step++ {
		// The bully issues 50 requests per tick; the victim exactly one
		// every 3 ticks (well under its fair share).
		for i := 0; i < 50; i++ {
			l.Admit("bully")
		}
		if step%3 == 0 {
			if l.Admit("victim").OK {
				victimAdmitted++
			}
		}
		clock.Advance(10 * time.Millisecond)
	}
	// Σw = 3, victim's share = 8/3 ≈ 2.67/s over 30 s ≈ 80 tokens; the
	// victim only asks for ~1000/3/10 ≈ 33/s... actually 1 per 30ms ≈
	// 33/s > share, so it is limited to its share, not starved to zero.
	// Victim demand: 1000 requests over 30 s (≈33/s), share ≈ 2.67/s →
	// expect ≈ 80 admitted. Starvation would show near-zero.
	if victimAdmitted < 70 {
		t.Errorf("victim admitted %d of 1000; starved despite fair share", victimAdmitted)
	}
}

// TestRetryAfterIsExact: a rejected request reports the precise wait
// until the next token, and admitting after exactly that wait works.
func TestRetryAfterIsExact(t *testing.T) {
	clock := newFakeClock()
	l := mustLimiter(t, Config{
		Rate:         2,
		Weights:      map[string]float64{"t": 1},
		BurstSeconds: 1,
		Now:          clock.Now,
	})
	// Σw = 2, rate for t = 1/s, burst cap = 1 token.
	if d := l.Admit("t"); !d.OK {
		t.Fatal("first request should use the initial burst")
	}
	d := l.Admit("t")
	if d.OK {
		t.Fatal("second immediate request should be rejected")
	}
	if d.RetryAfter <= 0 || d.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s]", d.RetryAfter)
	}
	clock.Advance(d.RetryAfter)
	if d2 := l.Admit("t"); !d2.OK {
		t.Errorf("request after RetryAfter=%v still rejected (RetryAfter now %v)", d.RetryAfter, d2.RetryAfter)
	}
}

// TestUnknownTenantsShareDefaultBucket: anonymous and unlisted tenants
// compete for one default-weight bucket rather than each minting a
// fresh quota.
func TestUnknownTenantsShareDefaultBucket(t *testing.T) {
	clock := newFakeClock()
	l := mustLimiter(t, Config{
		Rate:         5,
		Weights:      map[string]float64{"known": 4},
		BurstSeconds: 1,
		Now:          clock.Now,
	})
	// Σw = 5, default bucket rate = 1/s, cap = 1.
	admitted := 0
	for i := 0; i < 10; i++ {
		if l.Admit(fmt.Sprintf("anon-%d", i)).OK {
			admitted++
		}
	}
	if admitted != 1 {
		t.Errorf("10 distinct unknown tenants got %d admissions from the shared bucket, want 1", admitted)
	}
	// The known tenant is unaffected.
	if !l.Admit("known").OK {
		t.Error("known tenant rejected while default bucket exhausted")
	}
}

// TestBurstCapBounds: idling does not accumulate unbounded credit.
func TestBurstCapBounds(t *testing.T) {
	clock := newFakeClock()
	l := mustLimiter(t, Config{
		Rate:         2,
		Weights:      map[string]float64{"t": 1},
		BurstSeconds: 2,
		Now:          clock.Now,
	})
	// rate = 1/s, cap = 2 tokens. Idle for an hour, then burst.
	l.Admit("t")
	clock.Advance(time.Hour)
	admitted := 0
	for i := 0; i < 100; i++ {
		if l.Admit("t").OK {
			admitted++
		}
	}
	if admitted != 2 {
		t.Errorf("after long idle, burst admitted %d, want cap 2", admitted)
	}
}

func TestSnapshotCounts(t *testing.T) {
	clock := newFakeClock()
	l := mustLimiter(t, Config{
		Rate:         2,
		Weights:      map[string]float64{"b": 1, "a": 1},
		BurstSeconds: 1,
		Now:          clock.Now,
	})
	l.Admit("a")
	l.Admit("a") // rejected: cap 0.5 → min cap 1, spent by first
	l.Admit("b")
	l.Admit("") // default bucket
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %+v, want 3 buckets", snap)
	}
	// Sorted: "", "a", "b".
	if snap[0].Tenant != "" || snap[1].Tenant != "a" || snap[2].Tenant != "b" {
		t.Errorf("snapshot order = %+v", snap)
	}
	if snap[1].Admitted != 1 || snap[1].Rejected != 1 {
		t.Errorf("tenant a counts = %+v", snap[1])
	}
}

// TestConcurrentAdmitRace exercises the limiter under parallel load so
// -race can see it; token conservation still holds.
func TestConcurrentAdmitRace(t *testing.T) {
	clock := newFakeClock()
	l := mustLimiter(t, Config{
		Rate:         100,
		Weights:      map[string]float64{"t": 1},
		BurstSeconds: 1,
		Now:          clock.Now,
	})
	// rate for t = 50/s, cap = 50 tokens; clock frozen → exactly the
	// initial burst can be admitted, no matter the interleaving.
	var wg sync.WaitGroup
	var admitted sync.Map
	counts := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if l.Admit("t").OK {
					counts[g]++
				}
			}
			admitted.Store(g, counts[g])
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 50 {
		t.Errorf("frozen-clock burst admitted %d, want exactly 50", total)
	}
}
