// Package tenant implements weighted fair-share admission control for
// the plan service frontend. Each tenant owns a token bucket refilled
// at a rate proportional to its weight: with total rate R requests/sec
// and weights w_i, tenant i refills at R·w_i/Σw. A request is admitted
// when the tenant's bucket holds at least one token; otherwise the
// caller gets a structured rejection with the exact wait until the
// next token, which the frontend surfaces as a 429 with Retry-After.
//
// Heavy tenants therefore cannot starve light ones: however fast
// tenant A submits, tenant B's bucket keeps refilling at its own
// share. Unknown tenants (including the empty name) share one default
// bucket at DefaultWeight so anonymous traffic is bounded too.
//
// All timing flows through an injectable clock, so fairness properties
// are pinned by deterministic tests rather than sleeps.
package tenant

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultWeight is the weight assumed for tenants absent from the
// weight table, and for requests with no tenant header.
const DefaultWeight = 1.0

// DefaultBurst is the bucket capacity multiplier: a tenant can burst
// up to DefaultBurst seconds' worth of its refill rate.
const DefaultBurst = 2.0

// Config tunes a Limiter.
type Config struct {
	// Rate is the total admission rate across all tenants, in
	// requests per second. Zero or negative disables admission
	// control: every request is admitted.
	Rate float64
	// Weights maps tenant name to relative weight. Tenants not listed
	// get DefaultWeight. Non-positive weights are rejected by New.
	Weights map[string]float64
	// BurstSeconds is how many seconds of a tenant's refill rate its
	// bucket can hold (default DefaultBurst). Larger values tolerate
	// burstier arrivals at the same long-run rate.
	BurstSeconds float64
	// Now supplies the clock (default: the time.Now function).
	Now func() time.Time
}

// Decision is the outcome of one admission check.
type Decision struct {
	// OK reports whether the request was admitted (a token was spent).
	OK bool
	// RetryAfter is how long until the tenant's next token when OK is
	// false; zero when OK is true.
	RetryAfter time.Duration
	// Tenant is the bucket the decision was charged to — the request's
	// tenant name, or "" for the shared default bucket.
	Tenant string
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64   // current tokens, <= cap
	last   time.Time // last refill instant
	rate   float64   // tokens per second
	cap    float64   // max tokens
}

// Limiter is a weighted fair-share admission controller. Construct
// with New; safe for concurrent use.
type Limiter struct {
	cfg Config

	mu      sync.Mutex
	buckets map[string]*bucket
	// admitted / rejected counters per tenant, for metrics.
	admitted map[string]uint64
	rejected map[string]uint64
}

// New builds a Limiter. The per-tenant refill rates are fixed at
// construction from cfg.Rate and cfg.Weights.
func New(cfg Config) (*Limiter, error) {
	for name, w := range cfg.Weights {
		if w <= 0 {
			return nil, fmt.Errorf("tenant: weight for %q must be positive, got %g", name, w)
		}
	}
	if cfg.BurstSeconds <= 0 {
		cfg.BurstSeconds = DefaultBurst
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{
		cfg:      cfg,
		buckets:  make(map[string]*bucket),
		admitted: make(map[string]uint64),
		rejected: make(map[string]uint64),
	}, nil
}

// Enabled reports whether admission control is active.
func (l *Limiter) Enabled() bool { return l.cfg.Rate > 0 }

// weightSum returns the sum of all configured weights plus
// DefaultWeight for the shared default bucket, which always exists.
func (l *Limiter) weightSum() float64 {
	sum := DefaultWeight
	for _, w := range l.cfg.Weights {
		sum += w
	}
	return sum
}

// rateFor returns tenant's refill rate: Rate · w / Σw. Tenants outside
// the weight table share the default bucket, so their name maps to "".
func (l *Limiter) rateFor(name string) (string, float64) {
	w, ok := l.cfg.Weights[name]
	if !ok {
		return "", DefaultWeight * l.cfg.Rate / l.weightSum()
	}
	return name, w * l.cfg.Rate / l.weightSum()
}

// Admit charges one request to the named tenant's bucket and reports
// whether it was admitted. When not, Decision.RetryAfter is the time
// until the bucket next holds a full token.
func (l *Limiter) Admit(name string) Decision {
	if !l.Enabled() {
		return Decision{OK: true, Tenant: name}
	}
	key, rate := l.rateFor(name)
	now := l.cfg.Now()

	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		// A new bucket starts full, so the first burst is admitted.
		b = &bucket{tokens: rate * l.cfg.BurstSeconds, last: now, rate: rate, cap: rate * l.cfg.BurstSeconds}
		if b.cap < 1 {
			// Even a tiny share can always eventually admit one request.
			b.cap = 1
			b.tokens = 1
		}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		l.admitted[key]++
		return Decision{OK: true, Tenant: key}
	}
	l.rejected[key]++
	need := 1 - b.tokens
	retry := time.Duration(need / b.rate * float64(time.Second))
	if retry <= 0 {
		retry = time.Millisecond
	}
	return Decision{OK: false, RetryAfter: retry, Tenant: key}
}

// Counts returns the cumulative admitted and rejected request counts
// per bucket, with tenant names sorted (the default bucket is "").
type Counts struct {
	Tenant   string
	Admitted uint64
	Rejected uint64
}

// Snapshot returns per-bucket admission counters in sorted tenant
// order.
func (l *Limiter) Snapshot() []Counts {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make(map[string]bool)
	for n := range l.admitted {
		names[n] = true
	}
	for n := range l.rejected {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	out := make([]Counts, 0, len(ordered))
	for _, n := range ordered {
		out = append(out, Counts{Tenant: n, Admitted: l.admitted[n], Rejected: l.rejected[n]})
	}
	return out
}
