package cluster

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// determinismSpec is a workload big enough to span many generation
// chunks is unnecessary — what matters is crossing at least one chunk
// boundary so the per-chunk streams and the arrival prefix-sum are both
// exercised across worker splits.
func determinismSpec(seed uint64, jobs int) WorkloadSpec {
	laws := dist.Table1()
	return WorkloadSpec{
		Seed:        seed,
		Jobs:        jobs,
		ArrivalRate: 3,
		Classes: []JobClass{
			{Name: "exp", Runtime: laws[0], Weight: 3, MinWidth: 1, MaxWidth: 2, Tenant: 0, Policy: sweepPolicy(laws[0], 0.6, 0.9, 0.999)},
			{Name: "lognormal", Runtime: laws[3], Weight: 1, MinWidth: 1, MaxWidth: 4, Tenant: 1, Policy: sweepPolicy(laws[3], 0.5, 0.95, 0.999)},
			{Name: "uniform", Runtime: laws[6], Weight: 1, MinWidth: 2, MaxWidth: 3, Tenant: 0, Policy: sweepPolicy(laws[6], 0.7, 0.999)},
		},
	}
}

func determinismCfg() Config {
	return Config{
		Nodes: []int{2, 3, 3},
		Tenants: []Tenant{
			{Name: "a", Budget: math.Inf(1), Quota: 5},
			{Name: "b", Budget: 1e7},
		},
		Backfill: BackfillEASY,
		Model:    costModelForSweep,
	}
}

// TestGenerateJobsWorkerIndependence: the generated workload must be
// bit-identical for every worker count — same IDs, tenants, widths,
// policies, and the same float bits for arrivals and runtimes.
func TestGenerateJobsWorkerIndependence(t *testing.T) {
	spec := determinismSpec(42, 3*genChunk/2) // crosses a chunk boundary
	base, err := GenerateJobs(spec, 1)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if len(base) != spec.Jobs {
		t.Fatalf("generated %d jobs, want %d", len(base), spec.Jobs)
	}
	prev := 0.0
	for _, j := range base {
		if j.Arrival < prev {
			t.Fatalf("arrivals not nondecreasing at job %d", j.ID)
		}
		prev = j.Arrival
	}
	for _, workers := range []int{4, 16} {
		got, err := GenerateJobs(spec, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range base {
			a, b := base[i], got[i]
			if a.ID != b.ID || a.Tenant != b.Tenant || a.Width != b.Width ||
				!sameFloat(a.Arrival, b.Arrival) || !sameFloat(a.Actual, b.Actual) ||
				len(a.Policy) != len(b.Policy) {
				t.Fatalf("workers=%d: job %d diverged: %+v vs %+v", workers, i, a, b)
			}
		}
	}
}

// TestRunTraceIdenticalAcrossWorkers: the full event trace — not just
// the results — must hash identically for Workers ∈ {1, 4, 16}.
func TestRunTraceIdenticalAcrossWorkers(t *testing.T) {
	spec := determinismSpec(7, 4000)
	cfg := determinismCfg()
	var ref RunOutput
	for i, workers := range []int{1, 4, 16} {
		out, err := Run(spec, cfg, workers, true)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = out
			if ref.TraceEvents == 0 {
				t.Fatal("empty trace")
			}
			continue
		}
		if out.TraceHash != ref.TraceHash || out.TraceEvents != ref.TraceEvents {
			t.Fatalf("workers=%d: trace hash %x (%d events) != workers=1 hash %x (%d events)",
				workers, out.TraceHash, out.TraceEvents, ref.TraceHash, ref.TraceEvents)
		}
		if !sameFloat(out.Stats.MeanWait, ref.Stats.MeanWait) || out.Stats.Jobs != ref.Stats.Jobs {
			t.Fatalf("workers=%d: stats diverged: %+v vs %+v", workers, out.Stats, ref.Stats)
		}
	}
}

// TestRunSameSeedReproduces: two runs of the same spec are
// bit-identical; a different seed is not (the hash actually
// discriminates).
func TestRunSameSeedReproduces(t *testing.T) {
	spec := determinismSpec(99, 2500)
	cfg := determinismCfg()
	a, err := Run(spec, cfg, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, cfg, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash || a.TraceEvents != b.TraceEvents {
		t.Fatalf("same seed diverged: %x vs %x", a.TraceHash, b.TraceHash)
	}
	spec.Seed++
	c, err := Run(spec, cfg, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if c.TraceHash == a.TraceHash {
		t.Fatalf("different seeds collided on hash %x", a.TraceHash)
	}
}
