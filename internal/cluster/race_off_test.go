//go:build !race

package cluster

// raceEnabled lets the heaviest tests scale down under the race
// detector (check.sh runs this package with -race too).
const raceEnabled = false
