package cluster

import (
	"math"
	"sort"
)

// eventLess is the total order every event structure agrees on:
// (time, start-order seq), without any float equality test. seq values
// are unique, so the order is strict.
//
//repro:hotpath
func eventLess(a, b finishEvent) bool {
	if a.time < b.time {
		return true
	}
	if b.time < a.time {
		return false
	}
	return a.seq < b.seq
}

const (
	// calMinBuckets is the smallest bucket count (power of two).
	calMinBuckets = 16
	// calMaxVirt guards the time→bucket mapping against int64
	// overflow: a virtual bucket number at or beyond 2^62 means the
	// bucket width has collapsed relative to the times and the queue
	// falls back to the heap.
	calMaxVirt = float64(1 << 62)
	// calSpanFactor: at a rebuild, if the pending times span more than
	// calSpanFactor years of buckets (span > factor · buckets · width),
	// the distribution is too spread for O(1) bucketing — fall back.
	calSpanFactor = 64
	// calDirectLimit: this many consecutive overloaded direct searches
	// (full scans with more events than buckets) mean the bucket
	// function stopped matching the distribution — fall back.
	calDirectLimit = 16
)

// calQueue is a calendar queue: pending completions hashed by time into
// width-sized buckets arranged in a circular "year". Push appends into
// the event's bucket (kept sorted by eventLess, scanning from the
// tail); pop advances a virtual bucket cursor until it meets a bucket
// whose head is due. With width tracking the median inter-event gap and
// the bucket count tracking the population (both adjusted at resize),
// push and pop are O(1) amortized.
//
// Correctness does not depend on the width heuristic, only on the
// bucket function vb(t) = int64(t·invWidth) being monotone in t and
// used consistently: the cursor invariant virt <= vb(pending minimum)
// holds because locate only advances virt to the minimum's bucket and
// push moves the cursor back when an event lands before it, and locate
// accepts a bucket head only when vb(head) <= virt —
// a head that is not the global minimum would need vb(head) < vb(min),
// i.e. head.time < min.time, a contradiction. Equal times share one
// bucket, which is sorted by (time, seq), so the heap's tie-break is
// reproduced exactly: pop order equals ascending eventLess order.
//
// When the time distribution degenerates — all-equal times (no positive
// gap to size a width from), a spread too wide for the bucket year,
// mapping overflow, or persistent overloaded direct searches — the
// queue flags itself degenerate and the owning eventCore drains it into
// the reference binary heap for the rest of the run.
type calQueue struct {
	b        [][]finishEvent
	mask     int
	n        int
	width    float64
	invWidth float64
	virt     int64 // virtual bucket cursor (year position)
	cur      int   // physical bucket cursor = virt & mask
	clean    bool  // cursor currently points at the minimum's bucket
	direct   int   // consecutive overloaded direct searches
	degener  bool  // fall back to the heap (see eventCore.push/pop)

	scratch []finishEvent // rebuild scratch
	times   []float64     // rebuild scratch
	gaps    []float64     // rebuild scratch
}

func newCalQueue() *calQueue {
	return &calQueue{
		b:        make([][]finishEvent, calMinBuckets),
		mask:     calMinBuckets - 1,
		width:    1,
		invWidth: 1,
	}
}

// vb maps a time to its virtual bucket. ok is false when the mapping
// overflows int64 range.
//
//repro:hotpath
func (q *calQueue) vb(t float64) (int64, bool) {
	f := t * q.invWidth
	if !(f < calMaxVirt) {
		return 0, false
	}
	return int64(f), true
}

// push inserts a completion, keeping its bucket sorted by eventLess.
//
//repro:hotpath
func (q *calQueue) push(e finishEvent) {
	v, ok := q.vb(e.time)
	if !ok {
		// Overflowed mapping: fall back to the always-correct heap.
		// The event still lands in a bucket so the drain sees it.
		q.degener = true
		v = q.virt
	} else if v < q.virt {
		// An event before the cursor — routine when a short attempt
		// starts while far-future completions are pending (locate had
		// advanced to the old minimum). Moving the cursor back keeps
		// the invariant virt <= vb(pending min); the next locate
		// rescans the gap, costing at most one extra year (amortized
		// against the pops that advanced past it).
		q.virt = v
		q.cur = int(v) & q.mask
	}
	idx := int(v) & q.mask
	//lint:ignore hotalloc bucket growth is amortized: steady-state pushes reuse bucket capacity retained across the year
	b := append(q.b[idx], e)
	i := len(b) - 1
	for i > 0 && eventLess(e, b[i-1]) {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	q.b[idx] = b
	q.n++
	q.clean = false
	if q.n > 2*len(q.b) && !q.degener {
		q.rebuild(2 * len(q.b))
	}
}

// top returns the earliest completion without removing it. Call only
// when n > 0.
//
//repro:hotpath
func (q *calQueue) top() finishEvent {
	q.locate()
	return q.b[q.cur][0]
}

// pop removes and returns the earliest completion. Call only when
// n > 0.
//
//repro:hotpath
func (q *calQueue) pop() finishEvent {
	q.locate()
	b := q.b[q.cur]
	e := b[0]
	copy(b, b[1:])
	q.b[q.cur] = b[:len(b)-1]
	q.n--
	q.clean = false
	if q.n < len(q.b)/8 && len(q.b) > calMinBuckets && !q.degener {
		q.rebuild(len(q.b) / 2)
	}
	return e
}

// locate advances the cursor to the bucket holding the minimum: scan
// up to one full year of buckets accepting the first due head; after a
// fruitless year (the pending events are all far in the future),
// search every bucket head directly and jump the cursor.
//
//repro:hotpath
func (q *calQueue) locate() {
	if q.clean || q.n == 0 {
		return
	}
	for i := 0; i < len(q.b); i++ {
		if b := q.b[q.cur]; len(b) > 0 {
			if v, ok := q.vb(b[0].time); ok && v <= q.virt {
				q.virt = v
				q.clean = true
				q.direct = 0
				return
			}
		}
		q.cur = (q.cur + 1) & q.mask
		q.virt++
	}
	q.directSearch()
}

// directSearch finds the minimum across all bucket heads (cold: only
// after a fruitless year scan) and repositions the cursor on it.
func (q *calQueue) directSearch() {
	best := -1
	var be finishEvent
	for i := range q.b {
		if len(q.b[i]) == 0 {
			continue
		}
		if best < 0 || eventLess(q.b[i][0], be) {
			best, be = i, q.b[i][0]
		}
	}
	q.cur = best
	if v, ok := q.vb(be.time); ok {
		q.virt = v
	} else {
		q.degener = true
	}
	q.clean = true
	if q.n > len(q.b) {
		// More events than buckets and still nothing within a year:
		// the width no longer matches the distribution.
		q.direct++
		if q.direct >= calDirectLimit {
			q.degener = true
		}
	} else {
		q.direct = 0
	}
}

// remove deletes the pending completion of the given job, which must
// be present and must have been pushed with this end time.
func (q *calQueue) remove(job int32, time float64) {
	v, ok := q.vb(time)
	if !ok {
		v = q.virt // mirror push's overflow placement
	}
	idx := int(v) & q.mask
	b := q.b[idx]
	for i := range b {
		if b[i].job == job {
			copy(b[i:], b[i+1:])
			q.b[idx] = b[:len(b)-1]
			q.n--
			q.clean = false
			return
		}
	}
	panic("cluster: calendar queue remove of absent job")
}

// rebuild resizes to nb buckets, re-deriving the width from the
// pending time distribution (3× the median positive gap — wide enough
// that a bucket holds a few events, narrow enough that a year covers
// the span). A growing population with no usable width means the
// distribution is genuinely unbucketable (all-equal times, or a span
// no year covers) and the queue flags degenerate, keeping its current
// (still correct) shape for the heap drain; a shrinking one — the tail
// of a drain, where the few survivors may be ties — just keeps the
// width that served the larger population.
func (q *calQueue) rebuild(nb int) {
	ev := q.scratch[:0]
	for _, b := range q.b {
		ev = append(ev, b...)
	}
	q.scratch = ev
	if len(ev) == 0 {
		return
	}

	q.times = q.times[:0]
	for _, e := range ev {
		q.times = append(q.times, e.time)
	}
	sort.Float64s(q.times)
	w, ok := q.calWidth(nb)
	if !ok {
		if nb > len(q.b) {
			q.degener = true
			return
		}
		w = q.width
	}
	inv := 1 / w
	lo := q.times[0] * inv
	hi := q.times[len(q.times)-1] * inv
	if !(hi < calMaxVirt) || !(lo < calMaxVirt) || math.IsNaN(lo) {
		q.degener = true
		return
	}
	q.width = w
	q.invWidth = inv
	q.b = make([][]finishEvent, nb)
	q.mask = nb - 1
	q.virt = int64(lo)
	q.cur = int(q.virt) & q.mask
	q.n = len(ev)
	q.clean = false
	q.direct = 0
	for _, e := range ev {
		q.insert(e)
	}
}

// insert is push without counters or resize checks, used by rebuild.
func (q *calQueue) insert(e finishEvent) {
	v, _ := q.vb(e.time) // rebuild verified the extremes map in range
	idx := int(v) & q.mask
	b := append(q.b[idx], e)
	i := len(b) - 1
	for i > 0 && eventLess(e, b[i-1]) {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	q.b[idx] = b
}

// calWidth derives the bucket width from the sorted pending times.
// ok is false when the distribution cannot be bucketed: all times
// equal (no positive gap) or a span so wide that a year of nb buckets
// cannot cover it at a gap-scaled width.
func (q *calQueue) calWidth(nb int) (float64, bool) {
	ts := q.times
	q.gaps = q.gaps[:0]
	for i := 1; i < len(ts); i++ {
		if g := ts[i] - ts[i-1]; g > 0 {
			q.gaps = append(q.gaps, g)
		}
	}
	if len(q.gaps) == 0 {
		return 0, false // all-equal times: nothing to size a width from
	}
	sort.Float64s(q.gaps)
	w := 3 * q.gaps[len(q.gaps)/2]
	if !(w > 0) || math.IsInf(w, 0) {
		return 0, false
	}
	if span := ts[len(ts)-1] - ts[0]; span > w*float64(nb)*calSpanFactor {
		return 0, false // e.g. times spread over many decades
	}
	return w, true
}

// eventCore is the pending-completion scheduler: a calendar queue by
// default (EngineCalendar), the reference binary heap either on request
// (EngineHeap) or permanently after the calendar flags a degenerate
// time distribution. Both structures pop in ascending eventLess order,
// so the engines are interchangeable event for event.
type eventCore struct {
	cal  *calQueue
	heap *eventHeap
}

func (c *eventCore) init(e Engine) {
	if e == EngineHeap {
		c.heap = newEventHeap()
	} else {
		c.cal = newCalQueue()
	}
}

//repro:hotpath
func (c *eventCore) size() int {
	if c.cal != nil {
		return c.cal.n
	}
	return c.heap.size()
}

//repro:hotpath
func (c *eventCore) top() finishEvent {
	if c.cal != nil {
		return c.cal.top()
	}
	return c.heap.top()
}

//repro:hotpath
func (c *eventCore) push(e finishEvent) {
	if c.cal != nil {
		c.cal.push(e)
		if c.cal.degener {
			c.spill()
		}
		return
	}
	c.heap.push(e)
}

//repro:hotpath
func (c *eventCore) pop() finishEvent {
	if c.cal != nil {
		e := c.cal.pop()
		if c.cal.degener {
			c.spill()
		}
		return e
	}
	return c.heap.pop()
}

func (c *eventCore) remove(job int32, time float64) {
	if c.cal != nil {
		c.cal.remove(job, time)
		return
	}
	c.heap.remove(job)
}

// appendPending snapshots every pending completion into buf (in no
// particular order — callers sort or select as needed).
//
//repro:hotpath
func (c *eventCore) appendPending(buf []finishEvent) []finishEvent {
	if c.cal != nil {
		for _, b := range c.cal.b {
			//lint:ignore hotalloc growth is amortized; callers pass a scratch buffer reused across scheduling passes
			buf = append(buf, b...)
		}
		return buf
	}
	//lint:ignore hotalloc growth is amortized; callers pass a scratch buffer reused across scheduling passes
	return append(buf, c.heap.ev...)
}

// spill permanently drains a degenerate calendar queue into the heap.
// Cold: at most once per simulation.
func (c *eventCore) spill() {
	h := newEventHeap()
	for _, b := range c.cal.b {
		for _, e := range b {
			h.push(e)
		}
	}
	c.heap = h
	c.cal = nil
}

// fellBack reports whether the calendar queue has been abandoned for
// the heap (test hook for the adversarial suites).
func (c *eventCore) fellBack() bool { return c.cal == nil }
