package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

// TestBrokenSchedulerIsCaught is the acceptance test for the checker's
// teeth: a deliberately broken scheduler — every allocation recorded
// against node 0, oversubscribing it as soon as there is any
// concurrency — must be caught by the capacity-conservation invariant.
// The internal accounting stays honest (the run completes), only the
// trace lies; that is exactly the class of bug the checker exists for.
func TestBrokenSchedulerIsCaught(t *testing.T) {
	cfg := Config{
		Nodes:                 UnitNodes(4),
		Backfill:              BackfillEASY,
		oversubscribeNodeZero: true,
	}
	inv := NewInvariants(cfg)
	cfg.Recorder = inv
	_, err := Simulate(cfg, []Job{
		{ID: 0, Arrival: 0, Width: 2, Actual: 5, Policy: []float64{5}},
		{ID: 1, Arrival: 1, Width: 2, Actual: 5, Policy: []float64{5}},
	})
	if err != nil {
		t.Fatalf("the broken scheduler still completes: %v", err)
	}
	verr := inv.Finish()
	if verr == nil {
		t.Fatal("oversubscription of node 0 was not caught")
	}
	if !strings.Contains(verr.Error(), "oversubscribed") {
		t.Fatalf("wrong violation: %v", verr)
	}
}

// TestBrokenSchedulerCleanWhenSerial: with one job at a time the
// mutated trace never oversubscribes, so the checker must stay silent —
// it detects real violations, not the mutation flag itself.
func TestBrokenSchedulerCleanWhenSerial(t *testing.T) {
	cfg := Config{
		Nodes:                 UnitNodes(4),
		oversubscribeNodeZero: true,
	}
	inv := NewInvariants(cfg)
	cfg.Recorder = inv
	_, err := Simulate(cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 1, Policy: []float64{1}},
		{ID: 1, Arrival: 5, Width: 1, Actual: 1, Policy: []float64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := inv.Finish(); verr != nil {
		t.Fatalf("serial trace cannot oversubscribe even mutated: %v", verr)
	}
}

// cleanTrace simulates a small multi-feature workload and returns its
// config and trace.
func cleanTrace(t *testing.T) (Config, []Event) {
	t.Helper()
	cfg := Config{
		Nodes: []int{2, 2},
		Tenants: []Tenant{
			{Name: "a", Budget: math.Inf(1), Quota: 2},
			{Name: "b", Budget: 50},
		},
		Backfill: BackfillEASY,
		Model:    costModelForSweep,
	}
	var buf TraceBuffer
	cfg.Recorder = &buf
	_, err := Simulate(cfg, []Job{
		{ID: 0, Tenant: 0, Arrival: 0, Width: 2, Actual: 6, Policy: []float64{2, 4, 8}},
		{ID: 1, Tenant: 0, Arrival: 1, Width: 2, Actual: 3, Policy: []float64{4}},
		{ID: 2, Tenant: 1, Arrival: 1, Width: 1, Actual: 2, Policy: []float64{3}},
		{ID: 3, Tenant: 1, Arrival: 2, Width: 1, Actual: 30, Policy: []float64{40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTrace(cfg, buf.Events); err != nil {
		t.Fatalf("baseline trace must be clean: %v", err)
	}
	return cfg, buf.Events
}

// TestTamperedTracesAreCaught mutates a clean trace one field at a time
// and asserts each corruption trips a distinct invariant.
func TestTamperedTracesAreCaught(t *testing.T) {
	cfg, events := cleanTrace(t)
	find := func(kind EventKind) int {
		for i, ev := range events {
			if ev.Kind == kind {
				return i
			}
		}
		t.Fatalf("trace has no %v event", kind)
		return -1
	}
	cases := []struct {
		name   string
		mutate func(evs []Event)
		want   string
	}{
		{"duplicate seq", func(evs []Event) {
			i := find(EvStart)
			evs[i].Seq = evs[i-1].Seq
		}, "seq"},
		{"time reversal", func(evs []Event) {
			evs[len(evs)-1].Time = -1
		}, "time went backwards"},
		{"double arrival", func(evs []Event) {
			i := find(EvArrive)
			evs[i+1] = evs[i]
			evs[i+1].Seq++
		}, "second arrival"},
		{"inflated debit", func(evs []Event) {
			i := find(EvAdmit)
			evs[i].B *= 2
		}, "debit"},
		{"oversized refund", func(evs []Event) {
			i := find(EvFinish)
			evs[i].B += 1e6
		}, "refund"},
		{"alloc overflow", func(evs []Event) {
			i := find(EvAlloc)
			evs[i].A += 64
		}, "alloc"},
		{"free without hold", func(evs []Event) {
			i := find(EvFree)
			evs[i].A += 1
		}, "free"},
		{"start before admit", func(evs []Event) {
			i := find(EvAdmit)
			evs[i].Kind = EvStart
			evs[i].A = 2
		}, "start in phase"},
	}
	for _, tc := range cases {
		mutated := append([]Event(nil), events...)
		tc.mutate(mutated)
		err := CheckTrace(cfg, mutated)
		if err == nil {
			t.Errorf("%s: corruption not caught", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: violation %v does not mention %q", tc.name, err, tc.want)
		}
	}

	// A truncated trace loses the last job's terminal event: the
	// completeness (no-starvation) check in Finish must notice.
	err := CheckTrace(cfg, events[:len(events)-1])
	if err == nil || !strings.Contains(err.Error(), "terminal") {
		t.Errorf("truncated trace: got %v, want a missing-terminal violation", err)
	}
}

// TestInvariantsLatchFirstError: after one violation the checker stops
// evaluating (and does not panic on the rest of a poisoned stream).
func TestInvariantsLatchFirstError(t *testing.T) {
	cfg, events := cleanTrace(t)
	inv := NewInvariants(cfg)
	bad := events[0]
	bad.Kind = EvStart // start before arrive
	inv.Record(bad)
	first := inv.Err()
	if first == nil {
		t.Fatal("violation not detected")
	}
	for _, ev := range events {
		inv.Record(ev)
	}
	if inv.Err() != first {
		t.Fatalf("error was overwritten: %v", inv.Err())
	}
	if inv.Finish() != first {
		t.Fatalf("Finish must return the latched error")
	}
}

// TestInvariantsMillionJobTrace streams a seven-figure-event trace
// through the checker: a 1M-job fleet over mixed laws, tenants with
// real budgets and quotas, EASY backfilling. Skipped in -short and
// under the race detector (it is a throughput test of the
// checker/simulator pair, not a concurrency test).
func TestInvariantsMillionJobTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("million-job trace skipped in -short")
	}
	if raceEnabled {
		t.Skip("million-job trace skipped under -race")
	}
	laws := dist.Table1()
	spec := WorkloadSpec{
		Seed:        2026,
		Jobs:        1_000_000,
		ArrivalRate: 70,
		Classes: []JobClass{
			{Name: "exp", Runtime: laws[0], Weight: 4, MinWidth: 1, MaxWidth: 3, Tenant: 0, Policy: sweepPolicy(laws[0], 0.6, 0.9, 0.999)},
			{Name: "gamma", Runtime: laws[2], Weight: 2, MinWidth: 1, MaxWidth: 2, Tenant: 1, Policy: sweepPolicy(laws[2], 0.5, 0.9, 0.999)},
			{Name: "bpar", Runtime: laws[8], Weight: 1, MinWidth: 2, MaxWidth: 4, Tenant: 2, Policy: sweepPolicy(laws[8], 0.8, 0.999)},
		},
	}
	cfg := Config{
		Nodes: []int{64, 64, 64, 64},
		Tenants: []Tenant{
			{Name: "a", Budget: math.Inf(1)},
			{Name: "b", Budget: math.Inf(1), Quota: 96},
			{Name: "c", Budget: 5e6, Quota: 64},
		},
		Backfill: BackfillEASY,
		Model:    costModelForSweep,
	}
	out, err := Run(spec, cfg, 0, true)
	if err != nil {
		t.Fatalf("million-job run: %v", err)
	}
	if out.Stats.Jobs != spec.Jobs {
		t.Fatalf("summarized %d jobs, want %d", out.Stats.Jobs, spec.Jobs)
	}
	// ~8 events per job (arrive/admit/start/allocs/frees/terminal ×
	// attempts): sanity-check the trace really was fleet-scale.
	if out.TraceEvents < 5_000_000 {
		t.Fatalf("trace suspiciously small: %d events", out.TraceEvents)
	}
	if out.Stats.Utilization <= 0 || out.Stats.Utilization > 1 {
		t.Fatalf("utilization %g out of range", out.Stats.Utilization)
	}
}
