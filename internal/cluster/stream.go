package cluster

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// ResultSink consumes per-job results as jobs retire — in completion
// order, from the simulation goroutine (no synchronization needed).
// StatsAccumulator is the standard sink; tests use small collecting
// sinks.
type ResultSink interface {
	Add(r Result)
}

// jobFeed generates a WorkloadSpec chunk by chunk during the
// simulation, so RunStream never materializes the whole job array:
// chunks are drawn in waves a little ahead of the arrival cursor and
// their buffers recycled the moment the last job of a chunk retires.
// Each chunk owns the same rng.Split stream GenerateJobs would give it
// and the cross-chunk arrival offset is accumulated in generation
// order, so the fed workload is bit-identical to the buffered one.
type jobFeed struct {
	spec    *WorkloadSpec
	cum     []float64
	streams []*rng.Source
	chunks  int
	nextGen int     // next chunk index to generate
	offset  float64 // cross-chunk arrival prefix (generation order)
	workers int
	wave    int // chunks generated per wave
	tenants int
	total   int // cluster capacity, for width validation

	jobPool [][]Job      // recycled chunk buffers (cap genChunk)
	stPool  [][]jobState // recycled state buffers (cap genChunk)
	sums    []float64    // per-wave scratch
	offs    []float64
	errs    []error
}

// newJobFeed validates the spec (and each class policy once — every
// job shares its class's policy slice, so per-job policy validation
// would be redundant work) and prepares the generation state.
func newJobFeed(spec *WorkloadSpec, cfg *Config, workers int) (*jobFeed, error) {
	cum, err := workloadCum(spec)
	if err != nil {
		return nil, err
	}
	for i := range spec.Classes {
		c := &spec.Classes[i]
		if err := validatePolicy(c.Policy, fmt.Sprintf("class %d (%s)", i, c.Name)); err != nil {
			return nil, err
		}
	}
	tenants := len(cfg.Tenants)
	if tenants == 0 {
		tenants = 1
	}
	w := workers
	if w <= 0 {
		w = 4
	}
	wave := 2 * w
	if wave > 8 {
		wave = 8
	}
	chunks := (spec.Jobs + genChunk - 1) / genChunk
	return &jobFeed{
		spec:    spec,
		cum:     cum,
		streams: rng.Split(spec.Seed, chunks),
		chunks:  chunks,
		workers: workers,
		wave:    wave,
		tenants: tenants,
		total:   cfg.Capacity(),
		sums:    make([]float64, wave),
		offs:    make([]float64, wave),
		errs:    make([]error, wave),
	}, nil
}

// ensure makes chunk c (and, by waves, a little beyond it) resident.
func (f *jobFeed) ensure(s *sim, c int) error {
	for f.nextGen <= c {
		if err := f.generateWave(s); err != nil {
			return err
		}
	}
	return nil
}

// generateWave draws the next wave of chunks in parallel, validates
// them, then applies the sequential cross-chunk arrival offset — the
// same two-pass scan as GenerateJobs, restricted to a window.
func (f *jobFeed) generateWave(s *sim) error {
	n := f.wave
	if f.nextGen+n > f.chunks {
		n = f.chunks - f.nextGen
	}
	base := f.nextGen
	for w := 0; w < n; w++ {
		c := base + w
		lo := c * genChunk
		hi := lo + genChunk
		if hi > f.spec.Jobs {
			hi = f.spec.Jobs
		}
		s.jobCh[c] = f.takeJobs(hi - lo)
		s.stCh[c] = f.takeStates(hi - lo)
		f.errs[w] = nil
	}
	parallel.ForEach(n, f.workers, func(w int) {
		c := base + w
		jobs := s.jobCh[c]
		f.sums[w] = genChunkInto(f.spec, f.cum, f.streams[c], c, jobs)
		for i := range jobs {
			if err := validateJob(&jobs[i], f.tenants, f.total); err != nil {
				f.errs[w] = err
				return
			}
		}
		initStates(s.stCh[c])
	})
	for w := 0; w < n; w++ {
		if f.errs[w] != nil {
			return f.errs[w]
		}
	}
	for w := 0; w < n; w++ {
		f.offs[w] = f.offset
		f.offset += f.sums[w]
	}
	parallel.ForEach(n, f.workers, func(w int) {
		c := base + w
		off := f.offs[w]
		jobs := s.jobCh[c]
		for i := range jobs {
			jobs[i].Arrival += off
		}
		// One reference per job plus one for the arrival cursor
		// passing the chunk's end.
		s.chLive[c] = int32(len(jobs)) + 1
	})
	f.nextGen += n
	return nil
}

// takeJobs reuses a recycled chunk buffer when one is free. Only the
// final chunk is shorter than genChunk, so the fixed capacity always
// fits.
func (f *jobFeed) takeJobs(n int) []Job {
	if k := len(f.jobPool); k > 0 {
		b := f.jobPool[k-1]
		f.jobPool = f.jobPool[:k-1]
		return b[:n]
	}
	return make([]Job, n, genChunk)
}

func (f *jobFeed) takeStates(n int) []jobState {
	if k := len(f.stPool); k > 0 {
		b := f.stPool[k-1]
		f.stPool = f.stPool[:k-1]
		return b[:n]
	}
	return make([]jobState, n, genChunk)
}

// chunkArrived drops the arrival-cursor reference on a chunk whose
// jobs have all arrived. No-op for buffered runs.
func (s *sim) chunkArrived(c int32) {
	if s.feed != nil {
		s.chunkRelease(c)
	}
}

// retireJob drops a finished job's reference on its chunk. No-op for
// buffered runs.
func (s *sim) retireJob(j int32) {
	if s.feed != nil {
		s.chunkRelease(j >> chunkShift)
	}
}

// chunkRelease recycles the chunk's buffers once its last reference
// drops: every job retired and the arrival cursor past its end.
func (s *sim) chunkRelease(c int32) {
	s.chLive[c]--
	if s.chLive[c] != 0 {
		return
	}
	s.feed.jobPool = append(s.feed.jobPool, s.jobCh[c][:0])
	s.feed.stPool = append(s.feed.stPool, s.stCh[c][:0])
	s.jobCh[c] = nil
	s.stCh[c] = nil
}

// simulateFeed runs the event loop over a chunk-fed workload.
func simulateFeed(cfg *Config, spec *WorkloadSpec, workers int, sink ResultSink) error {
	if err := validate(cfg, nil); err != nil {
		return err
	}
	feed, err := newJobFeed(spec, cfg, workers)
	if err != nil {
		return err
	}
	s := newSim(cfg, spec.Jobs)
	s.feed = feed
	s.sink = sink
	s.jobCh = make([][]Job, feed.chunks)
	s.stCh = make([][]jobState, feed.chunks)
	s.chLive = make([]int32, feed.chunks)
	return s.loop()
}

// StreamOutput is RunStream's summary: everything RunOutput carries
// except the per-job result slice, which a streaming run never
// materializes.
type StreamOutput struct {
	// Stats is the workload summary. Counters, extremes, quantiles,
	// and the trace are bit-identical to Run's; the float sums behind
	// the means and Utilization are accumulated in completion order
	// rather than ID order, so those may differ from Run in the last
	// bits (and are themselves deterministic for a given spec).
	Stats Stats
	// TraceHash fingerprints the full event trace; equal to Run's for
	// the same spec and config.
	TraceHash uint64
	// TraceEvents is the trace length.
	TraceEvents uint64
}

// RunStream is Run at O(1) memory per job: the workload is generated
// chunk by chunk alongside the event loop (chunk buffers recycled as
// jobs retire) and results stream into a StatsAccumulator instead of
// a buffer, so tens of millions of jobs need only the in-flight
// window. With check set, a streaming Invariants recorder rides along.
func RunStream(spec WorkloadSpec, cfg Config, workers int, check bool) (StreamOutput, error) {
	var out StreamOutput
	acc := NewStatsAccumulator()
	hash, err := runStreamInto(&spec, cfg, workers, check, acc)
	if err != nil {
		return out, err
	}
	out.Stats = acc.Stats(cfg.Capacity())
	out.TraceHash = hash.Sum64()
	out.TraceEvents = hash.Events()
	return out, nil
}

// runStreamInto wires the standard recorder stack (trace hash, caller
// recorder, optional invariants) around simulateFeed.
func runStreamInto(spec *WorkloadSpec, cfg Config, workers int, check bool, sink ResultSink) (*TraceHash, error) {
	hash := NewTraceHash()
	var inv *Invariants
	recs := []Recorder{hash, cfg.Recorder}
	if check {
		inv = NewInvariants(cfg)
		recs = append(recs, inv)
	}
	cfg.Recorder = MultiRecorder(recs...)
	if err := simulateFeed(&cfg, spec, workers, sink); err != nil {
		return nil, err
	}
	if inv != nil {
		if err := inv.Finish(); err != nil {
			return nil, err
		}
	}
	return hash, nil
}
