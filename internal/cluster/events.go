package cluster

import "math"

// EventKind enumerates the observable state transitions of the
// simulator. Every mutation of cluster state is announced as exactly
// one event, in processing order, so a Recorder sees a serializable,
// replayable history: the Invariants checker replays it against the
// entity model, TraceHash fingerprints it for the determinism suites,
// and TraceBuffer materializes it for tests.
type EventKind uint8

const (
	// EvArrive: a job entered the system. A carries the width.
	EvArrive EventKind = iota
	// EvAdmit: one attempt was submitted and its worst-case cost
	// debited from the tenant's budget. A is the requested walltime,
	// B the debit. Flag reports that the attempt was parked in the
	// tenant's quota hold queue instead of entering the run queue.
	EvAdmit
	// EvReject: the attempt was refused and the job is terminal. With
	// Flag false the tenant's budget ran out: A is the needed amount,
	// B the remaining balance. With Flag true the job's width exceeds
	// the tenant's quota and could never run: A is the width, B the
	// quota.
	EvReject
	// EvRelease: a quota-held attempt moved into the run queue.
	EvRelease
	// EvStart: the attempt began executing. A is the width; Flag
	// reports a backfill start (out of FCFS order).
	EvStart
	// EvAlloc: the started attempt took A capacity units on Node.
	// The EvAllocs directly following an EvStart sum to the width.
	EvAlloc
	// EvFree: the finished attempt returned A capacity units to Node.
	EvFree
	// EvFinish: the attempt completed within its reservation; the job
	// is terminal. A is the used walltime, B the refunded cost.
	EvFinish
	// EvKill: the attempt hit its reservation limit. A is the
	// reservation. Flag reports that the policy is exhausted and the
	// job terminal; otherwise an EvAdmit for the next attempt follows
	// at the same timestamp.
	EvKill
	// EvPreempt: the running (backfilled) attempt was evicted to
	// unblock the queue head. A is the elapsed runtime, B the
	// refunded cost. An EvAdmit resubmitting the same attempt (or an
	// EvReject) follows at the same timestamp.
	EvPreempt
)

// String returns the event kind's mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvAdmit:
		return "admit"
	case EvReject:
		return "reject"
	case EvRelease:
		return "release"
	case EvStart:
		return "start"
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	case EvFinish:
		return "finish"
	case EvKill:
		return "kill"
	case EvPreempt:
		return "preempt"
	}
	return "unknown"
}

// Event is one entry of the simulation trace. Job is the index of the
// job in Simulate's arrival-sorted order (not Job.ID); Tenant is the
// tenant index. The A/B payloads are documented per kind. Events carry
// no pointers, so recording them allocates nothing.
type Event struct {
	// Seq is the strictly increasing trace position.
	Seq uint64
	// Time is the simulation timestamp; nondecreasing in Seq.
	Time float64
	// Kind is the transition announced.
	Kind EventKind
	// Job is the arrival-order job index.
	Job int32
	// Attempt is the 0-based policy attempt the event concerns.
	Attempt int32
	// Node is the node index for EvAlloc/EvFree, -1 otherwise.
	Node int32
	// Tenant is the job's tenant index.
	Tenant int32
	// A and B are per-kind payloads.
	A, B float64
	// Flag is the per-kind boolean payload.
	Flag bool
}

// Recorder consumes the event stream. Record is called once per event,
// in Seq order, from the simulation goroutine (no synchronization
// needed). Implementations must not retain pointers into simulator
// state — Event is self-contained by construction.
type Recorder interface {
	Record(ev Event)
}

// BatchRecorder is the optional batched extension of Recorder: the
// calendar-queue engine buffers events in a fixed slab and hands whole
// batches over, replacing one interface call per event with one per
// batch. RecordBatch receives events in Seq order and must behave
// exactly like calling Record on each; the batch slice is only valid
// for the duration of the call.
type BatchRecorder interface {
	Recorder
	RecordBatch(evs []Event)
}

// TraceBuffer materializes the whole event stream; intended for tests
// and small traces (a million-job run emits several million events —
// use the streaming Invariants or TraceHash recorders there).
type TraceBuffer struct {
	// Events is the recorded stream in Seq order.
	Events []Event
}

// Record appends the event.
func (t *TraceBuffer) Record(ev Event) { t.Events = append(t.Events, ev) }

// RecordBatch appends a batch.
func (t *TraceBuffer) RecordBatch(evs []Event) { t.Events = append(t.Events, evs...) }

// TraceHash folds the event stream into one FNV-1a fingerprint. Two
// runs are bit-identical iff every field of every event matches, so
// comparing Sum64 across worker counts or repeated runs is the cheap
// whole-trace equality test used by the determinism suite.
type TraceHash struct {
	h uint64
	n uint64
}

// NewTraceHash returns an empty fingerprint.
func NewTraceHash() *TraceHash {
	return &TraceHash{h: fnvOffset}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Record folds one event into the fingerprint.
//
//repro:hotpath
func (t *TraceHash) Record(ev Event) {
	t.h = foldEvent(t.h, &ev)
	t.n++
}

// RecordBatch folds a batch, keeping the running state in a register
// across events.
//
//repro:hotpath
func (t *TraceHash) RecordBatch(evs []Event) {
	h := t.h
	for i := range evs {
		h = foldEvent(h, &evs[i])
	}
	t.h = h
	t.n += uint64(len(evs))
}

// foldEvent mixes every field of one event into the running state.
//
//repro:hotpath
func foldEvent(h uint64, ev *Event) uint64 {
	h = fnvMix(h, ev.Seq)
	h = fnvMix(h, math.Float64bits(ev.Time))
	h = fnvMix(h, uint64(ev.Kind))
	h = fnvMix(h, uint64(uint32(ev.Job)))
	h = fnvMix(h, uint64(uint32(ev.Attempt)))
	h = fnvMix(h, uint64(uint32(ev.Node)))
	h = fnvMix(h, uint64(uint32(ev.Tenant)))
	h = fnvMix(h, math.Float64bits(ev.A))
	h = fnvMix(h, math.Float64bits(ev.B))
	var f uint64
	if ev.Flag {
		f = 1
	}
	return fnvMix(h, f)
}

// fnvMix folds one 64-bit word into the running state. Earlier
// revisions fed FNV-1a byte by byte — eight multiplies per word; one
// xor-multiply per word is an eighth of the work and keeps the
// property the determinism suites rely on: each step h' = (h^v)·prime
// is a bijection in h and in v separately, so changing any single
// field of any event always changes the final state. Hash values
// differ from the byte-wise variant; nothing pins them — only equality
// across runs, engines, and worker counts matters.
//
//repro:hotpath
func fnvMix(h, v uint64) uint64 {
	return (h ^ v) * fnvPrime
}

// Sum64 returns the fingerprint of the events recorded so far.
func (t *TraceHash) Sum64() uint64 { return t.h }

// Events returns how many events were folded in.
func (t *TraceHash) Events() uint64 { return t.n }

// multiRecorder fans one stream out to several recorders in order.
type multiRecorder struct {
	recs []Recorder
}

// MultiRecorder combines recorders; nil entries are dropped. It
// returns nil when nothing remains, which Simulate treats as "don't
// record".
func MultiRecorder(recs ...Recorder) Recorder {
	kept := make([]Recorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multiRecorder{recs: kept}
}

// Record forwards the event to every recorder.
func (m *multiRecorder) Record(ev Event) {
	for _, r := range m.recs {
		r.Record(ev)
	}
}

// RecordBatch forwards the batch, batched where the recorder supports
// it and event by event otherwise.
func (m *multiRecorder) RecordBatch(evs []Event) {
	for _, r := range m.recs {
		if br, ok := r.(BatchRecorder); ok {
			br.RecordBatch(evs)
			continue
		}
		for i := range evs {
			r.Record(evs[i])
		}
	}
}
