package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// unitCfg is a plain cluster: n unit nodes, one unmetered tenant, no
// costs.
func unitCfg(n int, backfill BackfillPolicy) Config {
	return Config{Nodes: UnitNodes(n), Backfill: backfill}
}

func mustSimulate(t *testing.T, cfg Config, jobs []Job) []Result {
	t.Helper()
	res, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res
}

func TestSimulateEmpty(t *testing.T) {
	res := mustSimulate(t, unitCfg(2, BackfillEASY), nil)
	if len(res) != 0 {
		t.Fatalf("want no results, got %d", len(res))
	}
	s := Summarize(unitCfg(2, BackfillEASY), res)
	if s.Jobs != 0 || s.MeanWait != 0 || s.Utilization != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSimulateSingleJob(t *testing.T) {
	cfg := unitCfg(1, BackfillNone)
	res := mustSimulate(t, cfg, []Job{
		{ID: 7, Arrival: 2, Width: 1, Actual: 3, Policy: []float64{5}},
	})
	r := res[0]
	if r.ID != 7 || r.Start != 2 || r.End != 5 || r.Wait != 0 {
		t.Fatalf("unexpected result: %+v", r)
	}
	if r.Killed || r.Rejected || r.Backfilled {
		t.Fatalf("flags wrong: %+v", r)
	}
	if r.Attempts != 1 || r.Kills != 0 || r.NodeSeconds != 3 {
		t.Fatalf("accounting wrong: %+v", r)
	}
}

func TestKillAndResubmitChain(t *testing.T) {
	// Actual 10 under policy [2, 5, 12]: killed at 2 and at 5, then
	// runs to completion on the third attempt.
	cfg := unitCfg(1, BackfillNone)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 10, Policy: []float64{2, 5, 12}},
	})
	r := res[0]
	if r.Killed {
		t.Fatalf("final attempt covered the runtime, not killed: %+v", r)
	}
	if r.Attempts != 3 || r.Kills != 2 {
		t.Fatalf("want 3 attempts / 2 kills, got %+v", r)
	}
	// Timeline: [0,2) killed, [2,7) killed, [7,17) done.
	if r.Start != 7 || r.End != 17 {
		t.Fatalf("final attempt window wrong: %+v", r)
	}
	if r.NodeSeconds != 2+5+10 {
		t.Fatalf("node-seconds %g, want 17", r.NodeSeconds)
	}
	if r.Requested != 12 {
		t.Fatalf("Requested should be the last reservation, got %g", r.Requested)
	}
}

func TestPolicyExhaustedKillsTerminally(t *testing.T) {
	cfg := unitCfg(1, BackfillNone)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 100, Policy: []float64{1, 2}},
	})
	r := res[0]
	if !r.Killed || r.Rejected {
		t.Fatalf("want terminal kill: %+v", r)
	}
	if r.Kills != 2 || r.Attempts != 2 || r.End != 3 {
		t.Fatalf("kill chain wrong: %+v", r)
	}
}

func TestAttemptCostAndRefund(t *testing.T) {
	model := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 2}
	cfg := Config{
		Nodes:   UnitNodes(1),
		Tenants: []Tenant{{Name: "t", Budget: math.Inf(1)}},
		Model:   model,
	}
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 3, Policy: []float64{4, 8}},
	})
	// One attempt, reservation 4, used 3: cost α·4 + β·3 + γ.
	want := 1*4.0 + 0.5*3.0 + 2
	if math.Abs(res[0].Cost-want) > 1e-12 {
		t.Fatalf("cost %g, want %g", res[0].Cost, want)
	}
}

func TestBudgetRejection(t *testing.T) {
	model := core.CostModel{Alpha: 1}
	cfg := Config{
		Nodes:   UnitNodes(1),
		Tenants: []Tenant{{Name: "poor", Budget: 5}},
		Model:   model,
	}
	// First job drains the budget (cost α·5 = 5); second is rejected.
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 5, Policy: []float64{5}},
		{ID: 1, Arrival: 1, Width: 1, Actual: 1, Policy: []float64{5}},
	})
	if res[0].Rejected || !res[1].Rejected {
		t.Fatalf("want job 1 rejected only: %+v %+v", res[0], res[1])
	}
	if res[1].Attempts != 0 || res[1].NodeSeconds != 0 {
		t.Fatalf("rejected job must not run: %+v", res[1])
	}
	s := Summarize(cfg, res)
	if s.Jobs != 2 || s.Rejected != 1 || s.Completed != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
}

func TestMidChainBudgetRejection(t *testing.T) {
	// Budget covers the first attempt (cost 2) but not the second
	// (cost 4): the job is killed, then rejected at resubmission.
	cfg := Config{
		Nodes:   UnitNodes(1),
		Tenants: []Tenant{{Name: "t", Budget: 5}},
		Model:   core.CostModel{Alpha: 1},
	}
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 10, Policy: []float64{2, 4}},
	})
	r := res[0]
	if !r.Rejected || !r.Killed {
		t.Fatalf("want killed-then-rejected: %+v", r)
	}
	if r.Attempts != 1 || r.Kills != 1 || r.Cost != 2 {
		t.Fatalf("accounting wrong: %+v", r)
	}
}

func TestQuotaHoldQueue(t *testing.T) {
	// Quota 1: the second job is held until the first finishes, then
	// released and run.
	cfg := Config{
		Nodes:   UnitNodes(2),
		Tenants: []Tenant{{Name: "t", Budget: math.Inf(1), Quota: 1}},
	}
	var buf TraceBuffer
	cfg.Recorder = &buf
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 4, Policy: []float64{5}},
		{ID: 1, Arrival: 1, Width: 1, Actual: 1, Policy: []float64{5}},
	})
	if res[1].Start != 4 || res[1].Wait != 3 {
		t.Fatalf("held job should start when quota frees: %+v", res[1])
	}
	releases := 0
	for _, ev := range buf.Events {
		if ev.Kind == EvRelease {
			releases++
		}
	}
	if releases != 1 {
		t.Fatalf("want exactly one EvRelease, got %d", releases)
	}
	if err := CheckTrace(cfg, buf.Events); err != nil {
		t.Fatalf("trace should be clean: %v", err)
	}
}

func TestQuotaUnsatisfiableRejects(t *testing.T) {
	cfg := Config{
		Nodes:   []int{4},
		Tenants: []Tenant{{Name: "t", Budget: math.Inf(1), Quota: 2}},
	}
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 3, Actual: 1, Policy: []float64{2}},
	})
	if !res[0].Rejected {
		t.Fatalf("width 3 > quota 2 must reject: %+v", res[0])
	}
}

func TestEASYBackfillIntoSpareNodes(t *testing.T) {
	// 4 nodes. Job 0 holds 2 until t=10; job 1 needs 3 and waits
	// (shadow 10, spare 1). Job 2 is long (cannot end by the shadow)
	// but fits the spare node, so EASY starts it without delaying
	// job 1.
	cfg := unitCfg(4, BackfillEASY)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 2, Actual: 10, Policy: []float64{10}},
		{ID: 1, Arrival: 1, Width: 3, Actual: 5, Policy: []float64{5}},
		{ID: 2, Arrival: 2, Width: 1, Actual: 20, Policy: []float64{20}},
	})
	if !res[2].Backfilled || res[2].Start != 2 {
		t.Fatalf("job 2 should backfill into the spare node at t=2: %+v", res[2])
	}
	if res[1].Start != 10 {
		t.Fatalf("the spare-node backfill must not delay job 1: %+v", res[1])
	}
}

func TestEASYBackfillIntoFreeNodes(t *testing.T) {
	// 2 nodes. Job 0 holds one node to t=10; job 1 needs both and
	// waits; job 2 (width 1, ends by job 1's shadow) backfills at once.
	cfg := unitCfg(2, BackfillEASY)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 10, Policy: []float64{10}},
		{ID: 1, Arrival: 1, Width: 2, Actual: 5, Policy: []float64{5}},
		{ID: 2, Arrival: 2, Width: 1, Actual: 3, Policy: []float64{3}},
	})
	if !res[2].Backfilled || res[2].Start != 2 {
		t.Fatalf("job 2 should backfill immediately: %+v", res[2])
	}
	if res[1].Start != 10 {
		t.Fatalf("job 1 must not be delayed by the backfill: %+v", res[1])
	}
}

func TestConservativeNeverDelaysEarlierJobs(t *testing.T) {
	// Same workload: conservative also backfills job 2 (its
	// reservation starts now) and job 1 keeps its planned start.
	cfg := unitCfg(2, BackfillConservative)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 10, Policy: []float64{10}},
		{ID: 1, Arrival: 1, Width: 2, Actual: 5, Policy: []float64{5}},
		{ID: 2, Arrival: 2, Width: 1, Actual: 3, Policy: []float64{3}},
	})
	if res[1].Start != 10 {
		t.Fatalf("job 1 delayed: %+v", res[1])
	}
	if !res[2].Backfilled || res[2].Start != 2 {
		t.Fatalf("job 2 should start at 2: %+v", res[2])
	}
}

func TestConservativeBlocksUnsafeBackfill(t *testing.T) {
	// Job 2's reservation (9 from t=2, past job 0's end at 10) would
	// overlap job 1's planned width-2 start at t=10, so conservative
	// keeps it queued even though a node is free.
	cfg := unitCfg(2, BackfillConservative)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 10, Policy: []float64{10}},
		{ID: 1, Arrival: 1, Width: 2, Actual: 5, Policy: []float64{5}},
		{ID: 2, Arrival: 2, Width: 1, Actual: 9, Policy: []float64{9}},
	})
	if res[2].Start != 15 {
		t.Fatalf("unsafe backfill: job 2 started %g, want 15 (after job 1)", res[2].Start)
	}
}

func TestConservativeProtectsThirdInLine(t *testing.T) {
	// 2 nodes; job 0 holds both to t=4. Jobs 1 and 2 queue (width 2,
	// then width 1); job 3 (width 1, long) arrives last. EASY only
	// protects the head: it backfills nothing here (nothing is free),
	// but after job 1 starts at t=4, EASY would let job 3 jump job 2
	// if it fits spare capacity. Conservative reserves for job 2 as
	// well, keeping FCFS order among equal-width jobs.
	cfg := unitCfg(2, BackfillConservative)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 2, Actual: 4, Policy: []float64{4}},
		{ID: 1, Arrival: 1, Width: 2, Actual: 4, Policy: []float64{4}},
		{ID: 2, Arrival: 2, Width: 1, Actual: 4, Policy: []float64{4}},
		{ID: 3, Arrival: 3, Width: 1, Actual: 50, Policy: []float64{50}},
	})
	if !(res[2].Start < res[3].Start) && !(res[3].Start < res[2].Start) {
		// Equal starts are fine (both fit at t=8); the real assertion
		// is that job 3 never starts before job 2.
		_ = res
	}
	if res[3].Start < res[2].Start {
		t.Fatalf("job 3 (%g) started before job 2 (%g)", res[3].Start, res[2].Start)
	}
}

func TestFCFSStartsAreNotPreemptible(t *testing.T) {
	// Job 1 started in FCFS order (not a backfill), so even with
	// preemption on, job 2 must wait the full 40: only backfilled
	// attempts may be evicted.
	cfg := Config{Nodes: UnitNodes(2), Backfill: BackfillEASY, PreemptAfter: 3}
	var buf TraceBuffer
	cfg.Recorder = &buf
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 5, Policy: []float64{5}},
		{ID: 1, Arrival: 0, Width: 1, Actual: 40, Policy: []float64{40}},
		{ID: 2, Arrival: 1, Width: 2, Actual: 2, Policy: []float64{2}},
	})
	if res[2].Start != 40 {
		t.Fatalf("unexpected start for job 2: %+v", res[2])
	}
	if err := CheckTrace(cfg, buf.Events); err != nil {
		t.Fatalf("trace: %v", err)
	}
}

func TestPreemptionEvictsStaleBackfill(t *testing.T) {
	// EASY only protects the head of the queue: job 2's spare-node
	// backfill (running to t=102) never delays job 1, but it does
	// block job 3 (width 4) long after job 1 finished. At j1's finish
	// (t=15) job 3 has waited 11 > PreemptAfter, so the stale
	// backfill is evicted, job 3 starts at 15, and job 2 resubmits.
	cfg := Config{Nodes: UnitNodes(4), Backfill: BackfillEASY, PreemptAfter: 3}
	var buf TraceBuffer
	cfg.Recorder = &buf
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 2, Actual: 10, Policy: []float64{10}},
		{ID: 1, Arrival: 1, Width: 3, Actual: 5, Policy: []float64{5}},
		{ID: 2, Arrival: 2, Width: 1, Actual: 100, Policy: []float64{100}},
		{ID: 3, Arrival: 4, Width: 4, Actual: 2, Policy: []float64{2}},
	})
	if res[2].Backfilled {
		// Backfilled reflects the final attempt, which started FCFS.
		t.Fatalf("job 2's final attempt was FCFS: %+v", res[2])
	}
	if res[2].Preempts != 1 || res[2].Attempts != 2 {
		t.Fatalf("job 2 should be evicted once and resubmitted: %+v", res[2])
	}
	if res[3].Start != 15 {
		t.Fatalf("job 3 should start right after the eviction at t=15: %+v", res[3])
	}
	if res[2].Start != 17 {
		t.Fatalf("job 2 should rerun after job 3: %+v", res[2])
	}
	if res[2].Kills != 0 || res[2].Killed {
		t.Fatalf("preemption is not a kill: %+v", res[2])
	}
	if err := CheckTrace(cfg, buf.Events); err != nil {
		t.Fatalf("trace after preemption: %v", err)
	}
	s := Summarize(cfg, res)
	if s.Preempted != 1 {
		t.Fatalf("summary Preempted = %d", s.Preempted)
	}
}

func TestValidationErrors(t *testing.T) {
	good := Job{ID: 0, Arrival: 0, Width: 1, Actual: 1, Policy: []float64{2}}
	cases := []struct {
		name string
		cfg  Config
		jobs []Job
		want string
	}{
		{"no nodes", Config{}, nil, "at least one node"},
		{"bad capacity", Config{Nodes: []int{0}}, nil, "capacity"},
		{"bad model", Config{Nodes: []int{1}, Model: core.CostModel{Alpha: -1}}, nil, "cost model"},
		{"bad budget", Config{Nodes: []int{1}, Tenants: []Tenant{{Budget: -2}}}, nil, "budget"},
		{"preempt+conservative", Config{Nodes: []int{1}, Backfill: BackfillConservative, PreemptAfter: 1}, nil, "incompatible"},
		{"bad tenant", Config{Nodes: []int{1}}, []Job{{Tenant: 3, Width: 1, Actual: 1, Policy: []float64{1}}}, "tenant"},
		{"wide job", Config{Nodes: []int{2}}, []Job{{Width: 3, Actual: 1, Policy: []float64{1}}}, "width"},
		{"empty policy", Config{Nodes: []int{1}}, []Job{{Width: 1, Actual: 1}}, "policy"},
		{"non-increasing policy", Config{Nodes: []int{1}}, []Job{{Width: 1, Actual: 1, Policy: []float64{2, 2}}}, "strictly increasing"},
		{"bad arrival", Config{Nodes: []int{1}}, []Job{{Width: 1, Arrival: math.NaN(), Actual: 1, Policy: []float64{1}}}, "arrival"},
		{"bad runtime", Config{Nodes: []int{1}}, []Job{{Width: 1, Actual: math.Inf(1), Policy: []float64{1}}}, "runtime"},
	}
	for _, tc := range cases {
		jobs := tc.jobs
		if jobs == nil {
			jobs = []Job{good}
		}
		_, err := Simulate(tc.cfg, jobs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSummarizePercentilesAndMeans(t *testing.T) {
	cfg := unitCfg(1, BackfillNone)
	res := mustSimulate(t, cfg, []Job{
		{ID: 0, Arrival: 0, Width: 1, Actual: 2, Policy: []float64{2}},
		{ID: 1, Arrival: 0, Width: 1, Actual: 2, Policy: []float64{2}},
		{ID: 2, Arrival: 0, Width: 1, Actual: 2, Policy: []float64{2}},
	})
	s := Summarize(cfg, res)
	// Waits are 0, 2, 4 in some order. Quantiles come from the sketch,
	// exact within its relative-error bound; the extremes are exact.
	if math.Abs(s.WaitP50-2) > trace.DefaultSketchAlpha*2 {
		t.Fatalf("WaitP50 %g outside sketch bound of 2: %+v", s.WaitP50, s)
	}
	if s.WaitP99 != 4 || s.WaitP999 != 4 {
		t.Fatalf("top-rank quantiles should be the exact max: %+v", s)
	}
	if math.Abs(s.MeanWait-2) > 1e-12 || s.MeanAttempts != 1 {
		t.Fatalf("means wrong: %+v", s)
	}
	if math.Abs(s.Utilization-1) > 1e-12 {
		t.Fatalf("back-to-back unit jobs should give utilization 1: %g", s.Utilization)
	}
}

func TestWaitProfileFromClusterResults(t *testing.T) {
	cfg := unitCfg(1, BackfillNone)
	var jobs []Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, Job{
			ID: i, Arrival: float64(i), Width: 1, Actual: 1,
			Policy: []float64{1 + float64(i%4)},
		})
	}
	res := mustSimulate(t, cfg, jobs)
	groups, err := WaitProfile(res, 4)
	if err != nil {
		t.Fatalf("WaitProfile: %v", err)
	}
	if len(groups) != 4 {
		t.Fatalf("want 4 groups, got %d", len(groups))
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].RequestedSec < groups[i-1].RequestedSec {
			t.Fatalf("groups not sorted by requested: %+v", groups)
		}
	}
}

func TestMultiRecorder(t *testing.T) {
	if MultiRecorder() != nil || MultiRecorder(nil, nil) != nil {
		t.Fatal("empty MultiRecorder should be nil")
	}
	var a, b TraceBuffer
	if MultiRecorder(&a, nil) != Recorder(&a) {
		t.Fatal("single recorder should pass through")
	}
	m := MultiRecorder(&a, &b)
	m.Record(Event{Seq: 1})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("fan-out failed: %d %d", len(a.Events), len(b.Events))
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvArrive, EvAdmit, EvReject, EvRelease, EvStart, EvAlloc, EvFree, EvFinish, EvKill, EvPreempt}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
	for _, b := range []BackfillPolicy{BackfillNone, BackfillEASY, BackfillConservative} {
		if b.String() == "unknown" {
			t.Fatalf("policy %d unnamed", b)
		}
	}
	if BackfillPolicy(9).String() != "unknown" {
		t.Fatal("out-of-range policy should be unknown")
	}
}

func TestHeapOrderingAndRemove(t *testing.T) {
	h := newEventHeap()
	in := []finishEvent{
		{time: 5, seq: 1, job: 0},
		{time: 3, seq: 2, job: 1},
		{time: 5, seq: 0, job: 2},
		{time: 1, seq: 3, job: 3},
		{time: 3, seq: 1, job: 4},
	}
	for _, e := range in {
		h.push(e)
	}
	h.remove(4)
	want := []int32{3, 1, 2, 0} // (1,3) (3,2) (5,0) (5,1)
	for i, w := range want {
		got := h.pop()
		if got.job != w {
			t.Fatalf("pop %d: job %d, want %d", i, got.job, w)
		}
	}
	if h.size() != 0 {
		t.Fatalf("heap not empty")
	}
}

func TestHeapGrowth(t *testing.T) {
	h := newEventHeap()
	for i := 0; i < 1000; i++ {
		h.push(finishEvent{time: float64(1000 - i), seq: uint64(i), job: int32(i)})
	}
	prev := math.Inf(-1)
	for h.size() > 0 {
		e := h.pop()
		if e.time < prev {
			t.Fatalf("heap order violated: %g after %g", e.time, prev)
		}
		prev = e.time
	}
}

func TestNodePoolSpansNodes(t *testing.T) {
	p := newNodePool([]int{2, 3})
	head := p.alloc(4) // node 0 entirely + 2 units of node 1
	got := map[int32]int32{}
	for e := head; e >= 0; e = p.arena[e].next {
		got[p.arena[e].node] += p.arena[e].amt
	}
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("allocation split wrong: %v", got)
	}
	p.release(head)
	if p.free[0] != 2 || p.free[1] != 3 {
		t.Fatalf("release did not restore capacity: %v", p.free)
	}
}

func TestLedgerBasics(t *testing.T) {
	l := NewLedger(core.CostModel{Alpha: 1, Beta: 1, Gamma: 1}, []Tenant{
		{Budget: 10, Quota: 2},
		{Budget: math.Inf(1)},
	})
	need, ok := l.Reserve(0, 4) // 4+4+1 = 9
	if !ok || need != 9 || l.Balance(0) != 1 {
		t.Fatalf("reserve: need %g ok %v balance %g", need, ok, l.Balance(0))
	}
	if _, ok := l.Reserve(0, 4); ok {
		t.Fatal("second reserve should fail")
	}
	l.Refund(0, 4)
	if l.Balance(0) != 5 {
		t.Fatalf("refund: %g", l.Balance(0))
	}
	if !l.Commit(0, 2) || l.Commit(0, 1) {
		t.Fatalf("quota accounting wrong: committed %d", l.Committed(0))
	}
	l.Release(0, 2)
	if l.Committed(0) != 0 {
		t.Fatalf("release: %d", l.Committed(0))
	}
	if !l.Commit(1, 1<<20) {
		t.Fatal("unlimited quota refused")
	}
	if l.AttemptCost(4) != 9 {
		t.Fatalf("AttemptCost: %g", l.AttemptCost(4))
	}
}
