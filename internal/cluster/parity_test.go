package cluster

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/queuesim"
	"repro/internal/rng"
)

// costModelForSweep prices attempts in the sweep so finite budgets
// actually bind (rejections and mid-chain terminations occur).
var costModelForSweep = core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1}

// parityScenarios and sweepScenarios size the property-test families
// below; together they must cover at least 100 seeded scenarios.
const (
	parityScenarios = 64
	sweepScenarios  = 9 * 6 // Table-1 laws × cluster/tenant configs
)

func TestScenarioCountFloor(t *testing.T) {
	if parityScenarios+sweepScenarios < 100 {
		t.Fatalf("property families cover %d scenarios, need >= 100", parityScenarios+sweepScenarios)
	}
}

// parityWorkload draws one random scenario: a node count, a backfill
// switch, and a job list with deliberate arrival and completion ties
// (grid-snapped times) so the deterministic tie-breaks are exercised,
// not just reached by luck.
func parityWorkload(seed uint64) (queuesim.Config, []queuesim.Job) {
	r := rng.New(seed)
	nodeChoices := []int{1, 2, 3, 4, 6, 8, 12, 16}
	cfg := queuesim.Config{
		Nodes:          nodeChoices[int(r.Uint64n(uint64(len(nodeChoices))))],
		EnableBackfill: r.Uint64n(2) == 0,
	}
	n := 1 + int(r.Uint64n(150))
	jobs := make([]queuesim.Job, n)
	now := 0.0
	for i := range jobs {
		// Half the arrivals snap to a 0.5 grid and often repeat the
		// previous instant, forcing batch arrivals.
		if r.Uint64n(2) == 0 {
			now += 0.5 * float64(r.Uint64n(4)) // may add 0: simultaneous
		} else {
			now += 2 * r.Float64()
		}
		req := 0.5 + 0.25*float64(r.Uint64n(40)) // grid: equal ends happen
		actual := req * (0.1 + 1.4*r.Float64())  // ~1/3 of jobs get killed
		if r.Uint64n(4) == 0 {
			actual = req // exact fit: the killed/finished boundary
		}
		jobs[i] = queuesim.Job{
			ID:        i,
			Arrival:   now,
			Nodes:     1 + int(r.Uint64n(uint64(cfg.Nodes))),
			Requested: req,
			Actual:    actual,
		}
	}
	return cfg, jobs
}

// toClusterJobs projects queuesim jobs onto single-attempt cluster
// jobs.
func toClusterJobs(jobs []queuesim.Job) []Job {
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[i] = Job{
			ID:      j.ID,
			Arrival: j.Arrival,
			Width:   j.Nodes,
			Actual:  j.Actual,
			Policy:  []float64{j.Requested},
		}
	}
	return out
}

// sameFloat is bit-exact float equality (the parity contract is
// bit-identical, not approximately equal).
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func comparePair(t *testing.T, label string, seed uint64, want queuesim.Result, got Result) {
	t.Helper()
	g := got.Result
	if g.ID != want.ID || g.Nodes != want.Nodes ||
		!sameFloat(g.Arrival, want.Arrival) ||
		!sameFloat(g.Requested, want.Requested) ||
		!sameFloat(g.Actual, want.Actual) {
		t.Fatalf("seed %d %s job %d: identity fields diverged\nqueuesim: %+v\ncluster:  %+v", seed, label, want.ID, want, g)
	}
	if !sameFloat(g.Start, want.Start) || !sameFloat(g.Wait, want.Wait) || !sameFloat(g.End, want.End) {
		t.Fatalf("seed %d %s job %d: schedule diverged\nqueuesim: start=%v wait=%v end=%v\ncluster:  start=%v wait=%v end=%v",
			seed, label, want.ID, want.Start, want.Wait, want.End, g.Start, g.Wait, g.End)
	}
	if g.Killed != want.Killed || g.Backfilled != want.Backfilled || g.Rejected != want.Rejected {
		t.Fatalf("seed %d %s job %d: flags diverged\nqueuesim: %+v\ncluster:  %+v", seed, label, want.ID, want, g)
	}
	if got.Attempts != 1 || got.Kills != btoi(want.Killed) || got.Preempts != 0 {
		t.Fatalf("seed %d %s job %d: single-attempt accounting wrong: %+v", seed, label, want.ID, got)
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestParityWithQueuesim is the degeneracy contract: on unit-capacity
// nodes (and equally on one node carrying the whole capacity), with
// single-attempt policies, an unmetered tenant, and EASY/none
// backfilling, the cluster simulator reproduces queuesim.Simulate
// bit-for-bit — every result field and every summary statistic.
func TestParityWithQueuesim(t *testing.T) {
	for seed := uint64(0); seed < parityScenarios; seed++ {
		qcfg, qjobs := parityWorkload(seed)
		want, err := queuesim.Simulate(qcfg, qjobs)
		if err != nil {
			t.Fatalf("seed %d: queuesim: %v", seed, err)
		}
		backfill := BackfillNone
		if qcfg.EnableBackfill {
			backfill = BackfillEASY
		}
		shapes := []struct {
			label string
			nodes []int
		}{
			{"unit-nodes", UnitNodes(qcfg.Nodes)},
			{"one-fat-node", []int{qcfg.Nodes}},
		}
		for _, shape := range shapes {
			ccfg := Config{Nodes: shape.nodes, Backfill: backfill}
			var buf TraceBuffer
			ccfg.Recorder = &buf
			got, err := Simulate(ccfg, toClusterJobs(qjobs))
			if err != nil {
				t.Fatalf("seed %d %s: cluster: %v", seed, shape.label, err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d results, want %d", seed, shape.label, len(got), len(want))
			}
			for i := range want {
				comparePair(t, shape.label, seed, want[i], got[i])
			}
			// Summary parity: the embedded stats must match bit-exactly.
			qs := queuesim.Summarize(qcfg, want)
			cs := Summarize(ccfg, got)
			if qs.Jobs != cs.Jobs || qs.Rejected != cs.Rejected ||
				qs.Backfilled != cs.Backfilled || qs.Killed != cs.Killed {
				t.Fatalf("seed %d %s: summary counts diverged: %+v vs %+v", seed, shape.label, qs, cs.Stats)
			}
			if !sameFloat(qs.MeanWait, cs.MeanWait) || !sameFloat(qs.MaxWait, cs.MaxWait) || !sameFloat(qs.Utilization, cs.Utilization) {
				t.Fatalf("seed %d %s: summary floats diverged: %+v vs %+v", seed, shape.label, qs, cs.Stats)
			}
			// And the trace must satisfy every invariant.
			if err := CheckTrace(ccfg, buf.Events); err != nil {
				t.Fatalf("seed %d %s: %v", seed, shape.label, err)
			}
		}
	}
}

// sweepPolicy builds a multi-attempt reservation sequence from a law's
// quantiles, keeping it strictly increasing.
func sweepPolicy(d dist.Distribution, ps ...float64) []float64 {
	var out []float64
	last := 0.0
	for _, p := range ps {
		q := d.Quantile(p)
		if !(q > last) || math.IsInf(q, 0) || math.IsNaN(q) {
			continue
		}
		out = append(out, q)
		last = q
	}
	if len(out) == 0 {
		out = []float64{1}
	}
	return out
}

// TestInvariantSweep runs every Table-1 law against six cluster/tenant
// shapes — heterogeneous capacities, finite budgets, tight quotas, all
// three backfill policies, and preemption — with the streaming
// Invariants checker attached. Any violation fails the run.
func TestInvariantSweep(t *testing.T) {
	laws := dist.Table1()
	names := dist.Table1Names()
	shapes := []struct {
		name    string
		nodes   []int
		tenants []Tenant
		back    BackfillPolicy
		preempt float64
	}{
		{"unit-easy", UnitNodes(4), nil, BackfillEASY, 0},
		{"fat-fcfs", []int{8}, nil, BackfillNone, 0},
		{"hetero-easy", []int{2, 3, 3}, []Tenant{
			{Name: "a", Budget: math.Inf(1)},
			{Name: "b", Budget: 4000, Quota: 3},
		}, BackfillEASY, 0},
		{"hetero-conservative", []int{1, 2, 4}, []Tenant{
			{Name: "a", Budget: math.Inf(1), Quota: 4},
			{Name: "b", Budget: 2500},
		}, BackfillConservative, 0},
		{"quota-pressure", UnitNodes(6), []Tenant{
			{Name: "a", Budget: math.Inf(1), Quota: 2},
			{Name: "b", Budget: math.Inf(1), Quota: 2},
			{Name: "c", Budget: 900, Quota: 1},
		}, BackfillEASY, 0},
		{"preempting", UnitNodes(5), []Tenant{
			{Name: "a", Budget: math.Inf(1)},
			{Name: "b", Budget: 3000},
		}, BackfillEASY, 2},
	}
	jobsPer := 1500
	if testing.Short() {
		jobsPer = 300
	}
	scenario := 0
	for li, law := range laws {
		for si, shape := range shapes {
			scenario++
			policy := sweepPolicy(law, 0.5, 0.75, 0.95, 0.999)
			capTotal := 0
			for _, c := range shape.nodes {
				capTotal += c
			}
			maxW := capTotal
			if len(shape.tenants) > 0 {
				// Keep widths satisfiable under the tightest quota.
				for _, tn := range shape.tenants {
					if tn.Quota > 0 && tn.Quota < maxW {
						maxW = tn.Quota
					}
				}
			}
			classes := make([]JobClass, 0, len(shape.tenants)+1)
			tenants := len(shape.tenants)
			if tenants == 0 {
				tenants = 1
			}
			for tn := 0; tn < tenants; tn++ {
				classes = append(classes, JobClass{
					Name:     names[li],
					Runtime:  law,
					Weight:   1 + float64(tn),
					MinWidth: 1,
					MaxWidth: maxW,
					Tenant:   tn,
					Policy:   policy,
				})
			}
			// Keep the system loaded but stable: mean demand ≈ 60% of
			// capacity.
			meanW := float64(1+maxW) / 2
			rate := 0.6 * float64(capTotal) / (meanW * law.Mean())
			spec := WorkloadSpec{
				Seed:        uint64(1000*li + si),
				Jobs:        jobsPer,
				ArrivalRate: rate,
				Classes:     classes,
			}
			cfg := Config{
				Nodes:        shape.nodes,
				Tenants:      shape.tenants,
				Backfill:     shape.back,
				Model:        costModelForSweep,
				PreemptAfter: shape.preempt,
			}
			out, err := Run(spec, cfg, 0, true)
			if err != nil {
				t.Fatalf("law %s shape %s: %v", names[li], shape.name, err)
			}
			if out.Stats.Jobs != jobsPer {
				t.Fatalf("law %s shape %s: %d jobs summarized, want %d", names[li], shape.name, out.Stats.Jobs, jobsPer)
			}
			if out.TraceEvents == 0 {
				t.Fatalf("law %s shape %s: empty trace", names[li], shape.name)
			}
		}
	}
	if scenario != sweepScenarios {
		t.Fatalf("ran %d sweep scenarios, expected %d", scenario, sweepScenarios)
	}
}
