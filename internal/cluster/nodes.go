package cluster

// allocEntry is one (node, amount) slice of a job's capacity grant,
// linked through next into a per-job list. Entries live in a single
// arena with an intrusive free list, so steady-state allocation and
// release of grants touch no heap memory: the arena only grows (cold
// path) when more jobs run concurrently than ever before.
type allocEntry struct {
	node int32
	amt  int32
	next int32
}

// nodePool tracks per-node free capacity and hands out deterministic
// placements: capacity is taken from the most recently freed node
// first (LIFO over a stack of non-full node indices, initialized so
// node 0 is on top). Scheduling decisions depend only on total free
// capacity — jobs may span nodes — so placement is pure bookkeeping
// for the ledger and the per-node capacity-conservation invariant.
type nodePool struct {
	free      []int32 // free capacity units per node
	stack     []int32 // indices of nodes with free > 0, LIFO
	arena     []allocEntry
	freeEntry int32 // arena free-list head, -1 when empty
}

func newNodePool(caps []int) *nodePool {
	p := &nodePool{
		free:      make([]int32, len(caps)),
		stack:     make([]int32, 0, len(caps)),
		freeEntry: -1,
	}
	// Push in reverse so node 0 is on top and fills first.
	for i := len(caps) - 1; i >= 0; i-- {
		p.free[i] = int32(caps[i])
		p.stack = append(p.stack, int32(i))
	}
	return p
}

// alloc takes width capacity units and returns the head of the grant
// list. The caller guarantees width does not exceed the total free
// capacity; violating that is a simulator bug and panics.
//
//repro:hotpath
func (p *nodePool) alloc(width int32) int32 {
	head := int32(-1)
	rem := width
	for rem > 0 {
		if len(p.stack) == 0 {
			panic("cluster: node allocation underflow (scheduler oversubscribed the cluster)")
		}
		n := p.stack[len(p.stack)-1]
		take := p.free[n]
		if take > rem {
			take = rem
		}
		p.free[n] -= take
		if p.free[n] == 0 {
			p.stack = p.stack[:len(p.stack)-1]
		}
		rem -= take
		e := p.takeEntry()
		p.arena[e] = allocEntry{node: n, amt: take, next: head}
		head = e
	}
	return head
}

// release returns every grant on the list to its node and recycles the
// entries.
//
//repro:hotpath
func (p *nodePool) release(head int32) {
	for e := head; e >= 0; {
		ent := p.arena[e]
		if p.free[ent.node] == 0 {
			p.pushStack(ent.node)
		}
		p.free[ent.node] += ent.amt
		next := ent.next
		p.arena[e].next = p.freeEntry
		p.freeEntry = e
		e = next
	}
}

// takeEntry pops the arena free list, growing it on the cold path.
//
//repro:hotpath
func (p *nodePool) takeEntry() int32 {
	if p.freeEntry < 0 {
		p.growArena()
	}
	e := p.freeEntry
	p.freeEntry = p.arena[e].next
	return e
}

// growArena adds a block of free entries; cold path.
func (p *nodePool) growArena() {
	n := len(p.arena)
	block := n
	if block < 64 {
		block = 64
	}
	for i := 0; i < block; i++ {
		p.arena = append(p.arena, allocEntry{next: p.freeEntry})
		p.freeEntry = int32(n + i)
	}
}

// pushStack re-registers a node that regained free capacity; split out
// so the hot release loop appends through one place (the stack can
// never exceed the node count, so the initial capacity suffices and
// the append never reallocates).
//
//repro:hotpath
func (p *nodePool) pushStack(node int32) {
	//lint:ignore hotalloc the stack's capacity is len(nodes), fixed at construction; append never grows it
	p.stack = append(p.stack, node)
}
