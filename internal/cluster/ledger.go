package cluster

import "repro/internal/core"

// Ledger is the reservation accounting authority: per-tenant budgets
// (cost units, debited per attempt) and quotas (capacity units a
// tenant may hold committed at once). The simulator consults it at
// every admission and the Invariants checker replays every debit,
// refund, commit, and release from the event trace, so the two must —
// and do — agree bit-for-bit.
//
// Charging follows the paper's per-attempt cost α·t + β·min(t, X) + γ
// conservatively: an attempt with reservation t debits the worst case
// α·t + β·t + γ at submission (the scheduler cannot know X yet) and
// refunds β·(t − used) when the attempt ends, so a balance can never
// go negative and the net charge is exactly the paper's cost.
//
// The type is deliberately free of simulator state so the fuzz harness
// can drive it directly against a reference model.
type Ledger struct {
	alpha, beta, gamma float64
	balance            []float64
	quota              []int
	committed          []int
}

// NewLedger builds the ledger for the given cost model and tenants.
// A tenant with Budget = +Inf is unmetered; Quota <= 0 is unlimited.
func NewLedger(model core.CostModel, tenants []Tenant) *Ledger {
	l := &Ledger{
		alpha:     model.Alpha,
		beta:      model.Beta,
		gamma:     model.Gamma,
		balance:   make([]float64, len(tenants)),
		quota:     make([]int, len(tenants)),
		committed: make([]int, len(tenants)),
	}
	for i, t := range tenants {
		l.balance[i] = t.Budget
		l.quota[i] = t.Quota
	}
	return l
}

// Reserve debits the worst-case cost of an attempt with reservation
// length req. It reports the amount and whether the tenant's balance
// covered it; on false the balance is untouched.
//
//repro:hotpath
func (l *Ledger) Reserve(tenant int, req float64) (float64, bool) {
	need := l.alpha*req + l.beta*req + l.gamma
	if l.balance[tenant] < need {
		return need, false
	}
	l.balance[tenant] -= need
	return need, true
}

// Refund returns the unused part of an earlier Reserve debit.
//
//repro:hotpath
func (l *Ledger) Refund(tenant int, amount float64) {
	l.balance[tenant] += amount
}

// Commit claims width capacity units against the tenant's quota,
// reporting whether headroom existed; on false nothing is claimed.
//
//repro:hotpath
func (l *Ledger) Commit(tenant, width int) bool {
	if l.quota[tenant] > 0 && l.committed[tenant]+width > l.quota[tenant] {
		return false
	}
	l.committed[tenant] += width
	return true
}

// Release returns width committed capacity units.
//
//repro:hotpath
func (l *Ledger) Release(tenant, width int) {
	l.committed[tenant] -= width
}

// Balance returns the tenant's remaining budget.
func (l *Ledger) Balance(tenant int) float64 { return l.balance[tenant] }

// Committed returns the tenant's committed capacity.
func (l *Ledger) Committed(tenant int) int { return l.committed[tenant] }

// Quota returns the tenant's quota (0 = unlimited).
func (l *Ledger) Quota(tenant int) int { return l.quota[tenant] }

// AttemptCost returns the worst-case debit an attempt with reservation
// req incurs (what Reserve would charge).
func (l *Ledger) AttemptCost(req float64) float64 {
	return l.alpha*req + l.beta*req + l.gamma
}
