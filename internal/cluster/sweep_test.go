package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

// almostEqual tolerates the last-bits drift of float sums accumulated
// in completion order vs ID order.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestRunStreamMatchesRun: the streaming pipeline (chunked generation,
// recycled buffers, sink delivery) must replay Run's exact trace —
// equal hash and event count — and agree on every counter, extreme,
// and sketch quantile bit for bit; only the order-sensitive float sums
// (means, utilization) may drift in the last bits. The workload
// crosses a generation-chunk boundary so the feed's recycling path
// actually runs.
func TestRunStreamMatchesRun(t *testing.T) {
	spec := determinismSpec(21, genChunk+2000)
	cfg := determinismCfg()
	buf, err := Run(spec, cfg, 0, false)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	str, err := RunStream(spec, cfg, 0, true)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if str.TraceHash != buf.TraceHash || str.TraceEvents != buf.TraceEvents {
		t.Fatalf("trace diverged: stream %x (%d) vs run %x (%d)",
			str.TraceHash, str.TraceEvents, buf.TraceHash, buf.TraceEvents)
	}
	a, b := str.Stats, buf.Stats
	if a.Jobs != b.Jobs || a.Rejected != b.Rejected || a.Killed != b.Killed ||
		a.Backfilled != b.Backfilled || a.Completed != b.Completed || a.Preempted != b.Preempted {
		t.Fatalf("counters diverged:\nstream: %+v\nrun:    %+v", a, b)
	}
	if !sameFloat(a.MaxWait, b.MaxWait) {
		t.Fatalf("MaxWait diverged: %g vs %g", a.MaxWait, b.MaxWait)
	}
	// Sketch counts are order-independent, so quantiles are bit-equal.
	for _, q := range [][2]float64{{a.WaitP50, b.WaitP50}, {a.WaitP95, b.WaitP95}, {a.WaitP99, b.WaitP99}, {a.WaitP999, b.WaitP999}} {
		if !sameFloat(q[0], q[1]) {
			t.Fatalf("quantiles diverged:\nstream: %+v\nrun:    %+v", a, b)
		}
	}
	for _, m := range [][2]float64{{a.MeanWait, b.MeanWait}, {a.MeanAttempts, b.MeanAttempts}, {a.MeanCost, b.MeanCost}, {a.Utilization, b.Utilization}} {
		if !almostEqual(m[0], m[1]) {
			t.Fatalf("means diverged beyond reorder tolerance:\nstream: %+v\nrun:    %+v", a, b)
		}
	}
}

// TestRunStreamReproduces: two streaming runs of the same spec are
// bit-identical end to end.
func TestRunStreamReproduces(t *testing.T) {
	spec := determinismSpec(5, 3000)
	cfg := determinismCfg()
	a, err := RunStream(spec, cfg, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStream(spec, cfg, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash || a.TraceEvents != b.TraceEvents || a.Stats != b.Stats {
		t.Fatalf("streaming runs diverged:\n%+v %x\n%+v %x", a.Stats, a.TraceHash, b.Stats, b.TraceHash)
	}
}

func sweepSpecForTest(jobs, replicates int) SweepSpec {
	laws := dist.Table1()
	w := determinismSpec(13, jobs)
	return SweepSpec{
		Workload: w,
		Strategies: []SweepStrategy{
			{Name: "q60", Policy: sweepPolicy(laws[0], 0.6, 0.9, 0.999)},
			{Name: "q90", Policy: sweepPolicy(laws[0], 0.9, 0.999)},
		},
		Shapes: []SweepShape{
			{Name: "unit", Nodes: UnitNodes(8)},
			{Name: "fat", Nodes: []int{4, 4}},
		},
		Replicates: replicates,
		Base:       determinismCfg(),
		Check:      true,
	}
}

// TestSweepWorkerIndependence: the full sweep output — every cell's
// stats and trace hash, every merged group, and the folded sweep hash
// — must be bit-identical for workers ∈ {1, 4, 16}.
func TestSweepWorkerIndependence(t *testing.T) {
	spec := sweepSpecForTest(900, 2)
	var ref SweepResult
	for i, workers := range []int{1, 4, 16} {
		out, err := RunSweep(spec, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = out
			if len(ref.Cells) != 2*2*2 || len(ref.Groups) != 2*2 {
				t.Fatalf("matrix shape wrong: %d cells, %d groups", len(ref.Cells), len(ref.Groups))
			}
			continue
		}
		if out.Hash != ref.Hash {
			t.Fatalf("workers=%d: sweep hash %x != %x", workers, out.Hash, ref.Hash)
		}
		for k := range ref.Cells {
			if out.Cells[k] != ref.Cells[k] {
				t.Fatalf("workers=%d: cell %d diverged:\n%+v\n%+v", workers, k, out.Cells[k], ref.Cells[k])
			}
		}
		for k := range ref.Groups {
			if out.Groups[k] != ref.Groups[k] {
				t.Fatalf("workers=%d: group %d diverged:\n%+v\n%+v", workers, k, out.Groups[k], ref.Groups[k])
			}
		}
	}
}

// TestSweepGroupUtilization: replicates are independent runs over
// overlapping simulated windows, so the group's utilization must be
// the replicate mean of the cell utilizations — merging the raw
// accumulators would divide summed node-seconds by the envelope window
// and report roughly replicate-fold utilization.
func TestSweepGroupUtilization(t *testing.T) {
	out, err := RunSweep(sweepSpecForTest(900, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range out.Groups {
		want, n := 0.0, 0
		for _, c := range out.Cells {
			if c.Strategy == g.Strategy && c.Shape == g.Shape {
				want += c.Stats.Utilization
				n++
			}
		}
		want /= float64(n)
		if !sameFloat(g.Stats.Utilization, want) {
			t.Errorf("group %s/%s utilization %g, want replicate mean %g",
				g.Strategy, g.Shape, g.Stats.Utilization, want)
		}
		if g.Stats.Utilization > 1+1e-9 {
			t.Errorf("group %s/%s utilization %g exceeds 1", g.Strategy, g.Shape, g.Stats.Utilization)
		}
	}
}

// TestSweepPairsReplicates: replicate r uses the same derived workload
// seed in every (strategy, shape) cell — the comparisons are paired —
// and different replicates use different seeds.
func TestSweepPairsReplicates(t *testing.T) {
	out, err := RunSweep(sweepSpecForTest(400, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int]uint64{}
	for _, c := range out.Cells {
		if s, ok := seeds[c.Replicate]; ok {
			if s != c.Seed {
				t.Fatalf("replicate %d has seeds %x and %x", c.Replicate, s, c.Seed)
			}
		} else {
			seeds[c.Replicate] = c.Seed
		}
	}
	if seeds[0] == seeds[1] {
		t.Fatal("replicates share a seed")
	}
	// Same replicate, same shape, different strategy: same workload,
	// different policy — the traces must actually differ.
	var byKey = map[string]uint64{}
	for _, c := range out.Cells {
		byKey[c.Strategy+"/"+c.Shape+"/"+string(rune('0'+c.Replicate))] = c.TraceHash
	}
	if byKey["q60/unit/0"] == byKey["q90/unit/0"] {
		t.Fatal("different strategies produced identical traces")
	}
}

// TestSweepErrors: malformed sweeps are rejected with telling errors.
func TestSweepErrors(t *testing.T) {
	base := sweepSpecForTest(100, 1)
	cases := []struct {
		name string
		mut  func(*SweepSpec)
		want string
	}{
		{"no strategies", func(s *SweepSpec) { s.Strategies = nil }, "strategy"},
		{"no shapes", func(s *SweepSpec) { s.Shapes = nil }, "shape"},
		{"recorder set", func(s *SweepSpec) { s.Base.Recorder = &TraceBuffer{} }, "Recorder"},
		{"bad policy", func(s *SweepSpec) { s.Strategies[0].Policy = []float64{2, 1} }, "strictly increasing"},
		{"bad shape", func(s *SweepSpec) { s.Shapes[0].Nodes = nil }, "node"},
	}
	for _, tc := range cases {
		spec := sweepSpecForTest(100, 1)
		_ = base
		tc.mut(&spec)
		_, err := RunSweep(spec, 0)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}
