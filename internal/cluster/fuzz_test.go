package cluster

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
)

// FuzzLedger drives the ledger with an arbitrary operation stream and
// checks it against an independently maintained reference: balances and
// committed capacity must match bit-for-bit after every operation, a
// successful Reserve can never take a balance negative, and quota
// commits can never exceed the quota.
func FuzzLedger(f *testing.F) {
	f.Add(uint64(1), []byte{0, 0, 8, 1, 1, 16, 2, 2, 3, 3, 0, 2})
	f.Add(uint64(7), []byte{0, 1, 200, 2, 1, 2, 1, 1, 50, 3, 1, 1})
	f.Add(uint64(42), []byte{2, 0, 1, 2, 0, 1, 2, 0, 1, 3, 0, 1, 0, 2, 255})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		model := core.CostModel{
			Alpha: float64(seed%7) * 0.5,
			Beta:  float64(seed%5) * 0.25,
			Gamma: float64(seed % 3),
		}
		tenants := []Tenant{
			{Name: "small", Budget: 25, Quota: 2},
			{Name: "mid", Budget: 1e4, Quota: 7},
			{Name: "rich", Budget: math.Inf(1)},
		}
		l := NewLedger(model, tenants)

		// Reference state, updated with the same float expressions so
		// agreement is exact, plus per-tenant outstanding refundable
		// amounts so refunds stay legal (mirroring the simulator's
		// contract with the ledger).
		balance := make([]float64, len(tenants))
		refundable := make([]float64, len(tenants))
		committed := make([]int, len(tenants))
		for i, tn := range tenants {
			balance[i] = tn.Budget
		}

		for i := 0; i+2 < len(ops); i += 3 {
			op := ops[i] % 4
			tn := int(ops[i+1]) % len(tenants)
			mag := ops[i+2]
			switch op {
			case 0: // Reserve
				req := float64(mag)/8 + 0.5
				need, ok := l.Reserve(tn, req)
				wantNeed := model.Alpha*req + model.Beta*req + model.Gamma
				if !sameFloat(need, wantNeed) {
					t.Fatalf("op %d: Reserve need %g, want %g", i, need, wantNeed)
				}
				wantOK := balance[tn] >= wantNeed
				if ok != wantOK {
					t.Fatalf("op %d: Reserve ok=%v, reference %v (balance %g, need %g)", i, ok, wantOK, balance[tn], wantNeed)
				}
				if ok {
					balance[tn] -= wantNeed
					refundable[tn] += model.Beta * req
					if l.Balance(tn) < 0 {
						t.Fatalf("op %d: successful Reserve left balance %g < 0", i, l.Balance(tn))
					}
				}
			case 1: // Refund (≤ outstanding refundable, as the simulator guarantees)
				amt := math.Min(float64(mag)/16, refundable[tn])
				l.Refund(tn, amt)
				balance[tn] += amt
				refundable[tn] -= amt
			case 2: // Commit
				width := int(mag)%4 + 1
				ok := l.Commit(tn, width)
				q := tenants[tn].Quota
				wantOK := q <= 0 || committed[tn]+width <= q
				if ok != wantOK {
					t.Fatalf("op %d: Commit(%d,%d) ok=%v, reference %v", i, tn, width, ok, wantOK)
				}
				if ok {
					committed[tn] += width
					if q > 0 && l.Committed(tn) > q {
						t.Fatalf("op %d: committed %d exceeds quota %d", i, l.Committed(tn), q)
					}
				}
			case 3: // Release (≤ committed, as the simulator guarantees)
				width := int(mag) % 4
				if width > committed[tn] {
					width = committed[tn]
				}
				l.Release(tn, width)
				committed[tn] -= width
			}
			for k := range tenants {
				if !sameFloat(l.Balance(k), balance[k]) {
					t.Fatalf("op %d: tenant %d balance %g, reference %g", i, k, l.Balance(k), balance[k])
				}
				if l.Committed(k) != committed[k] {
					t.Fatalf("op %d: tenant %d committed %d, reference %d", i, k, l.Committed(k), committed[k])
				}
				if l.Committed(k) < 0 {
					t.Fatalf("op %d: tenant %d committed negative", i, k)
				}
			}
		}
	})
}

// FuzzBackfill decodes an arbitrary byte string into a small workload
// (≤ 48 jobs, multi-attempt policies, two tenants with finite budget
// and quota) and simulates it under all three backfill policies — plus
// a preempting EASY variant — asserting every run completes and every
// trace passes the full invariant checker.
func FuzzBackfill(f *testing.F) {
	f.Add(uint64(1), []byte{0x10, 0x22, 0x31, 0x44, 0x05, 0x16, 0x27, 0x38})
	f.Add(uint64(9), []byte{0xff, 0x00, 0xff, 0x00, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04})
	f.Add(uint64(31), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) < 4 {
			return
		}
		caps := []int{1 + int(seed%3), 2, 1 + int(seed/3%3)}
		total := 0
		for _, c := range caps {
			total += c
		}
		var jobs []Job
		now := 0.0
		for i := 0; i+3 < len(data) && len(jobs) < 48; i += 4 {
			now += float64(data[i]) / 16
			width := 1 + int(data[i+1])%total
			tenant := int(data[i+1]>>6) % 2
			if tenant == 1 && width > 3 {
				width = 3 // tenant b's quota
			}
			// Policy: 1–3 strictly increasing reservations.
			base := 0.25 + float64(data[i+2])/32
			var policy []float64
			for a := 0; a <= int(data[i+3])%3; a++ {
				policy = append(policy, base*float64(a+1)*1.5)
			}
			actual := float64(data[i+3]) / 24
			jobs = append(jobs, Job{
				ID:      len(jobs),
				Tenant:  tenant,
				Arrival: now,
				Width:   width,
				Actual:  actual,
				Policy:  policy,
			})
		}
		if len(jobs) == 0 {
			return
		}
		tenants := []Tenant{
			{Name: "a", Budget: math.Inf(1)},
			{Name: "b", Budget: 40 + float64(seed%100), Quota: 3},
		}
		runs := []struct {
			back    BackfillPolicy
			preempt float64
		}{
			{BackfillNone, 0},
			{BackfillEASY, 0},
			{BackfillConservative, 0},
			{BackfillEASY, 1.5},
		}
		for _, rn := range runs {
			cfg := Config{
				Nodes:        caps,
				Tenants:      tenants,
				Backfill:     rn.back,
				Model:        core.CostModel{Alpha: 0.5, Beta: 0.25, Gamma: 0.1},
				PreemptAfter: rn.preempt,
			}
			inv := NewInvariants(cfg)
			var buf TraceBuffer
			hash := NewTraceHash()
			cfg.Recorder = MultiRecorder(inv, &buf, hash)
			res, err := Simulate(cfg, jobs)
			if err != nil {
				t.Fatalf("%v/preempt=%g: %v", rn.back, rn.preempt, err)
			}
			if len(res) != len(jobs) {
				t.Fatalf("%v: %d results for %d jobs", rn.back, len(res), len(jobs))
			}
			if verr := inv.Finish(); verr != nil {
				t.Fatalf("%v/preempt=%g: %v\n(%d events)", rn.back, rn.preempt, verr, len(buf.Events))
			}
			for _, r := range res {
				if !r.Rejected && r.End < r.Start {
					t.Fatalf("%v: job %d ends before it starts: %+v", rn.back, r.ID, r)
				}
			}
			// Differential engine check: the reference heap engine must
			// reproduce the calendar engine's trace and results bit for
			// bit on every fuzzed workload.
			href := NewTraceHash()
			hcfg := cfg
			hcfg.Engine = EngineHeap
			hcfg.Recorder = href
			hres, err := Simulate(hcfg, jobs)
			if err != nil {
				t.Fatalf("%v/preempt=%g: heap engine: %v", rn.back, rn.preempt, err)
			}
			if href.Sum64() != hash.Sum64() || href.Events() != hash.Events() {
				t.Fatalf("%v/preempt=%g: engines diverged: heap %x (%d) vs calendar %x (%d)",
					rn.back, rn.preempt, href.Sum64(), href.Events(), hash.Sum64(), hash.Events())
			}
			for i := range res {
				if res[i] != hres[i] {
					t.Fatalf("%v/preempt=%g: job %d diverged:\ncalendar: %+v\nheap:     %+v",
						rn.back, rn.preempt, res[i].ID, res[i], hres[i])
				}
			}
		}
	})
}

// FuzzEventCore drives the calendar-queue event core and the reference
// binary heap with one decoded operation stream — pushes across up to
// 13 decades of time scales (including zero deltas, so exact ties),
// pops, and removes — and requires them to agree operation for
// operation, including after any mid-stream fallback the calendar
// decides to take. The seed corpus covers the degenerate patterns that
// trigger the fallback: all-equal times and multi-decade spreads.
func FuzzEventCore(f *testing.F) {
	allEqual := append(bytes.Repeat([]byte{0, 0}, 40), bytes.Repeat([]byte{2, 0}, 40)...)
	f.Add(allEqual)
	var wide []byte
	for e := 0; e < 13; e++ {
		wide = append(wide, byte(e<<2), 1)
	}
	f.Add(append(bytes.Repeat(wide, 4), bytes.Repeat([]byte{2, 0}, 52)...))
	f.Add([]byte{0, 8, 1, 16, 3, 0, 2, 0, 0, 0, 0, 0, 2, 0, 3, 1, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var c eventCore
		c.init(EngineCalendar)
		h := newEventHeap()
		now := 0.0
		var live []finishEvent
		seq := uint64(0)
		drop := func(job int32) {
			for k := range live {
				if live[k].job == job {
					live = append(live[:k], live[k+1:]...)
					return
				}
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			switch int(data[i]) % 4 {
			case 0, 1: // push at now + delta, delta spanning 13 decades
				exp := int(data[i]>>2)%13 - 6
				delta := float64(data[i+1]) * math.Pow(10, float64(exp))
				e := finishEvent{time: now + delta, seq: seq, job: int32(seq)}
				seq++
				c.push(e)
				h.push(e)
				live = append(live, e)
			case 2: // pop
				if h.size() == 0 {
					continue
				}
				ce, he := c.pop(), h.pop()
				if ce != he {
					t.Fatalf("op %d: calendar popped %+v, heap %+v (fellBack=%v)", i, ce, he, c.fellBack())
				}
				now = he.time
				drop(he.job)
			case 3: // remove an arbitrary live event
				if len(live) == 0 {
					continue
				}
				e := live[int(data[i+1])%len(live)]
				c.remove(e.job, e.time)
				h.remove(e.job)
				drop(e.job)
			}
			if c.size() != h.size() {
				t.Fatalf("op %d: size %d vs %d", i, c.size(), h.size())
			}
		}
		for h.size() > 0 {
			ce, he := c.pop(), h.pop()
			if ce != he {
				t.Fatalf("drain: calendar popped %+v, heap %+v (fellBack=%v)", ce, he, c.fellBack())
			}
		}
		if c.size() != 0 {
			t.Fatal("calendar not empty after drain")
		}
	})
}
