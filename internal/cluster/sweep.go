package cluster

import (
	"errors"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// SweepStrategy is one admission policy under comparison — typically a
// Table-1 reservation sequence from repro.Planner.
type SweepStrategy struct {
	// Name labels the strategy in reports.
	Name string
	// Policy replaces every workload class's reservation sequence for
	// this strategy's cells.
	Policy []float64
}

// SweepShape is one cluster shape under comparison.
type SweepShape struct {
	// Name labels the shape in reports.
	Name string
	// Nodes is the per-node capacity list (Config.Nodes).
	Nodes []int
}

// SweepSpec describes a (strategy × shape × replicate) scenario
// matrix over one workload.
type SweepSpec struct {
	// Workload is the job mix template. Its Seed seeds the whole
	// sweep; each replicate derives its own workload seed from it, and
	// every strategy and shape sees the same replicate workloads, so
	// cross-strategy comparisons are paired.
	Workload WorkloadSpec
	// Strategies are the admission policies to compare (>= 1).
	Strategies []SweepStrategy
	// Shapes are the cluster shapes to compare (>= 1).
	Shapes []SweepShape
	// Replicates is how many seeded workloads per (strategy, shape)
	// cell; <= 0 means 1.
	Replicates int
	// Base is the cluster configuration shared by every cell; Nodes is
	// overridden per shape and Recorder must be nil (cells run
	// concurrently — a shared recorder would race).
	Base Config
	// Check runs the streaming Invariants recorder in every cell.
	Check bool
}

// SweepCell is one simulated scenario.
type SweepCell struct {
	// Strategy and Shape name the cell's coordinates.
	Strategy, Shape string
	// Replicate is the 0-based replicate index.
	Replicate int
	// Seed is the derived workload seed the cell ran with.
	Seed uint64
	// Stats is the cell's summary.
	Stats Stats
	// TraceHash and TraceEvents fingerprint the cell's event trace.
	TraceHash   uint64
	TraceEvents uint64
}

// SweepGroup aggregates one (strategy, shape) cell group across its
// replicates: the accumulators are merged in replicate order, then
// finalized — exactly as if one accumulator had seen every replicate's
// results in sequence.
type SweepGroup struct {
	// Strategy and Shape name the group.
	Strategy, Shape string
	// Replicates is how many cells were merged.
	Replicates int
	// Stats is the merged summary.
	Stats Stats
}

// SweepResult is the full matrix in deterministic order: cells in
// strategy-major, then shape, then replicate order; groups in
// strategy-major, then shape order.
type SweepResult struct {
	Cells  []SweepCell
	Groups []SweepGroup
	// Hash folds every cell's trace hash, in cell order, into one
	// sweep fingerprint — the one-word equality check the determinism
	// suite compares across worker counts.
	Hash uint64
}

// RunSweep runs the scenario matrix on up to workers goroutines. Each
// cell is an independent streaming simulation (RunStream semantics,
// inner worker count 1) with its own derived rng stream, so the
// assignment of cells to goroutines cannot affect any cell's result:
// the sweep output is bit-identical for every worker count.
func RunSweep(spec SweepSpec, workers int) (SweepResult, error) {
	var out SweepResult
	if len(spec.Strategies) == 0 {
		return out, errors.New("cluster: sweep needs at least one strategy")
	}
	if len(spec.Shapes) == 0 {
		return out, errors.New("cluster: sweep needs at least one shape")
	}
	if spec.Base.Recorder != nil {
		return out, errors.New("cluster: sweep cells run concurrently; Base.Recorder must be nil")
	}
	for i, st := range spec.Strategies {
		if err := validatePolicy(st.Policy, fmt.Sprintf("strategy %d (%s)", i, st.Name)); err != nil {
			return out, err
		}
	}
	reps := spec.Replicates
	if reps <= 0 {
		reps = 1
	}
	// One derived seed per replicate: replicate r runs the same
	// workload in every (strategy, shape) cell, pairing the
	// comparisons.
	streams := rng.Split(spec.Workload.Seed, reps)
	seeds := make([]uint64, reps)
	for r := range seeds {
		seeds[r] = streams[r].Uint64()
	}

	nCells := len(spec.Strategies) * len(spec.Shapes) * reps
	cells := make([]SweepCell, nCells)
	accs := make([]*StatsAccumulator, nCells)
	errs := make([]error, nCells)
	parallel.ForEach(nCells, workers, func(i int) {
		r := i % reps
		hi := i / reps % len(spec.Shapes)
		si := i / reps / len(spec.Shapes)
		strat := &spec.Strategies[si]
		shape := &spec.Shapes[hi]

		w := spec.Workload
		w.Seed = seeds[r]
		classes := append([]JobClass(nil), w.Classes...)
		for k := range classes {
			classes[k].Policy = strat.Policy
		}
		w.Classes = classes

		cfg := spec.Base
		cfg.Nodes = shape.Nodes

		acc := NewStatsAccumulator()
		hash, err := runStreamInto(&w, cfg, 1, spec.Check, acc)
		if err != nil {
			errs[i] = fmt.Errorf("cluster: sweep cell %s/%s replicate %d: %w", strat.Name, shape.Name, r, err)
			return
		}
		accs[i] = acc
		cells[i] = SweepCell{
			Strategy:    strat.Name,
			Shape:       shape.Name,
			Replicate:   r,
			Seed:        seeds[r],
			Stats:       acc.Stats(cfg.Capacity()),
			TraceHash:   hash.Sum64(),
			TraceEvents: hash.Events(),
		}
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}

	groups := make([]SweepGroup, 0, len(spec.Strategies)*len(spec.Shapes))
	for si := range spec.Strategies {
		for hi := range spec.Shapes {
			cfg := spec.Base
			cfg.Nodes = spec.Shapes[hi].Nodes
			g := NewStatsAccumulator()
			base := (si*len(spec.Shapes) + hi) * reps
			for r := 0; r < reps; r++ {
				g.Merge(accs[base+r])
			}
			stats := g.Stats(cfg.Capacity())
			// The merged accumulator's utilization divides summed
			// node-seconds by the *envelope* window — correct for
			// shards of one run, but replicates are independent runs
			// over overlapping simulated windows, so the envelope
			// undercounts the denominator reps-fold. Summarize
			// utilization as the replicate mean instead (paired
			// workloads give near-equal spans), folded in fixed
			// replicate order for bit-stable results.
			util := 0.0
			for r := 0; r < reps; r++ {
				util += accs[base+r].Stats(cfg.Capacity()).Utilization
			}
			stats.Utilization = util / float64(reps)
			groups = append(groups, SweepGroup{
				Strategy:   spec.Strategies[si].Name,
				Shape:      spec.Shapes[hi].Name,
				Replicates: reps,
				Stats:      stats,
			})
		}
	}

	h := uint64(fnvOffset)
	for i := range cells {
		h = fnvMix(h, cells[i].TraceHash)
	}
	out.Cells = cells
	out.Groups = groups
	out.Hash = h
	return out, nil
}
