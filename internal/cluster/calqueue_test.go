package cluster

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// popAll drains the core, asserting ascending eventLess order, and
// returns the drained events.
func popAll(t *testing.T, c *eventCore) []finishEvent {
	t.Helper()
	var out []finishEvent
	for c.size() > 0 {
		top := c.top()
		e := c.pop()
		if e != top {
			t.Fatalf("pop %+v != top %+v", e, top)
		}
		if n := len(out); n > 0 && eventLess(e, out[n-1]) {
			t.Fatalf("pop order violated: %+v after %+v", e, out[n-1])
		}
		out = append(out, e)
	}
	return out
}

// TestCalQueueOrderingRandom: random pushes (with deliberate time ties)
// pop in exactly sorted (time, seq) order, across enough events to
// trigger grow rebuilds, without falling back.
func TestCalQueueOrderingRandom(t *testing.T) {
	var c eventCore
	c.init(EngineCalendar)
	r := rng.New(1)
	var want []finishEvent
	for i := 0; i < 3000; i++ {
		tm := float64(r.Uint64n(500)) / 7 // many exact ties
		e := finishEvent{time: tm, seq: uint64(i), job: int32(i)}
		c.push(e)
		want = append(want, e)
	}
	sort.Slice(want, func(i, k int) bool { return eventLess(want[i], want[k]) })
	got := popAll(t, &c)
	if c.fellBack() {
		t.Fatal("uniform times should not trigger fallback")
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCalQueueInterleavedAgainstHeap: an interleaved push/pop/remove
// stream agrees with the reference heap operation for operation.
func TestCalQueueInterleavedAgainstHeap(t *testing.T) {
	var c eventCore
	c.init(EngineCalendar)
	h := newEventHeap()
	r := rng.New(7)
	now := 0.0
	live := map[int32]float64{}
	for i := 0; i < 5000; i++ {
		switch {
		case c.size() == 0 || r.Uint64n(3) > 0:
			tm := now + float64(r.Uint64n(64))/8
			e := finishEvent{time: tm, seq: uint64(i), job: int32(i)}
			c.push(e)
			h.push(e)
			live[e.job] = e.time
		case r.Uint64n(4) == 0 && len(live) > 1:
			// remove the lowest live job (preemption path); map
			// iteration order must not leak into the op stream
			victim := int32(-1)
			for j := range live {
				if victim < 0 || j < victim {
					victim = j
				}
			}
			c.remove(victim, live[victim])
			h.remove(victim)
			delete(live, victim)
		default:
			ce, he := c.pop(), h.pop()
			if ce != he {
				t.Fatalf("op %d: calendar popped %+v, heap %+v", i, ce, he)
			}
			delete(live, ce.job)
			now = ce.time
		}
		if c.size() != h.size() {
			t.Fatalf("op %d: size %d vs %d", i, c.size(), h.size())
		}
	}
	got, want := popAll(t, &c), make([]finishEvent, 0, h.size())
	for h.size() > 0 {
		want = append(want, h.pop())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCalQueueShrinkRebuild: draining a large population far enough
// triggers the shrink rebuild and ordering survives it.
func TestCalQueueShrinkRebuild(t *testing.T) {
	var c eventCore
	c.init(EngineCalendar)
	for i := 0; i < 2048; i++ {
		c.push(finishEvent{time: float64(i) * 0.5, seq: uint64(i), job: int32(i)})
	}
	prev := finishEvent{time: -1}
	for c.size() > 0 {
		e := c.pop()
		if eventLess(e, prev) {
			t.Fatalf("order violated after shrink: %+v after %+v", e, prev)
		}
		prev = e
	}
	if c.fellBack() {
		t.Fatal("regular spacing should not trigger fallback")
	}
}

// TestEventCoreFallbackAllEqual: >2·calMinBuckets events at one time
// force a rebuild that finds no positive gap — the core must fall back
// to the heap and keep the seq tie-break.
func TestEventCoreFallbackAllEqual(t *testing.T) {
	var c eventCore
	c.init(EngineCalendar)
	for i := 0; i < 40; i++ {
		c.push(finishEvent{time: 3, seq: uint64(i), job: int32(i)})
	}
	if !c.fellBack() {
		t.Fatal("all-equal times must fall back to the heap")
	}
	for i := 0; i < 40; i++ {
		if e := c.pop(); e.seq != uint64(i) {
			t.Fatalf("pop %d: seq %d", i, e.seq)
		}
	}
}

// TestEventCoreFallbackWideSpread: a 39-decade spread cannot fit a
// bucket year at any gap-derived width.
func TestEventCoreFallbackWideSpread(t *testing.T) {
	var c eventCore
	c.init(EngineCalendar)
	tm := 1.0
	for i := 0; i < 40; i++ {
		c.push(finishEvent{time: tm, seq: uint64(i), job: int32(i)})
		tm *= 10
	}
	if !c.fellBack() {
		t.Fatal("wide spread must fall back to the heap")
	}
	prev := 0.0
	for c.size() > 0 {
		e := c.pop()
		if e.time <= prev {
			t.Fatalf("order violated: %g after %g", e.time, prev)
		}
		prev = e.time
	}
}

// TestEventCoreOverflowGuard: a time whose bucket mapping overflows
// int64 range must trip the degenerate flag, not misorder.
func TestEventCoreOverflowGuard(t *testing.T) {
	var c eventCore
	c.init(EngineCalendar)
	c.push(finishEvent{time: 1, seq: 0, job: 0})
	c.push(finishEvent{time: 1e300, seq: 1, job: 1})
	if !c.fellBack() {
		t.Fatal("overflowing time must fall back")
	}
	if e := c.pop(); e.job != 0 {
		t.Fatalf("first pop job %d", e.job)
	}
	if e := c.pop(); e.job != 1 {
		t.Fatalf("second pop job %d", e.job)
	}
}

// TestEventCorePushBehindCursor: a push before the cursor is routine —
// a short attempt starting while far-future completions are pending —
// and must move the cursor back, not misorder and not fall back.
func TestEventCorePushBehindCursor(t *testing.T) {
	var c eventCore
	c.init(EngineCalendar)
	c.push(finishEvent{time: 100, seq: 0, job: 0})
	c.push(finishEvent{time: 200, seq: 1, job: 1})
	if c.top().job != 0 {
		t.Fatal("wrong top") // locate advances the cursor to job 0's bucket
	}
	if e := c.pop(); e.job != 0 {
		t.Fatalf("pop job %d", e.job)
	}
	if c.top().job != 1 {
		t.Fatal("wrong top") // locate advances the cursor to job 1's bucket
	}
	c.push(finishEvent{time: 105, seq: 2, job: 2}) // behind the cursor (at 200)
	if c.fellBack() {
		t.Fatal("push behind cursor must not fall back")
	}
	if e := c.pop(); e.job != 2 || e.time != 105 {
		t.Fatalf("pop %+v", e)
	}
	if e := c.pop(); e.job != 1 {
		t.Fatalf("pop %+v", e)
	}
}

// TestEventCoreHeapEngine: the heap-engine core is just the reference
// heap (no calendar allocated, fellBack reports true trivially).
func TestEventCoreHeapEngine(t *testing.T) {
	var c eventCore
	c.init(EngineHeap)
	for i := 0; i < 100; i++ {
		c.push(finishEvent{time: float64(100 - i), seq: uint64(i), job: int32(i)})
	}
	popAll(t, &c)
}

// TestEventCoreAppendPending: the snapshot contains exactly the
// pending set for both structures.
func TestEventCoreAppendPending(t *testing.T) {
	for _, eng := range []Engine{EngineCalendar, EngineHeap} {
		var c eventCore
		c.init(eng)
		seen := map[int32]bool{}
		for i := 0; i < 50; i++ {
			c.push(finishEvent{time: float64(i % 7), seq: uint64(i), job: int32(i)})
			seen[int32(i)] = true
		}
		got := c.appendPending(nil)
		if len(got) != 50 {
			t.Fatalf("engine %v: snapshot %d events", eng, len(got))
		}
		for _, e := range got {
			if !seen[e.job] {
				t.Fatalf("engine %v: duplicate or unknown job %d", eng, e.job)
			}
			delete(seen, e.job)
		}
	}
}
