package cluster

import (
	"repro/internal/queuesim"
	"repro/internal/trace"
)

// Stats summarizes a cluster simulation. The embedded queuesim.Stats
// carries the shared aggregates (Jobs, Rejected, MeanWait, MaxWait,
// Backfilled, Killed, Utilization) computed with queuesim's
// accumulator over the projected results, so a degenerate cluster
// summarizes bit-identically to queuesim; Utilization is then
// recomputed from NodeSeconds so killed and preempted attempts count
// as busy time.
type Stats struct {
	queuesim.Stats
	// Completed is the number of jobs whose final attempt finished
	// within its reservation (not killed, not rejected).
	Completed int
	// Preempted is the number of jobs evicted at least once.
	Preempted int
	// MeanAttempts is the average number of submissions per admitted
	// job.
	MeanAttempts float64
	// MeanCost is the average net budget charge per admitted job.
	MeanCost float64
	// WaitP50..WaitP999 are quantiles of the admitted jobs' total
	// waits, estimated by a mergeable sketch with relative error
	// trace.DefaultSketchAlpha (the extremes p=0 and p=1 are exact) —
	// O(1) memory however many jobs stream through.
	WaitP50, WaitP95, WaitP99, WaitP999 float64
}

// StatsAccumulator folds Results into cluster Stats one at a time in
// O(1) memory per job: exact counters, sums and extremes, plus a
// quantile sketch for the wait distribution. It is the standard
// ResultSink. Accumulators merge (in a fixed order for bit-stable
// float sums; the sketch itself merges commutatively), which is how
// sweeps combine replicates.
type StatsAccumulator struct {
	base      queuesim.Accumulator
	completed int
	preempted int
	attempts  float64
	cost      float64
	nodeSecs  float64
	waits     *trace.QuantileSketch
}

// NewStatsAccumulator returns an empty accumulator.
func NewStatsAccumulator() *StatsAccumulator {
	return &StatsAccumulator{
		base:  *queuesim.NewAccumulator(),
		waits: trace.NewDefaultSketch(),
	}
}

// Add folds one result in. The arithmetic follows Add order, matching
// the historical buffered Summarize loop when results arrive in ID
// order.
func (a *StatsAccumulator) Add(r Result) {
	a.base.Add(r.Result)
	if r.Rejected {
		return
	}
	if !r.Killed {
		a.completed++
	}
	if r.Preempts > 0 {
		a.preempted++
	}
	a.attempts += float64(r.Attempts)
	a.cost += r.Cost
	a.nodeSecs += r.NodeSeconds
	a.waits.Add(r.Wait)
}

// Merge folds another accumulator in.
func (a *StatsAccumulator) Merge(o *StatsAccumulator) {
	a.base.Merge(&o.base)
	a.completed += o.completed
	a.preempted += o.preempted
	a.attempts += o.attempts
	a.cost += o.cost
	a.nodeSecs += o.nodeSecs
	a.waits.Merge(o.waits)
}

// Stats finalizes the aggregates for a cluster of the given capacity.
func (a *StatsAccumulator) Stats(capacity int) Stats {
	var s Stats
	s.Stats = a.base.Stats(queuesim.Config{Nodes: capacity})
	s.Completed = a.completed
	s.Preempted = a.preempted
	admitted := a.base.Admitted()
	if admitted == 0 {
		return s
	}
	s.MeanAttempts = a.attempts / float64(admitted)
	s.MeanCost = a.cost / float64(admitted)
	tMin, tMax := a.base.Window()
	if span := tMax - tMin; span > 0 {
		s.Utilization = a.nodeSecs / (span * float64(capacity))
	}
	s.WaitP50 = a.waits.Quantile(0.50)
	s.WaitP95 = a.waits.Quantile(0.95)
	s.WaitP99 = a.waits.Quantile(0.99)
	s.WaitP999 = a.waits.Quantile(0.999)
	return s
}

// Summarize aggregates a result set for the given cluster.
func Summarize(cfg Config, results []Result) Stats {
	acc := NewStatsAccumulator()
	for _, r := range results {
		acc.Add(r)
	}
	return acc.Stats(cfg.Capacity())
}

// WaitProfile groups admitted jobs by their final requested walltime
// into equal-size buckets and averages each bucket's waits — the same
// requested-vs-wait profile queuesim feeds the Fig. 2 affine fit, so
// cluster traces drop into trace.FitWaitTimeModel unchanged.
func WaitProfile(results []Result, groups int) ([]trace.WaitGroup, error) {
	req := make([]float64, 0, len(results))
	wait := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Rejected {
			continue
		}
		req = append(req, r.Requested)
		wait = append(wait, r.Wait)
	}
	return trace.BucketWaits(req, wait, groups)
}
