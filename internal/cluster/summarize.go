package cluster

import (
	"math"
	"sort"

	"repro/internal/queuesim"
	"repro/internal/trace"
)

// Stats summarizes a cluster simulation. The embedded queuesim.Stats
// carries the shared aggregates (Jobs, Rejected, MeanWait, MaxWait,
// Backfilled, Killed, Utilization) computed by queuesim.Summarize over
// the projected results, so a degenerate cluster summarizes
// bit-identically to queuesim; Utilization is then recomputed from
// NodeSeconds so killed and preempted attempts count as busy time.
type Stats struct {
	queuesim.Stats
	// Completed is the number of jobs whose final attempt finished
	// within its reservation (not killed, not rejected).
	Completed int
	// Preempted is the number of jobs evicted at least once.
	Preempted int
	// MeanAttempts is the average number of submissions per admitted
	// job.
	MeanAttempts float64
	// MeanCost is the average net budget charge per admitted job.
	MeanCost float64
	// WaitP50, WaitP95, WaitP99 are nearest-rank percentiles of the
	// admitted jobs' total waits.
	WaitP50, WaitP95, WaitP99 float64
}

// Summarize aggregates a result set for the given cluster.
func Summarize(cfg Config, results []Result) Stats {
	base := make([]queuesim.Result, len(results))
	for i, r := range results {
		base[i] = r.Result
	}
	var s Stats
	s.Stats = queuesim.Summarize(queuesim.Config{Nodes: cfg.Capacity()}, base)

	var busy, tMin, tMax float64
	tMin = math.Inf(1)
	admitted := 0
	waits := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Rejected {
			continue
		}
		admitted++
		if !r.Killed {
			s.Completed++
		}
		if r.Preempts > 0 {
			s.Preempted++
		}
		s.MeanAttempts += float64(r.Attempts)
		s.MeanCost += r.Cost
		busy += r.NodeSeconds
		tMin = math.Min(tMin, r.Arrival)
		tMax = math.Max(tMax, r.End)
		waits = append(waits, r.Wait)
	}
	if admitted == 0 {
		return s
	}
	s.MeanAttempts /= float64(admitted)
	s.MeanCost /= float64(admitted)
	if span := tMax - tMin; span > 0 {
		s.Utilization = busy / (span * float64(cfg.Capacity()))
	}
	sort.Float64s(waits)
	s.WaitP50 = percentile(waits, 0.50)
	s.WaitP95 = percentile(waits, 0.95)
	s.WaitP99 = percentile(waits, 0.99)
	return s
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// WaitProfile groups admitted jobs by their final requested walltime
// into equal-size buckets and averages each bucket's waits — the same
// requested-vs-wait profile queuesim feeds the Fig. 2 affine fit, so
// cluster traces drop into trace.FitWaitTimeModel unchanged.
func WaitProfile(results []Result, groups int) ([]trace.WaitGroup, error) {
	req := make([]float64, 0, len(results))
	wait := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Rejected {
			continue
		}
		req = append(req, r.Requested)
		wait = append(wait, r.Wait)
	}
	return trace.BucketWaits(req, wait, groups)
}
