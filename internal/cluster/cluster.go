// Package cluster is the fleet-scale discrete-event simulator: many
// nodes with capacities, multiple tenants with reservation budgets and
// concurrency quotas, FCFS scheduling with EASY or conservative
// backfilling, optional preemption of backfilled work — and, as the
// paper's contribution slots in, a per-job admission policy that is a
// reservation *sequence* (Table-1 strategies, produced by
// repro.Planner): a job whose attempt hits its reservation limit is
// killed and resubmitted with the next, longer reservation, paying the
// paper's per-attempt cost α·t + β·min(t, X) + γ from its tenant's
// budget.
//
// It grows internal/queuesim — the single-queue EASY model used to
// derive Fig. 2's wait-time law — into a cluster-level system while
// staying bit-compatible with it: on a cluster whose nodes are
// unit-capacity (or a single node carrying the whole capacity), with
// single-attempt policies, unlimited budgets and EASY backfilling,
// Simulate reproduces queuesim.Simulate exactly, field for field. The
// parity suite asserts this with != across hundreds of seeded
// scenarios.
//
// Because simulators are only as trustworthy as their checkers, the
// package ships its correctness harness as a first-class deliverable:
// every state mutation is emitted as an Event in processing order, and
// the streaming Invariants recorder replays the trace against the
// entity model — per-node capacity conservation, ledger balance and
// quota accounting, causality (monotone time, legal per-job state
// machine: no event consumes state written at a later timestamp), and
// completion of every admitted job (no starvation under backfill).
// Tests run it on every scenario; cmd/clustersim -check runs it over
// multi-million-job fleets.
//
// The package scales to tens of millions of jobs: the default
// calendar-queue event core schedules completions in O(1) amortized
// (EngineHeap keeps the reference binary heap, bit-identical by
// construction), SimulateStream/RunStream push results into a
// ResultSink instead of buffering them (StatsAccumulator summarizes in
// O(1) memory per job via quantile sketches), and RunStream generates
// the workload chunk by chunk through a recycling feed, so memory is
// bounded by the in-flight window, not the job count. RunSweep fans a
// (strategy × shape × replicate) matrix across internal/parallel
// workers with a deterministic merge.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/queuesim"
)

// BackfillPolicy selects how the scheduler fills holes in the FCFS
// order.
type BackfillPolicy uint8

const (
	// BackfillNone is pure FCFS: nothing starts out of order.
	BackfillNone BackfillPolicy = iota
	// BackfillEASY is aggressive (EASY) backfilling: a later job may
	// start now if it cannot delay the queue head's shadow time —
	// exactly queuesim's policy.
	BackfillEASY
	// BackfillConservative gives every queued job a capacity
	// reservation, replanned at each event: a later job starts early
	// only if its reservation begins now, so no earlier job's planned
	// start is ever delayed by a backfill decision.
	BackfillConservative
)

// String names the policy.
func (b BackfillPolicy) String() string {
	switch b {
	case BackfillNone:
		return "none"
	case BackfillEASY:
		return "easy"
	case BackfillConservative:
		return "conservative"
	}
	return "unknown"
}

// Engine selects the pending-completion scheduler.
type Engine uint8

const (
	// EngineCalendar (the default) schedules completions through a
	// calendar queue — O(1) amortized push/pop — with batched recorder
	// dispatch and a selection-scan shadow computation. It produces
	// bit-identical results and traces to EngineHeap, and falls back
	// to the heap mid-run when the time distribution degenerates (see
	// calQueue).
	EngineCalendar Engine = iota
	// EngineHeap is the reference engine: binary min-heap, per-event
	// recorder dispatch, sort-based shadow computation. It exists as
	// the differential baseline the calendar engine is tested (and
	// benchmarked) against.
	EngineHeap
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineCalendar:
		return "calendar"
	case EngineHeap:
		return "heap"
	}
	return "unknown"
}

// Tenant is one budget/quota principal.
type Tenant struct {
	// Name labels the tenant in reports.
	Name string
	// Budget is the initial reservation budget in cost units;
	// math.Inf(1) means unmetered. Every attempt debits its
	// worst-case cost and refunds the unused part on completion.
	Budget float64
	// Quota bounds the capacity units the tenant may hold committed
	// (queued after admission + running) at once; <= 0 is unlimited.
	Quota int
}

// Config describes the cluster and its policies.
type Config struct {
	// Nodes lists per-node capacities (units); a queuesim cluster of
	// N nodes is UnitNodes(N).
	Nodes []int
	// Tenants lists the budget/quota principals. Empty means one
	// unmetered, unlimited tenant.
	Tenants []Tenant
	// Backfill selects the scheduling policy.
	Backfill BackfillPolicy
	// Model prices attempts (α·t + β·min(t, X) + γ). The zero value
	// charges nothing, which makes budgets inert.
	Model core.CostModel
	// PreemptAfter, when positive, evicts backfilled attempts (most
	// recently started first) once the queue head has waited longer
	// than this and still does not fit. Preempted attempts are
	// resubmitted at the queue tail. Only meaningful with
	// BackfillNone or BackfillEASY; conservative backfilling never
	// needs it (reservations bound every wait) and rejects it.
	PreemptAfter float64
	// Engine selects the event core; the zero value is the calendar
	// queue. Results and traces are bit-identical across engines.
	Engine Engine
	// Recorder, when non-nil, receives every event in order.
	Recorder Recorder

	// oversubscribeNodeZero is the deliberate fault injection used by
	// the invariant tests: the scheduler's internal accounting stays
	// correct, but every recorded allocation claims node 0, so any
	// concurrency makes the trace oversubscribe that node. The
	// Invariants checker must catch it.
	oversubscribeNodeZero bool
}

// Capacity returns the total capacity units of the cluster.
func (c *Config) Capacity() int {
	total := 0
	for _, n := range c.Nodes {
		total += n
	}
	return total
}

// UnitNodes returns n unit-capacity nodes — the queuesim cluster shape.
func UnitNodes(n int) []int {
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 1
	}
	return caps
}

// Job is one submission.
type Job struct {
	// ID is the caller-assigned identifier (results are sorted by it).
	ID int
	// Tenant indexes Config.Tenants.
	Tenant int
	// Arrival is the submission time.
	Arrival float64
	// Width is the capacity units needed (may span nodes).
	Width int
	// Actual is the true runtime, unknown to the scheduler.
	Actual float64
	// Policy is the reservation sequence evaluated attempt by
	// attempt: attempt i runs under reservation Policy[i] and is
	// killed (and resubmitted with attempt i+1) if Actual > Policy[i].
	// Must be strictly increasing and positive; a single-entry policy
	// is queuesim's fixed requested walltime.
	Policy []float64
}

// Result is the outcome of one job. The embedded queuesim.Result holds
// the shared fields — for the final attempt: Start, End, Wait (total
// time spent queued or held across all attempts), Killed (the policy
// ended before covering Actual), Backfilled, Rejected — with
// Job.Requested set to the last attempted reservation and Job.Nodes to
// the width.
type Result struct {
	queuesim.Result
	// Tenant indexes Config.Tenants.
	Tenant int
	// Attempts counts admission submissions (including preemption
	// retries).
	Attempts int
	// Kills counts attempts that hit their reservation limit.
	Kills int
	// Preempts counts evictions.
	Preempts int
	// Cost is the net budget charge across all attempts.
	Cost float64
	// NodeSeconds is capacity·time actually consumed, including
	// killed and preempted attempts.
	NodeSeconds float64
}

// job phases (jobState.phase).
const (
	phNone uint8 = iota
	phQueued
	phHeld
	phRunning
	phDone
)

// jobState is the per-job mutable record of the event loop.
type jobState struct {
	attempt   int32
	submits   int32
	kills     int32
	preempts  int32
	phase     uint8
	started   bool
	backfill  bool
	committed bool
	allocHead int32
	start     float64
	end       float64
	submit    float64
	wait      float64
	cost      float64
	nodeSecs  float64
}

// Jobs and states live in fixed-size chunks (the generation granule,
// so a streaming feed can recycle a chunk's memory the moment its last
// job retires). Buffered runs slice one flat array into chunk views —
// the accessors are a shift and a mask either way.
const (
	chunkShift = 16 // 1<<chunkShift == genChunk
	chunkMask  = 1<<chunkShift - 1
)

// eventBatch is the recorder batch slab size (calendar engine only).
const eventBatch = 1024

// sim is the event-loop state.
type sim struct {
	cfg      *Config
	nJobs    int
	jobCh    [][]Job
	stCh     [][]jobState
	chLive   []int32 // streaming runs: per-chunk live refcount
	feed     *jobFeed
	sink     ResultSink
	results  []Result
	rec      Recorder
	batchRec BatchRecorder
	batch    []Event
	batchN   int
	ledger   *Ledger
	pool     *nodePool
	ec       eventCore

	now       float64
	seq       uint64 // trace position
	startSeq  uint64 // start-order counter (event-core tie-break)
	next      int    // arrival cursor
	freeTotal int
	terminal  int
	minWidth  int // smallest width among arrived jobs (scan fast path)

	queue []int32
	held  [][]int32

	// scratch reused across scheduling passes
	runScratch []finishEvent
	preScratch []finishEvent
	profT      []float64
	profF      []int
}

// job returns the job record at arrival index j.
//
//repro:hotpath
func (s *sim) job(j int32) *Job { return &s.jobCh[j>>chunkShift][j&chunkMask] }

// state returns the mutable state at arrival index j.
//
//repro:hotpath
func (s *sim) state(j int32) *jobState { return &s.stCh[j>>chunkShift][j&chunkMask] }

// chunkViews slices a flat array into chunk views so buffered and
// streaming runs share the same accessors.
func chunkViews[T any](flat []T) [][]T {
	n := len(flat)
	ch := make([][]T, (n+chunkMask)>>chunkShift)
	for c := range ch {
		lo := c << chunkShift
		hi := lo + 1<<chunkShift
		if hi > n {
			hi = n
		}
		ch[c] = flat[lo:hi:hi]
	}
	return ch
}

// initStates resets a state chunk to the pre-arrival zero state.
func initStates(st []jobState) {
	for i := range st {
		st[i] = jobState{allocHead: -1}
	}
}

// Simulate runs the jobs to completion and returns per-job results
// sorted by ID. Jobs may be given in any order; they are processed in
// stable arrival order, and event indices in the trace refer to that
// order.
func Simulate(cfg Config, jobs []Job) ([]Result, error) {
	s, err := newBufferedSim(&cfg, jobs)
	if err != nil {
		return nil, err
	}
	s.results = make([]Result, s.nJobs)
	if err := s.loop(); err != nil {
		return nil, err
	}
	sort.Slice(s.results, func(i, k int) bool { return s.results[i].ID < s.results[k].ID })
	return s.results, nil
}

// SimulateStream runs the jobs to completion, pushing each result into
// sink the moment its job retires — in completion order, not ID order
// — without buffering the result set. Everything else matches
// Simulate: same trace, same per-job outcomes.
func SimulateStream(cfg Config, jobs []Job, sink ResultSink) error {
	if sink == nil {
		return errors.New("cluster: SimulateStream needs a sink")
	}
	s, err := newBufferedSim(&cfg, jobs)
	if err != nil {
		return err
	}
	s.sink = sink
	return s.loop()
}

// newBufferedSim validates and builds a simulation over a caller-held
// job slice (copied, then stably sorted by arrival).
func newBufferedSim(cfg *Config, jobs []Job) (*sim, error) {
	if err := validate(cfg, jobs); err != nil {
		return nil, err
	}
	sorted := append([]Job(nil), jobs...)
	sort.SliceStable(sorted, func(i, k int) bool { return sorted[i].Arrival < sorted[k].Arrival })
	st := make([]jobState, len(sorted))
	initStates(st)
	s := newSim(cfg, len(sorted))
	s.jobCh = chunkViews(sorted)
	s.stCh = chunkViews(st)
	return s, nil
}

// newSim builds the engine-independent core state.
func newSim(cfg *Config, nJobs int) *sim {
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: "default", Budget: math.Inf(1)}}
	}
	s := &sim{
		cfg:       cfg,
		nJobs:     nJobs,
		rec:       cfg.Recorder,
		ledger:    NewLedger(cfg.Model, tenants),
		pool:      newNodePool(cfg.Nodes),
		freeTotal: cfg.Capacity(),
		minWidth:  math.MaxInt,
		held:      make([][]int32, len(tenants)),
	}
	s.ec.init(cfg.Engine)
	if s.rec != nil && cfg.Engine != EngineHeap {
		s.batch = make([]Event, eventBatch)
		if br, ok := s.rec.(BatchRecorder); ok {
			s.batchRec = br
		}
	}
	return s
}

// loop is the strict event loop, mirroring queuesim: schedule at the
// current instant, then consume exactly one event — the earliest
// pending completion, or a batch of simultaneous arrivals (completions
// win ties). Every iteration consumes an event or terminates.
func (s *sim) loop() error {
	for {
		s.schedule()
		nextArrival := math.Inf(1)
		if s.next < s.nJobs {
			if s.feed != nil {
				if err := s.feed.ensure(s, s.next>>chunkShift); err != nil {
					return err
				}
			}
			nextArrival = s.job(int32(s.next)).Arrival
		}
		nextEnd := math.Inf(1)
		if s.ec.size() > 0 {
			nextEnd = s.ec.top().time
		}
		if math.IsInf(nextArrival, 1) && math.IsInf(nextEnd, 1) {
			if s.terminal != s.nJobs {
				return errors.New("cluster: deadlock — jobs pending but no events")
			}
			break
		}
		if nextEnd <= nextArrival {
			s.finishOne()
		} else {
			s.now = nextArrival
			for s.next < s.nJobs {
				if s.feed != nil && s.next&chunkMask == 0 {
					if err := s.feed.ensure(s, s.next>>chunkShift); err != nil {
						return err
					}
				}
				//lint:ignore floatcmp now was assigned from this arrival time, so batch-arrival equality is exact
				if s.job(int32(s.next)).Arrival != s.now {
					break
				}
				j := int32(s.next)
				s.next++
				s.arrive(j)
				if s.next&chunkMask == 0 || s.next == s.nJobs {
					s.chunkArrived(int32((s.next - 1) >> chunkShift))
				}
			}
		}
	}
	s.flushBatch()
	return nil
}

// validate checks the configuration and every job.
func validate(cfg *Config, jobs []Job) error {
	if len(cfg.Nodes) == 0 {
		return errors.New("cluster: need at least one node")
	}
	for i, c := range cfg.Nodes {
		if c < 1 {
			return fmt.Errorf("cluster: node %d has capacity %d, need >= 1", i, c)
		}
	}
	m := cfg.Model
	for _, v := range [3]float64{m.Alpha, m.Beta, m.Gamma} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cluster: cost model parameters must be finite and >= 0, got %+v", m)
		}
	}
	for i, t := range cfg.Tenants {
		if math.IsNaN(t.Budget) || t.Budget < 0 {
			return fmt.Errorf("cluster: tenant %d budget %g must be >= 0 (or +Inf)", i, t.Budget)
		}
	}
	if cfg.PreemptAfter < 0 || math.IsNaN(cfg.PreemptAfter) {
		return fmt.Errorf("cluster: PreemptAfter %g must be >= 0", cfg.PreemptAfter)
	}
	if cfg.PreemptAfter > 0 && cfg.Backfill == BackfillConservative {
		return errors.New("cluster: preemption is incompatible with conservative backfilling (reservations already bound every wait)")
	}
	if cfg.Engine > EngineHeap {
		return fmt.Errorf("cluster: unknown engine %d", cfg.Engine)
	}
	tenants := len(cfg.Tenants)
	if tenants == 0 {
		tenants = 1
	}
	total := cfg.Capacity()
	for _, j := range jobs {
		if err := validateJob(&j, tenants, total); err != nil {
			return err
		}
		if err := validatePolicy(j.Policy, fmt.Sprintf("job %d", j.ID)); err != nil {
			return err
		}
	}
	return nil
}

// validateJob checks the per-job fields shared by buffered validation
// and the streaming feed (which checks policies once per class).
func validateJob(j *Job, tenants, total int) error {
	if j.Tenant < 0 || j.Tenant >= tenants {
		return fmt.Errorf("cluster: job %d names tenant %d of %d", j.ID, j.Tenant, tenants)
	}
	if j.Width < 1 || j.Width > total {
		return fmt.Errorf("cluster: job %d requests width %d on a %d-unit cluster", j.ID, j.Width, total)
	}
	if math.IsNaN(j.Arrival) || j.Arrival < 0 || math.IsInf(j.Arrival, 0) {
		return fmt.Errorf("cluster: job %d has invalid arrival %g", j.ID, j.Arrival)
	}
	if j.Actual < 0 || math.IsNaN(j.Actual) || math.IsInf(j.Actual, 0) {
		return fmt.Errorf("cluster: job %d has invalid runtime %g", j.ID, j.Actual)
	}
	return nil
}

// validatePolicy checks a reservation sequence.
func validatePolicy(policy []float64, owner string) error {
	if len(policy) == 0 {
		return fmt.Errorf("cluster: %s has an empty admission policy", owner)
	}
	prev := 0.0
	for a, t := range policy {
		if math.IsNaN(t) || math.IsInf(t, 0) || t <= prev {
			return fmt.Errorf("cluster: %s policy attempt %d (%g) is not strictly increasing from %g", owner, a, t, prev)
		}
		prev = t
	}
	return nil
}

// emit stamps and records one event. The calendar engine buffers
// events into a fixed slab and flushes whole batches; the heap engine
// keeps the reference per-event dispatch.
//
//repro:hotpath
func (s *sim) emit(kind EventKind, job int32, node int32, a, b float64, flag bool) {
	s.seq++
	if s.rec == nil {
		return
	}
	ev := Event{
		Seq:     s.seq,
		Time:    s.now,
		Kind:    kind,
		Job:     job,
		Attempt: s.state(job).attempt,
		Node:    node,
		Tenant:  int32(s.job(job).Tenant),
		A:       a,
		B:       b,
		Flag:    flag,
	}
	if s.batch != nil {
		s.batch[s.batchN] = ev
		s.batchN++
		if s.batchN == len(s.batch) {
			s.flushBatch()
		}
		return
	}
	s.rec.Record(ev)
}

// flushBatch hands the buffered events to the recorder; cold relative
// to emit (once per eventBatch events and once at loop exit).
func (s *sim) flushBatch() {
	if s.batchN == 0 {
		return
	}
	evs := s.batch[:s.batchN]
	s.batchN = 0
	if s.batchRec != nil {
		s.batchRec.RecordBatch(evs)
		return
	}
	for i := range evs {
		s.rec.Record(evs[i])
	}
}

// arrive processes one arrival: announce it, then submit attempt 0.
func (s *sim) arrive(j int32) {
	if w := s.job(j).Width; w < s.minWidth {
		s.minWidth = w
	}
	s.emit(EvArrive, j, -1, float64(s.job(j).Width), 0, false)
	s.submitAttempt(j)
}

// submitAttempt runs the admission pipeline for the job's current
// attempt: unsatisfiable-quota rejection, budget debit (or rejection),
// then quota commit (or parking in the tenant's hold queue).
func (s *sim) submitAttempt(j int32) {
	job := s.job(j)
	st := s.state(j)
	req := job.Policy[st.attempt]
	if q := s.ledger.Quota(job.Tenant); q > 0 && job.Width > q {
		// The tenant's quota can never fit this job; holding it would
		// deadlock the hold queue.
		s.emit(EvReject, j, -1, float64(job.Width), float64(q), true)
		s.finalize(j, st.kills > 0, true)
		return
	}
	need, ok := s.ledger.Reserve(job.Tenant, req)
	if !ok {
		s.emit(EvReject, j, -1, need, s.ledger.Balance(job.Tenant), false)
		s.finalize(j, st.kills > 0, true)
		return
	}
	st.cost += need
	st.submits++
	st.submit = s.now
	if !st.committed {
		if !s.ledger.Commit(job.Tenant, job.Width) {
			s.emit(EvAdmit, j, -1, req, need, true)
			st.phase = phHeld
			s.held[job.Tenant] = append(s.held[job.Tenant], j)
			return
		}
		st.committed = true
	}
	s.emit(EvAdmit, j, -1, req, need, false)
	st.phase = phQueued
	s.queue = append(s.queue, j)
}

// start launches the job's current attempt at the current instant.
func (s *sim) start(j int32, backfilled bool) {
	job := s.job(j)
	st := s.state(j)
	req := job.Policy[st.attempt]
	st.wait += s.now - st.submit
	st.start = s.now
	st.end = s.now + math.Min(job.Actual, req)
	st.phase = phRunning
	st.started = true
	st.backfill = backfilled
	s.emit(EvStart, j, -1, float64(job.Width), 0, backfilled)
	s.freeTotal -= job.Width
	st.allocHead = s.pool.alloc(int32(job.Width))
	for e := st.allocHead; e >= 0; e = s.pool.arena[e].next {
		node := s.pool.arena[e].node
		if s.cfg.oversubscribeNodeZero {
			node = 0
		}
		s.emit(EvAlloc, j, node, float64(s.pool.arena[e].amt), 0, false)
	}
	s.startSeq++
	s.ec.push(finishEvent{time: st.end, seq: s.startSeq, job: j})
}

// freeAllocs releases the job's capacity grants, emitting one EvFree
// per grant.
//
//repro:hotpath
func (s *sim) freeAllocs(j int32) {
	st := s.state(j)
	for e := st.allocHead; e >= 0; e = s.pool.arena[e].next {
		node := s.pool.arena[e].node
		if s.cfg.oversubscribeNodeZero {
			node = 0
		}
		s.emit(EvFree, j, node, float64(s.pool.arena[e].amt), 0, false)
	}
	s.pool.release(st.allocHead)
	st.allocHead = -1
	s.freeTotal += s.job(j).Width
}

// finishOne consumes the earliest pending completion: either the
// attempt fit its reservation (job done, unused cost refunded) or it
// was killed at the reservation limit and the next attempt — if the
// policy has one — is resubmitted at the kill instant.
//
//repro:hotpath
func (s *sim) finishOne() {
	ev := s.ec.pop()
	s.now = ev.time
	j := ev.job
	job := s.job(j)
	st := s.state(j)
	req := job.Policy[st.attempt]
	st.nodeSecs += (s.now - st.start) * float64(job.Width)
	s.freeAllocs(j)
	if job.Actual <= req {
		refund := s.cfg.Model.Beta * (req - job.Actual)
		s.ledger.Refund(job.Tenant, refund)
		st.cost -= refund
		s.emit(EvFinish, j, -1, job.Actual, refund, false)
		s.finalize(j, false, false)
		return
	}
	st.kills++
	terminal := int(st.attempt)+1 >= len(job.Policy)
	s.emit(EvKill, j, -1, req, 0, terminal)
	if terminal {
		s.finalize(j, true, false)
		return
	}
	st.attempt++
	s.submitAttempt(j)
}

// finalize retires the job, releasing its quota commitment, draining
// the tenant's hold queue into the run queue, and delivering its
// result — into the buffered result set or the streaming sink.
func (s *sim) finalize(j int32, killed, rejected bool) {
	job := s.job(j)
	st := s.state(j)
	st.phase = phDone
	s.terminal++
	if st.committed {
		st.committed = false
		s.ledger.Release(job.Tenant, job.Width)
		s.releaseHeld(job.Tenant)
	}
	lastReq := job.Policy[st.attempt]
	start := st.start
	if !st.started {
		// Never ran (rejected before any attempt executed): anchor
		// Start at the terminal instant.
		start = s.now
	}
	r := Result{
		Result: queuesim.Result{
			Job: queuesim.Job{
				ID:        job.ID,
				Arrival:   job.Arrival,
				Nodes:     job.Width,
				Requested: lastReq,
				Actual:    job.Actual,
			},
			Start:      start,
			Wait:       st.wait,
			End:        s.now,
			Killed:     killed,
			Backfilled: st.backfill,
			Rejected:   rejected,
		},
		Tenant:      job.Tenant,
		Attempts:    int(st.submits),
		Kills:       int(st.kills),
		Preempts:    int(st.preempts),
		Cost:        st.cost,
		NodeSeconds: st.nodeSecs,
	}
	if s.sink != nil {
		s.sink.Add(r)
	} else {
		s.results[j] = r
	}
	s.retireJob(j)
}

// releaseHeld admits as many of the tenant's held attempts as the
// freed quota allows, in hold order.
func (s *sim) releaseHeld(tenant int) {
	q := s.held[tenant]
	for len(q) > 0 {
		j := q[0]
		if !s.ledger.Commit(tenant, s.job(j).Width) {
			break
		}
		q = q[1:]
		st := s.state(j)
		st.committed = true
		st.phase = phQueued
		s.emit(EvRelease, j, -1, float64(s.job(j).Width), 0, false)
		s.queue = append(s.queue, j)
	}
	s.held[tenant] = q
}

// schedule starts whatever can start at the current instant under the
// configured policy.
func (s *sim) schedule() {
	if s.cfg.Backfill == BackfillConservative {
		s.scheduleConservative()
		return
	}
	if s.cfg.PreemptAfter > 0 {
		s.maybePreempt()
	}
	s.scheduleFCFS()
}

// scheduleFCFS mirrors queuesim's scheduler exactly: start the head
// while it fits; otherwise (EASY only) compute the head's shadow time
// and backfill later jobs that either end by it or fit into the spare
// nodes the head will not need.
func (s *sim) scheduleFCFS() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if s.job(head).Width <= s.freeTotal {
			s.queue = s.queue[1:]
			s.start(head, false)
			continue
		}
		if s.cfg.Backfill != BackfillEASY {
			return
		}
		if s.cfg.Engine != EngineHeap && s.freeTotal < s.minWidth {
			// No arrived job is narrow enough to start now, so the
			// backfill scan below cannot start anything and keeps the
			// queue exactly as it is — skip the shadow computation and
			// the whole pass. Gated off for EngineHeap, which stays the
			// frozen pre-scaling reference; the skip is pure control
			// flow, so both engines still emit identical traces.
			return
		}
		shadow, spare := s.shadowOf(head)
		kept := s.queue[:1]
		for _, j := range s.queue[1:] {
			jb := s.job(j)
			w := jb.Width
			req := jb.Policy[s.state(j).attempt]
			fitsNow := w <= s.freeTotal
			endsByShadow := s.now+req <= shadow+1e-12
			fitsSpare := w <= spare
			if fitsNow && (endsByShadow || fitsSpare) {
				s.start(j, true)
				if fitsSpare && !endsByShadow {
					spare -= w
				}
				continue
			}
			kept = append(kept, j)
		}
		s.queue = kept
		return
	}
}

// shadowOf computes the earliest time the head could start and the
// capacity spare beyond its need at that moment — queuesim.shadowOf
// over the pending completions.
func (s *sim) shadowOf(head int32) (shadow float64, spare int) {
	if s.cfg.Engine == EngineHeap {
		return s.shadowSorted(head)
	}
	return s.shadowScan(head)
}

// shadowSorted is the reference computation: snapshot the pending set,
// sort it, accumulate until the head fits (EngineHeap only).
func (s *sim) shadowSorted(head int32) (shadow float64, spare int) {
	s.runScratch = s.ec.appendPending(s.runScratch[:0])
	sort.Sort(&byTimeSeq{ev: s.runScratch})
	need := s.job(head).Width
	avail := s.freeTotal
	for _, r := range s.runScratch {
		if avail >= need {
			break
		}
		avail += s.job(r.job).Width
		shadow = r.time
	}
	if avail < need {
		return math.Inf(1), 0
	}
	return shadow, avail - need
}

// shadowScan computes the same values by selection: repeatedly pull
// the earliest remaining completion (swap-to-prefix, no sort, no
// allocation) until the head fits. Only the prefix of completions that
// actually releases enough capacity is ordered — typically a handful
// out of the whole running set — and the accumulation visits them in
// the exact order shadowSorted would, so the result is bit-identical.
//
//repro:hotpath
func (s *sim) shadowScan(head int32) (shadow float64, spare int) {
	ev := s.ec.appendPending(s.runScratch[:0])
	s.runScratch = ev
	need := s.job(head).Width
	avail := s.freeTotal
	for k := 0; avail < need; k++ {
		if k == len(ev) {
			return math.Inf(1), 0
		}
		m := k
		for i := k + 1; i < len(ev); i++ {
			if eventLess(ev[i], ev[m]) {
				m = i
			}
		}
		ev[k], ev[m] = ev[m], ev[k]
		avail += s.job(ev[k].job).Width
		shadow = ev[k].time
	}
	return shadow, avail - need
}

// byTimeSeq sorts finish events by (time, seq) — the event order.
type byTimeSeq struct{ ev []finishEvent }

func (b *byTimeSeq) Len() int           { return len(b.ev) }
func (b *byTimeSeq) Less(i, k int) bool { return eventLess(b.ev[i], b.ev[k]) }
func (b *byTimeSeq) Swap(i, k int)      { b.ev[i], b.ev[k] = b.ev[k], b.ev[i] }

// maybePreempt evicts backfilled attempts (most recently started
// first) when the queue head has waited past PreemptAfter and still
// does not fit. Evicted attempts refund their unused cost and are
// resubmitted at the queue tail (fresh debit — the reservation is
// re-made).
func (s *sim) maybePreempt() {
	if len(s.queue) == 0 {
		return
	}
	head := s.queue[0]
	if s.job(head).Width <= s.freeTotal {
		return
	}
	if !(s.now-s.state(head).submit > s.cfg.PreemptAfter) {
		return
	}
	all := s.ec.appendPending(s.preScratch[:0])
	s.preScratch = all
	kept := all[:0]
	for _, e := range all {
		if s.state(e.job).backfill {
			kept = append(kept, e)
		}
	}
	// Latest start first = descending start-order seq. seq values are
	// unique, so the order is total and independent of the snapshot
	// order the engine produced.
	sort.Sort(sort.Reverse(&bySeq{ev: kept}))
	for _, e := range kept {
		if s.job(head).Width <= s.freeTotal {
			break
		}
		s.preempt(e.job)
	}
}

// bySeq sorts finish events by start-order seq.
type bySeq struct{ ev []finishEvent }

func (b *bySeq) Len() int           { return len(b.ev) }
func (b *bySeq) Less(i, k int) bool { return b.ev[i].seq < b.ev[k].seq }
func (b *bySeq) Swap(i, k int)      { b.ev[i], b.ev[k] = b.ev[k], b.ev[i] }

// preempt evicts one running attempt and resubmits it.
func (s *sim) preempt(j int32) {
	job := s.job(j)
	st := s.state(j)
	req := job.Policy[st.attempt]
	s.ec.remove(j, st.end)
	elapsed := s.now - st.start
	st.nodeSecs += elapsed * float64(job.Width)
	s.freeAllocs(j)
	refund := s.cfg.Model.Beta * (req - elapsed)
	if refund < 0 {
		refund = 0
	}
	s.ledger.Refund(job.Tenant, refund)
	st.cost -= refund
	st.preempts++
	s.emit(EvPreempt, j, -1, elapsed, refund, false)
	s.submitAttempt(j)
}

// scheduleConservative rebuilds the free-capacity profile from the
// running set and walks the queue in FCFS order, giving every job the
// earliest reservation that fits for its whole requested duration and
// decrementing the profile — so no later job's reservation can delay
// an earlier one's. Jobs whose reservation begins now start now; a job
// that starts while an earlier job's reservation lies in the future is
// a (conservative) backfill.
func (s *sim) scheduleConservative() {
	if len(s.queue) == 0 {
		return
	}
	// Profile breakpoints: free capacity from now on, rising at each
	// pending completion. The snapshot is sorted into the unique
	// (time, seq) order, so the profile is engine-independent.
	s.runScratch = s.ec.appendPending(s.runScratch[:0])
	sort.Sort(&byTimeSeq{ev: s.runScratch})
	s.profT = append(s.profT[:0], s.now)
	s.profF = append(s.profF[:0], s.freeTotal)
	free := s.freeTotal
	for _, r := range s.runScratch {
		free += s.job(r.job).Width
		last := len(s.profT) - 1
		if r.time <= s.profT[last] {
			// Completion at the current breakpoint (sorted, so only
			// exact ties land here): merge.
			s.profF[last] = free
			continue
		}
		s.profT = append(s.profT, r.time)
		s.profF = append(s.profF, free)
	}
	kept := s.queue[:0]
	stalled := false
	for _, j := range s.queue {
		w := s.job(j).Width
		req := s.job(j).Policy[s.state(j).attempt]
		slot := s.findSlot(w, req)
		s.reserveSlot(slot, w, req)
		// A completion pending at exactly now counts as free in the
		// profile but its capacity is only returned when its event
		// pops, so a slot-0 job must also fit the live free count;
		// otherwise it keeps its reservation and starts on the
		// same-instant reschedule that follows the pop.
		if slot == 0 && w <= s.freeTotal {
			s.start(j, stalled)
		} else {
			stalled = true
			kept = append(kept, j)
		}
	}
	s.queue = kept
}

// findSlot returns the first profile breakpoint from which width w
// fits for duration req. Beyond the last breakpoint the cluster is
// fully free, so the scan always terminates.
func (s *sim) findSlot(w int, req float64) int {
	i := 0
	for i < len(s.profT) {
		end := s.profT[i] + req
		ok := true
		for k := i; k < len(s.profT) && s.profT[k] < end; k++ {
			if s.profF[k] < w {
				i = k + 1
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	// Unreachable: the tail interval always carries full capacity and
	// every job's width is validated against it.
	return len(s.profT) - 1
}

// reserveSlot books w units over [profT[slot], profT[slot]+req),
// splitting the interval containing the reservation end.
func (s *sim) reserveSlot(slot, w int, req float64) {
	end := s.profT[slot] + req
	k := slot
	for k < len(s.profT) && s.profT[k] < end {
		k++
	}
	// Insert a breakpoint at end unless one exists (k points past the
	// last breakpoint < end).
	if k == len(s.profT) {
		s.profT = append(s.profT, end)
		s.profF = append(s.profF, s.profF[k-1])
	} else if end < s.profT[k] {
		s.profT = append(s.profT, 0)
		s.profF = append(s.profF, 0)
		copy(s.profT[k+1:], s.profT[k:])
		copy(s.profF[k+1:], s.profF[k:])
		s.profT[k] = end
		s.profF[k] = s.profF[k-1]
	}
	for m := slot; m < len(s.profT) && s.profT[m] < end; m++ {
		s.profF[m] -= w
	}
}
