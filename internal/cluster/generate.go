package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// JobClass describes one stream of statistically identical jobs.
type JobClass struct {
	// Name labels the class in reports.
	Name string
	// Runtime is the law of the true runtime X (a Table-1
	// distribution in the paper's experiments).
	Runtime dist.Distribution
	// Weight is the class's relative frequency (> 0).
	Weight float64
	// MinWidth and MaxWidth bound the uniformly drawn width;
	// MaxWidth < MinWidth means the width is fixed at MinWidth.
	MinWidth, MaxWidth int
	// Tenant indexes Config.Tenants.
	Tenant int
	// Policy is the reservation sequence every job of the class
	// submits with (see Job.Policy) — typically a Planner strategy
	// truncated to cover the law's quantile range.
	Policy []float64
}

// WorkloadSpec describes a synthetic workload.
type WorkloadSpec struct {
	// Seed fixes the whole workload: the same spec always generates
	// the same jobs, whatever the worker count.
	Seed uint64
	// Jobs is how many jobs to generate.
	Jobs int
	// ArrivalRate is the Poisson arrival rate (jobs per unit time).
	ArrivalRate float64
	// Classes is the job mix.
	Classes []JobClass
}

// genChunk is the fixed generation granule: each chunk of jobs owns one
// rng.Split stream, so the generated workload is bit-identical for
// every worker count — parallelism only changes which goroutine
// evaluates a chunk, never what the chunk contains. It equals the
// simulator's storage chunk (1<<chunkShift), which is what lets
// RunStream generate, simulate, and recycle the workload chunk by
// chunk.
const genChunk = 1 << chunkShift

// workloadCum validates the spec and returns the cumulative class
// weights used for inverse-transform class selection.
func workloadCum(spec *WorkloadSpec) ([]float64, error) {
	if spec.Jobs < 0 {
		return nil, fmt.Errorf("cluster: negative job count %d", spec.Jobs)
	}
	if !(spec.ArrivalRate > 0) || math.IsInf(spec.ArrivalRate, 0) {
		return nil, fmt.Errorf("cluster: arrival rate %g must be positive and finite", spec.ArrivalRate)
	}
	if len(spec.Classes) == 0 {
		return nil, errors.New("cluster: workload needs at least one job class")
	}
	totalW := 0.0
	for i, c := range spec.Classes {
		if !(c.Weight > 0) || math.IsInf(c.Weight, 0) {
			return nil, fmt.Errorf("cluster: class %d weight %g must be positive and finite", i, c.Weight)
		}
		if c.Runtime == nil {
			return nil, fmt.Errorf("cluster: class %d has no runtime law", i)
		}
		if c.MinWidth < 1 {
			return nil, fmt.Errorf("cluster: class %d MinWidth %d must be >= 1", i, c.MinWidth)
		}
		if len(c.Policy) == 0 {
			return nil, fmt.Errorf("cluster: class %d has an empty policy", i)
		}
		totalW += c.Weight
	}
	cum := make([]float64, len(spec.Classes))
	acc := 0.0
	for i, c := range spec.Classes {
		acc += c.Weight / totalW
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0 // close the last bucket against rounding
	return cum, nil
}

// genChunkInto draws chunk c of the workload into out (whose length
// must be the chunk's job count). Arrivals hold within-chunk cumulative
// interarrival sums — the caller adds the cross-chunk prefix offset.
// Returns the chunk's interarrival sum.
func genChunkInto(spec *WorkloadSpec, cum []float64, r *rng.Source, c int, out []Job) float64 {
	lo := c * genChunk
	t := 0.0
	for i := range out {
		t += r.ExpFloat64() / spec.ArrivalRate
		u := r.Float64()
		k := 0
		for k < len(cum)-1 && u >= cum[k] {
			k++
		}
		cl := &spec.Classes[k]
		width := cl.MinWidth
		if cl.MaxWidth > cl.MinWidth {
			width += int(r.Uint64n(uint64(cl.MaxWidth - cl.MinWidth + 1)))
		}
		out[i] = Job{
			ID:      lo + i,
			Tenant:  cl.Tenant,
			Arrival: t,
			Width:   width,
			Actual:  dist.Sample(cl.Runtime, r),
			Policy:  cl.Policy,
		}
	}
	return t
}

// GenerateJobs materializes the workload on up to workers goroutines
// (workers <= 0 selects a default). Job i has ID i; arrivals are a
// Poisson process realized as an exact prefix sum of per-chunk
// exponential increments, so they are deterministic too.
func GenerateJobs(spec WorkloadSpec, workers int) ([]Job, error) {
	cum, err := workloadCum(&spec)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, spec.Jobs)
	if spec.Jobs == 0 {
		return jobs, nil
	}
	chunks := (spec.Jobs + genChunk - 1) / genChunk
	streams := rng.Split(spec.Seed, chunks)
	chunkSum := make([]float64, chunks)

	// Pass 1 (parallel): draw every job; arrivals hold within-chunk
	// cumulative interarrival sums.
	parallel.ForEach(chunks, workers, func(c int) {
		lo := c * genChunk
		hi := lo + genChunk
		if hi > spec.Jobs {
			hi = spec.Jobs
		}
		chunkSum[c] = genChunkInto(&spec, cum, streams[c], c, jobs[lo:hi])
	})

	// Pass 2: sequential prefix over chunk sums, then a parallel
	// offset add — the classic two-pass scan, worker-count neutral.
	offset := make([]float64, chunks)
	run := 0.0
	for c := range chunkSum {
		offset[c] = run
		run += chunkSum[c]
	}
	parallel.ForEach(chunks, workers, func(c int) {
		lo := c * genChunk
		hi := lo + genChunk
		if hi > spec.Jobs {
			hi = spec.Jobs
		}
		for i := lo; i < hi; i++ {
			jobs[i].Arrival += offset[c]
		}
	})
	return jobs, nil
}

// RunOutput bundles one simulated workload.
type RunOutput struct {
	// Results are the per-job outcomes sorted by ID.
	Results []Result
	// Stats is their summary.
	Stats Stats
	// TraceHash fingerprints the full event trace (FNV-1a over every
	// field of every event); equal hashes mean bit-identical runs.
	TraceHash uint64
	// TraceEvents is the trace length.
	TraceEvents uint64
}

// Run generates the workload with up to workers goroutines, simulates
// it (the event loop itself is sequential — determinism needs no
// locks), and summarizes. With check set, a streaming Invariants
// recorder rides along and any violation is returned as an error.
// cfg.Recorder, when set, still receives the trace.
func Run(spec WorkloadSpec, cfg Config, workers int, check bool) (RunOutput, error) {
	var out RunOutput
	jobs, err := GenerateJobs(spec, workers)
	if err != nil {
		return out, err
	}
	hash := NewTraceHash()
	var inv *Invariants
	recs := []Recorder{hash, cfg.Recorder}
	if check {
		inv = NewInvariants(cfg)
		recs = append(recs, inv)
	}
	cfg.Recorder = MultiRecorder(recs...)
	out.Results, err = Simulate(cfg, jobs)
	if err != nil {
		return out, err
	}
	if inv != nil {
		if err := inv.Finish(); err != nil {
			return out, err
		}
	}
	out.Stats = Summarize(cfg, out.Results)
	out.TraceHash = hash.Sum64()
	out.TraceEvents = hash.Events()
	return out, nil
}
