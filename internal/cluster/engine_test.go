package cluster

import (
	"math"
	"testing"
)

// engineShapes are the two cluster shapes every engine-parity scenario
// runs on: many unit-capacity nodes and few fat nodes (allocation
// splitting, different backfill geometry).
func engineShapes() map[string][]int {
	return map[string][]int{
		"unit": UnitNodes(8),
		"fat":  {4, 4},
	}
}

// compareEngines simulates the same scenario under EngineHeap and
// EngineCalendar and requires bit-identical traces, per-job results,
// and summaries. Both runs ride the full invariant checker.
func compareEngines(t *testing.T, label string, cfg Config, jobs []Job) {
	t.Helper()
	type run struct {
		res  []Result
		hash *TraceHash
	}
	runs := make(map[Engine]run)
	for _, eng := range []Engine{EngineHeap, EngineCalendar} {
		c := cfg
		c.Engine = eng
		hash := NewTraceHash()
		inv := NewInvariants(c)
		c.Recorder = MultiRecorder(hash, inv)
		res, err := Simulate(c, jobs)
		if err != nil {
			t.Fatalf("%s: engine %v: %v", label, eng, err)
		}
		if err := inv.Finish(); err != nil {
			t.Fatalf("%s: engine %v: invariants: %v", label, eng, err)
		}
		runs[eng] = run{res: res, hash: hash}
	}
	h, c := runs[EngineHeap], runs[EngineCalendar]
	if h.hash.Sum64() != c.hash.Sum64() || h.hash.Events() != c.hash.Events() {
		t.Fatalf("%s: trace diverged: heap %x (%d events) vs calendar %x (%d events)",
			label, h.hash.Sum64(), h.hash.Events(), c.hash.Sum64(), c.hash.Events())
	}
	if len(h.res) != len(c.res) {
		t.Fatalf("%s: result count %d vs %d", label, len(h.res), len(c.res))
	}
	for i := range h.res {
		a, b := h.res[i], c.res[i]
		if a.ID != b.ID || a.Tenant != b.Tenant || a.Nodes != b.Nodes ||
			a.Attempts != b.Attempts || a.Kills != b.Kills || a.Preempts != b.Preempts ||
			a.Killed != b.Killed || a.Backfilled != b.Backfilled || a.Rejected != b.Rejected ||
			!sameFloat(a.Arrival, b.Arrival) || !sameFloat(a.Requested, b.Requested) ||
			!sameFloat(a.Actual, b.Actual) || !sameFloat(a.Start, b.Start) ||
			!sameFloat(a.Wait, b.Wait) || !sameFloat(a.End, b.End) ||
			!sameFloat(a.Cost, b.Cost) || !sameFloat(a.NodeSeconds, b.NodeSeconds) {
			t.Fatalf("%s: job %d diverged\nheap:     %+v\ncalendar: %+v", label, a.ID, a, b)
		}
	}
	sh := Summarize(cfg, h.res)
	sc := Summarize(cfg, c.res)
	if sh != sc {
		t.Fatalf("%s: summaries diverged\nheap:     %+v\ncalendar: %+v", label, sh, sc)
	}
}

// TestEngineParityScenarios: 64 seeded workloads × 2 cluster shapes,
// cycling through every scheduling policy family (FCFS, EASY,
// EASY+preemption, conservative) with multi-attempt policies, finite
// budgets and quotas. The calendar engine must be indistinguishable
// from the reference heap: equal trace hash, Float64bits-equal results
// and summaries.
func TestEngineParityScenarios(t *testing.T) {
	for seed := uint64(0); seed < parityScenarios; seed++ {
		spec := determinismSpec(seed*2654435761+1, 400)
		jobs, err := GenerateJobs(spec, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := determinismCfg()
		switch seed % 4 {
		case 0:
			cfg.Backfill = BackfillEASY
		case 1:
			cfg.Backfill = BackfillConservative
		case 2:
			cfg.Backfill = BackfillEASY
			cfg.PreemptAfter = 0.5
		case 3:
			cfg.Backfill = BackfillNone
		}
		for name, nodes := range engineShapes() {
			cfg.Nodes = nodes
			compareEngines(t, name, cfg, jobs)
		}
	}
}

// TestEngineAllEqualTimes: every completion lands at the same instant,
// so the calendar queue has no positive gap to size a bucket width
// from — it must fall back to the heap mid-run and still produce the
// heap engine's exact trace, with the (time, start-order) tie-break
// preserved and the invariant checker clean.
func TestEngineAllEqualTimes(t *testing.T) {
	jobs := make([]Job, 200)
	for i := range jobs {
		jobs[i] = Job{ID: i, Arrival: 0, Width: 1, Actual: 1, Policy: []float64{2}}
	}
	cfg := Config{Nodes: UnitNodes(64), Backfill: BackfillEASY}
	compareEngines(t, "all-equal", cfg, jobs)
}

// TestEngineWideTimeSpread: completion times spread over 12 decades —
// no single bucket width covers the span, so the calendar queue must
// detect the degenerate spread at its first rebuild and fall back
// without misordering anything.
func TestEngineWideTimeSpread(t *testing.T) {
	jobs := make([]Job, 48)
	for i := range jobs {
		actual := math.Pow(10, float64(i%13)-6) // 1e-6 .. 1e6
		jobs[i] = Job{ID: i, Arrival: 0, Width: 1, Actual: actual, Policy: []float64{2e6}}
	}
	cfg := Config{Nodes: UnitNodes(48), Backfill: BackfillEASY}
	compareEngines(t, "wide-spread", cfg, jobs)
}

// TestEngineZeroDurationJobs: zero-runtime jobs complete at their start
// instant, producing long runs of same-time events whose relative
// order is pure (time, start-order seq) tie-breaking.
func TestEngineZeroDurationJobs(t *testing.T) {
	jobs := make([]Job, 120)
	for i := range jobs {
		actual := 0.0
		if i%3 == 0 {
			actual = 0.25
		}
		jobs[i] = Job{ID: i, Arrival: float64(i / 12), Width: 1 + i%3, Actual: actual, Policy: []float64{0.5}}
	}
	cfg := Config{Nodes: UnitNodes(6), Backfill: BackfillEASY}
	compareEngines(t, "zero-duration", cfg, jobs)
}

// TestEngineValidation: unknown engine values are rejected.
func TestEngineValidation(t *testing.T) {
	cfg := Config{Nodes: UnitNodes(1), Engine: Engine(9)}
	if _, err := Simulate(cfg, nil); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if EngineCalendar.String() != "calendar" || EngineHeap.String() != "heap" || Engine(9).String() != "unknown" {
		t.Fatal("engine names wrong")
	}
}
