package cluster

import (
	"fmt"
	"math"
)

// invariant phases of the per-job replay state machine.
const (
	ivAbsent  uint8 = iota // no event seen yet
	ivArrived              // EvArrive seen, admission pending
	ivHeld                 // parked in the tenant's quota hold queue
	ivQueued               // in the run queue
	ivRunning              // attempt executing
	ivPending              // killed/preempted, resubmission expected now
	ivDone                 // terminal
)

// invJob is the checker's replayed view of one job.
type invJob struct {
	phase     uint8
	committed bool
	width     int64
	attempt   int32
	request   float64 // current attempt's reservation
	allocLeft int64   // capacity still to be claimed after EvStart
	freed     int64   // capacity returned so far this attempt
	tenant    int32
}

// Invariants is a streaming Recorder that replays the event trace
// against the entity model and reports the first violation. It checks,
// event by event:
//
//   - causality: Seq strictly increasing, Time nondecreasing, and every
//     transition legal for the job's replayed state (no event consumes
//     state produced by a later one);
//   - capacity conservation: every allocation fits its node, per-node
//     usage never exceeds capacity or drops below zero, and each
//     attempt's allocations and frees both sum to exactly the job's
//     width;
//   - ledger balance: every admission debit equals the model's
//     worst-case attempt cost, balances never go negative or exceed the
//     initial budget, and refunds never exceed the refundable part;
//   - quota accounting: committed capacity per tenant never exceeds its
//     quota and only changes at admissions, releases, and terminals.
//
// Finish adds the global liveness checks: every job that arrived
// reached a terminal state (no starvation under backfill), all nodes
// are idle, and all quota commitments were returned.
//
// After the first violation the checker latches the error and ignores
// further events, so it is safe to keep feeding a poisoned trace.
type Invariants struct {
	caps     []int64
	usage    []int64
	balance  []float64
	initial  []float64
	quota    []int64
	commit   []int64
	model    [3]float64 // alpha, beta, gamma
	jobs     []invJob
	lastSeq  uint64
	lastTime float64
	events   uint64
	err      error
}

// NewInvariants builds a checker for traces produced under cfg. The
// configuration must be the one the simulation ran with — budgets,
// quotas, node capacities, and the cost model seed the replay.
func NewInvariants(cfg Config) *Invariants {
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: "default", Budget: math.Inf(1)}}
	}
	inv := &Invariants{
		caps:     make([]int64, len(cfg.Nodes)),
		usage:    make([]int64, len(cfg.Nodes)),
		balance:  make([]float64, len(tenants)),
		initial:  make([]float64, len(tenants)),
		quota:    make([]int64, len(tenants)),
		commit:   make([]int64, len(tenants)),
		model:    [3]float64{cfg.Model.Alpha, cfg.Model.Beta, cfg.Model.Gamma},
		lastTime: math.Inf(-1),
	}
	for i, c := range cfg.Nodes {
		inv.caps[i] = int64(c)
	}
	for i, t := range tenants {
		inv.balance[i] = t.Budget
		inv.initial[i] = t.Budget
		inv.quota[i] = int64(t.Quota)
	}
	return inv
}

// Err returns the first violation found, or nil.
func (inv *Invariants) Err() error { return inv.err }

// Events returns how many events were checked before latching.
func (inv *Invariants) Events() uint64 { return inv.events }

// fail latches the first violation.
func (inv *Invariants) fail(ev Event, format string, args ...any) {
	if inv.err == nil {
		inv.err = fmt.Errorf("invariant violation at seq %d (t=%g, %s job %d): %s",
			ev.Seq, ev.Time, ev.Kind, ev.Job, fmt.Sprintf(format, args...))
	}
}

// tol is the absolute comparison slack for replayed cost arithmetic —
// scaled to the magnitude so multi-million-event traces with large
// budgets do not trip on accumulated rounding.
func tol(x float64) float64 { return 1e-9 * (math.Abs(x) + 1) }

// RecordBatch checks a batch of events in order. The checker is
// already streaming and allocation-free per event, so batching exists
// to satisfy the BatchRecorder fast path (one interface call per
// batch) — the replay itself is identical.
func (inv *Invariants) RecordBatch(evs []Event) {
	for i := range evs {
		inv.Record(evs[i])
	}
}

// Record checks one event.
func (inv *Invariants) Record(ev Event) {
	if inv.err != nil {
		return
	}
	inv.events++
	if ev.Seq <= inv.lastSeq {
		inv.fail(ev, "seq not strictly increasing (previous %d)", inv.lastSeq)
		return
	}
	inv.lastSeq = ev.Seq
	if ev.Time < inv.lastTime {
		inv.fail(ev, "time went backwards (previous %g)", inv.lastTime)
		return
	}
	inv.lastTime = ev.Time
	if ev.Job < 0 {
		inv.fail(ev, "negative job index")
		return
	}
	for int(ev.Job) >= len(inv.jobs) {
		inv.jobs = append(inv.jobs, invJob{})
	}
	j := &inv.jobs[ev.Job]
	if ev.Tenant < 0 || int(ev.Tenant) >= len(inv.balance) {
		inv.fail(ev, "tenant %d out of range", ev.Tenant)
		return
	}
	if j.phase != ivAbsent && ev.Tenant != j.tenant {
		inv.fail(ev, "tenant changed from %d to %d", j.tenant, ev.Tenant)
		return
	}
	if j.allocLeft > 0 && ev.Kind != EvAlloc {
		inv.fail(ev, "allocation incomplete (%d units outstanding) but got %s", j.allocLeft, ev.Kind)
		return
	}
	switch ev.Kind {
	case EvArrive:
		if j.phase != ivAbsent {
			inv.fail(ev, "second arrival (phase %d)", j.phase)
			return
		}
		if ev.A < 1 {
			inv.fail(ev, "width %g < 1", ev.A)
			return
		}
		j.phase = ivArrived
		j.width = int64(ev.A)
		j.tenant = ev.Tenant

	case EvAdmit:
		if j.phase != ivArrived && j.phase != ivPending {
			inv.fail(ev, "admit in phase %d", j.phase)
			return
		}
		if ev.Attempt != j.attempt {
			inv.fail(ev, "admit for attempt %d, expected %d", ev.Attempt, j.attempt)
			return
		}
		want := inv.model[0]*ev.A + inv.model[1]*ev.A + inv.model[2]
		if math.Abs(ev.B-want) > tol(want) {
			inv.fail(ev, "debit %g does not match worst-case cost %g for reservation %g", ev.B, want, ev.A)
			return
		}
		t := ev.Tenant
		inv.balance[t] -= ev.B
		if inv.balance[t] < -tol(inv.initial[t]) {
			inv.fail(ev, "tenant %d balance went negative (%g)", t, inv.balance[t])
			return
		}
		j.request = ev.A
		if ev.Flag {
			if j.committed {
				inv.fail(ev, "held although quota already committed")
				return
			}
			j.phase = ivHeld
			return
		}
		if !j.committed {
			j.committed = true
			inv.commit[t] += j.width
			if inv.quota[t] > 0 && inv.commit[t] > inv.quota[t] {
				inv.fail(ev, "tenant %d committed %d exceeds quota %d", t, inv.commit[t], inv.quota[t])
				return
			}
		}
		j.phase = ivQueued

	case EvReject:
		if j.phase != ivArrived && j.phase != ivPending {
			inv.fail(ev, "reject in phase %d", j.phase)
			return
		}
		if !ev.Flag && math.Abs(ev.B-inv.balance[ev.Tenant]) > tol(inv.initial[ev.Tenant]) {
			inv.fail(ev, "reported balance %g disagrees with replay %g", ev.B, inv.balance[ev.Tenant])
			return
		}
		inv.retire(ev, j)

	case EvRelease:
		if j.phase != ivHeld {
			inv.fail(ev, "release in phase %d", j.phase)
			return
		}
		t := ev.Tenant
		j.committed = true
		inv.commit[t] += j.width
		if inv.quota[t] > 0 && inv.commit[t] > inv.quota[t] {
			inv.fail(ev, "tenant %d committed %d exceeds quota %d on release", t, inv.commit[t], inv.quota[t])
			return
		}
		j.phase = ivQueued

	case EvStart:
		if j.phase != ivQueued {
			inv.fail(ev, "start in phase %d", j.phase)
			return
		}
		if int64(ev.A) != j.width {
			inv.fail(ev, "start width %g != arrival width %d", ev.A, j.width)
			return
		}
		j.phase = ivRunning
		j.allocLeft = j.width
		j.freed = 0

	case EvAlloc:
		if j.phase != ivRunning || j.allocLeft <= 0 {
			inv.fail(ev, "alloc in phase %d with %d outstanding", j.phase, j.allocLeft)
			return
		}
		if ev.Node < 0 || int(ev.Node) >= len(inv.caps) {
			inv.fail(ev, "node %d out of range", ev.Node)
			return
		}
		amt := int64(ev.A)
		if amt < 1 || amt > j.allocLeft {
			inv.fail(ev, "alloc %d units with only %d outstanding", amt, j.allocLeft)
			return
		}
		inv.usage[ev.Node] += amt
		if inv.usage[ev.Node] > inv.caps[ev.Node] {
			inv.fail(ev, "node %d oversubscribed: usage %d exceeds capacity %d", ev.Node, inv.usage[ev.Node], inv.caps[ev.Node])
			return
		}
		j.allocLeft -= amt

	case EvFree:
		if j.phase != ivRunning {
			inv.fail(ev, "free in phase %d", j.phase)
			return
		}
		if ev.Node < 0 || int(ev.Node) >= len(inv.caps) {
			inv.fail(ev, "node %d out of range", ev.Node)
			return
		}
		amt := int64(ev.A)
		if amt < 1 || j.freed+amt > j.width {
			inv.fail(ev, "free %d units with %d of %d already freed", amt, j.freed, j.width)
			return
		}
		inv.usage[ev.Node] -= amt
		if inv.usage[ev.Node] < 0 {
			inv.fail(ev, "node %d usage went negative (%d)", ev.Node, inv.usage[ev.Node])
			return
		}
		j.freed += amt

	case EvFinish:
		if !inv.attemptClosed(ev, j) {
			return
		}
		if ev.A > j.request+tol(j.request) {
			inv.fail(ev, "used walltime %g exceeds reservation %g", ev.A, j.request)
			return
		}
		maxRefund := inv.model[1] * j.request
		if ev.B < -tol(maxRefund) || ev.B > maxRefund+tol(maxRefund) {
			inv.fail(ev, "refund %g outside [0, β·request = %g]", ev.B, maxRefund)
			return
		}
		inv.refund(ev)
		inv.retire(ev, j)

	case EvKill:
		if !inv.attemptClosed(ev, j) {
			return
		}
		if math.Abs(ev.A-j.request) > tol(j.request) {
			inv.fail(ev, "killed at %g, reservation was %g", ev.A, j.request)
			return
		}
		if ev.Flag {
			inv.retire(ev, j)
			return
		}
		j.phase = ivPending
		j.attempt++

	case EvPreempt:
		if !inv.attemptClosed(ev, j) {
			return
		}
		if ev.A < 0 || ev.A > j.request+tol(j.request) {
			inv.fail(ev, "preempted after %g, reservation was %g", ev.A, j.request)
			return
		}
		maxRefund := inv.model[1] * j.request
		if ev.B < -tol(maxRefund) || ev.B > maxRefund+tol(maxRefund) {
			inv.fail(ev, "preempt refund %g outside [0, β·request = %g]", ev.B, maxRefund)
			return
		}
		inv.refund(ev)
		j.phase = ivPending

	default:
		inv.fail(ev, "unknown event kind %d", ev.Kind)
	}
}

// attemptClosed verifies the job is running with every allocated unit
// already freed — the precondition of finish/kill/preempt events.
func (inv *Invariants) attemptClosed(ev Event, j *invJob) bool {
	if j.phase != ivRunning {
		inv.fail(ev, "%s in phase %d", ev.Kind, j.phase)
		return false
	}
	if j.freed != j.width {
		inv.fail(ev, "%s with %d of %d units still held", ev.Kind, j.width-j.freed, j.width)
		return false
	}
	return true
}

// refund credits the tenant and checks the balance cannot exceed the
// initial budget.
func (inv *Invariants) refund(ev Event) {
	t := ev.Tenant
	inv.balance[t] += ev.B
	if inv.balance[t] > inv.initial[t]+tol(inv.initial[t]) {
		inv.fail(ev, "tenant %d balance %g exceeds initial budget %g", t, inv.balance[t], inv.initial[t])
	}
}

// retire moves the job to its terminal state, returning its quota
// commitment.
func (inv *Invariants) retire(ev Event, j *invJob) {
	if j.committed {
		j.committed = false
		inv.commit[ev.Tenant] -= j.width
		if inv.commit[ev.Tenant] < 0 {
			inv.fail(ev, "tenant %d committed capacity went negative", ev.Tenant)
			return
		}
	}
	j.phase = ivDone
}

// Finish runs the end-of-trace checks and returns the first violation
// found anywhere, or nil for a clean trace.
func (inv *Invariants) Finish() error {
	if inv.err != nil {
		return inv.err
	}
	for idx := range inv.jobs {
		if inv.jobs[idx].phase != ivDone {
			return fmt.Errorf("invariant violation: job %d never reached a terminal state (phase %d) — starvation or truncated trace", idx, inv.jobs[idx].phase)
		}
	}
	for n, u := range inv.usage {
		if u != 0 {
			return fmt.Errorf("invariant violation: node %d still holds %d units at end of trace", n, u)
		}
	}
	for t, c := range inv.commit {
		if c != 0 {
			return fmt.Errorf("invariant violation: tenant %d still has %d units committed at end of trace", t, c)
		}
	}
	return nil
}

// CheckTrace replays a materialized trace against cfg and returns the
// first violation, or nil.
func CheckTrace(cfg Config, events []Event) error {
	inv := NewInvariants(cfg)
	for _, ev := range events {
		inv.Record(ev)
	}
	return inv.Finish()
}
