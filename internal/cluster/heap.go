package cluster

// finishEvent is one pending attempt completion. seq is the start-order
// counter: the queue orders by (time, seq), which is exactly the
// (end, start-order) key queuesim's finishOne sorts by, so the two
// simulators consume completions in the same deterministic order even
// when several attempts release capacity at the same instant.
type finishEvent struct {
	time float64
	seq  uint64
	job  int32
}

// eventHeap is a binary min-heap of pending completions — the
// reference event structure (EngineHeap) and the fallback the calendar
// queue drains into on degenerate time distributions. All operations
// are allocation-free after the initial grow: push reslices within
// capacity and spills into the cold-path grow only when full. remove
// scans for the job linearly: preemption is rare and the pending set
// is bounded by the running attempts, so an O(jobs) position index
// (which would tie heap memory to the workload size) is not worth it.
type eventHeap struct {
	ev []finishEvent
}

func newEventHeap() *eventHeap {
	return &eventHeap{ev: make([]finishEvent, 0, 64)}
}

// size returns the number of pending completions.
//
//repro:hotpath
func (h *eventHeap) size() int { return len(h.ev) }

// top returns the earliest completion without removing it. Call only
// when size() > 0.
//
//repro:hotpath
func (h *eventHeap) top() finishEvent { return h.ev[0] }

// less orders by (time, seq) without any float equality test.
//
//repro:hotpath
func (h *eventHeap) less(i, k int) bool { return eventLess(h.ev[i], h.ev[k]) }

//repro:hotpath
func (h *eventHeap) swap(i, k int) {
	h.ev[i], h.ev[k] = h.ev[k], h.ev[i]
}

// push inserts a completion.
//
//repro:hotpath
func (h *eventHeap) push(e finishEvent) {
	if len(h.ev) == cap(h.ev) {
		h.grow()
	}
	n := len(h.ev)
	h.ev = h.ev[:n+1]
	h.ev[n] = e
	h.up(n)
}

// grow doubles the backing array; cold path, deliberately unannotated.
func (h *eventHeap) grow() {
	next := make([]finishEvent, len(h.ev), 2*cap(h.ev))
	copy(next, h.ev)
	h.ev = next
}

// pop removes and returns the earliest completion.
//
//repro:hotpath
func (h *eventHeap) pop() finishEvent {
	e := h.ev[0]
	n := len(h.ev) - 1
	h.swap(0, n)
	h.ev = h.ev[:n]
	if n > 0 {
		h.down(0)
	}
	return e
}

// remove deletes the pending completion of the given job (which must
// be present).
//
//repro:hotpath
func (h *eventHeap) remove(job int32) finishEvent {
	i := 0
	for h.ev[i].job != job {
		i++
	}
	e := h.ev[i]
	n := len(h.ev) - 1
	h.swap(i, n)
	h.ev = h.ev[:n]
	if i < n {
		if !h.up(i) {
			h.down(i)
		}
	}
	return e
}

//repro:hotpath
func (h *eventHeap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

//repro:hotpath
func (h *eventHeap) down(i int) {
	n := len(h.ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			return
		}
		h.swap(i, c)
		i = c
	}
}
