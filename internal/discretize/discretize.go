// Package discretize implements the truncation and discretization
// schemes of §4.2.1 of the paper, which turn a continuous execution-time
// distribution into the finite discrete distribution consumed by the
// optimal dynamic programming algorithm (Theorem 5):
//
//   - EQUAL-PROBABILITY: n support points at the i·F(b)/n quantiles,
//     each carrying probability F(b)/n;
//   - EQUAL-TIME: n equally spaced support points on [a, b], each
//     carrying the CDF increment of its cell.
//
// Distributions with unbounded support are first truncated at
// b = Q(1-ε); the resulting discrete law then has total mass
// F(b) = 1-ε.
package discretize

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// Scheme selects a discretization rule.
type Scheme int

const (
	// EqualProbability gives every discrete execution time the same
	// probability.
	EqualProbability Scheme = iota
	// EqualTime spaces the discrete execution times equally on [a, b].
	EqualTime
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case EqualProbability:
		return "Equal-probability"
	case EqualTime:
		return "Equal-time"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// DefaultEpsilon is the paper's truncation parameter ε = 1e-7.
const DefaultEpsilon = 1e-7

// DefaultSamples is the paper's sample count n = 1000.
const DefaultSamples = 1000

// Discretize truncates (if necessary) and discretizes d into n points
// using the given scheme. eps <= 0 selects DefaultEpsilon; it is only
// used for unbounded supports.
func Discretize(d dist.Distribution, n int, eps float64, scheme Scheme) (*dist.Discrete, error) {
	if n < 1 {
		return nil, fmt.Errorf("discretize: need at least 1 sample, got %d", n)
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if eps >= 1 {
		return nil, fmt.Errorf("discretize: epsilon must be in (0, 1), got %g", eps)
	}
	a, b := d.Support()
	mass := 1.0
	if math.IsInf(b, 1) {
		b = d.Quantile(1 - eps)
		mass = d.CDF(b)
	}
	if !(b > a) || math.IsInf(b, 1) || math.IsNaN(b) {
		return nil, fmt.Errorf("discretize: truncated support [%g, %g] is degenerate", a, b)
	}

	var vals, probs []float64
	switch scheme {
	case EqualProbability:
		// v_i = Q(i·F(b)/n), f_i = F(b)/n.
		f := mass / float64(n)
		for i := 1; i <= n; i++ {
			v := d.Quantile(float64(i) * mass / float64(n))
			vals = append(vals, v)
			probs = append(probs, f)
		}
	case EqualTime:
		// v_i = a + i·(b-a)/n, f_i = F(v_i) - F(v_{i-1}).
		prevF := d.CDF(a)
		for i := 1; i <= n; i++ {
			v := a + float64(i)*(b-a)/float64(n)
			f := d.CDF(v) - prevF
			prevF = d.CDF(v)
			vals = append(vals, v)
			probs = append(probs, f)
		}
	default:
		return nil, fmt.Errorf("discretize: unknown scheme %v", scheme)
	}
	vals, probs = mergeDegenerate(vals, probs)
	return dist.NewDiscrete(vals, probs)
}

// mergeDegenerate collapses repeated or non-increasing support points
// (which arise from flat quantile regions or zero-density cells) by
// accumulating their probability onto one point, and drops zero-mass
// points. The result is strictly increasing with the same total mass.
func mergeDegenerate(vals, probs []float64) ([]float64, []float64) {
	outV := vals[:0]
	outP := probs[:0]
	for i := range vals {
		if n := len(outV); n > 0 && vals[i] <= outV[n-1] {
			outP[n-1] += probs[i]
			continue
		}
		outV = append(outV, vals[i])
		outP = append(outP, probs[i])
	}
	// Drop zero-mass points (keep at least one point).
	v2 := outV[:0:len(outV)]
	p2 := outP[:0:len(outP)]
	for i := range outV {
		if outP[i] > 0 {
			v2 = append(v2, outV[i])
			p2 = append(p2, outP[i])
		}
	}
	if len(v2) == 0 {
		return outV[:1], outP[:1]
	}
	return v2, p2
}
