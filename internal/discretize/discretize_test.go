package discretize

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestEqualProbabilityUniform(t *testing.T) {
	u := dist.MustUniform(10, 20)
	d, err := Discretize(u, 10, 0, EqualProbability)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Fatalf("len = %d, want 10", d.Len())
	}
	// v_i = Q(i/10) = 10 + i; all probabilities 0.1.
	for i, v := range d.Values() {
		if math.Abs(v-float64(11+i)) > 1e-12 {
			t.Errorf("v[%d] = %g, want %d", i, v, 11+i)
		}
		if math.Abs(d.Probs()[i]-0.1) > 1e-12 {
			t.Errorf("f[%d] = %g, want 0.1", i, d.Probs()[i])
		}
	}
	if math.Abs(d.Total()-1) > 1e-12 {
		t.Errorf("total = %g, want 1", d.Total())
	}
}

func TestEqualTimeUniform(t *testing.T) {
	u := dist.MustUniform(10, 20)
	d, err := Discretize(u, 5, 0, EqualTime)
	if err != nil {
		t.Fatal(err)
	}
	// v_i = 10 + 2i, each cell mass 0.2.
	want := []float64{12, 14, 16, 18, 20}
	for i, v := range d.Values() {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Errorf("v[%d] = %g, want %g", i, v, want[i])
		}
		if math.Abs(d.Probs()[i]-0.2) > 1e-12 {
			t.Errorf("f[%d] = %g, want 0.2", i, d.Probs()[i])
		}
	}
}

func TestTruncationMass(t *testing.T) {
	e := dist.MustExponential(1)
	eps := 1e-4
	for _, scheme := range []Scheme{EqualProbability, EqualTime} {
		d, err := Discretize(e, 100, eps, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Total()-(1-eps)) > 1e-9 {
			t.Errorf("%v: total mass = %g, want %g", scheme, d.Total(), 1-eps)
		}
		_, hi := d.Support()
		wantB := e.Quantile(1 - eps)
		if math.Abs(hi-wantB) > 1e-9 {
			t.Errorf("%v: top point %g, want Q(1-ε) = %g", scheme, hi, wantB)
		}
	}
}

func TestDiscretizedMomentsConverge(t *testing.T) {
	// The discrete median approaches the continuous median for every
	// law; the discrete mean also converges except under heavy tails,
	// where the scheme's deliberate upper-edge representation (each
	// bucket is represented by its top quantile, so that reserving v_i
	// covers the whole bucket) biases it upward.
	heavyTail := map[string]bool{"Weibull(λ=1,κ=0.5)": true, "Pareto(ν=1.5,α=3)": true}
	for _, d := range dist.Table1() {
		for _, scheme := range []Scheme{EqualProbability, EqualTime} {
			dd, err := Discretize(d, 4000, 1e-7, scheme)
			if err != nil {
				t.Fatalf("%s/%v: %v", d.Name(), scheme, err)
			}
			gotMed, wantMed := dist.Median(dd), dist.Median(d)
			// Equal-time resolution is one cell width.
			_, top := dd.Support()
			lo, _ := d.Support()
			tolMed := math.Max(0.02*math.Max(1, wantMed), 1.5*(top-lo)/4000)
			if math.Abs(gotMed-wantMed) > tolMed {
				t.Errorf("%s/%v: discrete median %g vs %g", d.Name(), scheme, gotMed, wantMed)
			}
			if heavyTail[d.Name()] {
				// Upper-edge bias: the discrete mean must bound the
				// continuous mean from above, not match it.
				if dd.Mean() < d.Mean()*0.98 {
					t.Errorf("%s/%v: discrete mean %g below continuous %g", d.Name(), scheme, dd.Mean(), d.Mean())
				}
				continue
			}
			got, want := dd.Mean(), d.Mean()
			if math.Abs(got-want) > 0.05*math.Max(1, want) {
				t.Errorf("%s/%v: discrete mean %g vs %g", d.Name(), scheme, got, want)
			}
		}
	}
}

func TestDiscretizeStrictlyIncreasing(t *testing.T) {
	for _, d := range dist.Table1() {
		for _, scheme := range []Scheme{EqualProbability, EqualTime} {
			for _, n := range []int{1, 10, 100, 997} {
				dd, err := Discretize(d, n, 0, scheme)
				if err != nil {
					t.Fatalf("%s/%v/n=%d: %v", d.Name(), scheme, n, err)
				}
				vals := dd.Values()
				for i := 1; i < len(vals); i++ {
					if vals[i] <= vals[i-1] {
						t.Fatalf("%s/%v: values not increasing at %d", d.Name(), scheme, i)
					}
				}
				for _, p := range dd.Probs() {
					if p <= 0 {
						t.Fatalf("%s/%v: nonpositive probability", d.Name(), scheme)
					}
				}
			}
		}
	}
}

func TestDiscretizeValidation(t *testing.T) {
	u := dist.MustUniform(10, 20)
	if _, err := Discretize(u, 0, 0, EqualTime); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Discretize(u, 10, 1.5, EqualTime); err == nil {
		t.Error("eps >= 1 accepted")
	}
	if _, err := Discretize(u, 10, 0, Scheme(99)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if EqualProbability.String() != "Equal-probability" || EqualTime.String() != "Equal-time" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme has empty name")
	}
}
