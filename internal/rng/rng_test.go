package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s == [4]uint64{} {
		t.Fatal("zero seed left an all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero-seeded source repeated values: %d unique of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", u)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(12345)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sum2 += u * u
	}
	mean := sum / n
	varc := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ≈0.5", mean)
	}
	if math.Abs(varc-1.0/12.0) > 0.005 {
		t.Errorf("uniform variance = %g, want ≈%g", varc, 1.0/12.0)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(99)
	for i := 0; i < 100000; i++ {
		if u := r.Float64Open(); u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %g", u)
		}
	}
}

func TestJumpDisjointness(t *testing.T) {
	// After a jump the stream must not reproduce the pre-jump prefix.
	a := New(5)
	prefix := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		prefix[a.Uint64()] = true
	}
	b := New(5)
	b.Jump()
	collisions := 0
	for i := 0; i < 10000; i++ {
		if prefix[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 2 {
		t.Errorf("jumped stream collided with prefix %d times", collisions)
	}
}

func TestSplitStreamsIndependentAndStable(t *testing.T) {
	s1 := Split(11, 4)
	s2 := Split(11, 8)
	// The first 4 streams must be identical regardless of how many
	// streams were requested (worker-count independence).
	for i := 0; i < 4; i++ {
		for j := 0; j < 100; j++ {
			if s1[i].Uint64() != s2[i].Uint64() {
				t.Fatalf("stream %d differs between Split(11,4) and Split(11,8)", i)
			}
		}
	}
	// Distinct streams differ.
	s := Split(11, 2)
	diff := false
	for j := 0; j < 100; j++ {
		if s[0].Uint64() != s[1].Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("Split streams 0 and 1 are identical")
	}
	if got := Split(3, 0); len(got) != 1 {
		t.Errorf("Split(3,0) returned %d streams, want 1", len(got))
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(2024)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	varc := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ≈0", mean)
	}
	if math.Abs(varc-1) > 0.02 {
		t.Errorf("normal variance = %g, want ≈1", varc)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(77)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %g", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ≈1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUint64nRangeAndUniformity(t *testing.T) {
	r := New(55)
	const n = 7
	counts := make([]int, n)
	const draws = 140000
	for i := 0; i < draws; i++ {
		v := r.Uint64n(n)
		if v >= n {
			t.Fatalf("Uint64n(%d) = %d", n, v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-draws/n) > 0.05*draws/n {
			t.Errorf("bucket %d: %d draws, want ≈%d", i, c, draws/n)
		}
	}
	// Power-of-two fast path.
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	r.Uint64n(0)
}
