// Package rng implements the deterministic pseudo-random number
// generation substrate for the Monte-Carlo engine: a xoshiro256++
// generator seeded through SplitMix64, with polynomial jumps that carve
// a single seed into many statistically independent streams. The
// streams let the parallel Monte-Carlo workers draw from disjoint
// subsequences so results are reproducible regardless of scheduling.
package rng

import "math"

// Source is a xoshiro256++ pseudo-random generator. The zero value is
// not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed via SplitMix64, which
// guarantees a well-mixed non-zero state for any seed value.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in the open interval (0, 1),
// suitable for inverse-transform sampling where quantile functions may
// be infinite at 0 or 1.
func (r *Source) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// jumpPoly is the xoshiro256 jump polynomial, equivalent to 2^128 calls
// to Uint64.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps. Calling Jump k times on a
// copy of a source yields a stream whose outputs never overlap the
// first 2^128 outputs of the original, giving independent parallel
// streams.
func (r *Source) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = [4]uint64{s0, s1, s2, s3}
}

// Split returns n mutually independent sources derived from seed. The
// i-th source is the base generator advanced by i jumps, so any worker
// count yields the same per-stream sequences.
func Split(seed uint64, n int) []*Source {
	if n < 1 {
		n = 1
	}
	out := make([]*Source, n)
	base := New(seed)
	for i := range out {
		cp := *base
		out[i] = &cp
		base.Jump()
	}
	return out
}

// NormFloat64 returns a standard normal variate computed by the
// Marsaglia polar method. The library's distributions sample by inverse
// transform; this is provided for trace-noise generation.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns a rate-1 exponential variate by inversion.
func (r *Source) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Uint64n returns a uniform value in [0, n) without modulo bias
// (rejection sampling on the top of the range). n must be positive.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	// Reject values in the final partial block.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
