// Package simulate implements the Monte-Carlo evaluation protocol of
// §5.1 of the paper: the expected cost of a reservation sequence is
// estimated by drawing N execution times from the distribution and
// averaging the per-run cost of Eq. (2) (Eq. 13), optionally normalized
// by the omniscient scheduler's expected cost. Evaluation is
// parallelized over worker goroutines with per-worker RNG streams so
// results are reproducible for a given seed regardless of GOMAXPROCS.
package simulate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// DefaultSamples is the paper's N = 1000 Monte-Carlo sample count.
const DefaultSamples = 1000

// Estimate is a Monte-Carlo estimate of an expected cost.
type Estimate struct {
	// Mean is the sample mean of the per-run costs (Eq. 13).
	Mean float64
	// StdErr is the standard error of Mean.
	StdErr float64
	// N is the number of samples.
	N int
	// MaxAttempts is the largest number of reservations any sampled run
	// needed.
	MaxAttempts int
}

// Samples draws n execution times from d using the given seed. The
// samples are drawn on a single stream so the same (seed, n) always
// yields the same workload, which lets every candidate strategy be
// scored on a common sample set (variance-reduced comparison).
func Samples(d dist.Distribution, n int, seed uint64) []float64 {
	return dist.SampleN(d, rng.New(seed), n)
}

// AntitheticSamples draws n execution times in antithetic pairs:
// quantiles at u and 1-u share one uniform draw. Because the run cost
// of any reservation sequence is nondecreasing in the job duration,
// pairing negatively correlated durations is guaranteed to reduce the
// variance of the Eq.-(13) estimate (classical antithetic-variates
// argument for monotone integrands). Odd n is rounded up to the next
// pair and truncated.
func AntitheticSamples(d dist.Distribution, n int, seed uint64) []float64 {
	if n <= 0 {
		return nil
	}
	r := rng.New(seed)
	out := make([]float64, 0, n+1)
	for len(out) < n {
		u := r.Float64Open()
		out = append(out, d.Quantile(u), d.Quantile(1-u))
	}
	return out[:n]
}

// CostOnSamples evaluates the Eq.-(13) estimate of a sequence's
// expected cost over a fixed workload. The sequence is cloned per
// worker; its generator must be pure. An error from any run (invalid
// sequence, uncovered duration) invalidates the whole estimate.
func CostOnSamples(m core.CostModel, s *core.Sequence, samples []float64, workers int) (Estimate, error) {
	n := len(samples)
	if n == 0 {
		return Estimate{}, errors.New("simulate: no samples")
	}
	if workers <= 0 || workers > n {
		workers = parallel.Workers(n)
	}
	type partial struct {
		sum, sum2   float64
		maxAttempts int
		err         error
	}
	parts := make([]partial, workers)
	parallel.ForEachBlock(n, workers, func(w, lo, hi int) {
		sw := s.Clone()
		p := &parts[w]
		for i := lo; i < hi; i++ {
			c, k, err := m.RunCost(sw, samples[i])
			if err != nil {
				p.err = fmt.Errorf("simulate: run %d (t=%g): %w", i, samples[i], err)
				return
			}
			p.sum += c
			p.sum2 += c * c
			if k > p.maxAttempts {
				p.maxAttempts = k
			}
		}
	})
	var sum, sum2 float64
	maxK := 0
	for _, p := range parts {
		if p.err != nil {
			return Estimate{}, p.err
		}
		sum += p.sum
		sum2 += p.sum2
		if p.maxAttempts > maxK {
			maxK = p.maxAttempts
		}
	}
	mean := sum / float64(n)
	varc := sum2/float64(n) - mean*mean
	if varc < 0 {
		varc = 0
	}
	return Estimate{
		Mean:        mean,
		StdErr:      math.Sqrt(varc / float64(n)),
		N:           n,
		MaxAttempts: maxK,
	}, nil
}

// EstimateCost draws n fresh samples from d (deterministically from
// seed) and evaluates the sequence on them.
func EstimateCost(m core.CostModel, d dist.Distribution, s *core.Sequence, n int, seed uint64, workers int) (Estimate, error) {
	if n <= 0 {
		n = DefaultSamples
	}
	return CostOnSamples(m, s, Samples(d, n, seed), workers)
}

// NormalizedCostOnSamples is CostOnSamples divided by the omniscient
// expected cost (§5.1): the returned estimate's Mean and StdErr are
// both scaled.
func NormalizedCostOnSamples(m core.CostModel, d dist.Distribution, s *core.Sequence, samples []float64, workers int) (Estimate, error) {
	e, err := CostOnSamples(m, s, samples, workers)
	if err != nil {
		return Estimate{}, err
	}
	o := m.OmniscientCost(d)
	e.Mean /= o
	e.StdErr /= o
	return e, nil
}
