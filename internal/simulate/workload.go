package simulate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
)

// Workload is a precomputed empirical scorer over a fixed Monte-Carlo
// sample set. Building it once per (samples, seed) sorts the samples
// and keeps prefix sums of their values (and squares), after which the
// exact Eq.-(13) average of any reservation sequence costs
// O(L·log N) instead of the O(N·L) per-candidate sweep of
// CostOnSamples: for each reservation t_i a binary search yields the
// empirical survival at t_i, and the prefix sums yield Σ_j min(t_i, X_j)
// over the still-running samples — the empirical-distribution form of
// the closed summation of Eq. (4).
//
// Concretely, with samples sorted ascending, let c_i = #{j : X_j <= t_i}
// (so c_0 = 0 for t_0 = 0) and P(r) = Σ_{j<r} X_(j). Every sample still
// running before attempt i (there are N - c_{i-1} of them) pays the
// reserved cost α·t_i + γ, the N - c_i samples that outlive t_i use the
// full reservation (β·t_i), and the samples finishing inside attempt i
// use their own duration (β·(P(c_i) - P(c_{i-1}))), giving
//
//	N·Ê(S) = Σ_i (α·t_i + γ)·(N - c_{i-1})
//	       + β·( t_i·(N - c_i) + P(c_i) - P(c_{i-1}) ).
//
// This regroups the exact same IEEE-754 products as CostOnSamples by
// attempt instead of by sample, so the two agree to ~1e-14 relative
// (association order is the only difference).
//
// A Workload is immutable after construction and safe for concurrent
// use; the per-call cursor carries all iteration state.
//
//repro:hotpath
type Workload struct {
	sorted  []float64 // ascending copy of the samples
	prefix  []float64 // prefix[r] = Σ_{j<r} sorted[j]
	prefix2 []float64 // prefix2[r] = Σ_{j<r} sorted[j]²
}

// NewWorkload builds the scorer from a sample set (in any order). The
// input slice is copied, not retained.
func NewWorkload(samples []float64) *Workload {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	prefix := make([]float64, len(sorted)+1)
	prefix2 := make([]float64, len(sorted)+1)
	for i, x := range sorted {
		prefix[i+1] = prefix[i] + x
		prefix2[i+1] = prefix2[i] + x*x
	}
	return &Workload{sorted: sorted, prefix: prefix, prefix2: prefix2}
}

// NewWorkloadFrom draws the deterministic (seed, n) sample set from d —
// the same set Samples returns — and builds the scorer. n <= 0 selects
// DefaultSamples.
func NewWorkloadFrom(d dist.Distribution, n int, seed uint64) *Workload {
	if n <= 0 {
		n = DefaultSamples
	}
	return NewWorkload(Samples(d, n, seed))
}

// N returns the number of samples.
func (w *Workload) N() int { return len(w.sorted) }

// Sorted returns the ascending sample values. The slice is shared:
// callers must not modify it.
func (w *Workload) Sorted() []float64 { return w.sorted }

// errNoSamples is hoisted so the empty-workload check costs nothing on
// the per-candidate path.
var errNoSamples = errors.New("simulate: workload has no samples")

// An UncoveredError reports a reservation sequence that ended below the
// workload's largest sample. It wraps core.ErrUncovered and carries the
// sample bound so callers can diagnose the gap; constructing it instead
// of fmt.Errorf keeps formatting (and its allocations) off the scoring
// loop — the message is built only when Error is called.
type UncoveredError struct {
	// Max is the largest sample in the workload.
	Max float64
}

func (e *UncoveredError) Error() string {
	return fmt.Sprintf("simulate: workload (max sample %g): %v", e.Max, core.ErrUncovered)
}

// Unwrap makes errors.Is(err, core.ErrUncovered) hold.
func (e *UncoveredError) Unwrap() error { return core.ErrUncovered }

// covering returns c = #{j : X_j <= t} given that lo of the smallest
// samples are already known to be <= t. The binary search is
// hand-rolled (same loop as sort.Search) so the hot path carries no
// closure: a capturing func literal passed to sort.Search is an
// allocation the compiler cannot always elide.
func (w *Workload) covering(t float64, lo int) int {
	i, j := lo, len(w.sorted)
	for i < j {
		h := int(uint(i+j) >> 1)
		if w.sorted[h] <= t {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// Cost returns the Eq.-(13) empirical mean cost of the sequence yielded
// by cur. It fails with core.ErrUncovered if the sequence ends below
// the largest sample, and propagates any cursor error (invalid
// sequence) — exactly the failure modes of CostOnSamples.
func (w *Workload) Cost(m core.CostModel, cur core.Cursor) (float64, error) {
	n := len(w.sorted)
	if n == 0 {
		return math.NaN(), errNoSamples
	}
	covered := 0 // c_{i-1}: samples finished before the current attempt
	total := 0.0
	for covered < n {
		ti, err := cur.Next()
		if err != nil {
			if errors.Is(err, core.ErrEnd) {
				return math.Inf(1), &UncoveredError{Max: w.sorted[n-1]}
			}
			return math.NaN(), err
		}
		cnt := w.covering(ti, covered)
		total += (m.Alpha*ti + m.Gamma) * float64(n-covered)
		if m.Beta != 0 {
			total += m.Beta * (ti*float64(n-cnt) + w.prefix[cnt] - w.prefix[covered])
		}
		covered = cnt
	}
	return total / float64(n), nil
}

// CostSequence is Cost over the sequence's own cursor. Scoring
// materializes s, so s must not be in use by another goroutine; unlike
// CostOnSamples no defensive Clone is taken.
func (w *Workload) CostSequence(m core.CostModel, s *core.Sequence) (float64, error) {
	cur := s.Cursor()
	return w.Cost(m, &cur)
}

// Estimate returns the full Estimate that CostOnSamples would produce
// on this workload — mean, standard error and the largest attempt
// count — still in O(L·log N). The variance uses the per-bin closed
// form: every sample finishing inside attempt i costs b_i + β·X_j with
// b_i the accumulated fixed cost, so Σ c_j² expands over the prefix
// sums of X and X².
func (w *Workload) Estimate(m core.CostModel, cur core.Cursor) (Estimate, error) {
	n := len(w.sorted)
	if n == 0 {
		return Estimate{}, errNoSamples
	}
	covered := 0
	sum, sum2 := 0.0, 0.0
	fixed := 0.0 // Σ_{l<i} (α+β)·t_l + γ: cost of all fully used attempts
	attempts := 0
	for covered < n {
		ti, err := cur.Next()
		if err != nil {
			if errors.Is(err, core.ErrEnd) {
				return Estimate{}, &UncoveredError{Max: w.sorted[n-1]}
			}
			return Estimate{}, err
		}
		attempts++
		cnt := w.covering(ti, covered)
		sum += (m.Alpha*ti + m.Gamma) * float64(n-covered)
		if m.Beta != 0 {
			sum += m.Beta * (ti*float64(n-cnt) + w.prefix[cnt] - w.prefix[covered])
		}
		if cnt > covered {
			// The cnt-covered samples finishing here cost b + β·X_j.
			b := fixed + m.Alpha*ti + m.Gamma
			binSum := w.prefix[cnt] - w.prefix[covered]
			binSum2 := w.prefix2[cnt] - w.prefix2[covered]
			sum2 += float64(cnt-covered)*b*b + 2*m.Beta*b*binSum + m.Beta*m.Beta*binSum2
		}
		fixed += (m.Alpha+m.Beta)*ti + m.Gamma
		covered = cnt
	}
	mean := sum / float64(n)
	varc := sum2/float64(n) - mean*mean
	if varc < 0 {
		varc = 0
	}
	return Estimate{
		Mean:        mean,
		StdErr:      math.Sqrt(varc / float64(n)),
		N:           n,
		MaxAttempts: attempts,
	}, nil
}
