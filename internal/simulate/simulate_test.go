package simulate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func TestSamplesDeterministic(t *testing.T) {
	d := dist.MustExponential(1)
	a := Samples(d, 100, 42)
	b := Samples(d, 100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, a[i], b[i])
		}
	}
	c := Samples(d, 100, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds share %d/100 samples", same)
	}
}

// TestMonteCarloMatchesAnalytic: Eq. (13) must converge to Eq. (4).
func TestMonteCarloMatchesAnalytic(t *testing.T) {
	cases := []struct {
		d dist.Distribution
		m core.CostModel
	}{
		{dist.MustExponential(1), core.ReservationOnly},
		{dist.MustExponential(1), core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 2}},
		{dist.MustUniform(10, 20), core.CostModel{Alpha: 0.95, Beta: 1, Gamma: 1.05}},
		{dist.MustLogNormal(3, 0.5), core.ReservationOnly},
		{dist.MustWeibull(1, 0.5), core.ReservationOnly},
	}
	for _, c := range cases {
		mean := c.d.Mean()
		s := core.NewSequence(func(i int, _ []float64) (float64, bool) {
			return mean * math.Pow(2, float64(i)), true
		})
		want, err := core.ExpectedCost(c.m, c.d, s.Clone())
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateCost(c.m, c.d, s, 200000, 7, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.d.Name(), err)
		}
		if math.Abs(est.Mean-want) > 5*est.StdErr+1e-9 {
			t.Errorf("%s %v: MC %g ± %g vs analytic %g", c.d.Name(), c.m, est.Mean, est.StdErr, want)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	mean := d.Mean()
	mk := func() *core.Sequence {
		return core.NewSequence(func(i int, _ []float64) (float64, bool) {
			return mean * math.Pow(2, float64(i)), true
		})
	}
	samples := Samples(d, 10000, 5)
	e1, err1 := CostOnSamples(m, mk(), samples, 1)
	e8, err8 := CostOnSamples(m, mk(), samples, 8)
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	if math.Abs(e1.Mean-e8.Mean) > 1e-9 {
		t.Errorf("worker count changed the estimate: %g vs %g", e1.Mean, e8.Mean)
	}
	if e1.MaxAttempts != e8.MaxAttempts {
		t.Errorf("max attempts differ: %d vs %d", e1.MaxAttempts, e8.MaxAttempts)
	}
}

func TestInvalidSequencePropagates(t *testing.T) {
	d := dist.MustUniform(10, 20)
	s := core.SequenceFromFirst(core.ReservationOnly, d, 15) // invalid candidate
	if _, err := EstimateCost(core.ReservationOnly, d, s, 1000, 1, 0); err == nil {
		t.Error("invalid sequence evaluated without error")
	}
	if _, err := CostOnSamples(core.ReservationOnly, s, nil, 0); err == nil {
		t.Error("empty sample set accepted")
	}
}

func TestNormalizedAtLeastOneStochastically(t *testing.T) {
	d := dist.MustGamma(2, 2)
	m := core.CostModel{Alpha: 1, Beta: 1, Gamma: 0.5}
	mean := d.Mean()
	s := core.NewSequence(func(i int, _ []float64) (float64, bool) {
		return mean * math.Pow(2, float64(i)), true
	})
	est, err := NormalizedCostOnSamples(m, d, s, Samples(d, 50000, 11), 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean < 1 {
		t.Errorf("normalized MC cost %g < 1", est.Mean)
	}
	if est.StdErr <= 0 || est.StdErr > 0.1 {
		t.Errorf("suspicious normalized stderr %g", est.StdErr)
	}
}

func TestUniformSingleReservationExactCost(t *testing.T) {
	// For S = (b) under RESERVATIONONLY every run costs exactly b.
	d := dist.MustUniform(10, 20)
	s, err := core.NewExplicitSequence(20)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCost(core.ReservationOnly, d, s, 5000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 20 || est.StdErr != 0 {
		t.Errorf("estimate = %g ± %g, want exactly 20 ± 0", est.Mean, est.StdErr)
	}
	if est.MaxAttempts != 1 {
		t.Errorf("max attempts = %d, want 1", est.MaxAttempts)
	}
}

// TestAntitheticReducesVariance: for the monotone run cost, antithetic
// pairing must cut the estimator variance versus plain sampling at the
// same budget. Measured over many independent estimates.
func TestAntitheticReducesVariance(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	mean := d.Mean()
	mk := func() *core.Sequence {
		return core.NewSequence(func(i int, _ []float64) (float64, bool) {
			return mean * math.Pow(2, float64(i)), true
		})
	}
	const reps, n = 200, 200
	variance := func(sampler func(seed uint64) []float64) float64 {
		var sum, sum2 float64
		for k := 0; k < reps; k++ {
			est, err := CostOnSamples(m, mk(), sampler(uint64(k)), 1)
			if err != nil {
				t.Fatal(err)
			}
			sum += est.Mean
			sum2 += est.Mean * est.Mean
		}
		mu := sum / reps
		return sum2/reps - mu*mu
	}
	vPlain := variance(func(seed uint64) []float64 { return Samples(d, n, seed) })
	vAnti := variance(func(seed uint64) []float64 { return AntitheticSamples(d, n, seed) })
	if !(vAnti < vPlain) {
		t.Errorf("antithetic variance %g not below plain %g", vAnti, vPlain)
	}
	// The antithetic estimator stays unbiased: its grand mean matches
	// the analytic value.
	want, err := core.ExpectedCost(m, d, mk())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for k := 0; k < reps; k++ {
		est, err := CostOnSamples(m, mk(), AntitheticSamples(d, n, uint64(k)), 1)
		if err != nil {
			t.Fatal(err)
		}
		sum += est.Mean
	}
	if grand := sum / reps; math.Abs(grand-want) > 0.02*want {
		t.Errorf("antithetic grand mean %g vs analytic %g", grand, want)
	}
}

func TestAntitheticSamplesShape(t *testing.T) {
	d := dist.MustExponential(1)
	if got := AntitheticSamples(d, 0, 1); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	odd := AntitheticSamples(d, 7, 1)
	if len(odd) != 7 {
		t.Errorf("odd n gave %d samples", len(odd))
	}
	// Pairs map to quantiles u and 1-u: their CDF values sum to 1.
	pairs := AntitheticSamples(d, 10, 3)
	for i := 0; i+1 < len(pairs); i += 2 {
		if s := d.CDF(pairs[i]) + d.CDF(pairs[i+1]); math.Abs(s-1) > 1e-9 {
			t.Errorf("pair %d CDFs sum to %g", i/2, s)
		}
	}
}
