package simulate

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

var workloadModels = []core.CostModel{
	core.ReservationOnly,
	{Alpha: 0.95, Beta: 1, Gamma: 1.05},
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// TestWorkloadMatchesCostOnSamples is the equivalence property behind
// the fast path: on every paper distribution, for several seeds, first
// reservations and both cost models, the prefix-sum scorer must
// reproduce the per-sample Eq.-(13) average of CostOnSamples to within
// 1e-12 relative (the two regroup the same products, so the observed
// agreement is ~1e-14).
func TestWorkloadMatchesCostOnSamples(t *testing.T) {
	const n = 400
	for _, m := range workloadModels {
		for _, d := range dist.Table1() {
			lo, _ := d.Support()
			hi := core.BoundFirstReservation(m, d)
			for _, seed := range []uint64{1, 7, 42} {
				samples := Samples(d, n, seed)
				wl := NewWorkload(samples)
				if wl.N() != n {
					t.Fatalf("%s: N = %d, want %d", d.Name(), wl.N(), n)
				}
				for _, frac := range []float64{0.05, 0.3, 0.6, 0.95} {
					t1 := lo + (hi-lo)*frac
					s := core.SequenceFromFirstTail(m, d, t1, core.DefaultTailEps)

					ref, errRef := CostOnSamples(m, s, samples, 1)
					got, errGot := wl.CostSequence(m, s)
					if (errRef == nil) != (errGot == nil) {
						t.Fatalf("%s seed=%d t1=%g: CostOnSamples err %v, Workload err %v",
							d.Name(), seed, t1, errRef, errGot)
					}
					if errRef != nil {
						continue
					}
					if rd := relDiff(ref.Mean, got); rd > 1e-12 {
						t.Errorf("%s %v seed=%d t1=%g: mean %.17g vs %.17g (rel %.3g)",
							d.Name(), m, seed, t1, ref.Mean, got, rd)
					}

					// The recurrence cursor runs the same attempt loop, so
					// its total is bitwise identical to the sequence path.
					cur := core.NewRecurrenceCursor(m, d, t1, core.DefaultTailEps)
					viaCur, err := wl.Cost(m, &cur)
					if err != nil || viaCur != got {
						t.Errorf("%s seed=%d t1=%g: cursor path (%.17g, %v) != sequence path %.17g",
							d.Name(), seed, t1, viaCur, err, got)
					}

					sc := s.Cursor()
					est, err := wl.Estimate(m, &sc)
					if err != nil {
						t.Fatalf("%s seed=%d t1=%g: Estimate: %v", d.Name(), seed, t1, err)
					}
					if rd := relDiff(ref.Mean, est.Mean); rd > 1e-12 {
						t.Errorf("%s seed=%d t1=%g: Estimate mean rel diff %.3g", d.Name(), seed, t1, rd)
					}
					// The variance expands (b + β·X)² instead of summing
					// per-sample squares, and both sides cancel sum2/n
					// against mean² — so compare on the mean's scale, where
					// the cancellation noise lives. (In degenerate
					// zero-variance cases the closed form is exactly 0
					// while the per-sample sum keeps ~1e-14·mean of noise.)
					// The √ in StdErr turns ~1e-14 variance cancellation
					// into ~1e-7·mean of slack near zero variance.
					if diff := math.Abs(ref.StdErr - est.StdErr); diff > 1e-7*math.Max(1, math.Abs(ref.Mean)) {
						t.Errorf("%s %v seed=%d t1=%g: StdErr %.17g vs %.17g (diff %.3g)",
							d.Name(), m, seed, t1, ref.StdErr, est.StdErr, diff)
					}
					if est.N != ref.N || est.MaxAttempts != ref.MaxAttempts {
						t.Errorf("%s seed=%d t1=%g: (N, MaxAttempts) = (%d, %d), want (%d, %d)",
							d.Name(), seed, t1, est.N, est.MaxAttempts, ref.N, ref.MaxAttempts)
					}
				}
			}
		}
	}
}

// TestWorkloadUncovered: a finite sequence ending below the largest
// sample must fail with core.ErrUncovered on both paths.
func TestWorkloadUncovered(t *testing.T) {
	m := core.ReservationOnly
	samples := Samples(dist.MustLogNormal(3, 0.5), 100, 42)
	maxS := 0.0
	for _, x := range samples {
		maxS = math.Max(maxS, x)
	}
	s, err := core.NewExplicitSequence(maxS/4, maxS/2)
	if err != nil {
		t.Fatal(err)
	}
	wl := NewWorkload(samples)
	if _, err := CostOnSamples(m, s, samples, 1); !errors.Is(err, core.ErrUncovered) {
		t.Errorf("CostOnSamples err = %v, want ErrUncovered", err)
	}
	if _, err := wl.CostSequence(m, s); !errors.Is(err, core.ErrUncovered) {
		t.Errorf("Workload.CostSequence err = %v, want ErrUncovered", err)
	}
	sc := s.Cursor()
	if _, err := wl.Estimate(m, &sc); !errors.Is(err, core.ErrUncovered) {
		t.Errorf("Workload.Estimate err = %v, want ErrUncovered", err)
	}
}

// TestWorkloadSingleAttempt: a first reservation at or above the
// largest sample covers every run in one attempt, and the mean reduces
// to the closed form α·t1 + γ + β·mean(X).
func TestWorkloadSingleAttempt(t *testing.T) {
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1}
	samples := Samples(dist.MustWeibull(10, 2), 250, 9)
	maxS, sum := 0.0, 0.0
	for _, x := range samples {
		maxS = math.Max(maxS, x)
		sum += x
	}
	t1 := maxS + 1
	s, err := core.NewExplicitSequence(t1)
	if err != nil {
		t.Fatal(err)
	}
	wl := NewWorkload(samples)
	want := m.Alpha*t1 + m.Gamma + m.Beta*sum/float64(len(samples))

	got, err := wl.CostSequence(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if rd := relDiff(want, got); rd > 1e-12 {
		t.Errorf("mean = %.17g, want %.17g (rel %.3g)", got, want, rd)
	}
	sc := s.Cursor()
	est, err := wl.Estimate(m, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if est.MaxAttempts != 1 {
		t.Errorf("MaxAttempts = %d, want 1", est.MaxAttempts)
	}
	ref, err := CostOnSamples(m, s, samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rd := relDiff(ref.Mean, got); rd > 1e-12 {
		t.Errorf("workload %.17g vs CostOnSamples %.17g", got, ref.Mean)
	}
}

// TestWorkloadEmpty: scoring an empty workload is an error, not a
// silent zero.
func TestWorkloadEmpty(t *testing.T) {
	wl := NewWorkload(nil)
	s, err := core.NewExplicitSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.CostSequence(core.ReservationOnly, s); err == nil {
		t.Error("CostSequence on empty workload: want error")
	}
	sc := s.Cursor()
	if _, err := wl.Estimate(core.ReservationOnly, &sc); err == nil {
		t.Error("Estimate on empty workload: want error")
	}
}
