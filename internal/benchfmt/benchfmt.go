// Package benchfmt defines the BENCH.json schema shared by the
// benchmark driver (cmd/bench) and the load generator (cmd/loadgen):
// parsing `go test -bench` output into Report entries, merging entries
// from several producers into one file, and the regression comparison
// that gates perf claims. Keeping one definition here means a loadgen
// latency entry and a micro-benchmark entry are gated by the exact
// same machinery.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's averaged measurements.
type Result struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped
	// (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar).
	Name string `json:"name"`
	// Runs is the number of -count repetitions averaged together.
	Runs int `json:"runs"`
	// Iterations is the mean b.N across runs (for loadgen entries, the
	// request count backing the measurement).
	Iterations float64 `json:"iterations"`
	// NsPerOp is the mean ns/op — the value the -compare gate tracks.
	// Loadgen entries reuse it for latency quantiles (ns) and ratio
	// entries (percentage points), so they regress under the same rule.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the mean B/op (0 unless -benchmem reported it).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is the mean allocs/op (0 unless -benchmem reported it).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the BENCH.json schema.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// ParseGoBench turns `go test -bench` text into a Report. Repeated
// lines for one benchmark (from -count > 1) are averaged; benchmarks
// are sorted by name.
func ParseGoBench(text string) (Report, error) {
	var report Report
	type acc struct {
		runs                       int
		iters, ns, bytesOp, allocs float64
	}
	sums := make(map[string]*acc)
	var order []string

	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			report.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			report.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name iterations value unit [value unit ...]
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := StripProcsSuffix(fields[0])
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return report, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		a := sums[name]
		if a == nil {
			a = &acc{}
			sums[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return report, fmt.Errorf("bad value in %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.bytesOp += v
			case "allocs/op":
				a.allocs += v
			}
		}
	}

	sort.Strings(order)
	for _, name := range order {
		a := sums[name]
		n := float64(a.runs)
		report.Benchmarks = append(report.Benchmarks, Result{
			Name:        name,
			Runs:        a.runs,
			Iterations:  a.iters / n,
			NsPerOp:     a.ns / n,
			BytesPerOp:  a.bytesOp / n,
			AllocsPerOp: a.allocs / n,
		})
	}
	return report, nil
}

// Compare diffs current ns/op and allocs/op against the baseline for
// every benchmark present in both reports, in baseline order. It
// returns one human-readable line per shared benchmark plus notes for
// benchmarks only one side has, and whether any shared benchmark
// regressed: ns/op above baseline × tolerance, or allocs/op measurably
// above baseline. Allocation counts are deterministic, so they get no
// 25% slack — growth past rounding noise means a scoring path gained
// an allocation, which is exactly what the static gate (cmd/lint
// hotalloc/ifaceescape and the -escapes baseline) guards; an ALLOC
// REGRESSION here that the static gate missed means a hot-path
// annotation is missing. Faster-than-baseline results never fail: the
// gate exists to catch lost fast paths, not to freeze improvements.
func Compare(baseline, current Report, tolerance float64) (lines []string, regressed bool) {
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	shared := make(map[string]bool, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		c, ok := cur[b.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%s: in baseline only, skipped", b.Name))
			continue
		}
		shared[b.Name] = true
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		if b.NsPerOp > 0 && ratio > tolerance {
			verdict = "REGRESSION"
			regressed = true
		}
		allocs := ""
		if b.AllocsPerOp > 0 || c.AllocsPerOp > 0 {
			allocs = fmt.Sprintf(", %.0f -> %.0f allocs/op", b.AllocsPerOp, c.AllocsPerOp)
			// +0.5 absorbs averaging across -count>1 runs; any real new
			// allocation shifts the count by at least 1.
			if c.AllocsPerOp > b.AllocsPerOp+0.5 {
				verdict = "ALLOC REGRESSION (check go run ./cmd/lint -escapes ./...)"
				regressed = true
			}
		}
		lines = append(lines, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)%s %s",
			b.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100, allocs, verdict))
	}
	for _, c := range current.Benchmarks {
		if !shared[c.Name] {
			lines = append(lines, fmt.Sprintf("%s: not in baseline, skipped", c.Name))
		}
	}
	return lines, regressed
}

// Merge upserts add into dst by benchmark name and re-sorts, so a
// loadgen run can refresh its entries in a BENCH.json produced by
// cmd/bench without disturbing the micro-benchmark entries (and vice
// versa).
func Merge(dst Report, add []Result) Report {
	byName := make(map[string]int, len(dst.Benchmarks))
	for i, r := range dst.Benchmarks {
		byName[r.Name] = i
	}
	for _, r := range add {
		if i, ok := byName[r.Name]; ok {
			dst.Benchmarks[i] = r
			continue
		}
		byName[r.Name] = len(dst.Benchmarks)
		dst.Benchmarks = append(dst.Benchmarks, r)
	}
	sort.Slice(dst.Benchmarks, func(i, j int) bool {
		return dst.Benchmarks[i].Name < dst.Benchmarks[j].Name
	})
	return dst
}

// ReadFile loads a BENCH.json report.
func ReadFile(path string) (Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(blob, &r); err != nil {
		return Report{}, fmt.Errorf("parsing %s: %v", path, err)
	}
	return r, nil
}

// WriteFile stores the report as indented JSON with a trailing
// newline, the committed-BENCH.json format.
func (r Report) WriteFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// StripProcsSuffix removes the trailing -GOMAXPROCS tag go test
// appends to benchmark names (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar),
// so recorded names do not depend on the machine's core count.
func StripProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
