package benchfmt

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestMergeUpsertsAndSorts(t *testing.T) {
	base := Report{Benchmarks: []Result{
		{Name: "BenchmarkB", NsPerOp: 2},
		{Name: "BenchmarkA", NsPerOp: 1},
	}}
	merged := Merge(base, []Result{
		{Name: "BenchmarkB", NsPerOp: 20},               // update in place
		{Name: "LoadgenZipf/p99", NsPerOp: 5, Runs: 1},  // new entry
		{Name: "LoadgenZipf/p50", NsPerOp: 3, Runs: 1},  // new entry, sorts before p99
	})
	want := []Result{
		{Name: "BenchmarkA", NsPerOp: 1},
		{Name: "BenchmarkB", NsPerOp: 20},
		{Name: "LoadgenZipf/p50", NsPerOp: 3, Runs: 1},
		{Name: "LoadgenZipf/p99", NsPerOp: 5, Runs: 1},
	}
	if !reflect.DeepEqual(merged.Benchmarks, want) {
		t.Errorf("merged = %+v, want %+v", merged.Benchmarks, want)
	}
}

func TestMergeEmptySides(t *testing.T) {
	if got := Merge(Report{}, nil); len(got.Benchmarks) != 0 {
		t.Errorf("empty merge = %+v", got.Benchmarks)
	}
	got := Merge(Report{}, []Result{{Name: "X", NsPerOp: 1}})
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "X" {
		t.Errorf("merge into empty = %+v", got.Benchmarks)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := Report{
		GoOS: "linux", GoArch: "amd64", Pkg: "repro",
		Benchmarks: []Result{
			{Name: "BenchmarkA", Runs: 2, Iterations: 100, NsPerOp: 12.5, BytesPerOp: 8, AllocsPerOp: 1},
		},
	}
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %+v -> %+v", in, out)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("malformed file: want error")
	}
}

// Parse/Compare/StripProcsSuffix behavior is pinned in detail by
// cmd/bench's tests, which alias these functions; the merge/IO layer
// is the part only this package owns.
