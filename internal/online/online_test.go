package online

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
)

func TestLearnerValidation(t *testing.T) {
	prior := dist.MustExponential(1)
	if _, err := NewLearner(core.CostModel{}, prior, Config{}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := NewLearner(core.ReservationOnly, nil, Config{}); err == nil {
		t.Error("nil prior accepted")
	}
	l, err := NewLearner(core.ReservationOnly, prior, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Observe(-1); err == nil {
		t.Error("negative duration accepted")
	}
	if err := l.Observe(math.Inf(1)); err == nil {
		t.Error("infinite duration accepted")
	}
}

func TestLearnerUsesPriorThenObservations(t *testing.T) {
	prior := dist.MustExponential(1)
	l, err := NewLearner(core.ReservationOnly, prior, Config{MinObservations: 3})
	if err != nil {
		t.Fatal(err)
	}
	est, err := l.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est != dist.Distribution(prior) {
		t.Error("estimate before observations is not the prior")
	}
	for _, d := range []float64{2, 2.5, 3} {
		if err := l.Observe(d); err != nil {
			t.Fatal(err)
		}
	}
	est, err = l.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := est.(*dist.Discrete); !ok {
		t.Errorf("estimate after observations is %T, want empirical", est)
	}
	if math.Abs(est.Mean()-2.5) > 1e-12 {
		t.Errorf("empirical mean = %g, want 2.5", est.Mean())
	}
}

func TestNextSequencePlanCaching(t *testing.T) {
	prior := dist.MustLogNormal(0, 0.5)
	l, err := NewLearner(core.ReservationOnly, prior, Config{DiscN: 50})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := l.NextSequence()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := l.NextSequence()
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := s1.Prefix(3)
	v2, _ := s2.Prefix(3)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("plan changed without new observations")
		}
	}
	if err := l.Observe(1); err != nil {
		t.Fatal(err)
	}
	if l.Observations() != 1 {
		t.Errorf("observations = %d", l.Observations())
	}
}

func TestPlanCoversBeyondObservedMax(t *testing.T) {
	// The empirical law ends at the largest observation, but the plan
	// must keep covering longer jobs (doubling tail).
	prior := dist.MustExponential(1)
	l, err := NewLearner(core.ReservationOnly, prior, Config{MinObservations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{1, 2, 3} {
		if err := l.Observe(d); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := l.NextSequence()
	if err != nil {
		t.Fatal(err)
	}
	// A job far beyond the observed max is still coverable.
	cost, _, err := core.ReservationOnly.RunCost(seq, 50)
	if err != nil {
		t.Fatalf("job beyond observed max uncovered: %v", err)
	}
	if math.IsInf(cost, 1) {
		t.Error("infinite cost beyond observed max")
	}
}

// TestLearnerConvergesToOracle: with enough observations, the learner's
// tail efficiency approaches the clairvoyant planner's.
func TestLearnerConvergesToOracle(t *testing.T) {
	truth := dist.MustLogNormal(1, 0.5)
	badPrior := dist.MustExponential(0.05) // mean 20: far too pessimistic
	for _, est := range []Estimator{Empirical, SmoothedLogNormal} {
		l, err := NewLearner(core.ReservationOnly, badPrior, Config{Estimator: est, DiscN: 120})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(l, truth, 400, 7)
		if err != nil {
			t.Fatalf("%v: %v", est, err)
		}
		if len(ev.Runs) != 400 {
			t.Fatalf("%v: %d runs", est, len(ev.Runs))
		}
		if ev.TailRatio > 1.12 {
			t.Errorf("%v: tail ratio %g, want ≤1.12 (converged)", est, ev.TailRatio)
		}
		if ev.TotalCost < ev.OracleTotal {
			// Possible on a lucky sample path, but with a bad prior the
			// learner should pay some learning cost.
			t.Logf("%v: learner beat oracle overall (%g vs %g)", est, ev.TotalCost, ev.OracleTotal)
		}
		if ev.Regret != ev.TotalCost-ev.OracleTotal {
			t.Errorf("%v: regret bookkeeping wrong", est)
		}
	}
}

// TestSmoothedBeatsEmpiricalEarly: when the truth is LogNormal, the
// parametric estimator converges at least as fast over the early jobs.
func TestSmoothedBeatsEmpiricalEarly(t *testing.T) {
	truth := dist.MustLogNormal(1, 0.5)
	prior := dist.MustExponential(0.2)
	costOver := func(est Estimator) float64 {
		l, err := NewLearner(core.ReservationOnly, prior, Config{Estimator: est, MinObservations: 3, DiscN: 100})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Evaluate(l, truth, 60, 5)
		if err != nil {
			t.Fatal(err)
		}
		return ev.TotalCost
	}
	emp := costOver(Empirical)
	smooth := costOver(SmoothedLogNormal)
	// Allow a modest margin: the claim is "not worse", not dominance.
	if smooth > emp*1.1 {
		t.Errorf("smoothed (%g) much worse than empirical (%g) on lognormal truth", smooth, emp)
	}
}

func TestEvaluateValidation(t *testing.T) {
	prior := dist.MustExponential(1)
	l, err := NewLearner(core.ReservationOnly, prior, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(l, dist.MustExponential(1), 0, 1); err == nil {
		t.Error("zero jobs accepted")
	}
}

func TestEstimatorString(t *testing.T) {
	if Empirical.String() != "empirical" || SmoothedLogNormal.String() != "smoothed-lognormal" {
		t.Error("estimator names wrong")
	}
}

// TestWindowedLearnerTracksDrift: when the job distribution shifts
// mid-stream, a windowed learner adapts while the unwindowed one drags
// stale observations along.
func TestWindowedLearnerTracksDrift(t *testing.T) {
	m := core.ReservationOnly
	before := dist.MustLogNormal(0, 0.4)  // mean ≈ 1.08
	after := dist.MustLogNormal(2.5, 0.4) // mean ≈ 13.2: 12× longer jobs

	run := func(window int) (tailCost float64) {
		l, err := NewLearner(m, before, Config{Window: window, DiscN: 100})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(7)
		// Phase 1: 150 jobs from the old law.
		for i := 0; i < 150; i++ {
			stepJob(t, l, dist.Sample(before, r))
		}
		// Phase 2: 150 jobs from the new law; measure the last 50.
		var cost float64
		for i := 0; i < 150; i++ {
			c := stepJob(t, l, dist.Sample(after, r))
			if i >= 100 {
				cost += c
			}
		}
		return cost
	}

	unwindowed := run(0)
	windowed := run(40)
	if !(windowed < unwindowed) {
		t.Errorf("windowed learner (%g) not better than unwindowed (%g) after drift", windowed, unwindowed)
	}
}

// TestWindowBoundsObservations: the window caps the retained history.
func TestWindowBoundsObservations(t *testing.T) {
	l, err := NewLearner(core.ReservationOnly, dist.MustExponential(1), Config{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		if err := l.Observe(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Observations() != 10 {
		t.Errorf("observations = %d, want 10", l.Observations())
	}
	// The retained estimate reflects the recent values (16..25).
	est, err := l.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean() < 20 {
		t.Errorf("windowed mean = %g, want >= 20", est.Mean())
	}
	if _, err := NewLearner(core.ReservationOnly, dist.MustExponential(1), Config{Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
}

// stepJob plans, runs one job of the given duration, observes it, and
// returns the cost paid.
func stepJob(t *testing.T, l *Learner, duration float64) float64 {
	t.Helper()
	seq, err := l.NextSequence()
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := l.model.RunCost(seq, duration)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Observe(duration); err != nil {
		t.Fatal(err)
	}
	return c
}
