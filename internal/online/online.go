// Package online adapts the paper's framework to streams of jobs whose
// distribution is NOT known in advance — the situation a practical
// cloud-cost tool faces. The paper assumes the execution-time law is
// given (fitted offline from historical traces, §5.3); here a Learner
// starts from a prior guess, observes each completed job's exact
// duration (reservations reveal it — the job runs to completion inside
// the final slot), refits its estimate, and replans with the optimal
// dynamic program.
//
// Two estimators are provided: the raw empirical distribution (fully
// nonparametric; the DP of Theorem 5 is *exactly* optimal for it) and a
// smoothed LogNormal fit (parametric, converging faster when the truth
// is close to LogNormal, as the paper's neuroscience traces are).
// Evaluate measures the cumulative-cost regret of a learner against the
// clairvoyant planner that knows the true law from the start.
package online

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/rng"
)

// Estimator selects how the learner turns observations into a
// distribution estimate.
type Estimator int

const (
	// Empirical uses the raw empirical law of the observations.
	Empirical Estimator = iota
	// SmoothedLogNormal fits a LogNormal law to the observations.
	SmoothedLogNormal
)

// String implements fmt.Stringer.
func (e Estimator) String() string {
	if e == SmoothedLogNormal {
		return "smoothed-lognormal"
	}
	return "empirical"
}

// Learner plans reservations for a stream of jobs, refitting after each
// observation.
type Learner struct {
	model     core.CostModel
	prior     dist.Distribution
	estimator Estimator
	minObs    int
	discN     int
	window    int

	obs       []float64
	plan      *core.Sequence
	planDirty bool
}

// Config tunes a Learner.
type Config struct {
	// Estimator selects Empirical (default) or SmoothedLogNormal.
	Estimator Estimator
	// MinObservations is how many completed jobs are required before
	// the learner trusts its own estimate over the prior (default 5).
	MinObservations int
	// DiscN is the discretization size used for planning (default 200).
	DiscN int
	// Window, when positive, keeps only the most recent Window
	// observations — a sliding window that tracks non-stationary job
	// streams (e.g. an application whose inputs drift over time). Zero
	// keeps everything.
	Window int
}

// NewLearner builds a learner for the given cost model and prior guess
// of the execution-time law. The prior may be crude — it only steers
// the first few jobs.
func NewLearner(m core.CostModel, prior dist.Distribution, cfg Config) (*Learner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if prior == nil {
		return nil, errors.New("online: a prior distribution is required")
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 5
	}
	if cfg.DiscN <= 0 {
		cfg.DiscN = 200
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("online: window must be nonnegative, got %d", cfg.Window)
	}
	return &Learner{
		model:     m,
		prior:     prior,
		estimator: cfg.Estimator,
		minObs:    cfg.MinObservations,
		discN:     cfg.DiscN,
		window:    cfg.Window,
		planDirty: true,
	}, nil
}

// Observations returns how many jobs the learner has seen.
func (l *Learner) Observations() int { return len(l.obs) }

// Estimate returns the learner's current distribution estimate.
func (l *Learner) Estimate() (dist.Distribution, error) {
	if len(l.obs) < l.minObs {
		return l.prior, nil
	}
	switch l.estimator {
	case SmoothedLogNormal:
		d, err := dist.FitLogNormal(l.obs)
		if err != nil {
			// Degenerate observations (all equal): fall back to the
			// empirical law.
			return dist.NewEmpirical(l.obs)
		}
		return d, nil
	default:
		return dist.NewEmpirical(l.obs)
	}
}

// NextSequence returns the reservation sequence to use for the next
// job, replanning if new observations arrived.
func (l *Learner) NextSequence() (*core.Sequence, error) {
	if !l.planDirty && l.plan != nil {
		return l.plan.Clone(), nil
	}
	est, err := l.Estimate()
	if err != nil {
		return nil, err
	}
	seq, err := planFor(l.model, est, l.discN)
	if err != nil {
		return nil, fmt.Errorf("online: planning failed: %w", err)
	}
	l.plan = seq
	l.planDirty = false
	return seq.Clone(), nil
}

// Observe records a completed job's exact duration.
func (l *Learner) Observe(duration float64) error {
	if !(duration > 0) || math.IsInf(duration, 0) {
		return fmt.Errorf("online: observed duration must be positive and finite, got %g", duration)
	}
	l.obs = append(l.obs, duration)
	if l.window > 0 && len(l.obs) > l.window {
		l.obs = l.obs[len(l.obs)-l.window:]
	}
	l.planDirty = true
	return nil
}

// planFor computes the optimal DP plan for a distribution estimate and
// lifts it with a doubling tail so that durations beyond the estimate's
// largest value (which the empirical law cannot foresee) stay covered.
func planFor(m core.CostModel, d dist.Distribution, discN int) (*core.Sequence, error) {
	var dd *dist.Discrete
	switch t := d.(type) {
	case *dist.Discrete:
		dd = t
	default:
		var err error
		dd, err = discretize.Discretize(d, discN, 1e-6, discretize.EqualProbability)
		if err != nil {
			return nil, err
		}
	}
	res, err := dp.Solve(dd, m)
	if err != nil {
		return nil, err
	}
	vals := res.Sequence
	k := len(vals)
	return core.NewSequence(func(i int, prefix []float64) (float64, bool) {
		if i < k {
			return vals[i], true
		}
		return 2 * prefix[i-1], true
	}), nil
}

// RunResult is the outcome of one learner step in Evaluate.
type RunResult struct {
	// Duration is the job's true execution time.
	Duration float64
	// Cost is what the learner's plan paid.
	Cost float64
	// OracleCost is what the clairvoyant plan paid on the same job.
	OracleCost float64
}

// Evaluation summarizes a learner run.
type Evaluation struct {
	// Runs is the per-job log.
	Runs []RunResult
	// TotalCost and OracleTotal accumulate the per-job costs.
	TotalCost, OracleTotal float64
	// Regret = TotalCost - OracleTotal.
	Regret float64
	// TailRatio is mean(learner)/mean(oracle) over the final quarter of
	// the stream — the converged efficiency.
	TailRatio float64
}

// Evaluate runs a learner over n jobs sampled from the true law and
// compares it to the clairvoyant planner that knows the law upfront.
func Evaluate(l *Learner, truth dist.Distribution, n int, seed uint64) (Evaluation, error) {
	if n <= 0 {
		return Evaluation{}, errors.New("online: need at least one job")
	}
	oracle, err := planFor(l.model, truth, l.discN)
	if err != nil {
		return Evaluation{}, err
	}
	r := rng.New(seed)
	ev := Evaluation{Runs: make([]RunResult, 0, n)}
	for i := 0; i < n; i++ {
		t := dist.Sample(truth, r)
		seq, err := l.NextSequence()
		if err != nil {
			return Evaluation{}, err
		}
		cost, _, err := l.model.RunCost(seq, t)
		if err != nil {
			return Evaluation{}, fmt.Errorf("online: job %d (t=%g): %w", i, t, err)
		}
		oCost, _, err := l.model.RunCost(oracle.Clone(), t)
		if err != nil {
			return Evaluation{}, fmt.Errorf("online: oracle job %d: %w", i, err)
		}
		ev.Runs = append(ev.Runs, RunResult{Duration: t, Cost: cost, OracleCost: oCost})
		ev.TotalCost += cost
		ev.OracleTotal += oCost
		if err := l.Observe(t); err != nil {
			return Evaluation{}, err
		}
	}
	ev.Regret = ev.TotalCost - ev.OracleTotal
	tail := ev.Runs[len(ev.Runs)*3/4:]
	var lc, oc float64
	for _, rr := range tail {
		lc += rr.Cost
		oc += rr.OracleCost
	}
	if oc > 0 {
		ev.TailRatio = lc / oc
	}
	return ev, nil
}
