package online_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/online"
)

// Example shows the adaptive loop: plan → run → observe → replan. After
// a handful of observations the learner abandons its wild prior.
func Example() {
	prior := dist.MustExponential(0.01) // "jobs take ~100 hours"
	l, _ := online.NewLearner(core.ReservationOnly, prior, online.Config{MinObservations: 3, DiscN: 50})

	// Three jobs complete in about two hours each.
	for _, took := range []float64{1.9, 2.1, 2.0} {
		_ = l.Observe(took)
	}
	seq, _ := l.NextSequence()
	first, _ := seq.First()
	// The optimal plan covers all observed durations in one slot of 2.1
	// hours — no more 100-hour reservations.
	fmt.Printf("first reservation after learning: %.1f h\n", first)
	// Output:
	// first reservation after learning: 2.1 h
}
