package strategy

import (
	"math"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/dp"
)

// Discretized is the §4.2 strategy: truncate and discretize the
// continuous distribution, solve the discrete problem optimally by
// dynamic programming (Theorem 5), and lift the resulting sequence back
// to the continuous problem. For unbounded supports the lifted sequence
// is extended past the truncation point by doubling, because a
// reservation sequence must tend to infinity (§2.2); the mass out there
// is at most ε.
type Discretized struct {
	// Scheme selects EQUAL-PROBABILITY or EQUAL-TIME (§4.2.1).
	Scheme discretize.Scheme
	// N is the number of discretization samples (paper: 1000). Zero
	// selects 1000.
	N int
	// Epsilon is the truncation quantile (paper: 1e-7). Zero selects
	// 1e-7.
	Epsilon float64
	// MaxAttempts, when positive, caps the number of reservations the
	// plan may use (dp.SolveMaxAttempts); zero means unconstrained.
	MaxAttempts int
	// DP selects the DP's argmin engine (dp.Config). The zero value is
	// the gated sub-quadratic fast path with scan fallback — every
	// setting returns bit-identical plans, so this is a performance and
	// debugging knob (dp.AlgoScan to force the reference scan,
	// Verify for per-row cross-checking), not a semantic one.
	DP dp.Config
}

// Name implements Strategy.
func (s Discretized) Name() string {
	if s.Scheme == discretize.EqualTime {
		return "Equal-time"
	}
	return "Equal-probability"
}

// Discretize truncates and discretizes d with this strategy's
// parameters (N, Epsilon, Scheme). Exposed so callers evaluating many
// strategies or requests on one distribution can compute the discrete
// law once and feed it back through SequenceOn.
func (s Discretized) Discretize(d dist.Distribution) (*dist.Discrete, error) {
	n := s.N
	if n <= 0 {
		n = discretize.DefaultSamples
	}
	return discretize.Discretize(d, n, s.Epsilon, s.Scheme)
}

// Sequence implements Strategy.
func (s Discretized) Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error) {
	dd, err := s.Discretize(d)
	if err != nil {
		return nil, err
	}
	return s.SequenceOn(m, d, dd)
}

// SequenceOn solves the discrete problem on a precomputed
// discretization dd of d (as returned by Discretize) and lifts the
// solution back to the continuous law. It is Sequence with the
// discretization step hoisted out.
func (s Discretized) SequenceOn(m core.CostModel, d dist.Distribution, dd *dist.Discrete) (*core.Sequence, error) {
	var res dp.Result
	var err error
	if s.MaxAttempts > 0 {
		res, err = dp.SolveMaxAttemptsWith(dd, m, s.MaxAttempts, s.DP)
	} else {
		res, err = dp.SolveWith(dd, m, s.DP)
	}
	if err != nil {
		return nil, err
	}
	vals := res.Sequence
	_, hi := d.Support()
	if !math.IsInf(hi, 1) {
		// Bounded support: make sure the lifted sequence covers b (the
		// discretization's top point can sit marginally below it only
		// through floating-point rounding of a + n·(b-a)/n).
		if last := vals[len(vals)-1]; last < hi {
			vals = append(vals, hi)
		}
		return core.NewExplicitSequence(vals...)
	}
	// Unbounded support: extend by doubling beyond the truncation point.
	k := len(vals)
	return core.NewSequence(func(i int, prefix []float64) (float64, bool) {
		if i < k {
			return vals[i], true
		}
		return 2 * prefix[i-1], true
	}), nil
}

// DPResult exposes the underlying discrete solution (for tests and the
// experiment harness).
func (s Discretized) DPResult(m core.CostModel, d dist.Distribution) (dp.Result, error) {
	dd, err := s.Discretize(d)
	if err != nil {
		return dp.Result{}, err
	}
	return dp.SolveWith(dd, m, s.DP)
}
