package strategy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/optimize"
	"repro/internal/parallel"
	"repro/internal/simulate"
)

// EvalMode selects how a candidate sequence is scored.
type EvalMode int

const (
	// EvalMonteCarlo scores candidates with the paper's Eq.-(13)
	// protocol: the average cost over N sampled execution times. All
	// candidates share one sample set drawn from the configured seed.
	EvalMonteCarlo EvalMode = iota
	// EvalAnalytic scores candidates with the deterministic closed form
	// of Eq. (4) — free of Monte-Carlo noise and of the selection bias
	// that a minimum over thousands of noisy estimates incurs.
	EvalAnalytic
)

// String implements fmt.Stringer.
func (e EvalMode) String() string {
	if e == EvalAnalytic {
		return "analytic"
	}
	return "monte-carlo"
}

// BruteForce is the BRUTE-FORCE procedure of §4.1: try M values of the
// first reservation t1 equally spaced on [a, min(b, A1)], expand each
// candidate with the Eq.-(11) recurrence, discard candidates whose
// sequence is not strictly increasing, score the rest, and keep the
// best.
type BruteForce struct {
	// M is the number of grid points (paper: 5000). Zero selects 5000.
	M int
	// N is the Monte-Carlo sample count (paper: 1000). Zero selects
	// 1000. Ignored under EvalAnalytic.
	N int
	// Mode selects Monte-Carlo (paper protocol, default) or analytic
	// scoring.
	Mode EvalMode
	// Seed drives the Monte-Carlo sample set.
	Seed uint64
	// TailEps is the survival level below which a recurrence breakdown
	// is tolerated (see core.SequenceFromFirstTail). Zero selects
	// core.DefaultTailEps; negative forces the strict rule.
	TailEps float64
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
	// FullCosts disables the analytic budget prune so every grid
	// point's exact cost is recorded in Candidates — required by
	// Fig.-3-style analyses that plot the whole cost curve. The default
	// (false) abandons a candidate as soon as its Eq.-(4) partial sum
	// exceeds the worker block's best cost, which never changes the
	// winner (see core.CostCursor.CostBudget) but leaves pruned
	// Candidates entries holding only a lower bound. Ignored under
	// Monte-Carlo scoring.
	FullCosts bool
	// Batched precomputes a core.SurvivalTable over the whole grid in
	// one parallel pass and scores candidates against it, so the
	// survival/density of each t1 is evaluated exactly once instead of
	// once per candidate expansion. Results are bit-identical with or
	// without it (the table stores the same pure function values the
	// cursors would compute); it pays off when the first-step special
	// functions are a real fraction of scoring — FullCosts analytic
	// scans, and laws whose Survival/PDF invert incomplete
	// gamma/beta functions — and is roughly neutral when the sample
	// sweep or the budget prune dominates (see
	// BenchmarkBatchedScoring).
	Batched bool
}

// Name implements Strategy.
func (BruteForce) Name() string { return "Brute-Force" }

// Candidate is one evaluated grid point of the brute-force search.
type Candidate struct {
	// T1 is the first reservation length.
	T1 float64
	// Cost is the estimated expected cost (NaN when invalid).
	Cost float64
	// Valid reports whether the Eq.-(11) expansion stayed strictly
	// increasing (within the tail tolerance).
	Valid bool
	// Pruned marks a candidate abandoned by the analytic early abort:
	// Cost then holds only the partial Eq.-(4) sum accumulated before
	// the abort — an admissible lower bound on the true cost, already
	// above the block's best — and Valid is false because the unscanned
	// tail of the recurrence was never checked. Which candidates get
	// pruned (and their partial values) depends on scan order and
	// worker count; only the winner is canonical. Set FullCosts to
	// record every exact cost instead.
	Pruned bool
}

// SearchResult is the full outcome of a brute-force scan.
type SearchResult struct {
	// Best is the winning candidate.
	Best Candidate
	// Sequence is the winning sequence.
	Sequence *core.Sequence
	// Candidates holds every grid point in scan order (for Fig. 3 /
	// Table 3 style analyses).
	Candidates []Candidate
}

func (b BruteForce) params() (m, n int, tailEps float64) {
	m, n, tailEps = b.M, b.N, b.TailEps
	if m <= 0 {
		m = 5000
	}
	if n <= 0 {
		n = simulate.DefaultSamples
	}
	if tailEps == 0 {
		tailEps = core.DefaultTailEps
	} else if tailEps < 0 {
		tailEps = 0
	}
	return m, n, tailEps
}

// EvaluateT1 scores a single first-reservation candidate under the
// configured mode, returning the candidate record and its sequence.
// Monte-Carlo scoring builds a throwaway Workload from the samples;
// callers scoring many candidates on one sample set should build the
// Workload once and use EvaluateT1On instead.
func (b BruteForce) EvaluateT1(m core.CostModel, d dist.Distribution, t1 float64, samples []float64) (Candidate, *core.Sequence) {
	var wl *simulate.Workload
	if b.Mode != EvalAnalytic && samples != nil {
		wl = simulate.NewWorkload(samples)
	}
	return b.EvaluateT1On(m, d, t1, wl)
}

// EvaluateT1On scores a single candidate against a shared Workload
// (Monte-Carlo protocol) or, when wl is nil or the mode is analytic,
// with the deterministic Eq.-(4) closed form, streamed through a
// core.CostCursor (no Sequence is materialized unless the candidate is
// valid and its sequence is returned).
func (b BruteForce) EvaluateT1On(m core.CostModel, d dist.Distribution, t1 float64, wl *simulate.Workload) (Candidate, *core.Sequence) {
	_, _, tailEps := b.params()
	if b.Mode == EvalAnalytic || wl == nil {
		cur := core.NewCostCursor(m, d, tailEps)
		c := evalAnalytic(t1, math.Inf(1), &cur)
		if !c.Valid {
			return c, nil
		}
		return c, core.SequenceFromFirstTail(m, d, t1, tailEps)
	}
	cur := core.NewRecurrenceCursor(m, d, t1, tailEps)
	c := evalWorkload(m, t1, wl, &cur)
	if !c.Valid {
		return c, nil
	}
	return c, core.SequenceFromFirstTail(m, d, t1, tailEps)
}

// evalWorkload scores one candidate through the allocation-free
// recurrence cursor: no Sequence is built, no clone taken. The caller
// owns the cursor (already positioned at t1) and may reuse it across
// candidates via Reset.
//
//repro:hotpath
func evalWorkload(m core.CostModel, t1 float64, wl *simulate.Workload, cur *core.RecurrenceCursor) Candidate {
	cost, err := wl.Cost(m, cur)
	if err != nil || math.IsNaN(cost) || math.IsInf(cost, 1) {
		return Candidate{T1: t1, Cost: math.NaN()}
	}
	return Candidate{T1: t1, Cost: cost, Valid: true}
}

// evalAnalyticSeeded is evalAnalytic against a precomputed
// survival-lookup entry: sf1/f1 are the SurvivalTable's values for
// this grid point, standing in for the cursor's own first-step calls.
// Bit-identical to evalAnalytic (see core.CostCursor.CostBudgetSeeded).
//
//repro:hotpath
func evalAnalyticSeeded(t1, budget, sf1, f1 float64, cur *core.CostCursor) Candidate {
	cost, pruned, err := cur.CostBudgetSeeded(t1, budget, sf1, f1)
	if err != nil || math.IsNaN(cost) || math.IsInf(cost, 1) {
		return Candidate{T1: t1, Cost: math.NaN()}
	}
	if pruned {
		return Candidate{T1: t1, Cost: cost, Pruned: true}
	}
	return Candidate{T1: t1, Cost: cost, Valid: true}
}

// evalAnalytic scores one candidate through the fused Eq.-(4)/Eq.-(11)
// cost cursor, abandoning it once the partial sum exceeds budget. The
// caller owns the cursor and reuses it across candidates (it carries
// no per-candidate state).
//
//repro:hotpath
func evalAnalytic(t1, budget float64, cur *core.CostCursor) Candidate {
	cost, pruned, err := cur.CostBudget(t1, budget)
	if err != nil || math.IsNaN(cost) || math.IsInf(cost, 1) {
		return Candidate{T1: t1, Cost: math.NaN()}
	}
	if pruned {
		return Candidate{T1: t1, Cost: cost, Pruned: true}
	}
	return Candidate{T1: t1, Cost: cost, Valid: true}
}

// Search runs the full grid scan and returns every candidate along
// with the winner. In Monte-Carlo mode the (N, Seed) workload is drawn
// and precomputed once for the whole scan.
func (b BruteForce) Search(m core.CostModel, d dist.Distribution) (SearchResult, error) {
	return b.SearchOn(m, d, nil)
}

// SearchOn is Search scoring Monte-Carlo candidates against a shared
// precomputed Workload — the drivers that evaluate many strategies on
// one distribution build the workload once and pass it to every scan.
// A nil wl in Monte-Carlo mode draws the configured (N, Seed) workload;
// in analytic mode wl is ignored.
func (b BruteForce) SearchOn(m core.CostModel, d dist.Distribution, wl *simulate.Workload) (SearchResult, error) {
	if err := m.Validate(); err != nil {
		return SearchResult{}, err
	}
	gridM, n, tailEps := b.params()
	lo, _ := d.Support()
	hi := core.BoundFirstReservation(m, d)
	if !(hi > lo) {
		return SearchResult{}, fmt.Errorf("strategy: degenerate search interval [%g, %g]", lo, hi)
	}
	if b.Mode == EvalMonteCarlo {
		if wl == nil {
			wl = simulate.NewWorkloadFrom(d, n, b.Seed)
		}
	} else {
		wl = nil
	}

	workers := b.Workers
	if workers <= 0 || workers > gridM {
		workers = parallel.Workers(gridM)
	}
	// Batched scoring: one parallel pass fills the survival-lookup
	// table for the whole grid before any candidate is expanded.
	var tab *core.SurvivalTable
	if b.Batched {
		tab = core.NewSurvivalTable(d, lo, hi, gridM)
		parallel.ForEachBlock(gridM, workers, func(_, glo, ghi int) { tab.Fill(glo, ghi) })
	}
	// Each worker records its block's winner so the best candidate is
	// never evaluated a second time after the scan. Both modes stream
	// each candidate through one reused per-block cursor: the
	// Monte-Carlo path through the Eq.-(11) RecurrenceCursor against
	// the shared Workload, the analytic path through the fused
	// Eq.-(4)/Eq.-(11) CostCursor, pruning against the block's best so
	// far (unless FullCosts asks for every exact cost). With a table,
	// cursors are seeded with the precomputed first-step values — same
	// bits, fewer special-function calls.
	cands := make([]Candidate, gridM)
	wins := make([]int, workers)
	parallel.ForEachBlock(gridM, workers, func(w, wlo, whi int) {
		bestIdx := -1
		bestCost := math.Inf(1)
		if wl != nil {
			cur := core.NewRecurrenceCursor(m, d, 0, tailEps) // reused across the block
			for i := wlo; i < whi; i++ {
				// Paper's grid: t1 = a + m·(b-a)/M for m = 1..M.
				t1 := lo + (hi-lo)*float64(i+1)/float64(gridM)
				if tab != nil {
					cur.ResetSeeded(t1, tab.SF0(), tab.SF(i), tab.PDF(i))
				} else {
					cur.Reset(t1)
				}
				cands[i] = evalWorkload(m, t1, wl, &cur)
				if cands[i].Valid && cands[i].Cost < bestCost {
					bestCost, bestIdx = cands[i].Cost, i
				}
			}
		} else {
			cur := core.NewCostCursor(m, d, tailEps) // reused across the block
			for i := wlo; i < whi; i++ {
				t1 := lo + (hi-lo)*float64(i+1)/float64(gridM)
				budget := bestCost
				if b.FullCosts {
					budget = math.Inf(1)
				}
				if tab != nil {
					cands[i] = evalAnalyticSeeded(t1, budget, tab.SF(i), tab.PDF(i), &cur)
				} else {
					cands[i] = evalAnalytic(t1, budget, &cur)
				}
				if cands[i].Valid && cands[i].Cost < bestCost {
					bestCost, bestIdx = cands[i].Cost, i
				}
			}
		}
		wins[w] = bestIdx
	})

	// Blocks are contiguous, so reducing in worker order with a strict
	// < keeps the same winner (first grid index on ties) as a linear
	// scan, independent of the worker count. Pruning cannot disturb
	// this: a candidate is abandoned only once its partial sum strictly
	// exceeds the block's incumbent, so every candidate whose exact
	// cost ties or beats the eventual minimum is scored exactly.
	best := Candidate{Cost: math.Inf(1)}
	for _, idx := range wins {
		if idx < 0 {
			continue
		}
		if c := cands[idx]; c.Cost < best.Cost {
			best = c
		}
	}
	if !best.Valid {
		return SearchResult{Candidates: cands}, errors.New("strategy: no valid brute-force candidate")
	}
	// Candidates were scored through cursors, so build the winner's
	// (lazy) sequence now — O(1), no rescore.
	bestSeq := core.SequenceFromFirstTail(m, d, best.T1, tailEps)
	return SearchResult{Best: best, Sequence: bestSeq, Candidates: cands}, nil
}

// Sequence implements Strategy.
func (b BruteForce) Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error) {
	res, err := b.Search(m, d)
	if err != nil {
		return nil, err
	}
	return res.Sequence, nil
}

// RefinedBruteForce first scans a coarse grid, then polishes the best
// t1 by golden-section minimization of the analytic cost between its
// grid neighbours. It implements the "more efficient algorithms may
// exist to search for the best t1" extension hypothesized in §5.2.
type RefinedBruteForce struct {
	// Coarse is the underlying grid search; its Mode should be
	// EvalAnalytic for a meaningful refinement (golden section needs a
	// noise-free objective). Zero-value fields default as in BruteForce.
	Coarse BruteForce
}

// Name implements Strategy.
func (RefinedBruteForce) Name() string { return "Refined-BF" }

// Search runs the coarse scan and the golden-section polish, returning
// the refined t1 and cost.
func (r RefinedBruteForce) Search(m core.CostModel, d dist.Distribution) (SearchResult, error) {
	coarse := r.Coarse
	coarse.Mode = EvalAnalytic
	if coarse.M == 0 {
		coarse.M = 500
	}
	res, err := coarse.Search(m, d)
	if err != nil {
		return res, err
	}
	lo, _ := d.Support()
	hi := core.BoundFirstReservation(m, d)
	step := (hi - lo) / float64(coarse.M)
	a := math.Max(lo, res.Best.T1-step)
	bb := math.Min(hi, res.Best.T1+step)
	// One cursor serves every golden-section probe; no budget — the
	// polish compares probe values against each other, so a pruned
	// lower bound would mis-order the bracket.
	_, _, tailEps := coarse.params()
	cur := core.NewCostCursor(m, d, tailEps)
	obj := func(t1 float64) float64 {
		c := evalAnalytic(t1, math.Inf(1), &cur)
		if !c.Valid {
			return math.Inf(1)
		}
		return c.Cost
	}
	t1 := optimize.GoldenSection(obj, a, bb, 1e-10)
	c := evalAnalytic(t1, math.Inf(1), &cur)
	if !c.Valid || c.Cost > res.Best.Cost {
		return res, nil // keep the coarse winner
	}
	seq := core.SequenceFromFirstTail(m, d, t1, tailEps)
	return SearchResult{Best: c, Sequence: seq, Candidates: res.Candidates}, nil
}

// Sequence implements Strategy.
func (r RefinedBruteForce) Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error) {
	res, err := r.Search(m, d)
	if err != nil {
		return nil, err
	}
	return res.Sequence, nil
}
