package strategy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func TestConvexBruteForceMatchesAffine(t *testing.T) {
	// With G affine and β = 0, the convex search must agree with the
	// regular brute force (same objective, same recurrence).
	d := dist.MustExponential(1)
	cb := ConvexBruteForce{G: core.AffineCost{Alpha: 1}, M: 2000}
	t1, cost, seq, err := cb.Search(d)
	if err != nil {
		t.Fatal(err)
	}
	if seq == nil {
		t.Fatal("nil sequence")
	}
	if math.Abs(t1-0.742) > 0.03 {
		t.Errorf("convex t1 = %g, want ≈0.742", t1)
	}
	if math.Abs(cost-2.3645) > 0.01 {
		t.Errorf("convex cost = %g, want ≈2.3645", cost)
	}
}

func TestConvexBruteForceQuadratic(t *testing.T) {
	// Under a quadratic premium the optimum shifts to a smaller t1 and
	// the cost exceeds the affine one with the same linear part.
	d := dist.MustLogNormal(0.5, 0.6)
	affine := ConvexBruteForce{G: core.AffineCost{Alpha: 1}, M: 1500}
	quad := ConvexBruteForce{G: core.QuadraticCost{A: 0.05, B: 1}, M: 1500}
	t1a, ca, _, err := affine.Search(d)
	if err != nil {
		t.Fatal(err)
	}
	t1q, cq, seq, err := quad.Search(d)
	if err != nil {
		t.Fatal(err)
	}
	if !(cq > ca) {
		t.Errorf("quadratic cost %g not above affine %g", cq, ca)
	}
	if !(t1q < t1a) {
		t.Errorf("quadratic t1 %g not below affine %g", t1q, t1a)
	}
	// The winning sequence is valid and increasing.
	v, err := seq.Prefix(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			t.Fatalf("not increasing: %v", v)
		}
	}
}

func TestConvexBruteForceBoundedSupport(t *testing.T) {
	// Theorem 4 survives convexity here: for Uniform the single
	// reservation (b) remains optimal under any convex G (paying for a
	// longer reservation once beats paying twice).
	d := dist.MustUniform(10, 20)
	cb := ConvexBruteForce{G: core.QuadraticCost{A: 0.02, B: 1}, M: 1000, TailEps: -1}
	t1, _, _, err := cb.Search(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-20) > 0.05 {
		t.Errorf("uniform convex t1 = %g, want 20", t1)
	}
}

func TestConvexBruteForceValidation(t *testing.T) {
	d := dist.MustExponential(1)
	if _, _, _, err := (ConvexBruteForce{}).Search(d); err == nil {
		t.Error("nil cost function accepted")
	}
	if _, _, _, err := (ConvexBruteForce{G: core.AffineCost{Alpha: 1}, Beta: -1}).Search(d); err == nil {
		t.Error("negative beta accepted")
	}
}
