package strategy

// Verification of the printed MEAN-BY-MEAN recursions of the paper's
// Table 6 (Appendix B): for each distribution the paper gives a
// recursive formula t_i = g(t_{i-1}) (often through an auxiliary
// sequence R_i). These tests evaluate the printed formulas literally —
// via the special-function substrate — and compare them element-wise
// against the MeanByMean strategy, which is built on the closed-form
// conditional expectations. Agreement proves the Appendix-B derivations
// and our implementation coincide.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/specfun"
)

// meanByMeanPrefix materializes the first n reservations of the
// MEAN-BY-MEAN sequence for d.
func meanByMeanPrefix(t *testing.T, d dist.Distribution, n int) []float64 {
	t.Helper()
	s, err := MeanByMean{}.Sequence(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Prefix(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func elementwiseClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	for i := range want {
		if i >= len(got) {
			t.Fatalf("%s: sequence too short (%d < %d)", name, len(got), len(want))
		}
		if math.Abs(got[i]-want[i]) > tol*math.Max(1, math.Abs(want[i])) {
			t.Errorf("%s: t_%d = %.10g, Table-6 formula gives %.10g", name, i+1, got[i], want[i])
		}
	}
}

// TestTable6Weibull: t_i = λ·R_i with R_1 = Γ(1+1/κ) and
// R_i = e^{R_{i-1}^κ}·Γ(1+1/κ, R_{i-1}^κ).
func TestTable6Weibull(t *testing.T) {
	lambda, kappa := 1.0, 0.5
	n := 5
	want := make([]float64, n)
	r := math.Gamma(1 + 1/kappa)
	want[0] = lambda * r
	for i := 1; i < n; i++ {
		x := math.Pow(r, kappa)
		r = specfun.UpperIncGammaScaled(1+1/kappa, x) // e^x·Γ(1+1/κ, x)
		want[i] = lambda * r
	}
	got := meanByMeanPrefix(t, dist.MustWeibull(lambda, kappa), n)
	elementwiseClose(t, "Weibull", got, want, 1e-9)
}

// TestTable6Gamma: t_i = R_i/β with R_1 = α and
// R_i = α + R_{i-1}^α·e^{-R_{i-1}} / Γ(α, R_{i-1}).
func TestTable6Gamma(t *testing.T) {
	alpha, beta := 2.0, 2.0
	n := 5
	want := make([]float64, n)
	r := alpha
	want[0] = r / beta
	for i := 1; i < n; i++ {
		r = alpha + math.Pow(r, alpha)*math.Exp(-r)/specfun.UpperIncGamma(alpha, r)
		want[i] = r / beta
	}
	got := meanByMeanPrefix(t, dist.MustGamma(alpha, beta), n)
	elementwiseClose(t, "Gamma", got, want, 1e-9)
}

// TestTable6LogNormal: t_i = e^{μ+σ²/2}·R_i with R_1 = 1 and
// R_i = (1 + erf((σ²-2·ln R_{i-1})/(2√2σ))) / (1 - erf((σ²+2·ln R_{i-1})/(2√2σ))).
//
// Note: the paper's printed denominator argument (σ²+2·ln R)/(2√2σ)
// matches E[X|X>τ] with τ = e^{μ+σ²/2}·R, i.e. ln τ - μ = σ²/2 + ln R.
func TestTable6LogNormal(t *testing.T) {
	mu, sigma := 3.0, 0.5
	n := 5
	want := make([]float64, n)
	scale := math.Exp(mu + sigma*sigma/2)
	r := 1.0
	want[0] = scale * r
	for i := 1; i < n; i++ {
		num := 1 + math.Erf((sigma*sigma-2*math.Log(r))/(2*math.Sqrt2*sigma))
		den := 1 - math.Erf((sigma*sigma+2*math.Log(r))/(2*math.Sqrt2*sigma))
		r = num / den
		want[i] = scale * r
	}
	got := meanByMeanPrefix(t, dist.MustLogNormal(mu, sigma), n)
	elementwiseClose(t, "LogNormal", got, want, 1e-9)
}

// TestTable6Pareto: t_1 = αν/(α-1), t_i = α·t_{i-1}/(α-1).
func TestTable6Pareto(t *testing.T) {
	nu, alpha := 1.5, 3.0
	n := 6
	want := make([]float64, n)
	want[0] = alpha * nu / (alpha - 1)
	for i := 1; i < n; i++ {
		want[i] = alpha / (alpha - 1) * want[i-1]
	}
	got := meanByMeanPrefix(t, dist.MustPareto(nu, alpha), n)
	elementwiseClose(t, "Pareto", got, want, 1e-12)
}

// TestTable6Uniform: t_1 = (a+b)/2, t_i = (t_{i-1}+b)/2, closing at b.
func TestTable6Uniform(t *testing.T) {
	a, b := 10.0, 20.0
	n := 6
	want := make([]float64, n)
	want[0] = (a + b) / 2
	for i := 1; i < n; i++ {
		want[i] = (want[i-1] + b) / 2
	}
	got := meanByMeanPrefix(t, dist.MustUniform(a, b), n)
	elementwiseClose(t, "Uniform", got, want, 1e-12)
}

// TestTable6Beta: t_i = (B(α+1,β) - B(t_{i-1}; α+1,β)) /
// (B(α,β) - B(t_{i-1}; α,β)), t_1 = α/(α+β).
func TestTable6Beta(t *testing.T) {
	alpha, beta := 2.0, 2.0
	n := 5
	want := make([]float64, n)
	want[0] = alpha / (alpha + beta)
	for i := 1; i < n; i++ {
		tau := want[i-1]
		num := specfun.IncBeta(alpha+1, beta, 1) - specfun.IncBeta(alpha+1, beta, tau)
		den := specfun.IncBeta(alpha, beta, 1) - specfun.IncBeta(alpha, beta, tau)
		want[i] = num / den
	}
	got := meanByMeanPrefix(t, dist.MustBeta(alpha, beta), n)
	elementwiseClose(t, "Beta", got, want, 1e-9)
}

// TestTable6BoundedPareto: t_1 = α/(α-1)·(H^{1-α}-L^{1-α})/(H^{-α}-L^{-α}),
// t_i = α/(α-1)·(H^{1-α}-t_{i-1}^{1-α})/(H^{-α}-t_{i-1}^{-α}).
func TestTable6BoundedPareto(t *testing.T) {
	L, H, alpha := 1.0, 20.0, 2.1
	n := 5
	want := make([]float64, n)
	f := func(tau float64) float64 {
		return alpha / (alpha - 1) *
			(math.Pow(H, 1-alpha) - math.Pow(tau, 1-alpha)) /
			(math.Pow(H, -alpha) - math.Pow(tau, -alpha))
	}
	want[0] = f(L)
	for i := 1; i < n; i++ {
		want[i] = f(want[i-1])
	}
	got := meanByMeanPrefix(t, dist.MustBoundedPareto(L, H, alpha), n)
	elementwiseClose(t, "BoundedPareto", got, want, 1e-9)
}

// TestTable6TruncatedNormal: t_i = μ + σ·√(2/π)·R_i with
// R_1 = e^{-(a-μ)²/(2σ²)} / (1 - erf((a-μ)/(σ√2))) and
// R_i = e^{-R_{i-1}²/π} / (1 - erf(R_{i-1}/√π)).
func TestTable6TruncatedNormal(t *testing.T) {
	mu, sigma, a := 8.0, 1.4142135623730951, 0.0
	n := 5
	want := make([]float64, n)
	alpha0 := (a - mu) / sigma
	r := math.Exp(-0.5*alpha0*alpha0) / (1 - math.Erf(alpha0/math.Sqrt2))
	want[0] = mu + sigma*math.Sqrt(2/math.Pi)*r
	for i := 1; i < n; i++ {
		r = math.Exp(-r*r/math.Pi) / (1 - math.Erf(r/math.Sqrt(math.Pi)))
		want[i] = mu + sigma*math.Sqrt(2/math.Pi)*r
	}
	got := meanByMeanPrefix(t, dist.MustTruncatedNormal(mu, sigma, a), n)
	elementwiseClose(t, "TruncatedNormal", got, want, 1e-9)
}

// TestTable6Exponential: the memoryless law t_i = t_{i-1} + 1/λ.
func TestTable6Exponential(t *testing.T) {
	lambda := 1.0
	got := meanByMeanPrefix(t, dist.MustExponential(lambda), 6)
	for i, v := range got {
		want := float64(i+1) / lambda
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("Exponential t_%d = %g, want %g", i+1, v, want)
		}
	}
}
