package strategy_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/strategy"
)

// ExampleBruteForce_Search reproduces the §3.5 result: for Exp(1) under
// RESERVATIONONLY, the optimal first reservation is s1 ≈ 0.742 with
// expected cost ≈ 2.36.
func ExampleBruteForce_Search() {
	d := dist.MustExponential(1)
	bf := strategy.BruteForce{M: 2000, Mode: strategy.EvalAnalytic}
	res, _ := bf.Search(core.ReservationOnly, d)
	fmt.Printf("t1 ≈ %.1f, cost ≈ %.2f\n", res.Best.T1, res.Best.Cost)
	// Output:
	// t1 ≈ 0.7, cost ≈ 2.36
}

// ExampleMeanByMean shows the Appendix-B closed form in action: for an
// exponential law the conditional-mean chain is arithmetic.
func ExampleMeanByMean() {
	d := dist.MustExponential(0.5) // mean 2
	s, _ := strategy.MeanByMean{}.Sequence(core.ReservationOnly, d)
	v, _ := s.Prefix(4)
	fmt.Printf("%.0f\n", v)
	// Output:
	// [2 4 6 8]
}

// ExampleDiscretized runs the §4.2 pipeline: discretize, solve the DP,
// lift the sequence. For Uniform(10, 20) it recovers Theorem 4's single
// reservation at b.
func ExampleDiscretized() {
	d := dist.MustUniform(10, 20)
	s, _ := strategy.Discretized{N: 200}.Sequence(core.ReservationOnly, d)
	v, _ := s.Prefix(5)
	fmt.Printf("%.0f\n", v)
	// Output:
	// [20]
}
