package strategy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/simulate"
)

// sameCandidate asserts bitwise equality of two candidate records
// (NaN costs compare equal to each other).
func sameCandidate(a, b Candidate) bool {
	//lint:ignore floatcmp bit-identity is the contract under test
	if a.T1 != b.T1 {
		return false
	}
	//lint:ignore floatcmp bit-identity is the contract under test
	if a.Cost != b.Cost && !(math.IsNaN(a.Cost) && math.IsNaN(b.Cost)) {
		return false
	}
	return a.Valid == b.Valid && a.Pruned == b.Pruned
}

// TestBatchedSearchBitIdentical runs SearchOn with Batched off and on,
// across worker counts and scoring modes, and asserts the winner and
// every candidate record are bitwise equal. Each comparison holds the
// worker count fixed, so even under the default analytic prune the two
// runs share block layout and budget evolution — the pruned sets must
// coincide exactly, not just the winner.
func TestBatchedSearchBitIdentical(t *testing.T) {
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1}
	dists := []dist.Distribution{
		dist.MustLogNormal(3, 0.5),
		dist.MustUniform(0, 10),
	}
	const gridM = 400
	for _, d := range dists {
		wl := simulate.NewWorkloadFrom(d, 200, 7)
		cases := []struct {
			name string
			base BruteForce
			wl   *simulate.Workload
		}{
			{"monte-carlo", BruteForce{M: gridM, N: 200, Seed: 7, Mode: EvalMonteCarlo}, wl},
			{"analytic-full", BruteForce{M: gridM, Mode: EvalAnalytic, FullCosts: true}, nil},
			{"analytic-pruned", BruteForce{M: gridM, Mode: EvalAnalytic}, nil},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				for _, workers := range []int{1, 3, 8} {
					plain := tc.base
					plain.Workers = workers
					batched := plain
					batched.Batched = true
					res1, err1 := plain.SearchOn(m, d, tc.wl)
					res2, err2 := batched.SearchOn(m, d, tc.wl)
					if err1 != nil || err2 != nil {
						t.Fatalf("workers=%d: errs %v / %v", workers, err1, err2)
					}
					if !sameCandidate(res1.Best, res2.Best) {
						t.Fatalf("workers=%d: best %+v != batched %+v", workers, res1.Best, res2.Best)
					}
					for i := range res1.Candidates {
						if !sameCandidate(res1.Candidates[i], res2.Candidates[i]) {
							t.Fatalf("workers=%d: candidate %d: %+v != batched %+v",
								workers, i, res1.Candidates[i], res2.Candidates[i])
						}
					}
				}
			})
		}
	}
}

// TestBatchedWinnerStableAcrossWorkers pins that the batched scan's
// winner does not depend on the worker count (the seed guarantee of
// the unbatched scan carries over).
func TestBatchedWinnerStableAcrossWorkers(t *testing.T) {
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1}
	d := dist.MustLogNormal(3, 0.5)
	var ref *SearchResult
	for _, workers := range []int{1, 2, 5, 16} {
		b := BruteForce{M: 600, Mode: EvalAnalytic, Batched: true, Workers: workers}
		res, err := b.Search(m, d)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			r := res
			ref = &r
			continue
		}
		if !sameCandidate(ref.Best, res.Best) {
			t.Fatalf("workers=%d: best %+v != reference %+v", workers, res.Best, ref.Best)
		}
	}
}
