package strategy

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/simulate"
)

func seqPrefix(t *testing.T, s *core.Sequence, n int) []float64 {
	t.Helper()
	v, err := s.Prefix(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMeanByMeanExponential(t *testing.T) {
	// Appendix B: for Exp(λ) the sequence is t_i = i/λ (memoryless).
	d := dist.MustExponential(2)
	s, err := MeanByMean{}.Sequence(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	v := seqPrefix(t, s, 5)
	for i, got := range v {
		want := float64(i+1) / 2
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("t_%d = %g, want %g", i+1, got, want)
		}
	}
}

func TestMeanByMeanPareto(t *testing.T) {
	// Appendix B: t_i = (α/(α-1))^i · ν... precisely t_1 = αν/(α-1),
	// t_i = α t_{i-1}/(α-1).
	d := dist.MustPareto(1.5, 3)
	s, err := MeanByMean{}.Sequence(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	v := seqPrefix(t, s, 5)
	want := 1.5 * 1.5 // αν/(α-1) = 2.25
	for i, got := range v {
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("t_%d = %g, want %g", i+1, got, want)
		}
		want *= 1.5
	}
}

func TestMeanByMeanUniformClosesAtB(t *testing.T) {
	// Appendix B: t_i = (b + t_{i-1})/2 with t_1 = (a+b)/2; on a bounded
	// support the sequence must terminate with exactly b.
	d := dist.MustUniform(10, 20)
	s, err := MeanByMean{}.Sequence(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	v := seqPrefix(t, s, 200)
	if v[0] != 15 {
		t.Errorf("t1 = %g, want 15", v[0])
	}
	if math.Abs(v[1]-17.5) > 1e-12 {
		t.Errorf("t2 = %g, want 17.5", v[1])
	}
	if last := v[len(v)-1]; last != 20 {
		t.Errorf("sequence does not close at b: last = %g (len %d)", last, len(v))
	}
	// Must be a genuinely finite sequence.
	if _, err := s.At(len(v)); !errors.Is(err, core.ErrEnd) {
		t.Errorf("expected ErrEnd, got %v", err)
	}
}

func TestMeanStdevAndDoublingFormulas(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	mu, sigma := d.Mean(), dist.StdDev(d)

	s, _ := MeanStdev{}.Sequence(core.ReservationOnly, d)
	for i, got := range seqPrefix(t, s, 4) {
		want := mu + float64(i)*sigma
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Mean-Stdev t_%d = %g, want %g", i+1, got, want)
		}
	}

	s, _ = MeanDoubling{}.Sequence(core.ReservationOnly, d)
	for i, got := range seqPrefix(t, s, 4) {
		want := mu * math.Pow(2, float64(i))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Mean-Doubling t_%d = %g, want %g", i+1, got, want)
		}
	}
}

func TestMedianByMedianFormula(t *testing.T) {
	d := dist.MustExponential(1)
	s, _ := MedianByMedian{}.Sequence(core.ReservationOnly, d)
	for i, got := range seqPrefix(t, s, 6) {
		want := float64(i+1) * math.Ln2 // Q(1-2^{-i}) = i·ln2
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("t_%d = %g, want %g", i+1, got, want)
		}
	}
}

func TestMedianByMedianExactCost(t *testing.T) {
	// Analytic: E = Σ (i+1)ln2·2^{-i} = 4·ln2 ≈ 2.7726 for Exp(1).
	d := dist.MustExponential(1)
	s, _ := MedianByMedian{}.Sequence(core.ReservationOnly, d)
	e, err := core.ExpectedCost(core.ReservationOnly, d, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-4*math.Ln2) > 1e-6 {
		t.Errorf("E = %.9g, want 4·ln2 = %.9g", e, 4*math.Ln2)
	}
}

func TestStandardHeuristicsValidOnTable1(t *testing.T) {
	// Every §4.3 heuristic yields a valid sequence with finite analytic
	// cost on every Table-1 distribution, and all reservations respect
	// strict monotonicity.
	for _, d := range dist.Table1() {
		for _, st := range StandardHeuristics() {
			s, err := st.Sequence(core.ReservationOnly, d)
			if err != nil {
				t.Fatalf("%s/%s: %v", st.Name(), d.Name(), err)
			}
			e, err := core.ExpectedCost(core.ReservationOnly, d, s.Clone())
			if err != nil {
				t.Fatalf("%s/%s cost: %v", st.Name(), d.Name(), err)
			}
			if math.IsInf(e, 1) || math.IsNaN(e) || e <= 0 {
				t.Errorf("%s/%s: cost %g", st.Name(), d.Name(), e)
			}
			v, err := s.Prefix(50)
			if err != nil {
				t.Fatalf("%s/%s prefix: %v", st.Name(), d.Name(), err)
			}
			for i := 1; i < len(v); i++ {
				if v[i] <= v[i-1] {
					t.Fatalf("%s/%s: not increasing at %d: %v", st.Name(), d.Name(), i, v[:i+1])
				}
			}
		}
	}
}

func TestBruteForceExponentialFindsS1(t *testing.T) {
	// §3.5: the optimal first reservation for Exp(1) is s1 ≈ 0.74219.
	d := dist.MustExponential(1)
	bf := BruteForce{M: 2000, Mode: EvalAnalytic}
	res, err := bf.Search(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best.T1-0.74219) > 0.02 {
		t.Errorf("brute-force t1 = %g, want ≈0.74219", res.Best.T1)
	}
	if res.Best.Cost < 2.2 || res.Best.Cost > 2.45 {
		t.Errorf("brute-force cost = %g, want ≈2.36", res.Best.Cost)
	}
	if len(res.Candidates) != 2000 {
		t.Errorf("candidate count = %d", len(res.Candidates))
	}
}

func TestBruteForceUniformFindsB(t *testing.T) {
	// Theorem 4: for Uniform(10, 20) the optimum is the single
	// reservation (b); the scan must land on t1 ≈ 20 with cost ≈ 20.
	d := dist.MustUniform(10, 20)
	bf := BruteForce{M: 1000, Mode: EvalAnalytic, TailEps: -1} // strict
	res, err := bf.Search(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best.T1-20) > 0.02 {
		t.Errorf("t1 = %g, want 20", res.Best.T1)
	}
	if math.Abs(res.Best.Cost-20) > 0.05 {
		t.Errorf("cost = %g, want 20", res.Best.Cost)
	}
	// Under the strict rule, interior candidates are invalid.
	invalid := 0
	for _, c := range res.Candidates {
		if !c.Valid {
			invalid++
		}
	}
	if invalid < len(res.Candidates)/2 {
		t.Errorf("only %d/%d invalid candidates; Theorem 4 predicts almost all", invalid, len(res.Candidates))
	}
}

func TestBruteForceMonteCarloClose(t *testing.T) {
	// MC scoring lands near the analytic optimum (within noise).
	d := dist.MustLogNormal(3, 0.5)
	mc := BruteForce{M: 300, N: 2000, Mode: EvalMonteCarlo, Seed: 9}
	an := BruteForce{M: 300, Mode: EvalAnalytic}
	rm, err := mc.Search(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := an.Search(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rm.Best.Cost-ra.Best.Cost) > 0.15*ra.Best.Cost {
		t.Errorf("MC best %g vs analytic best %g", rm.Best.Cost, ra.Best.Cost)
	}
}

func TestBruteForceBeatsStandardHeuristics(t *testing.T) {
	// Table-2 shape: BRUTE-FORCE is at least as good as every §4.3
	// heuristic under analytic scoring.
	for _, d := range dist.Table1() {
		bf := BruteForce{M: 1500, Mode: EvalAnalytic}
		res, err := bf.Search(core.ReservationOnly, d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		for _, st := range StandardHeuristics() {
			s, err := st.Sequence(core.ReservationOnly, d)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.ExpectedCost(core.ReservationOnly, d, s)
			if err != nil {
				t.Fatal(err)
			}
			if e < res.Best.Cost-0.02*res.Best.Cost {
				t.Errorf("%s: %s cost %g beats brute force %g", d.Name(), st.Name(), e, res.Best.Cost)
			}
		}
	}
}

func TestRefinedBruteForceAtLeastAsGood(t *testing.T) {
	d := dist.MustGamma(2, 2)
	coarse := BruteForce{M: 200, Mode: EvalAnalytic}
	rc, err := coarse.Search(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RefinedBruteForce{Coarse: BruteForce{M: 200}}.Search(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Best.Cost > rc.Best.Cost+1e-9 {
		t.Errorf("refined %g worse than coarse %g", rr.Best.Cost, rc.Best.Cost)
	}
}

func TestDiscretizedStrategyUniform(t *testing.T) {
	// Theorem 4 through the DP pipeline: single reservation (b), cost
	// normalized 4/3.
	d := dist.MustUniform(10, 20)
	for _, sch := range []Discretized{{}, {Scheme: 1}} {
		s, err := sch.Sequence(core.ReservationOnly, d)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.NormalizedExpectedCost(core.ReservationOnly, d, s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-4.0/3.0) > 0.01 {
			t.Errorf("%s: normalized cost %g, want 1.333", sch.Name(), r)
		}
	}
}

func TestDiscretizedStrategyCloseToBruteForce(t *testing.T) {
	// §5.2 / Table 4: with n = 1000 both discretization schemes converge
	// near the brute-force cost on unbounded laws too.
	for _, d := range []dist.Distribution{dist.MustExponential(1), dist.MustGamma(2, 2)} {
		bf, err := BruteForce{M: 1000, Mode: EvalAnalytic}.Search(core.ReservationOnly, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, sch := range []Discretized{{N: 1000}, {Scheme: 1, N: 1000}} {
			s, err := sch.Sequence(core.ReservationOnly, d)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.ExpectedCost(core.ReservationOnly, d, s)
			if err != nil {
				t.Fatal(err)
			}
			if e > 1.25*bf.Best.Cost {
				t.Errorf("%s on %s: cost %g far above brute force %g", sch.Name(), d.Name(), e, bf.Best.Cost)
			}
		}
	}
}

func TestDiscretizedSequenceExtendsBeyondTruncation(t *testing.T) {
	d := dist.MustExponential(1)
	s, err := Discretized{N: 50}.Sequence(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	// Far past the truncation point the sequence must keep increasing.
	v, err := s.Prefix(40)
	if err != nil {
		t.Fatal(err)
	}
	if v[len(v)-1] <= d.Quantile(1-1e-7) {
		t.Errorf("sequence did not extend beyond truncation: last = %g", v[len(v)-1])
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]bool{}
	all := append(StandardHeuristics(),
		BruteForce{}, RefinedBruteForce{}, Discretized{}, Discretized{Scheme: 1})
	for _, st := range all {
		n := st.Name()
		if n == "" || names[n] {
			t.Errorf("bad or duplicate name %q", n)
		}
		names[n] = true
	}
}

func TestBruteForceMCEstimateAgreesWithSimulate(t *testing.T) {
	// The candidate evaluator must agree with the simulate package on
	// the same sample set.
	d := dist.MustExponential(1)
	bf := BruteForce{N: 500, Seed: 4}
	samples := simulate.Samples(d, 500, 4)
	cand, seq := bf.EvaluateT1(core.ReservationOnly, d, 1.0, samples)
	if !cand.Valid {
		t.Fatal("candidate invalid")
	}
	est, err := simulate.CostOnSamples(core.ReservationOnly, seq.Clone(), samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cand.Cost-est.Mean) > 1e-12 {
		t.Errorf("evaluator %g vs simulate %g", cand.Cost, est.Mean)
	}
}

// TestBruteForceDominatesOnRandomLaws: the brute-force optimum beats
// every §4.3 heuristic (analytically) on randomly parameterized laws,
// not just the Table-1 instantiations.
func TestBruteForceDominatesOnRandomLaws(t *testing.T) {
	r := rng.New(2027)
	mkLaw := func(i int) dist.Distribution {
		switch i % 4 {
		case 0:
			return dist.MustExponential(0.2 + 3*r.Float64())
		case 1:
			return dist.MustLogNormal(2*r.Float64(), 0.2+0.8*r.Float64())
		case 2:
			return dist.MustGamma(0.5+4*r.Float64(), 0.5+3*r.Float64())
		default:
			return dist.MustWeibull(0.5+2*r.Float64(), 0.7+2*r.Float64())
		}
	}
	for i := 0; i < 24; i++ {
		d := mkLaw(i)
		m := core.ReservationOnly
		if i%3 == 1 {
			m = core.CostModel{Alpha: 1, Beta: r.Float64(), Gamma: r.Float64()}
		}
		res, err := BruteForce{M: 800, Mode: EvalAnalytic}.Search(m, d)
		if err != nil {
			t.Fatalf("%s %v: %v", d.Name(), m, err)
		}
		for _, st := range StandardHeuristics() {
			s, err := st.Sequence(m, d)
			if err != nil {
				t.Fatalf("%s on %s: %v", st.Name(), d.Name(), err)
			}
			e, err := core.ExpectedCost(m, d, s)
			if err != nil {
				t.Fatalf("%s on %s: %v", st.Name(), d.Name(), err)
			}
			// Allow 3% slack for the finite grid.
			if e < res.Best.Cost*0.97 {
				t.Errorf("%s on %s (%v): heuristic %g beats brute force %g",
					st.Name(), d.Name(), m, e, res.Best.Cost)
			}
		}
	}
}

func TestStrategyInterfaceSequenceMethods(t *testing.T) {
	// The Strategy-interface Sequence methods of the search-based
	// strategies, plus the small display helpers.
	d := dist.MustExponential(1)
	bf := BruteForce{M: 200, Mode: EvalAnalytic}
	s, err := bf.Sequence(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.First(); math.Abs(v-0.74) > 0.1 {
		t.Errorf("BF first = %g", v)
	}
	rb := RefinedBruteForce{Coarse: BruteForce{M: 200}}
	s, err = rb.Sequence(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.First(); math.Abs(v-0.742) > 0.05 {
		t.Errorf("refined first = %g", v)
	}
	if EvalMonteCarlo.String() != "monte-carlo" || EvalAnalytic.String() != "analytic" {
		t.Error("EvalMode strings")
	}
	if (ConvexBruteForce{}).Name() != "Convex-BF" {
		t.Error("convex name")
	}
}

func TestDiscretizedDPResult(t *testing.T) {
	d := dist.MustUniform(10, 20)
	res, err := Discretized{N: 50}.DPResult(core.ReservationOnly, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) != 1 || res.Sequence[0] != 20 {
		t.Errorf("DP result %v, want [20] (Theorem 4)", res.Sequence)
	}
	if _, err := (Discretized{N: -1, Epsilon: 2}).DPResult(core.ReservationOnly, d); err == nil {
		t.Error("invalid epsilon accepted")
	}
}
