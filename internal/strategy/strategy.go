// Package strategy implements the reservation heuristics of §4 of the
// paper:
//
//   - BRUTE-FORCE (§4.1): a grid search over the first reservation t1 on
//     [a, min(b, A1)], expanding each candidate with the optimal
//     recurrence of Eq. (11) and scoring it by Monte Carlo (the paper's
//     protocol) or by the deterministic closed form of Eq. (4);
//   - the discretization + dynamic-programming strategy (§4.2) in its
//     EQUAL-PROBABILITY and EQUAL-TIME variants;
//   - the standard-measure heuristics (§4.3): MEAN-BY-MEAN, MEAN-STDEV,
//     MEAN-DOUBLING, MEDIAN-BY-MEDIAN;
//   - a golden-section refinement of the brute force (the "more
//     efficient search" the paper hypothesizes in §5.2).
package strategy

import (
	"math"

	"repro/internal/core"
	"repro/internal/dist"
)

// Strategy computes a reservation sequence for a distribution under a
// cost model.
type Strategy interface {
	// Name returns the paper's name for the heuristic.
	Name() string
	// Sequence returns the reservation sequence. An error means the
	// heuristic could not produce a valid sequence for this input.
	Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error)
}

// boundedTerminal wraps a raw generator formula for the simple §4.3
// heuristics: on bounded supports, any formula value that reaches,
// exceeds, or stops increasing below the bound b closes the sequence
// with a final reservation of exactly b (all mass must be covered,
// §2.2); on unbounded supports the formula is passed through.
func boundedTerminal(d dist.Distribution, formula func(i int, prefix []float64) float64) core.Generator {
	_, hi := d.Support()
	bounded := !math.IsInf(hi, 1)
	return func(i int, prefix []float64) (float64, bool) {
		if bounded && i > 0 && prefix[i-1] >= hi {
			return 0, false
		}
		v := formula(i, prefix)
		prev := 0.0
		if i > 0 {
			prev = prefix[i-1]
		}
		if bounded {
			if math.IsNaN(v) || v >= hi || v <= prev {
				return hi, true
			}
		} else if i > 0 && (math.IsNaN(v) || math.IsInf(v, 1)) {
			// Deep-tail numerical saturation (quantile at a probability
			// that rounds to 1, conditional mean past erfc underflow):
			// continue geometrically. The survival mass out there is far
			// below any evaluation tolerance.
			return 2 * prev, true
		}
		return v, true
	}
}

// MeanByMean is the MEAN-BY-MEAN heuristic: t1 = E[X], then
// t_i = E[X | X > t_{i-1}] (conditional expectation of the remaining
// interval), using the closed forms of Appendix B where available.
type MeanByMean struct{}

// Name implements Strategy.
func (MeanByMean) Name() string { return "Mean-by-Mean" }

// Sequence implements Strategy.
func (MeanByMean) Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error) {
	return core.NewSequence(boundedTerminal(d, func(i int, prefix []float64) float64 {
		if i == 0 {
			return d.Mean()
		}
		return dist.CondMean(d, prefix[i-1])
	})), nil
}

// MeanStdev is the MEAN-STDEV heuristic: t_i = μ + (i-1)·σ.
type MeanStdev struct{}

// Name implements Strategy.
func (MeanStdev) Name() string { return "Mean-Stdev" }

// Sequence implements Strategy.
func (MeanStdev) Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error) {
	mu := d.Mean()
	sigma := dist.StdDev(d)
	return core.NewSequence(boundedTerminal(d, func(i int, _ []float64) float64 {
		return mu + float64(i)*sigma
	})), nil
}

// MeanDoubling is the MEAN-DOUBLING heuristic: t_i = 2^{i-1}·μ.
type MeanDoubling struct{}

// Name implements Strategy.
func (MeanDoubling) Name() string { return "Mean-Doubling" }

// Sequence implements Strategy.
func (MeanDoubling) Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error) {
	mu := d.Mean()
	return core.NewSequence(boundedTerminal(d, func(i int, _ []float64) float64 {
		return mu * math.Pow(2, float64(i))
	})), nil
}

// MedianByMedian is the MEDIAN-BY-MEDIAN heuristic:
// t_i = Q(1 - 1/2^i) — the median, then the median of the remaining
// tail, and so on.
type MedianByMedian struct{}

// Name implements Strategy.
func (MedianByMedian) Name() string { return "Median-by-Median" }

// Sequence implements Strategy.
func (MedianByMedian) Sequence(m core.CostModel, d dist.Distribution) (*core.Sequence, error) {
	return core.NewSequence(boundedTerminal(d, func(i int, _ []float64) float64 {
		return d.Quantile(1 - math.Pow(2, -float64(i+1)))
	})), nil
}

// All returns the §4.3 standard-measure heuristics in the paper's
// column order.
func StandardHeuristics() []Strategy {
	return []Strategy{MeanByMean{}, MeanStdev{}, MeanDoubling{}, MedianByMedian{}}
}
