package strategy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestAnalyticSearchPruningDeterminism is the acceptance property of
// the analytic fast path: SearchOn must return a bit-identical winner
// (same t1, same cost, same sequence) with the budget prune on and
// off, at any worker count, across distributions and cost models.
func TestAnalyticSearchPruningDeterminism(t *testing.T) {
	models := []core.CostModel{
		core.ReservationOnly,
		{Alpha: 0.95, Beta: 1, Gamma: 1.05},
	}
	dists := []dist.Distribution{
		dist.MustLogNormal(3, 0.5),
		dist.MustExponential(1),
		dist.MustGamma(2, 2),
		dist.MustWeibull(1, 0.5),
		dist.MustUniform(10, 20),
	}
	for _, m := range models {
		for _, d := range dists {
			// Reference: exact costs, serial scan.
			ref, errRef := BruteForce{M: 400, Mode: EvalAnalytic, Workers: 1, FullCosts: true}.
				Search(m, d)
			for _, workers := range []int{1, 3, 8} {
				for _, full := range []bool{false, true} {
					bf := BruteForce{M: 400, Mode: EvalAnalytic, Workers: workers, FullCosts: full}
					res, err := bf.Search(m, d)
					if (errRef == nil) != (err == nil) {
						t.Fatalf("%s %v workers=%d full=%v: err %v vs ref %v",
							d.Name(), m, workers, full, err, errRef)
					}
					if errRef != nil {
						continue
					}
					if res.Best.T1 != ref.Best.T1 || res.Best.Cost != ref.Best.Cost { //lint:ignore floatcmp winner must be bit-identical
						t.Errorf("%s %v workers=%d full=%v: winner (%.17g, %.17g) != reference (%.17g, %.17g)",
							d.Name(), m, workers, full, res.Best.T1, res.Best.Cost, ref.Best.T1, ref.Best.Cost)
					}
					got, err1 := res.Sequence.Clone().Prefix(8)
					want, err2 := ref.Sequence.Clone().Prefix(8)
					if err1 != nil || err2 != nil || len(got) != len(want) {
						t.Fatalf("%s workers=%d full=%v: sequence prefixes %v/%v, errs %v/%v",
							d.Name(), workers, full, got, want, err1, err2)
					}
					for i := range got {
						if got[i] != want[i] { //lint:ignore floatcmp winner sequence must be bit-identical
							t.Errorf("%s workers=%d full=%v: sequence[%d] = %.17g != %.17g",
								d.Name(), workers, full, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestAnalyticSearchPrunedCandidatesAreLowerBounds: every pruned entry
// in the candidate array must carry a partial sum that is (a) strictly
// above the cost of the winner (it lost to some incumbent at least as
// good) and (b) at most the candidate's exact cost from an unpruned
// scan — the admissibility that makes pruning safe.
func TestAnalyticSearchPrunedCandidatesAreLowerBounds(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	pruned, err := BruteForce{M: 500, Mode: EvalAnalytic, Workers: 1}.Search(m, d)
	if err != nil {
		t.Fatal(err)
	}
	full, err := BruteForce{M: 500, Mode: EvalAnalytic, Workers: 1, FullCosts: true}.Search(m, d)
	if err != nil {
		t.Fatal(err)
	}
	nPruned := 0
	for i, c := range pruned.Candidates {
		if !c.Pruned {
			// Unpruned entries must match the full scan exactly.
			f := full.Candidates[i]
			if c.Valid != f.Valid {
				t.Errorf("cand %d: valid %v != full %v", i, c.Valid, f.Valid)
			}
			if c.Valid && c.Cost != f.Cost { //lint:ignore floatcmp unpruned scores must be bit-identical
				t.Errorf("cand %d: cost %.17g != full %.17g", i, c.Cost, f.Cost)
			}
			continue
		}
		nPruned++
		if c.Valid {
			t.Errorf("cand %d: pruned entry marked valid", i)
		}
		if !(c.Cost > pruned.Best.Cost) {
			t.Errorf("cand %d: pruned bound %g not above winner %g", i, c.Cost, pruned.Best.Cost)
		}
		if f := full.Candidates[i]; f.Valid && c.Cost > f.Cost {
			t.Errorf("cand %d: pruned bound %g exceeds exact cost %g", i, c.Cost, f.Cost)
		}
	}
	if nPruned == 0 {
		t.Error("no candidate was pruned; the early abort never fired on a 500-point grid")
	}
	if full.Best.T1 != pruned.Best.T1 { //lint:ignore floatcmp winner must be bit-identical
		t.Errorf("winners differ: pruned %g vs full %g", pruned.Best.T1, full.Best.T1)
	}
}

// TestConvexSearchWorkersDeterminism: the convex scan's block
// reduction must return the same refined winner at any worker count.
func TestConvexSearchWorkersDeterminism(t *testing.T) {
	g := core.QuadraticCost{A: 0.1, B: 1, C: 0.5}
	d := dist.MustLogNormal(1, 0.5)
	var refT1, refCost float64
	for i, workers := range []int{1, 3, 8} {
		b := ConvexBruteForce{G: g, Beta: 1, M: 300, Workers: workers}
		t1, cost, seq, err := b.Search(d)
		if err != nil {
			t.Fatal(err)
		}
		if seq == nil {
			t.Fatal("nil sequence")
		}
		if i == 0 {
			refT1, refCost = t1, cost
			continue
		}
		if t1 != refT1 || cost != refCost { //lint:ignore floatcmp winner must be bit-identical
			t.Errorf("workers=%d: (%.17g, %.17g) != (%.17g, %.17g)", workers, t1, cost, refT1, refCost)
		}
	}
}
