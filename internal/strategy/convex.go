package strategy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/optimize"
	"repro/internal/parallel"
)

// ConvexBruteForce is the brute-force procedure under a general convex
// reservation cost G (Appendix C of the paper): a grid scan over the
// first reservation t1, each candidate expanded with the generalized
// recurrence of Eq. (37) and scored by the Appendix-C expected cost.
type ConvexBruteForce struct {
	// G is the convex reservation cost.
	G core.ConvexCost
	// Beta scales the used duration (as in the affine model).
	Beta float64
	// M is the grid size (default 2000).
	M int
	// UpperFactor bounds the search interval as UpperFactor·E[X] above
	// the support's low end (the Theorem-2 bound is specific to affine
	// costs); default 10.
	UpperFactor float64
	// TailEps as in BruteForce (0 selects core.DefaultTailEps).
	TailEps float64
	// Workers bounds parallelism.
	Workers int
}

// Name implements Strategy. Note the cost model argument of Sequence is
// ignored: the convex cost G replaces it.
func (ConvexBruteForce) Name() string { return "Convex-BF" }

// Search scans the grid and returns the best first reservation, its
// expected cost, and the winning sequence.
func (b ConvexBruteForce) Search(d dist.Distribution) (t1, cost float64, seq *core.Sequence, err error) {
	if b.G == nil {
		return 0, 0, nil, errors.New("strategy: ConvexBruteForce needs a cost function")
	}
	if b.Beta < 0 || math.IsNaN(b.Beta) {
		return 0, 0, nil, fmt.Errorf("strategy: Beta must be nonnegative, got %g", b.Beta)
	}
	m := b.M
	if m <= 0 {
		m = 2000
	}
	uf := b.UpperFactor
	if uf <= 0 {
		uf = 10
	}
	tailEps := b.TailEps
	if tailEps == 0 {
		tailEps = core.DefaultTailEps
	} else if tailEps < 0 {
		tailEps = 0
	}
	lo, hi := d.Support()
	upper := lo + uf*d.Mean()
	if !math.IsInf(hi, 1) {
		upper = hi
	}
	if !(upper > lo) {
		return 0, 0, nil, fmt.Errorf("strategy: degenerate convex search interval [%g, %g]", lo, upper)
	}

	// The scan streams each candidate through one fused Eq.-(37)
	// cursor per worker block (no Sequence materialized), pruning
	// against the block's running best; block winners are reduced in
	// worker order so the first-grid-index tie-break of a serial scan
	// is preserved at any worker count (see core.CostCursor for the
	// pruning soundness argument, which carries over term for term).
	workers := b.Workers
	if workers <= 0 || workers > m {
		workers = parallel.Workers(m)
	}
	type blockBest struct {
		idx  int
		cost float64
	}
	wins := make([]blockBest, workers)
	parallel.ForEachBlock(m, workers, func(w, wlo, whi int) {
		bb := blockBest{idx: -1, cost: math.Inf(1)}
		cur := core.NewConvexCostCursor(b.G, b.Beta, d, tailEps)
		for i := wlo; i < whi; i++ {
			cand := lo + (upper-lo)*float64(i+1)/float64(m)
			e, pruned, err := cur.CostBudget(cand, bb.cost)
			if err != nil || pruned || math.IsNaN(e) || math.IsInf(e, 1) {
				continue
			}
			if e < bb.cost {
				bb = blockBest{idx: i, cost: e}
			}
		}
		wins[w] = bb
	})
	bestI := -1
	best := math.Inf(1)
	for _, bb := range wins {
		if bb.idx >= 0 && bb.cost < best {
			best, bestI = bb.cost, bb.idx
		}
	}
	if bestI < 0 {
		return 0, 0, nil, errors.New("strategy: no valid convex candidate")
	}
	t1 = lo + (upper-lo)*float64(bestI+1)/float64(m)
	// Golden-section polish between the grid neighbours, exact (no
	// budget: the polish orders probe values against each other).
	step := (upper - lo) / float64(m)
	cur := core.NewConvexCostCursor(b.G, b.Beta, d, tailEps)
	obj := func(x float64) float64 {
		e, err := cur.Cost(x)
		if err != nil || math.IsNaN(e) {
			return math.Inf(1)
		}
		return e
	}
	refined := optimize.GoldenSection(obj, math.Max(lo, t1-step), math.Min(upper, t1+step), 1e-10)
	if c := obj(refined); c < best {
		t1, best = refined, c
	}
	return t1, best, core.SequenceFromFirstConvexTail(b.G, b.Beta, d, t1, tailEps), nil
}
