package trace

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestGenerateRunTraceAndFit(t *testing.T) {
	// The full Fig.-1 pipeline: generate a synthetic trace, fit a
	// LogNormal, recover the published parameters.
	for _, app := range []Application{VBMQA, FMRIQA} {
		samples, err := GenerateRunTrace(app, 5000, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := dist.FitLogNormal(samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Mu()-app.Mu) > 0.02 {
			t.Errorf("%s: fitted μ = %g, want %g", app.Name, fit.Mu(), app.Mu)
		}
		if math.Abs(fit.Sigma()-app.Sigma) > 0.02 {
			t.Errorf("%s: fitted σ = %g, want %g", app.Name, fit.Sigma(), app.Sigma)
		}
		// Goodness of fit: KS statistic against the fitted law is small.
		if ks := dist.KSStatistic(samples, fit); ks > 0.03 {
			t.Errorf("%s: KS = %g", app.Name, ks)
		}
	}
}

func TestVBMQAMomentsMatchPaper(t *testing.T) {
	// §5.3: the VBMQA fit gives mean ≈ 1253.37 s and sd ≈ 258.261 s.
	d := VBMQA.Distribution()
	if math.Abs(d.Mean()-1253.37) > 1 {
		t.Errorf("VBMQA mean = %g s, want ≈1253.37", d.Mean())
	}
	if math.Abs(dist.StdDev(d)-258.261) > 1 {
		t.Errorf("VBMQA sd = %g s, want ≈258.261", dist.StdDev(d))
	}
}

func TestGenerateRunTraceValidation(t *testing.T) {
	if _, err := GenerateRunTrace(VBMQA, 1, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := GenerateRunTrace(VBMQA, 10, 0.9, 1); err == nil {
		t.Error("jitter=0.9 accepted")
	}
	a, _ := GenerateRunTrace(VBMQA, 100, 0.01, 7)
	b, _ := GenerateRunTrace(VBMQA, 100, 0.01, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace generation not deterministic")
		}
	}
}

func TestFitAffineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, err := FitAffine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 {
		t.Errorf("fit = %g x + %g, want 2x + 3", slope, intercept)
	}
}

func TestFitAffineValidation(t *testing.T) {
	if _, _, err := FitAffine([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := FitAffine([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := FitAffine([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestWaitTimeLogPipeline(t *testing.T) {
	// The full Fig.-2 pipeline: generate the 20-group log, fit the
	// affine law, recover (α, γ) within noise.
	log, err := GenerateWaitTimeLog(Intrepid409, 20, 600, 72000, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 20 {
		t.Fatalf("got %d groups", len(log))
	}
	fit, err := FitWaitTimeModel(log)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-Intrepid409.Alpha) > 0.1 {
		t.Errorf("fitted α = %g, want ≈%g", fit.Alpha, Intrepid409.Alpha)
	}
	if math.Abs(fit.Gamma-Intrepid409.Gamma) > 0.25*Intrepid409.Gamma {
		t.Errorf("fitted γ = %g, want ≈%g", fit.Gamma, Intrepid409.Gamma)
	}
}

func TestWaitTimeLogValidation(t *testing.T) {
	if _, err := GenerateWaitTimeLog(Intrepid409, 1, 600, 72000, 0, 1); err == nil {
		t.Error("groups=1 accepted")
	}
	if _, err := GenerateWaitTimeLog(Intrepid409, 20, -1, 72000, 0, 1); err == nil {
		t.Error("negative minReq accepted")
	}
	if _, err := GenerateWaitTimeLog(Intrepid409, 20, 600, 500, 0, 1); err == nil {
		t.Error("maxReq < minReq accepted")
	}
	if _, err := GenerateWaitTimeLog(Intrepid409, 20, 600, 72000, 2, 1); err == nil {
		t.Error("noise=2 accepted")
	}
}

func TestNoiselessWaitLogFitsExactly(t *testing.T) {
	log, err := GenerateWaitTimeLog(Intrepid409, 10, 1000, 50000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitWaitTimeModel(log)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-0.95) > 1e-9 || math.Abs(fit.Gamma-3771.84) > 1e-6 {
		t.Errorf("noiseless fit = %+v", fit)
	}
}
