package trace

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binning of a trace, used by cmd/tracefit
// to visualize execution-time distributions (the bar views of Fig. 1).
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers
	// [Edges[i], Edges[i+1]).
	Edges []float64
	// Counts holds the per-bin sample counts.
	Counts []int
	// N is the total number of samples.
	N int
}

// NewHistogram bins the samples into the given number of equal-width
// bins spanning [min, max].
func NewHistogram(samples []float64, bins int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace: histogram needs samples")
	}
	if bins < 1 {
		return nil, fmt.Errorf("trace: histogram needs at least 1 bin, got %d", bins)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("trace: histogram sample %g is not finite", s)
		}
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi <= lo {
		hi = lo + 1 // degenerate trace: one wide bin
	}
	h := &Histogram{
		Edges:  make([]float64, bins+1),
		Counts: make([]int, bins),
		N:      len(samples),
	}
	for i := range h.Edges {
		h.Edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	w := (hi - lo) / float64(bins)
	for _, s := range samples {
		i := int((s - lo) / w)
		if i >= bins {
			i = bins - 1 // the max sample belongs to the last bin
		}
		h.Counts[i]++
	}
	return h, nil
}

// Mode returns the midpoint of the fullest bin.
func (h *Histogram) Mode() float64 {
	best, arg := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best, arg = c, i
		}
	}
	return 0.5 * (h.Edges[arg] + h.Edges[arg+1])
}

// Render draws a text histogram with bars scaled to the given width.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 50
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%10.4g - %-10.4g %6d %s\n", h.Edges[i], h.Edges[i+1], c, bar)
	}
	return b.String()
}
