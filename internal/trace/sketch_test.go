package trace

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// exactQuantile is the nearest-rank quantile of a sorted sample — the
// reference the sketch's documented error bound is stated against.
func exactQuantile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestSketchQuantileErrorBound: across the nine Table-1 laws and
// several seeds, every sketch quantile estimate is within the
// documented relative-error bound of the exact sorted-sample
// nearest-rank quantile.
func TestSketchQuantileErrorBound(t *testing.T) {
	laws := dist.Table1()
	if len(laws) != 9 {
		t.Fatalf("Table1 has %d laws, want 9", len(laws))
	}
	ps := []float64{0.5, 0.9, 0.99, 0.999}
	const n = 20000
	for li, law := range laws {
		for seed := uint64(1); seed <= 3; seed++ {
			r := rng.New(seed*1000 + uint64(li))
			sk := NewDefaultSketch()
			samples := make([]float64, n)
			for i := range samples {
				v := dist.Sample(law, r)
				samples[i] = v
				sk.Add(v)
			}
			sort.Float64s(samples)
			for _, p := range ps {
				exact := exactQuantile(samples, p)
				got := sk.Quantile(p)
				// The documented bound plus a few ulps of slack for the
				// log/ceil bucket mapping at bucket boundaries.
				bound := sk.Alpha()*math.Abs(exact) + 1e-9*math.Abs(exact) + 1e-9
				if math.Abs(got-exact) > bound {
					t.Errorf("law %d seed %d p=%g: sketch %g vs exact %g (err %g > bound %g)",
						li, seed, p, got, exact, math.Abs(got-exact), bound)
				}
			}
			if sk.Quantile(0) != samples[0] || sk.Quantile(1) != samples[n-1] {
				t.Errorf("law %d seed %d: extremes not exact: q0=%g min=%g q1=%g max=%g",
					li, seed, sk.Quantile(0), samples[0], sk.Quantile(1), samples[n-1])
			}
		}
	}
}

// TestSketchMergeOrderIndependence: merge(a,b) and merge(b,a) are
// bitwise identical, and a merged sketch answers quantiles with the
// same bits as a single-pass sketch over the same values.
func TestSketchMergeOrderIndependence(t *testing.T) {
	laws := dist.Table1()
	for li, law := range laws {
		r := rng.New(uint64(li) + 7)
		a, b := NewDefaultSketch(), NewDefaultSketch()
		full := NewDefaultSketch()
		for i := 0; i < 4000; i++ {
			v := dist.Sample(law, r)
			if i%3 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
			full.Add(v)
		}
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			t.Errorf("law %d: merge(a,b) != merge(b,a) bitwise", li)
		}
		if ab.Count() != full.Count() {
			t.Fatalf("law %d: merged count %d, want %d", li, ab.Count(), full.Count())
		}
		// Quantiles depend only on counts, min, and max — all of which
		// are order-independent — so merged vs single-pass must agree
		// bit for bit (only Sum may differ, by float associativity).
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			if math.Float64bits(ab.Quantile(p)) != math.Float64bits(full.Quantile(p)) {
				t.Errorf("law %d: merged Quantile(%g)=%g != single-pass %g",
					li, p, ab.Quantile(p), full.Quantile(p))
			}
		}
	}
}

// TestSketchMergeAcrossWindows forces disjoint and overlapping bucket
// windows (decades apart) so merge exercises the grid-aligned regrow.
func TestSketchMergeAcrossWindows(t *testing.T) {
	a, b := NewDefaultSketch(), NewDefaultSketch()
	for i := 0; i < 100; i++ {
		a.Add(1e-6 * float64(i+1))
		b.Add(1e6 * float64(i+1))
	}
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatal("wide-window merge not commutative")
	}
	if ab.Count() != 200 {
		t.Fatalf("count %d, want 200", ab.Count())
	}
	if got := ab.Quantile(1); got != 1e8 {
		t.Fatalf("q1 = %g, want exact max 1e8", got)
	}
}

func TestSketchSignsAndZero(t *testing.T) {
	sk := NewDefaultSketch()
	vals := []float64{-100, -1.5, 0, 0, 3e-13, 2.5, 1000}
	for _, v := range vals {
		sk.Add(v)
	}
	if sk.Count() != 7 {
		t.Fatalf("count %d", sk.Count())
	}
	if sk.Quantile(0) != -100 || sk.Quantile(1) != 1000 {
		t.Fatalf("extremes: q0=%g q1=%g", sk.Quantile(0), sk.Quantile(1))
	}
	// rank ceil(0.5·7) = 4: sorted values place the 4th at 0 (the zero
	// bucket also absorbs 3e-13).
	if got := sk.Quantile(0.5); got != 0 {
		t.Fatalf("median %g, want 0", got)
	}
	// rank 2 is -1.5: the negative mirror must answer within bound.
	if got := sk.Quantile(2.0 / 7.0); math.Abs(got-(-1.5)) > sk.Alpha()*1.5+1e-9 {
		t.Fatalf("negative quantile %g, want ≈ -1.5", got)
	}
}

func TestSketchEmptyAndErrors(t *testing.T) {
	sk := NewDefaultSketch()
	if sk.Quantile(0.5) != 0 || sk.Min() != 0 || sk.Max() != 0 || sk.Count() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	for _, bad := range []float64{0, 1, -0.1, math.NaN()} {
		if _, err := NewQuantileSketch(bad); err == nil {
			t.Errorf("alpha %g accepted", bad)
		}
	}
	if _, err := sk.Histogram(4); err == nil {
		t.Error("empty histogram accepted")
	}
}

func TestSketchHistogram(t *testing.T) {
	sk := NewDefaultSketch()
	for i := 0; i < 1000; i++ {
		sk.Add(float64(i % 10))
	}
	h, err := sk.Histogram(5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 1000 || h.N != 1000 {
		t.Fatalf("histogram holds %d of %d samples", total, h.N)
	}
	if h.Edges[0] != 0 || h.Edges[len(h.Edges)-1] != 9 {
		t.Fatalf("edges span [%g, %g], want [0, 9]", h.Edges[0], h.Edges[len(h.Edges)-1])
	}
}
