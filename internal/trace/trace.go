// Package trace implements the paper's data substrate. The paper uses
// two proprietary data sets: execution traces of neuroscience
// applications from Vanderbilt's medical imaging database (Fig. 1), and
// job wait-time logs from the Intrepid supercomputer (Fig. 2, data from
// [20]). Neither is publicly available, so this package provides
// faithful synthetic substitutes plus the same fitting pipeline the
// paper ran on the real data:
//
//   - GenerateRunTrace emulates an application's execution-time log by
//     sampling the published fitted LogNormal law (VBMQA: μ=7.1128,
//     σ=0.2039; fMRIQA analogous) with multiplicative measurement
//     jitter. FitLogNormal (from the dist package) then recovers (μ, σ)
//     exactly as the paper's curve fit did — every downstream experiment
//     consumes only the fitted parameters, so the substitution preserves
//     the code path and the resulting distribution.
//   - GenerateWaitTimeLog emulates the Intrepid queue log: groups of
//     jobs with similar requested runtimes whose average wait time
//     follows the affine law w = α·t + γ (α=0.95, γ=3771.84 s) plus
//     noise. FitAffine recovers (α, γ) by least squares, as in Fig. 2.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/rng"
)

// Application identifies one of the two neuroscience applications whose
// execution-time distributions the paper characterizes (Fig. 1).
type Application struct {
	// Name is the application label.
	Name string
	// Mu and Sigma are the published LogNormal fit parameters
	// (log-seconds).
	Mu, Sigma float64
}

// The paper's two trace-characterized applications. VBMQA's parameters
// are given explicitly in §5.3; fMRIQA's are derived from the
// mean/stddev annotations of Fig. 1(a).
var (
	VBMQA  = Application{Name: "VBMQA", Mu: 7.1128, Sigma: 0.2039}
	FMRIQA = Application{Name: "fMRIQA", Mu: 6.4727, Sigma: 0.3234}
)

// Distribution returns the application's fitted LogNormal law
// (execution time in seconds).
func (a Application) Distribution() dist.LogNormal {
	return dist.MustLogNormal(a.Mu, a.Sigma)
}

// GenerateRunTrace synthesizes n execution-time measurements for the
// application: samples of its LogNormal law perturbed by multiplicative
// measurement jitter of the given relative magnitude (e.g. 0.01 for
// ±~1%).
func GenerateRunTrace(app Application, n int, jitter float64, seed uint64) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("trace: need at least 2 runs, got %d", n)
	}
	if jitter < 0 || jitter >= 0.5 {
		return nil, fmt.Errorf("trace: jitter must be in [0, 0.5), got %g", jitter)
	}
	r := rng.New(seed)
	d := app.Distribution()
	out := make([]float64, n)
	for i := range out {
		v := dist.Sample(d, r)
		if jitter > 0 {
			v *= 1 + jitter*r.NormFloat64()
			if v <= 0 {
				v = math.SmallestNonzeroFloat64
			}
		}
		out[i] = v
	}
	return out, nil
}

// WaitTimeModel is the affine requested-time → average-wait-time law of
// Fig. 2: wait = Alpha·requested + Gamma.
type WaitTimeModel struct {
	// Alpha is the slope (dimensionless).
	Alpha float64
	// Gamma is the intercept in seconds.
	Gamma float64
}

// Intrepid409 is the published fit for jobs run on 409 processors of
// Intrepid (§5.3): α = 0.95, γ = 3771.84 s ≈ 1.05 h.
var Intrepid409 = WaitTimeModel{Alpha: 0.95, Gamma: 3771.84}

// WaitGroup is one cluster of jobs with similar requested runtimes
// (Fig. 2 clusters all jobs into 20 such groups).
type WaitGroup struct {
	// RequestedSec is the group's requested runtime in seconds.
	RequestedSec float64
	// AvgWaitSec is the group's average wait time in seconds.
	AvgWaitSec float64
	// Jobs is the number of jobs aggregated into the group.
	Jobs int
}

// GenerateWaitTimeLog synthesizes the Fig.-2 data: groups of jobs with
// requested runtimes spread over [minReq, maxReq] seconds whose average
// wait times follow the model plus relative Gaussian noise.
func GenerateWaitTimeLog(model WaitTimeModel, groups int, minReq, maxReq, noise float64, seed uint64) ([]WaitGroup, error) {
	if groups < 2 {
		return nil, fmt.Errorf("trace: need at least 2 groups, got %d", groups)
	}
	if !(minReq > 0) || !(maxReq > minReq) {
		return nil, fmt.Errorf("trace: invalid requested-runtime range [%g, %g]", minReq, maxReq)
	}
	if noise < 0 || noise >= 1 {
		return nil, fmt.Errorf("trace: noise must be in [0, 1), got %g", noise)
	}
	r := rng.New(seed)
	out := make([]WaitGroup, groups)
	for i := range out {
		req := minReq + (maxReq-minReq)*float64(i)/float64(groups-1)
		wait := model.Alpha*req + model.Gamma
		if noise > 0 {
			wait *= 1 + noise*r.NormFloat64()
			if wait < 0 {
				wait = 0
			}
		}
		out[i] = WaitGroup{
			RequestedSec: req,
			AvgWaitSec:   wait,
			Jobs:         50 + int(r.Uint64n(200)),
		}
	}
	return out, nil
}

// BucketWaits clusters per-job (requested runtime, wait) observations
// into `groups` equal-size groups by requested runtime — the Fig.-2
// protocol (20 groups of similar requested runtime) — and returns each
// group's averages, directly consumable by FitWaitTimeModel. It is the
// shared bucketing kernel behind queuesim.WaitProfile and
// cluster.WaitProfile: any simulator that produces per-job requested
// times and waits can derive an affine wait-time law from them.
func BucketWaits(requested, waits []float64, groups int) ([]WaitGroup, error) {
	if groups < 2 {
		return nil, fmt.Errorf("trace: need at least 2 groups, got %d", groups)
	}
	if len(requested) != len(waits) {
		return nil, fmt.Errorf("trace: %d requested times vs %d waits", len(requested), len(waits))
	}
	if len(requested) < groups {
		return nil, fmt.Errorf("trace: %d observations cannot fill %d groups", len(requested), groups)
	}
	req := append([]float64(nil), requested...)
	wt := append([]float64(nil), waits...)
	sort.Sort(&byRequested{req: req, wait: wt})
	out := make([]WaitGroup, 0, groups)
	for g := 0; g < groups; g++ {
		lo := g * len(req) / groups
		hi := (g + 1) * len(req) / groups
		if hi == lo {
			continue
		}
		var reqSum, waitSum float64
		for i := lo; i < hi; i++ {
			reqSum += req[i]
			waitSum += wt[i]
		}
		n := float64(hi - lo)
		out = append(out, WaitGroup{
			RequestedSec: reqSum / n,
			AvgWaitSec:   waitSum / n,
			Jobs:         hi - lo,
		})
	}
	return out, nil
}

// byRequested co-sorts the (requested, wait) pairs by requested time.
type byRequested struct {
	req, wait []float64
}

func (s *byRequested) Len() int           { return len(s.req) }
func (s *byRequested) Less(i, k int) bool { return s.req[i] < s.req[k] }
func (s *byRequested) Swap(i, k int) {
	s.req[i], s.req[k] = s.req[k], s.req[i]
	s.wait[i], s.wait[k] = s.wait[k], s.wait[i]
}

// FitAffine fits y ≈ slope·x + intercept by ordinary least squares.
func FitAffine(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, errors.New("trace: FitAffine needs two equal-length samples of size >= 2")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, errors.New("trace: FitAffine x values are degenerate")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// FitWaitTimeModel runs FitAffine over a wait-time log.
func FitWaitTimeModel(log []WaitGroup) (WaitTimeModel, error) {
	x := make([]float64, len(log))
	y := make([]float64, len(log))
	for i, g := range log {
		x[i] = g.RequestedSec
		y[i] = g.AvgWaitSec
	}
	slope, intercept, err := FitAffine(x, y)
	if err != nil {
		return WaitTimeModel{}, err
	}
	return WaitTimeModel{Alpha: slope, Gamma: intercept}, nil
}
