package trace

import (
	"fmt"
	"math"
)

// DefaultSketchAlpha is the relative-error bound used by the cluster
// simulator's streaming statistics: quantile estimates are within 1%
// of the exact sorted-sample quantile.
const DefaultSketchAlpha = 0.01

const (
	// sketchZeroEps: values with |v| <= sketchZeroEps share one exact
	// "zero" bucket (the log mapping cannot represent 0).
	sketchZeroEps = 1e-12
	// sketchGrid aligns every bucket window to multiples of 32 indices.
	// The alignment makes the representation canonical: a side's window
	// is a pure function of the extreme indices seen, never of the
	// insertion or merge order, which is what makes Merge bitwise
	// commutative (see TestSketchMergeOrderIndependence).
	sketchGrid = 32
)

// QuantileSketch is a mergeable DDSketch-style quantile summary:
// logarithmic buckets with ratio γ = (1+α)/(1-α) guarantee every
// quantile estimate is within relative error α of the exact
// nearest-rank quantile of the inserted values, at O(log spread)
// memory — independent of how many values are inserted. Min, max, sum,
// and count are tracked exactly, and estimates are clamped to
// [Min, Max], so Quantile(0) and Quantile(1) are exact.
//
// The zero value is not usable; construct with NewQuantileSketch or
// NewDefaultSketch. Inserted values must not be NaN or ±Inf.
type QuantileSketch struct {
	alpha      float64
	gamma      float64
	invLnGamma float64
	midScale   float64 // 2/(γ+1): bucket i estimates to midScale·γ^i

	pos  sketchSide
	neg  sketchSide // mirrored: index i holds values in -(γ^(i-1), γ^i]
	zero uint64
	n    uint64
	sum  float64
	min  float64
	max  float64
}

// sketchSide is one sign's dense bucket array. counts[i-base] counts
// values whose log-bucket index is i; lo/hi are the extreme indices
// ever seen, and the window [base, base+len(counts)) is always exactly
// the grid-aligned cover of [lo, hi].
type sketchSide struct {
	counts []uint64
	base   int
	lo, hi int
	n      uint64
}

// NewQuantileSketch returns an empty sketch with relative-error bound
// alpha in (0, 1).
func NewQuantileSketch(alpha float64) (*QuantileSketch, error) {
	if math.IsNaN(alpha) || !(alpha > 0) || !(alpha < 1) {
		return nil, fmt.Errorf("trace: sketch alpha %g must be in (0, 1)", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		alpha:      alpha,
		gamma:      gamma,
		invLnGamma: 1 / math.Log(gamma),
		midScale:   2 / (gamma + 1),
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}, nil
}

// NewDefaultSketch returns an empty sketch at DefaultSketchAlpha.
func NewDefaultSketch() *QuantileSketch {
	s, err := NewQuantileSketch(DefaultSketchAlpha)
	if err != nil {
		panic(err) // unreachable: the default alpha is valid
	}
	return s
}

// Alpha returns the relative-error bound.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// Count returns how many values were inserted.
func (s *QuantileSketch) Count() uint64 { return s.n }

// Sum returns the exact running sum of inserted values.
func (s *QuantileSketch) Sum() float64 { return s.sum }

// Min returns the exact minimum inserted value (0 when empty).
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum inserted value (0 when empty).
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Add inserts one value.
func (s *QuantileSketch) Add(v float64) {
	s.n++
	s.sum += v
	s.min = math.Min(s.min, v)
	s.max = math.Max(s.max, v)
	switch {
	case v > sketchZeroEps:
		s.pos.add(s.index(v))
	case v < -sketchZeroEps:
		s.neg.add(s.index(-v))
	default:
		s.zero++
	}
}

// index maps a positive value to its log-bucket: the smallest i with
// v <= γ^i, so bucket i covers (γ^(i-1), γ^i].
func (s *QuantileSketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) * s.invLnGamma))
}

// mid returns bucket i's estimate 2·γ^i/(γ+1), the point whose
// relative error to any value in (γ^(i-1), γ^i] is at most α.
func (s *QuantileSketch) mid(i int) float64 {
	return s.midScale * math.Pow(s.gamma, float64(i))
}

// Merge folds o into s. Panics if the two sketches were built with
// different alphas (their buckets would not line up). The result is
// bitwise independent of merge order: counts add as integers, sum as a
// single commutative float add, min/max via math.Min/Max, and the
// grid-aligned windows depend only on the union of indices seen.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if math.Float64bits(s.alpha) != math.Float64bits(o.alpha) {
		panic("trace: merging sketches with different alpha")
	}
	s.n += o.n
	s.zero += o.zero
	s.sum += o.sum
	s.min = math.Min(s.min, o.min)
	s.max = math.Max(s.max, o.max)
	s.pos.merge(&o.pos)
	s.neg.merge(&o.neg)
}

// Clone returns an independent copy.
func (s *QuantileSketch) Clone() *QuantileSketch {
	c := *s
	c.pos = s.pos.clone()
	c.neg = s.neg.clone()
	return &c
}

// Equal reports bitwise equality of the two sketches' contents —
// counts, windows, and the exact aggregates compared by Float64bits.
func (s *QuantileSketch) Equal(o *QuantileSketch) bool {
	if math.Float64bits(s.alpha) != math.Float64bits(o.alpha) ||
		s.n != o.n || s.zero != o.zero ||
		math.Float64bits(s.sum) != math.Float64bits(o.sum) ||
		math.Float64bits(s.min) != math.Float64bits(o.min) ||
		math.Float64bits(s.max) != math.Float64bits(o.max) {
		return false
	}
	return s.pos.equal(&o.pos) && s.neg.equal(&o.neg)
}

// Quantile returns the nearest-rank p-quantile estimate: the bucket
// midpoint covering the ceil(p·n)-th smallest inserted value, clamped
// to [Min, Max]. The estimate is within relative error Alpha of the
// exact nearest-rank quantile. An empty sketch returns 0; p is clamped
// to [0, 1].
func (s *QuantileSketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	if !(p > 0) {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	// Rank 1 is exactly the minimum and rank n exactly the maximum,
	// both tracked precisely — answer them without touching buckets.
	if rank == 1 {
		return s.min
	}
	if rank == s.n {
		return s.max
	}
	cum := uint64(0)
	// Most negative first: for mirrored indices, larger i is more
	// negative, so walk the negative side from hi down to lo.
	if s.neg.n > 0 {
		for i := s.neg.hi; i >= s.neg.lo; i-- {
			cum += s.neg.counts[i-s.neg.base]
			if cum >= rank {
				return s.clamp(-s.mid(i))
			}
		}
	}
	cum += s.zero
	if cum >= rank {
		return s.clamp(0)
	}
	if s.pos.n > 0 {
		for i := s.pos.lo; i <= s.pos.hi; i++ {
			cum += s.pos.counts[i-s.pos.base]
			if cum >= rank {
				return s.clamp(s.mid(i))
			}
		}
	}
	return s.max // unreachable: rank <= n and the buckets cover all n
}

// clamp bounds an estimate by the exact extremes. Clamping never
// weakens the error bound: the exact quantile lies in [min, max], so
// moving the estimate to the nearer boundary moves it toward it.
func (s *QuantileSketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Histogram converts the sketch into the fixed-width Histogram type
// used by cmd/tracefit: equal-width bins over [Min, Max], each log
// bucket's count assigned to the bin containing its (clamped) midpoint
// estimate.
func (s *QuantileSketch) Histogram(bins int) (*Histogram, error) {
	if s.n == 0 {
		return nil, fmt.Errorf("trace: histogram needs samples")
	}
	if bins < 1 {
		return nil, fmt.Errorf("trace: histogram needs at least 1 bin, got %d", bins)
	}
	lo, hi := s.Min(), s.Max()
	if hi <= lo {
		hi = lo + 1 // degenerate sketch: one wide bin
	}
	h := &Histogram{
		Edges:  make([]float64, bins+1),
		Counts: make([]int, bins),
		N:      int(s.n),
	}
	for i := range h.Edges {
		h.Edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	w := (hi - lo) / float64(bins)
	put := func(v float64, c uint64) {
		if c == 0 {
			return
		}
		i := int((s.clamp(v) - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i] += int(c)
	}
	if s.neg.counts != nil {
		for i := s.neg.hi; i >= s.neg.lo; i-- {
			put(-s.mid(i), s.neg.counts[i-s.neg.base])
		}
	}
	put(0, s.zero)
	if s.pos.counts != nil {
		for i := s.pos.lo; i <= s.pos.hi; i++ {
			put(s.mid(i), s.pos.counts[i-s.pos.base])
		}
	}
	return h, nil
}

func (d *sketchSide) add(i int) {
	d.n++
	if d.counts == nil {
		d.lo, d.hi = i, i
		d.base = sketchFloor(i)
		d.counts = make([]uint64, sketchCeil(i+1)-d.base)
	} else if i < d.lo || i > d.hi {
		if i < d.lo {
			d.lo = i
		}
		if i > d.hi {
			d.hi = i
		}
		d.grow()
	}
	d.counts[i-d.base]++
}

// grow reallocates the window to the grid-aligned cover of [lo, hi].
func (d *sketchSide) grow() {
	base := sketchFloor(d.lo)
	top := sketchCeil(d.hi + 1)
	if base == d.base && top == d.base+len(d.counts) {
		return
	}
	next := make([]uint64, top-base)
	copy(next[d.base-base:], d.counts)
	d.base = base
	d.counts = next
}

func (d *sketchSide) merge(o *sketchSide) {
	if o.counts == nil {
		return
	}
	if d.counts == nil {
		d.lo, d.hi, d.base = o.lo, o.hi, o.base
		d.counts = make([]uint64, len(o.counts))
		copy(d.counts, o.counts)
		d.n = o.n
		return
	}
	if o.lo < d.lo {
		d.lo = o.lo
	}
	if o.hi > d.hi {
		d.hi = o.hi
	}
	d.grow()
	for i, c := range o.counts {
		d.counts[o.base+i-d.base] += c
	}
	d.n += o.n
}

func (d *sketchSide) clone() sketchSide {
	c := *d
	if d.counts != nil {
		c.counts = make([]uint64, len(d.counts))
		copy(c.counts, d.counts)
	}
	return c
}

func (d *sketchSide) equal(o *sketchSide) bool {
	if d.n != o.n || len(d.counts) != len(o.counts) {
		return false
	}
	if d.counts == nil {
		return true
	}
	if d.base != o.base || d.lo != o.lo || d.hi != o.hi {
		return false
	}
	for i, c := range d.counts {
		if c != o.counts[i] {
			return false
		}
	}
	return true
}

// sketchFloor rounds toward -Inf to a multiple of sketchGrid.
func sketchFloor(i int) int {
	q := i / sketchGrid
	if i%sketchGrid != 0 && i < 0 {
		q--
	}
	return q * sketchGrid
}

// sketchCeil rounds toward +Inf to a multiple of sketchGrid.
func sketchCeil(i int) int { return sketchFloor(i + sketchGrid - 1) }
