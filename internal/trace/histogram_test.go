package trace

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramCountsSum(t *testing.T) {
	samples := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 9.9, 10}
	h, err := NewHistogram(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(samples) || h.N != len(samples) {
		t.Errorf("counts sum %d, N %d, want %d", total, h.N, len(samples))
	}
	if h.Edges[0] != 1 || h.Edges[len(h.Edges)-1] != 10 {
		t.Errorf("edges [%g, %g]", h.Edges[0], h.Edges[len(h.Edges)-1])
	}
	// Bin width 3: [1,4) has 6, [4,7) has 1 (the 4), [7,10] has 2.
	if h.Counts[0] != 6 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestHistogramMaxSampleInLastBin(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[4] != 1 {
		t.Errorf("max sample not in last bin: %v", h.Counts)
	}
}

func TestHistogramModeOfTrace(t *testing.T) {
	samples, err := GenerateRunTrace(VBMQA, 5000, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHistogram(samples, 40)
	if err != nil {
		t.Fatal(err)
	}
	// LogNormal mode = e^{μ-σ²} ≈ 1178 s for VBMQA.
	want := math.Exp(VBMQA.Mu - VBMQA.Sigma*VBMQA.Sigma)
	if math.Abs(h.Mode()-want) > 0.15*want {
		t.Errorf("mode %g, want ≈%g", h.Mode(), want)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("degenerate counts = %v", h.Counts)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram([]float64{math.NaN()}, 3); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 2, 3, 3, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(30)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	// The fullest bin has the longest bar.
	if !strings.Contains(lines[2], strings.Repeat("#", 30)) {
		t.Errorf("fullest bin bar wrong:\n%s", out)
	}
	if h.Render(0) == "" {
		t.Error("default width render empty")
	}
}
