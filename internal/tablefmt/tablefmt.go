// Package tablefmt renders the experiment results as aligned text
// tables (mirroring the paper's tables) and as CSV (for re-plotting the
// figures).
package tablefmt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular table with a header row.
type Table struct {
	// Title is printed above the table.
	Title string
	// Header holds the column names.
	Header []string
	rows   [][]string
}

// New returns a table with the given title and columns.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 format as %.2f, everything else as %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, Num(v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Num formats a float in the paper's table style (two decimals), with
// "-" for NaN (invalid entries, as in Table 3).
func Num(v float64) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the header and rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
