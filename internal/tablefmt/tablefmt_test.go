package tablefmt

import (
	"math"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("Demo", "Name", "Value")
	tb.AddRow("alpha", "1.00")
	tb.AddRow("a-much-longer-name", "2.50")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "1.00" and "2.50" start at the same offset.
	i1 := strings.Index(lines[3], "1.00")
	i2 := strings.Index(lines[4], "2.50")
	if i1 != i2 || i1 < 0 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("x")
	tb.AddRow("1", "2", "3")
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Error("overlong row not truncated")
	}
}

func TestAddRowfFormats(t *testing.T) {
	tb := New("", "S", "F", "I")
	tb.AddRowf("s", 1.2345, 42)
	out := tb.String()
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "42") {
		t.Errorf("unexpected formatting:\n%s", out)
	}
}

func TestNumNaN(t *testing.T) {
	if Num(math.NaN()) != "-" {
		t.Error("NaN should render as -")
	}
	if Num(2.5) != "2.50" {
		t.Errorf("Num(2.5) = %q", Num(2.5))
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New("ignored", "x", "y")
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestPlotBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	out := Plot("parabola", xs, ys, 40, 10)
	if !strings.Contains(out, "parabola") || !strings.Contains(out, "*") {
		t.Errorf("plot missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // title + 10 rows + axis + labels
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
	// Axis labels present.
	if !strings.Contains(out, "16") || !strings.Contains(out, "0") {
		t.Errorf("missing y labels:\n%s", out)
	}
}

func TestPlotNaNGaps(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, math.NaN(), math.NaN(), 2}
	out := Plot("", xs, ys, 20, 5)
	if strings.Count(out, "*") != 2 {
		t.Errorf("want 2 points, got:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	if Plot("", nil, nil, 20, 5) != "" {
		t.Error("empty input should render nothing")
	}
	if Plot("", []float64{1}, []float64{math.NaN()}, 20, 5) != "" {
		t.Error("all-NaN input should render nothing")
	}
	// Constant series must not divide by zero.
	out := Plot("", []float64{1, 2}, []float64{3, 3}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Error("constant series lost its points")
	}
}
