package tablefmt

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders an ASCII scatter/line plot of (x, y) points into a
// width×height character grid — enough to eyeball the Fig.-3 curves in
// a terminal. NaN y values are gaps (the invalid-candidate regions of
// the paper's plots). Returns "" when no finite point exists.
func Plot(title string, xs, ys []float64, width, height int) string {
	if width < 10 {
		width = 60
	}
	if height < 4 {
		height = 12
	}
	if len(xs) != len(ys) || len(xs) == 0 {
		return ""
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	finite := 0
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			continue
		}
		finite++
		xMin = math.Min(xMin, xs[i])
		xMax = math.Max(xMax, xs[i])
		yMin = math.Min(yMin, ys[i])
		yMax = math.Max(yMax, ys[i])
	}
	if finite == 0 {
		return ""
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			continue
		}
		c := int((xs[i] - xMin) / (xMax - xMin) * float64(width-1))
		r := height - 1 - int((ys[i]-yMin)/(yMax-yMin)*float64(height-1))
		grid[r][c] = '*'
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%-8.3g", yMax)
		case height - 1:
			label = fmt.Sprintf("%-8.3g", yMin)
		}
		b.WriteString(label)
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 8))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(fmt.Sprintf("%9s%-*.4g%*.4g\n", "", width/2, xMin, width-width/2, xMax))
	return b.String()
}
