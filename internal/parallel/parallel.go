// Package parallel provides the small worker-pool substrate used by the
// Monte-Carlo engine and the experiment drivers: bounded-goroutine
// iteration over index ranges with deterministic work assignment and
// panic propagation. Work is split into contiguous blocks so that each
// worker can own one RNG stream and results stay reproducible whatever
// the scheduling order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// activeWorkers counts live worker goroutines across all ForEach /
// ForEachBlock calls in the process; peakWorkers is its high-water mark
// since the last ResetPeakWorkers. The pair is the oversubscription
// gauge: nested evaluation calls are required to run with workers=1
// (inline, spawning nothing), so the peak observed during a driver run
// must never exceed the driver's own fan-out. Regression tests assert
// exactly that.
var (
	activeWorkers atomic.Int64
	peakWorkers   atomic.Int64
)

// noteWorkerStart runs once per spawned worker goroutine; the CAS loop
// keeps it lock- and allocation-free.
//
//repro:hotpath
func noteWorkerStart() {
	a := activeWorkers.Add(1)
	for {
		p := peakWorkers.Load()
		if a <= p || peakWorkers.CompareAndSwap(p, a) {
			return
		}
	}
}

//repro:hotpath
func noteWorkerExit() {
	activeWorkers.Add(-1)
}

// ActiveWorkers returns the number of currently live worker goroutines.
func ActiveWorkers() int { return int(activeWorkers.Load()) }

// PeakWorkers returns the maximum number of simultaneously live worker
// goroutines observed since the last ResetPeakWorkers (or process
// start). Inline execution (workers <= 1) spawns no goroutines and is
// not counted.
func PeakWorkers() int { return int(peakWorkers.Load()) }

// ResetPeakWorkers rebases the high-water mark to the current live
// count, so a test can bracket one driver call.
func ResetPeakWorkers() { peakWorkers.Store(activeWorkers.Load()) }

// Workers returns the default worker count: GOMAXPROCS capped at n (no
// point spawning more workers than items).
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects Workers(n)). Iterations are distributed in
// contiguous blocks: worker w handles [w*n/W, (w+1)*n/W). A panic in
// any iteration is re-raised on the caller's goroutine, with its
// original value, after all workers stop; when several workers panic,
// the first value recovered wins.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 || workers > n {
		workers = Workers(n)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			noteWorkerStart()
			defer wg.Done()
			defer noteWorkerExit()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		// Re-raise the original value: wrapping it in a string would
		// break callers that recover and inspect sentinel errors.
		panic(panicked)
	}
}

// ForEachBlock runs fn(worker, lo, hi) once per worker with the block
// boundaries that ForEach would use. It is the building block for
// reductions where each worker accumulates into private state (e.g. one
// RNG stream and one partial sum per worker).
func ForEachBlock(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 || workers > n {
		workers = Workers(n)
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			noteWorkerStart()
			defer wg.Done()
			defer noteWorkerExit()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map computes out[i] = fn(i) for i in [0, n) in parallel and returns
// the slice.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// SumBlocks computes Σ_{i=0}^{n-1} fn(i) with one partial sum per
// worker, summed deterministically in worker order so the result does
// not depend on scheduling.
func SumBlocks(n, workers int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 || workers > n {
		workers = Workers(n)
	}
	partial := make([]float64, workers)
	ForEachBlock(n, workers, func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += fn(i)
		}
		partial[w] = s
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}
