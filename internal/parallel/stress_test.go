package parallel

import (
	"errors"
	"sync"
	"testing"
)

// TestForEachStressCoverage hammers ForEach across worker/size shapes
// (including workers > n, n == 0, and n == 1) with workers feeding a
// shared accumulator. Run under -race this doubles as the data-race
// gate for the Monte-Carlo substrate: every index must be visited
// exactly once and the mutex-guarded sum must come out exact.
func TestForEachStressCoverage(t *testing.T) {
	shapes := []struct{ n, workers int }{
		{0, 4},    // empty range: no worker may fire
		{1, 8},    // single item, more workers than items
		{7, 16},   // workers > n
		{64, 3},   // uneven blocks
		{1000, 0}, // default worker count
		{1000, 1}, // sequential fast path
		{4096, 7},
	}
	for _, s := range shapes {
		visits := make([]int, s.n)
		var mu sync.Mutex
		sum := 0
		ForEach(s.n, s.workers, func(i int) {
			mu.Lock()
			visits[i]++
			sum += i
			mu.Unlock()
		})
		want := s.n * (s.n - 1) / 2
		if sum != want {
			t.Errorf("n=%d workers=%d: shared sum = %d, want %d", s.n, s.workers, sum, want)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", s.n, s.workers, i, v)
			}
		}
	}
}

// TestForEachPanicValuePreserved requires the original panic value —
// not a stringified copy — to reach the caller, so recover() can
// compare sentinel errors by identity.
func TestForEachPanicValuePreserved(t *testing.T) {
	sentinel := errors.New("worker exploded")
	defer func() {
		if r := recover(); !errors.Is(asError(t, r), sentinel) {
			t.Fatalf("recovered %#v, want the original sentinel error", r)
		}
	}()
	ForEach(100, 8, func(i int) {
		if i == 37 {
			panic(sentinel)
		}
	})
	t.Fatal("panic did not propagate")
}

// TestForEachBlockPanicValuePreserved is the ForEachBlock analogue.
func TestForEachBlockPanicValuePreserved(t *testing.T) {
	sentinel := errors.New("block exploded")
	defer func() {
		if r := recover(); !errors.Is(asError(t, r), sentinel) {
			t.Fatalf("recovered %#v, want the original sentinel error", r)
		}
	}()
	ForEachBlock(100, 4, func(w, lo, hi int) {
		if w == 2 {
			panic(sentinel)
		}
	})
	t.Fatal("panic did not propagate")
}

func asError(t *testing.T, r any) error {
	t.Helper()
	err, ok := r.(error)
	if !ok {
		t.Fatalf("recovered non-error value %#v", r)
	}
	return err
}

// TestForEachAllWorkersPanic: when every worker panics concurrently,
// exactly one of the original values must surface (no lost panic, no
// mangled aggregate).
func TestForEachAllWorkersPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if _, ok := r.(int); !ok {
			t.Fatalf("recovered %#v, want one of the workers' int values", r)
		}
	}()
	ForEach(64, 8, func(i int) { panic(i) })
}

// TestForEachBlockPartitionDeterministic pins the block-partition
// contract: the (worker, lo, hi) assignment is a pure function of
// (n, workers), repeated runs agree, and the blocks tile [0, n)
// exactly. Per-worker RNG-stream reproducibility rides on this.
func TestForEachBlockPartitionDeterministic(t *testing.T) {
	type block struct{ w, lo, hi int }
	collect := func(n, workers int) []block {
		blocks := make([]block, 0, workers)
		var mu sync.Mutex
		ForEachBlock(n, workers, func(w, lo, hi int) {
			mu.Lock()
			blocks = append(blocks, block{w, lo, hi})
			mu.Unlock()
		})
		return blocks
	}
	for _, shape := range []struct{ n, workers int }{{10, 3}, {1000, 7}, {5, 8}, {1, 1}} {
		a := collect(shape.n, shape.workers)
		b := collect(shape.n, shape.workers)
		if len(a) != len(b) {
			t.Fatalf("n=%d workers=%d: partition size changed between runs: %d vs %d",
				shape.n, shape.workers, len(a), len(b))
		}
		covered := make([]bool, shape.n)
		for _, blk := range a {
			if blk.lo != blk.w*shape.n/len(a) || blk.hi != (blk.w+1)*shape.n/len(a) {
				t.Errorf("n=%d workers=%d: worker %d got [%d,%d), want the w*n/W formula",
					shape.n, shape.workers, blk.w, blk.lo, blk.hi)
			}
			for i := blk.lo; i < blk.hi; i++ {
				if covered[i] {
					t.Fatalf("n=%d workers=%d: index %d covered twice", shape.n, shape.workers, i)
				}
				covered[i] = true
			}
		}
		for i, ok := range covered {
			if !ok {
				t.Fatalf("n=%d workers=%d: index %d never covered", shape.n, shape.workers, i)
			}
		}
	}
}

// TestSumBlocksMatchesSequential checks the deterministic reduction
// against a plain loop under concurrent execution. The summands are
// exact multiples of 0.5 with a small total, so every partial sum is
// exactly representable and the result is independent of blocking.
func TestSumBlocksMatchesSequential(t *testing.T) {
	f := func(i int) float64 { return float64(i%17) * 0.5 }
	n := 10000
	want := 0.0
	for i := 0; i < n; i++ {
		want += f(i)
	}
	for _, workers := range []int{1, 2, 5, 16} {
		got := SumBlocks(n, workers, f)
		if got != want { //lint:ignore floatcmp summands are exact halves, so the reduction is exact for any blocking
			t.Errorf("SumBlocks(workers=%d) = %g, want %g", workers, got, want)
		}
	}
}
