package parallel

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 100} {
		const n = 1000
		var hits [n]int32
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Error("ForEach called fn for empty range")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Errorf("panic value %v does not mention original", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachBlockPartition(t *testing.T) {
	const n = 97
	for _, workers := range []int{1, 2, 5, 13} {
		var covered [n]int32
		ForEachBlock(n, workers, func(w, lo, hi int) {
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("bad block [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestMapOrderPreserved(t *testing.T) {
	out := Map(50, 4, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestSumBlocksMatchesSerial(t *testing.T) {
	f := func(nRaw uint16, workersRaw uint8) bool {
		n := int(nRaw%2000) + 1
		workers := int(workersRaw%8) + 1
		fn := func(i int) float64 { return math.Sqrt(float64(i)) + 1 }
		want := 0.0
		for i := 0; i < n; i++ {
			want += fn(i)
		}
		got := SumBlocks(n, workers, fn)
		return math.Abs(got-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSumBlocksDeterministic(t *testing.T) {
	fn := func(i int) float64 { return 1 / (1 + float64(i)) }
	a := SumBlocks(100000, 4, fn)
	b := SumBlocks(100000, 4, fn)
	//lint:ignore floatcmp the test asserts bit-for-bit reproducibility, which is exactly an equality claim
	if a != b {
		t.Errorf("same worker count gave different sums: %v vs %v", a, b)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 30); w < 1 {
		t.Errorf("Workers(big) = %d", w)
	}
}
