package parallel

import (
	"sync"
	"testing"
)

// TestWorkerGaugeCountsSpawnedWorkers: the gauge sees exactly the
// goroutines a parallel call spawns, and inline execution none.
func TestWorkerGaugeCountsSpawnedWorkers(t *testing.T) {
	ResetPeakWorkers()
	ForEach(100, 1, func(int) {})
	if got := PeakWorkers(); got != 0 {
		t.Errorf("inline ForEach spawned %d workers, want 0", got)
	}

	ResetPeakWorkers()
	// Hold all workers at a barrier so every one is live at once.
	var barrier sync.WaitGroup
	barrier.Add(4)
	ForEachBlock(4, 4, func(w, lo, hi int) {
		barrier.Done()
		barrier.Wait()
	})
	if got := PeakWorkers(); got != 4 {
		t.Errorf("peak = %d, want 4", got)
	}
	if got := ActiveWorkers(); got != 0 {
		t.Errorf("active after return = %d, want 0", got)
	}
}

// TestWorkerGaugeSeesNesting: a worker that itself fans out drives the
// peak above its own fan-out — the signature of oversubscription the
// experiments regression test relies on. The inner barrier keeps both
// nested workers live at once, so the peak is at least 3 (outer worker
// plus its two children) under any schedule.
func TestWorkerGaugeSeesNesting(t *testing.T) {
	ResetPeakWorkers()
	ForEachBlock(2, 2, func(w, lo, hi int) {
		if w != 0 {
			return
		}
		var barrier sync.WaitGroup
		barrier.Add(2)
		ForEachBlock(2, 2, func(iw, ilo, ihi int) {
			barrier.Done()
			barrier.Wait()
		})
	})
	if got := PeakWorkers(); got < 3 {
		t.Errorf("nested fan-out peak = %d, want >= 3", got)
	}
}
