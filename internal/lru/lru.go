// Package lru provides a small, concurrency-safe, bounded
// least-recently-used cache. It backs the two caching layers of the
// serving stack: the Planner's per-distribution derived state
// (workloads, discretizations) and the plan service's response cache.
package lru

import (
	"container/list"
	"sync"
)

// entry is one key/value pair stored in the recency list.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Cache is a bounded LRU map. The zero value is not usable; construct
// with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

// New returns a cache holding at most capacity entries; capacity < 1
// is treated as 1.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key, marking it most recently used, and
// evicts the least recently used entry if the cache is over capacity.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = val
		return
	}
	el := c.ll.PushFront(&entry[K, V]{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Len returns the number of entries currently cached.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }
