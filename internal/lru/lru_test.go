package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutEvict(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a lost: %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d, %v", v, ok)
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Errorf("len %d cap %d", c.Len(), c.Cap())
	}
}

func TestPutUpdatesInPlace(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 7)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v != 7 {
		t.Errorf("a = %d", v)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%12)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}
