// Package optimize provides the one-dimensional root finding and
// minimization routines used by the reservation library: bisection and
// Brent root finding (quantile fallbacks, calibration) and
// golden-section minimization (refining the brute-force search for the
// optimal first reservation length, §5.2 of the paper).
package optimize

import (
	"errors"
	"math"
)

// ErrBracket is returned when the supplied interval does not bracket a
// root (f(a) and f(b) have the same sign).
var ErrBracket = errors.New("optimize: interval does not bracket a root")

// ErrNoConverge is returned when an iteration fails to reach tolerance
// within its iteration budget.
var ErrNoConverge = errors.New("optimize: iteration did not converge")

// defaultIter bounds iterative loops.
const defaultIter = 200

// Bisect finds x in [a, b] with f(x) = 0 by bisection. f(a) and f(b)
// must have opposite signs (or one endpoint must be an exact root).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrBracket
	}
	for i := 0; i < defaultIter; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol*(1+math.Abs(m)) {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse
// quadratic interpolation with bisection safeguard). f(a) and f(b) must
// bracket the root.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrBracket
	}
	c, fc := a, fa
	d := b - a
	e := d
	for i := 0; i < defaultIter; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		const machEps = 2.220446049250313e-16
		tol1 := 2*machEps*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			//lint:ignore floatcmp Brent's method selects secant vs inverse quadratic on exact bracket identity
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if math.Signbit(fb) != math.Signbit(fc) {
			// keep the bracket [b, c]
		} else {
			c, fc = a, fa
			d = b - a
			e = d
		}
	}
	return b, ErrNoConverge
}

// invPhi is 1/φ, the golden-section ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal function f on [a, b] and returns
// the minimizing x. For non-unimodal f it converges to some local
// minimum inside the interval.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for i := 0; i < defaultIter && (b-a) > tol*(1+math.Abs(a)+math.Abs(b)); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	return 0.5 * (a + b)
}

// MinimizeGrid evaluates f at n+1 equally spaced points on [a, b] and
// returns the best point and value. It mirrors the paper's brute-force
// scan over first-reservation candidates; NaN values (invalid
// candidates) are skipped.
func MinimizeGrid(f func(float64) float64, a, b float64, n int) (x, fx float64) {
	if n < 1 {
		n = 1
	}
	x, fx = math.NaN(), math.Inf(1)
	for i := 0; i <= n; i++ {
		xi := a + (b-a)*float64(i)/float64(n)
		v := f(xi)
		if !math.IsNaN(v) && v < fx {
			x, fx = xi, v
		}
	}
	return x, fx
}
