package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Errorf("bisect sqrt2 = %.15g", x)
	}
	// Exact roots at the endpoints.
	x, err = Bisect(func(x float64) float64 { return x }, 0, 1, 0)
	if err != nil || x != 0 {
		t.Errorf("endpoint root: x=%g err=%v", x, err)
	}
	// Non-bracketing interval.
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 0); err != ErrBracket {
		t.Errorf("expected ErrBracket, got %v", err)
	}
}

func TestBrent(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cos", math.Cos, 1, 2, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{"expm1", func(x float64) float64 { return math.Exp(x) - 3 }, 0, 2, math.Log(3)},
	}
	for _, c := range cases {
		x, err := Brent(c.f, c.a, c.b, 1e-14)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(x-c.want) > 1e-9 {
			t.Errorf("%s: got %.15g want %.15g", c.name, x, c.want)
		}
	}
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 0); err != ErrBracket {
		t.Errorf("expected ErrBracket, got %v", err)
	}
}

func TestBrentAgreesWithBisect(t *testing.T) {
	f := func(shift float64) bool {
		s := math.Mod(shift, 5)
		g := func(x float64) float64 { return math.Tanh(x - s) }
		a, b := s-3, s+3
		xb, err1 := Bisect(g, a, b, 1e-13)
		xr, err2 := Brent(g, a, b, 1e-13)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(xb-xr) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGoldenSection(t *testing.T) {
	// Quadratic with minimum at 3.
	x := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 1e-12)
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("golden quadratic min = %g, want 3", x)
	}
	// cosh-like asymmetric bowl with minimum at ln 2.
	x = GoldenSection(func(x float64) float64 { return math.Exp(x) + 2*math.Exp(-x) }, -3, 3, 1e-12)
	if math.Abs(x-0.5*math.Log(2)) > 1e-6 {
		t.Errorf("golden exp min = %g, want %g", x, 0.5*math.Log(2))
	}
	// Reversed interval is accepted.
	x = GoldenSection(func(x float64) float64 { return x * x }, 5, -5, 1e-12)
	if math.Abs(x) > 1e-6 {
		t.Errorf("golden reversed = %g, want 0", x)
	}
}

func TestMinimizeGrid(t *testing.T) {
	x, fx := MinimizeGrid(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 10, 1000)
	if math.Abs(x-2.5) > 0.011 {
		t.Errorf("grid min x = %g, want ≈2.5", x)
	}
	if fx > 1e-3 {
		t.Errorf("grid min value = %g, want ≈0", fx)
	}

	// NaN regions (invalid candidates) are skipped.
	f := func(x float64) float64 {
		if x < 5 {
			return math.NaN()
		}
		return x
	}
	x, fx = MinimizeGrid(f, 0, 10, 100)
	if x < 5 || math.IsNaN(fx) {
		t.Errorf("grid with NaN region: x=%g fx=%g", x, fx)
	}

	// All-NaN yields NaN/Inf sentinel.
	x, fx = MinimizeGrid(func(float64) float64 { return math.NaN() }, 0, 1, 10)
	if !math.IsNaN(x) || !math.IsInf(fx, 1) {
		t.Errorf("all-NaN grid: x=%g fx=%g", x, fx)
	}
}
