package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
)

func TestStatsExponentialClosedForms(t *testing.T) {
	// Exp(1) with the arithmetic sequence t_i = i:
	// E[attempts] = Σ_{i>=0} e^{-i} = 1/(1-e^{-1});
	// E[reserved] = Σ (i+1)e^{-i} = 1/(1-e^{-1})²;
	// E[used] = 1 + Σ_{i>=1} i·e^{-i} = 1 + e^{-1}/(1-e^{-1})².
	d := dist.MustExponential(1)
	s := NewSequence(func(i int, _ []float64) (float64, bool) {
		return float64(i + 1), true
	})
	st, err := Stats(ReservationOnly, d, s)
	if err != nil {
		t.Fatal(err)
	}
	q := 1 - math.Exp(-1)
	if math.Abs(st.ExpectedAttempts-1/q) > 1e-9 {
		t.Errorf("attempts = %.9g, want %.9g", st.ExpectedAttempts, 1/q)
	}
	if math.Abs(st.ExpectedReserved-1/(q*q)) > 1e-9 {
		t.Errorf("reserved = %.9g, want %.9g", st.ExpectedReserved, 1/(q*q))
	}
	wantUsed := 1 + math.Exp(-1)/(q*q)
	if math.Abs(st.ExpectedUsed-wantUsed) > 1e-9 {
		t.Errorf("used = %.9g, want %.9g", st.ExpectedUsed, wantUsed)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Errorf("utilization = %g", st.Utilization)
	}
	// Consistency with ExpectedCost.
	e, err := ExpectedCost(ReservationOnly, d, s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.ExpectedCost-e) > 1e-9 {
		t.Errorf("stats cost %g vs ExpectedCost %g", st.ExpectedCost, e)
	}
}

func TestStatsAttemptDistribution(t *testing.T) {
	// Uniform(10, 20) with S = (15, 20): P(1 attempt) = 0.5, P(2) = 0.5.
	d := dist.MustUniform(10, 20)
	s, err := NewExplicitSequence(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stats(ReservationOnly, d, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.AttemptProbs) < 2 {
		t.Fatalf("attempt probs = %v", st.AttemptProbs)
	}
	if math.Abs(st.AttemptProbs[0]-0.5) > 1e-12 || math.Abs(st.AttemptProbs[1]-0.5) > 1e-12 {
		t.Errorf("attempt probs = %v, want [0.5 0.5]", st.AttemptProbs)
	}
	total := 0.0
	for _, p := range st.AttemptProbs {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("attempt probs sum to %g", total)
	}
	if math.Abs(st.ExpectedAttempts-1.5) > 1e-12 {
		t.Errorf("attempts = %g, want 1.5", st.ExpectedAttempts)
	}
	// Reserved: 15 + 0.5·20 = 25; used: E[X] + 15·P(X>=15) = 15+7.5.
	if math.Abs(st.ExpectedReserved-25) > 1e-12 {
		t.Errorf("reserved = %g, want 25", st.ExpectedReserved)
	}
	if math.Abs(st.ExpectedUsed-22.5) > 1e-12 {
		t.Errorf("used = %g, want 22.5", st.ExpectedUsed)
	}
}

func TestStatsUncovered(t *testing.T) {
	d := dist.MustUniform(10, 20)
	s, _ := NewExplicitSequence(15)
	if _, err := Stats(ReservationOnly, d, s); !errors.Is(err, ErrUncovered) {
		t.Errorf("err = %v, want ErrUncovered", err)
	}
	if _, err := Stats(CostModel{}, d, s); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestCostQuantileMonotone(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 1}
	s := NewSequence(func(i int, _ []float64) (float64, bool) {
		return d.Mean() * math.Pow(2, float64(i)), true
	})
	prev := -1.0
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		c, err := CostQuantile(m, d, s, p)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev {
			t.Errorf("cost quantile decreased at %g: %g after %g", p, c, prev)
		}
		prev = c
	}
	// Median cost equals the cost of the median duration.
	med := dist.Median(d)
	want, _, err := m.RunCost(s.Clone(), med)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CostQuantile(m, d, s.Clone(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("median cost %g vs %g", got, want)
	}
	if _, err := CostQuantile(m, d, s, 1.5); err == nil {
		t.Error("p out of range accepted")
	}
	if c, err := CostQuantile(m, d, s, 1); err != nil || !math.IsInf(c, 1) {
		t.Errorf("p=1 on unbounded support: %g, %v", c, err)
	}
}

func TestStatsAgreeWithTable1(t *testing.T) {
	// Across Table-1 laws with a doubling sequence: attempts >= 1,
	// utilization in (0, 1], used <= reserved, attempt probs sum to ~1.
	for _, d := range dist.Table1() {
		mean := d.Mean()
		s := NewSequence(func(i int, _ []float64) (float64, bool) {
			return mean * math.Pow(2, float64(i)), true
		})
		st, err := Stats(ReservationOnly, d, s)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if st.ExpectedAttempts < 1 {
			t.Errorf("%s: attempts %g < 1", d.Name(), st.ExpectedAttempts)
		}
		if st.ExpectedUsed > st.ExpectedReserved+1e-9 {
			t.Errorf("%s: used %g > reserved %g", d.Name(), st.ExpectedUsed, st.ExpectedReserved)
		}
		if st.Utilization <= 0 || st.Utilization > 1+1e-12 {
			t.Errorf("%s: utilization %g", d.Name(), st.Utilization)
		}
		total := 0.0
		for _, p := range st.AttemptProbs {
			if p < -1e-12 {
				t.Errorf("%s: negative attempt prob %g", d.Name(), p)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-6 {
			t.Errorf("%s: attempt probs sum %g", d.Name(), total)
		}
	}
}
