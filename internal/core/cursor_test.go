package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
)

// cursorModels are the cost models the parity tests probe: the paper's
// RESERVATIONONLY instance and a general affine model exercising β and γ.
var cursorModels = []CostModel{
	ReservationOnly,
	{Alpha: 0.95, Beta: 1, Gamma: 1.05},
}

// TestRecurrenceCursorMatchesSequence: the allocation-free cursor must
// yield exactly the values (and the same terminal error) as the
// materialized SequenceFromFirstTail, across all paper distributions,
// several first reservations, and both cost models.
func TestRecurrenceCursorMatchesSequence(t *testing.T) {
	for _, m := range cursorModels {
		for _, d := range dist.Table1() {
			lo, _ := d.Support()
			hi := BoundFirstReservation(m, d)
			for _, frac := range []float64{0.02, 0.2, 0.5, 0.9, 1.0} {
				t1 := lo + (hi-lo)*frac
				for _, tailEps := range []float64{0, DefaultTailEps} {
					s := SequenceFromFirstTail(m, d, t1, tailEps)
					cur := NewRecurrenceCursor(m, d, t1, tailEps)
					for i := 0; i < 200; i++ {
						want, errS := s.At(i)
						got, errC := cur.Next()
						if (errS == nil) != (errC == nil) {
							t.Fatalf("%s %v t1=%g eps=%g i=%d: sequence err %v, cursor err %v",
								d.Name(), m, t1, tailEps, i, errS, errC)
						}
						if errS != nil {
							if !errors.Is(errC, errS) {
								t.Fatalf("%s t1=%g i=%d: error mismatch: sequence %v, cursor %v",
									d.Name(), t1, i, errS, errC)
							}
							break
						}
						if want != got { //lint:ignore floatcmp parity test: identical operations must give identical bits
							t.Fatalf("%s %v t1=%g eps=%g i=%d: sequence %g, cursor %g",
								d.Name(), m, t1, tailEps, i, want, got)
						}
					}
				}
			}
		}
	}
}

// TestRecurrenceCursorInvalidFirst: nonpositive and NaN first
// reservations fail with ErrNonIncreasing on both paths.
func TestRecurrenceCursorInvalidFirst(t *testing.T) {
	d := dist.MustExponential(1)
	for _, t1 := range []float64{0, -1, math.NaN()} {
		cur := NewRecurrenceCursor(ReservationOnly, d, t1, 0)
		if _, err := cur.Next(); !errors.Is(err, ErrNonIncreasing) {
			t.Errorf("t1=%g: err = %v, want ErrNonIncreasing", t1, err)
		}
		// The error is sticky.
		if _, err := cur.Next(); !errors.Is(err, ErrNonIncreasing) {
			t.Errorf("t1=%g: repeat err = %v, want ErrNonIncreasing", t1, err)
		}
	}
}

// TestRecurrenceCursorBoundedEnds: on bounded support the cursor closes
// with b and then reports ErrEnd, like the materialized sequence.
func TestRecurrenceCursorBoundedEnds(t *testing.T) {
	d := dist.MustUniform(10, 20)
	cur := NewRecurrenceCursor(ReservationOnly, d, 25, 0) // t1 past b: clamps to b
	v, err := cur.Next()
	if err != nil || math.Abs(v-20) > 0 {
		t.Fatalf("first = %g, %v; want 20", v, err)
	}
	if _, err := cur.Next(); !errors.Is(err, ErrEnd) {
		t.Errorf("after b: err = %v, want ErrEnd", err)
	}
}

// TestRecurrenceCursorReset: a reset cursor replays exactly the values
// of a fresh one, including after an error.
func TestRecurrenceCursorReset(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := ReservationOnly
	cur := NewRecurrenceCursor(m, d, -1, DefaultTailEps)
	if _, err := cur.Next(); err == nil {
		t.Fatal("want error for t1 = -1")
	}
	cur.Reset(25)
	fresh := NewRecurrenceCursor(m, d, 25, DefaultTailEps)
	for i := 0; i < 50; i++ {
		a, errA := cur.Next()
		b, errB := fresh.Next()
		if (errA == nil) != (errB == nil) || (errA == nil && a != b) { //lint:ignore floatcmp parity test: identical operations must give identical bits
			t.Fatalf("i=%d: reset cursor (%g, %v) vs fresh (%g, %v)", i, a, errA, b, errB)
		}
		if errA != nil {
			break
		}
	}
}

// TestSequenceCursorWalksSequence: the Sequence adapter yields At(0..)
// and ends with the sequence's own error.
func TestSequenceCursorWalksSequence(t *testing.T) {
	s, err := NewExplicitSequence(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cur := s.Cursor()
	want := []float64{1, 2, 4}
	for i, w := range want {
		v, err := cur.Next()
		if err != nil || v != w { //lint:ignore floatcmp exact assigned values
			t.Fatalf("i=%d: got (%g, %v), want %g", i, v, err, w)
		}
	}
	if _, err := cur.Next(); !errors.Is(err, ErrEnd) {
		t.Errorf("err = %v, want ErrEnd", err)
	}
}
