package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
)

// TestCostHomogeneity: scaling (α, β, γ) jointly by k scales every cost
// by k — Eq. (2) and Eq. (4) are 1-homogeneous in the price vector.
func TestCostHomogeneity(t *testing.T) {
	d := dist.MustLogNormal(1, 0.5)
	mk := func() *Sequence {
		mean := d.Mean()
		return NewSequence(func(i int, _ []float64) (float64, bool) {
			return mean * math.Pow(2, float64(i)), true
		})
	}
	f := func(kRaw, aRaw, bRaw, gRaw uint8) bool {
		k := 0.1 + float64(kRaw)/32
		m := CostModel{
			Alpha: 0.1 + float64(aRaw)/64,
			Beta:  float64(bRaw) / 64,
			Gamma: float64(gRaw) / 64,
		}
		km := CostModel{Alpha: k * m.Alpha, Beta: k * m.Beta, Gamma: k * m.Gamma}
		e1, err1 := ExpectedCost(m, d, mk())
		e2, err2 := ExpectedCost(km, d, mk())
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(e2-k*e1) > 1e-9*(1+k*e1) {
			return false
		}
		// Per-run cost too.
		c1, _, err1 := m.RunCost(mk(), 3.7)
		c2, _, err2 := km.RunCost(mk(), 3.7)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(c2-k*c1) < 1e-9*(1+k*c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTimeScalingCovariance: with γ = 0, scaling the distribution AND
// the sequence by c scales the expected cost by c (the dimensional
// analysis behind Proposition 2's 1/λ law).
func TestTimeScalingCovariance(t *testing.T) {
	base := dist.MustExponential(1)
	m := CostModel{Alpha: 1, Beta: 0.7}
	f := func(cRaw uint8) bool {
		c := 0.25 + float64(cRaw)/32
		scaled := dist.MustScaled(base, c)
		mkBase := NewSequence(func(i int, _ []float64) (float64, bool) {
			return float64(i+1) * 0.8, true
		})
		mkScaled := NewSequence(func(i int, _ []float64) (float64, bool) {
			return float64(i+1) * 0.8 * c, true
		})
		e1, err1 := ExpectedCost(m, base, mkBase)
		e2, err2 := ExpectedCost(m, scaled, mkScaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(e2-c*e1) < 1e-7*(1+c*e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRunCostMonotoneInJobDuration: for a fixed sequence, the cost of a
// run never decreases with the job duration.
func TestRunCostMonotoneInJobDuration(t *testing.T) {
	m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.2}
	s, err := NewExplicitSequence(1, 2, 4, 8, 16, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16) bool {
		t1 := float64(aRaw%6400) / 100
		t2 := float64(bRaw%6400) / 100
		if t1 == 0 || t2 == 0 {
			return true
		}
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		c1, _, err1 := m.RunCost(s, t1)
		c2, _, err2 := m.RunCost(s, t2)
		if err1 != nil || err2 != nil {
			return true // beyond coverage
		}
		return c1 <= c2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestExpectedCostMonotoneUnderSequenceRefinement: inserting an extra
// reservation below the first one can only help when it catches enough
// mass — but removing the FIRST element of a sequence never decreases
// the cost of jobs below it. Concretely we test the Theorem-4 argument:
// dropping t1 from (t1, b) changes the cost by exactly the closed-form
// difference computed in the paper's proof.
func TestTheorem4CostDifference(t *testing.T) {
	a, b := 10.0, 20.0
	d := dist.MustUniform(a, b)
	f := func(raw uint16, mRaw uint8) bool {
		t1 := a + (b-a)*float64(raw%1000+1)/1002
		m := CostModel{Alpha: 0.5 + float64(mRaw%8)/4, Beta: float64(mRaw%4) / 4, Gamma: float64(mRaw%3) / 2}
		s2, err := NewExplicitSequence(t1, b)
		if err != nil {
			return false
		}
		s1, err := NewExplicitSequence(b)
		if err != nil {
			return false
		}
		e2, err2 := ExpectedCost(m, d, s2)
		e1, err1 := ExpectedCost(m, d, s1)
		if err1 != nil || err2 != nil {
			return false
		}
		// Proof of Theorem 4 (with t2 = b, Z = 0):
		// E(S) - E(S') = (α·u + β·v + γ·w)/(b-a), u = a(b-t1)... for
		// t2 = b: u = t1(b-b) + a(b-t1) = a(b-t1), v = t1(b-t1),
		// w = b-t1.
		u := a * (b - t1)
		v := t1 * (b - t1)
		w := b - t1
		want := (m.Alpha*u + m.Beta*v + m.Gamma*w) / (b - a)
		return math.Abs((e2-e1)-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSequenceCloneIndependence: clones materialize independently and
// agree with the original, including under concurrent use.
func TestSequenceCloneIndependence(t *testing.T) {
	d := dist.MustExponential(1)
	s := SequenceFromFirstTail(ReservationOnly, d, 0.9, DefaultTailEps)
	// Materialize a bit, clone, then race the clones.
	if _, err := s.At(2); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([][]float64, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			cp := s.Clone()
			v, err := cp.Prefix(10)
			if err == nil {
				results[w] = v
			}
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d saw %d values, worker 0 saw %d", w, len(results[w]), len(results[0]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("clone divergence at %d", i)
			}
		}
	}
}

// TestBoundsScaleWithRates: A1 for Exp(λ) shrinks as λ grows (shorter
// jobs need shorter search intervals) — a sanity property over random
// rates.
func TestBoundsScaleWithRates(t *testing.T) {
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		l1 := 0.2 + 5*r.Float64()
		l2 := l1 * (1 + r.Float64())
		a1 := BoundFirstReservation(ReservationOnly, dist.MustExponential(l1))
		a2 := BoundFirstReservation(ReservationOnly, dist.MustExponential(l2))
		if a2 > a1+1e-12 {
			t.Fatalf("A1 grew with rate: λ=%g→%g gives %g→%g", l1, l2, a1, a2)
		}
	}
}
