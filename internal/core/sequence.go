package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEnd reports that a finite sequence has no further reservations.
var ErrEnd = errors.New("core: sequence exhausted")

// ErrNonIncreasing reports that a sequence generator produced a value
// not strictly larger than its predecessor. Per §2.2 of the paper a
// reservation sequence must be strictly increasing; the brute-force
// heuristic treats candidates that violate this as invalid (§4.1).
var ErrNonIncreasing = errors.New("core: sequence is not strictly increasing")

// ErrTooLong reports that a sequence needed more than MaxSequenceLen
// materialized elements. It guards against degenerate generators whose
// values grow too slowly to ever cover the sampled durations.
var ErrTooLong = errors.New("core: sequence exceeded the maximum materialized length")

// MaxSequenceLen bounds how many reservations a sequence will
// materialize before giving up.
const MaxSequenceLen = 100000

// Generator produces the i-th reservation (0-based) given the already
// materialized prefix. Returning ok=false ends the sequence (finite
// sequences, e.g. for distributions with bounded support).
type Generator func(i int, prefix []float64) (t float64, ok bool)

// Sequence is a lazily materialized, strictly increasing sequence of
// reservation lengths t_1 < t_2 < ... (stored 0-based). Sequences are
// not safe for concurrent use; clone per goroutine with Clone.
type Sequence struct {
	vals []float64
	gen  Generator
	done bool
	err  error
}

// NewSequence returns a lazily generated sequence.
func NewSequence(gen Generator) *Sequence {
	return &Sequence{gen: gen}
}

// NewExplicitSequence returns a finite sequence with the given
// reservation lengths, which must be strictly increasing and positive.
func NewExplicitSequence(vals ...float64) (*Sequence, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("core: explicit sequence needs at least one reservation")
	}
	prev := 0.0
	for i, v := range vals {
		if math.IsNaN(v) || v <= prev {
			return nil, fmt.Errorf("core: explicit sequence value %d (%g) is not strictly increasing from %g", i, v, prev)
		}
		prev = v
	}
	s := &Sequence{vals: append([]float64(nil), vals...), done: true}
	return s, nil
}

// Clone returns an independent copy sharing the generator; safe to use
// from another goroutine as long as the generator itself is pure.
func (s *Sequence) Clone() *Sequence {
	cp := &Sequence{
		vals: append([]float64(nil), s.vals...),
		gen:  s.gen,
		done: s.done,
		err:  s.err,
	}
	return cp
}

// At returns the i-th reservation length (0-based), materializing the
// prefix as needed. It returns ErrEnd past the end of a finite
// sequence, ErrNonIncreasing if the generator misbehaves, and
// ErrTooLong past MaxSequenceLen.
func (s *Sequence) At(i int) (float64, error) {
	if i < 0 {
		return math.NaN(), fmt.Errorf("core: negative sequence index %d", i)
	}
	for len(s.vals) <= i {
		if s.err != nil {
			return math.NaN(), s.err
		}
		if s.done {
			return math.NaN(), ErrEnd
		}
		if len(s.vals) >= MaxSequenceLen {
			s.err = ErrTooLong
			return math.NaN(), s.err
		}
		if s.gen == nil {
			s.done = true
			return math.NaN(), ErrEnd
		}
		v, ok := s.gen(len(s.vals), s.vals)
		if !ok {
			s.done = true
			continue
		}
		prev := 0.0
		if len(s.vals) > 0 {
			prev = s.vals[len(s.vals)-1]
		}
		if math.IsNaN(v) || v <= prev {
			s.err = ErrNonIncreasing
			return math.NaN(), s.err
		}
		s.vals = append(s.vals, v)
	}
	return s.vals[i], nil
}

// First returns t_1, the first reservation length.
func (s *Sequence) First() (float64, error) { return s.At(0) }

// Materialized returns a copy of the values computed so far.
func (s *Sequence) Materialized() []float64 {
	return append([]float64(nil), s.vals...)
}

// Prefix materializes and returns the first n values (fewer if the
// sequence is finite and shorter). The error is non-nil only for
// generator failures, not for ErrEnd.
func (s *Sequence) Prefix(n int) ([]float64, error) {
	for i := 0; i < n; i++ {
		if _, err := s.At(i); err != nil {
			if errors.Is(err, ErrEnd) {
				break
			}
			return nil, err
		}
	}
	if n > len(s.vals) {
		n = len(s.vals)
	}
	return append([]float64(nil), s.vals[:n]...), nil
}

// FirstCovering returns the 0-based index of the first reservation
// >= t, materializing the sequence as needed. It returns ErrUncovered
// if a finite sequence ends below t.
func (s *Sequence) FirstCovering(t float64) (int, error) {
	// Fast path on the materialized prefix.
	if n := len(s.vals); n > 0 && s.vals[n-1] >= t {
		return sort.SearchFloat64s(s.vals, t), nil
	}
	for i := len(s.vals); ; i++ {
		v, err := s.At(i)
		if err != nil {
			if errors.Is(err, ErrEnd) {
				return 0, ErrUncovered
			}
			return 0, err
		}
		if v >= t {
			return i, nil
		}
	}
}

// String renders a short preview of the sequence.
func (s *Sequence) String() string {
	preview, err := s.Clone().Prefix(6)
	if err != nil {
		return fmt.Sprintf("Sequence(invalid: %v)", err)
	}
	out := "Sequence("
	for i, v := range preview {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.4g", v)
	}
	if !s.done || len(s.vals) > len(preview) {
		out += ", …"
	}
	return out + ")"
}
