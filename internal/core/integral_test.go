package core

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// testSequences builds representative sequences for a distribution:
// doubling and arithmetic for unbounded supports, midpoint+bound and
// bound-only for bounded ones.
func testSequences(d dist.Distribution) []*Sequence {
	lo, hi := d.Support()
	if math.IsInf(hi, 1) {
		mean := d.Mean()
		doubling := NewSequence(func(i int, _ []float64) (float64, bool) {
			return mean * math.Pow(2, float64(i)), true
		})
		arithmetic := NewSequence(func(i int, _ []float64) (float64, bool) {
			return mean * float64(i+1), true
		})
		return []*Sequence{doubling, arithmetic}
	}
	mid := (lo + hi) / 2
	if mid <= 0 {
		mid = hi / 2
	}
	two, err := NewExplicitSequence(mid, hi)
	if err != nil {
		panic(err)
	}
	one, err := NewExplicitSequence(hi)
	if err != nil {
		panic(err)
	}
	return []*Sequence{two, one}
}

// TestTheorem1Equivalence: the closed summation form of Eq. (4) must
// agree with the direct Eq.-(3) integral for every Table-1 distribution
// and several sequence shapes and cost models — a numerical proof of
// Theorem 1 over the whole workload suite.
func TestTheorem1Equivalence(t *testing.T) {
	models := []CostModel{
		ReservationOnly,
		{Alpha: 1, Beta: 1, Gamma: 0},
		{Alpha: 0.95, Beta: 1, Gamma: 1.05},
		{Alpha: 2, Beta: 0.25, Gamma: 0.5},
	}
	for _, d := range dist.Table1() {
		for si, mk := range testSequences(d) {
			for _, m := range models {
				closed, err := ExpectedCost(m, d, mk.Clone())
				if err != nil {
					t.Fatalf("%s seq%d %v: closed form: %v", d.Name(), si, m, err)
				}
				integral, err := ExpectedCostIntegral(m, d, mk.Clone())
				if err != nil {
					t.Fatalf("%s seq%d %v: integral: %v", d.Name(), si, m, err)
				}
				// Tolerance matches the documented worst-case series
				// truncation (~1e-4) for slowly growing sequences over
				// power-law tails (see survivalCutoff in expected.go);
				// all other combinations agree to ~1e-9.
				if math.Abs(closed-integral) > 1e-4*math.Max(1, closed) {
					t.Errorf("%s seq%d %v: Eq.(4) %.10g vs Eq.(3) %.10g",
						d.Name(), si, m, closed, integral)
				}
			}
		}
	}
}

// TestIntegralUncovered: the Eq.-(3) evaluator also reports infinite
// cost for uncovering sequences.
func TestIntegralUncovered(t *testing.T) {
	d := dist.MustUniform(10, 20)
	s, err := NewExplicitSequence(15)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ExpectedCostIntegral(ReservationOnly, d, s)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e, 1) {
		t.Errorf("uncovered integral cost = %g, want +Inf", e)
	}
}

// TestIntegralRejectsInvalidModel mirrors the closed form's validation.
func TestIntegralRejectsInvalidModel(t *testing.T) {
	d := dist.MustExponential(1)
	s, _ := NewExplicitSequence(1, 2, 4)
	if _, err := ExpectedCostIntegral(CostModel{}, d, s); err == nil {
		t.Error("invalid model accepted")
	}
}
