package core

import (
	"errors"
	"math"

	"repro/internal/dist"
)

// expectedCostTol is the relative truncation tolerance for the infinite
// series of Eq. (4).
const expectedCostTol = 1e-13

// survivalCutoff ends the Eq.-(4) summation unconditionally: once the
// survival probability is this small, the remaining terms are
// negligible for every sequence the library generates. It also bounds
// the work for slowly growing sequences over heavy-tailed laws (e.g.
// an arithmetic sequence under a Pareto tail), where the per-term
// relative tolerance alone would require millions of terms; the
// truncation error committed is below ~1e-4 in the worst such case.
const survivalCutoff = 1e-12

// ExpectedCost evaluates the expected cost of a reservation sequence
// analytically with the closed form of Theorem 1 (Eq. 4):
//
//	E(S) = β·E[X] + Σ_{i>=0} (α·t_{i+1} + β·t_i + γ)·P(X >= t_i),  t_0 = 0.
//
// For distributions with bounded support the summation ends when the
// survival reaches 0; for unbounded support it is truncated once the
// remaining tail is negligible relative to the accumulated value. A
// finite sequence that fails to cover the support has infinite expected
// cost (the job may never complete); an invalid (non-increasing)
// sequence yields an error.
func ExpectedCost(m CostModel, d dist.Distribution, s *Sequence) (float64, error) {
	sum := m.Beta * d.Mean()
	tPrev := 0.0 // t_0 = 0
	for i := 0; ; i++ {
		sf := d.Survival(tPrev)
		if sf <= survivalCutoff {
			return sum, nil
		}
		ti, err := s.At(i)
		if err != nil {
			if errors.Is(err, ErrEnd) {
				// Finite sequence with mass above its last value.
				return math.Inf(1), nil
			}
			return math.NaN(), err
		}
		term := (m.Alpha*ti + m.Beta*tPrev + m.Gamma) * sf
		sum += term
		// Early truncation once both the survival and the current term
		// are negligible.
		if sf < 1e-9 && term < expectedCostTol*math.Max(1, sum) {
			return sum, nil
		}
		tPrev = ti
	}
}

// NormalizedExpectedCost returns ExpectedCost divided by the omniscient
// cost (§5.1); values are >= 1 with 1 meaning "as good as knowing the
// execution time in advance".
func NormalizedExpectedCost(m CostModel, d dist.Distribution, s *Sequence) (float64, error) {
	e, err := ExpectedCost(m, d, s)
	if err != nil {
		return math.NaN(), err
	}
	return e / m.OmniscientCost(d), nil
}

// BoundFirstReservation returns A1, the Theorem-2 upper bound (Eq. 6)
// on the first reservation t_1 of an optimal sequence for a
// distribution with infinite support:
//
//	A1 = E[X] + 1 + (α+β)/(2α)·(E[X²]-a²) + (α+β+γ)/α·(E[X]-a).
//
// For a distribution with bounded support the optimal t_1 is at most
// the upper end b, so min(b, A1) is returned.
func BoundFirstReservation(m CostModel, d dist.Distribution) float64 {
	a, b := d.Support()
	ex := d.Mean()
	ex2 := dist.SecondMoment(d)
	a1 := ex + 1 +
		(m.Alpha+m.Beta)/(2*m.Alpha)*(ex2-a*a) +
		(m.Alpha+m.Beta+m.Gamma)/m.Alpha*(ex-a)
	if !math.IsInf(b, 1) {
		return math.Min(b, a1)
	}
	return a1
}

// BoundExpectedCost returns A2, the Theorem-2 upper bound (Eq. 7) on
// the optimal expected cost: A2 = β·E[X] + α·A1 + γ.
func BoundExpectedCost(m CostModel, d dist.Distribution) float64 {
	return m.Beta*d.Mean() + m.Alpha*BoundFirstReservation(m, d) + m.Gamma
}
