package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
)

// batchTestDists covers the clamping cases the table must reproduce:
// an unbounded law (no clamp), a bounded one whose grid top touches
// the support bound (clamp active at the last points), and a bounded
// heavy-tail law.
func batchTestDists(t *testing.T) []dist.Distribution {
	t.Helper()
	return []dist.Distribution{
		dist.MustLogNormal(3, 0.5),
		dist.MustUniform(0, 10),
		dist.MustBoundedPareto(1, 50, 1.5),
	}
}

func TestSurvivalTableMatchesDirectCalls(t *testing.T) {
	const M = 257
	for _, d := range batchTestDists(t) {
		lo, _ := d.Support()
		m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1}
		hi := BoundFirstReservation(m, d)
		tab := NewSurvivalTable(d, lo, hi, M)
		tab.Fill(0, M)
		if tab.Len() != M {
			t.Fatalf("Len = %d, want %d", tab.Len(), M)
		}
		_, bound := d.Support()
		for g := 0; g < M; g++ {
			t1 := lo + (hi-lo)*float64(g+1)/float64(M)
			//lint:ignore floatcmp bit-identity is the contract under test
			if tab.T1(g) != t1 {
				t.Fatalf("T1(%d) = %g, want grid point %g", g, tab.T1(g), t1)
			}
			clamped := t1
			if !math.IsInf(bound, 1) && clamped >= bound {
				clamped = bound
			}
			//lint:ignore floatcmp bit-identity is the contract under test
			if tab.SF(g) != d.Survival(clamped) {
				t.Fatalf("SF(%d) = %g, want Survival(%g) = %g", g, tab.SF(g), clamped, d.Survival(clamped))
			}
			//lint:ignore floatcmp bit-identity is the contract under test
			if tab.PDF(g) != d.PDF(clamped) {
				t.Fatalf("PDF(%d) = %g, want PDF(%g) = %g", g, tab.PDF(g), clamped, d.PDF(clamped))
			}
		}
		//lint:ignore floatcmp bit-identity is the contract under test
		if tab.SF0() != d.Survival(0.0) {
			t.Fatalf("SF0 = %g, want %g", tab.SF0(), d.Survival(0.0))
		}
	}
}

// TestSurvivalTableBlockFillMatchesWholeFill pins that filling the
// grid in disjoint blocks (the parallel pattern) writes the same
// entries as one pass.
func TestSurvivalTableBlockFillMatchesWholeFill(t *testing.T) {
	const M = 100
	d := dist.MustLogNormal(3, 0.5)
	m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1}
	lo, _ := d.Support()
	hi := BoundFirstReservation(m, d)
	whole := NewSurvivalTable(d, lo, hi, M)
	whole.Fill(0, M)
	blocks := NewSurvivalTable(d, lo, hi, M)
	for g := 0; g < M; g += 7 {
		end := g + 7
		if end > M {
			end = M
		}
		blocks.Fill(g, end)
	}
	for g := 0; g < M; g++ {
		//lint:ignore floatcmp bit-identity is the contract under test
		if whole.T1(g) != blocks.T1(g) || whole.SF(g) != blocks.SF(g) || whole.PDF(g) != blocks.PDF(g) {
			t.Fatalf("block fill diverges at grid point %d", g)
		}
	}
}

// TestCostBudgetSeededBitIdentical drives CostBudget and
// CostBudgetSeeded over a full grid — with and without pruning — and
// asserts bitwise-equal costs and identical prune/error outcomes.
func TestCostBudgetSeededBitIdentical(t *testing.T) {
	const M = 400
	models := []CostModel{
		ReservationOnly,
		{Alpha: 1, Beta: 0.5, Gamma: 0.1},
	}
	for _, d := range batchTestDists(t) {
		for _, m := range models {
			lo, _ := d.Support()
			hi := BoundFirstReservation(m, d)
			tab := NewSurvivalTable(d, lo, hi, M)
			tab.Fill(0, M)
			plain := NewCostCursor(m, d, DefaultTailEps)
			seeded := NewCostCursor(m, d, DefaultTailEps)
			for _, budgeted := range []bool{false, true} {
				incumbent := math.Inf(1)
				for g := 0; g < M; g++ {
					t1 := tab.T1(g)
					budget := math.Inf(1)
					if budgeted {
						budget = incumbent
					}
					c1, p1, err1 := plain.CostBudget(t1, budget)
					c2, p2, err2 := seeded.CostBudgetSeeded(t1, budget, tab.SF(g), tab.PDF(g))
					//lint:ignore floatcmp bit-identity is the contract under test
					if c1 != c2 && !(math.IsNaN(c1) && math.IsNaN(c2)) {
						t.Fatalf("%s/%v budgeted=%v g=%d: cost %v != seeded %v", d, m, budgeted, g, c1, c2)
					}
					if p1 != p2 || !errors.Is(err2, err1) || (err1 == nil) != (err2 == nil) {
						t.Fatalf("%s/%v budgeted=%v g=%d: (pruned,err) (%v,%v) != seeded (%v,%v)",
							d, m, budgeted, g, p1, err1, p2, err2)
					}
					if err1 == nil && !p1 && !math.IsNaN(c1) && c1 < incumbent {
						incumbent = c1
					}
				}
			}
		}
	}
}

// TestRecurrenceCursorResetSeededBitIdentical walks a seeded and an
// unseeded cursor over the same candidates and asserts the streams are
// bitwise equal, including the terminating error.
func TestRecurrenceCursorResetSeededBitIdentical(t *testing.T) {
	const M = 300
	for _, d := range batchTestDists(t) {
		m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1}
		lo, _ := d.Support()
		hi := BoundFirstReservation(m, d)
		tab := NewSurvivalTable(d, lo, hi, M)
		tab.Fill(0, M)
		plain := NewRecurrenceCursor(m, d, 0, DefaultTailEps)
		seeded := NewRecurrenceCursor(m, d, 0, DefaultTailEps)
		for g := 0; g < M; g++ {
			plain.Reset(tab.T1(g))
			seeded.ResetSeeded(tab.T1(g), tab.SF0(), tab.SF(g), tab.PDF(g))
			for step := 0; step < 64; step++ {
				v1, err1 := plain.Next()
				v2, err2 := seeded.Next()
				//lint:ignore floatcmp bit-identity is the contract under test
				if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
					t.Fatalf("%s g=%d step=%d: %v != seeded %v", d, g, step, v1, v2)
				}
				if (err1 == nil) != (err2 == nil) || (err1 != nil && !errors.Is(err2, err1)) {
					t.Fatalf("%s g=%d step=%d: err %v != seeded err %v", d, g, step, err1, err2)
				}
				if err1 != nil {
					break
				}
			}
		}
	}
}
