package core

import (
	"math"

	"repro/internal/dist"
)

// SurvivalTable precomputes the survival and density of a distribution
// at every point of a brute-force t1 grid, so a scan can evaluate
// whole blocks of candidates against one lookup table instead of
// paying the first special-function calls per candidate. For
// Gamma/Beta-type laws Survival and PDF dominate candidate scoring, and
// the first reservation's pair is re-evaluated by every candidate that
// expands past its first step; the table computes each grid point's
// pair exactly once, in a single cache-friendly pass that parallelizes
// over blocks (Fill is safe to call concurrently on disjoint ranges).
//
// The stored values are bit-identical to what the cursors would
// compute themselves: T1 applies the paper's grid formula
// t1 = lo + (hi-lo)·(g+1)/M, and SF/PDF evaluate at the same
// support-clamped point the cursors use, so seeding a cursor from the
// table never changes a result — only who performs the calls.
//
// A table is immutable after Fill and safe for concurrent readers.
//
//repro:hotpath
type SurvivalTable struct {
	d       dist.Distribution
	lo, hi  float64
	m       int
	bound   float64 // support upper bound (cursor clamp target)
	bounded bool
	sf0     float64 // Survival(0), shared by every candidate

	t1s []float64 // raw grid points (unclamped, as handed to cursors)
	sf  []float64 // Survival at the clamped grid point
	pdf []float64 // PDF at the clamped grid point
}

// NewSurvivalTable allocates a table for the M-point grid on [lo, hi]
// (the brute-force search interval: lo = support start, hi =
// BoundFirstReservation). The entries are not computed yet — call Fill,
// typically one block per worker.
func NewSurvivalTable(d dist.Distribution, lo, hi float64, m int) *SurvivalTable {
	_, bound := d.Support()
	return &SurvivalTable{
		d: d, lo: lo, hi: hi, m: m,
		bound: bound, bounded: !math.IsInf(bound, 1),
		sf0: d.Survival(0.0),
		t1s: make([]float64, m),
		sf:  make([]float64, m),
		pdf: make([]float64, m),
	}
}

// Fill computes the grid points [g0, g1) in one pass. Disjoint blocks
// may be filled concurrently.
func (t *SurvivalTable) Fill(g0, g1 int) {
	for g := g0; g < g1; g++ {
		// Paper's grid: t1 = a + m·(b-a)/M for m = 1..M — the exact
		// expression of the scan loop, so the stored point matches the
		// scanned candidate bitwise.
		t1 := t.lo + (t.hi-t.lo)*float64(g+1)/float64(t.m)
		t.t1s[g] = t1
		if t.bounded && t1 >= t.bound {
			t1 = t.bound // the cursors' first-step clamp
		}
		t.sf[g] = t.d.Survival(t1)
		t.pdf[g] = t.d.PDF(t1)
	}
}

// Len returns the number of grid points.
func (t *SurvivalTable) Len() int { return t.m }

// T1 returns grid point g as handed to a cursor (unclamped).
func (t *SurvivalTable) T1(g int) float64 { return t.t1s[g] }

// SF returns the survival at the clamped grid point g.
func (t *SurvivalTable) SF(g int) float64 { return t.sf[g] }

// PDF returns the density at the clamped grid point g.
func (t *SurvivalTable) PDF(g int) float64 { return t.pdf[g] }

// SF0 returns Survival(0), the shared first survival of every
// candidate.
func (t *SurvivalTable) SF0() float64 { return t.sf0 }
