package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
)

// ExampleExpectedCost evaluates Eq. (4) for the two-reservation UNIFORM
// example worked in §2.3 of the paper.
func ExampleExpectedCost() {
	d := dist.MustUniform(10, 20)
	s, _ := core.NewExplicitSequence(15, 20)
	e, _ := core.ExpectedCost(core.ReservationOnly, d, s)
	fmt.Printf("%.2f\n", e)
	// Output:
	// 25.00
}

// ExampleCostModel_RunCost prices one job under a sequence (Eq. 2).
func ExampleCostModel_RunCost() {
	m := core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 2}
	s, _ := core.NewExplicitSequence(2, 4, 8)
	cost, attempts, _ := m.RunCost(s, 5) // needs three attempts
	fmt.Printf("%.1f over %d attempts\n", cost, attempts)
	// Output:
	// 25.5 over 3 attempts
}

// ExampleSequenceFromFirst expands a first reservation with the optimal
// recurrence of Theorem 3 (Eq. 11): for Exp(1), t2 = e^{t1}.
func ExampleSequenceFromFirst() {
	d := dist.MustExponential(1)
	s := core.SequenceFromFirst(core.ReservationOnly, d, 0.5)
	v, _ := s.Prefix(2)
	fmt.Printf("t1=%.3f t2=%.3f\n", v[0], v[1])
	// Output:
	// t1=0.500 t2=1.649
}

// ExampleBoundFirstReservation computes the Theorem-2 search bound A1.
func ExampleBoundFirstReservation() {
	d := dist.MustExponential(1)
	fmt.Printf("%.0f\n", core.BoundFirstReservation(core.ReservationOnly, d))
	// Output:
	// 4
}

// ExampleStats reports the closed-form operating statistics of a plan.
func ExampleStats() {
	d := dist.MustUniform(10, 20)
	s, _ := core.NewExplicitSequence(15, 20)
	st, _ := core.Stats(core.ReservationOnly, d, s)
	fmt.Printf("attempts %.1f, reserved %.0f, utilization %.2f\n",
		st.ExpectedAttempts, st.ExpectedReserved, st.Utilization)
	// Output:
	// attempts 1.5, reserved 25, utilization 0.90
}
