package core

import (
	"math"

	"repro/internal/dist"
)

// Cursor yields the reservations of a strictly increasing sequence one
// at a time, in order. Next returns ErrEnd once a finite sequence is
// exhausted, ErrNonIncreasing if the underlying rule produces a value
// not strictly above its predecessor, and ErrTooLong past
// MaxSequenceLen values. After any error, every further Next call
// returns the same error.
//
// Cursors exist for the hot scoring paths: evaluating a candidate
// sequence against an empirical workload only needs each t_i once, so a
// cursor avoids both the per-candidate Sequence allocation and the
// per-worker Clone that the materialized representation requires.
type Cursor interface {
	Next() (float64, error)
}

// SequenceCursor adapts a *Sequence to the Cursor interface by walking
// At(i). Advancing the cursor materializes the sequence's prefix, so a
// SequenceCursor must not be shared — nor its sequence used — across
// goroutines.
//
//repro:hotpath
type SequenceCursor struct {
	s *Sequence
	i int
}

// Cursor returns a cursor positioned before the first reservation. The
// returned value is self-contained; copying it mid-iteration forks the
// position.
func (s *Sequence) Cursor() SequenceCursor {
	return SequenceCursor{s: s}
}

// Next implements Cursor.
func (c *SequenceCursor) Next() (float64, error) {
	v, err := c.s.At(c.i)
	if err != nil {
		return v, err
	}
	c.i++
	return v, nil
}

// RecurrenceCursor iterates the Proposition-1 sequence — a first
// reservation t1 followed by the Eq.-(11) recurrence — without
// materializing it. It reproduces SequenceFromFirstTail value for
// value, including the tail-tolerance and bounded-support stopping
// rules, but keeps only O(1) state (the recurrence needs just t_{i-1}
// and t_{i-2}), so scoring a brute-force candidate allocates nothing.
//
//repro:hotpath
type RecurrenceCursor struct {
	m       CostModel
	d       dist.Distribution
	t1      float64
	tailEps float64
	hi      float64
	bounded bool
	i       int
	prev2   float64
	prev    float64
	err     error

	// Seeds for the first recurrence step (ResetSeeded): the survival
	// at 0 and the survival/density at the clamped t1, precomputed by a
	// SurvivalTable so a batched scan skips the per-candidate calls.
	seeded           bool
	seedSF0, seedSF1 float64
	seedPDF1         float64
}

// NewRecurrenceCursor returns a cursor over the same values as
// SequenceFromFirstTail(m, d, t1, tailEps). It is returned by value so
// callers in tight loops keep it on the stack.
func NewRecurrenceCursor(m CostModel, d dist.Distribution, t1, tailEps float64) RecurrenceCursor {
	_, hi := d.Support()
	return RecurrenceCursor{
		m: m, d: d, t1: t1, tailEps: tailEps,
		hi: hi, bounded: !math.IsInf(hi, 1),
	}
}

// Reset repositions the cursor at a new first reservation, keeping the
// cost model, distribution and tail tolerance. A grid scan resets one
// cursor per candidate instead of constructing one, so scoring a whole
// block costs a single allocation (the cursor escaping into the scorer
// once), not one per candidate.
func (c *RecurrenceCursor) Reset(t1 float64) {
	c.t1 = t1
	c.i = 0
	c.prev2, c.prev = 0, 0
	c.err = nil
	c.seeded = false
}

// ResetSeeded is Reset with the first recurrence step's
// special-function values supplied by the caller: sf0 = Survival(0),
// and sf1/f1 the survival and density at the support-clamped t1 —
// exactly as a SurvivalTable stores them. The second Next call then
// evaluates Eq. (11) from the seeds instead of calling Survival/PDF;
// the seeds are the same pure function values, so the cursor yields a
// bit-identical stream.
func (c *RecurrenceCursor) ResetSeeded(t1, sf0, sf1, f1 float64) {
	c.Reset(t1)
	c.seeded = true
	c.seedSF0, c.seedSF1, c.seedPDF1 = sf0, sf1, f1
}

// Next implements Cursor.
func (c *RecurrenceCursor) Next() (float64, error) {
	if c.err != nil {
		return math.NaN(), c.err
	}
	if c.i >= MaxSequenceLen {
		c.err = ErrTooLong
		return math.NaN(), c.err
	}
	var v float64
	if c.i == 0 {
		v = c.t1
		if c.bounded && v >= c.hi {
			v = c.hi
		}
	} else {
		if c.bounded && c.prev >= c.hi {
			c.err = ErrEnd // support covered; the sequence is complete
			return math.NaN(), c.err
		}
		if c.seeded && c.i == 1 {
			// NextReservation(m, d, 0, t1) with the table-supplied
			// values — the identical IEEE-754 expression.
			f := c.seedPDF1
			if !(f > 0) || math.IsInf(f, 0) {
				v = math.NaN()
			} else {
				v = c.seedSF0/f + c.m.Beta/c.m.Alpha*(c.seedSF1/f-c.prev) - c.m.Gamma/c.m.Alpha
			}
		} else {
			v = NextReservation(c.m, c.d, c.prev2, c.prev)
		}
		sfPrev := math.NaN()
		if v <= c.prev || math.IsNaN(v) {
			if c.seeded && c.i == 1 {
				sfPrev = c.seedSF1
			} else {
				sfPrev = c.d.Survival(c.prev)
			}
		}
		if v > c.prev {
			if c.bounded && v >= c.hi {
				v = c.hi // stopping rule: close with b
			}
		} else if sfPrev <= c.tailEps {
			// Breakdown in the negligible tail: close with b (bounded)
			// or extend geometrically (unbounded).
			if c.bounded {
				v = c.hi
			} else {
				v = 2 * c.prev
			}
		}
	}
	if math.IsNaN(v) || v <= c.prev {
		c.err = ErrNonIncreasing
		return math.NaN(), c.err
	}
	c.i++
	c.prev2, c.prev = c.prev, v
	return v, nil
}
