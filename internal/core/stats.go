package core

import (
	"errors"
	"math"

	"repro/internal/dist"
)

// SequenceStats are closed-form operating statistics of a reservation
// strategy, the quantities a capacity planner or SLA report needs
// beyond the expected cost. All are exact sums over the sequence (same
// truncation rules as ExpectedCost):
//
//	E[attempts]  = Σ_{i>=0} P(X >= t_i)             (t_0 = 0)
//	E[reserved]  = Σ_{i>=0} t_{i+1}·P(X >= t_i)
//	E[used]      = E[X] + Σ_{i>=1} t_i·P(X >= t_i)
type SequenceStats struct {
	// ExpectedCost is the Eq.-(4) expected cost.
	ExpectedCost float64
	// ExpectedAttempts is the mean number of reservations paid.
	ExpectedAttempts float64
	// ExpectedReserved is the mean total reserved duration.
	ExpectedReserved float64
	// ExpectedUsed is the mean total platform time actually consumed
	// (failed attempts run to their full length; the final attempt runs
	// for the job's duration).
	ExpectedUsed float64
	// Utilization = ExpectedUsed / ExpectedReserved.
	Utilization float64
	// AttemptProbs[i] = P(the job needs exactly i+1 reservations),
	// truncated once the tail is negligible.
	AttemptProbs []float64
}

// Stats computes the operating statistics of a sequence under a
// distribution and cost model.
func Stats(m CostModel, d dist.Distribution, s *Sequence) (SequenceStats, error) {
	if err := m.Validate(); err != nil {
		return SequenceStats{}, err
	}
	st := SequenceStats{ExpectedUsed: d.Mean()}
	st.ExpectedCost = m.Beta * d.Mean()
	tPrev := 0.0
	prevSF := 1.0
	for i := 0; ; i++ {
		sf := d.Survival(tPrev)
		if i > 0 {
			// P(exactly i attempts) = P(X >= t_{i-1}) - P(X >= t_i).
			st.AttemptProbs = append(st.AttemptProbs, prevSF-sf)
		}
		if sf <= survivalCutoff {
			break
		}
		ti, err := s.At(i)
		if err != nil {
			if errors.Is(err, ErrEnd) {
				return SequenceStats{}, ErrUncovered
			}
			return SequenceStats{}, err
		}
		st.ExpectedCost += (m.Alpha*ti + m.Beta*tPrev + m.Gamma) * sf
		st.ExpectedAttempts += sf
		st.ExpectedReserved += ti * sf
		if i > 0 {
			st.ExpectedUsed += tPrev * sf
		}
		term := ti * sf
		if sf < 1e-9 && term < expectedCostTol*math.Max(1, st.ExpectedReserved) {
			// Close the attempt distribution with the residual mass.
			st.AttemptProbs = append(st.AttemptProbs, sf)
			break
		}
		tPrev = ti
		prevSF = sf
	}
	if st.ExpectedReserved > 0 {
		st.Utilization = st.ExpectedUsed / st.ExpectedReserved
	}
	return st, nil
}

// CostQuantile returns the p-quantile of the total cost under the
// strategy. Because the run cost is nondecreasing in the job duration
// (each longer job pays at least as many, at least as long
// reservations), the cost quantile is the cost of the duration
// quantile.
func CostQuantile(m CostModel, d dist.Distribution, s *Sequence, p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN(), errors.New("core: quantile probability must be in [0, 1]")
	}
	t := d.Quantile(p)
	if math.IsInf(t, 1) {
		return math.Inf(1), nil
	}
	lo, _ := d.Support()
	if t < lo {
		t = lo
	}
	c, _, err := m.RunCost(s, t)
	return c, err
}
