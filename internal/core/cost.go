// Package core implements the paper's primary contribution: the
// reservation cost model for stochastic jobs (Eq. 1–2), the expected
// cost of a reservation sequence in both its integral form (Eq. 3) and
// the closed summation form of Theorem 1 (Eq. 4), the upper bounds of
// Theorem 2 (Eqs. 6–7), the optimal-sequence recurrence of Theorem 3 /
// Proposition 1 (Eq. 11), and the convex-cost generalization of
// Appendix C (Theorem 14 / Proposition 3, Eq. 37).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
)

// CostModel is the affine reservation cost of Eq. (1): a reservation of
// length t1 for a job of actual duration t costs
// Alpha·t1 + Beta·min(t1, t) + Gamma.
type CostModel struct {
	// Alpha > 0 scales the requested (reserved) duration.
	Alpha float64
	// Beta >= 0 scales the actually used duration.
	Beta float64
	// Gamma >= 0 is the per-reservation start-up overhead.
	Gamma float64
}

// ReservationOnly is the RESERVATIONONLY instance of the problem
// (§2.3): cost is the reservation length alone (α=1, β=γ=0), as in the
// AWS Reserved Instance pricing scheme.
var ReservationOnly = CostModel{Alpha: 1}

// Validate reports whether the parameters satisfy the paper's
// constraints (α > 0, β >= 0, γ >= 0, all finite).
func (m CostModel) Validate() error {
	if !(m.Alpha > 0) || math.IsInf(m.Alpha, 0) || math.IsNaN(m.Alpha) {
		return fmt.Errorf("core: Alpha must be positive and finite, got %g", m.Alpha)
	}
	if m.Beta < 0 || math.IsInf(m.Beta, 0) || math.IsNaN(m.Beta) {
		return fmt.Errorf("core: Beta must be nonnegative and finite, got %g", m.Beta)
	}
	if m.Gamma < 0 || math.IsInf(m.Gamma, 0) || math.IsNaN(m.Gamma) {
		return fmt.Errorf("core: Gamma must be nonnegative and finite, got %g", m.Gamma)
	}
	return nil
}

// String returns a compact display form.
func (m CostModel) String() string {
	return fmt.Sprintf("cost(α=%g, β=%g, γ=%g)", m.Alpha, m.Beta, m.Gamma)
}

// AttemptCost returns the cost of a single reservation of length res
// for a job of actual duration t (Eq. 1).
func (m CostModel) AttemptCost(res, t float64) float64 {
	return m.Alpha*res + m.Beta*math.Min(res, t) + m.Gamma
}

// ErrUncovered is returned when a finite reservation sequence ends
// before covering a job duration (or the distribution's support): the
// job can never complete under that strategy, so its cost is infinite.
var ErrUncovered = errors.New("core: sequence does not cover the job duration")

// RunCost returns the total cost C(k, t) of executing a job of duration
// t under the sequence s (Eq. 2): every reservation shorter than t is
// paid in full (used time = reserved time), and the first reservation
// >= t is paid with used time t. The returned attempts value is k, the
// number of reservations paid.
func (m CostModel) RunCost(s *Sequence, t float64) (cost float64, attempts int, err error) {
	for i := 0; ; i++ {
		ti, err := s.At(i)
		if err != nil {
			if errors.Is(err, ErrEnd) {
				return math.Inf(1), i, ErrUncovered
			}
			return math.NaN(), i, err
		}
		if t <= ti {
			return cost + m.AttemptCost(ti, t), i + 1, nil
		}
		cost += m.AttemptCost(ti, ti)
	}
}

// OmniscientCost returns the expected cost E^o = (α+β)·E[X] + γ of the
// omniscient scheduler that knows each job's duration in advance and
// reserves exactly that long (§5.1). Normalizing by this value yields
// the paper's performance ratios.
func (m CostModel) OmniscientCost(d dist.Distribution) float64 {
	return (m.Alpha+m.Beta)*d.Mean() + m.Gamma
}
