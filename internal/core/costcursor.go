package core

import (
	"errors"
	"math"

	"repro/internal/dist"
)

// CostCursor is the analytic twin of simulate.Workload: a streaming
// Eq.-(4) evaluator that scores a Proposition-1 candidate (a first
// reservation t1 expanded with the Eq.-(11) recurrence) in O(L) time
// and O(1) allocations. It fuses the recurrence step with the cost
// summation so each d.Survival(t_i) — the expensive special-function
// call for Gamma/Beta-type laws — is evaluated exactly once and shared
// between the two, where the unfused path (SequenceFromFirstTail +
// ExpectedCost) evaluates it three times: once for the cost term and
// twice across the two recurrence steps that reference t_i.
//
// Construction hoists everything that does not depend on the
// candidate: β·E[X], the survival at t_0 = 0, and the support bound.
// The per-call state is entirely local, so one CostCursor is immutable
// after construction, safe for concurrent use, and reusable across any
// number of candidates — a grid scan builds one per worker block,
// mirroring the Monte-Carlo path's RecurrenceCursor reuse.
//
// Cost and CostBudget reproduce ExpectedCost over SequenceFromFirstTail
// bit for bit: the fused loop performs the same IEEE-754 operations in
// the same order, only skipping the redundant survival re-evaluations
// (which are pure and bitwise reproducible).
//
//repro:hotpath
type CostCursor struct {
	m       CostModel
	d       dist.Distribution
	tailEps float64

	betaMean float64 // β·E[X], the constant first summand of Eq. (4)
	sf0      float64 // P(X >= t_0) = Survival(0), shared by every candidate
	hi       float64
	bounded  bool
}

// NewCostCursor returns a cursor scoring candidates under the same
// tail-tolerance semantics as SequenceFromFirstTail(m, d, t1, tailEps).
// It is returned by value so callers in tight loops keep it on the
// stack.
func NewCostCursor(m CostModel, d dist.Distribution, tailEps float64) CostCursor {
	_, hi := d.Support()
	return CostCursor{
		m: m, d: d, tailEps: tailEps,
		betaMean: m.Beta * d.Mean(),
		sf0:      d.Survival(0.0),
		hi:       hi, bounded: !math.IsInf(hi, 1),
	}
}

// Cost returns the exact Eq.-(4) expected cost of the candidate with
// first reservation t1 — the same value (bitwise) as
// ExpectedCost(m, d, SequenceFromFirstTail(m, d, t1, tailEps)), with
// +Inf for an uncovered sequence and the same sequence errors.
func (c *CostCursor) Cost(t1 float64) (float64, error) {
	cost, _, err := c.CostBudget(t1, math.Inf(1))
	return cost, err
}

// CostBudget is Cost with an admissible early abort: every Eq.-(4)
// term is nonnegative (α > 0, β, γ >= 0, t_i > 0, survival >= 0), so
// the running partial sum is a lower bound on the final cost. As soon
// as the partial sum strictly exceeds budget the candidate is
// abandoned and (partialSum, true, nil) is returned: the true cost is
// >= the returned partial sum > budget, so a candidate competing
// against an incumbent of cost <= budget can never win. A candidate
// whose exact cost is <= budget is never aborted (its partial sums
// never exceed its final cost), so pruning with budget = "best cost so
// far" preserves the exact winner of a scan, ties included. A +Inf
// budget disables pruning.
//
// After an abort the cursor is immediately reusable — the next call
// starts a fresh candidate; no Reset is needed.
func (c *CostCursor) CostBudget(t1, budget float64) (cost float64, pruned bool, err error) {
	return c.costBudget(t1, budget, 0, 0, false)
}

// CostBudgetSeeded is CostBudget with the candidate's first
// special-function pair supplied by the caller: sf1 = Survival and
// f1 = PDF at the support-clamped t1, exactly as a SurvivalTable
// stores them. The seeded values stand in for the calls the loop
// would make at the first expansion step — they are the same pure
// function values, so the result is bit-identical to CostBudget; a
// batched grid scan simply moves the calls into the table's one-pass
// fill.
func (c *CostCursor) CostBudgetSeeded(t1, budget, sf1, f1 float64) (cost float64, pruned bool, err error) {
	return c.costBudget(t1, budget, sf1, f1, true)
}

// costBudget implements CostBudget; with seeded set, sf1/f1 replace
// the Survival/PDF evaluations at the clamped first reservation.
func (c *CostCursor) costBudget(t1, budget, sf1, f1 float64, seeded bool) (cost float64, pruned bool, err error) {
	sum := c.betaMean
	// Recurrence state: tPrev = t_{i-1} with its survival, sfPrev2 the
	// survival at t_{i-2} (the recurrence needs only the survivals of
	// its two predecessors, not t_{i-2} itself). t_0 = 0.
	tPrev := 0.0
	sfPrev, sfPrev2 := c.sf0, c.sf0
	for i := 0; ; i++ {
		sf := sfPrev // Survival(t_{i-1}), shared with the recurrence
		if sf <= survivalCutoff {
			return sum, false, nil
		}
		// Generate t_i lazily — exactly where Sequence.At would — so
		// errors and the uncovered +Inf surface at the same iteration
		// as ExpectedCost over the materialized sequence.
		if i >= MaxSequenceLen {
			return math.NaN(), false, ErrTooLong
		}
		var ti float64
		if i == 0 {
			ti = t1
			if c.bounded && ti >= c.hi {
				ti = c.hi
			}
		} else {
			if c.bounded && tPrev >= c.hi {
				// Support covered, sequence complete (ErrEnd) — but mass
				// remains above the cutoff: uncovered, infinite cost.
				return math.Inf(1), false, nil
			}
			// NextReservation(m, d, t_{i-2}, t_{i-1}) with the survivals
			// already in hand. At the first expansion step a seeded call
			// reads the precomputed PDF of the clamped t1 instead of
			// re-deriving it.
			var f float64
			if seeded && i == 1 {
				f = f1
			} else {
				f = c.d.PDF(tPrev)
			}
			var v float64
			if !(f > 0) || math.IsInf(f, 0) {
				v = math.NaN()
			} else {
				v = sfPrev2/f + c.m.Beta/c.m.Alpha*(sfPrev/f-tPrev) - c.m.Gamma/c.m.Alpha
			}
			if v > tPrev {
				if c.bounded && v >= c.hi {
					v = c.hi // stopping rule: close with b
				}
			} else if sfPrev <= c.tailEps {
				// Breakdown in the negligible tail: close with b (bounded)
				// or extend geometrically (unbounded).
				if c.bounded {
					v = c.hi
				} else {
					v = 2 * tPrev
				}
			}
			if math.IsNaN(v) || v <= tPrev {
				return math.NaN(), false, ErrNonIncreasing
			}
			ti = v
		}
		term := (c.m.Alpha*ti + c.m.Beta*tPrev + c.m.Gamma) * sf
		sum += term
		// Early truncation once both the survival and the current term
		// are negligible (ExpectedCost's exact stopping rule).
		if sf < 1e-9 && term < expectedCostTol*math.Max(1, sum) {
			return sum, false, nil
		}
		if sum > budget {
			return sum, true, nil
		}
		tPrev = ti
		if seeded && i == 0 {
			sfPrev2, sfPrev = sfPrev, sf1 // table-supplied Survival(t_1)
		} else {
			sfPrev2, sfPrev = sfPrev, c.d.Survival(ti)
		}
	}
}

// CostOf evaluates Eq. (4) over an arbitrary cursor — the analytic
// counterpart of simulate.Workload.Cost for sequences that do not come
// from the Eq.-(11) recurrence (heuristic strategies, explicit plans).
// No survival fusion is possible for a generic cursor, but the
// evaluation still streams: no Sequence is materialized beyond what
// cur itself retains. The result matches ExpectedCost over the same
// sequence bitwise, including +Inf for a finite sequence that leaves
// mass uncovered.
func (c *CostCursor) CostOf(cur Cursor) (float64, error) {
	sum := c.betaMean
	tPrev := 0.0
	sfPrev := c.sf0
	for {
		sf := sfPrev
		if sf <= survivalCutoff {
			return sum, nil
		}
		ti, err := cur.Next()
		if err != nil {
			if errors.Is(err, ErrEnd) {
				return math.Inf(1), nil
			}
			return math.NaN(), err
		}
		term := (c.m.Alpha*ti + c.m.Beta*tPrev + c.m.Gamma) * sf
		sum += term
		if sf < 1e-9 && term < expectedCostTol*math.Max(1, sum) {
			return sum, nil
		}
		tPrev = ti
		sfPrev = c.d.Survival(ti)
	}
}

// ConvexCostCursor is the CostCursor analogue for the Appendix-C
// generalization: candidates are expanded with the Eq.-(37) recurrence
// and scored with the convex objective (ExpectedCostConvex), fusing
// the survival evaluations the same way. It reproduces
// ExpectedCostConvex over SequenceFromFirstConvexTail bit for bit.
//
//repro:hotpath
type ConvexCostCursor struct {
	g       ConvexCost
	beta    float64
	d       dist.Distribution
	tailEps float64

	betaMean float64
	sf0      float64
	hi       float64
	bounded  bool
}

// NewConvexCostCursor returns a cursor scoring convex-cost candidates
// under the tail-tolerance semantics of SequenceFromFirstConvexTail.
func NewConvexCostCursor(g ConvexCost, beta float64, d dist.Distribution, tailEps float64) ConvexCostCursor {
	_, hi := d.Support()
	return ConvexCostCursor{
		g: g, beta: beta, d: d, tailEps: tailEps,
		betaMean: beta * d.Mean(),
		sf0:      d.Survival(0.0),
		hi:       hi, bounded: !math.IsInf(hi, 1),
	}
}

// Cost returns the exact Appendix-C expected cost of the candidate
// with first reservation t1.
func (c *ConvexCostCursor) Cost(t1 float64) (float64, error) {
	cost, _, err := c.CostBudget(t1, math.Inf(1))
	return cost, err
}

// CostBudget is Cost with the admissible early abort of
// CostCursor.CostBudget: convex-objective terms are nonnegative for
// G >= 0 on the support, so the partial sum is a lower bound and
// pruning against an incumbent preserves the exact winner.
func (c *ConvexCostCursor) CostBudget(t1, budget float64) (cost float64, pruned bool, err error) {
	sum := c.betaMean
	tPrev := 0.0
	sfPrev, sfPrev2 := c.sf0, c.sf0
	for i := 0; ; i++ {
		sf := sfPrev
		if sf <= survivalCutoff {
			return sum, false, nil
		}
		if i >= MaxSequenceLen {
			return math.NaN(), false, ErrTooLong
		}
		var ti float64
		if i == 0 {
			ti = t1
			if c.bounded && ti >= c.hi {
				ti = c.hi
			}
		} else {
			if c.bounded && tPrev >= c.hi {
				return math.Inf(1), false, nil
			}
			// NextReservationConvex(g, beta, d, t_{i-2}, t_{i-1}) with
			// the survivals already in hand.
			f := c.d.PDF(tPrev)
			var v float64
			if !(f > 0) || math.IsInf(f, 0) {
				v = math.NaN()
			} else {
				y := c.g.Deriv(tPrev)*sfPrev2/f + c.beta*(sfPrev/f-tPrev)
				v = c.g.Inverse(y)
			}
			if v > tPrev {
				if c.bounded && v >= c.hi {
					v = c.hi
				}
			} else if sfPrev <= c.tailEps {
				if c.bounded {
					v = c.hi
				} else {
					v = 2 * tPrev
				}
			}
			if math.IsNaN(v) || v <= tPrev {
				return math.NaN(), false, ErrNonIncreasing
			}
			ti = v
		}
		term := (c.g.At(ti) + c.beta*tPrev) * sf
		sum += term
		if sf < 1e-9 && term < expectedCostTol*math.Max(1, sum) {
			return sum, false, nil
		}
		if sum > budget {
			return sum, true, nil
		}
		tPrev = ti
		sfPrev2, sfPrev = sfPrev, c.d.Survival(ti)
	}
}
