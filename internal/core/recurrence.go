package core

import (
	"math"

	"repro/internal/dist"
)

// NextReservation computes t_{i+1} from (t_{i-1}, t_i) using the
// optimality recurrence of Theorem 3 / Proposition 1 (Eq. 11):
//
//	t_{i+1} = (1-F(t_{i-1}))/f(t_i) + (β/α)·((1-F(t_i))/f(t_i) - t_i) - γ/α.
//
// It returns NaN when the density vanishes at t_i (the recurrence is
// undefined there; Theorem 3 shows this cannot happen along an optimal
// sequence).
//
//repro:hotpath
func NextReservation(m CostModel, d dist.Distribution, tPrev, tCur float64) float64 {
	f := d.PDF(tCur)
	if !(f > 0) || math.IsInf(f, 0) {
		return math.NaN()
	}
	return d.Survival(tPrev)/f + m.Beta/m.Alpha*(d.Survival(tCur)/f-tCur) - m.Gamma/m.Alpha
}

// SequenceFromFirst builds the reservation sequence characterized by
// Proposition 1: the given first reservation t1 followed by the Eq.-(11)
// recurrence, under the paper's strict validity rule — the sequence
// must stay strictly increasing, and for bounded support it closes with
// the upper bound b as soon as the recurrence reaches or exceeds it
// (the F(t_i) = 1 stopping rule). Candidates whose recurrence breaks
// monotonicity report ErrNonIncreasing through the sequence methods;
// the brute-force procedure (§4.1) discards them.
func SequenceFromFirst(m CostModel, d dist.Distribution, t1 float64) *Sequence {
	return SequenceFromFirstTail(m, d, t1, 0)
}

// DefaultTailEps is the tail tolerance matching the paper's evaluation
// protocol: with N = 1000 Monte-Carlo samples, the paper's brute force
// never materializes the recurrence past survival ≈ 1/N, so
// monotonicity breakdowns in the far tail go unnoticed there. Passing
// this value to SequenceFromFirstTail reproduces that effective
// behaviour for the deterministic Eq.-(4) evaluation.
const DefaultTailEps = 1e-3

// SequenceFromFirstTail is SequenceFromFirst with an explicit tail
// tolerance: once the survival probability at the last reservation is
// at most tailEps, a recurrence breakdown no longer invalidates the
// candidate — the sequence is closed with the support bound b (bounded
// support) or extended geometrically by doubling (unbounded support),
// which perturbs the expected cost by at most O(α·t·tailEps).
// tailEps = 0 gives the strict rule.
//
// This mirrors the paper's protocol (§4.1/§5.1): the exact optimal t1
// keeps Eq. (11) increasing forever, but any perturbed t1 — including
// every point of a finite search grid — eventually breaks down; the
// paper's Monte-Carlo evaluation simply never looks that far.
func SequenceFromFirstTail(m CostModel, d dist.Distribution, t1, tailEps float64) *Sequence {
	return sequenceFromRecurrence(d, t1, tailEps, func(prev2, prev float64) float64 {
		return NextReservation(m, d, prev2, prev)
	})
}

// sequenceFromRecurrence builds a sequence from t1 and a two-term
// recurrence with the validity and tail rules described on
// SequenceFromFirstTail.
func sequenceFromRecurrence(d dist.Distribution, t1, tailEps float64, step func(prev2, prev float64) float64) *Sequence {
	_, hi := d.Support()
	bounded := !math.IsInf(hi, 1)
	return NewSequence(func(i int, prefix []float64) (float64, bool) {
		if i == 0 {
			if bounded && t1 >= hi {
				return hi, true
			}
			return t1, true
		}
		prev := prefix[i-1]
		if bounded && prev >= hi {
			return 0, false // support covered; the sequence is complete
		}
		prev2 := 0.0 // t_0 = 0
		if i >= 2 {
			prev2 = prefix[i-2]
		}
		next := step(prev2, prev)
		if next > prev {
			if bounded && next >= hi {
				return hi, true // stopping rule: close with b
			}
			return next, true
		}
		// Monotonicity breakdown (including NaN).
		if d.Survival(prev) <= tailEps {
			if bounded {
				return hi, true
			}
			return 2 * prev, true
		}
		return next, true // surfaces as ErrNonIncreasing
	})
}

// ConvexCost is a convex reservation-cost function G(x) for the
// Appendix-C generalization: a reservation of length x costs G(x)
// (plus β·min(x, t) for the time actually used).
type ConvexCost interface {
	// At returns G(x).
	At(x float64) float64
	// Deriv returns G'(x).
	Deriv(x float64) float64
	// Inverse returns G^{-1}(y) for y in the range of G.
	Inverse(y float64) float64
}

// AffineCost is the affine instance G(x) = αx + γ, under which the
// Appendix-C recurrence reduces exactly to Eq. (11).
type AffineCost struct {
	Alpha, Gamma float64
}

// At implements ConvexCost.
func (c AffineCost) At(x float64) float64 { return c.Alpha*x + c.Gamma }

// Deriv implements ConvexCost.
func (c AffineCost) Deriv(float64) float64 { return c.Alpha }

// Inverse implements ConvexCost.
func (c AffineCost) Inverse(y float64) float64 { return (y - c.Gamma) / c.Alpha }

// QuadraticCost is G(x) = a·x² + b·x + c (a > 0, x >= 0), a strictly
// convex cost that models platforms where long reservations are
// penalized superlinearly.
type QuadraticCost struct {
	A, B, C float64
}

// At implements ConvexCost.
func (c QuadraticCost) At(x float64) float64 { return c.A*x*x + c.B*x + c.C }

// Deriv implements ConvexCost.
func (c QuadraticCost) Deriv(x float64) float64 { return 2*c.A*x + c.B }

// Inverse implements ConvexCost. It returns the nonnegative branch.
func (c QuadraticCost) Inverse(y float64) float64 {
	disc := c.B*c.B - 4*c.A*(c.C-y)
	if disc < 0 {
		return math.NaN()
	}
	return (-c.B + math.Sqrt(disc)) / (2 * c.A)
}

// NextReservationConvex computes t_{i+1} from (t_{i-1}, t_i) under a
// convex reservation cost G (Appendix C, Eq. 37):
//
//	t_{i+1} = G^{-1}( G'(t_i)·(1-F(t_{i-1}))/f(t_i) + β·((1-F(t_i))/f(t_i) - t_i) ).
//
//repro:hotpath
func NextReservationConvex(g ConvexCost, beta float64, d dist.Distribution, tPrev, tCur float64) float64 {
	f := d.PDF(tCur)
	if !(f > 0) || math.IsInf(f, 0) {
		return math.NaN()
	}
	y := g.Deriv(tCur)*d.Survival(tPrev)/f + beta*(d.Survival(tCur)/f-tCur)
	return g.Inverse(y)
}

// SequenceFromFirstConvex is SequenceFromFirst under a convex
// reservation cost G (Proposition 3), with the strict validity rule.
func SequenceFromFirstConvex(g ConvexCost, beta float64, d dist.Distribution, t1 float64) *Sequence {
	return SequenceFromFirstConvexTail(g, beta, d, t1, 0)
}

// SequenceFromFirstConvexTail is SequenceFromFirstConvex with the tail
// tolerance semantics of SequenceFromFirstTail.
func SequenceFromFirstConvexTail(g ConvexCost, beta float64, d dist.Distribution, t1, tailEps float64) *Sequence {
	return sequenceFromRecurrence(d, t1, tailEps, func(prev2, prev float64) float64 {
		return NextReservationConvex(g, beta, d, prev2, prev)
	})
}

// ExpectedCostConvex evaluates the Appendix-C objective
//
//	E(S) = β·E[X] + Σ_{i>=0} (G(t_{i+1}) + β·t_i)·P(X >= t_i)
//
// (which reduces to Eq. 4 when G is affine).
func ExpectedCostConvex(g ConvexCost, beta float64, d dist.Distribution, s *Sequence) (float64, error) {
	sum := beta * d.Mean()
	tPrev := 0.0
	for i := 0; ; i++ {
		sf := d.Survival(tPrev)
		if sf <= survivalCutoff {
			return sum, nil
		}
		ti, err := s.At(i)
		if err != nil {
			if err == ErrEnd {
				return math.Inf(1), nil
			}
			return math.NaN(), err
		}
		term := (g.At(ti) + beta*tPrev) * sf
		sum += term
		if sf < 1e-9 && term < expectedCostTol*math.Max(1, sum) {
			return sum, nil
		}
		tPrev = ti
	}
}
