package core

import (
	"errors"
	"math"

	"repro/internal/dist"
	"repro/internal/quad"
)

// ExpectedCostIntegral evaluates the expected cost directly from the
// definition (Eq. 3):
//
//	E(S) = Σ_{k>=1} ∫_{t_{k-1}}^{t_k} C(k, t) f(t) dt
//
// by numerical quadrature over each segment. It is O(segments ×
// quadrature) and exists to validate Theorem 1: ExpectedCost (the
// closed summation form, Eq. 4) must agree with this integral for every
// distribution and sequence. Production code should use ExpectedCost.
func ExpectedCostIntegral(m CostModel, d dist.Distribution, s *Sequence) (float64, error) {
	if err := m.Validate(); err != nil {
		return math.NaN(), err
	}
	sum := 0.0
	prefixCost := 0.0 // Σ_{i<k} (α t_i + β t_i + γ)
	tPrev := 0.0
	for k := 0; ; k++ {
		sf := d.Survival(tPrev)
		if sf <= survivalCutoff {
			return sum, nil
		}
		tk, err := s.At(k)
		if err != nil {
			if errors.Is(err, ErrEnd) {
				return math.Inf(1), nil
			}
			return math.NaN(), err
		}
		// ∫_{tPrev}^{tk} (prefixCost + α tk + β t + γ) f(t) dt
		seg, qerr := quad.Integrate(func(t float64) float64 {
			return (prefixCost + m.Alpha*tk + m.Beta*t + m.Gamma) * d.PDF(t)
		}, tPrev, tk, 1e-12)
		if qerr != nil && seg == 0 {
			return math.NaN(), qerr
		}
		sum += seg
		prefixCost += m.Alpha*tk + m.Beta*tk + m.Gamma
		tPrev = tk
	}
}
