package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func explicit(t *testing.T, vals ...float64) *Sequence {
	t.Helper()
	s, err := NewExplicitSequence(vals...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCostModelValidate(t *testing.T) {
	good := []CostModel{ReservationOnly, {1, 1, 1}, {0.95, 1, 1.05}}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("%v rejected: %v", m, err)
		}
	}
	bad := []CostModel{{}, {-1, 0, 0}, {1, -1, 0}, {1, 0, -1}, {math.NaN(), 0, 0}, {1, math.Inf(1), 0}}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%v accepted", m)
		}
	}
}

func TestAttemptCost(t *testing.T) {
	m := CostModel{Alpha: 2, Beta: 3, Gamma: 5}
	// Job finishes inside the reservation: pay α·res + β·t + γ.
	if got := m.AttemptCost(10, 4); got != 2*10+3*4+5 {
		t.Errorf("AttemptCost(10,4) = %g", got)
	}
	// Job overruns: used time equals reservation.
	if got := m.AttemptCost(10, 40); got != 2*10+3*10+5 {
		t.Errorf("AttemptCost(10,40) = %g", got)
	}
}

func TestRunCostEq2(t *testing.T) {
	m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 2}
	s := explicit(t, 2, 4, 8)
	// t = 5 needs k = 3 attempts.
	cost, k, err := m.RunCost(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := (1*2 + 0.5*2 + 2) + (1*4 + 0.5*4 + 2) + (1*8 + 0.5*5 + 2)
	if k != 3 || math.Abs(cost-want) > 1e-12 {
		t.Errorf("RunCost = %g (k=%d), want %g (k=3)", cost, k, want)
	}
	// t below the first reservation: one attempt.
	cost, k, err = m.RunCost(s, 1)
	if err != nil || k != 1 {
		t.Fatalf("RunCost(1): k=%d err=%v", k, err)
	}
	if want := 1*2 + 0.5*1 + 2; math.Abs(cost-want) > 1e-12 {
		t.Errorf("RunCost(1) = %g, want %g", cost, want)
	}
	// t exactly at a boundary belongs to that reservation.
	_, k, _ = m.RunCost(s, 4)
	if k != 2 {
		t.Errorf("RunCost(4): k=%d, want 2", k)
	}
	// Beyond the last reservation: uncovered.
	if _, _, err := m.RunCost(s, 9); !errors.Is(err, ErrUncovered) {
		t.Errorf("RunCost(9) err=%v, want ErrUncovered", err)
	}
}

func TestSequenceValidation(t *testing.T) {
	if _, err := NewExplicitSequence(); err == nil {
		t.Error("empty explicit sequence accepted")
	}
	if _, err := NewExplicitSequence(3, 2); err == nil {
		t.Error("decreasing explicit sequence accepted")
	}
	if _, err := NewExplicitSequence(0); err == nil {
		t.Error("zero first reservation accepted")
	}
	if _, err := NewExplicitSequence(1, 1); err == nil {
		t.Error("repeated reservation accepted")
	}
}

func TestSequenceLazyGeneration(t *testing.T) {
	calls := 0
	s := NewSequence(func(i int, prefix []float64) (float64, bool) {
		calls++
		return float64(i + 1), true
	})
	v, err := s.At(4)
	if err != nil || v != 5 {
		t.Fatalf("At(4) = %g, %v", v, err)
	}
	if calls != 5 {
		t.Errorf("generator called %d times, want 5", calls)
	}
	// Re-reading does not regenerate.
	if _, err := s.At(2); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("generator re-called: %d", calls)
	}
}

func TestSequenceNonIncreasingDetected(t *testing.T) {
	s := NewSequence(func(i int, prefix []float64) (float64, bool) {
		return 10 - float64(i), true // 10, 9, 8: decreasing after first
	})
	if _, err := s.At(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(1); !errors.Is(err, ErrNonIncreasing) {
		t.Errorf("err = %v, want ErrNonIncreasing", err)
	}
	// The error is sticky.
	if _, err := s.At(5); !errors.Is(err, ErrNonIncreasing) {
		t.Errorf("sticky err = %v", err)
	}
}

func TestSequenceEndAndTooLong(t *testing.T) {
	s := NewSequence(func(i int, prefix []float64) (float64, bool) {
		if i >= 3 {
			return 0, false
		}
		return float64(i + 1), true
	})
	if _, err := s.At(3); !errors.Is(err, ErrEnd) {
		t.Errorf("err = %v, want ErrEnd", err)
	}
	long := NewSequence(func(i int, prefix []float64) (float64, bool) {
		return float64(i + 1), true
	})
	if _, err := long.At(MaxSequenceLen + 10); !errors.Is(err, ErrTooLong) {
		t.Errorf("err = %v, want ErrTooLong", err)
	}
}

func TestFirstCovering(t *testing.T) {
	s := explicit(t, 2, 4, 8)
	cases := []struct {
		t    float64
		want int
	}{{1, 0}, {2, 0}, {2.5, 1}, {4, 1}, {7.9, 2}, {8, 2}}
	for _, c := range cases {
		got, err := s.FirstCovering(c.t)
		if err != nil || got != c.want {
			t.Errorf("FirstCovering(%g) = %d, %v; want %d", c.t, got, err, c.want)
		}
	}
	if _, err := s.FirstCovering(9); !errors.Is(err, ErrUncovered) {
		t.Errorf("FirstCovering(9) err = %v", err)
	}
}

func TestOmniscientCost(t *testing.T) {
	d := dist.MustUniform(10, 20)
	m := CostModel{Alpha: 2, Beta: 1, Gamma: 3}
	if got, want := m.OmniscientCost(d), 3.0*15+3; got != want {
		t.Errorf("omniscient = %g, want %g", got, want)
	}
}

// TestExpectedCostUniformClosedForm checks Eq. (4) against the worked
// two-reservation UNIFORM example of §2.3.
func TestExpectedCostUniformClosedForm(t *testing.T) {
	a, b := 10.0, 20.0
	d := dist.MustUniform(a, b)
	m := CostModel{Alpha: 1, Beta: 0.5, Gamma: 2}
	mid := (a + b) / 2
	s := explicit(t, mid, b)
	got, err := ExpectedCost(m, d, s)
	if err != nil {
		t.Fatal(err)
	}
	// Direct evaluation of Eq. (3) for S = (mid, b):
	// t in [a, mid]: α·mid + β·t + γ; t in [mid, b]: add the full first
	// attempt and α·b + β·t + γ.
	first := m.Alpha*mid + m.Beta*(a+mid)/2 + m.Gamma
	second := (m.Alpha*mid + m.Beta*mid + m.Gamma) + m.Alpha*b + m.Beta*(mid+b)/2 + m.Gamma
	want := 0.5*first + 0.5*second
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedCost = %.12g, want %.12g", got, want)
	}
}

// TestTheorem4UniformSingleReservation: for Uniform(a,b) the single
// reservation (b) beats any (t1, b) with t1 < b, for several cost
// models.
func TestTheorem4UniformSingleReservation(t *testing.T) {
	d := dist.MustUniform(10, 20)
	for _, m := range []CostModel{ReservationOnly, {1, 1, 0}, {1, 0.5, 2}, {0.95, 1, 1.05}} {
		best, err := ExpectedCost(m, d, explicit(t, 20))
		if err != nil {
			t.Fatal(err)
		}
		for _, t1 := range []float64{11, 14, 15, 18, 19.9} {
			e, err := ExpectedCost(m, d, explicit(t, t1, 20))
			if err != nil {
				t.Fatal(err)
			}
			if e <= best {
				t.Errorf("%v: E(%g, 20) = %g <= E(20) = %g, contradicts Theorem 4", m, t1, e, best)
			}
		}
	}
}

// TestUniformNormalizedCost: Table-1 Uniform under ReservationOnly has
// normalized cost b/E[X] = 20/15 = 4/3 for the optimal strategy.
func TestUniformNormalizedCost(t *testing.T) {
	d := dist.MustUniform(10, 20)
	r, err := NormalizedExpectedCost(ReservationOnly, d, explicit(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-4.0/3.0) > 1e-12 {
		t.Errorf("normalized cost = %.12g, want 4/3", r)
	}
}

func TestExpectedCostUncoveredIsInfinite(t *testing.T) {
	d := dist.MustUniform(10, 20)
	e, err := ExpectedCost(ReservationOnly, d, explicit(t, 15)) // covers only half
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e, 1) {
		t.Errorf("uncovered sequence cost = %g, want +Inf", e)
	}
}

// TestExpectedCostExponentialArithmetic checks Eq. (4) on the
// arithmetic sequence t_i = i/λ of §2.3:
// E = Σ_{i>=0} ((i+1)/λ)·e^{-i} = (1/λ)·Σ (i+1) e^{-i} = (1/λ)/(1-e^{-1})².
func TestExpectedCostExponentialArithmetic(t *testing.T) {
	for _, lambda := range []float64{0.5, 1, 2} {
		d := dist.MustExponential(lambda)
		s := NewSequence(func(i int, _ []float64) (float64, bool) {
			return float64(i+1) / lambda, true
		})
		got, err := ExpectedCost(ReservationOnly, d, s)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / lambda / ((1 - math.Exp(-1)) * (1 - math.Exp(-1)))
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("λ=%g: E = %.12g, want %.12g", lambda, got, want)
		}
	}
}

// TestRecurrenceExponential verifies Eq. (11) specializes to
// t_{i+1} = e^{λ(t_i - t_{i-1})}/λ... i.e. s_2 = e^{s_1} for Exp(1)
// under RESERVATIONONLY (Proposition 2).
func TestRecurrenceExponential(t *testing.T) {
	d := dist.MustExponential(1)
	s1 := 0.74219
	s := SequenceFromFirst(ReservationOnly, d, s1)
	v0, _ := s.At(0)
	v1, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != s1 {
		t.Errorf("t1 = %g", v0)
	}
	if math.Abs(v1-math.Exp(s1)) > 1e-12 {
		t.Errorf("t2 = %.12g, want e^{s1} = %.12g", v1, math.Exp(s1))
	}
	// General step: s_i = e^{s_{i-1} - s_{i-2}} (Eq. 12).
	v2, err := s.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v2-math.Exp(v1-v0)) > 1e-9 {
		t.Errorf("t3 = %.12g, want %.12g", v2, math.Exp(v1-v0))
	}
}

// TestExponentialOptimalFirstReservation: the brute-force optimum for
// Exp(1) RESERVATIONONLY is s1 ≈ 0.74219 (§3.5); the expected cost at
// the optimum must beat nearby and distant candidates.
func TestExponentialOptimalFirstReservation(t *testing.T) {
	d := dist.MustExponential(1)
	eval := func(t1 float64) float64 {
		s := SequenceFromFirstTail(ReservationOnly, d, t1, DefaultTailEps)
		e, err := ExpectedCost(ReservationOnly, d, s)
		if err != nil {
			return math.Inf(1)
		}
		return e
	}
	best := eval(0.74219)
	if best > 2.5 || best < 2.2 {
		t.Errorf("E at s1=0.74219 is %g, expected ≈2.36", best)
	}
	for _, t1 := range []float64{0.5, 0.6, 0.9, 1.2, 2} {
		if e := eval(t1); e < best-1e-6 {
			t.Errorf("t1=%g has cost %g < optimum %g", t1, e, best)
		}
	}
}

// TestExponentialScaleInvariance (Proposition 2): the optimal sequence
// for Exp(λ) is the Exp(1) sequence scaled by 1/λ, and its cost is
// E1/λ.
func TestExponentialScaleInvariance(t *testing.T) {
	s1 := 0.74219
	d1 := dist.MustExponential(1)
	e1, err := ExpectedCost(ReservationOnly, d1, SequenceFromFirstTail(ReservationOnly, d1, s1, DefaultTailEps))
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0.25, 2, 10} {
		dl := dist.MustExponential(lambda)
		sl := SequenceFromFirstTail(ReservationOnly, dl, s1/lambda, DefaultTailEps)
		el, err := ExpectedCost(ReservationOnly, dl, sl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(el-e1/lambda) > 1e-6*e1/lambda {
			t.Errorf("λ=%g: E = %.9g, want E1/λ = %.9g", lambda, el, e1/lambda)
		}
		// The scaled sequence matches element-wise.
		v1, _ := SequenceFromFirstTail(ReservationOnly, d1, s1, DefaultTailEps).Prefix(5)
		vl, _ := sl.Clone().Prefix(5)
		for i := range vl {
			if math.Abs(vl[i]-v1[i]/lambda) > 1e-9*v1[i] {
				t.Errorf("λ=%g: t_%d = %g, want %g", lambda, i+1, vl[i], v1[i]/lambda)
			}
		}
	}
}

// TestRecurrenceBoundedValidity: strict-rule behaviour on bounded
// supports. For Uniform(a,b), Eq. (11) gives t_2 = b-a <= t_1 for every
// t_1 in [a, b), so every candidate except t_1 = b is invalid — exactly
// the Table-3 "-" entries and the content of Theorem 4. For Beta(2,2),
// candidates with 6·t1(1-t1) <= 1 (t1 >= ~0.7887) reach b in one step
// and close with b.
func TestRecurrenceBoundedValidity(t *testing.T) {
	u := dist.MustUniform(10, 20)
	for _, t1 := range []float64{12.5, 15, 17.5, 19.9} {
		s := SequenceFromFirst(ReservationOnly, u, t1)
		if _, err := s.Prefix(10); !errors.Is(err, ErrNonIncreasing) {
			t.Errorf("Uniform t1=%g: err = %v, want ErrNonIncreasing", t1, err)
		}
	}
	s := SequenceFromFirst(ReservationOnly, u, 20)
	vals, err := s.Prefix(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != 20 {
		t.Errorf("Uniform t1=b: sequence %v, want (20)", vals)
	}
	if _, err := s.At(1); !errors.Is(err, ErrEnd) {
		t.Errorf("expected ErrEnd after b, got %v", err)
	}

	beta := dist.MustBeta(2, 2)
	s = SequenceFromFirst(ReservationOnly, beta, 0.85)
	vals, err = s.Prefix(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[1] != 1 {
		t.Errorf("Beta t1=0.85: sequence %v, want (0.85, 1)", vals)
	}
	// Below the threshold the strict rule invalidates the candidate.
	s = SequenceFromFirst(ReservationOnly, beta, 0.5)
	if _, err := s.Prefix(10); !errors.Is(err, ErrNonIncreasing) {
		t.Errorf("Beta t1=0.5: err = %v, want ErrNonIncreasing", err)
	}
}

func TestBoundFirstReservation(t *testing.T) {
	// Exponential(1), RESERVATIONONLY: A1 = E[X]+1+(E[X²]-0)/2+(E[X]-0)
	// = 1+1+1+1 = 4.
	d := dist.MustExponential(1)
	if got := BoundFirstReservation(ReservationOnly, d); math.Abs(got-4) > 1e-12 {
		t.Errorf("A1 = %g, want 4", got)
	}
	// A2 = α·A1 + γ + β·E[X] = 4.
	if got := BoundExpectedCost(ReservationOnly, d); math.Abs(got-4) > 1e-12 {
		t.Errorf("A2 = %g, want 4", got)
	}
	// Bounded support: A1 is clamped at b.
	u := dist.MustUniform(10, 20)
	if got := BoundFirstReservation(ReservationOnly, u); got != 20 {
		t.Errorf("A1 for Uniform = %g, want 20", got)
	}
}

// TestBoundDominatesOptimal: A1 must upper-bound the empirically best
// t1 and A2 the best expected cost, across Table-1 distributions.
func TestBoundDominatesOptimal(t *testing.T) {
	for _, d := range dist.Table1() {
		m := ReservationOnly
		a1 := BoundFirstReservation(m, d)
		a2 := BoundExpectedCost(m, d)
		lo, _ := d.Support()
		bestCost := math.Inf(1)
		for i := 0; i <= 50; i++ {
			t1 := lo + (a1-lo)*float64(i)/50
			if t1 <= 0 {
				continue
			}
			e, err := ExpectedCost(m, d, SequenceFromFirstTail(m, d, t1, DefaultTailEps))
			if err != nil || math.IsInf(e, 1) {
				continue
			}
			if e < bestCost {
				bestCost = e
			}
		}
		if bestCost > a2+1e-9 {
			t.Errorf("%s: best scanned cost %g exceeds A2 = %g", d.Name(), bestCost, a2)
		}
	}
}

// TestConvexAffineMatchesEq11: with G affine the convex recurrence and
// cost must coincide with the affine ones.
func TestConvexAffineMatchesEq11(t *testing.T) {
	m := CostModel{Alpha: 0.95, Beta: 1, Gamma: 1.05}
	g := AffineCost{Alpha: m.Alpha, Gamma: m.Gamma}
	d := dist.MustLogNormal(0.5, 0.4)
	// Find a t1 that yields a valid sequence under the affine model.
	var t1 float64
	var sa *Sequence
	var va []float64
	found := false
	for i := 1; i <= 400 && !found; i++ {
		t1 = float64(i) * 0.05
		sa = SequenceFromFirstTail(m, d, t1, DefaultTailEps)
		if v, err := sa.Prefix(8); err == nil {
			va, found = v, true
		}
	}
	if !found {
		t.Fatal("no valid t1 found for the affine recurrence")
	}
	sc := SequenceFromFirstConvexTail(g, m.Beta, d, t1, DefaultTailEps)
	vc, err2 := sc.Prefix(8)
	if err2 != nil {
		t.Fatalf("convex prefix error at t1=%g: %v", t1, err2)
	}
	for i := range va {
		if math.Abs(va[i]-vc[i]) > 1e-9*math.Max(1, va[i]) {
			t.Errorf("element %d: affine %g vs convex %g", i, va[i], vc[i])
		}
	}
	ea, _ := ExpectedCost(m, d, sa.Clone())
	ec, err := ExpectedCostConvex(g, m.Beta, d, sc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ea-ec) > 1e-9*ea {
		t.Errorf("expected costs differ: affine %g vs convex %g", ea, ec)
	}
}

func TestQuadraticCostInverse(t *testing.T) {
	g := QuadraticCost{A: 2, B: 3, C: 1}
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 100))
		y := g.At(x)
		back := g.Inverse(y)
		return math.Abs(back-x) < 1e-8*(1+x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Derivative sanity: finite difference.
	for _, x := range []float64{0, 1, 5} {
		h := 1e-6
		fd := (g.At(x+h) - g.At(x-h)) / (2 * h)
		if math.Abs(fd-g.Deriv(x)) > 1e-4 {
			t.Errorf("Deriv(%g) = %g, finite difference %g", x, g.Deriv(x), fd)
		}
	}
}

// TestQuadraticConvexSequenceValid: the convex recurrence under a
// quadratic cost produces an increasing sequence with finite expected
// cost for a reasonable t1.
func TestQuadraticConvexSequenceValid(t *testing.T) {
	g := QuadraticCost{A: 0.1, B: 1, C: 0.5}
	d := dist.MustExponential(1)
	var s *Sequence
	var vals []float64
	found := false
	for i := 1; i <= 200 && !found; i++ {
		s = SequenceFromFirstConvexTail(g, 0, d, float64(i)*0.02, DefaultTailEps)
		if v, err := s.Prefix(6); err == nil {
			vals, found = v, true
		}
	}
	if !found {
		t.Fatal("no valid t1 found for the quadratic convex recurrence")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("not increasing: %v", vals)
		}
	}
	e, err := ExpectedCostConvex(g, 0, d, s.Clone())
	if err != nil || math.IsInf(e, 1) {
		t.Errorf("expected cost = %g, err %v", e, err)
	}
}

func TestNormalizedAtLeastOne(t *testing.T) {
	// Property: any valid strategy costs at least the omniscient one.
	for _, d := range dist.Table1() {
		lo, hi := d.Support()
		var s *Sequence
		if math.IsInf(hi, 1) {
			mean := d.Mean()
			s = NewSequence(func(i int, _ []float64) (float64, bool) {
				return mean * float64(i+1), true
			})
		} else {
			var err error
			s, err = NewExplicitSequence(lo+(hi-lo)/2, hi)
			if err != nil {
				t.Fatal(err)
			}
		}
		r, err := NormalizedExpectedCost(ReservationOnly, d, s)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if r < 1 {
			t.Errorf("%s: normalized cost %g < 1", d.Name(), r)
		}
	}
}

func TestSequenceString(t *testing.T) {
	s := explicit(t, 1, 2, 3)
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
	bad := NewSequence(func(i int, _ []float64) (float64, bool) { return -1, true })
	if got := bad.String(); got == "" {
		t.Error("empty String() for invalid sequence")
	}
}
