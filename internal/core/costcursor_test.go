package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/dist"
)

// costCursorModels are the three cost-model scenarios the parity
// property probes: the paper's RESERVATIONONLY instance, the NeuroHPC
// affine model (§5.3), and a mixed model with fractional β and small γ.
var costCursorModels = []CostModel{
	ReservationOnly,
	{Alpha: 0.95, Beta: 1, Gamma: 1.05},
	{Alpha: 1, Beta: 0.5, Gamma: 0.1},
}

// TestCostCursorMatchesExpectedCost is the equivalence property behind
// the analytic fast path: across all nine Table-1 distributions, the
// three cost-model scenarios, a sweep of first reservations and both
// tail rules, the fused cursor must reproduce ExpectedCost over the
// materialized SequenceFromFirstTail — same value (bitwise: the fused
// loop performs the identical IEEE-754 operations, merely sharing the
// survival evaluations) and the same error classification.
func TestCostCursorMatchesExpectedCost(t *testing.T) {
	for _, m := range costCursorModels {
		for _, d := range dist.Table1() {
			lo, _ := d.Support()
			hi := BoundFirstReservation(m, d)
			for _, tailEps := range []float64{0, DefaultTailEps} {
				cur := NewCostCursor(m, d, tailEps) // one cursor across all candidates
				for _, frac := range []float64{0.01, 0.05, 0.2, 0.5, 0.75, 0.9, 1.0} {
					t1 := lo + (hi-lo)*frac
					want, errWant := ExpectedCost(m, d, SequenceFromFirstTail(m, d, t1, tailEps))
					got, errGot := cur.Cost(t1)
					if (errWant == nil) != (errGot == nil) {
						t.Fatalf("%s %v t1=%g eps=%g: ExpectedCost err %v, cursor err %v",
							d.Name(), m, t1, tailEps, errWant, errGot)
					}
					if errWant != nil {
						if !errors.Is(errGot, errWant) {
							t.Fatalf("%s t1=%g: error mismatch: %v vs %v", d.Name(), t1, errWant, errGot)
						}
						continue
					}
					if want != got { //lint:ignore floatcmp parity test: identical operations must give identical bits
						t.Errorf("%s %v t1=%g eps=%g: ExpectedCost %.17g, cursor %.17g",
							d.Name(), m, t1, tailEps, want, got)
					}
				}
			}
		}
	}
}

// TestCostCursorCostOfMatchesExpectedCost: the generic streaming
// evaluator must agree with ExpectedCost on sequences that do not come
// from the recurrence — explicit finite plans, including the uncovered
// (+Inf) case.
func TestCostCursorCostOfMatchesExpectedCost(t *testing.T) {
	for _, m := range costCursorModels {
		for _, d := range dist.Table1() {
			cur := NewCostCursor(m, d, 0)
			q99 := d.Quantile(0.99)
			for _, vals := range [][]float64{
				{d.Quantile(0.5)},                        // short: typically uncovered on unbounded laws
				{d.Quantile(0.5), q99, q99 * 2, q99 * 8}, // deeper coverage
				{d.Quantile(0.999999999999), q99 * 16},   // near-total coverage
			} {
				s, err := NewExplicitSequence(strictlyIncreasing(vals)...)
				if err != nil {
					t.Fatal(err)
				}
				want, errWant := ExpectedCost(m, d, s.Clone())
				sc := s.Cursor()
				got, errGot := cur.CostOf(&sc)
				if (errWant == nil) != (errGot == nil) {
					t.Fatalf("%s %v seq=%v: ExpectedCost err %v, CostOf err %v", d.Name(), m, vals, errWant, errGot)
				}
				if errWant != nil {
					continue
				}
				if want != got { //lint:ignore floatcmp parity test: identical operations must give identical bits
					t.Errorf("%s %v seq=%v: ExpectedCost %.17g, CostOf %.17g", d.Name(), m, vals, want, got)
				}
			}
		}
	}
}

// strictlyIncreasing drops values that do not strictly increase, so
// quantile-derived test sequences stay valid on every law.
func strictlyIncreasing(vals []float64) []float64 {
	out := vals[:0:0]
	prev := 0.0
	for _, v := range vals {
		if v > prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// TestCostCursorUncoveredFinite: a finite explicit sequence ending
// below the distribution's effective support must score +Inf on both
// the reference and the streaming path.
func TestCostCursorUncoveredFinite(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := ReservationOnly
	s, err := NewExplicitSequence(d.Quantile(0.25), d.Quantile(0.5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedCost(m, d, s.Clone())
	if err != nil || !math.IsInf(want, 1) {
		t.Fatalf("ExpectedCost = %g, %v; want +Inf", want, err)
	}
	cur := NewCostCursor(m, d, 0)
	sc := s.Cursor()
	got, err := cur.CostOf(&sc)
	if err != nil || !math.IsInf(got, 1) {
		t.Errorf("CostOf = %g, %v; want +Inf", got, err)
	}
}

// TestCostCursorBudgetAbortResume: the early abort must return an
// admissible lower bound strictly above the budget, and the cursor
// must be immediately reusable afterwards — the next call (exact or
// budgeted) starts a fresh candidate and reproduces a fresh cursor's
// result bitwise.
func TestCostCursorBudgetAbortResume(t *testing.T) {
	for _, m := range costCursorModels {
		for _, d := range []dist.Distribution{
			dist.MustLogNormal(3, 0.5),
			dist.MustExponential(1),
			dist.MustGamma(2, 2),
		} {
			lo, _ := d.Support()
			hi := BoundFirstReservation(m, d)
			cur := NewCostCursor(m, d, DefaultTailEps)
			t1 := lo + (hi-lo)*0.4
			exact, err := cur.Cost(t1)
			if err != nil || math.IsInf(exact, 1) || math.IsNaN(exact) {
				t.Fatalf("%s %v: exact cost = %g, %v", d.Name(), m, exact, err)
			}
			// A budget below the β·E[X] floor aborts on the very first
			// term; any budget below the exact cost aborts somewhere.
			for _, budget := range []float64{exact * 0.1, exact * 0.5, exact * 0.99} {
				partial, pruned, err := cur.CostBudget(t1, budget)
				if err != nil {
					t.Fatalf("%s budget=%g: %v", d.Name(), budget, err)
				}
				if !pruned {
					t.Fatalf("%s budget=%g < exact %g: not pruned", d.Name(), budget, exact)
				}
				if !(partial > budget) {
					t.Errorf("%s: pruned partial %g not above budget %g", d.Name(), partial, budget)
				}
				if partial > exact {
					t.Errorf("%s: partial %g exceeds exact cost %g — not a lower bound", d.Name(), partial, exact)
				}
				// Resume: the abort left no state behind.
				again, err := cur.Cost(t1)
				if err != nil {
					t.Fatal(err)
				}
				if again != exact { //lint:ignore floatcmp reuse after abort must be bit-identical
					t.Errorf("%s: cost after abort %.17g != %.17g", d.Name(), again, exact)
				}
			}
			// A budget at exactly the final cost must NOT abort: the
			// partial sums never strictly exceed the final value, so the
			// winner of a scan survives a tie with the incumbent.
			full, pruned, err := cur.CostBudget(t1, exact)
			if err != nil || pruned {
				t.Errorf("%s: budget=exact pruned=%v err=%v; want exact completion", d.Name(), pruned, err)
			} else if full != exact { //lint:ignore floatcmp parity test
				t.Errorf("%s: budget=exact cost %.17g != %.17g", d.Name(), full, exact)
			}
		}
	}
}

// TestCostCursorInvalidCandidates: candidates whose recurrence breaks
// down must fail identically on both paths (ErrNonIncreasing), and the
// cursor must remain usable after the failure.
func TestCostCursorInvalidCandidates(t *testing.T) {
	d := dist.MustUniform(10, 20)
	m := ReservationOnly
	cur := NewCostCursor(m, d, 0) // strict rule: interior candidates break down
	if _, err := cur.Cost(11); !errors.Is(err, ErrNonIncreasing) {
		t.Errorf("interior strict candidate: err = %v, want ErrNonIncreasing", err)
	}
	// t1 = 0 is rejected like the materialized path.
	if _, err := cur.Cost(0); !errors.Is(err, ErrNonIncreasing) {
		t.Errorf("t1=0: err = %v, want ErrNonIncreasing", err)
	}
	// Still usable: t1 >= b clamps to the single covering reservation.
	cost, err := cur.Cost(25)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedCost(m, d, SequenceFromFirstTail(m, d, 25, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cost != want { //lint:ignore floatcmp parity test
		t.Errorf("clamped candidate: %.17g != %.17g", cost, want)
	}
}

// TestConvexCostCursorMatchesExpectedCostConvex: the convex cursor
// must reproduce ExpectedCostConvex over SequenceFromFirstConvexTail,
// for both a strictly convex cost and the affine instance.
func TestConvexCostCursorMatchesExpectedCostConvex(t *testing.T) {
	costs := []ConvexCost{
		QuadraticCost{A: 0.1, B: 1, C: 0.5},
		AffineCost{Alpha: 1, Gamma: 0.2},
	}
	for _, g := range costs {
		for _, beta := range []float64{0, 1} {
			for _, d := range []dist.Distribution{
				dist.MustLogNormal(1, 0.5),
				dist.MustExponential(0.5),
				dist.MustUniform(2, 9),
			} {
				lo, _ := d.Support()
				upper := lo + 10*d.Mean()
				cur := NewConvexCostCursor(g, beta, d, DefaultTailEps)
				for _, frac := range []float64{0.05, 0.3, 0.6, 0.95} {
					t1 := lo + (upper-lo)*frac
					s := SequenceFromFirstConvexTail(g, beta, d, t1, DefaultTailEps)
					want, errWant := ExpectedCostConvex(g, beta, d, s)
					got, errGot := cur.Cost(t1)
					if (errWant == nil) != (errGot == nil) {
						t.Fatalf("%s g=%#v β=%g t1=%g: reference err %v, cursor err %v",
							d.Name(), g, beta, t1, errWant, errGot)
					}
					if errWant != nil {
						continue
					}
					if want != got { //lint:ignore floatcmp parity test: identical operations must give identical bits
						t.Errorf("%s g=%#v β=%g t1=%g: reference %.17g, cursor %.17g",
							d.Name(), g, beta, t1, want, got)
					}
				}
			}
		}
	}
}

// TestCostCursorConcurrent exercises the cursor's concurrency
// contract under the race detector: a CostCursor is immutable after
// construction (all per-call state is local), so one instance shared
// by many goroutines — mixing exact, budgeted and aborted calls — must
// produce identical results everywhere.
func TestCostCursorConcurrent(t *testing.T) {
	d := dist.MustGamma(2, 2)
	m := CostModel{Alpha: 0.95, Beta: 1, Gamma: 1.05}
	lo, _ := d.Support()
	hi := BoundFirstReservation(m, d)
	shared := NewCostCursor(m, d, DefaultTailEps)

	const goroutines = 16
	const candidates = 64
	want := make([]float64, candidates)
	for i := range want {
		t1 := lo + (hi-lo)*float64(i+1)/float64(candidates)
		c, err := shared.Cost(t1)
		if err != nil {
			c = math.NaN()
		}
		want[i] = c
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < candidates; i++ {
				t1 := lo + (hi-lo)*float64(i+1)/float64(candidates)
				// Interleave aborted calls to stress the reuse path.
				if (g+i)%3 == 0 {
					if _, _, err := shared.CostBudget(t1, want[i]/2); err != nil {
						return
					}
				}
				c, err := shared.Cost(t1)
				if err != nil {
					c = math.NaN()
				}
				if c != want[i] && !(math.IsNaN(c) && math.IsNaN(want[i])) { //lint:ignore floatcmp parity test
					errs[g] = errors.New("concurrent result diverged from serial result")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
