package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/simulate"
	"repro/internal/strategy"
	"repro/internal/tablefmt"
)

// MisspecRow is one (truth, planning model) cell of the
// misspecification study: a sequence planned on a wrong or estimated
// model, priced on the true law.
type MisspecRow struct {
	Truth string
	// PlannedOn identifies the model the planner saw.
	PlannedOn string
	// TrueCost is the exact normalized cost of the planned sequence
	// under the truth.
	TrueCost float64
	// OracleCost is the exact normalized cost of planning directly on
	// the truth.
	OracleCost float64
	// OverheadPct = 100·(TrueCost/OracleCost − 1).
	OverheadPct float64
}

// StudyMisspecification measures how robust the brute-force plan is to
// model error — the situation every real deployment faces: the law is
// never known, only fitted. Three planning models per truth:
//
//   - "truth" — the clairvoyant oracle;
//   - "lognormal-moments" — a LogNormal moment-matched to the truth
//     (the paper's §5.3 practice: everything is fitted as LogNormal);
//   - "fit-100-samples" — a LogNormal fitted to only 100 observed runs.
func StudyMisspecification(cfg Config) ([]MisspecRow, error) {
	cfg = cfg.withDefaults()
	m := core.ReservationOnly
	truths := []dist.Distribution{
		dist.MustGamma(2, 2),
		dist.MustWeibull(1, 1.5),
		dist.MustLogNormal(1, 0.5),
		dist.MustTruncatedNormal(8, 1.4142135623730951, 0),
	}
	gridM := cfg.M
	if gridM > 1500 {
		gridM = 1500
	}
	bf := strategy.BruteForce{M: gridM, Mode: strategy.EvalAnalytic}

	planAndPrice := func(truth, planModel dist.Distribution) (float64, error) {
		seq, err := bf.Sequence(m, planModel)
		if err != nil {
			return math.NaN(), err
		}
		e, err := core.ExpectedCost(m, truth, seq.Clone())
		if err != nil || math.IsInf(e, 1) {
			return math.NaN(), err
		}
		return e / m.OmniscientCost(truth), nil
	}

	var rows []MisspecRow
	for ti, truth := range truths {
		oracle, err := planAndPrice(truth, truth)
		if err != nil {
			return nil, fmt.Errorf("experiments: oracle plan on %s: %w", truth.Name(), err)
		}
		models := []struct {
			name string
			d    dist.Distribution
		}{}
		if mm, err := dist.LogNormalFromMoments(truth.Mean(), dist.StdDev(truth)); err == nil {
			models = append(models, struct {
				name string
				d    dist.Distribution
			}{"lognormal-moments", mm})
		}
		samples := simulate.Samples(truth, 100, cfg.Seed+uint64(ti))
		if fit, err := dist.FitLogNormal(samples); err == nil {
			models = append(models, struct {
				name string
				d    dist.Distribution
			}{"fit-100-samples", fit})
		}
		rows = append(rows, MisspecRow{
			Truth: truth.Name(), PlannedOn: "truth (oracle)",
			TrueCost: oracle, OracleCost: oracle, OverheadPct: 0,
		})
		for _, mod := range models {
			c, err := planAndPrice(truth, mod.d)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", mod.name, truth.Name(), err)
			}
			rows = append(rows, MisspecRow{
				Truth: truth.Name(), PlannedOn: mod.name,
				TrueCost: c, OracleCost: oracle,
				OverheadPct: 100 * (c/oracle - 1),
			})
		}
	}
	return rows, nil
}

// RenderMisspecification formats the misspecification study.
func RenderMisspecification(rows []MisspecRow) *tablefmt.Table {
	t := tablefmt.New(
		"Robustness: planning on a misspecified model, priced on the truth (ReservationOnly, normalized costs)",
		"Truth", "Planned on", "true cost", "oracle", "overhead")
	for _, r := range rows {
		t.AddRow(r.Truth, r.PlannedOn,
			tablefmt.Num(r.TrueCost), tablefmt.Num(r.OracleCost),
			fmt.Sprintf("%+.1f%%", r.OverheadPct))
	}
	return t
}
