package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

// small returns a configuration fast enough for unit tests while
// keeping the experiment structure intact.
func small() Config {
	return Config{M: 300, N: 400, DiscN: 200, Epsilon: 1e-7, Seed: 7}
}

func TestTable2ShapeAndDominance(t *testing.T) {
	rows, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if len(r.Costs) != len(HeuristicNames) {
			t.Fatalf("%s: %d cells", r.Distribution, len(r.Costs))
		}
		bf := r.Costs[0]
		if math.IsNaN(bf) || bf < 1 {
			t.Errorf("%s: brute-force cost %g", r.Distribution, bf)
		}
		// Paper's headline claims: every heuristic stays below the AWS
		// factor-4 threshold, and brute force is the best column (up to
		// MC noise).
		for j, c := range r.Costs {
			if math.IsNaN(c) {
				t.Errorf("%s/%s: NaN cost", r.Distribution, HeuristicNames[j])
				continue
			}
			if c >= 4 {
				t.Errorf("%s/%s: cost %g >= 4 (AWS threshold)", r.Distribution, HeuristicNames[j], c)
			}
			if c < bf-0.25*bf {
				t.Errorf("%s/%s: cost %g clearly beats brute force %g", r.Distribution, HeuristicNames[j], c, bf)
			}
		}
	}
	out := RenderTable2(rows).String()
	if !strings.Contains(out, "Exponential") || !strings.Contains(out, "Brute-Force") {
		t.Error("rendered table missing content")
	}
}

func TestTable3UniformInvalidColumns(t *testing.T) {
	rows, err := Table3(small())
	if err != nil {
		t.Fatal(err)
	}
	var uniform *Table3Row
	for i := range rows {
		if rows[i].Distribution == "Uniform" {
			uniform = &rows[i]
		}
	}
	if uniform == nil {
		t.Fatal("no Uniform row")
	}
	// Theorem 4 / Table 3: every quantile-based t1 < b is invalid.
	for q, c := range uniform.QuantileCost {
		if !math.IsNaN(c) {
			t.Errorf("Uniform Q(%.2f) cost = %g, want invalid", Table3Quantiles[q], c)
		}
	}
	// The brute-force t1 is near b = 20 with cost near 4/3.
	if math.Abs(uniform.BestT1-20) > 0.2 {
		t.Errorf("Uniform best t1 = %g, want ≈20", uniform.BestT1)
	}
	if math.Abs(uniform.BestCost-4.0/3.0) > 0.05 {
		t.Errorf("Uniform best cost = %g, want ≈1.33", uniform.BestCost)
	}
	out := RenderTable3(rows).String()
	if !strings.Contains(out, "-") {
		t.Error("rendered Table 3 missing '-' entries")
	}
}

func TestTable3ExponentialValidityPattern(t *testing.T) {
	rows, err := Table3(small())
	if err != nil {
		t.Fatal(err)
	}
	var exp *Table3Row
	for i := range rows {
		if rows[i].Distribution == "Exponential" {
			exp = &rows[i]
		}
	}
	if exp == nil {
		t.Fatal("no Exponential row")
	}
	// Paper's Table 3: Q(0.25) and Q(0.5) invalid; Q(0.75) and Q(0.99)
	// valid with increasing cost.
	if !math.IsNaN(exp.QuantileCost[0]) || !math.IsNaN(exp.QuantileCost[1]) {
		t.Errorf("Exponential low quantiles should be invalid: %v", exp.QuantileCost)
	}
	if math.IsNaN(exp.QuantileCost[2]) || math.IsNaN(exp.QuantileCost[3]) {
		t.Errorf("Exponential high quantiles should be valid: %v", exp.QuantileCost)
	}
	if !(exp.QuantileCost[3] > exp.QuantileCost[2]) {
		t.Errorf("Q(0.99) cost %g should exceed Q(0.75) cost %g", exp.QuantileCost[3], exp.QuantileCost[2])
	}
	if math.Abs(exp.BestT1-0.74) > 0.12 {
		t.Errorf("Exponential best t1 = %g, want ≈0.74", exp.BestT1)
	}
}

func TestTable4Convergence(t *testing.T) {
	cfg := small()
	cfg.Analytic = true // noise-free so convergence is visible
	rows, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		last := len(Table4SampleCounts) - 1
		for _, series := range [][]float64{r.EqualTime, r.EqualProb} {
			if len(series) != len(Table4SampleCounts) {
				t.Fatalf("%s: series length %d", r.Distribution, len(series))
			}
			// n = 1000 must not be (much) worse than n = 10: the paper's
			// claim is that costs improve with more samples.
			if series[last] > series[0]*1.1+0.05 {
				t.Errorf("%s: cost at n=1000 (%g) worse than n=10 (%g)",
					r.Distribution, series[last], series[0])
			}
			if math.IsNaN(series[last]) || series[last] < 1 {
				t.Errorf("%s: bad converged cost %g", r.Distribution, series[last])
			}
		}
		// Uniform converges to 4/3 at every n (Table 4's constant row).
		if r.Distribution == "Uniform" {
			for j, v := range r.EqualTime {
				if math.Abs(v-4.0/3.0) > 0.02 {
					t.Errorf("Uniform ET n=%d: %g, want 1.33", Table4SampleCounts[j], v)
				}
			}
		}
	}
	out := RenderTable4(rows).String()
	if !strings.Contains(out, "ET n=1000") || !strings.Contains(out, "EP n=10") {
		t.Error("rendered Table 4 missing headers")
	}
}

func TestFig3SeriesShape(t *testing.T) {
	cfg := small()
	cfg.Analytic = true
	series, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 9 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.T1) != cfg.M || len(s.Cost) != cfg.M {
			t.Fatalf("%s: series length %d/%d, want %d", s.Distribution, len(s.T1), len(s.Cost), cfg.M)
		}
		valid := 0
		for _, c := range s.Cost {
			if !math.IsNaN(c) {
				valid++
			}
		}
		if valid == 0 {
			t.Errorf("%s: no valid candidates", s.Distribution)
		}
		// The recorded best is the argmin of the valid points.
		best := math.Inf(1)
		bestT1 := math.NaN()
		for i, c := range s.Cost {
			if !math.IsNaN(c) && c < best {
				best, bestT1 = c, s.T1[i]
			}
		}
		if math.Abs(bestT1-s.BestT1) > 1e-9 {
			t.Errorf("%s: BestT1 %g, argmin %g", s.Distribution, s.BestT1, bestT1)
		}
	}
	// The Uniform series has gaps everywhere except at b (Fig. 3h).
	for _, s := range series {
		if s.Distribution != "Uniform" {
			continue
		}
		valid := 0
		for _, c := range s.Cost {
			if !math.IsNaN(c) {
				valid++
			}
		}
		if valid > len(s.Cost)/10 {
			t.Errorf("Uniform: %d/%d valid candidates, expected almost none", valid, len(s.Cost))
		}
	}
	out := RenderFig3(series[0]).String()
	if !strings.Contains(out, "t1") {
		t.Error("rendered Fig 3 missing header")
	}
}

func TestFig4ShapeAndRobustness(t *testing.T) {
	cfg := small()
	rows, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig4Factors) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		bf := r.Costs[0]
		if math.IsNaN(bf) || bf < 1 || bf > 3.5 {
			t.Errorf("factor %g: brute-force cost %g", r.Factor, bf)
		}
		// §5.3: Brute-Force and the discretization heuristics are close
		// (within ~15%) at every scaling.
		for _, j := range []int{5, 6} { // Equal-time, Equal-prob.
			if math.IsNaN(r.Costs[j]) || math.Abs(r.Costs[j]-bf) > 0.2*bf {
				t.Errorf("factor %g: %s cost %g far from brute force %g",
					r.Factor, HeuristicNames[j], r.Costs[j], bf)
			}
		}
	}
	out := RenderFig4(rows).String()
	if !strings.Contains(out, "Factor") {
		t.Error("rendered Fig 4 missing header")
	}
}

func TestFig4FromTracePipeline(t *testing.T) {
	cfg := small()
	row, m, err := Fig4FromTrace(cfg, trace.VBMQA, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-0.95) > 0.1 {
		t.Errorf("fitted α = %g", m.Alpha)
	}
	if math.Abs(row.MeanHours-Fig4BaseMeanHours) > 0.05*Fig4BaseMeanHours {
		t.Errorf("fitted mean %g h, want ≈%g", row.MeanHours, Fig4BaseMeanHours)
	}
	if math.IsNaN(row.Costs[0]) || row.Costs[0] < 1 {
		t.Errorf("trace-pipeline brute-force cost %g", row.Costs[0])
	}
}

func TestExp1FindsPaperConstant(t *testing.T) {
	res, err := Exp1(Config{M: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S1-0.74219) > 0.01 {
		t.Errorf("s1 = %g, want ≈0.74219", res.S1)
	}
	if math.Abs(res.Sequence[1]-math.Exp(res.S1)) > 1e-6 {
		t.Errorf("s2 = %g, want e^{s1} = %g", res.Sequence[1], math.Exp(res.S1))
	}
	if res.E1 < 2.2 || res.E1 > 2.5 {
		t.Errorf("E1 = %g, want ≈2.36", res.E1)
	}
}

func TestTable1PropertiesRenders(t *testing.T) {
	out := Table1Properties().String()
	for _, want := range []string{"Exponential", "BoundedPareto", "∞", "A1", "A2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.M != 5000 || cfg.N != 1000 || cfg.DiscN != 1000 || cfg.Epsilon != 1e-7 {
		t.Errorf("defaults = %+v", cfg)
	}
	if (Config{Analytic: true}).evalMode().String() != "analytic" {
		t.Error("analytic mode string")
	}
}
