package experiments

import (
	"testing"

	"repro/internal/parallel"
)

// TestDriversDoNotOversubscribe is the nested-parallelism regression
// guard: every evaluation issued from inside a driver's parallel.ForEach
// worker (brute-force scans, Workload scoring, heuristic construction)
// must run inline (workers=1). The parallel package counts live worker
// goroutines, so if an inner call ever starts fanning out again the
// observed peak exceeds the driver's own fan-out — with W outer workers
// each spawning W more, the classic W×W goroutine oversubscription.
func TestDriversDoNotOversubscribe(t *testing.T) {
	cfg := Config{M: 60, N: 80, DiscN: 40, Epsilon: 1e-6, Seed: 3, Workers: 3}

	drivers := []struct {
		name string
		run  func() error
	}{
		{"Table2", func() error { _, err := Table2(cfg); return err }},
		{"Table3", func() error { _, err := Table3(cfg); return err }},
		{"Table4", func() error { _, err := Table4(cfg); return err }},
		{"Fig3", func() error { _, err := Fig3(cfg); return err }},
		{"Fig4", func() error { _, err := Fig4(cfg); return err }},
	}
	for _, drv := range drivers {
		parallel.ResetPeakWorkers()
		if err := drv.run(); err != nil {
			t.Fatalf("%s: %v", drv.name, err)
		}
		if peak := parallel.PeakWorkers(); peak > cfg.Workers {
			t.Errorf("%s: peak of %d concurrent workers exceeds the driver fan-out of %d — an inner evaluation is spawning its own workers instead of running with workers=1",
				drv.name, peak, cfg.Workers)
		}
	}
}
