package experiments

import (
	"fmt"
	"strings"
)

// FullReport runs every experiment and renders one self-contained
// Markdown document: the paper's tables 1–4 and figure summaries, the
// §3.5 study, and all ablation/extension studies. It is what
// `cmd/experiments -report FILE` writes.
func FullReport(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	var b strings.Builder

	mode := "Monte-Carlo (paper protocol, Eq. 13)"
	if cfg.Analytic {
		mode = "exact (Eq. 4)"
	}
	fmt.Fprintf(&b, "# Reservation Strategies for Stochastic Jobs — experiment report\n\n")
	fmt.Fprintf(&b, "Protocol: M=%d grid points, N=%d Monte-Carlo samples, n=%d discretization samples, ε=%g, seed %d, scoring %s.\n\n",
		cfg.M, cfg.N, cfg.DiscN, cfg.Epsilon, cfg.Seed, mode)

	section := func(title, body string) {
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", title, body)
	}

	section("Table 1/5 — distributions and Theorem-2 bounds", Table1Properties().String())

	t2, err := Table2(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report table2: %w", err)
	}
	section("Table 2 — heuristic comparison (ReservationOnly)", RenderTable2(t2).String())

	t3, err := Table3(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report table3: %w", err)
	}
	section("Table 3 — brute-force t1 vs quantile guesses", RenderTable3(t3).String())

	t4, err := Table4(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report table4: %w", err)
	}
	section("Table 4 — discretization sample-count sweep", RenderTable4(t4).String())

	f4, err := Fig4(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report fig4: %w", err)
	}
	section("Fig. 4 — NeuroHPC scenario", RenderFig4(f4).String())

	e1, err := Exp1(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report exp1: %w", err)
	}
	fmt.Fprintf(&b, "## §3.5 — Exp(1) optimal first reservation\n\ns1 = %.5f (paper ≈ 0.74219), E1 = %.5f, sequence prefix %.5g.\n\n",
		e1.S1, e1.E1, e1.Sequence)

	section("Ablation — tail tolerance", RenderAblationTailEps(AblationTailEps(cfg)).String())

	sc, err := AblationScoring(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report scoring: %w", err)
	}
	section("Ablation — scoring protocol", RenderAblationScoring(sc).String())

	ck, err := AblationCheckpoint(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report checkpoint: %w", err)
	}
	section("Extension — checkpoint/restart", RenderAblationCheckpoint(ck).String())

	re, err := AblationResources(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report resources: %w", err)
	}
	section("Extension — elastic requests", RenderAblationResources(re).String())

	on, err := StudyOnline(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report online: %w", err)
	}
	section("Extension — online learning", RenderStudyOnline(on).String())

	qs, err := StudyQueueDerivedWaits(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report queuesim: %w", err)
	}
	section("Substrate — scheduler-derived wait law", RenderQueueStudy(qs).String())

	ms, err := StudyMisspecification(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report misspec: %w", err)
	}
	section("Robustness — model misspecification", RenderMisspecification(ms).String())

	bi, err := StudyBimodal(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report bimodal: %w", err)
	}
	section("Study — bimodal job populations", RenderStudyBimodal(bi).String())

	ov, err := StudyOverheadSensitivity(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report overhead: %w", err)
	}
	section("Study — per-attempt overhead sensitivity", RenderStudyOverhead(ov).String())

	ab, err := StudyAttemptBudget(cfg)
	if err != nil {
		return "", fmt.Errorf("experiments: report attempts: %w", err)
	}
	section("Study — resubmission caps", RenderStudyAttemptBudget(ab).String())

	return b.String(), nil
}
