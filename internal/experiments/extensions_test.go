package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestStudyOnline(t *testing.T) {
	rows, err := StudyOnline(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.BlockRatio) != OnlineBlocks {
			t.Fatalf("%s: %d blocks", r.Estimator, len(r.BlockRatio))
		}
		// Converged: late blocks near 1.
		last := r.BlockRatio[OnlineBlocks-1]
		if last < 0.9 || last > 1.15 {
			t.Errorf("%s: final block ratio %g", r.Estimator, last)
		}
		if r.TailRatio > 1.15 {
			t.Errorf("%s: tail ratio %g", r.Estimator, r.TailRatio)
		}
	}
	out := RenderStudyOnline(rows).String()
	if !strings.Contains(out, "regret") {
		t.Error("render missing header")
	}
}

func TestStudyQueueDerivedWaits(t *testing.T) {
	q, err := StudyQueueDerivedWaits(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if q.Derived.Alpha <= 0 {
		t.Errorf("derived slope %g not positive", q.Derived.Alpha)
	}
	if q.Stats.Utilization < 0.5 || q.Stats.Utilization > 1 {
		t.Errorf("utilization %g out of congestion range", q.Stats.Utilization)
	}
	if q.Stats.Backfilled == 0 {
		t.Error("no backfilling in a congested run")
	}
	if len(q.Profile) != 20 {
		t.Errorf("%d profile groups", len(q.Profile))
	}
	out := RenderQueueStudy(q).String()
	for _, want := range []string{"scheduler simulation", "synthetic log fit", "published"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestStudyMisspecification(t *testing.T) {
	rows, err := StudyMisspecification(Config{M: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.TrueCost < 1 || r.OracleCost < 1 {
			t.Errorf("%s/%s: costs %g/%g below 1", r.Truth, r.PlannedOn, r.TrueCost, r.OracleCost)
		}
		// A misspecified plan can never beat the oracle on the truth
		// (the oracle is the optimum of the same search space).
		if r.OverheadPct < -1 {
			t.Errorf("%s/%s: negative overhead %g%%", r.Truth, r.PlannedOn, r.OverheadPct)
		}
		// Headline robustness claim: moment-matched LogNormal planning
		// stays within 25%% of the oracle on every truth.
		if r.PlannedOn == "lognormal-moments" && r.OverheadPct > 25 {
			t.Errorf("%s: lognormal-moments overhead %g%%", r.Truth, r.OverheadPct)
		}
	}
	out := RenderMisspecification(rows).String()
	if !strings.Contains(out, "overhead") {
		t.Error("render missing header")
	}
}

func TestFullReport(t *testing.T) {
	out, err := FullReport(Config{M: 200, N: 200, DiscN: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Reservation Strategies", "Table 2", "Table 3", "Table 4",
		"Fig. 4", "§3.5", "tail tolerance", "checkpoint/restart",
		"elastic requests", "online learning", "scheduler-derived",
		"misspecification",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestStudyBimodal(t *testing.T) {
	rows, err := StudyBimodal(Config{M: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BimodalSeparations) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		bf := r.Costs[0]
		if math.IsNaN(bf) || bf < 1 {
			t.Errorf("Δ=%g: BF cost %g", r.Separation, bf)
		}
		// DP strategies (cols 5, 6) stay close to BF on every mixture.
		for _, j := range []int{5, 6} {
			if math.IsNaN(r.Costs[j]) || r.Costs[j] > 1.1*bf {
				t.Errorf("Δ=%g: %s cost %g vs BF %g", r.Separation, HeuristicNames[j], r.Costs[j], bf)
			}
		}
	}
	// The bimodality penalty for the mean-anchored heuristics grows
	// with separation: Mean-Stdev at Δ=3 is worse relative to BF than
	// at Δ=0.5.
	first, last := rows[0], rows[len(rows)-1]
	relFirst := first.Costs[2] / first.Costs[0]
	relLast := last.Costs[2] / last.Costs[0]
	if !(relLast > relFirst) {
		t.Errorf("mean-stdev penalty did not grow: %g → %g", relFirst, relLast)
	}
	out := RenderStudyBimodal(rows).String()
	if !strings.Contains(out, "Δ (log)") {
		t.Error("render missing header")
	}
}

func TestStudyOverheadSensitivity(t *testing.T) {
	rows, err := StudyOverheadSensitivity(Config{M: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(OverheadLevels) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.BFAttempts < 1 || math.IsNaN(r.BFCost) {
			t.Errorf("γ/μ=%g: row %+v", r.GammaOverMean, r)
		}
		if i > 0 {
			// More expensive retries → fewer expected attempts and a
			// longer first reservation (monotone within tolerance).
			if r.BFAttempts > rows[i-1].BFAttempts+0.02 {
				t.Errorf("attempts rose with γ: %g → %g", rows[i-1].BFAttempts, r.BFAttempts)
			}
			if r.FirstOverMean < rows[i-1].FirstOverMean-0.02 {
				t.Errorf("first reservation shrank with γ: %g → %g", rows[i-1].FirstOverMean, r.FirstOverMean)
			}
		}
	}
	out := RenderStudyOverhead(rows).String()
	if !strings.Contains(out, "E[attempts]") {
		t.Error("render missing header")
	}
}

func TestStudyAttemptBudget(t *testing.T) {
	rows, err := StudyAttemptBudget(Config{DiscN: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.PlanLen > r.MaxAttempts {
			t.Errorf("K=%d plan uses %d attempts", r.MaxAttempts, r.PlanLen)
		}
		if i > 0 && r.Cost > rows[i-1].Cost+1e-9 {
			t.Errorf("cost rose with budget: K=%d", r.MaxAttempts)
		}
	}
	// One attempt is expensive (must cover the whole truncated tail);
	// a handful of attempts recovers most of the benefit.
	if !(rows[0].Cost > 1.5*rows[7].Cost) {
		t.Errorf("K=1 (%g) not clearly worse than K=8 (%g)", rows[0].Cost, rows[7].Cost)
	}
	if rows[3].Cost > 1.1*rows[7].Cost {
		t.Errorf("K=4 (%g) far from K=8 (%g)", rows[3].Cost, rows[7].Cost)
	}
	out := RenderStudyAttemptBudget(rows).String()
	if !strings.Contains(out, "plan length") {
		t.Error("render missing header")
	}
}
