package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/optimize"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/strategy"
	"repro/internal/tablefmt"
	"repro/internal/trace"
)

// Fig3Series is one distribution's curve in Fig. 3: the normalized
// expected cost of the Eq.-(11) sequence as a function of the first
// reservation t1, with invalid candidates (non-increasing recurrences)
// carrying NaN — the gaps visible in the paper's plots.
type Fig3Series struct {
	Distribution string
	T1           []float64
	Cost         []float64
	// BestT1 is the valid minimizer of the series.
	BestT1 float64
}

// Fig3 sweeps t1 over the brute-force search interval for every
// Table-1 distribution.
func Fig3(cfg Config) ([]Fig3Series, error) {
	cfg = cfg.withDefaults()
	dists := dist.Table1()
	names := dist.Table1Names()
	m := core.ReservationOnly

	series := make([]Fig3Series, len(dists))
	parallel.ForEach(len(dists), cfg.Workers, func(i int) {
		d := dists[i]
		// Fig. 3 plots the entire cost-vs-t1 curve, so the analytic
		// budget prune must stay off (FullCosts): a pruned candidate
		// records only a lower bound, which would punch spurious gaps
		// into the series.
		bf := strategy.BruteForce{M: cfg.M, N: cfg.N, Mode: cfg.evalMode(), Seed: cfg.Seed + uint64(i), Workers: 1, FullCosts: true}
		res, err := bf.SearchOn(m, d, workloadFor(d, cfg, uint64(i)))
		s := Fig3Series{Distribution: names[i], BestT1: math.NaN()}
		if err == nil {
			s.BestT1 = res.Best.T1
		}
		o := m.OmniscientCost(d)
		for _, c := range res.Candidates {
			s.T1 = append(s.T1, c.T1)
			if c.Valid {
				s.Cost = append(s.Cost, c.Cost/o)
			} else {
				s.Cost = append(s.Cost, math.NaN())
			}
		}
		series[i] = s
	})
	return series, nil
}

// RenderFig3 formats one Fig.-3 series as a CSV-ready table of
// (t1, normalized cost) points.
func RenderFig3(s Fig3Series) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("Fig. 3 (%s): normalized cost vs first reservation t1 (best t1 = %s)",
			s.Distribution, tablefmt.Num(s.BestT1)),
		"t1", "normalized_cost")
	for i := range s.T1 {
		t.AddRow(fmt.Sprintf("%.6g", s.T1[i]), tablefmt.Num(s.Cost[i]))
	}
	return t
}

// Fig4Point is one (scale factor, heuristic) cell of Fig. 4.
type Fig4Row struct {
	// Factor scales the base mean and standard deviation.
	Factor float64
	// MeanHours and SdHours are the scaled LogNormal moments.
	MeanHours, SdHours float64
	// Costs are normalized expected costs in HeuristicNames order.
	Costs []float64
}

// Fig4BaseMeanHours and Fig4BaseSdHours are the §5.3 VBMQA fit
// (1253.37 s, 258.261 s) in hours.
const (
	Fig4BaseMeanHours = 1253.37 / platform.SecondsPerHour
	Fig4BaseSdHours   = 258.261 / platform.SecondsPerHour
)

// Fig4Factors is the paper's robustness axis: the mean and standard
// deviation scaled by up to 10×.
var Fig4Factors = []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// Fig4 evaluates all heuristics in the NEUROHPC scenario (α=0.95, β=1,
// γ=1.05 h) over the scaled trace distributions.
func Fig4(cfg Config) ([]Fig4Row, error) {
	cfg = cfg.withDefaults()
	m := platform.NeuroHPC()
	rows := make([]Fig4Row, len(Fig4Factors))
	errs := make([]error, len(Fig4Factors))
	parallel.ForEach(len(Fig4Factors), cfg.Workers, func(i int) {
		f := Fig4Factors[i]
		mean := Fig4BaseMeanHours * f
		sd := Fig4BaseSdHours * f
		d, err := dist.LogNormalFromMoments(mean, sd)
		if err != nil {
			errs[i] = err
			return
		}
		row := Fig4Row{Factor: f, MeanHours: mean, SdHours: sd, Costs: make([]float64, len(HeuristicNames))}
		// The brute-force seed offset matches the heuristic sample
		// offset, so one workload serves the scan and all heuristics.
		wl := workloadFor(d, cfg, uint64(i))

		bf := strategy.BruteForce{M: cfg.M, N: cfg.N, Mode: cfg.evalMode(), Seed: cfg.Seed + uint64(i), Workers: 1}
		res, err := bf.SearchOn(m, d, wl)
		if err != nil {
			row.Costs[0] = math.NaN()
		} else {
			row.Costs[0] = res.Best.Cost / m.OmniscientCost(d)
		}
		for j, st := range cfg.heuristics() {
			s, err := st.Sequence(m, d)
			if err != nil {
				row.Costs[j+1] = math.NaN()
				continue
			}
			row.Costs[j+1] = cfg.scoreSequence(m, d, s, wl)
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// Fig4FromTrace runs the full §5.3 pipeline from raw (synthetic)
// traces: generate the run trace, fit the LogNormal, generate and fit
// the wait-time log, then evaluate as Fig4 does at factor 1.
func Fig4FromTrace(cfg Config, app trace.Application, runs int) (Fig4Row, core.CostModel, error) {
	cfg = cfg.withDefaults()
	samples, err := trace.GenerateRunTrace(app, runs, 0.01, cfg.Seed)
	if err != nil {
		return Fig4Row{}, core.CostModel{}, err
	}
	fit, err := dist.FitLogNormal(samples)
	if err != nil {
		return Fig4Row{}, core.CostModel{}, err
	}
	// Convert from seconds to hours.
	d, err := dist.NewLogNormal(fit.Mu()-math.Log(platform.SecondsPerHour), fit.Sigma())
	if err != nil {
		return Fig4Row{}, core.CostModel{}, err
	}
	wlog, err := trace.GenerateWaitTimeLog(trace.Intrepid409, 20, 600, 72000, 0.05, cfg.Seed+1)
	if err != nil {
		return Fig4Row{}, core.CostModel{}, err
	}
	wfit, err := trace.FitWaitTimeModel(wlog)
	if err != nil {
		return Fig4Row{}, core.CostModel{}, err
	}
	m := platform.NeuroHPCFromWaitModel(wfit)

	row := Fig4Row{Factor: 1, MeanHours: d.Mean(), SdHours: dist.StdDev(d), Costs: make([]float64, len(HeuristicNames))}
	mc := workloadFor(d, cfg, 99)
	bf := strategy.BruteForce{M: cfg.M, N: cfg.N, Mode: cfg.evalMode(), Seed: cfg.Seed, Workers: cfg.Workers}
	res, err := bf.Search(m, d)
	if err != nil {
		row.Costs[0] = math.NaN()
	} else {
		row.Costs[0] = res.Best.Cost / m.OmniscientCost(d)
	}
	for j, st := range cfg.heuristics() {
		s, err := st.Sequence(m, d)
		if err != nil {
			row.Costs[j+1] = math.NaN()
			continue
		}
		row.Costs[j+1] = cfg.scoreSequence(m, d, s, mc)
	}
	return row, m, nil
}

// RenderFig4 formats Fig.-4 rows.
func RenderFig4(rows []Fig4Row) *tablefmt.Table {
	t := tablefmt.New(
		"Fig. 4: Normalized expected costs in the NeuroHPC scenario (LogNormal, α=0.95, β=1, γ=1.05h)",
		append([]string{"Factor", "Mean(h)", "Sd(h)"}, HeuristicNames...)...)
	for _, r := range rows {
		cells := []string{
			fmt.Sprintf("%g", r.Factor),
			fmt.Sprintf("%.3f", r.MeanHours),
			fmt.Sprintf("%.3f", r.SdHours),
		}
		for _, c := range r.Costs {
			cells = append(cells, tablefmt.Num(c))
		}
		t.AddRow(cells...)
	}
	return t
}

// Exp1Result summarizes the §3.5 study of Exp(1) under
// RESERVATIONONLY.
type Exp1Result struct {
	// S1 is the optimal first reservation found (paper: ≈0.74219).
	S1 float64
	// E1 is the corresponding expected cost (the universal constant of
	// Proposition 2; the cost for Exp(λ) is E1/λ).
	E1 float64
	// Sequence is the optimal sequence prefix s_1, s_2, ... (s_2 = e^{s_1}).
	Sequence []float64
}

// Exp1 locates s1 by a fine analytic grid search followed by
// golden-section refinement.
func Exp1(cfg Config) (Exp1Result, error) {
	cfg = cfg.withDefaults()
	d := dist.MustExponential(1)
	m := core.ReservationOnly
	obj := func(t1 float64) float64 {
		s := core.SequenceFromFirstTail(m, d, t1, core.DefaultTailEps)
		e, err := core.ExpectedCost(m, d, s)
		if err != nil || math.IsInf(e, 1) {
			return math.Inf(1)
		}
		return e
	}
	t1, _ := optimize.MinimizeGrid(obj, 0.01, 2, cfg.M)
	t1 = optimize.GoldenSection(obj, math.Max(0.01, t1-0.01), t1+0.01, 1e-9)
	seq, err := core.SequenceFromFirstTail(m, d, t1, core.DefaultTailEps).Prefix(6)
	if err != nil {
		return Exp1Result{}, err
	}
	return Exp1Result{S1: t1, E1: obj(t1), Sequence: seq}, nil
}

// Table1Properties renders the Table-1/Table-5 summary: each
// distribution with its support, mean, standard deviation, median and
// the Theorem-2 bounds A1 and A2 under RESERVATIONONLY.
func Table1Properties() *tablefmt.Table {
	t := tablefmt.New(
		"Table 1/5: Distribution instantiations, closed-form properties, and Theorem-2 bounds (ReservationOnly)",
		"Distribution", "Support", "Mean", "StdDev", "Median", "A1", "A2")
	names := dist.Table1Names()
	for i, d := range dist.Table1() {
		lo, hi := d.Support()
		sup := fmt.Sprintf("[%g, %g]", lo, hi)
		if math.IsInf(hi, 1) {
			sup = fmt.Sprintf("[%g, ∞)", lo)
		}
		t.AddRow(names[i], sup,
			tablefmt.Num(d.Mean()), tablefmt.Num(dist.StdDev(d)), tablefmt.Num(dist.Median(d)),
			tablefmt.Num(core.BoundFirstReservation(core.ReservationOnly, d)),
			tablefmt.Num(core.BoundExpectedCost(core.ReservationOnly, d)))
	}
	return t
}
