package experiments

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/resources"
	"repro/internal/strategy"
	"repro/internal/tablefmt"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out, plus the quantitative studies of the two §7 extensions:
//
//   - AblationTailEps — how the tail tolerance at which a recurrence
//     breakdown is forgiven affects the brute-force search (validity
//     fraction and best cost);
//   - AblationScoring — Monte-Carlo vs analytic candidate scoring: the
//     selection bias of min-over-noisy-estimates, measured by re-scoring
//     the MC winner analytically;
//   - AblationCheckpoint — the checkpoint/restart extension: optimal
//     mixed policies vs the pure strategies across snapshot costs;
//   - AblationResources — the variable-resources extension: expected
//     cost vs processor count under turnaround pressure.

// TailEpsRow is one (distribution, tailEps) cell of the tail-tolerance
// ablation.
type TailEpsRow struct {
	Distribution string
	// TailEps values probed (0 = strict rule).
	TailEps []float64
	// ValidFrac is the fraction of grid candidates that stay valid.
	ValidFrac []float64
	// BestCost is the best normalized analytic cost over the grid (NaN
	// when no candidate is valid).
	BestCost []float64
}

// TailEpsValues is the probed tolerance axis.
var TailEpsValues = []float64{0, 1e-6, 1e-4, 1e-3, 1e-2}

// AblationTailEps scans the brute-force grid under several tail
// tolerances for a representative subset of Table-1 distributions.
func AblationTailEps(cfg Config) []TailEpsRow {
	cfg = cfg.withDefaults()
	dists := []dist.Distribution{
		dist.MustExponential(1), dist.MustLogNormal(3, 0.5), dist.MustGamma(2, 2),
	}
	m := core.ReservationOnly
	rows := make([]TailEpsRow, 0, len(dists))
	for _, d := range dists {
		row := TailEpsRow{Distribution: d.Name(), TailEps: TailEpsValues}
		lo, _ := d.Support()
		hi := core.BoundFirstReservation(m, d)
		for _, eps := range TailEpsValues {
			valid := 0
			best := math.Inf(1)
			for i := 1; i <= cfg.M; i++ {
				t1 := lo + (hi-lo)*float64(i)/float64(cfg.M)
				s := core.SequenceFromFirstTail(m, d, t1, eps)
				e, err := core.ExpectedCost(m, d, s)
				if err != nil || math.IsInf(e, 1) {
					continue
				}
				valid++
				if e < best {
					best = e
				}
			}
			row.ValidFrac = append(row.ValidFrac, float64(valid)/float64(cfg.M))
			if math.IsInf(best, 1) {
				row.BestCost = append(row.BestCost, math.NaN())
			} else {
				row.BestCost = append(row.BestCost, best/m.OmniscientCost(d))
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderAblationTailEps formats the tail-tolerance ablation.
func RenderAblationTailEps(rows []TailEpsRow) *tablefmt.Table {
	header := []string{"Distribution"}
	for _, eps := range TailEpsValues {
		header = append(header, fmt.Sprintf("valid@%.0e", eps), fmt.Sprintf("cost@%.0e", eps))
	}
	t := tablefmt.New("Ablation: tail tolerance for recurrence breakdowns (brute-force grid)", header...)
	for _, r := range rows {
		cells := []string{r.Distribution}
		for i := range r.TailEps {
			cells = append(cells, fmt.Sprintf("%.3f", r.ValidFrac[i]), tablefmt.Num(r.BestCost[i]))
		}
		t.AddRow(cells...)
	}
	return t
}

// ScoringRow is one distribution's row of the scoring-protocol
// ablation.
type ScoringRow struct {
	Distribution string
	// AnalyticBest is the exact Eq.-(4) optimum over the grid.
	AnalyticBest float64
	// MCBest is the Monte-Carlo winner's reported (noisy, biased-low)
	// cost.
	MCBest float64
	// MCRescored is the MC winner's exact cost — the gap to MCBest is
	// the min-over-noise selection bias of the paper's protocol.
	MCRescored float64
}

// AblationScoring quantifies the Monte-Carlo selection bias on every
// Table-1 distribution.
func AblationScoring(cfg Config) ([]ScoringRow, error) {
	cfg = cfg.withDefaults()
	m := core.ReservationOnly
	names := dist.Table1Names()
	rows := make([]ScoringRow, 0, len(names))
	for i, d := range dist.Table1() {
		an, err := (strategy.BruteForce{M: cfg.M, Mode: strategy.EvalAnalytic}).Search(m, d)
		if err != nil {
			return nil, err
		}
		bf := strategy.BruteForce{M: cfg.M, N: cfg.N, Mode: strategy.EvalMonteCarlo, Seed: cfg.Seed + uint64(i)}
		mc, err := bf.Search(m, d)
		if err != nil {
			return nil, err
		}
		rescored, _ := bf.EvaluateT1(m, d, mc.Best.T1, nil) // nil samples → analytic
		o := m.OmniscientCost(d)
		rows = append(rows, ScoringRow{
			Distribution: names[i],
			AnalyticBest: an.Best.Cost / o,
			MCBest:       mc.Best.Cost / o,
			MCRescored:   rescored.Cost / o,
		})
	}
	return rows, nil
}

// RenderAblationScoring formats the scoring ablation.
func RenderAblationScoring(rows []ScoringRow) *tablefmt.Table {
	t := tablefmt.New(
		"Ablation: Monte-Carlo vs analytic brute-force scoring (normalized costs)",
		"Distribution", "analytic best", "MC reported", "MC rescored", "selection bias")
	for _, r := range rows {
		t.AddRow(r.Distribution,
			tablefmt.Num(r.AnalyticBest), tablefmt.Num(r.MCBest), tablefmt.Num(r.MCRescored),
			tablefmt.Num(r.MCRescored-r.MCBest))
	}
	return t
}

// CheckpointRow is one snapshot-cost point of the checkpointing study.
type CheckpointRow struct {
	// C is the checkpoint (and restore) cost.
	C float64
	// NoCkpt, AllCkpt, Mixed are the expected costs of the pure and
	// optimal policies.
	NoCkpt, AllCkpt, Mixed float64
	// Snapshots is the number of checkpointing steps in the mixed
	// policy.
	Snapshots int
}

// CheckpointCosts is the probed snapshot-cost axis (relative to a
// unit-scale job law).
var CheckpointCosts = []float64{0, 0.05, 0.1, 0.25, 0.5, 1}

// AblationCheckpoint studies the checkpoint extension on a heavy-tailed
// law (Weibull κ=0.5, where reservation-only loses the most work).
func AblationCheckpoint(cfg Config) ([]CheckpointRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.DiscN
	if n > 150 {
		n = 150 // the mixed DP is O(n³)
	}
	dd, err := discretize.Discretize(dist.MustWeibull(1, 0.5), n, 1e-6, discretize.EqualProbability)
	if err != nil {
		return nil, err
	}
	m := core.ReservationOnly
	base, err := dp.Solve(dd, m)
	if err != nil {
		return nil, err
	}
	rows := make([]CheckpointRow, 0, len(CheckpointCosts))
	for _, c := range CheckpointCosts {
		p := checkpoint.Params{C: c, R: c}
		all, err := checkpoint.SolveAllCheckpoint(dd, m, p)
		if err != nil {
			return nil, err
		}
		mix, err := checkpoint.Solve(dd, m, p)
		if err != nil {
			return nil, err
		}
		snaps := 0
		for _, st := range mix.Steps {
			if st.Checkpoint {
				snaps++
			}
		}
		rows = append(rows, CheckpointRow{
			C: c, NoCkpt: base.ExpectedCost, AllCkpt: all.ExpectedCost,
			Mixed: mix.ExpectedCost, Snapshots: snaps,
		})
	}
	return rows, nil
}

// RenderAblationCheckpoint formats the checkpointing study.
func RenderAblationCheckpoint(rows []CheckpointRow) *tablefmt.Table {
	t := tablefmt.New(
		"Extension: checkpoint/restart on Weibull(1, 0.5), ReservationOnly (expected costs)",
		"C=R", "no-ckpt (Thm 5)", "all-ckpt", "mixed optimal", "saving", "snapshots")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%g", r.C),
			tablefmt.Num(r.NoCkpt), tablefmt.Num(r.AllCkpt), tablefmt.Num(r.Mixed),
			fmt.Sprintf("%.1f%%", 100*(1-r.Mixed/r.NoCkpt)),
			fmt.Sprintf("%d", r.Snapshots))
	}
	return t
}

// ResourceRow is one processor count of the variable-resources study.
type ResourceRow struct {
	Procs        int
	ExpectedCost float64
	Best         bool
}

// AblationResources studies the elastic-request extension: LogNormal
// work under Amdahl(5%) with turnaround pressure.
func AblationResources(cfg Config) ([]ResourceRow, error) {
	cfg = cfg.withDefaults()
	work := dist.MustLogNormal(1, 0.4)
	su, err := resources.NewAmdahl(0.05)
	if err != nil {
		return nil, err
	}
	cost := resources.JobCost{NodeAlpha: 1, TimeWeight: 20}
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128}
	gridM := cfg.M
	if gridM > 1000 {
		gridM = 1000
	}
	best, all, err := resources.Optimize(work, cost, su, procs,
		strategy.BruteForce{M: gridM, Mode: strategy.EvalAnalytic})
	if err != nil {
		return nil, err
	}
	rows := make([]ResourceRow, 0, len(all))
	for _, ch := range all {
		rows = append(rows, ResourceRow{Procs: ch.Procs, ExpectedCost: ch.ExpectedCost, Best: ch.Procs == best.Procs})
	}
	return rows, nil
}

// RenderAblationResources formats the variable-resources study.
func RenderAblationResources(rows []ResourceRow) *tablefmt.Table {
	t := tablefmt.New(
		"Extension: elastic requests — LogNormal(1, 0.4) work, Amdahl(s=0.05), $1/node-hour + $20/hour reserved",
		"procs", "expected cost", "best")
	for _, r := range rows {
		mark := ""
		if r.Best {
			mark = "*"
		}
		t.AddRow(fmt.Sprintf("%d", r.Procs), tablefmt.Num(r.ExpectedCost), mark)
	}
	return t
}
