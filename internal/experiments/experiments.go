// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), reproducing:
//
//   - Table 1/5: the nine distribution instantiations and their
//     closed-form properties;
//   - Table 2: normalized expected costs of the seven heuristics under
//     RESERVATIONONLY;
//   - Table 3: the best brute-force t1 versus t1 picked at quantiles of
//     each distribution (with invalid candidates marked "-");
//   - Table 4: the two discretization-based heuristics as a function of
//     the number of discrete samples;
//   - Fig. 3: the normalized cost as a function of t1 over the search
//     interval (one series per distribution, with gaps at invalid
//     candidates);
//   - Fig. 4: the NEUROHPC scenario — all heuristics on the fitted
//     LogNormal trace distribution with the mean and standard deviation
//     scaled up to 10×;
//   - the §3.5 study of the Exp(1) optimal first reservation s1.
//
// Every driver returns structured results; the Render* helpers format
// them in the paper's layout.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/simulate"
	"repro/internal/strategy"
	"repro/internal/tablefmt"
)

// Config sets the evaluation protocol parameters (§5.1 defaults).
type Config struct {
	// M is the brute-force grid size (paper: 5000).
	M int
	// N is the Monte-Carlo sample count (paper: 1000).
	N int
	// DiscN is the discretization sample count (paper: 1000).
	DiscN int
	// Epsilon is the truncation quantile (paper: 1e-7).
	Epsilon float64
	// Seed drives all sampling.
	Seed uint64
	// Analytic switches cost scoring from the paper's Monte-Carlo
	// protocol (Eq. 13) to the deterministic closed form (Eq. 4).
	Analytic bool
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// Default returns the paper's evaluation parameters.
func Default() Config {
	return Config{M: 5000, N: 1000, DiscN: 1000, Epsilon: 1e-7, Seed: 42}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.M <= 0 {
		c.M = d.M
	}
	if c.N <= 0 {
		c.N = d.N
	}
	if c.DiscN <= 0 {
		c.DiscN = d.DiscN
	}
	if c.Epsilon <= 0 {
		c.Epsilon = d.Epsilon
	}
	return c
}

func (c Config) evalMode() strategy.EvalMode {
	if c.Analytic {
		return strategy.EvalAnalytic
	}
	return strategy.EvalMonteCarlo
}

// HeuristicNames is the paper's column order in Tables 2 and Fig. 4.
var HeuristicNames = []string{
	"Brute-Force", "Mean-by-Mean", "Mean-Stdev", "Mean-Doub.",
	"Med-by-Med", "Equal-time", "Equal-prob.",
}

// scoreSequence evaluates a sequence's normalized expected cost under
// the configured protocol — against the distribution's precomputed
// Monte-Carlo Workload, or the Eq.-(4) closed form when wl is nil or
// the config is analytic. NaN marks an invalid/uncoverable strategy.
// The sequence is consumed in place (no clone): callers pass a freshly
// built sequence that no other goroutine touches.
func (c Config) scoreSequence(m core.CostModel, d dist.Distribution, s *core.Sequence, wl *simulate.Workload) float64 {
	var cost float64
	var err error
	if c.Analytic || wl == nil {
		// Stream Eq. (4) over the sequence's cursor — the analytic
		// counterpart of the Workload path below, bit-identical to
		// core.ExpectedCost.
		cur := core.NewCostCursor(m, d, 0)
		sc := s.Cursor()
		cost, err = cur.CostOf(&sc)
	} else {
		cost, err = wl.CostSequence(m, s)
	}
	if err != nil || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return math.NaN()
	}
	return cost / m.OmniscientCost(d)
}

// workloadFor builds the distribution's shared Monte-Carlo workload —
// the same (seed-offset) sample set every driver previously drew with
// simulate.Samples — or nil in analytic mode. Building it once per
// distribution lets the brute-force scan and every heuristic score
// against one precomputed scorer.
func workloadFor(d dist.Distribution, cfg Config, offset uint64) *simulate.Workload {
	if cfg.Analytic {
		return nil
	}
	return simulate.NewWorkloadFrom(d, cfg.N, cfg.Seed+offset)
}

// heuristics returns the six non-brute-force strategies in column
// order (indices 1..6 of HeuristicNames).
func (c Config) heuristics() []strategy.Strategy {
	return []strategy.Strategy{
		strategy.MeanByMean{},
		strategy.MeanStdev{},
		strategy.MeanDoubling{},
		strategy.MedianByMedian{},
		strategy.Discretized{Scheme: 1, N: c.DiscN, Epsilon: c.Epsilon}, // Equal-time
		strategy.Discretized{Scheme: 0, N: c.DiscN, Epsilon: c.Epsilon}, // Equal-probability
	}
}

// Table2Row holds one distribution's row of Table 2: the normalized
// expected cost of each heuristic, in HeuristicNames order. NaN marks a
// failed heuristic.
type Table2Row struct {
	Distribution string
	Costs        []float64
}

// Table2 evaluates the seven heuristics on the nine Table-1
// distributions under RESERVATIONONLY.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	dists := dist.Table1()
	names := dist.Table1Names()
	m := core.ReservationOnly

	rows := make([]Table2Row, len(dists))
	errs := make([]error, len(dists))
	parallel.ForEach(len(dists), cfg.Workers, func(i int) {
		d := dists[i]
		row := Table2Row{Distribution: names[i], Costs: make([]float64, len(HeuristicNames))}
		wl := workloadFor(d, cfg, uint64(i))

		bf := strategy.BruteForce{M: cfg.M, N: cfg.N, Mode: cfg.evalMode(), Seed: cfg.Seed + uint64(i), Workers: 1}
		res, err := bf.SearchOn(m, d, wl)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: brute force on %s: %w", d.Name(), err)
			row.Costs[0] = math.NaN()
		} else {
			row.Costs[0] = res.Best.Cost / m.OmniscientCost(d)
		}

		for j, st := range cfg.heuristics() {
			s, err := st.Sequence(m, d)
			if err != nil {
				row.Costs[j+1] = math.NaN()
				continue
			}
			row.Costs[j+1] = cfg.scoreSequence(m, d, s, wl)
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// RenderTable2 formats Table-2 rows in the paper's layout, with each
// heuristic's cost followed by its ratio to the brute-force cost in
// brackets.
func RenderTable2(rows []Table2Row) *tablefmt.Table {
	t := tablefmt.New(
		"Table 2: Normalized expected costs of different heuristics in the ReservationOnly scenario",
		append([]string{"Distribution"}, HeuristicNames...)...)
	for _, r := range rows {
		cells := []string{r.Distribution}
		bf := r.Costs[0]
		for j, c := range r.Costs {
			if j == 0 || math.IsNaN(c) || math.IsNaN(bf) {
				cells = append(cells, tablefmt.Num(c))
			} else {
				cells = append(cells, fmt.Sprintf("%s (%s)", tablefmt.Num(c), tablefmt.Num(c/bf)))
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Table3Row holds one distribution's row of Table 3.
type Table3Row struct {
	Distribution string
	// BestT1 and BestCost are the brute-force winner.
	BestT1, BestCost float64
	// QuantileT1 and QuantileCost are t1 = Q(p) for
	// p ∈ {0.25, 0.5, 0.75, 0.99} and the resulting normalized costs
	// (NaN = invalid sequence, rendered "-").
	QuantileT1, QuantileCost [4]float64
}

// Table3Quantiles are the probed quantiles of Table 3.
var Table3Quantiles = [4]float64{0.25, 0.5, 0.75, 0.99}

// Table3 compares the brute-force t1 with quantile-based guesses.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	dists := dist.Table1()
	names := dist.Table1Names()
	m := core.ReservationOnly

	rows := make([]Table3Row, len(dists))
	errs := make([]error, len(dists))
	parallel.ForEach(len(dists), cfg.Workers, func(i int) {
		d := dists[i]
		row := Table3Row{Distribution: names[i]}
		wl := workloadFor(d, cfg, uint64(i))
		bf := strategy.BruteForce{M: cfg.M, N: cfg.N, Mode: cfg.evalMode(), Seed: cfg.Seed + uint64(i), Workers: 1}
		res, err := bf.SearchOn(m, d, wl)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: brute force on %s: %w", d.Name(), err)
			row.BestT1, row.BestCost = math.NaN(), math.NaN()
		} else {
			row.BestT1 = res.Best.T1
			row.BestCost = res.Best.Cost / m.OmniscientCost(d)
		}
		for q, p := range Table3Quantiles {
			t1 := d.Quantile(p)
			row.QuantileT1[q] = t1
			cand, _ := bf.EvaluateT1On(m, d, t1, wl)
			if cand.Valid {
				row.QuantileCost[q] = cand.Cost / m.OmniscientCost(d)
			} else {
				row.QuantileCost[q] = math.NaN()
			}
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// RenderTable3 formats Table-3 rows.
func RenderTable3(rows []Table3Row) *tablefmt.Table {
	t := tablefmt.New(
		"Table 3: Best t1 found by Brute-Force vs t1 at quantiles (normalized cost in brackets, '-' = invalid)",
		"Distribution", "t1_bf (cost)", "Q(0.25)", "Q(0.5)", "Q(0.75)", "Q(0.99)")
	for _, r := range rows {
		cells := []string{
			r.Distribution,
			fmt.Sprintf("%s (%s)", tablefmt.Num(r.BestT1), tablefmt.Num(r.BestCost)),
		}
		for q := range Table3Quantiles {
			cells = append(cells, fmt.Sprintf("%s (%s)",
				tablefmt.Num(r.QuantileT1[q]), tablefmt.Num(r.QuantileCost[q])))
		}
		t.AddRow(cells...)
	}
	return t
}

// Table4SampleCounts is the paper's n axis in Table 4.
var Table4SampleCounts = []int{10, 25, 50, 100, 250, 500, 1000}

// Table4Row holds one distribution's Table-4 entries: the normalized
// cost of each scheme at each sample count.
type Table4Row struct {
	Distribution string
	EqualTime    []float64
	EqualProb    []float64
}

// Table4 sweeps the discretization sample count for both schemes.
func Table4(cfg Config) ([]Table4Row, error) {
	cfg = cfg.withDefaults()
	dists := dist.Table1()
	names := dist.Table1Names()
	m := core.ReservationOnly

	rows := make([]Table4Row, len(dists))
	parallel.ForEach(len(dists), cfg.Workers, func(i int) {
		d := dists[i]
		wl := workloadFor(d, cfg, uint64(i))
		row := Table4Row{
			Distribution: names[i],
			EqualTime:    make([]float64, len(Table4SampleCounts)),
			EqualProb:    make([]float64, len(Table4SampleCounts)),
		}
		for j, n := range Table4SampleCounts {
			for _, which := range []struct {
				st  strategy.Discretized
				out *float64
			}{
				{strategy.Discretized{Scheme: 1, N: n, Epsilon: cfg.Epsilon}, &row.EqualTime[j]},
				{strategy.Discretized{Scheme: 0, N: n, Epsilon: cfg.Epsilon}, &row.EqualProb[j]},
			} {
				s, err := which.st.Sequence(m, d)
				if err != nil {
					*which.out = math.NaN()
					continue
				}
				*which.out = cfg.scoreSequence(m, d, s, wl)
			}
		}
		rows[i] = row
	})
	return rows, nil
}

// RenderTable4 formats Table-4 rows.
func RenderTable4(rows []Table4Row) *tablefmt.Table {
	header := []string{"Distribution"}
	for _, n := range Table4SampleCounts {
		header = append(header, fmt.Sprintf("ET n=%d", n))
	}
	for _, n := range Table4SampleCounts {
		header = append(header, fmt.Sprintf("EP n=%d", n))
	}
	t := tablefmt.New(
		"Table 4: Normalized expected costs of the discretization-based heuristics vs number of samples",
		header...)
	for _, r := range rows {
		cells := []string{r.Distribution}
		for _, v := range r.EqualTime {
			cells = append(cells, tablefmt.Num(v))
		}
		for _, v := range r.EqualProb {
			cells = append(cells, tablefmt.Num(v))
		}
		t.AddRow(cells...)
	}
	return t
}
