package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAblationTailEps(t *testing.T) {
	cfg := Config{M: 400}
	rows := AblationTailEps(cfg)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.ValidFrac) != len(TailEpsValues) || len(r.BestCost) != len(TailEpsValues) {
			t.Fatalf("%s: ragged row", r.Distribution)
		}
		// Validity fraction is monotone in the tolerance.
		for i := 1; i < len(r.ValidFrac); i++ {
			if r.ValidFrac[i] < r.ValidFrac[i-1]-1e-12 {
				t.Errorf("%s: validity not monotone: %v", r.Distribution, r.ValidFrac)
			}
		}
		// Even the strict rule keeps the fast-growing candidates above
		// the optimum, but the Fig.-3 gap below the optimum means the
		// valid fraction stays below 1.
		if r.ValidFrac[0] > 0.99 {
			t.Errorf("%s: strict rule keeps %.3f of candidates (no gap?)", r.Distribution, r.ValidFrac[0])
		}
		// At eps = 1e-3 the search has a healthy valid region and a
		// sensible optimum, at least as good as the strict one (the
		// tolerance can only rescue candidates).
		last := len(TailEpsValues) - 2 // 1e-3
		if r.ValidFrac[last] < 0.1 {
			t.Errorf("%s: eps=1e-3 keeps only %.3f", r.Distribution, r.ValidFrac[last])
		}
		if math.IsNaN(r.BestCost[last]) || r.BestCost[last] < 1 || r.BestCost[last] > 3 {
			t.Errorf("%s: eps=1e-3 best cost %g", r.Distribution, r.BestCost[last])
		}
		if !math.IsNaN(r.BestCost[0]) && r.BestCost[last] > r.BestCost[0]+0.02 {
			t.Errorf("%s: eps=1e-3 best %g worse than strict best %g",
				r.Distribution, r.BestCost[last], r.BestCost[0])
		}
	}
	out := RenderAblationTailEps(rows).String()
	if !strings.Contains(out, "valid@") {
		t.Error("render missing header")
	}
}

func TestAblationScoring(t *testing.T) {
	rows, err := AblationScoring(Config{M: 400, N: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The rescored MC winner can never beat the analytic optimum.
		if r.MCRescored < r.AnalyticBest-1e-9 {
			t.Errorf("%s: rescored %g below analytic optimum %g", r.Distribution, r.MCRescored, r.AnalyticBest)
		}
		// Selection bias: reported MC cost is typically below its true
		// value; it must never be dramatically above.
		if r.MCBest > r.MCRescored+0.5 {
			t.Errorf("%s: reported %g far above true %g", r.Distribution, r.MCBest, r.MCRescored)
		}
	}
	out := RenderAblationScoring(rows).String()
	if !strings.Contains(out, "selection bias") {
		t.Error("render missing header")
	}
}

func TestAblationCheckpoint(t *testing.T) {
	rows, err := AblationCheckpoint(Config{DiscN: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(CheckpointCosts) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.Mixed > r.NoCkpt+1e-9 || r.Mixed > r.AllCkpt+1e-9 {
			t.Errorf("C=%g: mixed %g not minimal (no %g, all %g)", r.C, r.Mixed, r.NoCkpt, r.AllCkpt)
		}
		if i > 0 && r.Mixed < rows[i-1].Mixed-1e-9 {
			t.Errorf("mixed cost decreased with C: %v", rows)
		}
	}
	// Cheap checkpoints on the heavy tail save a lot.
	if !(rows[0].Mixed < 0.7*rows[0].NoCkpt) {
		t.Errorf("free checkpoints save only %g vs %g", rows[0].Mixed, rows[0].NoCkpt)
	}
	out := RenderAblationCheckpoint(rows).String()
	if !strings.Contains(out, "saving") {
		t.Error("render missing header")
	}
}

func TestAblationResources(t *testing.T) {
	rows, err := AblationResources(Config{M: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	bestCount := 0
	var bestProcs int
	bestCost := math.Inf(1)
	for _, r := range rows {
		if r.Best {
			bestCount++
			bestProcs = r.Procs
		}
		if r.ExpectedCost < bestCost {
			bestCost = r.ExpectedCost
		}
	}
	if bestCount != 1 {
		t.Fatalf("%d best rows", bestCount)
	}
	if bestProcs == 1 || bestProcs == 128 {
		t.Errorf("expected interior optimum, got %d", bestProcs)
	}
	out := RenderAblationResources(rows).String()
	if !strings.Contains(out, "procs") {
		t.Error("render missing header")
	}
}
