package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/online"
	"repro/internal/queuesim"
	"repro/internal/tablefmt"
	"repro/internal/trace"
)

// OnlineRow is one estimator's learning curve in the online-learning
// study.
type OnlineRow struct {
	Estimator string
	// BlockRatio is the learner/oracle cost ratio per block of jobs.
	BlockRatio []float64
	// Regret is the total cumulative regret.
	Regret float64
	// TailRatio is the converged efficiency.
	TailRatio float64
}

// OnlineBlocks is the number of learning-curve blocks reported.
const OnlineBlocks = 5

// StudyOnline runs the online-learning extension: both estimators
// against a LogNormal truth from a badly mis-specified exponential
// prior, reporting the per-block cost ratio versus the clairvoyant
// planner.
func StudyOnline(cfg Config) ([]OnlineRow, error) {
	cfg = cfg.withDefaults()
	truth := dist.MustLogNormal(1, 0.5)
	prior := dist.MustExponential(0.05)
	const jobs = 500
	rows := make([]OnlineRow, 0, 2)
	for _, est := range []online.Estimator{online.Empirical, online.SmoothedLogNormal} {
		l, err := online.NewLearner(core.ReservationOnly, prior, online.Config{Estimator: est, DiscN: 150})
		if err != nil {
			return nil, err
		}
		ev, err := online.Evaluate(l, truth, jobs, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := OnlineRow{Estimator: est.String(), Regret: ev.Regret, TailRatio: ev.TailRatio}
		per := jobs / OnlineBlocks
		for b := 0; b < OnlineBlocks; b++ {
			var lc, oc float64
			for _, r := range ev.Runs[b*per : (b+1)*per] {
				lc += r.Cost
				oc += r.OracleCost
			}
			row.BlockRatio = append(row.BlockRatio, lc/oc)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderStudyOnline formats the online-learning study.
func RenderStudyOnline(rows []OnlineRow) *tablefmt.Table {
	header := []string{"Estimator"}
	for b := 0; b < OnlineBlocks; b++ {
		header = append(header, fmt.Sprintf("block %d", b+1))
	}
	header = append(header, "regret", "tail ratio")
	t := tablefmt.New(
		"Extension: online learning — LogNormal(1, 0.5) truth, Exponential(0.05) prior, cost ratio vs clairvoyant per 100-job block",
		header...)
	for _, r := range rows {
		cells := []string{r.Estimator}
		for _, v := range r.BlockRatio {
			cells = append(cells, tablefmt.Num(v))
		}
		cells = append(cells, tablefmt.Num(r.Regret), fmt.Sprintf("%.3f", r.TailRatio))
		t.AddRow(cells...)
	}
	return t
}

// QueueStudy is the outcome of the scheduler-derived Fig.-2 study.
type QueueStudy struct {
	// Derived is the affine law emerging from the EASY-backfilling
	// simulation.
	Derived trace.WaitTimeModel
	// Synthetic is the law re-fitted from the synthetic log.
	Synthetic trace.WaitTimeModel
	// Stats summarizes the simulation run.
	Stats queuesim.Stats
	// Profile is the simulated wait-vs-requested curve.
	Profile []trace.WaitGroup
}

// StudyQueueDerivedWaits derives the Fig.-2 wait-time law from a
// simulated cluster at ~90% load and compares it to the synthetic-log
// fit.
func StudyQueueDerivedWaits(cfg Config) (QueueStudy, error) {
	cfg = cfg.withDefaults()
	const nodes = 16
	const reqMin, reqMax, useFrac = 600.0, 72000.0, 0.7
	maxJobNodes := nodes * 3 / 4
	meanReq := (reqMax - reqMin) / math.Log(reqMax/reqMin)
	meanRun := meanReq * (useFrac + 1) / 2
	meanNodes := float64(1+maxJobNodes) / 2
	wl := queuesim.WorkloadConfig{
		Jobs: 4000, MaxJobNodes: maxJobNodes,
		ArrivalRate:  0.9 * float64(nodes) / (meanRun * meanNodes),
		RequestedMin: reqMin, RequestedMax: reqMax, UseFraction: useFrac,
		Seed: cfg.Seed,
	}
	derived, prof, stats, err := queuesim.DeriveWaitTimeModel(nodes, wl, 20)
	if err != nil {
		return QueueStudy{}, err
	}
	log, err := trace.GenerateWaitTimeLog(trace.Intrepid409, 20, reqMin, reqMax, 0.05, cfg.Seed)
	if err != nil {
		return QueueStudy{}, err
	}
	synth, err := trace.FitWaitTimeModel(log)
	if err != nil {
		return QueueStudy{}, err
	}
	return QueueStudy{Derived: derived, Synthetic: synth, Stats: stats, Profile: prof}, nil
}

// RenderQueueStudy formats the scheduler-derivation study.
func RenderQueueStudy(q QueueStudy) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("Substrate: Fig.-2 wait-time law — derived from an EASY-backfilling simulation (util %.1f%%, %d backfilled) vs synthetic-log fit",
			100*q.Stats.Utilization, q.Stats.Backfilled),
		"source", "slope α", "intercept γ (s)")
	t.AddRow("scheduler simulation", fmt.Sprintf("%.4f", q.Derived.Alpha), fmt.Sprintf("%.0f", q.Derived.Gamma))
	t.AddRow("synthetic log fit", fmt.Sprintf("%.4f", q.Synthetic.Alpha), fmt.Sprintf("%.0f", q.Synthetic.Gamma))
	t.AddRow("published (Intrepid)", fmt.Sprintf("%.4f", trace.Intrepid409.Alpha), fmt.Sprintf("%.0f", trace.Intrepid409.Gamma))
	return t
}
