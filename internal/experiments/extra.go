package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/strategy"
	"repro/internal/tablefmt"
)

// BimodalRow is one separation level of the bimodal study.
type BimodalRow struct {
	// Separation is the distance between the two modes in units of the
	// small mode's scale (μ2 - μ1 in log space).
	Separation float64
	// Costs are normalized expected costs in HeuristicNames order.
	Costs []float64
}

// BimodalSeparations is the swept distance between the two LogNormal
// modes (log-space).
var BimodalSeparations = []float64{0.5, 1, 1.5, 2, 2.5, 3}

// StudyBimodal evaluates all heuristics on two-mode mixtures — a job
// population the paper's single-mode evaluation never probes, yet a
// common reality (small vs large inputs). As the modes separate, the
// moment-based heuristics (whose first reservation is the overall mean,
// between the modes) degrade, while the DP-based strategies track the
// modal structure.
func StudyBimodal(cfg Config) ([]BimodalRow, error) {
	cfg = cfg.withDefaults()
	m := core.ReservationOnly
	rows := make([]BimodalRow, 0, len(BimodalSeparations))
	for i, sep := range BimodalSeparations {
		mix, err := dist.NewMixture(
			[]dist.Distribution{
				dist.MustLogNormal(0, 0.25),
				dist.MustLogNormal(sep, 0.25),
			},
			[]float64{0.6, 0.4})
		if err != nil {
			return nil, err
		}
		row := BimodalRow{Separation: sep, Costs: make([]float64, len(HeuristicNames))}
		gridM := cfg.M
		if gridM > 1500 {
			gridM = 1500
		}
		bf := strategy.BruteForce{M: gridM, Mode: strategy.EvalAnalytic, Seed: cfg.Seed + uint64(i)}
		res, err := bf.Search(m, mix)
		if err != nil {
			row.Costs[0] = math.NaN()
		} else {
			row.Costs[0] = res.Best.Cost / m.OmniscientCost(mix)
		}
		for j, st := range cfg.heuristics() {
			s, err := st.Sequence(m, mix)
			if err != nil {
				row.Costs[j+1] = math.NaN()
				continue
			}
			e, err := core.ExpectedCost(m, mix, s)
			if err != nil || math.IsInf(e, 0) {
				row.Costs[j+1] = math.NaN()
				continue
			}
			row.Costs[j+1] = e / m.OmniscientCost(mix)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderStudyBimodal formats the bimodal study.
func RenderStudyBimodal(rows []BimodalRow) *tablefmt.Table {
	t := tablefmt.New(
		"Study: bimodal job populations — 0.6·LogNormal(0, 0.25) + 0.4·LogNormal(Δ, 0.25), ReservationOnly",
		append([]string{"Δ (log)"}, HeuristicNames...)...)
	for _, r := range rows {
		cells := []string{fmt.Sprintf("%g", r.Separation)}
		for _, c := range r.Costs {
			cells = append(cells, tablefmt.Num(c))
		}
		t.AddRow(cells...)
	}
	return t
}

// OverheadRow is one per-attempt-overhead level of the γ-sensitivity
// study.
type OverheadRow struct {
	// GammaOverMean is γ expressed as a fraction of E[X].
	GammaOverMean float64
	// BFCost is the brute-force normalized expected cost.
	BFCost float64
	// BFAttempts is the expected number of reservations of the
	// brute-force plan.
	BFAttempts float64
	// FirstOverMean is the plan's first reservation over E[X].
	FirstOverMean float64
}

// OverheadLevels is the swept γ/E[X] axis.
var OverheadLevels = []float64{0, 0.1, 0.25, 0.5, 1, 2}

// StudyOverheadSensitivity sweeps the per-attempt overhead γ in the
// general model (α = β = 1, the paper's HPC-style costs) on the
// LogNormal workload: as retries get more expensive, the optimal
// strategy books longer first reservations and the expected attempt
// count falls toward 1 — quantifying the trade-off the paper's
// fixed-γ NeuroHPC scenario only samples at one point.
func StudyOverheadSensitivity(cfg Config) ([]OverheadRow, error) {
	cfg = cfg.withDefaults()
	d := dist.MustLogNormal(1, 0.5)
	mean := d.Mean()
	gridM := cfg.M
	if gridM > 1500 {
		gridM = 1500
	}
	rows := make([]OverheadRow, 0, len(OverheadLevels))
	for _, g := range OverheadLevels {
		m := core.CostModel{Alpha: 1, Beta: 1, Gamma: g * mean}
		bf := strategy.BruteForce{M: gridM, Mode: strategy.EvalAnalytic}
		res, err := bf.Search(m, d)
		if err != nil {
			return nil, fmt.Errorf("experiments: overhead γ=%g: %w", g, err)
		}
		st, err := core.Stats(m, d, res.Sequence.Clone())
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverheadRow{
			GammaOverMean: g,
			BFCost:        res.Best.Cost / m.OmniscientCost(d),
			BFAttempts:    st.ExpectedAttempts,
			FirstOverMean: res.Best.T1 / mean,
		})
	}
	return rows, nil
}

// RenderStudyOverhead formats the γ-sensitivity study.
func RenderStudyOverhead(rows []OverheadRow) *tablefmt.Table {
	t := tablefmt.New(
		"Study: per-attempt overhead sensitivity — LogNormal(1, 0.5), α=β=1, brute-force plan",
		"γ/E[X]", "normalized cost", "E[attempts]", "t1/E[X]")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%g", r.GammaOverMean),
			tablefmt.Num(r.BFCost),
			fmt.Sprintf("%.3f", r.BFAttempts),
			fmt.Sprintf("%.3f", r.FirstOverMean))
	}
	return t
}

// AttemptBudgetRow is one resubmission-cap level of the attempt-budget
// study.
type AttemptBudgetRow struct {
	// MaxAttempts is the cap K.
	MaxAttempts int
	// Cost is the optimal normalized expected cost under the cap.
	Cost float64
	// PlanLen is the number of reservations the optimal plan uses.
	PlanLen int
}

// StudyAttemptBudget quantifies what resubmission caps cost: the
// optimal constrained plan (dp.SolveMaxAttempts) on the LogNormal
// workload for K = 1..8, versus the unconstrained Theorem-5 optimum.
func StudyAttemptBudget(cfg Config) ([]AttemptBudgetRow, error) {
	cfg = cfg.withDefaults()
	d := dist.MustLogNormal(1, 0.5)
	n := cfg.DiscN
	if n > 500 {
		n = 500
	}
	dd, err := discretize.Discretize(d, n, cfg.Epsilon, discretize.EqualProbability)
	if err != nil {
		return nil, err
	}
	m := core.ReservationOnly
	o := m.OmniscientCost(d)
	rows := make([]AttemptBudgetRow, 0, 8)
	for k := 1; k <= 8; k++ {
		res, err := dp.SolveMaxAttempts(dd, m, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: attempt budget K=%d: %w", k, err)
		}
		rows = append(rows, AttemptBudgetRow{MaxAttempts: k, Cost: res.ExpectedCost / o, PlanLen: len(res.Sequence)})
	}
	return rows, nil
}

// RenderStudyAttemptBudget formats the attempt-budget study.
func RenderStudyAttemptBudget(rows []AttemptBudgetRow) *tablefmt.Table {
	t := tablefmt.New(
		"Study: resubmission caps — optimal cost under at most K attempts (LogNormal(1, 0.5), ReservationOnly)",
		"K", "normalized cost", "plan length")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.MaxAttempts), tablefmt.Num(r.Cost), fmt.Sprintf("%d", r.PlanLen))
	}
	return t
}
