// Package queuesim is a discrete-event simulator of a space-shared HPC
// cluster with FCFS scheduling and EASY backfilling — the scheduler
// family the paper's §6 discusses (Slurm-style, Mu'alem & Feitelson's
// backfilling). It upgrades the trace substrate: instead of *assuming*
// the affine wait-time law of Fig. 2 (wait ≈ α·requested + γ), the
// simulator derives it from first principles — longer requested
// walltimes backfill less easily and wait longer, and fitting the
// simulated per-group average waits recovers an affine profile that
// feeds platform.NeuroHPCFromWaitModel exactly like the synthetic log
// does.
//
// The model: a cluster of Nodes identical nodes; each job needs a node
// count, a requested walltime (its reservation) and an actual runtime;
// a job is killed at its requested walltime if still running (the
// paper's reservation semantics). Jobs arrive at given times and are
// queued FCFS. At every event the scheduler starts the queue head
// whenever it fits; otherwise it computes the head's shadow time (the
// earliest time enough nodes free up) and backfills later jobs that
// either finish by the shadow time or fit into the nodes the head will
// not need (classic EASY: backfilling never delays the head job).
package queuesim

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Job is one submission.
type Job struct {
	// ID is the caller-assigned identifier.
	ID int
	// Arrival is the submission time.
	Arrival float64
	// Nodes is the number of nodes requested.
	Nodes int
	// Requested is the requested walltime (the reservation length).
	Requested float64
	// Actual is the job's true runtime; it occupies its nodes for
	// min(Actual, Requested).
	Actual float64
}

// Result is the outcome of one job.
type Result struct {
	Job
	// Start is when the job began executing.
	Start float64
	// Wait = Start - Arrival.
	Wait float64
	// End is when the nodes were released.
	End float64
	// Killed reports whether the job hit its requested walltime before
	// finishing.
	Killed bool
	// Backfilled reports whether the job jumped the FCFS order.
	Backfilled bool
	// Rejected reports that the job was never admitted (Simulate never
	// rejects; admission-controlled schedulers such as
	// internal/cluster set it). Rejected results carry no meaningful
	// Start/Wait/End and are excluded from Summarize's averages.
	Rejected bool
}

// Config describes the cluster and scheduling policy.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// EnableBackfill turns EASY backfilling on (pure FCFS otherwise).
	EnableBackfill bool
}

// running is an executing job. seq is the start-order counter; sorting
// by (end, seq) makes completion order — and therefore the whole
// event-loop interleaving — deterministic even when two jobs release
// their nodes at exactly the same instant. internal/cluster's event
// heap uses the same (time, start-order) key so the two simulators
// remain bit-identical on degenerate configurations.
type running struct {
	end   float64
	nodes int
	seq   int
}

// byEndSeq orders running jobs by (end, seq).
func byEndSeq(rs []running) func(i, k int) bool {
	return func(i, k int) bool {
		if rs[i].end != rs[k].end { //lint:ignore floatcmp exact tie detection: equal ends must fall through to the seq tie-break
			return rs[i].end < rs[k].end
		}
		return rs[i].seq < rs[k].seq
	}
}

// Simulate runs the given jobs (any order; they are sorted by arrival)
// to completion and returns per-job results sorted by ID.
func Simulate(cfg Config, jobs []Job) ([]Result, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("queuesim: cluster needs at least 1 node, got %d", cfg.Nodes)
	}
	for _, j := range jobs {
		if j.Nodes < 1 || j.Nodes > cfg.Nodes {
			return nil, fmt.Errorf("queuesim: job %d requests %d nodes on a %d-node cluster", j.ID, j.Nodes, cfg.Nodes)
		}
		if !(j.Requested > 0) || j.Actual < 0 || math.IsNaN(j.Arrival) || j.Arrival < 0 {
			return nil, fmt.Errorf("queuesim: job %d has invalid times (arrival %g, requested %g, actual %g)", j.ID, j.Arrival, j.Requested, j.Actual)
		}
	}

	pending := append([]Job(nil), jobs...)
	sort.SliceStable(pending, func(i, k int) bool { return pending[i].Arrival < pending[k].Arrival })

	var (
		now      float64
		free     = cfg.Nodes
		run      []running
		queue    []Job
		results  = make([]Result, 0, len(jobs))
		next     int // index into pending
		startSeq int // start-order counter for deterministic end ties
	)

	finishOne := func() {
		// Pop the earliest completion (ties broken by start order).
		sort.Slice(run, byEndSeq(run))
		now = run[0].end
		free += run[0].nodes
		run = run[1:]
	}

	start := func(j Job, backfilled bool) {
		dur := math.Min(j.Actual, j.Requested)
		res := Result{
			Job:        j,
			Start:      now,
			Wait:       now - j.Arrival,
			End:        now + dur,
			Killed:     j.Actual > j.Requested,
			Backfilled: backfilled,
		}
		results = append(results, res)
		run = append(run, running{end: res.End, nodes: j.Nodes, seq: startSeq})
		startSeq++
		free -= j.Nodes
	}

	// schedule starts whatever can start at the current time.
	schedule := func() {
		for len(queue) > 0 {
			head := queue[0]
			if head.Nodes <= free {
				queue = queue[1:]
				start(head, false)
				continue
			}
			if !cfg.EnableBackfill {
				return
			}
			// EASY backfilling: find the head's shadow time and spare
			// nodes at that time.
			shadow, spare := shadowOf(head, free, run)
			kept := queue[:1]
			for _, j := range queue[1:] {
				fitsNow := j.Nodes <= free
				endsByShadow := now+j.Requested <= shadow+1e-12
				fitsSpare := j.Nodes <= spare
				if fitsNow && (endsByShadow || fitsSpare) {
					start(j, true)
					if fitsSpare && !endsByShadow {
						// The job occupies nodes past the shadow time;
						// account for them so later backfills cannot
						// delay the head.
						spare -= j.Nodes
					}
					continue
				}
				kept = append(kept, j)
			}
			queue = kept
			return
		}
	}

	// Strict event loop: schedule at the current instant, then consume
	// exactly one event (a completion or a batch of simultaneous
	// arrivals). Every iteration consumes an event, so the loop
	// terminates after O(#jobs) iterations.
	for {
		schedule()
		nextArrival := math.Inf(1)
		if next < len(pending) {
			nextArrival = pending[next].Arrival
		}
		nextEnd := math.Inf(1)
		if len(run) > 0 {
			nextEnd = minEnd(run)
		}
		if math.IsInf(nextArrival, 1) && math.IsInf(nextEnd, 1) {
			if len(queue) > 0 {
				return nil, errors.New("queuesim: deadlock — queued jobs but no events")
			}
			break
		}
		if nextEnd <= nextArrival {
			finishOne()
		} else {
			now = nextArrival
			//lint:ignore floatcmp now was assigned from this arrival time, so batch-arrival equality is exact
			for next < len(pending) && pending[next].Arrival == now {
				queue = append(queue, pending[next])
				next++
			}
		}
	}

	sort.Slice(results, func(i, k int) bool { return results[i].ID < results[k].ID })
	return results, nil
}

// minEnd returns the earliest completion time among running jobs.
func minEnd(run []running) float64 {
	m := math.Inf(1)
	for _, r := range run {
		if r.end < m {
			m = r.end
		}
	}
	return m
}

// shadowOf computes the earliest time the head job could start (the
// shadow time) and the nodes that will remain spare at that moment
// beyond the head's need.
func shadowOf(head Job, free int, run []running) (shadow float64, spare int) {
	rs := append([]running(nil), run...)
	sort.Slice(rs, byEndSeq(rs))
	avail := free
	for _, r := range rs {
		if avail >= head.Nodes {
			break
		}
		avail += r.nodes
		shadow = r.end
	}
	if avail < head.Nodes {
		return math.Inf(1), 0
	}
	return shadow, avail - head.Nodes
}

// Stats summarizes a simulation.
type Stats struct {
	// Jobs is the number of results summarized (admitted + rejected).
	Jobs int
	// Rejected is the number of jobs that were never admitted.
	// Simulate itself admits everything; admission-controlled
	// schedulers (internal/cluster) produce rejected results.
	Rejected int
	// MeanWait is the average wait over all admitted jobs.
	MeanWait float64
	// MaxWait is the largest wait among admitted jobs.
	MaxWait float64
	// Backfilled is the number of jobs that jumped the queue.
	Backfilled int
	// Killed is the number of jobs that exceeded their request.
	Killed int
	// Utilization is busy node-time over Nodes·makespan.
	Utilization float64
}

// Summarize computes aggregate statistics for a result set on the given
// cluster. Rejected results contribute to Jobs/Rejected only; an empty
// or all-rejected result set yields zero statistics rather than NaNs
// (no 0/0 division ever happens). It is the buffered spelling of the
// streaming Accumulator: feeding the same results in the same order
// yields bit-identical Stats.
func Summarize(cfg Config, results []Result) Stats {
	acc := NewAccumulator()
	for _, r := range results {
		acc.Add(r)
	}
	return acc.Stats(cfg)
}

// Accumulator builds Stats one result at a time, in O(1) memory — the
// streaming Summarize used by internal/cluster's large-scale runs.
// Adding results in a fixed order is deterministic (the float sums
// follow that order), and Merge combines independently filled
// accumulators with commutative operations only (integer adds, one
// float add per sum, math.Min/Max), so merged statistics do not depend
// on which accumulator absorbed which.
type Accumulator struct {
	jobs       int
	rejected   int
	admitted   int
	backfilled int
	killed     int
	waitSum    float64
	maxWait    float64
	busy       float64
	tMin, tMax float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{tMin: math.Inf(1)}
}

// Add folds one result in. The arithmetic mirrors the historical
// Summarize loop exactly, so buffered and streaming paths agree to the
// last bit.
func (a *Accumulator) Add(r Result) {
	a.jobs++
	if r.Rejected {
		a.rejected++
		return
	}
	a.admitted++
	a.waitSum += r.Wait
	if r.Wait > a.maxWait {
		a.maxWait = r.Wait
	}
	if r.Backfilled {
		a.backfilled++
	}
	if r.Killed {
		a.killed++
	}
	a.busy += (r.End - r.Start) * float64(r.Nodes)
	a.tMin = math.Min(a.tMin, r.Arrival)
	a.tMax = math.Max(a.tMax, r.End)
}

// Merge folds another accumulator in.
func (a *Accumulator) Merge(o *Accumulator) {
	a.jobs += o.jobs
	a.rejected += o.rejected
	a.admitted += o.admitted
	a.backfilled += o.backfilled
	a.killed += o.killed
	a.waitSum += o.waitSum
	if o.maxWait > a.maxWait {
		a.maxWait = o.maxWait
	}
	a.busy += o.busy
	a.tMin = math.Min(a.tMin, o.tMin)
	a.tMax = math.Max(a.tMax, o.tMax)
}

// Admitted returns how many non-rejected results were added.
func (a *Accumulator) Admitted() int { return a.admitted }

// Window returns the observed [min arrival, max end] makespan window.
func (a *Accumulator) Window() (tMin, tMax float64) { return a.tMin, a.tMax }

// Stats finalizes the aggregates for the given cluster.
func (a *Accumulator) Stats(cfg Config) Stats {
	var s Stats
	s.Jobs = a.jobs
	s.Rejected = a.rejected
	s.Backfilled = a.backfilled
	s.Killed = a.killed
	s.MaxWait = a.maxWait
	if a.admitted == 0 {
		return s // guard: no admitted jobs, nothing to average
	}
	s.MeanWait = a.waitSum / float64(a.admitted)
	if span := a.tMax - a.tMin; span > 0 {
		s.Utilization = a.busy / (span * float64(cfg.Nodes))
	}
	return s
}
