package queuesim_test

import (
	"fmt"

	"repro/internal/queuesim"
)

// ExampleSimulate shows EASY backfilling on a toy cluster: the short
// narrow job jumps a blocked head without delaying it.
func ExampleSimulate() {
	jobs := []queuesim.Job{
		{ID: 0, Arrival: 0, Nodes: 3, Requested: 10, Actual: 10}, // fills 3 of 4 nodes
		{ID: 1, Arrival: 1, Nodes: 4, Requested: 10, Actual: 10}, // blocked head
		{ID: 2, Arrival: 2, Nodes: 1, Requested: 3, Actual: 3},   // backfills
	}
	res, _ := queuesim.Simulate(queuesim.Config{Nodes: 4, EnableBackfill: true}, jobs)
	for _, r := range res {
		fmt.Printf("job %d: start %.0f backfilled=%v\n", r.ID, r.Start, r.Backfilled)
	}
	// Output:
	// job 0: start 0 backfilled=false
	// job 1: start 10 backfilled=false
	// job 2: start 2 backfilled=true
}
