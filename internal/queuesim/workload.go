package queuesim

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/trace"
)

// WorkloadConfig describes a synthetic cluster workload.
type WorkloadConfig struct {
	// Jobs is the number of submissions.
	Jobs int
	// MaxJobNodes bounds the per-job node request (uniform in
	// [1, MaxJobNodes]).
	MaxJobNodes int
	// ArrivalRate is the Poisson arrival rate (jobs per time unit).
	ArrivalRate float64
	// RequestedMin and RequestedMax bound the requested walltimes
	// (log-uniform between them, mimicking the order-of-magnitude
	// spread of real logs).
	RequestedMin, RequestedMax float64
	// UseFraction in (0, 1]: each job's actual runtime is
	// requested · Uniform(UseFraction, 1) (users over-estimate).
	UseFraction float64
	// Seed drives the generator.
	Seed uint64
}

// GenerateWorkload synthesizes a job stream.
func GenerateWorkload(cfg WorkloadConfig) ([]Job, error) {
	if cfg.Jobs < 1 {
		return nil, fmt.Errorf("queuesim: need at least 1 job, got %d", cfg.Jobs)
	}
	if cfg.MaxJobNodes < 1 {
		return nil, fmt.Errorf("queuesim: MaxJobNodes must be >= 1, got %d", cfg.MaxJobNodes)
	}
	if !(cfg.ArrivalRate > 0) {
		return nil, fmt.Errorf("queuesim: arrival rate must be positive, got %g", cfg.ArrivalRate)
	}
	if !(cfg.RequestedMin > 0) || !(cfg.RequestedMax > cfg.RequestedMin) {
		return nil, fmt.Errorf("queuesim: invalid requested range [%g, %g]", cfg.RequestedMin, cfg.RequestedMax)
	}
	if !(cfg.UseFraction > 0) || cfg.UseFraction > 1 {
		return nil, fmt.Errorf("queuesim: UseFraction must be in (0, 1], got %g", cfg.UseFraction)
	}
	r := rng.New(cfg.Seed)
	jobs := make([]Job, cfg.Jobs)
	t := 0.0
	logMin, logMax := math.Log(cfg.RequestedMin), math.Log(cfg.RequestedMax)
	for i := range jobs {
		t += r.ExpFloat64() / cfg.ArrivalRate
		req := math.Exp(logMin + (logMax-logMin)*r.Float64())
		use := cfg.UseFraction + (1-cfg.UseFraction)*r.Float64()
		jobs[i] = Job{
			ID:        i,
			Arrival:   t,
			Nodes:     1 + int(r.Uint64n(uint64(cfg.MaxJobNodes))),
			Requested: req,
			Actual:    req * use,
		}
	}
	return jobs, nil
}

// WaitProfile buckets completed jobs into equal-size groups by
// requested walltime (as Fig. 2 clusters jobs into 20 groups of similar
// requested runtime) and returns each group's average wait — directly
// consumable by trace.FitWaitTimeModel. The bucketing itself is the
// shared trace.BucketWaits kernel, also used by the cluster simulator's
// wait profiles.
func WaitProfile(results []Result, groups int) ([]trace.WaitGroup, error) {
	if groups < 2 {
		return nil, fmt.Errorf("queuesim: need at least 2 groups, got %d", groups)
	}
	if len(results) < groups {
		return nil, fmt.Errorf("queuesim: %d results cannot fill %d groups", len(results), groups)
	}
	req := make([]float64, len(results))
	wait := make([]float64, len(results))
	for i, r := range results {
		req[i] = r.Requested
		wait[i] = r.Wait
	}
	return trace.BucketWaits(req, wait, groups)
}

// DeriveWaitTimeModel runs the whole Fig.-2 derivation: generate a
// workload, simulate it under EASY backfilling on a cluster of the
// given size, bucket the waits, and fit the affine law.
func DeriveWaitTimeModel(nodes int, wl WorkloadConfig, groups int) (trace.WaitTimeModel, []trace.WaitGroup, Stats, error) {
	jobs, err := GenerateWorkload(wl)
	if err != nil {
		return trace.WaitTimeModel{}, nil, Stats{}, err
	}
	cfg := Config{Nodes: nodes, EnableBackfill: true}
	results, err := Simulate(cfg, jobs)
	if err != nil {
		return trace.WaitTimeModel{}, nil, Stats{}, err
	}
	prof, err := WaitProfile(results, groups)
	if err != nil {
		return trace.WaitTimeModel{}, nil, Stats{}, err
	}
	model, err := trace.FitWaitTimeModel(prof)
	if err != nil {
		return trace.WaitTimeModel{}, nil, Stats{}, err
	}
	return model, prof, Summarize(cfg, results), nil
}
