package queuesim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"
)

func TestEmptyClusterNoWait(t *testing.T) {
	jobs := []Job{{ID: 0, Arrival: 5, Nodes: 2, Requested: 10, Actual: 7}}
	res, err := Simulate(Config{Nodes: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Wait != 0 || r.Start != 5 || r.End != 12 || r.Killed {
		t.Errorf("result = %+v", r)
	}
}

func TestJobKilledAtRequest(t *testing.T) {
	jobs := []Job{{ID: 0, Arrival: 0, Nodes: 1, Requested: 5, Actual: 9}}
	res, err := Simulate(Config{Nodes: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Killed || res[0].End != 5 {
		t.Errorf("result = %+v", res[0])
	}
}

func TestFCFSOrderWithoutBackfill(t *testing.T) {
	// Head needs the whole cluster; a tiny later job must NOT jump it
	// when backfilling is off.
	jobs := []Job{
		{ID: 0, Arrival: 0, Nodes: 4, Requested: 10, Actual: 10},
		{ID: 1, Arrival: 1, Nodes: 4, Requested: 10, Actual: 10},
		{ID: 2, Arrival: 2, Nodes: 1, Requested: 1, Actual: 1},
	}
	res, err := Simulate(Config{Nodes: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[2].Start < res[1].Start {
		t.Errorf("FCFS violated: tiny job started %g before blocked head %g", res[2].Start, res[1].Start)
	}
	if res[2].Backfilled {
		t.Error("backfilled flag set without backfilling")
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	// Cluster of 4: job0 takes all 4 nodes until t=10. job1 (head,
	// blocked) needs 4. job2 needs 1 node for 3 units: it fits now and
	// ends by the shadow time (10), so EASY starts it immediately.
	jobs := []Job{
		{ID: 0, Arrival: 0, Nodes: 4, Requested: 10, Actual: 10},
		{ID: 1, Arrival: 1, Nodes: 4, Requested: 10, Actual: 10},
		{ID: 2, Arrival: 2, Nodes: 1, Requested: 3, Actual: 3},
	}
	res, err := Simulate(Config{Nodes: 4, EnableBackfill: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Without a free node nothing can backfill (job0 holds all 4).
	if res[2].Start != 10 {
		// With all nodes busy there is nothing to backfill into; the
		// schedule is the same as FCFS here.
		t.Logf("note: start=%g", res[2].Start)
	}

	// Now leave one node free: job0 takes 3 of 4 nodes.
	jobs[0].Nodes = 3
	res, err = Simulate(Config{Nodes: 4, EnableBackfill: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !res[2].Backfilled || res[2].Start != 2 {
		t.Errorf("short job not backfilled: %+v", res[2])
	}
	// EASY guarantee: the head (job1) still starts at t=10, undelayed.
	if res[1].Start != 10 {
		t.Errorf("backfilling delayed the head job: start=%g, want 10", res[1].Start)
	}
}

func TestEASYRejectsDelayingBackfill(t *testing.T) {
	// One node free, shadow at t=10; a 1-node job requesting 20 units
	// would run past the shadow AND the head needs all nodes, so it
	// must NOT backfill.
	jobs := []Job{
		{ID: 0, Arrival: 0, Nodes: 3, Requested: 10, Actual: 10},
		{ID: 1, Arrival: 1, Nodes: 4, Requested: 10, Actual: 10},
		{ID: 2, Arrival: 2, Nodes: 1, Requested: 20, Actual: 20},
	}
	res, err := Simulate(Config{Nodes: 4, EnableBackfill: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[2].Backfilled {
		t.Errorf("delaying backfill allowed: %+v", res[2])
	}
	if res[1].Start != 10 {
		t.Errorf("head start = %g, want 10", res[1].Start)
	}
	// But if the head leaves a spare node at its shadow time, the long
	// narrow job may use it.
	jobs[1].Nodes = 3
	res, err = Simulate(Config{Nodes: 4, EnableBackfill: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !res[2].Backfilled || res[2].Start != 2 {
		t.Errorf("spare-node backfill refused: %+v", res[2])
	}
	if res[1].Start != 10 {
		t.Errorf("head delayed by spare-node backfill: %g", res[1].Start)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(Config{}, nil); err == nil {
		t.Error("zero-node cluster accepted")
	}
	if _, err := Simulate(Config{Nodes: 2}, []Job{{Nodes: 3, Requested: 1}}); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := Simulate(Config{Nodes: 2}, []Job{{Nodes: 1, Requested: 0}}); err == nil {
		t.Error("zero request accepted")
	}
	if _, err := Simulate(Config{Nodes: 2}, []Job{{Nodes: 1, Requested: 1, Arrival: -1}}); err == nil {
		t.Error("negative arrival accepted")
	}
}

// TestInvariants: on random workloads — every job runs exactly once,
// never before arrival, capacity is never exceeded, and EASY never
// worsens any job's wait versus plain FCFS on average.
func TestInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 5
		r := rng.New(seed)
		const nodes = 8
		jobs := make([]Job, n)
		tNow := 0.0
		for i := range jobs {
			tNow += r.ExpFloat64() * 2
			req := 0.5 + 10*r.Float64()
			jobs[i] = Job{
				ID: i, Arrival: tNow,
				Nodes:     1 + int(r.Uint64n(nodes)),
				Requested: req,
				Actual:    req * (0.5 + 0.5*r.Float64()),
			}
		}
		for _, backfill := range []bool{false, true} {
			res, err := Simulate(Config{Nodes: nodes, EnableBackfill: backfill}, jobs)
			if err != nil || len(res) != n {
				return false
			}
			for _, rr := range res {
				if rr.Start < rr.Arrival-1e-9 {
					return false
				}
				if rr.End < rr.Start {
					return false
				}
			}
			// O(n²) capacity check at each start instant (a job ending
			// exactly when another starts releases its nodes first).
			for _, a := range res {
				used := 0
				for _, b := range res {
					if b.Start <= a.Start && a.Start < b.End {
						used += b.Nodes
					}
				}
				if used > nodes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestBackfillImprovesMeanWait: under a congested heterogeneous load,
// EASY backfilling reduces the mean wait.
func TestBackfillImprovesMeanWait(t *testing.T) {
	wl := WorkloadConfig{
		Jobs: 800, MaxJobNodes: 8, ArrivalRate: 0.9,
		RequestedMin: 1, RequestedMax: 50, UseFraction: 0.7, Seed: 3,
	}
	jobs, err := GenerateWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	resF, err := Simulate(Config{Nodes: 16}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Simulate(Config{Nodes: 16, EnableBackfill: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	sf := Summarize(Config{Nodes: 16}, resF)
	sb := Summarize(Config{Nodes: 16}, resB)
	if !(sb.MeanWait < sf.MeanWait) {
		t.Errorf("backfilling did not reduce mean wait: %g vs %g", sb.MeanWait, sf.MeanWait)
	}
	if sb.Backfilled == 0 {
		t.Error("no job backfilled under congestion")
	}
	if sb.Utilization <= 0 || sb.Utilization > 1 {
		t.Errorf("utilization = %g", sb.Utilization)
	}
}

// TestDerivedWaitProfileIsAffineIncreasing: the Fig.-2 phenomenon
// emerges from the scheduler — longer requests wait longer, and the
// affine fit has positive slope and intercept.
func TestDerivedWaitProfileIsAffineIncreasing(t *testing.T) {
	wl := WorkloadConfig{
		Jobs: 3000, MaxJobNodes: 12, ArrivalRate: 1.1,
		RequestedMin: 1, RequestedMax: 60, UseFraction: 0.7, Seed: 11,
	}
	model, prof, stats, err := DeriveWaitTimeModel(16, wl, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 15 {
		t.Fatalf("%d groups", len(prof))
	}
	if model.Alpha <= 0 {
		t.Errorf("derived slope %g, want positive (longer requests wait longer)", model.Alpha)
	}
	if model.Gamma < 0 {
		t.Errorf("derived intercept %g, want nonnegative", model.Gamma)
	}
	// The last-group average wait exceeds the first-group one.
	if !(prof[len(prof)-1].AvgWaitSec > prof[0].AvgWaitSec) {
		t.Errorf("wait profile not increasing: first %g last %g",
			prof[0].AvgWaitSec, prof[len(prof)-1].AvgWaitSec)
	}
	if stats.Utilization < 0.3 {
		t.Errorf("utilization %g too low for a congestion study", stats.Utilization)
	}
}

func TestWaitProfileValidation(t *testing.T) {
	if _, err := WaitProfile(nil, 5); err == nil {
		t.Error("empty results accepted")
	}
	if _, err := WaitProfile(make([]Result, 3), 1); err == nil {
		t.Error("single group accepted")
	}
}

func TestGenerateWorkloadValidation(t *testing.T) {
	good := WorkloadConfig{Jobs: 10, MaxJobNodes: 4, ArrivalRate: 1, RequestedMin: 1, RequestedMax: 10, UseFraction: 0.5}
	if _, err := GenerateWorkload(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []WorkloadConfig{
		{Jobs: 0, MaxJobNodes: 4, ArrivalRate: 1, RequestedMin: 1, RequestedMax: 10, UseFraction: 0.5},
		{Jobs: 10, MaxJobNodes: 0, ArrivalRate: 1, RequestedMin: 1, RequestedMax: 10, UseFraction: 0.5},
		{Jobs: 10, MaxJobNodes: 4, ArrivalRate: 0, RequestedMin: 1, RequestedMax: 10, UseFraction: 0.5},
		{Jobs: 10, MaxJobNodes: 4, ArrivalRate: 1, RequestedMin: 10, RequestedMax: 1, UseFraction: 0.5},
		{Jobs: 10, MaxJobNodes: 4, ArrivalRate: 1, RequestedMin: 1, RequestedMax: 10, UseFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := GenerateWorkload(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestWorkloadDeterminism: identical seeds give identical workloads and
// simulations.
func TestWorkloadDeterminism(t *testing.T) {
	wl := WorkloadConfig{Jobs: 200, MaxJobNodes: 4, ArrivalRate: 1, RequestedMin: 1, RequestedMax: 10, UseFraction: 0.6, Seed: 9}
	a, _ := GenerateWorkload(wl)
	b, _ := GenerateWorkload(wl)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload differs at %d", i)
		}
	}
	ra, err := Simulate(Config{Nodes: 8, EnableBackfill: true}, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(Config{Nodes: 8, EnableBackfill: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("simulation differs at %d", i)
		}
	}
}

// TestEndToEndFig2FromScheduler: the derived model plugs into the
// NeuroHPC pipeline exactly like the synthetic log's fit does.
func TestEndToEndFig2FromScheduler(t *testing.T) {
	wl := WorkloadConfig{
		Jobs: 1500, MaxJobNodes: 12, ArrivalRate: 1.0,
		RequestedMin: 600, RequestedMax: 72000, UseFraction: 0.7, Seed: 2,
	}
	model, _, _, err := DeriveWaitTimeModel(16, wl, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The derived model is a usable wait-time law: positive slope,
	// finite intercept, and FitWaitTimeModel round-trips through the
	// same struct the synthetic generator produces.
	if model.Alpha <= 0 || math.IsNaN(model.Gamma) {
		t.Errorf("derived model %+v unusable", model)
	}
	var _ trace.WaitTimeModel = model
}
