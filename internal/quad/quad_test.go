package quad

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %.12g, want %.12g", name, got, want)
	}
}

func TestIntegratePolynomials(t *testing.T) {
	// Simpson is exact for cubics; the adaptive version must nail these.
	v, err := Integrate(func(x float64) float64 { return x * x }, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫x²", v, 9, 1e-12)

	v, err = Integrate(func(x float64) float64 { return x*x*x - 2*x }, -1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫x³-2x", v, 15.0/4-3, 1e-12)
}

func TestIntegrateTranscendental(t *testing.T) {
	v, err := Integrate(math.Sin, 0, math.Pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫sin", v, 2, 1e-10)

	v, err = Integrate(math.Exp, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫exp", v, math.E-1, 1e-10)

	// A mildly singular-derivative integrand: sqrt on [0, 1].
	v, err = Integrate(math.Sqrt, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫sqrt", v, 2.0/3.0, 1e-9)
}

func TestIntegrateReversedAndDegenerate(t *testing.T) {
	v, err := Integrate(func(x float64) float64 { return x }, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "reversed", v, -2, 1e-12)

	v, err = Integrate(math.Exp, 1, 1, 0)
	if err != nil || v != 0 {
		t.Errorf("degenerate interval: v=%g err=%v, want 0,nil", v, err)
	}

	if _, err := Integrate(math.Exp, 0, math.Inf(1), 0); err == nil {
		t.Error("expected error for infinite endpoint on Integrate")
	}
}

func TestIntegrateToInf(t *testing.T) {
	// ∫_0^∞ e^{-x} = 1
	v, err := IntegrateToInf(func(x float64) float64 { return math.Exp(-x) }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫e^-x", v, 1, 1e-9)

	// ∫_0^∞ x e^{-x} = 1
	v, err = IntegrateToInf(func(x float64) float64 { return x * math.Exp(-x) }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫x e^-x", v, 1, 1e-9)

	// ∫_1^∞ 1/x² = 1
	v, err = IntegrateToInf(func(x float64) float64 { return 1 / (x * x) }, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "∫1/x²", v, 1, 1e-9)

	// Gaussian tail: ∫_0^∞ e^{-x²/2} = sqrt(π/2)
	v, err = IntegrateToInf(func(x float64) float64 { return math.Exp(-x * x / 2) }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "gaussian", v, math.Sqrt(math.Pi/2), 1e-9)
}

func TestMoment(t *testing.T) {
	// Exponential(1): E[X] = 1, E[X²] = 2.
	pdf := func(x float64) float64 { return math.Exp(-x) }
	m1, err := Moment(pdf, 1, 0, math.Inf(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "E[X]", m1, 1, 1e-8)
	m2, err := Moment(pdf, 2, 0, math.Inf(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "E[X²]", m2, 2, 1e-8)

	// Uniform(10, 20): E[X] = 15 over finite interval.
	u := func(x float64) float64 { return 0.1 }
	m1, err = Moment(u, 1, 10, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "uniform mean", m1, 15, 1e-10)
}

func TestLinearityProperty(t *testing.T) {
	// ∫(c·f) = c·∫f for random scale factors and bounds.
	f := func(c, hi float64) bool {
		c = math.Mod(c, 10)
		hi = 0.5 + math.Abs(math.Mod(hi, 5))
		g := func(x float64) float64 { return math.Cos(x) + 2 }
		v1, err1 := Integrate(func(x float64) float64 { return c * g(x) }, 0, hi, 0)
		v2, err2 := Integrate(g, 0, hi, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(v1-c*v2) < 1e-8*(1+math.Abs(v1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdditivityProperty(t *testing.T) {
	// ∫_a^c = ∫_a^b + ∫_b^c for a < b < c.
	f := func(x1, x2, x3 float64) bool {
		a := math.Mod(math.Abs(x1), 4)
		b := a + 0.1 + math.Mod(math.Abs(x2), 4)
		c := b + 0.1 + math.Mod(math.Abs(x3), 4)
		g := func(x float64) float64 { return math.Exp(-x) * math.Sin(3*x+1) }
		whole, e1 := Integrate(g, a, c, 0)
		left, e2 := Integrate(g, a, b, 0)
		right, e3 := Integrate(g, b, c, 0)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		return math.Abs(whole-(left+right)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
