// Package quad provides numerical integration on finite and
// semi-infinite intervals. It is used throughout the library to compute
// partial moments and conditional expectations of probability
// distributions when no closed form is available, and by the test
// suites to cross-check every closed form against an independent
// numerical value.
//
// The core routine is an adaptive Simpson integrator with Richardson
// acceleration; semi-infinite intervals are mapped to (0, 1) with the
// rational substitution t = a + u/(1-u).
package quad

import (
	"errors"
	"math"
)

// DefaultTol is the default absolute/relative error target.
const DefaultTol = 1e-10

// maxDepth bounds the adaptive recursion. 2^48 subdivisions is far more
// than double precision can use, so hitting the bound means the
// integrand is too irregular for the requested tolerance.
const maxDepth = 48

// ErrDepth is returned when adaptive subdivision hits its depth limit
// before reaching the requested tolerance. The returned value is still
// the best available estimate.
var ErrDepth = errors.New("quad: max subdivision depth reached")

// Func is a scalar integrand.
type Func func(x float64) float64

// Integrate computes ∫_a^b f(x) dx with adaptive Simpson quadrature to
// the given tolerance (use 0 for DefaultTol). a may exceed b, in which
// case the sign of the result flips. Non-finite endpoints are rejected;
// use IntegrateToInf for semi-infinite domains.
func Integrate(f Func, a, b, tol float64) (float64, error) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.NaN(), errors.New("quad: endpoints must be finite")
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	//lint:ignore floatcmp a zero-width interval has integral exactly 0; nearby widths integrate normally
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	v, err := adaptive(f, a, b, fa, fm, fb, whole, tol, maxDepth)
	return sign * v, err
}

// simpson returns the basic Simpson estimate on [a, b] given endpoint
// and midpoint samples.
func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// adaptive recursively subdivides until the Richardson error estimate
// passes the tolerance.
func adaptive(f Func, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, error) {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	//lint:ignore floatcmp m==a / m==b detects that the midpoint collapsed onto an endpoint in float64
	if math.Abs(delta) <= 15*tol || m == a || m == b {
		return left + right + delta/15, nil
	}
	if depth <= 0 {
		return left + right + delta/15, ErrDepth
	}
	// Keep the child tolerance at 0.6·tol rather than the classical
	// tol/2: the total error stays O(tol) while corner singularities
	// (e.g. √x at 0) converge within the depth budget instead of
	// chasing an exponentially shrinking local target.
	lv, lerr := adaptive(f, a, m, fa, flm, fm, left, 0.6*tol, depth-1)
	rv, rerr := adaptive(f, m, b, fm, frm, fb, right, 0.6*tol, depth-1)
	if lerr != nil {
		return lv + rv, lerr
	}
	return lv + rv, rerr
}

// IntegrateToInf computes ∫_a^∞ f(x) dx by mapping [a, ∞) onto [0, 1)
// with x = a + u/(1-u), dx = du/(1-u)². The integrand must decay fast
// enough for the transformed integrand to be integrable (true for all
// the survival-weighted moments used in this library).
func IntegrateToInf(f Func, a, tol float64) (float64, error) {
	g := func(u float64) float64 {
		// Clamp just inside the interval: the transformed integrand can
		// have a finite limit at u→1 (e.g. f ~ x^-2) that evaluates to
		// NaN at exactly u=1.
		if u > 1-1e-14 {
			u = 1 - 1e-14
		}
		om := 1 - u
		x := a + u/om
		v := f(x) / (om * om)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return Integrate(g, 0, 1, tol)
}

// Moment computes the p-th partial moment ∫_a^b x^p f(x) dx where b may
// be math.Inf(1).
func Moment(f Func, p int, a, b, tol float64) (float64, error) {
	g := func(x float64) float64 {
		return math.Pow(x, float64(p)) * f(x)
	}
	if math.IsInf(b, 1) {
		return IntegrateToInf(g, a, tol)
	}
	return Integrate(g, a, b, tol)
}
