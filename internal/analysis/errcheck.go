package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck is a lite checked-errors rule focused on the failure modes
// that matter for a results-producing tool: a dropped write error means
// a silently truncated CSV or results file that then poisons every
// downstream comparison. It flags
//
//   - expression statements that discard an error result, and
//   - "defer f.Close()" where f was opened for writing in the same
//     function (os.Create / os.OpenFile): Close is where buffered
//     write failures surface, so it must be checked on the main path.
//
// Deliberate discards stay available two ways: assign to blank
// ("_ = w.Flush()") or annotate with lint:ignore. fmt printing to
// stdout/stderr and the never-failing strings.Builder / bytes.Buffer
// writers are allowed.
var ErrCheck = &Analyzer{
	Name: "errcheck-lite",
	Doc:  "flags discarded error returns and deferred Close on writable files",
	Run:  runErrCheck,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		writable := writableFiles(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || !lastResultIsError(p.Info, call) {
					return true
				}
				if allowedDiscard(p.Info, call) {
					return true
				}
				p.Reportf(call.Pos(),
					"error return discarded; handle it or assign to _ explicitly")
			case *ast.DeferStmt:
				checkDeferredClose(p, s, writable)
			}
			return true
		})
	}
}

// allowedDiscard reports whether the call's error is conventionally
// ignorable: fmt's Print/Fprint family (per-call handling of stdout
// failures is not actionable here) and methods on the never-failing
// in-memory writers.
func allowedDiscard(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeOf(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() == "fmt" && hasPrintPrefix(obj.Name()) {
		return true
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			tn := named.Obj()
			if tn.Pkg() != nil {
				switch tn.Pkg().Path() + "." + tn.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	return false
}

// writableFiles collects objects assigned from os.Create or os.OpenFile
// anywhere in the file (closures included): those are the handles whose
// Close result carries write errors.
func writableFiles(p *Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeOf(p.Info, call)
		if !isPkgFunc(obj, "os", "Create") && !isPkgFunc(obj, "os", "OpenFile") {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if def := p.Info.Defs[id]; def != nil {
				out[def] = true
			} else if use := p.Info.Uses[id]; use != nil {
				out[use] = true
			}
		}
		return true
	})
	return out
}

// checkDeferredClose flags "defer f.Close()" when f is a writable file
// handle from this file.
func checkDeferredClose(p *Pass, d *ast.DeferStmt, writable map[types.Object]bool) {
	sel, ok := ast.Unparen(d.Call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(d.Call.Args) != 0 {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	if writable[p.Info.Uses[id]] {
		p.Reportf(d.Pos(),
			"defer %s.Close() on a file opened for writing discards the flush error; close explicitly and check it", id.Name)
	}
}
