package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Exact
// float equality silently breaks the analytic/Monte-Carlo cross-checks:
// two mathematically equal expected values computed along different
// paths differ in their last ulps, so equality tests must go through an
// explicit tolerance. Allowed idioms:
//
//   - comparison against the exact constants 0 or 1. These are the
//     repository's domain sentinels: probabilities and CDF values are
//     clamped to exact endpoints (clampP), and shape parameters take
//     closed forms at exactly 0 and 1, so "p == 1" tests a value that
//     was assigned, not computed.
//   - x != x and x == x (the NaN test; prefer math.IsNaN, but the
//     idiom is well-defined)
//   - comparisons where both operands are compile-time constants
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags == / != on floating-point operands outside guarded idioms",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := p.Info.Types[be.X]
			ty, oky := p.Info.Types[be.Y]
			if !okx || !oky || (!isFloat(tx.Type) && !isFloat(ty.Type)) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded: exact by construction
			}
			if isSentinelConst(tx) || isSentinelConst(ty) {
				return true // exact 0/1 domain sentinel
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // NaN self-comparison idiom
			}
			p.Reportf(be.OpPos,
				"floating-point %s comparison; use an epsilon (math.Abs(a-b) <= tol) or restructure around a sentinel", be.Op)
			return true
		})
	}
}

// isSentinelConst reports whether the operand is the compile-time
// constant 0 or 1 (0, 0.0, -0.0, 1, 1.0, or a named constant with one
// of those values).
func isSentinelConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	return constant.Sign(v) == 0 || constant.Compare(v, token.EQL, constant.MakeFloat64(1))
}
