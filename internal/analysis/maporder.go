package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range-over-map loops whose bodies produce ordered
// output: Go randomizes map iteration, so anything written, appended,
// or tabulated inside such a loop comes out in a different order every
// run — the exact bug class that corrupts golden results files and
// table diffs. Flagged loop bodies:
//
//   - fmt print calls or Write/WriteString-style method calls,
//   - appends to a slice declared outside the loop, unless the slice
//     is sorted by a sort.* / slices.Sort* call later in the same
//     block (the collect-then-sort idiom is the sanctioned fix),
//   - any call into internal/tablefmt (tables are ordered artifacts).
//
// Pure reductions (sums, max, counting into another map) are
// order-insensitive and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags ordered output produced while ranging over a map",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				tv, ok := p.Info.Types[rs.X]
				if !ok || tv.Type == nil {
					continue
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					checkMapRangeBody(p, rs, stmts[i+1:])
				}
			}
			return true
		})
	}
}

// writerMethodNames are method names treated as ordered-output sinks.
var writerMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			obj := calleeOf(p.Info, e)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "fmt" && hasPrintPrefix(obj.Name()):
				p.Reportf(e.Pos(),
					"%s.%s inside range over map: iteration order is random per run; collect and sort keys first", obj.Pkg().Name(), obj.Name())
			case pathMatches(obj.Pkg().Path(), "internal/tablefmt"):
				p.Reportf(e.Pos(),
					"tablefmt call inside range over map: table rows would be in random order; sort keys first")
			case isMethodCall(p.Info, e) && writerMethodNames[obj.Name()]:
				p.Reportf(e.Pos(),
					"%s call inside range over map emits output in random order; collect and sort keys first", obj.Name())
			}
		case *ast.AssignStmt:
			checkAppendInMapRange(p, rs, e, rest)
		}
		return true
	})
}

// hasPrintPrefix matches fmt's printing functions (Print*, Fprint*,
// Sprint* excluded: building a string is only a problem if it escapes,
// which the append/Write rules catch).
func hasPrintPrefix(name string) bool {
	return hasPrefix(name, "Print") || hasPrefix(name, "Fprint")
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// isMethodCall reports whether the call has a receiver.
func isMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	return s != nil && s.Kind() == types.MethodVal
}

// checkAppendInMapRange flags "out = append(out, …)" where out is
// declared before the loop, unless a later statement in the enclosing
// block sorts out.
func checkAppendInMapRange(p *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, rest []ast.Stmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p.Info, call) {
			continue
		}
		if len(as.Lhs) != len(as.Rhs) {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil || obj.Pos() >= rs.Pos() {
			continue // loop-local scratch; cannot leak order on its own
		}
		if sortedLater(p, obj, rest) {
			continue // collect-then-sort idiom
		}
		p.Reportf(as.Pos(),
			"append to %s while ranging over a map accumulates in random order; sort %s afterwards or iterate sorted keys", obj.Name(), obj.Name())
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether any statement after the loop in the same
// block passes obj to a sort.* or slices.* call.
func sortedLater(p *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			callee := calleeOf(p.Info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if pkg := callee.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
